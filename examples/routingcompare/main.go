// Routing comparison: exercise the DTN forwarding substrate directly —
// the strategies that carry-and-forward networks choose between, and
// that the caching scheme's push/pull machinery builds on.
//
// The example evaluates six strategies on a conference trace and prints
// the classic delivery/delay/overhead tradeoff triangle: flooding is
// fast but expensive, direct delivery is cheap but slow, and
// utility-based strategies (PRoPHET, the paper's gradient metric) get
// close to flooding's delivery at a fraction of the transmissions.
//
//	go run ./examples/routingcompare
package main

import (
	"fmt"
	"log"
	"math"

	"dtncache"
)

func main() {
	tr, err := dtncache.GenerateTrace(dtncache.Infocom05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s — %d nodes, %d contacts over %.0f days\n\n",
		tr.Name, tr.Nodes, len(tr.Contacts), tr.Duration/86400)

	// The gradient strategy scores relays by the probability of meeting
	// the destination within an hour (a one-hop instance of the paper's
	// opportunistic-path weight).
	gradient := dtncache.GradientStrategy(meetingProbability(tr))

	cfg := dtncache.RoutingConfig{
		Messages:    300,
		LifetimeSec: 8 * 3600,
		SprayCopies: 8,
		Seed:        1,
	}
	strategies := []dtncache.RoutingStrategy{
		dtncache.DirectDelivery,
		dtncache.EpidemicRouting,
		dtncache.SprayAndWait,
		dtncache.NewPRoPHET(tr.Nodes),
		gradient,
	}
	fmt.Printf("%-16s %9s %9s %12s\n", "strategy", "delivery", "delay", "tx/delivery")
	for _, s := range strategies {
		res, err := dtncache.EvaluateRouting(tr, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.1f%% %8.2fh %12.1f\n",
			res.Strategy, 100*res.DeliveryRatio, res.MeanDelaySec/3600,
			res.TransmissionsPerDelivery)
	}
}

// meetingProbability builds a relay score from the trace's estimated
// pairwise contact rates: the probability node meets dst within an hour,
// assuming Poisson contacts (the paper's model).
func meetingProbability(tr *dtncache.Trace) func(node, dst dtncache.NodeID) float64 {
	rates := make([][]float64, tr.Nodes)
	for i := range rates {
		rates[i] = make([]float64, tr.Nodes)
	}
	for _, c := range tr.Contacts {
		rates[c.A][c.B]++
		rates[c.B][c.A]++
	}
	for i := range rates {
		for j := range rates[i] {
			rates[i][j] /= tr.Duration
		}
	}
	return func(node, dst dtncache.NodeID) float64 {
		lambda := rates[node][dst]
		if lambda <= 0 {
			return 0
		}
		return 1 - math.Exp(-lambda*3600)
	}
}
