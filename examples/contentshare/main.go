// Content sharing: the paper's other motivating application — smartphone
// users at a large event discovering digital content from nearby peers.
//
// This example replays the Infocom06 conference trace, varies how
// concentrated interest is (the Zipf exponent: is everyone after the
// same keynote slides, or is taste spread across the long tail?), and
// shows how the cooperative cache behaves, including what the
// probabilistic response mechanism (Sec. V-C) saves in redundant
// transmissions.
//
//	go run ./examples/contentshare
package main

import (
	"fmt"
	"log"

	"dtncache"
)

func main() {
	tr, err := dtncache.GenerateTrace(dtncache.Infocom06, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s — %d attendees, %d contacts over %.0f days\n\n",
		tr.Name, tr.Nodes, len(tr.Contacts), tr.Duration/86400)

	// Conference content: ~50 Mb media clips that stay interesting for
	// about six hours.
	base := dtncache.Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		AvgSizeBits: 50e6,
		K:           5,
		Seed:        3,
	}

	fmt.Println("interest concentration (Zipf exponent s):")
	for _, s := range []float64{0.5, 0.8, 1.0, 1.2} {
		setup := base
		setup.ZipfExponent = s
		rep, err := dtncache.Run(setup, dtncache.SchemeIntentional)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  s=%.1f  success %5.1f%%   delay %4.2fh   copies/item %.2f\n",
			s, 100*rep.SuccessRatio, rep.MeanDelaySec/3600, rep.MeanCopies)
	}

	fmt.Println("\nprobabilistic response (Sec. V-C) vs always replying:")
	modes := []struct {
		label string
		mode  dtncache.ResponseMode
	}{
		{"global p_CR", dtncache.ResponseGlobal},
		{"sigmoid Eq.(4)", dtncache.ResponseSigmoid},
		{"always reply", dtncache.ResponseAlways},
	}
	for _, m := range modes {
		setup := base
		setup.Response = m.mode
		rep, err := dtncache.Run(setup, dtncache.SchemeIntentional)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s success %5.1f%%   redundant deliveries %4d   data moved %5.1f Gb\n",
			m.label, 100*rep.SuccessRatio, rep.RedundantDeliveries, rep.DataBits/1e9)
	}
}
