// Real-trace workflow: how to take an external contact trace (e.g. a
// CRAWDAD contact list massaged into "a b start end" lines, or a ONE
// simulator event log), sanity-check the paper's modeling assumptions on
// it, rank its network central locations, and evaluate the caching
// schemes.
//
// Since this repository ships no proprietary data, the example first
// *writes* a synthetic stand-in trace to a temporary file and then
// treats that file exactly as a downstream user would treat a real one.
//
//	go run ./examples/realtrace
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"dtncache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Step 0 (stand-in for your data): write a trace file. ---
	path, err := writeStandInTrace()
	if err != nil {
		return err
	}
	defer os.Remove(path)
	fmt.Printf("trace file: %s\n\n", path)

	// --- Step 1: load the trace. ---
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, err := dtncache.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("loaded %q: %d nodes, %.1f days, %d contacts\n",
		tr.Name, tr.Nodes, tr.Duration/86400, len(tr.Contacts))

	// --- Step 2: check the Poisson contact assumption (Sec. III-B). ---
	ic := tr.AnalyzeInterContacts()
	fmt.Printf("inter-contact gaps: %d samples, CV %.2f, KS-to-exponential %.3f\n",
		ic.Samples, ic.CV, ic.KSDistance)
	if ic.KSDistance > 0.15 {
		fmt.Println("  (high KS distance: expect the hypoexponential path weights to be rough)")
	}

	// --- Step 3: rank network central locations. ---
	metricT := dtncache.DefaultMetricT(tr.Name)
	ms, err := dtncache.NCLMetrics(tr, metricT)
	if err != nil {
		return err
	}
	type ranked struct {
		node   int
		metric float64
	}
	order := make([]ranked, len(ms))
	for n, m := range ms {
		order[n] = ranked{n, m}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].metric > order[j].metric })
	fmt.Println("\ntop central locations (Eq. 3 metric):")
	for _, r := range order[:3] {
		fmt.Printf("  node %2d  C = %.3f\n", r.node, r.metric)
	}

	// --- Step 4: evaluate caching on the trace. ---
	fmt.Println("\ncaching evaluation (T_L = 6h, K = 4):")
	for _, scheme := range []string{dtncache.SchemeIntentional, dtncache.SchemeBundleCache, dtncache.SchemeNoCache} {
		rep, err := dtncache.Run(dtncache.Setup{
			Trace:       tr,
			AvgLifetime: 6 * 3600,
			AvgSizeBits: 20e6,
			K:           4,
			Seed:        1,
		}, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s success %5.1f%%   delay %5.2fh\n",
			scheme, 100*rep.SuccessRatio, rep.MeanDelaySec/3600)
	}
	return nil
}

// writeStandInTrace generates a small synthetic trace and stores it in
// the plain-text exchange format, standing in for a real dataset.
func writeStandInTrace() (string, error) {
	tr, err := dtncache.GenerateCustomTrace(dtncache.TraceConfig{
		Name: "field-study", Nodes: 35, DurationSec: 6 * 86400,
		GranularitySec: 120, TargetContacts: 25000,
		ActivityAlpha: 1.4, ActivityMax: 15, EdgeProb: 0.4,
		PairSkewAlpha: 0.9, PairSkewMax: 100, Seed: 11,
	})
	if err != nil {
		return "", err
	}
	path := filepath.Join(os.TempDir(), "dtncache-field-study.txt")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := dtncache.WriteTrace(f, tr); err != nil {
		return "", err
	}
	return path, nil
}
