// Quickstart: generate a synthetic DTN contact trace, run the paper's
// intentional NCL caching scheme against the no-caching baseline, and
// print the three evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dtncache"
)

func main() {
	// A small conference trace (41 devices, 3 days) keeps the run fast.
	tr, err := dtncache.GenerateTrace(dtncache.Infocom05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s — %d nodes, %.0f days, %d contacts\n\n",
		tr.Name, tr.Nodes, tr.Duration/86400, len(tr.Contacts))

	// Data lives ~3 hours (live traffic/incident style content); each
	// query must be answered within half a lifetime. K=5 network central
	// locations, as the paper recommends for conference traces.
	setup := dtncache.Setup{
		Trace:       tr,
		AvgLifetime: 3 * 3600,
		K:           5,
		Seed:        1,
	}

	for _, scheme := range []string{dtncache.SchemeIntentional, dtncache.SchemeNoCache} {
		rep, err := dtncache.Run(setup, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s success %5.1f%%   delay %5.2fh   copies/item %.2f\n",
			scheme, 100*rep.SuccessRatio, rep.MeanDelaySec/3600, rep.MeanCopies)
	}
	fmt.Println("\nIntentional caching at network central locations answers more")
	fmt.Println("queries, faster, by pre-positioning data at well-connected nodes.")
}
