// VANET scenario: the paper's introduction motivates DTN caching with
// vehicular networks, where live traffic information about road
// segments should reach nearby vehicles before it goes stale.
//
// This example models a city fleet as a community-structured contact
// trace (vehicles circulate mostly within districts; a few taxis cross
// town and become the natural central locations). Traffic reports are
// small and short-lived, so the interesting question is how many
// requests each scheme answers before the data expires — and how K, the
// number of central locations, changes that.
//
//	go run ./examples/vanet
package main

import (
	"fmt"
	"log"

	"dtncache"
)

func main() {
	// 120 vehicles over 5 days; 8 districts with strong intra-district
	// contact rates. Heavy-tailed activity: a handful of taxis meet
	// everyone.
	tr, err := dtncache.GenerateCustomTrace(dtncache.TraceConfig{
		Name:           "vanet-city",
		Nodes:          120,
		DurationSec:    5 * 86400,
		GranularitySec: 30,
		TargetContacts: 150000,
		ActivityAlpha:  1.2,
		ActivityMax:    40,
		EdgeProb:       0.25,
		PairSkewAlpha:  0.8,
		PairSkewMax:    200,
		Communities:    8,
		IntraBoost:     10,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s — %d vehicles, %d contacts over %.0f days\n",
		tr.Name, tr.Nodes, len(tr.Contacts), tr.Duration/86400)

	// Which vehicles would the scheme pick as central locations?
	metrics, err := dtncache.NCLMetrics(tr, 1800) // 30-minute horizon
	if err != nil {
		log.Fatal(err)
	}
	best, bestVal := 0, 0.0
	var mean float64
	for n, m := range metrics {
		mean += m
		if m > bestVal {
			best, bestVal = n, m
		}
	}
	mean /= float64(len(metrics))
	fmt.Printf("central-location metric: best vehicle %d at %.3f vs fleet mean %.3f (%.1fx)\n\n",
		best, bestVal, mean, bestVal/mean)

	// Traffic reports: ~2 Mb (a compressed segment report with imagery),
	// valid for ~45 minutes, requested urgently (deadline = 22.5 min).
	base := dtncache.Setup{
		Trace:         tr,
		MetricT:       1800,
		AvgLifetime:   45 * 60,
		AvgSizeBits:   2e6,
		BufferMinBits: 50e6,
		BufferMaxBits: 150e6,
		Seed:          7,
	}

	fmt.Println("scheme comparison (45-minute traffic reports):")
	for _, scheme := range dtncache.Schemes() {
		setup := base
		setup.K = 6
		rep, err := dtncache.Run(setup, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s success %5.1f%%   delay %4.1f min\n",
			scheme, 100*rep.SuccessRatio, rep.MeanDelaySec/60)
	}

	fmt.Println("\nhow many roadside anchors (K) does the city need?")
	for _, k := range []int{1, 2, 4, 6, 10} {
		setup := base
		setup.K = k
		rep, err := dtncache.Run(setup, dtncache.SchemeIntentional)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%-2d success %5.1f%%   delay %4.1f min   copies/report %.2f\n",
			k, 100*rep.SuccessRatio, rep.MeanDelaySec/60, rep.MeanCopies)
	}
}
