#!/usr/bin/env bash
# Serve-smoke gate: boots dtnserved on an ephemeral port and drives it
# with dtnload, twice:
#
#   1. live mode — publish a batch, fire Zipf queries from concurrent
#      workers while advancing virtual time, then require /healthz green
#      and the /metrics + /report issued totals to equal the generator's
#      own count exactly (dtnload -verify), and a clean SIGTERM shutdown.
#   2. batch mode — replay the generated MIT Reality workload to
#      completion through POST /v1/advance and byte-compare the final
#      GET /report against `dtnsim -report-json` of the same setup: the
#      service and the CLI must execute one identical replay code path.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
srv_pid=""
cleanup() {
    if [[ -n "$srv_pid" ]]; then kill "$srv_pid" 2>/dev/null || true; fi
    wait 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== serve-smoke: build"
go build -o "$tmpdir/dtnserved" ./cmd/dtnserved
go build -o "$tmpdir/dtnload" ./cmd/dtnload
go build -o "$tmpdir/dtnsim" ./cmd/dtnsim

wait_addr() {
    for _ in $(seq 1 100); do
        [[ -s "$1" ]] && return 0
        sleep 0.1
    done
    echo "serve-smoke: server never wrote $1" >&2
    [[ -f "$2" ]] && cat "$2" >&2
    return 1
}

stop_server() { # $1 = logfile
    kill -TERM "$srv_pid"
    wait "$srv_pid"
    srv_pid=""
    if ! grep -q "shut down cleanly" "$1"; then
        echo "serve-smoke: server did not shut down cleanly" >&2
        cat "$1" >&2
        return 1
    fi
}

echo "== serve-smoke: live load (publish/query, /healthz, /metrics totals)"
rm -f "$tmpdir/addr"
"$tmpdir/dtnserved" -trace Infocom05 -listen 127.0.0.1:0 \
    -addr-file "$tmpdir/addr" -live 2>"$tmpdir/srv-live.log" &
srv_pid=$!
wait_addr "$tmpdir/addr" "$tmpdir/srv-live.log"
"$tmpdir/dtnload" -addr-file "$tmpdir/addr" -publish 8 -queries 5000 \
    -workers 4 -advance-by 600 -advance-every 500
stop_server "$tmpdir/srv-live.log"

echo "== serve-smoke: batch replay byte-identity (/report vs dtnsim -report-json)"
rm -f "$tmpdir/addr"
"$tmpdir/dtnserved" -trace "MIT Reality" -listen 127.0.0.1:0 \
    -addr-file "$tmpdir/addr" -live=false 2>"$tmpdir/srv-batch.log" &
srv_pid=$!
wait_addr "$tmpdir/addr" "$tmpdir/srv-batch.log"
"$tmpdir/dtnload" -addr-file "$tmpdir/addr" -publish 0 -queries 0 \
    -advance-end -report-out "$tmpdir/report-served.json" -verify=false
stop_server "$tmpdir/srv-batch.log"
"$tmpdir/dtnsim" -trace "MIT Reality" -report-json >"$tmpdir/report-sim.json"
cmp "$tmpdir/report-served.json" "$tmpdir/report-sim.json"
echo "serve-smoke: report byte identity OK ($(wc -c < "$tmpdir/report-sim.json") bytes)"

echo "serve-smoke: OK"
