#!/usr/bin/env bash
# Crash-smoke gate: the WAL durability contract, end to end.
#
#   1. reference — dtnserved without a WAL, driven by a deterministic
#      single-worker dtnload run; capture the final /report and
#      /v1/status bytes after a clean SIGTERM.
#   2. kill -9 mid-run — the same load against a WAL-journaling server
#      that is killed (SIGKILL, no drain) partway through. dtnload
#      rides out the outage on transient retries (op_id dedupe keeps
#      the counts exact), the server restarts on the same port from the
#      WAL, and the final /report and /v1/status must byte-match the
#      uninterrupted reference.
#   3. overload — 16 workers against -max-inflight 1: shed requests get
#      429 + Retry-After, dtnload retries through them, and -verify
#      still balances the books exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
srv_pid=""
cleanup() {
    if [[ -n "$srv_pid" ]]; then kill "$srv_pid" 2>/dev/null || true; fi
    wait 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== crash-smoke: build"
go build -o "$tmpdir/dtnserved" ./cmd/dtnserved
go build -o "$tmpdir/dtnload" ./cmd/dtnload

wait_addr() {
    for _ in $(seq 1 100); do
        [[ -s "$1" ]] && return 0
        sleep 0.1
    done
    echo "crash-smoke: server never wrote $1" >&2
    [[ -f "$2" ]] && cat "$2" >&2
    return 1
}

stop_server() { # $1 = logfile
    kill -TERM "$srv_pid"
    wait "$srv_pid"
    srv_pid=""
    if ! grep -q "shut down cleanly" "$1"; then
        echo "crash-smoke: server did not shut down cleanly" >&2
        cat "$1" >&2
        return 1
    fi
}

# One worker so the op sequence (publishes, queries, absolute advances)
# is identical across legs; -qps paces the run long enough to kill the
# server in the middle of it.
load_args=(-publish 8 -queries 2000 -workers 1 -seed 5
    -advance-by 600 -advance-every 500)
serve_args=(-trace Infocom05 -listen 127.0.0.1:0 -live)

echo "== crash-smoke: reference run (no WAL, clean shutdown)"
rm -f "$tmpdir/addr"
"$tmpdir/dtnserved" "${serve_args[@]}" -addr-file "$tmpdir/addr" \
    2>"$tmpdir/srv-ref.log" &
srv_pid=$!
wait_addr "$tmpdir/addr" "$tmpdir/srv-ref.log"
"$tmpdir/dtnload" -addr-file "$tmpdir/addr" "${load_args[@]}" \
    -report-out "$tmpdir/ref-report.json" -status-out "$tmpdir/ref-status.json"
stop_server "$tmpdir/srv-ref.log"

echo "== crash-smoke: kill -9 mid-load, restart from WAL"
rm -f "$tmpdir/addr"
"$tmpdir/dtnserved" "${serve_args[@]}" -addr-file "$tmpdir/addr" \
    -wal "$tmpdir/ops.wal" -wal-checkpoint 256 \
    2>"$tmpdir/srv-crash1.log" &
srv_pid=$!
wait_addr "$tmpdir/addr" "$tmpdir/srv-crash1.log"
addr=$(cat "$tmpdir/addr")
"$tmpdir/dtnload" -addr-file "$tmpdir/addr" "${load_args[@]}" -qps 400 \
    -retries 20 -retry-base 100ms -retry-cap 1s \
    -report-out "$tmpdir/crash-report.json" -status-out "$tmpdir/crash-status.json" \
    2>"$tmpdir/load-crash.log" &
load_pid=$!
sleep 2
kill -9 "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""
# Restart on the same port, recovering from the WAL; dtnload is
# retrying against connection-refused in the meantime.
"$tmpdir/dtnserved" "${serve_args[@]/127.0.0.1:0/$addr}" \
    -wal "$tmpdir/ops.wal" -wal-checkpoint 256 \
    2>"$tmpdir/srv-crash2.log" &
srv_pid=$!
if ! wait "$load_pid"; then
    echo "crash-smoke: dtnload did not survive the crash" >&2
    cat "$tmpdir/load-crash.log" >&2
    cat "$tmpdir/srv-crash2.log" >&2
    exit 1
fi
grep -q "wal: restored" "$tmpdir/srv-crash2.log" || {
    echo "crash-smoke: restarted server did not recover from the WAL" >&2
    cat "$tmpdir/srv-crash2.log" >&2
    exit 1
}
stop_server "$tmpdir/srv-crash2.log"
cmp "$tmpdir/ref-report.json" "$tmpdir/crash-report.json"
cmp "$tmpdir/ref-status.json" "$tmpdir/crash-status.json"
echo "crash-smoke: kill -9 recovery byte identity OK" \
    "($(grep -o 'restored [0-9]* ops' "$tmpdir/srv-crash2.log"))"

echo "== crash-smoke: overload (16 workers vs -max-inflight 1)"
rm -f "$tmpdir/addr"
# -shed-wait 0 sheds immediately on contention: engine ops finish in
# microseconds, so any positive wait would let every waiter in and the
# gate would never visibly saturate. GOMAXPROCS=4 forces the server's
# handler goroutines onto competing OS threads even on a single-core
# runner — without it, short CPU-bound handlers run to completion
# unpreempted and no goroutine ever observes the gate occupied.
GOMAXPROCS=4 "$tmpdir/dtnserved" "${serve_args[@]}" -addr-file "$tmpdir/addr" \
    -max-inflight 1 -shed-wait 0 2>"$tmpdir/srv-load.log" &
srv_pid=$!
wait_addr "$tmpdir/addr" "$tmpdir/srv-load.log"
"$tmpdir/dtnload" -addr-file "$tmpdir/addr" -publish 8 -queries 3000 \
    -workers 16 -seed 5 -advance-by 600 -advance-every 100 \
    -retries 40 -retry-base 20ms -retry-cap 250ms
stop_server "$tmpdir/srv-load.log"
if ! grep -q "shed [0-9]* requests under load" "$tmpdir/srv-load.log"; then
    echo "crash-smoke: overload run shed nothing (gate never saturated?)" >&2
    cat "$tmpdir/srv-load.log" >&2
    exit 1
fi
echo "crash-smoke: overload OK ($(grep -o 'shed [0-9]* requests' "$tmpdir/srv-load.log"))," \
    "books exact despite sheds"

echo "crash-smoke: OK"
