#!/usr/bin/env bash
# Tier-2 pre-merge gate: everything the determinism contract depends on.
#
#   go vet            — stock correctness vet
#   dtnlint           — the determinism + concurrency-readiness lint
#                       suite (see DESIGN.md "Static analysis"),
#                       including the stale //lint:allow sweep
#   go test -race     — full test suite with the race detector, which
#                       also exercises the parallel-sweep determinism
#                       regression test under racing workers
#   fuzz corpora      — replays the checked-in fuzz seed corpora as
#                       unit tests (short mode)
#
# Set CHECK_FUZZ_TIME (e.g. CHECK_FUZZ_TIME=30s) to additionally run
# each fuzz target for that long.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== dtnlint ./..."
go run ./cmd/dtnlint ./...

# The determinism-sensitive packages declare themselves with a
# //dtn:determinism package-doc marker; discover the set from the
# markers instead of hand-maintaining a list here (the marker set is
# itself pinned to analysis.DeterministicPackages by
# TestDeterminismMarkerMatchesScope, so neither can drift silently).
# Lint them explicitly with in-package tests so a scope regression in
# the analyzer list cannot hide them.
echo "== dtnlint -tests (determinism-sensitive packages, marker-discovered)"
mapfile -t det_pkgs < <(grep -rl --include='*.go' --exclude='*_test.go' \
    '^//dtn:determinism\( \|$\)' internal | xargs -r -n1 dirname | sort -u | sed 's|^|./|')
if [[ ${#det_pkgs[@]} -eq 0 ]]; then
    echo "check: no //dtn:determinism packages discovered" >&2
    exit 1
fi
if ! printf '%s\n' "${det_pkgs[@]}" | grep -qx './internal/sim'; then
    echo "check: marker discovery missed ./internal/sim" >&2
    exit 1
fi
go run ./cmd/dtnlint -tests "${det_pkgs[@]}"

# Stale-suppression sweep: a //lint:allow whose violation is gone must
# be deleted, or dead directives accumulate and hide future findings.
echo "== dtnlint -tests -stale-allows ./..."
make --no-print-directory lint-fix-check

echo "== go test -race ./..."
go test -race ./...

# The fault engine runs churn goroutine-free on the event heap, but its
# recovery paths (CloseNode, buffer wipe, re-replication) cut across
# scheme and driver state; race-test the package explicitly so a later
# parallelization cannot slip by.
echo "== go test -race ./internal/fault/..."
go test -race -count=1 ./internal/fault/...

echo "== fuzz seed corpora (short mode)"
go test -count=1 -run '^Fuzz' ./internal/trace ./internal/knapsack ./internal/sim \
    ./internal/obs ./internal/analysis ./internal/wal

# Run-trace byte identity: record the same Infocom05 run twice and
# require identical bytes — the determinism guarantee DESIGN.md's
# "Observability" section documents. T_L=12h so queries are actually
# issued and the trace carries provenance spans: the identity check
# then also pins the span encoding, and the grep asserts the spans are
# really there (an empty-workload run would pass cmp vacuously).
# Set CHECK_SKIP_TRACE_ID=1 to skip.
if [[ -z "${CHECK_SKIP_TRACE_ID:-}" ]]; then
    echo "== run-trace byte identity (Infocom05 x2, span-bearing)"
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    go run ./cmd/dtnsim -trace Infocom05 -scheme Intentional -tl 12h \
        -trace-out "$tmpdir/t1.ndjson" >/dev/null
    go run ./cmd/dtnsim -trace Infocom05 -scheme Intentional -tl 12h \
        -trace-out "$tmpdir/t2.ndjson" >/dev/null
    cmp "$tmpdir/t1.ndjson" "$tmpdir/t2.ndjson"
    grep -q '"k":"span"' "$tmpdir/t1.ndjson" || {
        echo "check: no span events in the Infocom05 run-trace" >&2; exit 1; }
    echo "trace byte identity: OK ($(wc -l < "$tmpdir/t1.ndjson") lines, spans present)"

    # Same guarantee under fault injection: a seeded churn + failover run
    # must replay its failure timeline byte-for-byte.
    echo "== faulted run-trace byte identity (Infocom05 + churn x2)"
    go run ./cmd/dtnsim -trace Infocom05 -scheme Intentional -tl 3h \
        -fault-churn 2 -fault-downtime 2h -retry 20m -ncl-failover \
        -invariants -trace-out "$tmpdir/f1.ndjson" >/dev/null
    go run ./cmd/dtnsim -trace Infocom05 -scheme Intentional -tl 3h \
        -fault-churn 2 -fault-downtime 2h -retry 20m -ncl-failover \
        -invariants -trace-out "$tmpdir/f2.ndjson" >/dev/null
    cmp "$tmpdir/f1.ndjson" "$tmpdir/f2.ndjson"
    echo "faulted trace byte identity: OK ($(wc -l < "$tmpdir/f1.ndjson") lines)"

    # Streaming replay byte identity: the same preset replayed once
    # materialized and once through the chunked streaming reader
    # (-stream feeds both the contact driver and the knowledge build
    # from the file) must produce identical reports AND identical
    # run-traces — the PR 8 tentpole contract. T_L=12h so Infocom05
    # actually issues queries.
    echo "== streamed replay byte identity (Infocom05 chunked vs materialized)"
    go run ./cmd/tracegen -preset Infocom05 -format chunked \
        -o "$tmpdir/infocom05.dtnc" 2>/dev/null
    go run ./cmd/dtnsim -trace Infocom05 -scheme Intentional -tl 12h \
        -report-json -trace-out "$tmpdir/mat.ndjson" > "$tmpdir/mat.json"
    go run ./cmd/dtnsim -tracefile "$tmpdir/infocom05.dtnc" -format chunked -stream \
        -scheme Intentional -tl 12h \
        -report-json -trace-out "$tmpdir/str.ndjson" > "$tmpdir/str.json"
    cmp "$tmpdir/mat.json" "$tmpdir/str.json"
    cmp "$tmpdir/mat.ndjson" "$tmpdir/str.ndjson"
    echo "streamed replay byte identity: OK ($(wc -l < "$tmpdir/str.ndjson") lines)"
fi

# Service smoke: dtnserved + dtnload end to end — live bookkeeping
# exactness and the batch /report byte-identity against dtnsim.
# Set CHECK_SKIP_SERVE=1 to skip.
if [[ -z "${CHECK_SKIP_SERVE:-}" ]]; then
    echo "== serve-smoke (dtnserved + dtnload)"
    ./scripts/serve_smoke.sh
fi

# Crash recovery: kill -9 a WAL-journaling dtnserved mid-load, restart
# it from the log, and require the final /report and /v1/status to
# byte-match an uninterrupted reference run; plus the overload cell
# (shed 429s, retried to an exact -verify). Set CHECK_SKIP_CRASH=1 to
# skip.
if [[ -z "${CHECK_SKIP_CRASH:-}" ]]; then
    echo "== crash-smoke (WAL kill -9 recovery + overload shedding)"
    ./scripts/crash_smoke.sh
fi

# Benchmark regression gate: rerun the suite — including the city-scale
# streaming replay with its in-bench peak-RSS cap — and compare against
# the committed post-optimization PR 8 numbers, failing on any >2x
# slowdown (-regress-below 0.5). This pins the PR 8 wins: undoing the
# session pooling (ReplayContacts, 6x) or the CSR build (AllPathsCity)
# trips the bound, and a baseline benchmark vanishing from the suite is
# itself a failure. Set CHECK_SKIP_BENCH=1 to skip on very slow machines.
if [[ -z "${CHECK_SKIP_BENCH:-}" ]]; then
    echo "== make bench-compare BASELINE=BENCH_pr8.json"
    make bench-compare BASELINE=BENCH_pr8.json
fi

if [[ -n "${CHECK_FUZZ_TIME:-}" ]]; then
    echo "== fuzzing for ${CHECK_FUZZ_TIME} per target"
    targets=(
        "./internal/trace FuzzRead"
        "./internal/trace FuzzReadCSV"
        "./internal/trace FuzzReadONE"
        "./internal/trace FuzzReadChunked"
        "./internal/knapsack FuzzSolve"
        "./internal/knapsack FuzzProbabilisticSelect"
        "./internal/sim FuzzEventHeapOrdering"
        "./internal/obs FuzzEncodeEvent"
        "./internal/obs FuzzEncodeSpan"
        "./internal/analysis FuzzParseMarker"
        "./internal/analysis FuzzParseAllow"
        "./internal/wal FuzzReadWAL"
    )
    for entry in "${targets[@]}"; do
        read -r pkg fn <<<"$entry"
        go test -count=1 -run "^$fn\$" -fuzz "^$fn\$" -fuzztime "$CHECK_FUZZ_TIME" "$pkg"
    done
fi

echo "check: OK"
