package dtncache

import (
	"bytes"
	"testing"
)

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != tr.Nodes || len(got.Contacts) != len(tr.Contacts) {
		t.Errorf("round trip changed the trace: %d/%d nodes, %d/%d contacts",
			got.Nodes, tr.Nodes, len(got.Contacts), len(tr.Contacts))
	}
}

func TestPublicAPICustomTrace(t *testing.T) {
	tr, err := GenerateCustomTrace(TraceConfig{
		Name: "tiny", Nodes: 10, DurationSec: 86400, GranularitySec: 60,
		TargetContacts: 2000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 10 {
		t.Errorf("nodes = %d", tr.Nodes)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicAPIRun(t *testing.T) {
	tr, err := GenerateTrace(Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	setup := Setup{Trace: tr, AvgLifetime: 3 * 3600, K: 3, Seed: 1}
	rep, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueriesIssued == 0 || rep.SuccessRatio <= 0 {
		t.Errorf("report = %+v", rep)
	}
	avg, err := RunAveraged(setup, SchemeNoCache, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg.QueriesIssued <= rep.QueriesIssued/2 {
		t.Errorf("averaged issued = %d", avg.QueriesIssued)
	}
}

func TestPublicAPISchemeLists(t *testing.T) {
	if len(Schemes()) != 5 {
		t.Errorf("Schemes() = %v", Schemes())
	}
	if len(ReplacementSchemes()) != 4 {
		t.Errorf("ReplacementSchemes() = %v", ReplacementSchemes())
	}
	for _, name := range append(Schemes(), ReplacementSchemes()[1:]...) {
		tr, err := GenerateTrace(Infocom05, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(Setup{Trace: tr, AvgLifetime: 3 * 3600, K: 3}, name); err != nil {
			t.Errorf("Run(%q): %v", name, err)
		}
	}
}

func TestPublicAPINCLMetrics(t *testing.T) {
	tr, err := GenerateTrace(Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NCLMetrics(tr, DefaultMetricT(tr.Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != tr.Nodes {
		t.Errorf("metrics len = %d", len(ms))
	}
}

func TestPublicAPIRWPTrace(t *testing.T) {
	tr, err := GenerateRWPTrace(RWPConfig{
		Name: "rwp", Nodes: 15, DurationSec: 24 * 3600,
		ArenaMeters: 600, RangeMeters: 60,
		SpeedMin: 0.5, SpeedMax: 2, PauseMaxSec: 60, ScanSec: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The geometric trace drives the full caching pipeline.
	rep, err := Run(Setup{Trace: tr, AvgLifetime: 2 * 3600, K: 3, MetricT: 1800}, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueriesIssued == 0 {
		t.Error("no queries issued on the RWP trace")
	}
}
