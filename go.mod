module dtncache

go 1.22
