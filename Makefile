# Tier-1 verify is `make build test`; `make check` is the tier-2
# pre-merge gate (vet + dtnlint + race + fuzz corpora, see
# scripts/check.sh and DESIGN.md "Determinism contract").

GO ?= go
CMDS := dtnsim nclstat experiments tracegen dtnlint

.PHONY: build test check smoke fuzz lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/dtnlint ./...

check:
	./scripts/check.sh

# CI-style smoke: every cmd/ binary must build and serve its --help.
smoke:
	@mkdir -p bin
	@for c in $(CMDS); do \
		$(GO) build -o bin/$$c ./cmd/$$c || exit 1; \
		./bin/$$c --help >/dev/null 2>&1 || { echo "smoke: $$c --help failed"; exit 1; }; \
		echo "smoke: $$c ok"; \
	done

fuzz:
	CHECK_FUZZ_TIME=$${CHECK_FUZZ_TIME:-30s} ./scripts/check.sh

clean:
	rm -rf bin
