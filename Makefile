# Tier-1 verify is `make build test`; `make check` is the tier-2
# pre-merge gate (vet + dtnlint + race + fuzz corpora, see
# scripts/check.sh and DESIGN.md "Determinism contract").

GO ?= go
CMDS := dtnsim nclstat experiments tracegen dtnlint benchjson

.PHONY: build test check smoke fuzz lint bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/dtnlint ./...

check:
	./scripts/check.sh

# CI-style smoke: every cmd/ binary must build and serve its --help.
smoke:
	@mkdir -p bin
	@for c in $(CMDS); do \
		$(GO) build -o bin/$$c ./cmd/$$c || exit 1; \
		./bin/$$c --help >/dev/null 2>&1 || { echo "smoke: $$c --help failed"; exit 1; }; \
		echo "smoke: $$c ok"; \
	done

# Knowledge-layer benchmarks (PR 2): the incremental-vs-full refresh
# microbenchmarks and the end-to-end shared-vs-isolated comparison cell,
# summarized with derived speedups into BENCH_pr2.json.
bench:
	@{ $(GO) test ./internal/knowledge -run '^$$' -bench . -benchtime 2x -benchmem; \
	   $(GO) test ./internal/experiment -run '^$$' -bench RunComparison -benchtime 1x -benchmem; } \
	 | $(GO) run ./cmd/benchjson -o BENCH_pr2.json \
	     -ratio run_comparison_speedup=RunComparisonIsolated/RunComparison \
	     -ratio incremental_speedup=AllPathsFull/SnapshotIncremental
	@cat BENCH_pr2.json

fuzz:
	CHECK_FUZZ_TIME=$${CHECK_FUZZ_TIME:-30s} ./scripts/check.sh

clean:
	rm -rf bin
