# Tier-1 verify is `make build test`; `make check` is the tier-2
# pre-merge gate (vet + dtnlint + race + fuzz corpora, see
# scripts/check.sh and DESIGN.md "Determinism contract").

GO ?= go
CMDS := dtnsim nclstat experiments tracegen dtnlint benchjson obsdump dtnserved dtnload

.PHONY: build test check smoke serve-smoke crash-smoke fuzz lint lint-fix-check bench bench-compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/dtnlint -tests ./...

# Stale-suppression sweep: fail when a //lint:allow directive no longer
# suppresses anything, so fixed violations shed their annotations.
lint-fix-check:
	$(GO) run ./cmd/dtnlint -tests -stale-allows ./...

check:
	./scripts/check.sh

# CI-style smoke: every cmd/ binary must build and serve its --help.
smoke:
	@mkdir -p bin
	@for c in $(CMDS); do \
		$(GO) build -o bin/$$c ./cmd/$$c || exit 1; \
		./bin/$$c --help >/dev/null 2>&1 || { echo "smoke: $$c --help failed"; exit 1; }; \
		echo "smoke: $$c ok"; \
	done

# End-to-end service gate: dtnserved on an ephemeral port driven by
# dtnload — live publish/query with exact /metrics bookkeeping, then a
# batch replay whose /report must byte-match dtnsim -report-json.
serve-smoke:
	./scripts/serve_smoke.sh

# Durability gate: kill -9 a WAL-journaling dtnserved mid-load, restart
# it from the log, and require byte-identical /report + /v1/status
# against an uninterrupted run; plus the overload-shedding cell.
crash-smoke:
	./scripts/crash_smoke.sh

# The full benchmark suite, shared by bench and bench-compare: the
# pooled event-loop microbenchmarks and the city-scale streaming replay
# with its peak-RSS gate (internal/sim), the end-to-end replay-bound
# single-scheme run (internal/experiment), the knowledge pipeline
# benches including the CSR city build (internal/knowledge), and the
# PR 2 comparison benches for continuity.
BENCH_CMDS = $(GO) test ./internal/sim -run '^$$' -bench Replay -benchmem; \
	$(GO) test ./internal/experiment -run '^$$' -bench Replay -benchtime 1x -benchmem; \
	$(GO) test ./internal/knowledge -run '^$$' -bench . -benchtime 2x -benchmem; \
	$(GO) test ./internal/experiment -run '^$$' -bench RunComparison -benchtime 1x -benchmem;

# City-scale benchmarks (PR 8): summarized into BENCH_pr8.json with
# per-benchmark speedups against the committed pre-optimization
# baseline (BENCH_pr8_baseline.json, measured at PR 7 HEAD).
bench:
	@{ $(BENCH_CMDS) } | $(GO) run ./cmd/benchjson -o BENCH_pr8.json \
	     -baseline BENCH_pr8_baseline.json \
	     -ratio run_comparison_speedup=RunComparisonIsolated/RunComparison \
	     -ratio incremental_speedup=AllPathsFull/SnapshotIncremental
	@cat BENCH_pr8.json

# Regression gate: rerun the suite and fail when any benchmark shared
# with $(BASELINE) falls below $(REGRESS_BELOW)x its baseline speed.
# The default baseline is the committed post-optimization BENCH_pr8.json,
# so the PR 8 wins (ReplayContacts' session pooling, the CSR knowledge
# build) stay pinned: undoing either slows its benchmark far more than
# 2x and trips the gate. Committed BENCH files were measured on other
# machines, so the 0.5x threshold only catches gross slowdowns, not
# measurement noise.
BASELINE ?= BENCH_pr8.json
REGRESS_BELOW ?= 0.5
bench-compare:
	@{ $(BENCH_CMDS) } | $(GO) run ./cmd/benchjson -o BENCH_compare.json \
	     -baseline $(BASELINE) -regress-below $(REGRESS_BELOW)
	@cat BENCH_compare.json

fuzz:
	CHECK_FUZZ_TIME=$${CHECK_FUZZ_TIME:-30s} ./scripts/check.sh

clean:
	rm -rf bin
