package dtncache

// One benchmark per table/figure of the paper's evaluation (the
// experiment index E1-E8 of DESIGN.md). Each benchmark regenerates the
// artifact — at reduced sweep density where the full sweep takes minutes
// (Quick mode); `go run ./cmd/experiments` produces the full-resolution
// tables. Headline metrics are attached via b.ReportMetric so regression
// runs can track reproduction quality, not just speed.

import (
	"strconv"
	"testing"

	"dtncache/internal/experiment"
)

func reportCell(b *testing.B, t *experiment.Table, row, col int, name string) {
	b.Helper()
	if row < len(t.Rows) && col < len(t.Rows[row]) {
		if v, err := strconv.ParseFloat(t.Rows[row][col], 64); err == nil {
			b.ReportMetric(v, name)
		}
	}
}

// BenchmarkTable1TraceStats regenerates Table I (E1): the four synthetic
// traces and their aggregate statistics.
func BenchmarkTable1TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Table1(experiment.FigureOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig4NCLMetric regenerates Fig. 4 (E2): NCL-metric
// distributions for the four traces; reports the MIT Reality max/median
// skew.
func BenchmarkFig4NCLMetric(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Fig4(experiment.FigureOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 2, 8, "reality-skew")
}

// BenchmarkFig7Sigmoid regenerates Fig. 7 (E3): the response-probability
// sigmoid.
func BenchmarkFig7Sigmoid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig7(experiment.FigureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig9Workload regenerates Fig. 9 (E4): data volume vs T_L and
// the Zipf query pmf.
func BenchmarkFig9Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := experiment.Fig9(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Lifetime regenerates Fig. 10 (E5) at reduced density:
// success/delay/copies vs T_L on MIT Reality, Intentional vs NoCache.
// Reports the intentional scheme's success ratio at T_L = 1 week.
func BenchmarkFig10Lifetime(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Fig10(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 2, 2, "intentional-success-1wk")
	reportCell(b, t, 3, 2, "nocache-success-1wk")
}

// BenchmarkFig11DataSize regenerates Fig. 11 (E6) at reduced density:
// performance vs s_avg on MIT Reality.
func BenchmarkFig11DataSize(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Fig11(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 2, 2, "intentional-success-100Mb")
}

// BenchmarkFig12Replacement regenerates Fig. 12 (E7) at reduced density:
// the knapsack replacement vs LRU under loose and tight buffers.
func BenchmarkFig12Replacement(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Fig12(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Rows: (50Mb ours, 50Mb LRU, 200Mb ours, 200Mb LRU).
	reportCell(b, t, 2, 2, "ours-success-200Mb")
	reportCell(b, t, 3, 2, "lru-success-200Mb")
}

// BenchmarkFig13NCLCount regenerates Fig. 13 (E8) at reduced density:
// the impact of K on Infocom06.
func BenchmarkFig13NCLCount(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Fig13(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 0, 2, "success-K1")
	reportCell(b, t, 2, 2, "success-K5")
}

// BenchmarkSingleRunReality measures one full MIT Reality simulation of
// the intentional scheme (the unit of work behind Figs. 10-12).
func BenchmarkSingleRunReality(b *testing.B) {
	tr, err := GenerateTrace(MITReality, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep Report
	for i := 0; i < b.N; i++ {
		rep, err = Run(Setup{Trace: tr, K: 8, Seed: 1}, SchemeIntentional)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SuccessRatio, "success")
	b.ReportMetric(rep.MeanDelaySec/3600, "delay-h")
	b.ReportMetric(rep.MeanCopies, "copies")
}

// BenchmarkRoutingComparison regenerates the routing-substrate table
// (extension E-D) at reduced density.
func BenchmarkRoutingComparison(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.RoutingComparison(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 2, 1, "epidemic-delivery")
}

// BenchmarkDelayBreakdown regenerates the Sec. V-E delay decomposition
// (extension E-C) at reduced density.
func BenchmarkDelayBreakdown(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.DelayBreakdown(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 0, 1, "query-to-ncl-K1")
	reportCell(b, t, 1, 1, "query-to-ncl-K5")
}

// BenchmarkAblations regenerates the design-choice ablation table
// (extension E-A) at reduced density.
func BenchmarkAblations(b *testing.B) {
	var t *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiment.Ablations(experiment.FigureOptions{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, t, 0, 1, "baseline-success")
}
