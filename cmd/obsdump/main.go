// Command obsdump renders a recorded NDJSON run-trace (dtnsim
// -trace-out / experiments -trace-out) as human-readable tables: the
// run manifest, a binned timeline of event counts, and the evolution
// of cache occupancy and query hit ratio over virtual time.
//
// Usage:
//
//	dtnsim -trace Infocom05 -trace-out run.ndjson
//	obsdump run.ndjson
//	obsdump -bins 12 run.ndjson
//	obsdump -spans run.ndjson                  # critical-path attribution
//	obsdump -spans -span-query 116 run.ndjson  # one query's full tree
//	cat a.ndjson b.ndjson | obsdump     # one section per manifest
//
// Concatenating traces of several schemes gives a per-scheme section
// each, so scheme behaviors can be compared side by side. With -spans
// the provenance span lines are reconstructed into per-query trees
// instead: each run section gets a table of the slowest satisfied
// queries with their end-to-end delay split into waiting-for-contact,
// queued-behind-the-push-budget and transferring shares, plus that
// scheme's aggregate split.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"dtncache/internal/obs"
	"dtncache/internal/provenance"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

// event is one decoded NDJSON trace line. Manifest and span lines
// reuse the struct: their extra fields are simply empty on ordinary
// events. parseRuns presets the value-omitted fields (a/b/id negative,
// pa negative, nq == t) so decoded lines round-trip the encoder's
// omission rules.
type event struct {
	K  string  `json:"k"`
	T  float64 `json:"t"`
	A  int32   `json:"a"`
	B  int32   `json:"b"`
	ID int64   `json:"id"`
	X  int64   `json:"x"`
	V  float64 `json:"v"`
	S  string  `json:"s"`

	// Span fields (k == "span").
	E  float64  `json:"e"`
	Nq *float64 `json:"nq"`
	Tr string   `json:"tr"`
	Sp int64    `json:"sp"`
	Pa int64    `json:"pa"`
	Op string   `json:"op"`

	// Manifest header fields (k == "manifest").
	Trace        string `json:"trace"`
	Scheme       string `json:"scheme"`
	Seed         int64  `json:"seed"`
	ConfigDigest string `json:"config_digest"`
	GoVersion    string `json:"go_version"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	GitDescribe  string `json:"git_describe"`
}

// maxBins bounds the timeline resolution; beyond this the tables are
// unreadable anyway and the per-kind count rows get large.
const maxBins = 1_000_000

// runTrace is one manifest-delimited section of the input.
type runTrace struct {
	manifest *event // nil when the trace starts without a header
	events   []event
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsdump", flag.ContinueOnError)
	bins := fs.Int("bins", 24, "number of virtual-time bins in the timeline tables")
	spans := fs.Bool("spans", false, "reconstruct span trees and print per-query critical-path delay attribution")
	top := fs.Int("top", 10, "with -spans, number of slowest queries in the attribution table")
	spanQuery := fs.Int64("span-query", -1, "with -spans, also print the full span tree of this query ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bins < 1 {
		return fmt.Errorf("-bins must be positive, got %d", *bins)
	}
	// Each occurring kind allocates a bins-long row; an absurd bin count
	// would abort with an out-of-memory panic instead of an error.
	if *bins > maxBins {
		return fmt.Errorf("-bins must be at most %d, got %d", maxBins, *bins)
	}
	if *top < 1 {
		return fmt.Errorf("-top must be positive, got %d", *top)
	}

	var in io.Reader = os.Stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	runs, err := parseRuns(in)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return errors.New("no trace events in input")
	}
	if *spans {
		total := 0
		for _, rt := range runs {
			for i := range rt.events {
				if rt.events[i].K == obs.KindSpan.String() {
					total++
				}
			}
		}
		if total == 0 {
			return errors.New("no span events in input: -spans needs a trace recorded with span tracing on (any -trace-out run of this build)")
		}
		found := false
		for i, rt := range runs {
			if i > 0 {
				fmt.Fprintln(w)
			}
			found = renderSpans(w, i+1, rt, *top, *spanQuery) || found
		}
		if *spanQuery >= 0 && !found {
			return fmt.Errorf("query %d has no spans in the input", *spanQuery)
		}
		return nil
	}
	for i, rt := range runs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		render(w, i+1, rt, *bins)
	}
	return nil
}

// parseRuns splits the NDJSON stream into manifest-delimited runs.
// Unknown kinds are kept (counted under their name); malformed lines
// are an error with their line number.
func parseRuns(r io.Reader) ([]runTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var runs []runTrace
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev := event{Pa: -1} // "pa" is value-omitted on root spans
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ev.K == obs.KindManifest.String() {
			runs = append(runs, runTrace{manifest: &ev})
			continue
		}
		if len(runs) == 0 {
			runs = append(runs, runTrace{})
		}
		cur := &runs[len(runs)-1]
		cur.events = append(cur.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return runs, nil
}

// header writes one run section's manifest line.
func header(w io.Writer, n int, rt runTrace) {
	fmt.Fprintf(w, "run %d:", n)
	if m := rt.manifest; m != nil {
		if m.Trace != "" {
			fmt.Fprintf(w, " trace=%q", m.Trace)
		}
		if m.Scheme != "" {
			fmt.Fprintf(w, " scheme=%s", m.Scheme)
		}
		fmt.Fprintf(w, " seed=%d", m.Seed)
		if m.ConfigDigest != "" {
			fmt.Fprintf(w, " digest=%s", m.ConfigDigest)
		}
		fmt.Fprintf(w, " %s gomaxprocs=%d", m.GoVersion, m.GoMaxProcs)
		if m.GitDescribe != "" {
			fmt.Fprintf(w, " git=%s", m.GitDescribe)
		}
	} else {
		fmt.Fprint(w, " (no manifest header)")
	}
	fmt.Fprintln(w)
}

// render writes one run's manifest, timeline and evolution tables.
func render(w io.Writer, n int, rt runTrace, bins int) {
	header(w, n, rt)
	if len(rt.events) == 0 {
		fmt.Fprintln(w, "  no events")
		return
	}

	maxT := 0.0
	for i := range rt.events {
		if rt.events[i].T > maxT {
			maxT = rt.events[i].T
		}
	}
	fmt.Fprintf(w, "  %d events over [0, %.0fs] (%.1f days)\n",
		len(rt.events), maxT, maxT/86400)

	timeline(w, rt.events, bins, maxT)
	evolution(w, rt.events, bins, maxT)
	cellTable(w, rt.events)
}

// binOf maps a virtual time onto [0, bins).
func binOf(t, maxT float64, bins int) int {
	if maxT <= 0 {
		return 0
	}
	i := int(t / maxT * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// timelineKinds is the column order of the timeline table; kinds with
// no occurrences are dropped from the output.
var timelineKinds = []obs.Kind{
	obs.KindContactBegin, obs.KindContactEnd,
	obs.KindQueryIssued, obs.KindQueryAnswered, obs.KindQueryExpired,
	obs.KindCacheInsert, obs.KindCacheEvict,
	obs.KindPush, obs.KindPull, obs.KindKnowledge,
	obs.KindNodeDown, obs.KindNodeUp,
	obs.KindContactTruncated, obs.KindTransferKilled,
	obs.KindQueryRetry, obs.KindFailover, obs.KindReplicate,
	obs.KindSpan,
}

// timeline prints per-bin event counts, one column per occurring kind.
func timeline(w io.Writer, events []event, bins int, maxT float64) {
	counts := make(map[string][]int64)
	for i := range events {
		ev := &events[i]
		if ev.K == obs.KindCell.String() {
			continue // wall-clock cell events get their own table
		}
		row := counts[ev.K]
		if row == nil {
			row = make([]int64, bins)
			counts[ev.K] = row
		}
		row[binOf(ev.T, maxT, bins)]++
	}
	if len(counts) == 0 {
		return
	}
	var cols []string
	for _, k := range timelineKinds {
		if counts[k.String()] != nil {
			cols = append(cols, k.String())
		}
	}
	// Kinds outside the known set (future trace versions) still show up,
	// in sorted name order so the rendering is deterministic.
	var unknown []string
	for k := range counts {
		if _, known := obs.KindByName(k); !known {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	cols = append(cols, unknown...)

	fmt.Fprintf(w, "\n  timeline (%d bins of %s):\n", bins, fmtDur(maxT/float64(bins)))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "\tt-start\t")
	for _, c := range cols {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	for b := 0; b < bins; b++ {
		fmt.Fprintf(tw, "\t%s\t", fmtDur(maxT*float64(b)/float64(bins)))
		for _, c := range cols {
			fmt.Fprintf(tw, "%d\t", counts[c][b])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// evolution prints the cumulative cache occupancy (inserts − evicts)
// and query hit ratio (answered / issued) at the end of each bin.
func evolution(w io.Writer, events []event, bins int, maxT float64) {
	type acc struct{ insert, evict, issued, answered, expired int64 }
	per := make([]acc, bins)
	any := false
	for i := range events {
		ev := &events[i]
		a := &per[binOf(ev.T, maxT, bins)]
		switch ev.K {
		case obs.KindCacheInsert.String():
			a.insert++
		case obs.KindCacheEvict.String():
			a.evict++
		case obs.KindQueryIssued.String():
			a.issued++
		case obs.KindQueryAnswered.String():
			a.answered++
		case obs.KindQueryExpired.String():
			a.expired++
		default:
			continue
		}
		any = true
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\n  evolution (cumulative at bin end):\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "\tt-end\tcached\tissued\tanswered\texpired\thit-ratio\t")
	var cum acc
	for b := 0; b < bins; b++ {
		cum.insert += per[b].insert
		cum.evict += per[b].evict
		cum.issued += per[b].issued
		cum.answered += per[b].answered
		cum.expired += per[b].expired
		ratio := "-"
		if cum.issued > 0 {
			ratio = fmt.Sprintf("%.3f", float64(cum.answered)/float64(cum.issued))
		}
		fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t%d\t%s\t\n",
			fmtDur(maxT*float64(b+1)/float64(bins)),
			cum.insert-cum.evict, cum.issued, cum.answered, cum.expired, ratio)
	}
	tw.Flush()
}

// cellTable summarizes experiment sweep-cell events per scheme label.
func cellTable(w io.Writer, events []event) {
	type agg struct {
		cells int64
		wall  float64
	}
	per := make(map[string]*agg)
	var order []string
	for i := range events {
		ev := &events[i]
		if ev.K != obs.KindCell.String() {
			continue
		}
		a := per[ev.S]
		if a == nil {
			a = &agg{}
			per[ev.S] = a
			order = append(order, ev.S)
		}
		a.cells++
		a.wall += ev.V
	}
	if len(per) == 0 {
		return
	}
	fmt.Fprintf(w, "\n  sweep cells per scheme:\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "\tscheme\tcells\twall-total\t")
	for _, s := range order {
		fmt.Fprintf(tw, "\t%s\t%d\t%.2fs\t\n", s, per[s].cells, per[s].wall)
	}
	tw.Flush()
}

// toSpan reverses the trace encoding of one span line back into the
// event the tracer emitted (pa was preset to -1 at decode; a missing
// nq means the transfer was enqueued at segment start).
func toSpan(ev *event) obs.SpanEvent {
	tr, _ := strconv.ParseUint(ev.Tr, 16, 64)
	sp := obs.SpanEvent{Trace: tr, ID: ev.Sp, Parent: ev.Pa, Op: ev.Op,
		Start: ev.T, End: ev.E, Enq: ev.T, A: ev.A, B: ev.B,
		Query: ev.ID, Aux: ev.X, V: ev.V}
	if ev.Nq != nil {
		sp.Enq = *ev.Nq
	}
	return sp
}

// renderSpans writes one run's span-tree analysis: the slowest
// satisfied queries with their critical-path delay split, the run's
// (i.e. that scheme's) aggregate split, and — when spanQuery matches a
// query in this run — its full span tree. Reports whether spanQuery
// was found.
func renderSpans(w io.Writer, n int, rt runTrace, top int, spanQuery int64) bool {
	header(w, n, rt)
	var spans []obs.SpanEvent
	for i := range rt.events {
		if rt.events[i].K == obs.KindSpan.String() {
			spans = append(spans, toSpan(&rt.events[i]))
		}
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "  no span events in this run")
		return false
	}
	trees := provenance.BuildTrees(spans)

	type row struct {
		tree *provenance.Tree
		attr provenance.Attribution
		path []*obs.SpanEvent
	}
	var rows []row
	for _, tree := range trees {
		if attr, ok := tree.Attribute(); ok {
			rows = append(rows, row{tree, attr, tree.CriticalPath()})
		}
	}
	fmt.Fprintf(w, "  %d spans across %d traced queries, %d satisfied\n",
		len(spans), len(trees), len(rows))

	if len(rows) > 0 {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].attr.Total != rows[j].attr.Total {
				return rows[i].attr.Total > rows[j].attr.Total
			}
			return rows[i].tree.Query < rows[j].tree.Query
		})
		var sum provenance.Attribution
		for _, r := range rows {
			sum.Total += r.attr.Total
			sum.Wait += r.attr.Wait
			sum.Queued += r.attr.Queued
			sum.Transfer += r.attr.Transfer
			sum.Hops += r.attr.Hops
		}
		shown := rows
		if len(shown) > top {
			shown = shown[:top]
		}
		fmt.Fprintf(w, "\n  critical-path delay attribution (%d slowest of %d):\n",
			len(shown), len(rows))
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "\tquery\tdelay\thops\twait%\tqueued%\txfer%\tpath\t")
		for _, r := range shown {
			fmt.Fprintf(tw, "\t%d\t%s\t%d\t%s\t%s\t%s\t%s\t\n",
				r.tree.Query, fmtDur(r.attr.Total), r.attr.Hops,
				pct(r.attr.Wait, r.attr.Total), pct(r.attr.Queued, r.attr.Total),
				pct(r.attr.Transfer, r.attr.Total), pathNodes(r.path))
		}
		tw.Flush()

		scheme := "run"
		if rt.manifest != nil && rt.manifest.Scheme != "" {
			scheme = rt.manifest.Scheme
		}
		fmt.Fprintf(w, "\n  %s aggregate over %d satisfied queries:\n", scheme, len(rows))
		fmt.Fprintf(w, "    mean delay %s, mean hops %.1f: wait %s%%, queued %s%%, transfer %s%%\n",
			fmtDur(sum.Total/float64(len(rows))), float64(sum.Hops)/float64(len(rows)),
			pct(sum.Wait, sum.Total), pct(sum.Queued, sum.Total), pct(sum.Transfer, sum.Total))
	}

	found := false
	if spanQuery >= 0 {
		for _, tree := range trees {
			if tree.Query == spanQuery {
				printTree(w, tree)
				found = true
			}
		}
	}
	return found
}

// pct renders part/total as a percentage string, "-" at zero total.
func pct(part, total float64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*part/total)
}

// pathNodes renders the node chain of a critical path, e.g. 2>5>9>4>2:
// the query's route out plus the reply's route back.
func pathNodes(path []*obs.SpanEvent) string {
	var b strings.Builder
	first := true
	for _, sp := range path {
		switch sp.Op {
		case provenance.OpQuerySeg, provenance.OpQuerySpray,
			provenance.OpQueryBcast, provenance.OpReplySeg:
			if first {
				fmt.Fprintf(&b, "%d", sp.A)
				first = false
			}
			fmt.Fprintf(&b, ">%d", sp.B)
		}
	}
	if first {
		return "-"
	}
	return b.String()
}

// printTree writes one query's full span tree, indented by causality.
func printTree(w io.Writer, tree *provenance.Tree) {
	fmt.Fprintf(w, "\n  span tree for query %d (trace %016x):\n", tree.Query, tree.TraceID)
	root := tree.Root()
	if root == nil {
		// Unsatisfied queries have no root issue span to hang the tree
		// from; show what was recorded, flat in span-ID order.
		fmt.Fprintln(w, "    (not satisfied: no root span; spans in ID order)")
		for i := range tree.Spans {
			fmt.Fprintf(w, "    %s\n", spanLine(&tree.Spans[i]))
		}
		return
	}
	var rec func(sp *obs.SpanEvent, depth int)
	rec = func(sp *obs.SpanEvent, depth int) {
		fmt.Fprintf(w, "    %s%s\n", strings.Repeat("  ", depth), spanLine(sp))
		for _, c := range tree.Children(sp.ID) {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
}

// spanLine renders one span compactly, per-op.
func spanLine(sp *obs.SpanEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] %s", sp.ID, sp.Op)
	switch sp.Op {
	case provenance.OpQuerySeg, provenance.OpQuerySpray,
		provenance.OpQueryBcast, provenance.OpReplySeg:
		fmt.Fprintf(&b, " %d>%d [%g, %g] wait %s xfer %gs",
			sp.A, sp.B, sp.Start, sp.End, fmtDur(sp.Enq-sp.Start), sp.V)
	case provenance.OpIssue:
		fmt.Fprintf(&b, " node %d data %d [%g, %g] (%s)",
			sp.A, sp.Aux, sp.Start, sp.End, fmtDur(sp.End-sp.Start))
	case provenance.OpDeliver:
		fmt.Fprintf(&b, " node %d @%g delay %s", sp.A, sp.Start, fmtDur(sp.V))
	case provenance.OpPull:
		fmt.Fprintf(&b, " node %d @%g data %d util %g", sp.A, sp.Start, sp.Aux, sp.V)
	case provenance.OpNCLMiss:
		fmt.Fprintf(&b, " center %d @%g ncl %d", sp.A, sp.Start, sp.Aux)
	case provenance.OpRetry:
		fmt.Fprintf(&b, " node %d @%g attempt %d", sp.A, sp.Start, sp.Aux)
	default:
		fmt.Fprintf(&b, " a=%d b=%d [%g, %g] x=%d v=%g",
			sp.A, sp.B, sp.Start, sp.End, sp.Aux, sp.V)
	}
	return b.String()
}

// fmtDur renders a virtual-time duration in seconds compactly.
func fmtDur(sec float64) string {
	switch {
	case sec >= 86400:
		return fmt.Sprintf("%.1fd", sec/86400)
	case sec >= 3600:
		return fmt.Sprintf("%.1fh", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%.1fm", sec/60)
	}
	return fmt.Sprintf("%.0fs", sec)
}
