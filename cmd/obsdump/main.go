// Command obsdump renders a recorded NDJSON run-trace (dtnsim
// -trace-out / experiments -trace-out) as human-readable tables: the
// run manifest, a binned timeline of event counts, and the evolution
// of cache occupancy and query hit ratio over virtual time.
//
// Usage:
//
//	dtnsim -trace Infocom05 -trace-out run.ndjson
//	obsdump run.ndjson
//	obsdump -bins 12 run.ndjson
//	cat a.ndjson b.ndjson | obsdump     # one section per manifest
//
// Concatenating traces of several schemes gives a per-scheme section
// each, so scheme behaviors can be compared side by side.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"dtncache/internal/obs"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

// event is one decoded NDJSON trace line. Manifest lines reuse the
// struct: their extra fields are simply empty on ordinary events.
type event struct {
	K  string  `json:"k"`
	T  float64 `json:"t"`
	A  int32   `json:"a"`
	B  int32   `json:"b"`
	ID int64   `json:"id"`
	X  int64   `json:"x"`
	V  float64 `json:"v"`
	S  string  `json:"s"`

	// Manifest header fields (k == "manifest").
	Trace        string `json:"trace"`
	Scheme       string `json:"scheme"`
	Seed         int64  `json:"seed"`
	ConfigDigest string `json:"config_digest"`
	GoVersion    string `json:"go_version"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	GitDescribe  string `json:"git_describe"`
}

// maxBins bounds the timeline resolution; beyond this the tables are
// unreadable anyway and the per-kind count rows get large.
const maxBins = 1_000_000

// runTrace is one manifest-delimited section of the input.
type runTrace struct {
	manifest *event // nil when the trace starts without a header
	events   []event
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsdump", flag.ContinueOnError)
	bins := fs.Int("bins", 24, "number of virtual-time bins in the timeline tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bins < 1 {
		return fmt.Errorf("-bins must be positive, got %d", *bins)
	}
	// Each occurring kind allocates a bins-long row; an absurd bin count
	// would abort with an out-of-memory panic instead of an error.
	if *bins > maxBins {
		return fmt.Errorf("-bins must be at most %d, got %d", maxBins, *bins)
	}

	var in io.Reader = os.Stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	runs, err := parseRuns(in)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return errors.New("no trace events in input")
	}
	for i, rt := range runs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		render(w, i+1, rt, *bins)
	}
	return nil
}

// parseRuns splits the NDJSON stream into manifest-delimited runs.
// Unknown kinds are kept (counted under their name); malformed lines
// are an error with their line number.
func parseRuns(r io.Reader) ([]runTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var runs []runTrace
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ev.K == obs.KindManifest.String() {
			runs = append(runs, runTrace{manifest: &ev})
			continue
		}
		if len(runs) == 0 {
			runs = append(runs, runTrace{})
		}
		cur := &runs[len(runs)-1]
		cur.events = append(cur.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return runs, nil
}

// render writes one run's manifest, timeline and evolution tables.
func render(w io.Writer, n int, rt runTrace, bins int) {
	fmt.Fprintf(w, "run %d:", n)
	if m := rt.manifest; m != nil {
		if m.Trace != "" {
			fmt.Fprintf(w, " trace=%q", m.Trace)
		}
		if m.Scheme != "" {
			fmt.Fprintf(w, " scheme=%s", m.Scheme)
		}
		fmt.Fprintf(w, " seed=%d", m.Seed)
		if m.ConfigDigest != "" {
			fmt.Fprintf(w, " digest=%s", m.ConfigDigest)
		}
		fmt.Fprintf(w, " %s gomaxprocs=%d", m.GoVersion, m.GoMaxProcs)
		if m.GitDescribe != "" {
			fmt.Fprintf(w, " git=%s", m.GitDescribe)
		}
	} else {
		fmt.Fprint(w, " (no manifest header)")
	}
	fmt.Fprintln(w)
	if len(rt.events) == 0 {
		fmt.Fprintln(w, "  no events")
		return
	}

	maxT := 0.0
	for i := range rt.events {
		if rt.events[i].T > maxT {
			maxT = rt.events[i].T
		}
	}
	fmt.Fprintf(w, "  %d events over [0, %.0fs] (%.1f days)\n",
		len(rt.events), maxT, maxT/86400)

	timeline(w, rt.events, bins, maxT)
	evolution(w, rt.events, bins, maxT)
	cellTable(w, rt.events)
}

// binOf maps a virtual time onto [0, bins).
func binOf(t, maxT float64, bins int) int {
	if maxT <= 0 {
		return 0
	}
	i := int(t / maxT * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// timelineKinds is the column order of the timeline table; kinds with
// no occurrences are dropped from the output.
var timelineKinds = []obs.Kind{
	obs.KindContactBegin, obs.KindContactEnd,
	obs.KindQueryIssued, obs.KindQueryAnswered, obs.KindQueryExpired,
	obs.KindCacheInsert, obs.KindCacheEvict,
	obs.KindPush, obs.KindPull, obs.KindKnowledge,
	obs.KindNodeDown, obs.KindNodeUp,
	obs.KindContactTruncated, obs.KindTransferKilled,
	obs.KindQueryRetry, obs.KindFailover, obs.KindReplicate,
}

// timeline prints per-bin event counts, one column per occurring kind.
func timeline(w io.Writer, events []event, bins int, maxT float64) {
	counts := make(map[string][]int64)
	for i := range events {
		ev := &events[i]
		if ev.K == obs.KindCell.String() {
			continue // wall-clock cell events get their own table
		}
		row := counts[ev.K]
		if row == nil {
			row = make([]int64, bins)
			counts[ev.K] = row
		}
		row[binOf(ev.T, maxT, bins)]++
	}
	if len(counts) == 0 {
		return
	}
	var cols []string
	for _, k := range timelineKinds {
		if counts[k.String()] != nil {
			cols = append(cols, k.String())
		}
	}
	// Kinds outside the known set (future trace versions) still show up,
	// in sorted name order so the rendering is deterministic.
	var unknown []string
	for k := range counts {
		if _, known := obs.KindByName(k); !known {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	cols = append(cols, unknown...)

	fmt.Fprintf(w, "\n  timeline (%d bins of %s):\n", bins, fmtDur(maxT/float64(bins)))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "\tt-start\t")
	for _, c := range cols {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	for b := 0; b < bins; b++ {
		fmt.Fprintf(tw, "\t%s\t", fmtDur(maxT*float64(b)/float64(bins)))
		for _, c := range cols {
			fmt.Fprintf(tw, "%d\t", counts[c][b])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// evolution prints the cumulative cache occupancy (inserts − evicts)
// and query hit ratio (answered / issued) at the end of each bin.
func evolution(w io.Writer, events []event, bins int, maxT float64) {
	type acc struct{ insert, evict, issued, answered, expired int64 }
	per := make([]acc, bins)
	any := false
	for i := range events {
		ev := &events[i]
		a := &per[binOf(ev.T, maxT, bins)]
		switch ev.K {
		case obs.KindCacheInsert.String():
			a.insert++
		case obs.KindCacheEvict.String():
			a.evict++
		case obs.KindQueryIssued.String():
			a.issued++
		case obs.KindQueryAnswered.String():
			a.answered++
		case obs.KindQueryExpired.String():
			a.expired++
		default:
			continue
		}
		any = true
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\n  evolution (cumulative at bin end):\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "\tt-end\tcached\tissued\tanswered\texpired\thit-ratio\t")
	var cum acc
	for b := 0; b < bins; b++ {
		cum.insert += per[b].insert
		cum.evict += per[b].evict
		cum.issued += per[b].issued
		cum.answered += per[b].answered
		cum.expired += per[b].expired
		ratio := "-"
		if cum.issued > 0 {
			ratio = fmt.Sprintf("%.3f", float64(cum.answered)/float64(cum.issued))
		}
		fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t%d\t%s\t\n",
			fmtDur(maxT*float64(b+1)/float64(bins)),
			cum.insert-cum.evict, cum.issued, cum.answered, cum.expired, ratio)
	}
	tw.Flush()
}

// cellTable summarizes experiment sweep-cell events per scheme label.
func cellTable(w io.Writer, events []event) {
	type agg struct {
		cells int64
		wall  float64
	}
	per := make(map[string]*agg)
	var order []string
	for i := range events {
		ev := &events[i]
		if ev.K != obs.KindCell.String() {
			continue
		}
		a := per[ev.S]
		if a == nil {
			a = &agg{}
			per[ev.S] = a
			order = append(order, ev.S)
		}
		a.cells++
		a.wall += ev.V
	}
	if len(per) == 0 {
		return
	}
	fmt.Fprintf(w, "\n  sweep cells per scheme:\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "\tscheme\tcells\twall-total\t")
	for _, s := range order {
		fmt.Fprintf(tw, "\t%s\t%d\t%.2fs\t\n", s, per[s].cells, per[s].wall)
	}
	tw.Flush()
}

// fmtDur renders a virtual-time duration in seconds compactly.
func fmtDur(sec float64) string {
	switch {
	case sec >= 86400:
		return fmt.Sprintf("%.1fd", sec/86400)
	case sec >= 3600:
		return fmt.Sprintf("%.1fh", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%.1fm", sec/60)
	}
	return fmt.Sprintf("%.0fs", sec)
}
