package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// synthetic is a tiny hand-written trace: a manifest, two contacts, a
// query answered, a query expired, cache churn and one sweep cell.
const synthetic = `{"k":"manifest","trace":"Synthetic","scheme":"Intentional","seed":7,"config_digest":"00c0ffee00c0ffee","go_version":"go1.24.0","gomaxprocs":4,"git_describe":"abc1234"}
{"k":"contact-begin","t":10,"a":1,"b":2}
{"k":"query-issued","t":20,"a":3,"id":0,"x":5}
{"k":"cache-insert","t":30,"a":2,"id":5,"v":0.25}
{"k":"contact-end","t":40,"a":1,"b":2,"v":8000}
{"k":"query-answered","t":50,"a":3,"id":0,"v":30}
{"k":"query-issued","t":60,"a":4,"id":1,"x":6}
{"k":"cache-evict","t":80,"a":2,"id":5,"v":0.01}
{"k":"query-expired","t":100,"a":4,"id":1}
{"k":"cell","t":0,"x":1,"v":1.5,"s":"Intentional"}
`

func dump(t *testing.T, input string, args ...string) string {
	t.Helper()
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, input); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(append(args, path), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestDumpSyntheticTrace(t *testing.T) {
	out := dump(t, synthetic, "-bins", "2")
	for _, want := range []string{
		`trace="Synthetic"`, "scheme=Intentional", "seed=7",
		"digest=00c0ffee00c0ffee", "go1.24.0", "gomaxprocs=4", "git=abc1234",
		"9 events over [0, 100s]",
		"timeline (2 bins",
		"contact-begin", "query-issued", "cache-insert",
		"evolution (cumulative at bin end)",
		"hit-ratio",
		"sweep cells per scheme",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpEvolutionNumbers(t *testing.T) {
	out := dump(t, synthetic, "-bins", "1")
	// Single bin: 1 insert − 1 evict = 0 cached, 2 issued, 1 answered,
	// 1 expired, hit ratio 0.500.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "0.500") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no evolution row with hit-ratio 0.500:\n%s", out)
	}
	for _, col := range []string{"0", "2", "1"} {
		if !strings.Contains(line, col) {
			t.Errorf("evolution row %q missing %q", line, col)
		}
	}
}

func TestDumpMultipleRuns(t *testing.T) {
	second := strings.Replace(synthetic, `"scheme":"Intentional"`, `"scheme":"Epidemic"`, 1)
	out := dump(t, synthetic+second)
	if !strings.Contains(out, "run 1:") || !strings.Contains(out, "run 2:") {
		t.Errorf("concatenated traces must render one section per manifest:\n%s", out)
	}
	if !strings.Contains(out, "scheme=Epidemic") {
		t.Errorf("second manifest's scheme missing:\n%s", out)
	}
}

func TestDumpHeaderlessTrace(t *testing.T) {
	out := dump(t, `{"k":"contact-begin","t":1,"a":0,"b":1}`+"\n")
	if !strings.Contains(out, "no manifest header") {
		t.Errorf("headerless trace must be flagged:\n%s", out)
	}
}

func TestDumpRejectsBadInput(t *testing.T) {
	path := t.TempDir() + "/bad.ndjson"
	if err := writeFile(path, "not json\n"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err == nil {
		t.Error("malformed line accepted")
	}
	if err := run([]string{"-bins", "0", path}, &out); err == nil {
		t.Error("-bins 0 accepted")
	}
	empty := t.TempDir() + "/empty.ndjson"
	if err := writeFile(empty, ""); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Error("empty trace accepted")
	}
}

// Truncated, binary and oversized inputs must come back as one-line
// errors (nonzero exit via main), never as panics.
func TestDumpRejectsCorruptInput(t *testing.T) {
	cases := []struct {
		name, input string
		wantIn      string
	}{
		{"truncated json", synthetic[:len(synthetic)-20], "line"},
		{"binary garbage", "\x00\x01\x02\xff\xfe\n", "line 1"},
		{"mid-stream truncation", `{"k":"contact-begin","t":1,"a":0,"b":1}` + "\n" + `{"k":"query-iss`, "line 2"},
		{"oversized line", `{"k":"x","s":"` + strings.Repeat("a", 2<<20) + `"}`, "token too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/corrupt.ndjson"
			if err := writeFile(path, tc.input); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			err := run([]string{path}, &out)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not mention %q", err, tc.wantIn)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

func TestDumpRejectsHugeBins(t *testing.T) {
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, synthetic); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-bins", "1000000000000", path}, &out); err == nil {
		t.Error("absurd -bins accepted")
	}
}

func TestDumpFaultTimeline(t *testing.T) {
	faulted := synthetic +
		`{"k":"node-down","t":35,"a":2}` + "\n" +
		`{"k":"node-up","t":55,"a":2}` + "\n" +
		`{"k":"query-retry","t":62,"a":4,"id":1,"x":1}` + "\n" +
		`{"k":"ncl-failover","t":36,"a":2,"b":5,"x":0}` + "\n"
	out := dump(t, faulted, "-bins", "2")
	for _, want := range []string{"node-down", "node-up", "query-retry", "ncl-failover"} {
		if !strings.Contains(out, want) {
			t.Errorf("failure timeline missing %q column:\n%s", want, out)
		}
	}
}

func TestDumpUnknownKindStillCounted(t *testing.T) {
	out := dump(t, synthetic+`{"k":"future-kind","t":90}`+"\n")
	if !strings.Contains(out, "future-kind") {
		t.Errorf("unknown kinds must still appear as a timeline column:\n%s", out)
	}
}
