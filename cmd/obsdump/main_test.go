package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// synthetic is a tiny hand-written trace: a manifest, two contacts, a
// query answered, a query expired, cache churn and one sweep cell.
const synthetic = `{"k":"manifest","trace":"Synthetic","scheme":"Intentional","seed":7,"config_digest":"00c0ffee00c0ffee","go_version":"go1.24.0","gomaxprocs":4,"git_describe":"abc1234"}
{"k":"contact-begin","t":10,"a":1,"b":2}
{"k":"query-issued","t":20,"a":3,"id":0,"x":5}
{"k":"cache-insert","t":30,"a":2,"id":5,"v":0.25}
{"k":"contact-end","t":40,"a":1,"b":2,"v":8000}
{"k":"query-answered","t":50,"a":3,"id":0,"v":30}
{"k":"query-issued","t":60,"a":4,"id":1,"x":6}
{"k":"cache-evict","t":80,"a":2,"id":5,"v":0.01}
{"k":"query-expired","t":100,"a":4,"id":1}
{"k":"cell","t":0,"x":1,"v":1.5,"s":"Intentional"}
`

// spanLines is the span stream of one satisfied query (0: issued at
// 10 by node 2, answered at 100 via 2>5>9>4>2, wait 63s transfer 5.5s)
// plus one still-unsatisfied query (1).
const spanLines = `{"k":"span","t":10,"e":50,"nq":40,"tr":"00000000000000ff","sp":1,"pa":0,"op":"q-seg","a":2,"b":5,"id":0,"x":9,"v":1}
{"k":"span","t":50,"e":75,"nq":70,"tr":"00000000000000ff","sp":2,"pa":1,"op":"q-seg","a":5,"b":9,"id":0,"x":9,"v":1}
{"k":"span","t":75,"e":75,"tr":"00000000000000ff","sp":3,"pa":2,"op":"ncl-miss","a":9,"id":0,"x":3}
{"k":"span","t":75,"e":82,"nq":80,"tr":"00000000000000ff","sp":4,"pa":2,"op":"q-bcast","a":9,"b":4,"id":0,"x":9,"v":1}
{"k":"span","t":82,"e":82,"tr":"00000000000000ff","sp":5,"pa":4,"op":"pull","a":4,"id":0,"x":7,"v":0.25}
{"k":"span","t":82,"e":100,"nq":90,"tr":"00000000000000ff","sp":6,"pa":5,"op":"r-seg","a":4,"b":2,"id":0,"v":2.5}
{"k":"span","t":100,"e":100,"tr":"00000000000000ff","sp":7,"pa":6,"op":"deliver","a":2,"id":0,"v":90}
{"k":"span","t":10,"e":100,"tr":"00000000000000ff","sp":0,"op":"issue","a":2,"id":0,"x":7}
{"k":"span","t":60,"e":70,"nq":65,"tr":"00000000000000aa","sp":1,"pa":0,"op":"q-seg","a":4,"b":6,"id":1,"x":6,"v":1}
`

func dump(t *testing.T, input string, args ...string) string {
	t.Helper()
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, input); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(append(args, path), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestDumpSyntheticTrace(t *testing.T) {
	out := dump(t, synthetic, "-bins", "2")
	for _, want := range []string{
		`trace="Synthetic"`, "scheme=Intentional", "seed=7",
		"digest=00c0ffee00c0ffee", "go1.24.0", "gomaxprocs=4", "git=abc1234",
		"9 events over [0, 100s]",
		"timeline (2 bins",
		"contact-begin", "query-issued", "cache-insert",
		"evolution (cumulative at bin end)",
		"hit-ratio",
		"sweep cells per scheme",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpEvolutionNumbers(t *testing.T) {
	out := dump(t, synthetic, "-bins", "1")
	// Single bin: 1 insert − 1 evict = 0 cached, 2 issued, 1 answered,
	// 1 expired, hit ratio 0.500.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "0.500") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no evolution row with hit-ratio 0.500:\n%s", out)
	}
	for _, col := range []string{"0", "2", "1"} {
		if !strings.Contains(line, col) {
			t.Errorf("evolution row %q missing %q", line, col)
		}
	}
}

func TestDumpMultipleRuns(t *testing.T) {
	second := strings.Replace(synthetic, `"scheme":"Intentional"`, `"scheme":"Epidemic"`, 1)
	out := dump(t, synthetic+second)
	if !strings.Contains(out, "run 1:") || !strings.Contains(out, "run 2:") {
		t.Errorf("concatenated traces must render one section per manifest:\n%s", out)
	}
	if !strings.Contains(out, "scheme=Epidemic") {
		t.Errorf("second manifest's scheme missing:\n%s", out)
	}
}

func TestDumpHeaderlessTrace(t *testing.T) {
	out := dump(t, `{"k":"contact-begin","t":1,"a":0,"b":1}`+"\n")
	if !strings.Contains(out, "no manifest header") {
		t.Errorf("headerless trace must be flagged:\n%s", out)
	}
}

func TestDumpRejectsBadInput(t *testing.T) {
	path := t.TempDir() + "/bad.ndjson"
	if err := writeFile(path, "not json\n"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err == nil {
		t.Error("malformed line accepted")
	}
	if err := run([]string{"-bins", "0", path}, &out); err == nil {
		t.Error("-bins 0 accepted")
	}
	empty := t.TempDir() + "/empty.ndjson"
	if err := writeFile(empty, ""); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Error("empty trace accepted")
	}
}

// Truncated, binary and oversized inputs must come back as one-line
// errors (nonzero exit via main), never as panics.
func TestDumpRejectsCorruptInput(t *testing.T) {
	cases := []struct {
		name, input string
		wantIn      string
	}{
		{"truncated json", synthetic[:len(synthetic)-20], "line"},
		{"binary garbage", "\x00\x01\x02\xff\xfe\n", "line 1"},
		{"mid-stream truncation", `{"k":"contact-begin","t":1,"a":0,"b":1}` + "\n" + `{"k":"query-iss`, "line 2"},
		{"oversized line", `{"k":"x","s":"` + strings.Repeat("a", 2<<20) + `"}`, "token too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/corrupt.ndjson"
			if err := writeFile(path, tc.input); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			err := run([]string{path}, &out)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not mention %q", err, tc.wantIn)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

func TestDumpRejectsHugeBins(t *testing.T) {
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, synthetic); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-bins", "1000000000000", path}, &out); err == nil {
		t.Error("absurd -bins accepted")
	}
}

func TestDumpFaultTimeline(t *testing.T) {
	faulted := synthetic +
		`{"k":"node-down","t":35,"a":2}` + "\n" +
		`{"k":"node-up","t":55,"a":2}` + "\n" +
		`{"k":"query-retry","t":62,"a":4,"id":1,"x":1}` + "\n" +
		`{"k":"ncl-failover","t":36,"a":2,"b":5,"x":0}` + "\n"
	out := dump(t, faulted, "-bins", "2")
	for _, want := range []string{"node-down", "node-up", "query-retry", "ncl-failover"} {
		if !strings.Contains(out, want) {
			t.Errorf("failure timeline missing %q column:\n%s", want, out)
		}
	}
}

func TestDumpSpansAttributionTable(t *testing.T) {
	out := dump(t, synthetic+spanLines, "-spans")
	for _, want := range []string{
		"scheme=Intentional",
		"9 spans across 2 traced queries, 1 satisfied",
		"critical-path delay attribution (1 slowest of 1)",
		"2>5>9>4>2", // query out, reply back
		// Total 90s: wait 63 (70.0%), transfer 5.5 (6.1%), queued residual
		// 21.5 (23.9%).
		"70.0", "23.9", "6.1",
		"Intentional aggregate over 1 satisfied queries",
		"mean delay 1.5m, mean hops 4.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("span output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "timeline") {
		t.Errorf("-spans must replace the timeline tables:\n%s", out)
	}
}

func TestDumpSpanQueryTree(t *testing.T) {
	out := dump(t, synthetic+spanLines, "-spans", "-span-query", "0")
	for _, want := range []string{
		"span tree for query 0 (trace 00000000000000ff)",
		"[0] issue node 2 data 7 [10, 100] (1.5m)",
		"[1] q-seg 2>5 [10, 50] wait 30s xfer 1s",
		"[3] ncl-miss center 9 @75 ncl 3",
		"[5] pull node 4 @82 data 7 util 0.25",
		"[7] deliver node 2 @100 delay 1.5m",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
	// Causal indentation: the pull (depth 3) sits deeper than its
	// grandparent segment (depth 1).
	if !strings.Contains(out, "      [5] pull") {
		t.Errorf("pull span not indented below its causes:\n%s", out)
	}
}

func TestDumpSpanQueryUnsatisfiedAndUnknown(t *testing.T) {
	out := dump(t, synthetic+spanLines, "-spans", "-span-query", "1")
	if !strings.Contains(out, "not satisfied: no root span") {
		t.Errorf("unsatisfied query's spans must still print:\n%s", out)
	}
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, synthetic+spanLines); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	err := run([]string{"-spans", "-span-query", "42", path}, &sink)
	if err == nil || !strings.Contains(err.Error(), "query 42") {
		t.Errorf("unknown -span-query must error, got %v", err)
	}
}

// A trace recorded without span events must come back from -spans as a
// one-line error (nonzero exit via main), not as empty tables.
func TestDumpSpanlessTraceErrors(t *testing.T) {
	path := t.TempDir() + "/trace.ndjson"
	if err := writeFile(path, synthetic); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	err := run([]string{"-spans", path}, &sink)
	if err == nil {
		t.Fatal("-spans accepted a spanless trace")
	}
	if !strings.Contains(err.Error(), "no span events") {
		t.Errorf("error %q does not say the trace has no span events", err)
	}
	if strings.Contains(err.Error(), "\n") {
		t.Errorf("error is not one line: %q", err)
	}
	if err := run([]string{"-spans", "-top", "0", path}, &sink); err == nil {
		t.Error("-top 0 accepted")
	}
}

func TestDumpSpanTimelineColumn(t *testing.T) {
	out := dump(t, synthetic+spanLines, "-bins", "2")
	if !strings.Contains(out, "span") {
		t.Errorf("default mode must count span events in the timeline:\n%s", out)
	}
}

func TestDumpUnknownKindStillCounted(t *testing.T) {
	out := dump(t, synthetic+`{"k":"future-kind","t":90}`+"\n")
	if !strings.Contains(out, "future-kind") {
		t.Errorf("unknown kinds must still appear as a timeline column:\n%s", out)
	}
}
