// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec. VI). Each experiment prints a text table whose shape
// should be compared against the published figure; see EXPERIMENTS.md
// for the recorded comparison.
//
// Usage:
//
//	experiments               # run everything (several minutes)
//	experiments -fig 10       # only Fig. 10
//	experiments -fig table1   # only Table I
//	experiments -quick        # reduced sweeps (~1 minute)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dtncache/internal/experiment"
	"dtncache/internal/obs"
	"dtncache/internal/prof"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "which artifact to regenerate: table1, 4, 7, 9, 10, 11, 12, 13, ablation, delay, robustness, degradation, routing, traces, rwp, all")
		seed       = fs.Int64("seed", 1, "random seed")
		repeats    = fs.Int("repeats", 1, "repetitions to average per cell")
		quick      = fs.Bool("quick", false, "reduced sweeps for a fast pass")
		faultChurn = fs.Float64("fault-churn", 0, "degradation sweep: collapse the intensity axis to {0, this} crashes/node/day")
		faultDown  = fs.Duration("fault-downtime", 0, "degradation sweep: mean downtime per crash (0 = default)")
		csvOut     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outDir     = fs.String("outdir", "", "also write each table as CSV into this directory")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf    = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
		progress   = fs.Bool("progress", false, "print a completion line per sweep cell to stderr")
		obsSummary = fs.Bool("obs-summary", false, "print per-scheme cell timings to stderr at the end")
		traceOut   = fs.String("trace-out", "", "record sweep-cell NDJSON events to this `file` (wall-clock timings: not byte-stable across runs)")
		flightN    = fs.Int("flight-recorder", 0, "keep only the last `n` cell events in a ring")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	o := experiment.FigureOptions{
		Seed: *seed, Repeats: *repeats, Quick: *quick,
		FaultChurnPerDay: *faultChurn, FaultDowntimeSec: faultDown.Seconds(),
	}

	// Observability rides on the experiment cell hook: every completed
	// sweep cell (one simulation run) reports its scheme and wall time.
	// Cells run in parallel, so the hook serializes recorder access with
	// a mutex.
	var (
		rec      *obs.Recorder
		ring     *obs.RingSink
		phases   *obs.Phases
		manifest obs.Manifest
	)
	if *progress || *obsSummary || *traceOut != "" || *flightN > 0 {
		phases = obs.NewPhases(func() int64 { return time.Now().UnixNano() })
		var sink obs.Sink
		switch {
		case *flightN > 0:
			ring = obs.NewRingSink(*flightN)
			sink = ring
		case *traceOut != "":
			w, werr := os.Create(*traceOut)
			if werr != nil {
				return werr
			}
			sink = obs.NewStreamSink(w)
		}
		rec = obs.NewRecorder(sink, obs.WithPhases(phases))
		manifest = obs.NewManifest("", *fig, *seed, o)
		if ring == nil {
			rec.Manifest(manifest)
		}
		var mu sync.Mutex
		var cells int64
		wallStart := time.Now()
		experiment.SetCellHook(func(schemeName string, wallNs int64) {
			mu.Lock()
			defer mu.Unlock()
			cells++
			phases.Add("cell:"+schemeName, wallNs)
			rec.Cell(cells, float64(wallNs)/1e9, schemeName)
			if *progress {
				fmt.Fprintf(os.Stderr, "[progress] cell %d (%s) done in %s, elapsed %s\n",
					cells, schemeName, time.Duration(wallNs).Round(time.Millisecond),
					time.Since(wallStart).Round(time.Second))
			}
		})
		defer experiment.SetCellHook(nil)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(t *experiment.Table) error {
		if *outDir != "" {
			name := strings.ToLower(strings.NewReplacer(" ", "-", ".", "").Replace(t.ID)) + ".csv"
			f, err := os.Create(filepath.Join(*outDir, name))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *csvOut {
			return t.WriteCSV(os.Stdout)
		}
		fmt.Println(t.Format())
		return nil
	}

	type job struct {
		key string
		run func() error
	}
	one := func(f func(experiment.FigureOptions) (*experiment.Table, error)) func() error {
		return func() error {
			t, err := f(o)
			if err != nil {
				return err
			}
			return emit(t)
		}
	}
	jobs := []job{
		{"table1", one(experiment.Table1)},
		{"4", one(experiment.Fig4)},
		{"7", one(experiment.Fig7)},
		{"9", func() error {
			a, b, err := experiment.Fig9(o)
			if err != nil {
				return err
			}
			if err := emit(a); err != nil {
				return err
			}
			return emit(b)
		}},
		{"10", one(experiment.Fig10)},
		{"11", one(experiment.Fig11)},
		{"12", one(experiment.Fig12)},
		{"13", one(experiment.Fig13)},
		{"ablation", one(experiment.Ablations)},
		{"delay", one(experiment.DelayBreakdown)},
		{"robustness", one(experiment.Robustness)},
		{"degradation", one(experiment.Degradation)},
		{"routing", one(experiment.RoutingComparison)},
		{"traces", one(experiment.CrossTrace)},
		{"rwp", one(experiment.RWPComparison)},
	}
	want := strings.ToLower(*fig)
	ran := false
	for _, j := range jobs {
		if want != "all" && want != j.key {
			continue
		}
		start := time.Now()
		if err := j.run(); err != nil {
			if ring != nil {
				fmt.Fprintf(os.Stderr, "flight recorder: last %d of %d cell events\n",
					ring.Len(), ring.Len()+int(ring.Dropped()))
				os.Stderr.Write(append(manifest.AppendJSON(nil), '\n'))
				_ = ring.Dump(os.Stderr)
			}
			_ = rec.Close()
			return fmt.Errorf("experiment %s: %w", j.key, err)
		}
		if !*csvOut {
			fmt.Printf("[%s done in %s]\n\n", j.key, time.Since(start).Round(time.Millisecond))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	if ring != nil && *traceOut != "" {
		if err := dumpRing(*traceOut, manifest, ring); err != nil {
			return err
		}
	}
	if err := rec.Close(); err != nil {
		return err
	}
	if *obsSummary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	return stopProf()
}

// dumpRing writes the manifest line followed by the ring's retained
// events to path.
func dumpRing(path string, m obs.Manifest, ring *obs.RingSink) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(m.AppendJSON(nil), '\n')); err != nil {
		w.Close()
		return err
	}
	if err := ring.Dump(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
