// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec. VI). Each experiment prints a text table whose shape
// should be compared against the published figure; see EXPERIMENTS.md
// for the recorded comparison.
//
// Usage:
//
//	experiments               # run everything (several minutes)
//	experiments -fig 10       # only Fig. 10
//	experiments -fig table1   # only Table I
//	experiments -quick        # reduced sweeps (~1 minute)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dtncache/internal/cli"
	"dtncache/internal/experiment"
	"dtncache/internal/obs"
	"dtncache/internal/prof"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "which artifact to regenerate: table1, 4, 7, 9, 10, 11, 12, 13, ablation, delay, robustness, degradation, routing, traces, rwp, all")
		seed       = fs.Int64("seed", 1, "random seed")
		repeats    = fs.Int("repeats", 1, "repetitions to average per cell")
		quick      = fs.Bool("quick", false, "reduced sweeps for a fast pass")
		faultChurn = fs.Float64("fault-churn", 0, "degradation sweep: collapse the intensity axis to {0, this} crashes/node/day")
		faultDown  = fs.Duration("fault-downtime", 0, "degradation sweep: mean downtime per crash (0 = default)")
		csvOut     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outDir     = fs.String("outdir", "", "also write each table as CSV into this directory")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf    = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
		progress = fs.Bool("progress", false, "print a completion line per sweep cell to stderr")
		of       = cli.AddObsFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	o := experiment.FigureOptions{
		Seed: *seed, Repeats: *repeats, Quick: *quick,
		FaultChurnPerDay: *faultChurn, FaultDowntimeSec: faultDown.Seconds(),
	}

	// Observability rides on the experiment cell hook: every completed
	// sweep cell (one simulation run) reports its scheme and wall time.
	// Cells run in parallel, so the hook serializes recorder access with
	// a mutex.
	rec, ring, err := of.NewRecorder()
	if err != nil {
		return err
	}
	if rec == nil && *progress {
		// -progress alone still needs the phase timers for the cell hook.
		rec = obs.NewRecorder(nil, obs.WithPhases(obs.NewPhases(cli.WallClock)))
	}
	var manifest obs.Manifest
	if rec != nil {
		phases := rec.Phases()
		manifest = obs.NewManifest("", *fig, *seed, o)
		if ring == nil {
			rec.Manifest(manifest)
		}
		var mu sync.Mutex
		var cells int64
		wallStart := time.Now()
		experiment.SetCellHook(func(schemeName string, wallNs int64) {
			mu.Lock()
			defer mu.Unlock()
			cells++
			phases.Add("cell:"+schemeName, wallNs)
			rec.Cell(cells, float64(wallNs)/1e9, schemeName)
			if *progress {
				fmt.Fprintf(os.Stderr, "[progress] cell %d (%s) done in %s, elapsed %s\n",
					cells, schemeName, time.Duration(wallNs).Round(time.Millisecond),
					time.Since(wallStart).Round(time.Second))
			}
		})
		defer experiment.SetCellHook(nil)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(t *experiment.Table) error {
		if *outDir != "" {
			name := strings.ToLower(strings.NewReplacer(" ", "-", ".", "").Replace(t.ID)) + ".csv"
			f, err := os.Create(filepath.Join(*outDir, name))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *csvOut {
			return t.WriteCSV(os.Stdout)
		}
		fmt.Println(t.Format())
		return nil
	}

	type job struct {
		key string
		run func() error
	}
	one := func(f func(experiment.FigureOptions) (*experiment.Table, error)) func() error {
		return func() error {
			t, err := f(o)
			if err != nil {
				return err
			}
			return emit(t)
		}
	}
	jobs := []job{
		{"table1", one(experiment.Table1)},
		{"4", one(experiment.Fig4)},
		{"7", one(experiment.Fig7)},
		{"9", func() error {
			a, b, err := experiment.Fig9(o)
			if err != nil {
				return err
			}
			if err := emit(a); err != nil {
				return err
			}
			return emit(b)
		}},
		{"10", one(experiment.Fig10)},
		{"11", one(experiment.Fig11)},
		{"12", one(experiment.Fig12)},
		{"13", one(experiment.Fig13)},
		{"ablation", one(experiment.Ablations)},
		{"delay", one(experiment.DelayBreakdown)},
		{"robustness", one(experiment.Robustness)},
		{"degradation", one(experiment.Degradation)},
		{"routing", one(experiment.RoutingComparison)},
		{"traces", one(experiment.CrossTrace)},
		{"rwp", one(experiment.RWPComparison)},
	}
	want := strings.ToLower(*fig)
	ran := false
	for _, j := range jobs {
		if want != "all" && want != j.key {
			continue
		}
		start := time.Now()
		if err := j.run(); err != nil {
			if ring != nil {
				cli.DumpRingErr(manifest, ring)
			}
			_ = rec.Close()
			return fmt.Errorf("experiment %s: %w", j.key, err)
		}
		if !*csvOut {
			fmt.Printf("[%s done in %s]\n\n", j.key, time.Since(start).Round(time.Millisecond))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	if ring != nil && *of.TraceOut != "" {
		w, werr := cli.OpenTraceOut(*of.TraceOut)
		if werr != nil {
			return werr
		}
		if werr = cli.DumpRing(w, manifest, ring); werr != nil {
			return werr
		}
	}
	if err := rec.Close(); err != nil {
		return err
	}
	if *of.Summary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	return stopProf()
}
