// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec. VI). Each experiment prints a text table whose shape
// should be compared against the published figure; see EXPERIMENTS.md
// for the recorded comparison.
//
// Usage:
//
//	experiments               # run everything (several minutes)
//	experiments -fig 10       # only Fig. 10
//	experiments -fig table1   # only Table I
//	experiments -quick        # reduced sweeps (~1 minute)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dtncache/internal/experiment"
	"dtncache/internal/prof"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "which artifact to regenerate: table1, 4, 7, 9, 10, 11, 12, 13, ablation, delay, robustness, routing, traces, rwp, all")
		seed    = fs.Int64("seed", 1, "random seed")
		repeats = fs.Int("repeats", 1, "repetitions to average per cell")
		quick   = fs.Bool("quick", false, "reduced sweeps for a fast pass")
		csvOut  = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outDir  = fs.String("outdir", "", "also write each table as CSV into this directory")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	o := experiment.FigureOptions{Seed: *seed, Repeats: *repeats, Quick: *quick}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(t *experiment.Table) error {
		if *outDir != "" {
			name := strings.ToLower(strings.NewReplacer(" ", "-", ".", "").Replace(t.ID)) + ".csv"
			f, err := os.Create(filepath.Join(*outDir, name))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *csvOut {
			return t.WriteCSV(os.Stdout)
		}
		fmt.Println(t.Format())
		return nil
	}

	type job struct {
		key string
		run func() error
	}
	one := func(f func(experiment.FigureOptions) (*experiment.Table, error)) func() error {
		return func() error {
			t, err := f(o)
			if err != nil {
				return err
			}
			return emit(t)
		}
	}
	jobs := []job{
		{"table1", one(experiment.Table1)},
		{"4", one(experiment.Fig4)},
		{"7", one(experiment.Fig7)},
		{"9", func() error {
			a, b, err := experiment.Fig9(o)
			if err != nil {
				return err
			}
			if err := emit(a); err != nil {
				return err
			}
			return emit(b)
		}},
		{"10", one(experiment.Fig10)},
		{"11", one(experiment.Fig11)},
		{"12", one(experiment.Fig12)},
		{"13", one(experiment.Fig13)},
		{"ablation", one(experiment.Ablations)},
		{"delay", one(experiment.DelayBreakdown)},
		{"robustness", one(experiment.Robustness)},
		{"routing", one(experiment.RoutingComparison)},
		{"traces", one(experiment.CrossTrace)},
		{"rwp", one(experiment.RWPComparison)},
	}
	want := strings.ToLower(*fig)
	ran := false
	for _, j := range jobs {
		if want != "all" && want != j.key {
			continue
		}
		start := time.Now()
		if err := j.run(); err != nil {
			return fmt.Errorf("experiment %s: %w", j.key, err)
		}
		if !*csvOut {
			fmt.Printf("[%s done in %s]\n\n", j.key, time.Since(start).Round(time.Millisecond))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return stopProf()
}
