package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-fig", "7", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "7", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig-7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "p_R") {
		t.Errorf("csv content = %q", data)
	}
}
