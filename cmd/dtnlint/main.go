// Command dtnlint is the determinism-lint multichecker for this
// repository. It runs the internal/analysis suite — nondeterminism,
// maporder, seedflow, and the concurrency-readiness analyzers
// immutable, rngshare, allocfree, and goguard — over the requested
// packages and reports every violation of the determinism contract
// (see DESIGN.md): all randomness must flow through
// internal/mathx.Rand seeded streams, no wall-clock time may leak into
// simulation logic, no result may depend on Go map-iteration order,
// //dtn:immutable values are never mutated after construction, RNG
// streams are never aliased across goroutines or sweep cells,
// //dtn:allocfree hot paths contain no allocation-forcing constructs,
// and goroutines appear only in joined //dtn:workerpool sites.
//
// Usage:
//
//	dtnlint ./...                 # lint the whole repository
//	dtnlint ./internal/sim        # lint one package
//	dtnlint -tests ./internal/... # include in-package _test.go files
//	dtnlint -stale-allows ./...   # also flag //lint:allow directives that no longer fire
//	dtnlint -list                 # show the analyzers and their docs
//
// Scoped analyzers run on their package list plus any package whose doc
// comment carries the //dtn:determinism marker, so new packages opt in
// with one line instead of editing the analyzer.
//
// A false positive is silenced with an inline directive on the flagged
// line or the line above (covering that statement's full span):
//
//	//lint:allow maporder reason why the order cannot matter here
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load or usage error.
//
// The framework is built on the standard library's go/types with a
// source importer, so it needs neither network access nor
// golang.org/x/tools.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dtncache/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the multichecker and returns the process exit code.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("dtnlint", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		tests    = fs.Bool("tests", false, "also lint in-package _test.go files")
		noScope  = fs.Bool("all-packages", false, "ignore analyzer package scopes (lint everything everywhere)")
		analyzer = fs.String("analyzer", "", "run only the named analyzer")
		stale    = fs.Bool("stale-allows", false, "flag //lint:allow directives whose analyzer ran but no longer fires on that line")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dtnlint [flags] [packages]\n\n"+
			"Determinism lint for the dtncache repository. Patterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if *analyzer != "" {
		kept := analyzers[:0]
		for _, a := range analyzers {
			if a.Name == *analyzer {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			return 2, fmt.Errorf("unknown analyzer %q", *analyzer)
		}
		analyzers = kept[:1:1]
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 2, err
	}
	loader.IncludeTests = *tests
	dirs, err := analysis.ExpandPatterns(loader.ModuleRoot, fs.Args())
	if err != nil {
		return 2, err
	}

	count := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return 2, err
		}
		runner := analysis.NewRunner(pkg)
		for _, a := range analyzers {
			// A //dtn:determinism package-doc marker opts the package into
			// every scoped analyzer, so a new package cannot silently fall
			// out of lint scope.
			if !*noScope && !a.AppliesTo(pkg.Path) && !pkg.Marked(analysis.MarkerDeterminism) {
				continue
			}
			diags, err := runner.Run(a)
			if err != nil {
				return 2, err
			}
			for _, d := range diags {
				count++
				fmt.Fprintf(out, "%s:%d:%d: %s: %s\n",
					relPath(loader.ModuleRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column,
					d.Analyzer, d.Message)
			}
		}
		if *stale {
			for _, d := range runner.Stale() {
				count++
				fmt.Fprintf(out, "%s:%d:%d: stale //lint:allow %s: the analyzer ran and no longer flags this line; delete the directive\n",
					relPath(loader.ModuleRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer)
			}
		}
	}
	if count > 0 {
		fmt.Fprintf(out, "dtnlint: %d finding(s)\n", count)
		return 1, nil
	}
	return 0, nil
}

// relPath shortens filenames to module-relative paths when possible.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
