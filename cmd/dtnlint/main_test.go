package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	code, err := run([]string{"-list"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("list: code %d, err %v", code, err)
	}
	for _, name := range []string{"nondeterminism", "maporder", "seedflow"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("list output missing %s:\n%s", name, buf.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var buf strings.Builder
	if _, err := run([]string{"-analyzer", "nope"}, &buf); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

func TestCleanPackage(t *testing.T) {
	var buf strings.Builder
	code, err := run([]string{"./internal/mathx"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("mathx should be clean, got code %d:\n%s", code, buf.String())
	}
}

func TestFindingsInFixture(t *testing.T) {
	// The analyzer golden fixtures are deliberately full of violations;
	// pointing the driver at one must produce findings and exit code 1.
	var buf strings.Builder
	code, err := run([]string{
		"-analyzer", "maporder", "internal/analysis/testdata/src/maporder",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("expected findings (code 1), got %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "maporder:") {
		t.Errorf("output missing analyzer name:\n%s", buf.String())
	}
}
