// Command dtnload drives a dtnserved instance: it publishes a batch of
// data items, issues Zipf-distributed queries against them at a
// configurable rate from concurrent workers, reports p50/p95/p99
// end-to-end query latency at exit, and then verifies the server's
// books — the /metrics counter totals must match the generator's own
// counts exactly (a mismatch names the first diverging counter) and
// /healthz must be green.
//
// Usage:
//
//	dtnload -addr http://127.0.0.1:8080 -publish 16 -queries 10000 -qps 500
//	dtnload -addr-file /tmp/dtnserved.addr -queries 0 -advance-end -report-out rep.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtncache/internal/mathx"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnload", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "", "server base URL (e.g. http://127.0.0.1:8080)")
		addrFile     = fs.String("addr-file", "", "read the server address from this `file` (written by dtnserved -addr-file)")
		publishN     = fs.Int("publish", 16, "number of data items to publish before querying")
		queriesN     = fs.Int("queries", 10000, "total number of queries to issue")
		qps          = fs.Float64("qps", 0, "target queries per second (0 = as fast as possible)")
		workers      = fs.Int("workers", 4, "concurrent query workers")
		zipfS        = fs.Float64("zipf", 1, "Zipf exponent over the published items")
		seed         = fs.Int64("seed", 1, "random seed for requester and rank draws")
		lifetime     = fs.Duration("lifetime", 0, "published data lifetime (0 = server default T_L)")
		constraint   = fs.Duration("constraint", 0, "query time constraint (0 = server default T_L/2)")
		advanceBy    = fs.Float64("advance-by", 0, "advance virtual time by this many seconds after every -advance-every queries")
		advanceEvery = fs.Int("advance-every", 100, "queries between -advance-by virtual-time advances")
		advanceEnd   = fs.Bool("advance-end", false, "advance virtual time to the trace end after the load completes")
		reportOut    = fs.String("report-out", "", "fetch /report after the run and write its bytes to this `file` ('-' for stdout)")
		statusOut    = fs.String("status-out", "", "fetch /v1/status after the run and write its raw bytes to this `file` ('-' for stdout)")
		verify       = fs.Bool("verify", true, "fail unless /metrics totals match the generator counts and /healthz is green")
		timeout      = fs.Duration("timeout", 5*time.Minute, "per-request timeout (advances serialize behind the engine and can be slow)")
		retries      = fs.Int("retries", 0, "retry transient failures (connection errors, 429, 503) up to this many times per request")
		retryBase    = fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff; doubles per attempt with jitter")
		retryCap     = fs.Duration("retry-cap", 2*time.Second, "upper bound on one retry backoff sleep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base, err := resolveAddr(*addr, *addrFile)
	if err != nil {
		return err
	}
	c := &client{
		base: base,
		http: &http.Client{
			Timeout:   *timeout,
			Transport: &http.Transport{MaxIdleConnsPerHost: *workers + 2},
		},
		retries:   *retries,
		retryBase: *retryBase,
		retryCap:  *retryCap,
		rng:       mathx.NewRand(*seed).Derive("client"),
	}

	// The trace shape comes from the server: node count bounds the
	// requester draws, duration bounds the advances.
	var status struct {
		Nodes       int     `json:"nodes"`
		DurationSec float64 `json:"duration_sec"`
		Trace       string  `json:"trace"`
		Scheme      string  `json:"scheme"`
	}
	if err := c.getJSON(c.rng, "/v1/status", &status); err != nil {
		return fmt.Errorf("status: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dtnload: %s on %s, %d nodes, %.0fs trace\n",
		status.Scheme, status.Trace, status.Nodes, status.DurationSec)

	// Publish phase: items come from round-robin sources so the NCL
	// push load spreads; IDs are dense in publish order.
	pubRng := mathx.NewRand(*seed).Derive("publish")
	dataIDs := make([]int, 0, *publishN)
	for i := 0; i < *publishN; i++ {
		// op_id makes retried publishes exactly-once: a retry that races
		// a server restart replays the original response instead of
		// creating a second item.
		body := map[string]any{
			"op_id":  fmt.Sprintf("p-%d-%d", *seed, i),
			"source": pubRng.Intn(status.Nodes),
		}
		if *lifetime > 0 {
			body["lifetime_sec"] = lifetime.Seconds()
		}
		var resp struct {
			DataID int `json:"data_id"`
		}
		if err := c.postJSON(pubRng, "/v1/publish", body, &resp); err != nil {
			return fmt.Errorf("publish %d: %w", i, err)
		}
		dataIDs = append(dataIDs, resp.DataID)
	}

	// Query phase: a producer paces job tokens at -qps, workers draw a
	// requester and a Zipf rank per token and post the query. issued
	// counts only queries the server reports as entering the network
	// (requesters already holding the data are served locally).
	var issued, sent atomic.Int64
	if *queriesN > 0 {
		if len(dataIDs) == 0 {
			return errors.New("cannot query: no data published (set -publish > 0)")
		}
		zipf, err := mathx.NewZipf(len(dataIDs), *zipfS)
		if err != nil {
			return err
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		errCh := make(chan error, *workers)
		// Each worker appends its query round-trip latencies to its own
		// slot; slots are merged only after the wg.Wait join.
		perWorker := make([][]time.Duration, *workers)
		for wi := 0; wi < *workers; wi++ {
			wg.Add(1)
			//dtn:workerpool query workers, joined by wg.Wait below
			go func(wi int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, 256)
				defer func() { perWorker[wi] = lats }()
				rng := mathx.NewRand(*seed).Derive("worker-" + strconv.Itoa(wi))
				for k := 0; ; k++ {
					if _, ok := <-jobs; !ok {
						return
					}
					body := map[string]any{
						// Unique per (run, worker, sequence): a retried
						// query is answered exactly once server-side.
						"op_id":     fmt.Sprintf("q-%d-w%d-%d", *seed, wi, k),
						"requester": rng.Intn(status.Nodes),
						"data":      dataIDs[zipf.Sample(rng)-1],
					}
					if *constraint > 0 {
						body["constraint_sec"] = constraint.Seconds()
					}
					var resp struct {
						Issued bool `json:"issued"`
					}
					t0 := time.Now()
					if err := c.postJSON(rng, "/v1/query", body, &resp); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					lats = append(lats, time.Since(t0))
					if resp.Issued {
						issued.Add(1)
					}
					n := sent.Add(1)
					if *advanceBy > 0 && n%int64(*advanceEvery) == 0 {
						// Absolute target: retries and racing workers are
						// no-ops past an already-reached time, so the
						// virtual clock never double-advances.
						target := *advanceBy * float64(n/int64(*advanceEvery))
						if err := c.advance(rng, target, 0); err != nil {
							select {
							case errCh <- err:
							default:
							}
							return
						}
					}
				}
			}(wi)
		}
		// The producer must not block on jobs forever if every worker has
		// died on an error — select against the pool's own completion.
		poolDone := make(chan struct{})
		//dtn:workerpool join watcher, joined via poolDone receive below
		go func() {
			wg.Wait()
			close(poolDone)
		}()
		var interval time.Duration
		if *qps > 0 {
			interval = time.Duration(float64(time.Second) / *qps)
		}
		start := time.Now()
	produce:
		for i := 0; i < *queriesN; i++ {
			if interval > 0 {
				if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
					time.Sleep(sleep)
				}
			}
			select {
			case jobs <- i:
			case <-poolDone:
				break produce
			}
		}
		close(jobs)
		<-poolDone
		close(errCh)
		if err := <-errCh; err != nil {
			return fmt.Errorf("query worker: %w", err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "dtnload: %d queries (%d issued) in %s (%.0f q/s)\n",
			sent.Load(), issued.Load(), elapsed.Round(time.Millisecond),
			float64(sent.Load())/elapsed.Seconds())
		all := make([]time.Duration, 0, sent.Load())
		for _, l := range perWorker {
			all = append(all, l...)
		}
		if line := latencyReport(all); line != "" {
			fmt.Fprintln(os.Stderr, "dtnload:", line)
		}
	}

	if *advanceEnd {
		if err := c.advance(c.rng, status.DurationSec, 0); err != nil {
			return fmt.Errorf("advance to end: %w", err)
		}
	}

	for _, fetch := range []struct{ path, out string }{
		{"/report", *reportOut},
		{"/v1/status", *statusOut},
	} {
		if fetch.out == "" {
			continue
		}
		raw, err := c.getRaw(c.rng, fetch.path)
		if err != nil {
			return fmt.Errorf("%s: %w", fetch.path, err)
		}
		if fetch.out == "-" {
			_, err = os.Stdout.Write(raw)
		} else {
			err = os.WriteFile(fetch.out, raw, 0o644)
		}
		if err != nil {
			return err
		}
	}

	if *verify {
		if err := c.verifyBooks(issued.Load()); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "dtnload: verification passed")
	}
	return nil
}

// resolveAddr picks the server base URL from -addr or -addr-file.
func resolveAddr(addr, addrFile string) (string, error) {
	if addr != "" {
		return strings.TrimRight(addr, "/"), nil
	}
	if addrFile == "" {
		return "", errors.New("one of -addr or -addr-file is required")
	}
	b, err := os.ReadFile(addrFile)
	if err != nil {
		return "", err
	}
	return "http://" + strings.TrimSpace(string(b)), nil
}

// client is a minimal JSON client for the dtnserved API with transient
// retries: a connection error, a shed (429) or a server mid-restart
// (503) backs off and tries again up to -retries times, so the load
// survives an overloaded or crash-recovering server. Safe for
// concurrent use as long as each goroutine passes its own jitter rng.
type client struct {
	base      string
	http      *http.Client
	retries   int
	retryBase time.Duration
	retryCap  time.Duration
	rng       *mathx.Rand // main-goroutine jitter; workers pass their own
}

// transientStatus reports whether a response status is worth retrying:
// the server shed the request or is briefly unavailable, and the op is
// safe to repeat (op_id dedupe, absolute advance targets).
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the sleep before retry number attempt (1-based):
// capped exponential with uniform [0.5, 1.5) jitter so a worker fleet
// does not retry in lockstep, floored at the server's Retry-After hint
// (itself capped, in case the server asks for more than we will wait).
func (c *client) backoff(rng *mathx.Rand, attempt int, retryAfter time.Duration) time.Duration {
	d := time.Duration(float64(c.retryBase) * math.Pow(2, float64(attempt-1)) * rng.Uniform(0.5, 1.5))
	if d > c.retryCap {
		d = c.retryCap
	}
	if retryAfter > d {
		d = min(retryAfter, c.retryCap)
	}
	return d
}

// do issues one request with retries and returns the final response
// body and status. Failures after the last attempt return the last
// transport or HTTP error.
func (c *client) do(rng *mathx.Rand, method, path string, payload []byte) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		var err error
		if method == http.MethodGet {
			resp, err = c.http.Get(c.base + path)
		} else {
			resp, err = c.http.Post(c.base+path, "application/json", bytes.NewReader(payload))
		}
		var retryAfter time.Duration
		if err == nil {
			var b []byte
			b, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				if !transientStatus(resp.StatusCode) {
					return b, resp.StatusCode, nil
				}
				err = fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(b))
				if s := resp.Header.Get("Retry-After"); s != "" {
					if n, aerr := strconv.Atoi(s); aerr == nil && n > 0 {
						retryAfter = time.Duration(n) * time.Second
					}
				}
			}
		}
		if attempt >= c.retries {
			return nil, 0, err
		}
		time.Sleep(c.backoff(rng, attempt+1, retryAfter))
	}
}

func (c *client) getRaw(rng *mathx.Rand, path string) ([]byte, error) {
	b, code, err := c.do(rng, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", path, code, bytes.TrimSpace(b))
	}
	return b, nil
}

func (c *client) getJSON(rng *mathx.Rand, path string, out any) error {
	b, err := c.getRaw(rng, path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

func (c *client) postJSON(rng *mathx.Rand, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	b, code, err := c.do(rng, http.MethodPost, path, payload)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", path, code, bytes.TrimSpace(b))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

// advance moves virtual time: to an absolute timestamp (to > 0) or by a
// relative delta. Prefer absolute targets when retries are on — they
// are idempotent.
func (c *client) advance(rng *mathx.Rand, to, by float64) error {
	body := map[string]any{}
	if to > 0 {
		body["to_sec"] = to
	} else {
		body["by_sec"] = by
	}
	return c.postJSON(rng, "/v1/advance", body, nil)
}

// latencyReport formats the merged query-latency percentiles, or ""
// when no queries completed.
func latencyReport(lats []time.Duration) string {
	if len(lats) == 0 {
		return ""
	}
	slices.Sort(lats)
	return fmt.Sprintf("query latency p50 %s p95 %s p99 %s (%d samples)",
		percentile(lats, 50), percentile(lats, 95), percentile(lats, 99), len(lats))
}

// percentile returns the nearest-rank p-th percentile of a sorted
// sample set.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// counterCheck is one server-vs-generator comparison in verifyBooks.
// present is false when the server side has no sample for the counter
// (tolerated only while the generator count is also zero).
type counterCheck struct {
	name              string
	server, generator int64
	present           bool
}

// verifyBooks cross-checks the server against the generator: every
// server-side view of the issued-query count (the
// dtn_query_issued_total counter and the /report QueriesIssued field)
// must equal the number of queries the server acknowledged as issued,
// and the invariant checker behind /healthz must be green. On a
// mismatch the error names the first diverging counter with both
// sides' values, so a failed run is diagnosable from the one line.
func (c *client) verifyBooks(wantIssued int64) error {
	metrics, err := c.getRaw(c.rng, "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var rep struct {
		QueriesIssued int64
	}
	if err := c.getJSON(c.rng, "/report", &rep); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	gotIssued, ok := promValue(metrics, "dtn_query_issued_total")
	checks := []counterCheck{
		{"dtn_query_issued_total (/metrics)", gotIssued, wantIssued, ok},
		{"QueriesIssued (/report)", rep.QueriesIssued, wantIssued, true},
	}
	if err := firstDivergence(checks); err != nil {
		return err
	}
	if _, err := c.getRaw(c.rng, "/healthz"); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

// firstDivergence returns an error naming the first check whose server
// and generator counts differ, or whose server side is missing while
// the generator counted something.
func firstDivergence(checks []counterCheck) error {
	for _, ck := range checks {
		if !ck.present {
			if ck.generator > 0 {
				return fmt.Errorf("verify: %s missing from the server, generator=%d", ck.name, ck.generator)
			}
			continue
		}
		if ck.server != ck.generator {
			return fmt.Errorf("verify: first diverging counter: %s: server=%d generator=%d",
				ck.name, ck.server, ck.generator)
		}
	}
	return nil
}

// promValue extracts the integer value of a Prometheus sample line
// ("name value") from a text exposition body.
func promValue(body []byte, name string) (int64, bool) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
