package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dtncache/internal/mathx"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("p%g = %s, want %s", c.p, got, c.want)
		}
	}
	if got := percentile([]time.Duration{7 * time.Second}, 99); got != 7*time.Second {
		t.Errorf("single sample p99 = %s, want 7s", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %s, want 0", got)
	}
}

func TestLatencyReport(t *testing.T) {
	if got := latencyReport(nil); got != "" {
		t.Errorf("no samples must yield no report, got %q", got)
	}
	// Unsorted on purpose: the report sorts before ranking.
	lats := []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond}
	got := latencyReport(lats)
	for _, want := range []string{"p50 2ms", "p95 3ms", "p99 3ms", "3 samples"} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q missing %q", got, want)
		}
	}
}

func TestFirstDivergence(t *testing.T) {
	ok := []counterCheck{
		{"a", 5, 5, true},
		{"b", 0, 0, false}, // absent but generator idle: tolerated
	}
	if err := firstDivergence(ok); err != nil {
		t.Errorf("matching books failed: %v", err)
	}
	div := []counterCheck{
		{"dtn_query_issued_total (/metrics)", 3, 5, true},
		{"QueriesIssued (/report)", 9, 5, true},
	}
	err := firstDivergence(div)
	if err == nil {
		t.Fatal("diverging counters must fail")
	}
	// The first divergence is named, with both sides' values; the
	// second mismatch must not mask it.
	for _, want := range []string{"first diverging counter", "dtn_query_issued_total", "server=3", "generator=5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "server=9") {
		t.Errorf("error %q reports a later divergence, want the first", err)
	}
	missing := []counterCheck{{"dtn_query_issued_total (/metrics)", 0, 4, false}}
	if err := firstDivergence(missing); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("absent counter with non-zero generator count = %v, want a missing error", err)
	}
}

// fakeServer serves just enough of the dtnserved surface for
// verifyBooks: /metrics, /report, /healthz.
func fakeServer(t *testing.T, metricsIssued, reportIssued int64) *client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "dtn_query_issued_total %d\n", metricsIssued)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"QueriesIssued":%d}`, reportIssued)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)
	return &client{base: s.URL, http: s.Client()}
}

func TestVerifyBooks(t *testing.T) {
	if err := fakeServer(t, 5, 5).verifyBooks(5); err != nil {
		t.Errorf("matching books failed verification: %v", err)
	}
	err := fakeServer(t, 3, 5).verifyBooks(5)
	if err == nil || !strings.Contains(err.Error(), "server=3 generator=5") {
		t.Errorf("metrics divergence = %v, want server=3 generator=5 named", err)
	}
	err = fakeServer(t, 5, 2).verifyBooks(5)
	if err == nil || !strings.Contains(err.Error(), "QueriesIssued (/report)") {
		t.Errorf("report divergence = %v, want QueriesIssued named", err)
	}
}

// TestBackoffBounds pins the retry delay envelope: capped exponential
// with [0.5, 1.5) jitter, Retry-After honored as a floor but never past
// the cap.
func TestBackoffBounds(t *testing.T) {
	c := &client{retryBase: 100 * time.Millisecond, retryCap: 2 * time.Second}
	rng := mathx.NewRand(7).Derive("test")
	for attempt := 1; attempt <= 8; attempt++ {
		ideal := time.Duration(float64(c.retryBase) * math.Pow(2, float64(attempt-1)))
		for i := 0; i < 50; i++ {
			d := c.backoff(rng, attempt, 0)
			lo, hi := ideal/2, ideal+ideal/2
			if lo > c.retryCap {
				lo = c.retryCap
			}
			if hi > c.retryCap {
				hi = c.retryCap
			}
			if d < lo || d > hi {
				t.Fatalf("attempt %d: backoff %s outside [%s, %s]", attempt, d, lo, hi)
			}
		}
	}
	// Retry-After floors the delay...
	if d := c.backoff(rng, 1, time.Second); d < time.Second {
		t.Errorf("Retry-After 1s ignored: slept %s", d)
	}
	// ...but never past the cap.
	if d := c.backoff(rng, 1, time.Minute); d != c.retryCap {
		t.Errorf("Retry-After 1m not capped: slept %s", d)
	}
}

// TestRetryTransient drives the client against a flaky server: two
// sheds (429 with Retry-After, then 503), then success. With retries
// the call succeeds exactly once server-side; without, it fails fast.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/publish", func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error": "server saturated; retry after backoff"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error": "engine closed"}`, http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, `{"data_id": 0}`)
		}
	})
	mux.HandleFunc("/v1/bad", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error": "no"}`, http.StatusBadRequest)
	})
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)

	c := &client{
		base: s.URL, http: s.Client(),
		retries:   5,
		retryBase: time.Millisecond, retryCap: 5 * time.Millisecond,
		rng: mathx.NewRand(1).Derive("client"),
	}
	var resp struct {
		DataID int `json:"data_id"`
	}
	if err := c.postJSON(c.rng, "/v1/publish", map[string]any{"op_id": "p-1"}, &resp); err != nil {
		t.Fatalf("retried publish failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two sheds + one success)", got)
	}

	// Non-transient errors do not retry.
	calls.Store(0)
	if err := c.postJSON(c.rng, "/v1/bad", map[string]any{}, nil); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("bad request = %v, want a 400 error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("400 retried: server saw %d calls, want 1", got)
	}

	// Retries off: the first shed is the answer.
	calls.Store(0)
	c0 := &client{base: s.URL, http: s.Client(), rng: mathx.NewRand(1)}
	err := c0.postJSON(c0.rng, "/v1/publish", map[string]any{}, nil)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("unretried shed = %v, want a 429 error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("retries=0 still retried: %d calls", got)
	}

	// Connection errors are transient too: a server that is briefly
	// down during restart is retried until it answers.
	down := httptest.NewServer(mux)
	downURL := down.URL
	down.Close()
	cDead := &client{
		base: downURL, http: &http.Client{},
		retries:   2,
		retryBase: time.Millisecond, retryCap: 2 * time.Millisecond,
		rng: mathx.NewRand(1),
	}
	if err := cDead.postJSON(cDead.rng, "/v1/publish", map[string]any{}, nil); err == nil {
		t.Error("dead server eventually succeeded?")
	} else if !strings.Contains(err.Error(), "connection refused") {
		t.Logf("dead server error (platform-dependent): %v", err)
	}
}
