package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("p%g = %s, want %s", c.p, got, c.want)
		}
	}
	if got := percentile([]time.Duration{7 * time.Second}, 99); got != 7*time.Second {
		t.Errorf("single sample p99 = %s, want 7s", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %s, want 0", got)
	}
}

func TestLatencyReport(t *testing.T) {
	if got := latencyReport(nil); got != "" {
		t.Errorf("no samples must yield no report, got %q", got)
	}
	// Unsorted on purpose: the report sorts before ranking.
	lats := []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond}
	got := latencyReport(lats)
	for _, want := range []string{"p50 2ms", "p95 3ms", "p99 3ms", "3 samples"} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q missing %q", got, want)
		}
	}
}

func TestFirstDivergence(t *testing.T) {
	ok := []counterCheck{
		{"a", 5, 5, true},
		{"b", 0, 0, false}, // absent but generator idle: tolerated
	}
	if err := firstDivergence(ok); err != nil {
		t.Errorf("matching books failed: %v", err)
	}
	div := []counterCheck{
		{"dtn_query_issued_total (/metrics)", 3, 5, true},
		{"QueriesIssued (/report)", 9, 5, true},
	}
	err := firstDivergence(div)
	if err == nil {
		t.Fatal("diverging counters must fail")
	}
	// The first divergence is named, with both sides' values; the
	// second mismatch must not mask it.
	for _, want := range []string{"first diverging counter", "dtn_query_issued_total", "server=3", "generator=5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "server=9") {
		t.Errorf("error %q reports a later divergence, want the first", err)
	}
	missing := []counterCheck{{"dtn_query_issued_total (/metrics)", 0, 4, false}}
	if err := firstDivergence(missing); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("absent counter with non-zero generator count = %v, want a missing error", err)
	}
}

// fakeServer serves just enough of the dtnserved surface for
// verifyBooks: /metrics, /report, /healthz.
func fakeServer(t *testing.T, metricsIssued, reportIssued int64) *client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "dtn_query_issued_total %d\n", metricsIssued)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"QueriesIssued":%d}`, reportIssued)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)
	return &client{base: s.URL, http: s.Client()}
}

func TestVerifyBooks(t *testing.T) {
	if err := fakeServer(t, 5, 5).verifyBooks(5); err != nil {
		t.Errorf("matching books failed verification: %v", err)
	}
	err := fakeServer(t, 3, 5).verifyBooks(5)
	if err == nil || !strings.Contains(err.Error(), "server=3 generator=5") {
		t.Errorf("metrics divergence = %v, want server=3 generator=5 named", err)
	}
	err = fakeServer(t, 5, 2).verifyBooks(5)
	if err == nil || !strings.Contains(err.Error(), "QueriesIssued (/report)") {
		t.Errorf("report divergence = %v, want QueriesIssued named", err)
	}
}
