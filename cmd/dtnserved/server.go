package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/workload"
)

// server routes the HTTP API onto one engine. Handlers hold no state of
// their own: every request is answered from the engine (lock-serialized
// inside) or the metric registry (atomic), so the handler pool needs no
// additional synchronization.
type server struct {
	eng *engine.Engine
	reg *obs.Registry
	mux *http.ServeMux
}

func newServer(eng *engine.Engine, reg *obs.Registry) *server {
	s := &server{eng: eng, reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/publish", s.handlePublish)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/advance", s.handleAdvance)
	s.mux.HandleFunc("/v1/satisfied", s.handleSatisfied)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/report", s.handleReport)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v as indented JSON — the same encoder settings for
// every endpoint, so responses are byte-stable and golden-testable.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// engineError maps an engine failure to a status code: a closed engine
// is 503 (the server is shutting down), anything else is a caller
// mistake (bad node ID, unknown data).
func engineError(w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// decodeBody strictly parses one JSON object into v: unknown fields and
// trailing data are rejected so malformed clients fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON body")
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}

type publishRequest struct {
	Source      int     `json:"source"`
	SizeBits    float64 `json:"size_bits"`
	LifetimeSec float64 `json:"lifetime_sec"`
}

type publishResponse struct {
	DataID     int     `json:"data_id"`
	Source     int     `json:"source"`
	SizeBits   float64 `json:"size_bits"`
	CreatedSec float64 `json:"created_sec"`
	ExpiresSec float64 `json:"expires_sec"`
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req publishRequest
	if !decodeBody(w, r, &req) {
		return
	}
	item, err := s.eng.Publish(engine.PublishSpec{
		Source:      req.Source,
		SizeBits:    req.SizeBits,
		LifetimeSec: req.LifetimeSec,
	})
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, publishResponse{
		DataID:     int(item.ID),
		Source:     int(item.Source),
		SizeBits:   item.SizeBits,
		CreatedSec: item.Created,
		ExpiresSec: item.Expires,
	})
}

type queryRequest struct {
	Requester     int     `json:"requester"`
	Data          int     `json:"data"`
	ConstraintSec float64 `json:"constraint_sec"`
}

type queryResponse struct {
	QueryID     int     `json:"query_id"`
	Requester   int     `json:"requester"`
	Data        int     `json:"data"`
	Issued      bool    `json:"issued"`
	IssuedSec   float64 `json:"issued_sec"`
	DeadlineSec float64 `json:"deadline_sec"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.eng.Query(engine.QuerySpec{
		Requester:     req.Requester,
		Data:          workload.DataID(req.Data),
		ConstraintSec: req.ConstraintSec,
	})
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		QueryID:     int(res.Query.ID),
		Requester:   int(res.Query.Requester),
		Data:        int(res.Query.Data),
		Issued:      res.Issued,
		IssuedSec:   res.Query.Issued,
		DeadlineSec: res.Query.Deadline,
	})
}

type advanceRequest struct {
	// ToSec advances to an absolute virtual time; BySec advances
	// relative to now. Exactly one must be positive.
	ToSec float64 `json:"to_sec"`
	BySec float64 `json:"by_sec"`
}

type advanceResponse struct {
	NowSec float64 `json:"now_sec"`
	Events int     `json:"events"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req advanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.ToSec <= 0) == (req.BySec <= 0) {
		writeError(w, http.StatusBadRequest, "exactly one of to_sec or by_sec must be positive")
		return
	}
	target := req.ToSec
	if req.BySec > 0 {
		target = s.eng.Now() + req.BySec
	}
	if end := s.eng.Duration(); target > end {
		target = end
	}
	n, err := s.eng.Advance(target)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, advanceResponse{NowSec: s.eng.Now(), Events: n})
}

type satisfiedResponse struct {
	QueryID   int  `json:"query_id"`
	Satisfied bool `json:"satisfied"`
}

func (s *server) handleSatisfied(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or non-integer id parameter")
		return
	}
	writeJSON(w, http.StatusOK, satisfiedResponse{
		QueryID:   id,
		Satisfied: s.eng.Satisfied(workload.QueryID(id)),
	})
}

type statusResponse struct {
	Trace       string  `json:"trace"`
	Scheme      string  `json:"scheme"`
	Nodes       int     `json:"nodes"`
	Live        bool    `json:"live"`
	NowSec      float64 `json:"now_sec"`
	DurationSec float64 `json:"duration_sec"`
	Pending     int     `json:"pending"`
	Processed   uint64  `json:"processed"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	cfg := s.eng.Config()
	writeJSON(w, http.StatusOK, statusResponse{
		Trace:       cfg.Trace.Name,
		Scheme:      cfg.Scheme,
		Nodes:       cfg.Trace.Nodes,
		Live:        cfg.Live,
		NowSec:      s.eng.Now(),
		DurationSec: s.eng.Duration(),
		Pending:     s.eng.Pending(),
		Processed:   s.eng.Processed(),
	})
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = cli.WriteReportJSON(w, s.eng.Report())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteProm(w)
}

type healthResponse struct {
	Status     string   `json:"status"`
	NowSec     float64  `json:"now_sec"`
	Violations []string `json:"violations,omitempty"`
}

// handleHealthz runs the fault-injection subsystem's invariant checker
// against the live simulation state: any violation (buffer accounting
// drift, phantom copies, expired residue) turns the endpoint red.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	violations := s.eng.CheckInvariants()
	if len(violations) == 0 {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", NowSec: s.eng.Now()})
		return
	}
	msgs := make([]string, len(violations))
	for i, v := range violations {
		msgs[i] = v.String()
	}
	writeJSON(w, http.StatusServiceUnavailable, healthResponse{
		Status: "failing", NowSec: s.eng.Now(), Violations: msgs,
	})
}
