package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	runtimemetrics "runtime/metrics"
	"strconv"
	"strings"
	"time"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/provenance"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// latencyBounds are the per-endpoint HTTP latency histogram bucket
// edges, in seconds.
var latencyBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// server routes the HTTP API onto one engine. Handlers hold no state of
// their own: every request is answered from the engine (lock-serialized
// inside) or a metric registry (atomic), so the handler pool needs no
// additional synchronization.
//
// Two registries back the two metric surfaces: reg holds the
// simulation's own counters and serves /metrics, which stays
// byte-deterministic at a fixed engine state; runtime holds
// wall-clock-tainted operational metrics (per-endpoint HTTP latency,
// Go runtime samples) and serves /debug/metrics on the debug listener
// only, so the deterministic surface never mixes with the
// nondeterministic one.
type server struct {
	eng     *engine.Engine
	reg     *obs.Registry
	runtime *obs.Registry
	mux     *http.ServeMux

	j       *journal
	gate    *gate
	ingest  *ingestQueue
	maxBody int64
}

// serveConfig bundles the overload-protection knobs so tests can dial
// them without flag plumbing.
type serveConfig struct {
	maxBody      int64         // largest accepted POST body, bytes
	maxInflight  int           // mutating requests admitted at once (0 = unbounded)
	shedWait     time.Duration // admission wait before shedding with 429
	contactQueue int           // live contact-ingest queue bound, contacts
}

func defaultServeConfig() serveConfig {
	return serveConfig{
		maxBody:      1 << 20,
		maxInflight:  64,
		shedWait:     50 * time.Millisecond,
		contactQueue: 4096,
	}
}

func newServer(eng *engine.Engine, reg *obs.Registry, j *journal, sc serveConfig) *server {
	if j == nil {
		j = newJournal(eng, 8192, 0)
	}
	if sc.maxBody <= 0 {
		sc.maxBody = 1 << 20
	}
	s := &server{
		eng: eng, reg: reg, runtime: obs.NewRegistry(), mux: http.NewServeMux(),
		j:       j,
		maxBody: sc.maxBody,
	}
	// Admission, queueing and journaling counters are operational (they
	// track wall-clock client behavior, not simulation results), so they
	// live on the runtime registry and never taint /metrics.
	s.gate = newGate(sc.maxInflight, sc.shedWait, s.runtime)
	s.ingest = newIngestQueue(sc.contactQueue, s.runtime)
	j.bindMetrics(s.runtime)
	s.handle("/v1/publish", "publish", s.handlePublish)
	s.handle("/v1/query", "query", s.handleQuery)
	s.handle("/v1/advance", "advance", s.handleAdvance)
	s.handle("/v1/contacts", "contacts", s.handleContacts)
	s.handle("/v1/satisfied", "satisfied", s.handleSatisfied)
	s.handle("/v1/status", "status", s.handleStatus)
	s.handle("/v1/trace/", "trace", s.handleTrace)
	s.handle("/report", "report", s.handleReport)
	s.handle("/metrics", "metrics", s.handleMetrics)
	s.handle("/healthz", "healthz", s.handleHealthz)
	return s
}

// handle mounts a handler with its per-endpoint latency histogram.
func (s *server) handle(pattern, name string, h http.HandlerFunc) {
	hist := s.runtime.Histogram("http", name+"_latency_seconds", latencyBounds)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v as indented JSON — the same encoder settings for
// every endpoint, so responses are byte-stable and golden-testable.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// engineError maps an engine failure to a status code: a closed engine
// is 503 (the server is shutting down), anything else is a caller
// mistake (bad node ID, unknown data).
func engineError(w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// opError extends engineError for journaled ops: a WAL append failure
// means the op was neither logged nor applied — a server-side fault the
// client should retry, not a caller mistake.
func opError(w http.ResponseWriter, err error) {
	var we *walAppendError
	if errors.As(err, &we) {
		writeError(w, http.StatusInternalServerError, we.Error())
		return
	}
	engineError(w, err)
}

// decodeBody strictly parses one JSON object into v: unknown fields and
// trailing data are rejected so malformed clients fail loudly, and the
// body is capped at maxBody bytes (413 past the cap) so one request
// cannot balloon server memory.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON body")
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}

type publishRequest struct {
	// OpID (optional) makes the publish idempotent: retries carrying the
	// same op_id get the original response instead of a second item.
	OpID        string  `json:"op_id"`
	Source      int     `json:"source"`
	SizeBits    float64 `json:"size_bits"`
	LifetimeSec float64 `json:"lifetime_sec"`
}

type publishResponse struct {
	DataID     int     `json:"data_id"`
	Source     int     `json:"source"`
	SizeBits   float64 `json:"size_bits"`
	CreatedSec float64 `json:"created_sec"`
	ExpiresSec float64 `json:"expires_sec"`
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.gate.enter() {
		shedResponse(w)
		return
	}
	defer s.gate.leave()
	var req publishRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	item, err := s.j.publish(req.OpID, engine.PublishSpec{
		Source:      req.Source,
		SizeBits:    req.SizeBits,
		LifetimeSec: req.LifetimeSec,
	})
	if err != nil {
		opError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, publishResponse{
		DataID:     int(item.ID),
		Source:     int(item.Source),
		SizeBits:   item.SizeBits,
		CreatedSec: item.Created,
		ExpiresSec: item.Expires,
	})
}

type queryRequest struct {
	// OpID (optional) makes the query idempotent across retries.
	OpID          string  `json:"op_id"`
	Requester     int     `json:"requester"`
	Data          int     `json:"data"`
	ConstraintSec float64 `json:"constraint_sec"`
}

type queryResponse struct {
	QueryID     int     `json:"query_id"`
	Requester   int     `json:"requester"`
	Data        int     `json:"data"`
	Issued      bool    `json:"issued"`
	IssuedSec   float64 `json:"issued_sec"`
	DeadlineSec float64 `json:"deadline_sec"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.gate.enter() {
		shedResponse(w)
		return
	}
	defer s.gate.leave()
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	res, err := s.j.query(req.OpID, engine.QuerySpec{
		Requester:     req.Requester,
		Data:          workload.DataID(req.Data),
		ConstraintSec: req.ConstraintSec,
	})
	if err != nil {
		opError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		QueryID:     int(res.Query.ID),
		Requester:   int(res.Query.Requester),
		Data:        int(res.Query.Data),
		Issued:      res.Issued,
		IssuedSec:   res.Query.Issued,
		DeadlineSec: res.Query.Deadline,
	})
}

type advanceRequest struct {
	// ToSec advances to an absolute virtual time; BySec advances
	// relative to now. Exactly one must be positive.
	ToSec float64 `json:"to_sec"`
	BySec float64 `json:"by_sec"`
}

type advanceResponse struct {
	NowSec float64 `json:"now_sec"`
	Events int     `json:"events"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.gate.enter() {
		shedResponse(w)
		return
	}
	defer s.gate.leave()
	var req advanceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if (req.ToSec <= 0) == (req.BySec <= 0) {
		writeError(w, http.StatusBadRequest, "exactly one of to_sec or by_sec must be positive")
		return
	}
	target := req.ToSec
	if req.BySec > 0 {
		target = s.eng.Now() + req.BySec
	}
	if end := s.eng.Duration(); target > end {
		target = end
	}
	n, err := s.j.advance(target)
	if err != nil {
		opError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, advanceResponse{NowSec: s.eng.Now(), Events: n})
}

type contactJSON struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

type contactsRequest struct {
	Contacts []contactJSON `json:"contacts"`
}

type contactsResponse struct {
	Queued int `json:"queued"`
}

// handleContacts accepts a batch of live contacts for injection into
// the running simulation. The batch is validated synchronously — the
// same rules as trace-file parsing, plus the trace-duration bound — and
// rejected atomically on the first bad contact; a valid batch is
// enqueued for the single ingester goroutine and answered 202. A full
// queue sheds with 429 like any other saturated mutating endpoint.
func (s *server) handleContacts(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.gate.enter() {
		shedResponse(w)
		return
	}
	defer s.gate.leave()
	var req contactsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Contacts) == 0 {
		writeError(w, http.StatusBadRequest, "contacts batch is empty")
		return
	}
	cfg := s.eng.Config()
	cs := make([]trace.Contact, len(req.Contacts))
	for i, c := range req.Contacts {
		cs[i] = trace.Contact{
			A: trace.NodeID(c.A), B: trace.NodeID(c.B),
			Start: c.StartSec, End: c.EndSec,
		}
		if err := trace.CheckContact(cfg.Trace.Nodes, cs[i]); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("contact %d: %s", i, err))
			return
		}
		if cs[i].End > cfg.Trace.Duration {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("contact %d: contact end %g after trace duration %g", i, cs[i].End, cfg.Trace.Duration))
			return
		}
	}
	if !s.ingest.offer(cs) {
		shedResponse(w)
		return
	}
	writeJSON(w, http.StatusAccepted, contactsResponse{Queued: len(cs)})
}

type satisfiedResponse struct {
	QueryID   int  `json:"query_id"`
	Satisfied bool `json:"satisfied"`
}

func (s *server) handleSatisfied(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or non-integer id parameter")
		return
	}
	writeJSON(w, http.StatusOK, satisfiedResponse{
		QueryID:   id,
		Satisfied: s.eng.Satisfied(workload.QueryID(id)),
	})
}

type statusResponse struct {
	Trace       string  `json:"trace"`
	Scheme      string  `json:"scheme"`
	Nodes       int     `json:"nodes"`
	Live        bool    `json:"live"`
	NowSec      float64 `json:"now_sec"`
	DurationSec float64 `json:"duration_sec"`
	Pending     int     `json:"pending"`
	Processed   uint64  `json:"processed"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	cfg := s.eng.Config()
	writeJSON(w, http.StatusOK, statusResponse{
		Trace:       cfg.Trace.Name,
		Scheme:      cfg.Scheme,
		Nodes:       cfg.Trace.Nodes,
		Live:        cfg.Live,
		NowSec:      s.eng.Now(),
		DurationSec: s.eng.Duration(),
		Pending:     s.eng.Pending(),
		Processed:   s.eng.Processed(),
	})
}

// spanJSON is the API rendering of one provenance span.
type spanJSON struct {
	ID       int64   `json:"id"`
	Parent   int64   `json:"parent"`
	Op       string  `json:"op"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	EnqSec   float64 `json:"enq_sec"`
	A        int32   `json:"a"`
	B        int32   `json:"b"`
	Aux      int64   `json:"aux"`
	V        float64 `json:"v"`
}

type attributionJSON struct {
	TotalSec    float64 `json:"total_sec"`
	WaitSec     float64 `json:"wait_sec"`
	QueuedSec   float64 `json:"queued_sec"`
	TransferSec float64 `json:"transfer_sec"`
	Hops        int     `json:"hops"`
}

type traceResponse struct {
	QueryID      int64            `json:"query_id"`
	TraceID      string           `json:"trace_id"`
	Satisfied    bool             `json:"satisfied"`
	Spans        []spanJSON       `json:"spans"`
	CriticalPath []int64          `json:"critical_path,omitempty"`
	Attribution  *attributionJSON `json:"attribution,omitempty"`
}

// handleTrace answers GET /v1/trace/{queryID} with the query's
// retained span tree, its critical path and delay attribution once
// satisfied. 404 means the query is unknown or fell out of the
// retention window (-span-retain).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || idStr == "" {
		writeError(w, http.StatusBadRequest, "trace path must end in an integer query ID")
		return
	}
	spans, ok := s.eng.SpanTree(workload.QueryID(id))
	if !ok || len(spans) == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("query %d has no retained span tree (expired past -span-retain, or tracing is off)", id))
		return
	}
	trees := provenance.BuildTrees(spans)
	tree := trees[0] // all retained spans share the query ID
	resp := traceResponse{
		QueryID:   tree.Query,
		TraceID:   fmt.Sprintf("%016x", tree.TraceID),
		Satisfied: s.eng.Satisfied(workload.QueryID(id)),
		Spans:     make([]spanJSON, 0, len(tree.Spans)),
	}
	for _, sp := range tree.Spans {
		resp.Spans = append(resp.Spans, spanJSON{
			ID: sp.ID, Parent: sp.Parent, Op: sp.Op,
			StartSec: sp.Start, EndSec: sp.End, EnqSec: sp.Enq,
			A: sp.A, B: sp.B, Aux: sp.Aux, V: sp.V,
		})
	}
	if path := tree.CriticalPath(); path != nil {
		for _, sp := range path {
			resp.CriticalPath = append(resp.CriticalPath, sp.ID)
		}
	}
	if attr, ok := tree.Attribute(); ok {
		resp.Attribution = &attributionJSON{
			TotalSec: attr.Total, WaitSec: attr.Wait,
			QueuedSec: attr.Queued, TransferSec: attr.Transfer, Hops: attr.Hops,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runtimeSampleNames maps runtime/metrics samples onto gauge names in
// the runtime registry.
var runtimeSampleNames = [...]struct{ sample, gauge string }{
	{"/sched/goroutines:goroutines", "goroutines"},
	{"/memory/classes/heap/objects:bytes", "heap_objects_bytes"},
	{"/gc/cycles/total:gc-cycles", "gc_cycles"},
	{"/gc/pauses:seconds", "gc_pauses"},
}

// sampleRuntime refreshes the Go runtime gauges in the runtime
// registry from runtime/metrics.
func (s *server) sampleRuntime() {
	samples := make([]runtimemetrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n.sample
	}
	runtimemetrics.Read(samples)
	for i, sm := range samples {
		g := s.runtime.Gauge("runtime", runtimeSampleNames[i].gauge)
		switch sm.Value.Kind() {
		case runtimemetrics.KindUint64:
			g.Set(int64(sm.Value.Uint64()))
		case runtimemetrics.KindFloat64:
			g.Set(int64(sm.Value.Float64()))
		case runtimemetrics.KindFloat64Histogram:
			var n uint64
			for _, c := range sm.Value.Float64Histogram().Counts {
				n += c
			}
			g.Set(int64(n)) // pause count; distribution stays in pprof
		}
	}
}

// handleDebugMetrics serves the runtime registry (Go runtime gauges +
// per-endpoint latency histograms) in Prometheus text format. Debug
// listener only: its values are wall-clock-dependent by nature.
func (s *server) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.sampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.runtime.WriteProm(w)
}

// debugMux assembles the -debug-addr surface: pprof plus the runtime
// metric registry, kept off the public API listener.
func (s *server) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", s.handleDebugMetrics)
	return mux
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = cli.WriteReportJSON(w, s.eng.Report())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteProm(w)
}

type healthResponse struct {
	Status     string   `json:"status"`
	NowSec     float64  `json:"now_sec"`
	Violations []string `json:"violations,omitempty"`
}

// handleHealthz runs the fault-injection subsystem's invariant checker
// against the live simulation state: any violation (buffer accounting
// drift, phantom copies, expired residue) turns the endpoint red.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	violations := s.eng.CheckInvariants()
	if len(violations) == 0 {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", NowSec: s.eng.Now()})
		return
	}
	msgs := make([]string, len(violations))
	for i, v := range violations {
		msgs[i] = v.String()
	}
	writeJSON(w, http.StatusServiceUnavailable, healthResponse{
		Status: "failing", NowSec: s.eng.Now(), Violations: msgs,
	})
}
