package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dtncache/internal/engine"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/provenance"
	"dtncache/internal/trace"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	eng, err := engine.New(engine.Config{Trace: tr, Live: true, Obs: rec, SpanRetain: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return newServer(eng, rec.Registry(), nil, defaultServeConfig())
}

func do(s *server, method, target, body string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestHandlers drives every endpoint through one live server in
// sequence — IDs are dense, the clock starts at 0 — and pins the exact
// response bytes wherever they are deterministic, including the
// malformed-body and wrong-method error paths.
func TestHandlers(t *testing.T) {
	s := newTestServer(t)
	steps := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantBody   string // exact bytes when set
	}{
		{
			name: "publish wrong method", method: "GET", target: "/v1/publish",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method GET not allowed\"\n}\n",
		},
		{
			name: "publish malformed body", method: "POST", target: "/v1/publish",
			body:       "{not json",
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"malformed JSON body\"\n}\n",
		},
		{
			name: "publish unknown field", method: "POST", target: "/v1/publish",
			body:       `{"sauce": 3}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"malformed JSON body\"\n}\n",
		},
		{
			name: "publish trailing garbage", method: "POST", target: "/v1/publish",
			body:       `{"source": 3} {"source": 4}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"trailing data after JSON body\"\n}\n",
		},
		{
			name: "publish bad source", method: "POST", target: "/v1/publish",
			body:       `{"source": -1}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"scheme: source node -1 outside [0,41)\"\n}\n",
		},
		{
			name: "publish ok", method: "POST", target: "/v1/publish",
			body:       `{"source": 3}`,
			wantStatus: 200,
			wantBody: "{\n  \"data_id\": 0,\n  \"source\": 3,\n  \"size_bits\": 100000000,\n" +
				"  \"created_sec\": 0,\n  \"expires_sec\": 604800\n}\n",
		},
		{
			name: "query wrong method", method: "GET", target: "/v1/query",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method GET not allowed\"\n}\n",
		},
		{
			name: "query malformed body", method: "POST", target: "/v1/query",
			body:       `[1,2]`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"malformed JSON body\"\n}\n",
		},
		{
			name: "query unknown data", method: "POST", target: "/v1/query",
			body:       `{"requester": 1, "data": 7}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"scheme: unknown data ID 7\"\n}\n",
		},
		{
			name: "query ok", method: "POST", target: "/v1/query",
			body:       `{"requester": 2, "data": 0}`,
			wantStatus: 200,
			wantBody: "{\n  \"query_id\": 0,\n  \"requester\": 2,\n  \"data\": 0,\n" +
				"  \"issued\": true,\n  \"issued_sec\": 0,\n  \"deadline_sec\": 302400\n}\n",
		},
		{
			name: "advance wrong method", method: "GET", target: "/v1/advance",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method GET not allowed\"\n}\n",
		},
		{
			name: "advance malformed body", method: "POST", target: "/v1/advance",
			body:       `nope`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"malformed JSON body\"\n}\n",
		},
		{
			name: "advance no target", method: "POST", target: "/v1/advance",
			body:       `{}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"exactly one of to_sec or by_sec must be positive\"\n}\n",
		},
		{
			name: "advance both targets", method: "POST", target: "/v1/advance",
			body:       `{"to_sec": 10, "by_sec": 10}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"exactly one of to_sec or by_sec must be positive\"\n}\n",
		},
		{
			name: "satisfied missing id", method: "GET", target: "/v1/satisfied",
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"missing or non-integer id parameter\"\n}\n",
		},
		{
			name: "satisfied ok", method: "GET", target: "/v1/satisfied?id=0",
			wantStatus: 200,
			wantBody:   "{\n  \"query_id\": 0,\n  \"satisfied\": false\n}\n",
		},
		{
			name: "satisfied wrong method", method: "POST", target: "/v1/satisfied?id=0",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method POST not allowed\"\n}\n",
		},
		{
			name: "status ok", method: "GET", target: "/v1/status",
			wantStatus: 200,
			wantBody: "{\n  \"trace\": \"Infocom05\",\n  \"scheme\": \"Intentional\",\n" +
				"  \"nodes\": 41,\n  \"live\": true,\n  \"now_sec\": 0,\n" +
				// The driver feeds contacts lazily (one pending begin event
				// at a time), so at t=0 the heap holds the first contact
				// begin plus the maintenance and NCL-refresh ticks.
				"  \"duration_sec\": 259200,\n  \"pending\": 3,\n  \"processed\": 0\n}\n",
		},
		{
			name: "status wrong method", method: "DELETE", target: "/v1/status",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method DELETE not allowed\"\n}\n",
		},
		{
			name: "healthz ok", method: "GET", target: "/healthz",
			wantStatus: 200,
			wantBody:   "{\n  \"status\": \"ok\",\n  \"now_sec\": 0\n}\n",
		},
		{
			name: "metrics wrong method", method: "POST", target: "/metrics",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method POST not allowed\"\n}\n",
		},
		{
			name: "report wrong method", method: "PUT", target: "/report",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method PUT not allowed\"\n}\n",
		},
		{
			name: "unknown path", method: "GET", target: "/nope",
			wantStatus: 404,
		},
	}
	for _, st := range steps {
		w := do(s, st.method, st.target, st.body)
		if w.Code != st.wantStatus {
			t.Errorf("%s: status %d, want %d (body %q)", st.name, w.Code, st.wantStatus, w.Body.String())
			continue
		}
		if st.wantBody != "" && w.Body.String() != st.wantBody {
			t.Errorf("%s: body mismatch\ngot:  %q\nwant: %q", st.name, w.Body.String(), st.wantBody)
		}
	}
}

// The status golden above pins pending/processed counts for the fresh
// Infocom05 engine; if the trace generator or scheduling changes those
// legitimately, TestHandlers will point here.

func TestReportEndpoint(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.eng.Publish(engine.PublishSpec{Source: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Query(engine.QuerySpec{Requester: 4, Data: 0}); err != nil {
		t.Fatal(err)
	}
	w := do(s, "GET", "/report", "")
	if w.Code != 200 {
		t.Fatalf("report status %d", w.Code)
	}
	var rep metrics.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.QueriesIssued != 1 {
		t.Errorf("report QueriesIssued = %d, want 1", rep.QueriesIssued)
	}
	// The endpoint is byte-deterministic for a fixed engine state.
	if w2 := do(s, "GET", "/report", ""); w2.Body.String() != w.Body.String() {
		t.Error("two /report reads differ")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.eng.Publish(engine.PublishSpec{Source: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Query(engine.QuerySpec{Requester: 4, Data: 0}); err != nil {
		t.Fatal(err)
	}
	w := do(s, "GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "dtn_query_issued_total 1\n") {
		t.Errorf("metrics missing issued counter:\n%s", body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	// Byte-determinism regression for the scrape output.
	if w2 := do(s, "GET", "/metrics", ""); w2.Body.String() != body {
		t.Error("two /metrics reads differ")
	}
}

// TestTraceEndpoint drives one query to satisfaction and reads its
// provenance span tree back through the live API.
func TestTraceEndpoint(t *testing.T) {
	s := newTestServer(t)
	// NCL selection happens at the end of warm-up (half the trace);
	// queries issued before it have no centers to route toward.
	if _, err := s.eng.Advance(s.eng.Duration() / 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Publish(engine.PublishSpec{Source: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Query(engine.QuerySpec{Requester: 4, Data: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Advance(s.eng.Duration()); err != nil {
		t.Fatal(err)
	}
	if !s.eng.Satisfied(0) {
		t.Fatal("query 0 not satisfied after full replay; trace pin needs it")
	}

	w := do(s, "GET", "/v1/trace/0", "")
	if w.Code != 200 {
		t.Fatalf("trace status %d: %s", w.Code, w.Body.String())
	}
	var resp traceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.QueryID != 0 || !resp.Satisfied {
		t.Errorf("trace response %+v, want satisfied query 0", resp)
	}
	if want := fmt.Sprintf("%016x", provenance.TraceID(1, 0)); resp.TraceID != want {
		t.Errorf("trace ID %s, want %s", resp.TraceID, want)
	}
	if len(resp.Spans) == 0 || len(resp.CriticalPath) < 2 {
		t.Fatalf("trace has %d spans, critical path %v", len(resp.Spans), resp.CriticalPath)
	}
	attr := resp.Attribution
	if attr == nil {
		t.Fatal("satisfied query without attribution")
	}
	// The components reassemble the recorded delay exactly: queued is
	// the residual by construction, and JSON round-trips floats exactly.
	if attr.QueuedSec != attr.TotalSec-attr.WaitSec-attr.TransferSec {
		t.Errorf("attribution does not reassemble: %+v", attr)
	}
	if attr.TotalSec <= 0 || attr.Hops == 0 {
		t.Errorf("implausible attribution %+v", attr)
	}
	// Two reads of a quiesced engine are byte-identical.
	if w2 := do(s, "GET", "/v1/trace/0", ""); w2.Body.String() != w.Body.String() {
		t.Error("two /v1/trace reads differ")
	}

	for _, tc := range []struct {
		target string
		code   int
	}{
		{"/v1/trace/", 400},
		{"/v1/trace/abc", 400},
		{"/v1/trace/99999", 404},
	} {
		if w := do(s, "GET", tc.target, ""); w.Code != tc.code {
			t.Errorf("GET %s = %d, want %d (%s)", tc.target, w.Code, tc.code, w.Body.String())
		}
	}
	if w := do(s, "POST", "/v1/trace/0", ""); w.Code != 405 {
		t.Errorf("POST trace = %d, want 405", w.Code)
	}
}

// TestDebugMetrics pins the split between the two metric surfaces: the
// debug listener serves Go runtime gauges and per-endpoint latency
// histograms, and none of that wall-clock noise leaks into the
// deterministic /metrics.
func TestDebugMetrics(t *testing.T) {
	s := newTestServer(t)
	do(s, "GET", "/v1/status", "")
	do(s, "GET", "/healthz", "")

	mux := s.debugMux()
	req := httptest.NewRequest("GET", "/debug/metrics", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("debug metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"dtn_runtime_goroutines",
		"dtn_runtime_heap_objects_bytes",
		"dtn_runtime_gc_cycles",
		"dtn_http_status_latency_seconds_bucket",
		"dtn_http_status_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("debug metrics missing %q:\n%s", want, body)
		}
	}

	sim := do(s, "GET", "/metrics", "").Body.String()
	for _, leak := range []string{"dtn_http_", "dtn_runtime_"} {
		if strings.Contains(sim, leak) {
			t.Errorf("/metrics leaks wall-clock series %q:\n%s", leak, sim)
		}
	}

	// pprof index is mounted on the same mux.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d %q", w.Code, w.Body.String())
	}
}

// TestConcurrentMetricsScrapes hammers both Prometheus surfaces from
// many goroutines while the engine advances — the -race regression for
// obs.Registry.WriteProm against a live simulation — then pins that a
// quiesced engine scrapes byte-identically twice.
func TestConcurrentMetricsScrapes(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.eng.Publish(engine.PublishSpec{Source: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Query(engine.QuerySpec{Requester: 4, Data: 0}); err != nil {
		t.Fatal(err)
	}

	dbg := s.debugMux()
	done := make(chan struct{})
	go func() {
		defer close(done)
		end := s.eng.Duration()
		for target := 3600.0; target <= end; target += 3600 {
			if _, err := s.eng.Advance(target); err != nil {
				t.Errorf("advance: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if w := do(s, "GET", "/metrics", ""); w.Code != 200 {
					t.Errorf("/metrics status %d", w.Code)
					return
				}
				w := httptest.NewRecorder()
				dbg.ServeHTTP(w, httptest.NewRequest("GET", "/debug/metrics", nil))
				if w.Code != 200 {
					t.Errorf("/debug/metrics status %d", w.Code)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// Quiesced: the deterministic surface double-scrapes byte-for-byte.
	first := do(s, "GET", "/metrics", "").Body.String()
	second := do(s, "GET", "/metrics", "").Body.String()
	if first != second {
		t.Error("quiesced /metrics scrapes differ")
	}
	if !strings.Contains(first, "dtn_query_issued_total 1\n") {
		t.Errorf("scrape lost the issued counter:\n%s", first)
	}
}

func TestAdvanceEndpoint(t *testing.T) {
	s := newTestServer(t)
	w := do(s, "POST", "/v1/advance", `{"by_sec": 60}`)
	if w.Code != 200 {
		t.Fatalf("advance status %d: %s", w.Code, w.Body.String())
	}
	var resp advanceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NowSec != 60 {
		t.Errorf("now = %v, want 60", resp.NowSec)
	}
	// Absolute target, clamped to the trace end.
	w = do(s, "POST", "/v1/advance", `{"to_sec": 1e12}`)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NowSec != s.eng.Duration() {
		t.Errorf("clamped now = %v, want %v", resp.NowSec, s.eng.Duration())
	}
	// healthz stays green after a full replay.
	if w := do(s, "GET", "/healthz", ""); w.Code != 200 {
		t.Errorf("healthz after replay: %d %s", w.Code, w.Body.String())
	}
}
