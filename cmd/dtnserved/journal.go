package main

import (
	"errors"
	"fmt"
	"sync"

	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
	"dtncache/internal/wal"
	"dtncache/internal/workload"
)

// opResult is the cached outcome of a deduplicated op: the exact values
// (or the exact validation error) the first attempt produced, so a
// retried op_id answers byte-identically without touching the engine.
type opResult struct {
	kind   wal.Kind
	item   workload.DataItem
	query  engine.QueryResult
	errMsg string // deterministic validation failure; "" on success
}

func (r opResult) err() error {
	if r.errMsg == "" {
		return nil
	}
	return errors.New(r.errMsg)
}

// dedupeCache is a bounded FIFO op_id → result map. Eviction order is
// insertion order (a ring over keys), so for a client that retries
// within the retention window, replays are exact; beyond it, the op
// applies again — harmless for advance (absolute target) and contacts
// (coalesced), and the window is sized far above any sane retry horizon
// for publish/query.
type dedupeCache struct {
	cap  int
	keys []string
	head int
	m    map[string]opResult
}

func newDedupeCache(capacity int) *dedupeCache {
	if capacity <= 0 {
		return nil
	}
	return &dedupeCache{cap: capacity, m: make(map[string]opResult, capacity)}
}

func (c *dedupeCache) get(id string) (opResult, bool) {
	if c == nil || id == "" {
		return opResult{}, false
	}
	r, ok := c.m[id]
	return r, ok
}

func (c *dedupeCache) put(id string, r opResult) {
	if c == nil || id == "" {
		return
	}
	if _, ok := c.m[id]; ok {
		return
	}
	if len(c.m) >= c.cap {
		delete(c.m, c.keys[c.head])
		c.keys[c.head] = id
		c.head = (c.head + 1) % c.cap
	} else {
		c.keys = append(c.keys, id)
	}
	c.m[id] = r
}

// walAppendError marks an op that failed before reaching the engine:
// the WAL write did not land, so the op was neither logged nor applied
// and the client must retry. Handlers map it to 500, never 400.
type walAppendError struct{ err error }

func (e *walAppendError) Error() string { return "op not logged: " + e.err.Error() }
func (e *walAppendError) Unwrap() error { return e.err }

// journal serializes every mutating op through log-then-apply: under
// one lock the op is appended to the WAL (when durability is on), then
// applied to the engine, then its outcome is cached under the client's
// op_id. The WAL therefore records requests accepted for processing —
// engine validation is deterministic, so replay re-rejects exactly the
// ops the live run rejected. Checkpoints are cut after the apply, so
// the logged virtual time is the post-op engine clock that replay will
// observe at the same record boundary.
type journal struct {
	mu              sync.Mutex
	eng             *engine.Engine
	w               *wal.Writer // nil: durability off, ops apply directly
	checkpointEvery uint64      // 0: checkpoint only on close
	dedupe          *dedupeCache

	cAppends     *obs.Counter
	cCheckpoints *obs.Counter
	cDeduped     *obs.Counter
	cWALErrors   *obs.Counter
}

func newJournal(eng *engine.Engine, dedupeRetain, checkpointEvery int) *journal {
	j := &journal{
		eng:    eng,
		dedupe: newDedupeCache(dedupeRetain),
	}
	if checkpointEvery > 0 {
		j.checkpointEvery = uint64(checkpointEvery)
	}
	return j
}

// bindMetrics registers the journal's operational counters on the
// server's runtime registry (wal writes and dedupe hits depend on
// client retry timing, so they live on the wall-clock surface, not the
// deterministic /metrics). Until bound, the nil counters no-op.
func (j *journal) bindMetrics(reg *obs.Registry) {
	j.cAppends = reg.Counter("wal", "appends")
	j.cCheckpoints = reg.Counter("wal", "checkpoints")
	j.cDeduped = reg.Counter("wal", "deduped")
	j.cWALErrors = reg.Counter("wal", "errors")
}

// attach hands the journal its WAL writer after recovery has replayed
// the log; from here on every op is logged before it is applied.
func (j *journal) attach(w *wal.Writer) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w = w
}

// log appends one op record; callers hold j.mu. An append failure
// aborts the op before it touches the engine: a disk that cannot take
// the record must not accept state the log cannot replay.
func (j *journal) log(rec wal.Record) error {
	if j.w == nil {
		return nil
	}
	if err := j.w.Append(rec); err != nil {
		j.cWALErrors.Inc()
		return &walAppendError{err}
	}
	j.cAppends.Inc()
	return nil
}

// maybeCheckpoint cuts a checkpoint every checkpointEvery ops, after
// the op has been applied, so the logged clock matches what replay sees
// at that record boundary. Callers hold j.mu.
func (j *journal) maybeCheckpoint() {
	if j.w == nil || j.checkpointEvery == 0 || j.w.Ops()%j.checkpointEvery != 0 {
		return
	}
	if err := j.w.Checkpoint(j.eng.Now()); err != nil {
		j.cWALErrors.Inc()
		return
	}
	j.cCheckpoints.Inc()
}

// cache remembers the op's outcome under its op_id. A closed engine is
// the one non-deterministic failure (it depends on shutdown timing, not
// the op), so it is never cached: the retry after restart must reach
// the recovered engine.
func (j *journal) cache(opID string, r opResult, err error) {
	if errors.Is(err, engine.ErrClosed) {
		return
	}
	if err != nil {
		r.errMsg = err.Error()
	}
	j.dedupe.put(opID, r)
}

func (j *journal) publish(opID string, spec engine.PublishSpec) (workload.DataItem, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r, ok := j.dedupe.get(opID); ok {
		if r.kind != wal.KindPublish {
			return workload.DataItem{}, fmt.Errorf("op_id %q already used by a %s op", opID, r.kind)
		}
		j.cDeduped.Inc()
		return r.item, r.err()
	}
	if err := j.log(wal.PublishRecord(opID, spec.Source, spec.SizeBits, spec.LifetimeSec)); err != nil {
		return workload.DataItem{}, err
	}
	item, err := j.eng.Publish(spec)
	j.cache(opID, opResult{kind: wal.KindPublish, item: item}, err)
	j.maybeCheckpoint()
	return item, err
}

func (j *journal) query(opID string, spec engine.QuerySpec) (engine.QueryResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r, ok := j.dedupe.get(opID); ok {
		if r.kind != wal.KindQuery {
			return engine.QueryResult{}, fmt.Errorf("op_id %q already used by a %s op", opID, r.kind)
		}
		j.cDeduped.Inc()
		return r.query, r.err()
	}
	if err := j.log(wal.QueryRecord(opID, spec.Requester, int(spec.Data), spec.ConstraintSec)); err != nil {
		return engine.QueryResult{}, err
	}
	res, err := j.eng.Query(spec)
	j.cache(opID, opResult{kind: wal.KindQuery, query: res}, err)
	j.maybeCheckpoint()
	return res, err
}

// advance needs no op_id: targets are absolute, so a retried advance is
// a no-op against an engine that already reached the target.
func (j *journal) advance(to float64) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log(wal.AdvanceRecord(to)); err != nil {
		return 0, err
	}
	n, err := j.eng.Advance(to)
	j.maybeCheckpoint()
	return n, err
}

// ingest needs no op_id either: a duplicated contact batch re-injects
// contacts whose sessions are already open, and the driver coalesces
// those into the live session.
func (j *journal) ingest(cs []trace.Contact) (scheme.IngestResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log(wal.ContactsRecord(cs)); err != nil {
		return scheme.IngestResult{}, err
	}
	res, err := j.eng.IngestContacts(cs)
	j.maybeCheckpoint()
	return res, err
}

// rebuild is the wal.Replay callback that reconstructs the idempotency
// cache during recovery: a client that retries an op_id across the
// server's crash still gets the original answer.
func (j *journal) rebuild(rec wal.Record, res wal.ApplyResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch rec.Kind {
	case wal.KindPublish:
		j.cache(rec.OpID, opResult{kind: rec.Kind, item: res.Item}, err)
	case wal.KindQuery:
		j.cache(rec.OpID, opResult{kind: rec.Kind, query: res.Query}, err)
	}
}

// close seals the log: one final checkpoint pinning the shutdown state
// (so a clean restart verifies the full replay), then sync and close.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	if err := j.w.Checkpoint(j.eng.Now()); err != nil {
		j.w.Close()
		return fmt.Errorf("wal: final checkpoint: %w", err)
	}
	return j.w.Close()
}
