// Command dtnserved serves one simulation engine over HTTP/JSON: the
// contact trace is replayed in (rate-scalable) real time — or advanced
// manually through the API — while clients publish data and issue
// queries against the live cache network.
//
// Usage:
//
//	dtnserved -trace Infocom05 -rate 3600 &          # 1h virtual per wall second
//	curl -s -X POST localhost:8080/v1/publish -d '{"source":3}'
//	curl -s -X POST localhost:8080/v1/query -d '{"requester":7,"data":0}'
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/publish, /v1/query, /v1/advance; GET /v1/status,
// /v1/satisfied?id=N, /v1/trace/{queryID} (the query's provenance span
// tree with critical-path delay attribution, kept for the last
// -span-retain finished queries), /report (bare report JSON, the dtnsim
// -report-json encoding), /metrics (Prometheus text,
// byte-deterministic), /healthz (invariant-checker gate). With
// -debug-addr a second listener serves net/http/pprof and
// /debug/metrics (Go runtime gauges plus per-endpoint HTTP latency
// histograms — wall-clock metrics, deliberately separate from the
// deterministic /metrics). SIGTERM/SIGINT shut the server down
// gracefully and flush the run-trace sink.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/trace"
	"dtncache/internal/wal"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnserved", flag.ContinueOnError)
	var (
		tf         = cli.AddTraceFlags(fs)
		schemeName = fs.String("scheme", engine.SchemeIntentional, "scheme: "+strings.Join(append(engine.SchemeNames(), engine.ReplacementNames()[1:]...), ", "))
		ef         = cli.AddEngineFlags(fs)
		ff         = cli.AddFaultFlags(fs)
		of         = cli.AddObsFlags(fs)
		listen     = fs.String("listen", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this `file` once listening")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof and /debug/metrics (Go runtime + HTTP latency) on this extra address (empty = off)")
		spanRetain = fs.Int("span-retain", 1024, "finished queries whose provenance span trees stay queryable via GET /v1/trace/{id} (0 = off)")
		rate       = fs.Float64("rate", 0, "real-time replay rate: virtual seconds advanced per wall second (0 = manual pacing via POST /v1/advance)")
		live       = fs.Bool("live", true, "live workload: data and queries enter only through the API (false replays the generated batch workload)")

		wf           = cli.AddWALFlags(fs)
		maxInflight  = fs.Int("max-inflight", 64, "mutating requests admitted at once before load shedding with 429 (0 = unbounded)")
		shedWait     = fs.Duration("shed-wait", 50*time.Millisecond, "how long a mutating request waits for admission before being shed")
		reqTimeout   = fs.Duration("request-timeout", time.Minute, "per-request deadline; slower requests are cut off with 503 (0 = none)")
		maxBody      = fs.Int64("max-body", 1<<20, "largest accepted POST body in `bytes` (413 past the cap)")
		contactQueue = fs.Int("contact-queue", 4096, "bound on live contacts queued for ingestion via POST /v1/contacts")
		dedupeRetain = fs.Int("dedupe-retain", 8192, "op IDs remembered for idempotent retries (0 = dedupe off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec, ring, err := of.NewRecorder()
	if err != nil {
		return err
	}
	if rec == nil {
		// /metrics and /healthz always need the counter registry, even
		// when no trace sink was requested.
		rec = obs.NewRecorder(nil, obs.WithPhases(obs.NewPhases(cli.WallClock)))
	}

	doneLoad := rec.Phase("trace-load")
	tr, err := tf.Load(*ef.Seed)
	doneLoad()
	if err != nil {
		return err
	}
	cfg, err := ef.Config(tr, ff.Config(tr.Duration), rec)
	if err != nil {
		return err
	}
	cfg.Scheme = *schemeName
	cfg.Live = *live
	cfg.SpanRetain = *spanRetain
	manifest := obs.NewManifest(tr.Name, *schemeName, *ef.Seed, cli.Digestable(cfg))
	if ring == nil {
		rec.Manifest(manifest)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return err
	}

	// Recover-then-attach: with -wal set, an existing log is replayed
	// into the fresh engine before the listener opens, then the writer
	// journals every new op. The config digest pins recovery to the
	// same flags the log was written under.
	j := newJournal(eng, *dedupeRetain, *wf.CheckpointEvery)
	if *wf.Path != "" {
		w, err := openWAL(eng, j, wf, walGateDigest(tr, *ef.Seed, manifest.ConfigDigest))
		if err != nil {
			return err
		}
		j.attach(w)
	}

	srv := newServer(eng, rec.Registry(), j, serveConfig{
		maxBody:      *maxBody,
		maxInflight:  *maxInflight,
		shedWait:     *shedWait,
		contactQueue: *contactQueue,
	})
	srv.startIngest()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dtnserved: %s on %s, listening on %s (rate %g, live %v)\n",
		*schemeName, tr.Name, ln.Addr(), *rate, *live)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Per-request deadline: a handler stuck behind a long advance is cut
	// off with 503 instead of holding the connection forever. The body
	// is JSON to match every other error this API serves.
	var handler http.Handler = srv
	if *reqTimeout > 0 {
		handler = http.TimeoutHandler(srv, *reqTimeout, "{\n  \"error\": \"request deadline exceeded\"\n}\n")
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dtnserved: pprof and runtime metrics on %s/debug/\n", dln.Addr())
		dbg := &http.Server{Handler: srv.debugMux()}
		defer dbg.Close()
		go func() { _ = dbg.Serve(dln) }()
	}
	if *rate > 0 {
		go pace(ctx, eng, j, *rate)
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	// Drain order matters: stop accepting requests (done), drain the
	// contact-ingest backlog into the journal, seal the WAL with a final
	// checkpoint, then close the engine. Final flush after that: dump
	// the flight-recorder ring if one was kept, close the engine (which
	// closes the recorder's trace sink), and print the observability
	// summary.
	srv.stopIngest()
	if err := j.close(); err != nil {
		return err
	}
	if ring != nil && *of.TraceOut != "" {
		w, werr := cli.OpenTraceOut(*of.TraceOut)
		if werr != nil {
			return werr
		}
		if werr = cli.DumpRing(w, manifest, ring); werr != nil {
			return werr
		}
	}
	if err := eng.Close(); err != nil {
		return err
	}
	if *of.Summary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	if n := srv.gate.sheds(); n > 0 {
		fmt.Fprintf(os.Stderr, "dtnserved: shed %d requests under load\n", n)
	}
	fmt.Fprintln(os.Stderr, "dtnserved: shut down cleanly")
	return nil
}

// openWAL creates or resumes the write-ahead log: a fresh (or empty)
// file gets a header stamped with the config digest; an existing log is
// verified against that digest — restoring under different flags would
// replay into a different engine — truncated past any torn tail, and
// replayed into the fresh engine before the server starts listening.
// walGateDigest derives the digest that pins a WAL to its serving
// setup. The manifest's ConfigDigest deliberately excludes the trace
// (cli.Digestable zeroes the pointer fields) and the seed travels as a
// separate manifest field, so two presets with identical scalar knobs
// share a ConfigDigest — but replaying an Infocom05 op log into an
// Infocom06 engine would silently diverge. Fold the trace identity
// (name, shape) and seed in on top.
func walGateDigest(tr *trace.Trace, seed int64, configDigest string) string {
	return obs.ConfigDigest(struct {
		Trace    string
		Nodes    int
		Duration float64
		Contacts int
		Seed     int64
		Config   string
	}{tr.Name, tr.Nodes, tr.Duration, len(tr.Contacts), seed, configDigest})
}

func openWAL(eng *engine.Engine, j *journal, wf *cli.WALFlags, digest string) (*wal.Writer, error) {
	policy, err := wal.ParseSyncPolicy(*wf.Sync)
	if err != nil {
		return nil, err
	}
	w, recov, err := wal.Resume(*wf.Path, policy)
	switch {
	case errors.Is(err, fs.ErrNotExist) || errors.Is(err, wal.ErrEmpty):
		return wal.Create(*wf.Path, digest, policy)
	case err != nil:
		return nil, err
	}
	if got := w.Digest(); got != digest {
		w.Close()
		return nil, fmt.Errorf("wal: %s was written under config digest %s, flags give %s: restart with the original flags or remove the log", *wf.Path, got, digest)
	}
	if recov.Torn != nil {
		fmt.Fprintf(os.Stderr, "dtnserved: wal: dropped torn tail: %v\n", recov.Torn)
	}
	st, err := wal.Replay(eng, recov.Records, j.rebuild)
	if err != nil {
		w.Close()
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "dtnserved: wal: restored %d ops (%d rejected, %d checkpoints verified) from %s, now %gs\n",
		st.Applied, st.Rejected, st.Checkpoints, *wf.Path, eng.Now())
	return w, nil
}

// pace advances virtual time against the wall clock: rate virtual
// seconds per elapsed wall second, capped at the trace end. Paced
// advances go through the journal like any API client, so a WAL replay
// reproduces them.
func pace(ctx context.Context, eng *engine.Engine, j *journal, rate float64) {
	start := time.Now()
	base := eng.Now()
	end := eng.Duration()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			target := base + rate*time.Since(start).Seconds()
			if target > end {
				target = end
			}
			if _, err := j.advance(target); err != nil {
				return // engine closed or WAL dead
			}
			if target >= end {
				return
			}
		}
	}
}
