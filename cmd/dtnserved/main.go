// Command dtnserved serves one simulation engine over HTTP/JSON: the
// contact trace is replayed in (rate-scalable) real time — or advanced
// manually through the API — while clients publish data and issue
// queries against the live cache network.
//
// Usage:
//
//	dtnserved -trace Infocom05 -rate 3600 &          # 1h virtual per wall second
//	curl -s -X POST localhost:8080/v1/publish -d '{"source":3}'
//	curl -s -X POST localhost:8080/v1/query -d '{"requester":7,"data":0}'
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/publish, /v1/query, /v1/advance; GET /v1/status,
// /v1/satisfied?id=N, /v1/trace/{queryID} (the query's provenance span
// tree with critical-path delay attribution, kept for the last
// -span-retain finished queries), /report (bare report JSON, the dtnsim
// -report-json encoding), /metrics (Prometheus text,
// byte-deterministic), /healthz (invariant-checker gate). With
// -debug-addr a second listener serves net/http/pprof and
// /debug/metrics (Go runtime gauges plus per-endpoint HTTP latency
// histograms — wall-clock metrics, deliberately separate from the
// deterministic /metrics). SIGTERM/SIGINT shut the server down
// gracefully and flush the run-trace sink.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/obs"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnserved", flag.ContinueOnError)
	var (
		tf         = cli.AddTraceFlags(fs)
		schemeName = fs.String("scheme", engine.SchemeIntentional, "scheme: "+strings.Join(append(engine.SchemeNames(), engine.ReplacementNames()[1:]...), ", "))
		ef         = cli.AddEngineFlags(fs)
		ff         = cli.AddFaultFlags(fs)
		of         = cli.AddObsFlags(fs)
		listen     = fs.String("listen", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this `file` once listening")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof and /debug/metrics (Go runtime + HTTP latency) on this extra address (empty = off)")
		spanRetain = fs.Int("span-retain", 1024, "finished queries whose provenance span trees stay queryable via GET /v1/trace/{id} (0 = off)")
		rate       = fs.Float64("rate", 0, "real-time replay rate: virtual seconds advanced per wall second (0 = manual pacing via POST /v1/advance)")
		live       = fs.Bool("live", true, "live workload: data and queries enter only through the API (false replays the generated batch workload)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec, ring, err := of.NewRecorder()
	if err != nil {
		return err
	}
	if rec == nil {
		// /metrics and /healthz always need the counter registry, even
		// when no trace sink was requested.
		rec = obs.NewRecorder(nil, obs.WithPhases(obs.NewPhases(cli.WallClock)))
	}

	doneLoad := rec.Phase("trace-load")
	tr, err := tf.Load(*ef.Seed)
	doneLoad()
	if err != nil {
		return err
	}
	cfg, err := ef.Config(tr, ff.Config(tr.Duration), rec)
	if err != nil {
		return err
	}
	cfg.Scheme = *schemeName
	cfg.Live = *live
	cfg.SpanRetain = *spanRetain
	manifest := obs.NewManifest(tr.Name, *schemeName, *ef.Seed, cli.Digestable(cfg))
	if ring == nil {
		rec.Manifest(manifest)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return err
	}

	srv := newServer(eng, rec.Registry())
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dtnserved: %s on %s, listening on %s (rate %g, live %v)\n",
		*schemeName, tr.Name, ln.Addr(), *rate, *live)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dtnserved: pprof and runtime metrics on %s/debug/\n", dln.Addr())
		dbg := &http.Server{Handler: srv.debugMux()}
		defer dbg.Close()
		go func() { _ = dbg.Serve(dln) }()
	}
	if *rate > 0 {
		go pace(ctx, eng, *rate)
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	// Final flush: dump the flight-recorder ring if one was kept, close
	// the engine (which closes the recorder's trace sink), and print the
	// observability summary.
	if ring != nil && *of.TraceOut != "" {
		w, werr := cli.OpenTraceOut(*of.TraceOut)
		if werr != nil {
			return werr
		}
		if werr = cli.DumpRing(w, manifest, ring); werr != nil {
			return werr
		}
	}
	if err := eng.Close(); err != nil {
		return err
	}
	if *of.Summary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	fmt.Fprintln(os.Stderr, "dtnserved: shut down cleanly")
	return nil
}

// pace advances virtual time against the wall clock: rate virtual
// seconds per elapsed wall second, capped at the trace end. The engine
// serializes Advance against concurrent API calls, so the pacer is just
// another client.
func pace(ctx context.Context, eng *engine.Engine, rate float64) {
	start := time.Now()
	base := eng.Now()
	end := eng.Duration()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			target := base + rate*time.Since(start).Seconds()
			if target > end {
				target = end
			}
			if _, err := eng.Advance(target); err != nil {
				return // engine closed
			}
			if target >= end {
				return
			}
		}
	}
}
