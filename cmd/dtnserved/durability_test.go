package main

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/trace"
)

// TestContactsEndpoint pins the live contact-ingestion surface: the
// exact validation errors (shared with trace-file parsing), the 202
// accept, and that a drained batch reaches the scheme's deterministic
// ingest counters.
func TestContactsEndpoint(t *testing.T) {
	s := newTestServer(t)
	steps := []struct {
		name       string
		method     string
		body       string
		wantStatus int
		wantBody   string
	}{
		{
			name: "wrong method", method: "GET",
			wantStatus: 405,
			wantBody:   "{\n  \"error\": \"method GET not allowed\"\n}\n",
		},
		{
			name: "malformed body", method: "POST", body: "{nope",
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"malformed JSON body\"\n}\n",
		},
		{
			name: "empty batch", method: "POST", body: `{"contacts": []}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contacts batch is empty\"\n}\n",
		},
		{
			name: "self contact", method: "POST",
			body:       `{"contacts": [{"a": 3, "b": 3, "start_sec": 10, "end_sec": 20}]}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contact 0: node 3 in contact with itself\"\n}\n",
		},
		{
			name: "node out of range", method: "POST",
			body:       `{"contacts": [{"a": 1, "b": 99, "start_sec": 10, "end_sec": 20}]}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contact 0: node ID outside declared range 0..40\"\n}\n",
		},
		{
			name: "end before start", method: "POST",
			body:       `{"contacts": [{"a": 1, "b": 2, "start_sec": 20, "end_sec": 10}]}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contact 0: contact end 10 not after start 20\"\n}\n",
		},
		{
			name: "past trace end", method: "POST",
			body:       `{"contacts": [{"a": 1, "b": 2, "start_sec": 10, "end_sec": 1e9}]}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contact 0: contact end 1e+09 after trace duration 259200\"\n}\n",
		},
		{
			name: "atomic batch: second contact bad", method: "POST",
			body: `{"contacts": [{"a": 1, "b": 2, "start_sec": 10, "end_sec": 20},
				{"a": 4, "b": 4, "start_sec": 10, "end_sec": 20}]}`,
			wantStatus: 400,
			wantBody:   "{\n  \"error\": \"contact 1: node 4 in contact with itself\"\n}\n",
		},
		{
			name: "valid batch", method: "POST",
			body: `{"contacts": [{"a": 1, "b": 2, "start_sec": 10, "end_sec": 20},
				{"a": 3, "b": 5, "start_sec": 30, "end_sec": 40}]}`,
			wantStatus: 202,
			wantBody:   "{\n  \"queued\": 2\n}\n",
		},
	}
	for _, st := range steps {
		w := do(s, st.method, "/v1/contacts", st.body)
		if w.Code != st.wantStatus {
			t.Errorf("%s: status %d, want %d (body %q)", st.name, w.Code, st.wantStatus, w.Body.String())
			continue
		}
		if w.Body.String() != st.wantBody {
			t.Errorf("%s: body mismatch\ngot:  %q\nwant: %q", st.name, w.Body.String(), st.wantBody)
		}
	}

	// Drain the queued batch and pin that it reached the scheme's
	// deterministic ingest counters.
	s.startIngest()
	s.stopIngest()
	body := do(s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, "dtn_contact_ingested_total 2\n") {
		t.Errorf("ingested batch missing from /metrics:\n%s", body)
	}
}

// TestBodyLimit pins the 413 response for an oversized POST body.
func TestBodyLimit(t *testing.T) {
	s := newTestServer(t)
	s.maxBody = 128
	big := fmt.Sprintf(`{"op_id": %q, "source": 3}`, strings.Repeat("x", 200))
	w := do(s, "POST", "/v1/publish", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
	if want := "{\n  \"error\": \"request body exceeds 128 bytes\"\n}\n"; w.Body.String() != want {
		t.Errorf("413 body mismatch\ngot:  %q\nwant: %q", w.Body.String(), want)
	}
	// A body under the cap still works.
	if w := do(s, "POST", "/v1/publish", `{"source": 3}`); w.Code != 200 {
		t.Errorf("small body after 413: status %d (%s)", w.Code, w.Body.String())
	}
}

// TestLoadShedding saturates the admission gate and pins the shed
// response: mutating endpoints get 429 + Retry-After while the
// monitoring surface stays live.
func TestLoadShedding(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	eng, err := engine.New(engine.Config{Trace: tr, Live: true, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	sc := defaultServeConfig()
	sc.maxInflight = 1
	sc.shedWait = 0
	s := newServer(eng, rec.Registry(), nil, sc)

	// Occupy the only admission slot, as a stuck in-flight op would.
	if !s.gate.enter() {
		t.Fatal("empty gate refused entry")
	}
	for _, target := range []string{"/v1/publish", "/v1/query", "/v1/advance", "/v1/contacts"} {
		w := do(s, "POST", target, `{}`)
		if w.Code != http.StatusTooManyRequests {
			t.Errorf("%s under saturation: status %d, want 429 (%s)", target, w.Code, w.Body.String())
			continue
		}
		if ra := w.Header().Get("Retry-After"); ra != "1" {
			t.Errorf("%s: Retry-After %q, want \"1\"", target, ra)
		}
		if want := "{\n  \"error\": \"server saturated; retry after backoff\"\n}\n"; w.Body.String() != want {
			t.Errorf("%s: shed body %q, want %q", target, w.Body.String(), want)
		}
	}
	if got := s.gate.sheds(); got != 4 {
		t.Errorf("shed count %d, want 4", got)
	}
	// The monitoring surface bypasses the gate entirely.
	for _, target := range []string{"/healthz", "/v1/status", "/metrics", "/report"} {
		if w := do(s, "GET", target, ""); w.Code != 200 {
			t.Errorf("%s under saturation: status %d, want 200", target, w.Code)
		}
	}
	// Releasing the slot admits requests again.
	s.gate.leave()
	if w := do(s, "POST", "/v1/publish", `{"source": 3}`); w.Code != 200 {
		t.Errorf("publish after release: status %d (%s)", w.Code, w.Body.String())
	}
}

// TestDedupe pins exactly-once semantics for retried op_ids: the retry
// returns the original bytes (success or deterministic rejection), the
// engine applies the op once, and an op_id cannot switch kinds.
func TestDedupe(t *testing.T) {
	s := newTestServer(t)
	first := do(s, "POST", "/v1/publish", `{"op_id": "pub-1", "source": 3}`)
	if first.Code != 200 {
		t.Fatalf("publish: %d %s", first.Code, first.Body.String())
	}
	retry := do(s, "POST", "/v1/publish", `{"op_id": "pub-1", "source": 3}`)
	if retry.Body.String() != first.Body.String() {
		t.Errorf("publish retry diverged:\ngot:  %q\nwant: %q", retry.Body.String(), first.Body.String())
	}
	// Applied once: the next distinct publish gets data_id 1, not 2.
	next := do(s, "POST", "/v1/publish", `{"op_id": "pub-2", "source": 4}`)
	if !strings.Contains(next.Body.String(), "\"data_id\": 1,") {
		t.Errorf("retried publish double-applied: %s", next.Body.String())
	}

	q1 := do(s, "POST", "/v1/query", `{"op_id": "q-1", "requester": 2, "data": 0}`)
	if q1.Code != 200 {
		t.Fatalf("query: %d %s", q1.Code, q1.Body.String())
	}
	if q2 := do(s, "POST", "/v1/query", `{"op_id": "q-1", "requester": 2, "data": 0}`); q2.Body.String() != q1.Body.String() {
		t.Errorf("query retry diverged:\ngot:  %q\nwant: %q", q2.Body.String(), q1.Body.String())
	}

	// Deterministic rejections replay too.
	bad := do(s, "POST", "/v1/query", `{"op_id": "q-bad", "requester": 2, "data": 99}`)
	if bad.Code != 400 {
		t.Fatalf("bad query: %d", bad.Code)
	}
	if again := do(s, "POST", "/v1/query", `{"op_id": "q-bad", "requester": 2, "data": 99}`); again.Body.String() != bad.Body.String() || again.Code != 400 {
		t.Errorf("rejected retry diverged: %d %q vs %q", again.Code, again.Body.String(), bad.Body.String())
	}

	// An op_id pinned to one kind cannot be replayed as another.
	if w := do(s, "POST", "/v1/query", `{"op_id": "pub-1", "requester": 2, "data": 0}`); w.Code != 400 ||
		!strings.Contains(w.Body.String(), "already used by a publish op") {
		t.Errorf("cross-kind op_id reuse: %d %s", w.Code, w.Body.String())
	}
}

// durableServer builds a dtnserved stack with a WAL at path through the
// same openWAL path main uses, so recovery behavior is tested end to
// end (digest pinning included).
func durableServer(t *testing.T, path, digest string) *server {
	t.Helper()
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	eng, err := engine.New(engine.Config{Trace: tr, Live: true, Obs: rec, SpanRetain: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	sync, every := "none", 4
	wf := &cli.WALFlags{Path: &path, Sync: &sync, CheckpointEvery: &every}
	j := newJournal(eng, 1024, every)
	w, err := openWAL(eng, j, wf, digest)
	if err != nil {
		t.Fatal(err)
	}
	j.attach(w)
	return newServer(eng, rec.Registry(), j, defaultServeConfig())
}

// TestWALRecovery is the in-process kill-and-restore pin: a server
// journaling to a WAL "crashes" (the log is abandoned without the
// clean-shutdown checkpoint), a second server recovers from the file,
// and /v1/status, /report and the idempotency cache are byte-identical
// to the pre-crash capture.
func TestWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	a := durableServer(t, path, "digest-a")

	pub := do(a, "POST", "/v1/publish", `{"op_id": "p1", "source": 3}`)
	if pub.Code != 200 {
		t.Fatalf("publish: %d %s", pub.Code, pub.Body.String())
	}
	if w := do(a, "POST", "/v1/query", `{"op_id": "q1", "requester": 2, "data": 0}`); w.Code != 200 {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	if w := do(a, "POST", "/v1/advance", `{"to_sec": 600}`); w.Code != 200 {
		t.Fatalf("advance: %d %s", w.Code, w.Body.String())
	}
	if w := do(a, "POST", "/v1/contacts",
		`{"contacts": [{"a": 1, "b": 2, "start_sec": 700, "end_sec": 900}]}`); w.Code != 202 {
		t.Fatalf("contacts: %d %s", w.Code, w.Body.String())
	}
	a.startIngest()
	a.stopIngest() // drain the batch into the journal
	if w := do(a, "POST", "/v1/advance", `{"to_sec": 1200}`); w.Code != 200 {
		t.Fatalf("advance 2: %d %s", w.Code, w.Body.String())
	}
	wantStatus := do(a, "GET", "/v1/status", "").Body.String()
	wantReport := do(a, "GET", "/report", "").Body.String()
	// Crash: abandon the log mid-flight — no final checkpoint.
	if err := a.j.w.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarting under different flags must refuse to replay.
	sync, every := "none", 4
	badPath := path
	wf := &cli.WALFlags{Path: &badPath, Sync: &sync, CheckpointEvery: &every}
	tr, _ := trace.GeneratePreset(trace.Infocom05, 1)
	eng2, err := engine.New(engine.Config{Trace: tr, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := openWAL(eng2, newJournal(eng2, 16, 0), wf, "digest-other"); err == nil ||
		!strings.Contains(err.Error(), "config digest") {
		t.Errorf("digest mismatch not caught: %v", err)
	}

	// Restart with the original flags: byte-identical state.
	b := durableServer(t, path, "digest-a")
	if got := do(b, "GET", "/v1/status", "").Body.String(); got != wantStatus {
		t.Errorf("recovered /v1/status diverged:\ngot:  %q\nwant: %q", got, wantStatus)
	}
	if got := do(b, "GET", "/report", "").Body.String(); got != wantReport {
		t.Errorf("recovered /report diverged:\ngot:  %q\nwant: %q", got, wantReport)
	}
	// The idempotency cache was rebuilt during replay: a retry of the
	// pre-crash publish answers the original bytes without re-applying.
	if got := do(b, "POST", "/v1/publish", `{"op_id": "p1", "source": 3}`); got.Body.String() != pub.Body.String() {
		t.Errorf("recovered dedupe diverged:\ngot:  %q\nwant: %q", got.Body.String(), pub.Body.String())
	}
	// And the recovered server keeps journaling: one more op, one more
	// restart, still consistent.
	if w := do(b, "POST", "/v1/advance", `{"to_sec": 1800}`); w.Code != 200 {
		t.Fatalf("post-recovery advance: %d %s", w.Code, w.Body.String())
	}
	nowB := do(b, "GET", "/v1/status", "").Body.String()
	if err := b.j.w.Close(); err != nil {
		t.Fatal(err)
	}
	c := durableServer(t, path, "digest-a")
	if got := do(c, "GET", "/v1/status", "").Body.String(); got != nowB {
		t.Errorf("second recovery diverged:\ngot:  %q\nwant: %q", got, nowB)
	}
}

// TestWALGateDigest pins that the WAL gate digest separates serving
// setups the manifest ConfigDigest cannot: same scalar knobs on a
// different trace or seed must yield a different digest, or a restart
// under the wrong preset would silently replay into a diverged engine.
func TestWALGateDigest(t *testing.T) {
	base := &trace.Trace{Name: "Infocom05", Nodes: 41, Duration: 259200,
		Contacts: make([]trace.Contact, 100)}
	ref := walGateDigest(base, 1, "cfg-digest")
	if got := walGateDigest(base, 1, "cfg-digest"); got != ref {
		t.Errorf("digest not deterministic: %s vs %s", got, ref)
	}
	diffs := []struct {
		name string
		tr   trace.Trace
		seed int64
		cfg  string
	}{
		{"trace name", trace.Trace{Name: "Infocom06", Nodes: 41, Duration: 259200, Contacts: base.Contacts}, 1, "cfg-digest"},
		{"node count", trace.Trace{Name: "Infocom05", Nodes: 98, Duration: 259200, Contacts: base.Contacts}, 1, "cfg-digest"},
		{"duration", trace.Trace{Name: "Infocom05", Nodes: 41, Duration: 3600, Contacts: base.Contacts}, 1, "cfg-digest"},
		{"contact count", trace.Trace{Name: "Infocom05", Nodes: 41, Duration: 259200, Contacts: base.Contacts[:50]}, 1, "cfg-digest"},
		{"seed", *base, 2, "cfg-digest"},
		{"config digest", *base, 1, "other-cfg"},
	}
	for _, d := range diffs {
		if got := walGateDigest(&d.tr, d.seed, d.cfg); got == ref {
			t.Errorf("%s change did not change the WAL gate digest", d.name)
		}
	}
}
