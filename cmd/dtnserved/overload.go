package main

import (
	"net/http"
	"sync"
	"time"

	"dtncache/internal/obs"
	"dtncache/internal/trace"
)

// gate is the admission control for mutating endpoints: a semaphore of
// maxInflight slots. A request that cannot take a slot within wait is
// shed with 429 + Retry-After instead of queueing unboundedly — the
// engine lock serializes ops anyway, so a deep queue only adds latency.
// Read endpoints (/healthz, /metrics, /v1/status, /report, /v1/trace)
// bypass the gate entirely and stay live under overload.
type gate struct {
	sem  chan struct{}
	wait time.Duration

	cShed     *obs.Counter
	gInflight *obs.Gauge
}

// newGate returns nil (admit everything) when maxInflight <= 0.
func newGate(maxInflight int, wait time.Duration, reg *obs.Registry) *gate {
	if maxInflight <= 0 {
		return nil
	}
	return &gate{
		sem:       make(chan struct{}, maxInflight),
		wait:      wait,
		cShed:     reg.Counter("http", "shed"),
		gInflight: reg.Gauge("http", "inflight"),
	}
}

// enter tries to take an admission slot: immediately, then for at most
// g.wait. It reports false — and counts a shed — when the server is
// saturated.
func (g *gate) enter() bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
	default:
		if g.wait <= 0 {
			g.cShed.Inc()
			return false
		}
		t := time.NewTimer(g.wait)
		defer t.Stop()
		select {
		case g.sem <- struct{}{}:
		case <-t.C:
			g.cShed.Inc()
			return false
		}
	}
	g.gInflight.Add(1)
	return true
}

func (g *gate) leave() {
	if g == nil {
		return
	}
	g.gInflight.Add(-1)
	<-g.sem
}

// sheds reports how many requests were load-shed so far.
func (g *gate) sheds() uint64 {
	if g == nil {
		return 0
	}
	return g.cShed.Value()
}

// shedResponse is the 429 every saturated mutating endpoint returns;
// Retry-After tells well-behaved clients (dtnload -retries) to back
// off for at least a second.
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "server saturated; retry after backoff")
}

// ingestQueue decouples POST /v1/contacts from the engine lock: the
// handler validates and enqueues, a single ingester goroutine drains
// batches through the journal in arrival order. The bound counts
// contacts (not batches); a full queue sheds the batch with 429 so
// memory stays bounded no matter how fast contacts arrive.
type ingestQueue struct {
	mu      sync.Mutex
	closed  bool
	pending int // contacts queued but not yet applied
	limit   int
	ch      chan []trace.Contact
	done    chan struct{}

	cQueued   *obs.Counter
	cShed     *obs.Counter
	cRejected *obs.Counter
	gDepth    *obs.Gauge
}

func newIngestQueue(limit int, reg *obs.Registry) *ingestQueue {
	if limit <= 0 {
		limit = 1
	}
	return &ingestQueue{
		limit: limit,
		// Every batch holds at least one contact, so limit batches can
		// never be outnumbered by limit queued contacts.
		ch:   make(chan []trace.Contact, limit),
		done: make(chan struct{}),

		cQueued:   reg.Counter("contact", "queued"),
		cShed:     reg.Counter("contact", "shed"),
		cRejected: reg.Counter("contact", "rejected"),
		gDepth:    reg.Gauge("contact", "queue_depth"),
	}
}

// offer enqueues a validated batch, or reports false when the queue is
// full (shed) or the server is draining.
func (q *ingestQueue) offer(cs []trace.Contact) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.pending+len(cs) > q.limit {
		q.cShed.Inc()
		return false
	}
	q.pending += len(cs)
	q.ch <- cs // cannot block: pending <= limit == cap(ch) in batches
	q.gDepth.Set(int64(q.pending))
	q.cQueued.Add(uint64(len(cs)))
	return true
}

// drained marks one batch applied.
func (q *ingestQueue) drained(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending -= n
	q.gDepth.Set(int64(q.pending))
}

// close stops accepting batches and closes the channel so the ingester
// loop exits after draining what is already queued. Safe against
// concurrent offer calls (straggler handlers get a shed).
func (q *ingestQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// runIngest is the single ingester goroutine: batches apply in arrival
// order through the journal, so live contacts land in the WAL exactly
// like API ops. Runs until the queue is closed and drained.
func (s *server) runIngest() {
	defer close(s.ingest.done)
	for cs := range s.ingest.ch {
		if _, err := s.j.ingest(cs); err != nil {
			// Validated at the HTTP edge, so only a closed engine or a
			// dead WAL lands here; the batch is dropped either way.
			s.ingest.cRejected.Add(uint64(len(cs)))
		}
		s.ingest.drained(len(cs))
	}
}

// startIngest launches the ingester; stopIngest (after the HTTP server
// has stopped accepting requests) closes the queue and waits for the
// backlog to drain into the journal before the WAL is sealed.
func (s *server) startIngest() { go s.runIngest() }

func (s *server) stopIngest() {
	s.ingest.close()
	<-s.ingest.done
}
