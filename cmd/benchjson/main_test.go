package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dtncache/internal/obs"
)

const sample = `goos: linux
goarch: amd64
pkg: dtncache/internal/knowledge
cpu: Intel(R) Xeon(R)
BenchmarkAllPathsFull             	       2	1925639784 ns/op	89972512 B/op	 1161390 allocs/op
BenchmarkSnapshotIncremental-4    	       2	 784084922 ns/op	         0.6250 reused-frac	37483776 B/op	  435633 allocs/op
PASS
ok  	dtncache/internal/knowledge	13.702s
`

func TestParse(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	full, incr := sum.Benchmarks[0], sum.Benchmarks[1]
	if full.Name != "AllPathsFull" || full.Iterations != 2 || full.NsPerOp != 1925639784 {
		t.Errorf("full parsed as %+v", full)
	}
	if full.AllocsPerOp == nil || *full.AllocsPerOp != 1161390 {
		t.Errorf("full allocs/op = %v", full.AllocsPerOp)
	}
	if incr.Name != "SnapshotIncremental" { // -4 GOMAXPROCS suffix stripped
		t.Errorf("incremental name = %q", incr.Name)
	}
	if incr.Metrics["reused-frac"] != 0.625 {
		t.Errorf("custom metric = %v", incr.Metrics)
	}
	if sum.Env == nil || sum.Env.CPUModel != "Intel(R) Xeon(R)" {
		t.Errorf("cpu: header not captured: %+v", sum.Env)
	}
}

func TestComputeRatio(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	r, err := computeRatio("incremental_speedup=AllPathsFull/SnapshotIncremental", sum.Benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 2.4 || r.Speedup > 2.5 {
		t.Errorf("speedup = %v, want ~2.456", r.Speedup)
	}
	if _, err := computeRatio("bad=Missing/AllPathsFull", sum.Benchmarks); err == nil {
		t.Error("missing benchmark accepted")
	}
	if _, err := computeRatio("malformed", sum.Benchmarks); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseCustomEventsPerSec(t *testing.T) {
	const line = "BenchmarkReplayDispatch \t1000\t 11.76 ns/op\t 85056888 events/sec\t 0 B/op\t 0 allocs/op\n"
	sum, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Benchmarks[0].Metrics["events/sec"]; got != 85056888 {
		t.Errorf("events/sec = %v, want 85056888", got)
	}
	if a := sum.Benchmarks[0].AllocsPerOp; a == nil || *a != 0 {
		t.Errorf("allocs/op = %v, want 0", a)
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []Result{
		{Name: "ReplaySingleScheme", NsPerOp: 4000},
		{Name: "OnlyInBaseline", NsPerOp: 10},
	}
	cur := []Result{
		{Name: "ReplaySingleScheme", NsPerOp: 1600},
		{Name: "OnlyInCurrent", NsPerOp: 5},
	}
	cmp, vanished, fresh := compareBaseline(base, cur)
	if len(cmp) != 1 {
		t.Fatalf("compared %d benchmarks, want 1 (only the common one)", len(cmp))
	}
	if cmp[0].Name != "ReplaySingleScheme" || cmp[0].Speedup != 2.5 {
		t.Errorf("compared = %+v, want ReplaySingleScheme 2.5x", cmp[0])
	}
	if len(vanished) != 1 || vanished[0] != "OnlyInBaseline" {
		t.Errorf("vanished = %v, want [OnlyInBaseline]", vanished)
	}
	if len(fresh) != 1 || fresh[0] != "OnlyInCurrent" {
		t.Errorf("fresh = %v, want [OnlyInCurrent]", fresh)
	}
}

// TestRunBaselineCoverage pins the run-level asymmetry: a benchmark the
// baseline lacks only warns, one the current run lacks fails — but the
// output file is still written either way.
func TestRunBaselineCoverage(t *testing.T) {
	dir := t.TempDir()
	write := func(p, s string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dir+"/base.txt", "BenchmarkShared \t100\t 40 ns/op\nBenchmarkOld \t100\t 40 ns/op\n")
	write(dir+"/grown.txt", "BenchmarkShared \t100\t 40 ns/op\nBenchmarkOld \t100\t 40 ns/op\nBenchmarkNew \t100\t 40 ns/op\n")
	write(dir+"/shrunk.txt", "BenchmarkShared \t100\t 40 ns/op\n")
	basePath := dir + "/base.json"
	if err := run([]string{"-o", basePath, dir + "/base.txt"}); err != nil {
		t.Fatal(err)
	}
	// Grown suite: the new benchmark is a warning, not a failure.
	if err := run([]string{"-o", dir + "/grown.json", "-baseline", basePath, dir + "/grown.txt"}); err != nil {
		t.Errorf("benchmark missing from the baseline must not fail: %v", err)
	}
	// Shrunk suite: a baseline benchmark vanished; the gate must fail
	// and name it, with the output still on disk for inspection.
	err := run([]string{"-o", dir + "/shrunk.json", "-baseline", basePath, dir + "/shrunk.txt"})
	if err == nil {
		t.Fatal("vanished baseline benchmark must fail the comparison")
	}
	if !strings.Contains(err.Error(), "Old") {
		t.Errorf("error must name the vanished benchmark: %v", err)
	}
	if _, serr := os.Stat(dir + "/shrunk.json"); serr != nil {
		t.Errorf("output must be written even when the gate fails: %v", serr)
	}
}

func TestCheckRegressions(t *testing.T) {
	cmp := []Compared{
		{Name: "Fast", Speedup: 2.0},
		{Name: "Slow", Speedup: 0.7},
	}
	if err := checkRegressions(cmp, 0); err != nil {
		t.Errorf("threshold 0 must disable the gate, got %v", err)
	}
	if err := checkRegressions(cmp, 0.9); err == nil {
		t.Error("0.7x speedup under 0.9 threshold must fail")
	} else if !strings.Contains(err.Error(), "Slow") {
		t.Errorf("error must name the regressed benchmark: %v", err)
	}
	if err := checkRegressions(cmp[:1], 0.9); err != nil {
		t.Errorf("no regressions, got %v", err)
	}
}

func TestWarnEnvMismatch(t *testing.T) {
	mk := func(v string, p int) *Summary {
		return &Summary{Env: &EnvInfo{GoVersion: v, GoMaxProcs: p}}
	}
	mkCPU := func(p int, cpu string) *Summary {
		return &Summary{Env: &EnvInfo{GoVersion: "go1.24.0", GoMaxProcs: p, CPUModel: cpu}}
	}
	cases := []struct {
		name      string
		base, cur *Summary
		want      []string
	}{
		{"identical", mk("go1.24.0", 4), mk("go1.24.0", 4), nil},
		{"go-version", mk("go1.23.1", 4), mk("go1.24.0", 4), []string{"go1.23.1", "go1.24.0"}},
		{"gomaxprocs", mk("go1.24.0", 2), mk("go1.24.0", 8), []string{"GOMAXPROCS=2", "at 8", "unknown CPU"}},
		{"gomaxprocs-names-cpus", mkCPU(2, "Xeon E5"), mkCPU(8, "EPYC 7B12"),
			[]string{"GOMAXPROCS=2", "at 8", "Xeon E5", "EPYC 7B12"}},
		{"cpu-model", mkCPU(4, "Xeon E5"), mkCPU(4, "EPYC 7B12"),
			[]string{"measured on Xeon E5", "this run on EPYC 7B12"}},
		{"cpu-unknown-side-quiet", mkCPU(4, ""), mkCPU(4, "EPYC 7B12"), nil},
		{"no-env", &Summary{}, mk("go1.24.0", 4), []string{"no environment info"}},
		{"manifest-preferred", // manifest pins win over a stale env block
			&Summary{Env: &EnvInfo{GoVersion: "go1.1", GoMaxProcs: 1},
				Manifest: &obs.Manifest{GoVersion: "go1.24.0", GoMaxProcs: 4}},
			mk("go1.24.0", 4), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf strings.Builder
			warnEnvMismatch(&buf, c.base, c.cur)
			out := buf.String()
			if len(c.want) == 0 && out != "" {
				t.Errorf("unexpected warning: %q", out)
			}
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("warning %q missing %q", out, w)
				}
			}
		})
	}
}

func TestRunBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"
	outPath := dir + "/out.json"
	const baseRun = "BenchmarkReplayDispatch \t100\t 40 ns/op\n"
	const curRun = "BenchmarkReplayDispatch \t100\t 10 ns/op\n"
	write := func(p, s string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dir+"/base.txt", baseRun)
	write(dir+"/cur.txt", curRun)
	if err := run([]string{"-o", basePath, dir + "/base.txt"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", outPath, "-baseline", basePath, "-regress-below", "0.9", dir + "/cur.txt"}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(buf, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Env == nil || sum.Env.GoVersion == "" || sum.Env.GoMaxProcs < 1 {
		t.Errorf("env block missing or incomplete: %+v", sum.Env)
	}
	if sum.Manifest == nil || sum.Manifest.GoVersion == "" || sum.Manifest.GoMaxProcs < 1 {
		t.Errorf("manifest missing or incomplete: %+v", sum.Manifest)
	}
	if len(sum.VsBaseline) != 1 || sum.VsBaseline[0].Speedup != 4 {
		t.Errorf("vs_baseline = %+v, want one 4x entry", sum.VsBaseline)
	}
	// The inverse comparison regresses 4x and must fail — but still
	// write the output file for inspection.
	failPath := dir + "/fail.json"
	if err := run([]string{"-o", failPath, "-baseline", outPath, "-regress-below", "0.9", dir + "/base.txt"}); err == nil {
		t.Error("4x regression under 0.9 threshold must fail")
	}
	if _, err := os.Stat(failPath); err != nil {
		t.Errorf("output must be written even when the gate fails: %v", err)
	}
	if err := run([]string{"-regress-below", "0.9", dir + "/cur.txt"}); err == nil {
		t.Error("-regress-below without -baseline must be rejected")
	}
}
