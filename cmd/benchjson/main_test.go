package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dtncache/internal/knowledge
cpu: Intel(R) Xeon(R)
BenchmarkAllPathsFull             	       2	1925639784 ns/op	89972512 B/op	 1161390 allocs/op
BenchmarkSnapshotIncremental-4    	       2	 784084922 ns/op	         0.6250 reused-frac	37483776 B/op	  435633 allocs/op
PASS
ok  	dtncache/internal/knowledge	13.702s
`

func TestParse(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	full, incr := sum.Benchmarks[0], sum.Benchmarks[1]
	if full.Name != "AllPathsFull" || full.Iterations != 2 || full.NsPerOp != 1925639784 {
		t.Errorf("full parsed as %+v", full)
	}
	if full.AllocsPerOp == nil || *full.AllocsPerOp != 1161390 {
		t.Errorf("full allocs/op = %v", full.AllocsPerOp)
	}
	if incr.Name != "SnapshotIncremental" { // -4 GOMAXPROCS suffix stripped
		t.Errorf("incremental name = %q", incr.Name)
	}
	if incr.Metrics["reused-frac"] != 0.625 {
		t.Errorf("custom metric = %v", incr.Metrics)
	}
}

func TestComputeRatio(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	r, err := computeRatio("incremental_speedup=AllPathsFull/SnapshotIncremental", sum.Benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 2.4 || r.Speedup > 2.5 {
		t.Errorf("speedup = %v, want ~2.456", r.Speedup)
	}
	if _, err := computeRatio("bad=Missing/AllPathsFull", sum.Benchmarks); err == nil {
		t.Error("missing benchmark accepted")
	}
	if _, err := computeRatio("malformed", sum.Benchmarks); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}
