// Command benchjson converts `go test -bench` output into a JSON
// summary, optionally computing named speedup ratios between benchmark
// pairs — the format behind the repo's committed BENCH_*.json files.
//
// Usage:
//
//	go test ./... -bench . -benchmem | benchjson -o BENCH.json \
//	    -ratio comparison_speedup=RunComparisonIsolated/RunComparison
//
// With -baseline, the summary is compared against a previous BENCH
// file: every benchmark present in both gets a vs_baseline entry with
// its speedup (baseline ns/op divided by current ns/op), and
// -regress-below makes the run fail when any common benchmark's
// speedup drops under the threshold — the regression gate behind
// `make bench-compare`. A benchmark present only in the current run
// produces a warning (the baseline predates it); a baseline benchmark
// absent from the current run fails the comparison, since the numbers
// it pinned are no longer measured at all.
//
// Input lines that are not benchmark results (goos/pkg headers, PASS,
// ok) are ignored, so whole `go test` transcripts can be piped in.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"dtncache/internal/obs"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is B/op when -benchmem was set.
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocs/op when -benchmem was set.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric units (e.g. reused-frac).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Ratio is a derived speedup: NsPerOp(Numerator) / NsPerOp(Denominator).
type Ratio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Speedup     float64 `json:"speedup"`
}

// EnvInfo pins the toolchain, parallelism and CPU a BENCH file was
// produced with, so committed BENCH_*.json files stay comparable
// across PRs.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Compared is one benchmark measured against the same benchmark in a
// -baseline file. Speedup > 1 means the current run is faster.
type Compared struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	CurrentNs  float64 `json:"current_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// Summary is the emitted JSON document. Env predates Manifest and is
// kept so committed BENCH_*.json baselines stay loadable; Manifest adds
// the git revision and config-digest provenance shared with recorded
// run traces.
type Summary struct {
	Env        *EnvInfo      `json:"env,omitempty"`
	Manifest   *obs.Manifest `json:"manifest,omitempty"`
	Benchmarks []Result      `json:"benchmarks"`
	Ratios     []Ratio       `json:"ratios,omitempty"`
	Baseline   string        `json:"baseline,omitempty"`
	VsBaseline []Compared    `json:"vs_baseline,omitempty"`
}

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "write JSON here (default stdout)")
		baseline = fs.String("baseline", "", "prior BENCH_*.json `file` to compare against")
		regress  = fs.Float64("regress-below", 0, "fail when any vs-baseline speedup drops below this `threshold` (0 disables)")
		ratios   []string
	)
	fs.Func("ratio", "derived speedup `name=NumeratorBench/DenominatorBench` (repeatable)", func(v string) error {
		ratios = append(ratios, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *regress > 0 && *baseline == "" {
		return errors.New("-regress-below needs -baseline")
	}

	var in io.Reader = os.Stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	sum, err := parse(in)
	if err != nil {
		return err
	}
	// The bench output's own cpu: header names the machine the numbers
	// were measured on; fall back to the host's when the input lacks it.
	cpu := ""
	if sum.Env != nil {
		cpu = sum.Env.CPUModel
	}
	if cpu == "" {
		cpu = hostCPUModel()
	}
	sum.Env = &EnvInfo{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), CPUModel: cpu}
	m := obs.NewManifest("", "", 0, nil)
	sum.Manifest = &m
	for _, r := range ratios {
		ratio, err := computeRatio(r, sum.Benchmarks)
		if err != nil {
			return err
		}
		sum.Ratios = append(sum.Ratios, ratio)
	}
	var vanished []string
	if *baseline != "" {
		base, err := loadSummary(*baseline)
		if err != nil {
			return err
		}
		sum.Baseline = *baseline
		warnEnvMismatch(os.Stderr, base, sum)
		var fresh []string
		sum.VsBaseline, vanished, fresh = compareBaseline(base.Benchmarks, sum.Benchmarks)
		if len(sum.VsBaseline) == 0 {
			return fmt.Errorf("baseline %s shares no benchmarks with the input", *baseline)
		}
		// A benchmark the baseline has but this run lacks is a gate
		// escape — the numbers it pinned are no longer measured — so it
		// fails (below, after the output is written). A benchmark new in
		// this run merely predates the baseline: warn and move on.
		for _, n := range fresh {
			fmt.Fprintf(os.Stderr, "benchjson: warning: benchmark %s not in baseline %s; no speedup computed\n", n, *baseline)
		}
	}

	buf, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if len(vanished) > 0 {
		return fmt.Errorf("baseline %s has benchmarks absent from the input: %s", *baseline, strings.Join(vanished, ", "))
	}
	return checkRegressions(sum.VsBaseline, *regress)
}

// benchEnv extracts the toolchain/parallelism/CPU pins of a summary,
// preferring the manifest over the legacy env block (the CPU model
// lives only in the env block). ok is false when the summary carries
// neither (hand-written or very old baselines).
func benchEnv(s *Summary) (goVersion string, goMaxProcs int, cpuModel string, ok bool) {
	if s.Env != nil {
		cpuModel = s.Env.CPUModel
	}
	switch {
	case s.Manifest != nil:
		return s.Manifest.GoVersion, s.Manifest.GoMaxProcs, cpuModel, true
	case s.Env != nil:
		return s.Env.GoVersion, s.Env.GoMaxProcs, cpuModel, true
	}
	return "", 0, "", false
}

// cpuLabel renders a possibly-unknown CPU model for a warning line.
func cpuLabel(m string) string {
	if m == "" {
		return "unknown CPU"
	}
	return m
}

// warnEnvMismatch flags baseline comparisons made across different
// toolchains, parallelism or hardware, which would otherwise be
// reported as speedups/regressions without comment.
func warnEnvMismatch(w io.Writer, base, cur *Summary) {
	bv, bp, bc, ok := benchEnv(base)
	if !ok {
		fmt.Fprintln(w, "benchjson: warning: baseline has no environment info; speedups may compare across toolchains")
		return
	}
	cv, cp, cc, _ := benchEnv(cur)
	if bv != cv {
		fmt.Fprintf(w, "benchjson: warning: baseline was measured with %s, this run with %s; speedups are not like-for-like\n", bv, cv)
	}
	switch {
	case bp != cp:
		fmt.Fprintf(w, "benchjson: warning: baseline ran at GOMAXPROCS=%d on %s, this run at %d on %s; speedups are not like-for-like\n",
			bp, cpuLabel(bc), cp, cpuLabel(cc))
	case bc != cc && bc != "" && cc != "":
		fmt.Fprintf(w, "benchjson: warning: baseline was measured on %s, this run on %s; speedups are not like-for-like\n", bc, cc)
	}
}

// hostCPUModel names the host CPU from /proc/cpuinfo ("" when the
// platform does not expose one).
func hostCPUModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		key, val, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		switch strings.TrimSpace(key) {
		case "model name", "cpu model", "Processor": // x86, MIPS, older ARM
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// loadSummary reads a previously emitted BENCH_*.json file.
func loadSummary(path string) (*Summary, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sum Summary
	if err := json.Unmarshal(buf, &sum); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &sum, nil
}

// compareBaseline pairs up benchmarks by name and computes speedups,
// preserving the current run's benchmark order. vanished lists baseline
// benchmarks the current run no longer measures (in baseline order);
// fresh lists current benchmarks the baseline predates.
func compareBaseline(base, cur []Result) (out []Compared, vanished, fresh []string) {
	byName := make(map[string]Result, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	inCur := make(map[string]bool, len(cur))
	for _, c := range cur {
		inCur[c.Name] = true
		b, ok := byName[c.Name]
		if !ok {
			fresh = append(fresh, c.Name)
			continue
		}
		if b.NsPerOp == 0 || c.NsPerOp == 0 {
			continue
		}
		out = append(out, Compared{
			Name:       c.Name,
			BaselineNs: b.NsPerOp,
			CurrentNs:  c.NsPerOp,
			Speedup:    b.NsPerOp / c.NsPerOp,
		})
	}
	for _, b := range base {
		if !inCur[b.Name] {
			vanished = append(vanished, b.Name)
		}
	}
	return out, vanished, fresh
}

// checkRegressions fails the run when any compared benchmark fell below
// the speedup threshold (after the output file was already written, so
// the numbers remain inspectable).
func checkRegressions(cmp []Compared, threshold float64) error {
	if threshold <= 0 {
		return nil
	}
	var bad []string
	for _, c := range cmp {
		if c.Speedup < threshold {
			bad = append(bad, fmt.Sprintf("%s %.3fx", c.Name, c.Speedup))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regression below %.2fx vs baseline: %s", threshold, strings.Join(bad, ", "))
	}
	return nil
}

// parse extracts benchmark result lines from a `go test -bench`
// transcript.
func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			sum.Env = &EnvInfo{CPUModel: strings.TrimSpace(cpu)}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations, then (value unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." noise
		}
		res := Result{Name: benchName(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad measurement %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := val
				res.BytesPerOp = &v
			case "allocs/op":
				v := val
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		sum.Benchmarks = append(sum.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sum.Benchmarks) == 0 {
		return nil, errors.New("no benchmark lines found in input")
	}
	return sum, nil
}

// benchName strips the Benchmark prefix and the -GOMAXPROCS suffix.
func benchName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// computeRatio resolves one -ratio spec against the parsed results.
func computeRatio(spec string, results []Result) (Ratio, error) {
	name, expr, ok := strings.Cut(spec, "=")
	if !ok {
		return Ratio{}, fmt.Errorf("ratio %q: want name=Numerator/Denominator", spec)
	}
	num, den, ok := strings.Cut(expr, "/")
	if !ok {
		return Ratio{}, fmt.Errorf("ratio %q: want name=Numerator/Denominator", spec)
	}
	find := func(n string) (Result, error) {
		for _, r := range results {
			if r.Name == n {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("ratio %q: benchmark %q not in input", name, n)
	}
	a, err := find(num)
	if err != nil {
		return Ratio{}, err
	}
	b, err := find(den)
	if err != nil {
		return Ratio{}, err
	}
	if b.NsPerOp == 0 {
		return Ratio{}, fmt.Errorf("ratio %q: %s has zero ns/op", name, den)
	}
	return Ratio{Name: name, Numerator: num, Denominator: den, Speedup: a.NsPerOp / b.NsPerOp}, nil
}
