package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtncache/internal/trace"
)

func TestRunPreset(t *testing.T) {
	if err := run([]string{"-trace", "Infocom05", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithHorizon(t *testing.T) {
	if err := run([]string{"-trace", "Infocom05", "-T", "1800", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-tracefile", path, "-k", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-trace", "NotATrace"},
		{"-tracefile", "/does/not/exist"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
