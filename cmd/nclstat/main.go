// Command nclstat computes the NCL selection metric C_i (Eq. 3) for
// every node of a trace and prints the distribution — the analysis
// behind the paper's Fig. 4 — plus the top-K central nodes that the
// intentional caching scheme would select.
//
// Usage:
//
//	nclstat -trace Infocom06 -k 5
//	nclstat -tracefile contacts.txt -T 86400
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"dtncache/internal/experiment"
	"dtncache/internal/graph"
	"dtncache/internal/knowledge"
	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclstat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nclstat", flag.ContinueOnError)
	var (
		preset    = fs.String("trace", "Infocom06", "trace preset")
		traceFile = fs.String("tracefile", "", "read the trace from this file")
		horizon   = fs.Float64("T", 0, "metric horizon T in seconds (0 = paper default for the trace)")
		k         = fs.Int("k", 8, "show the top-K selected central nodes")
		seed      = fs.Int64("seed", 1, "random seed for synthetic traces")
		fig4      = fs.Bool("fig4", false, "print the full Fig. 4 table for all presets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fig4 {
		t, err := experiment.Fig4(experiment.FigureOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		return nil
	}

	var tr *trace.Trace
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		tr, err = trace.Read(f)
	} else {
		tr, err = trace.GeneratePreset(trace.Preset(*preset), *seed)
	}
	if err != nil {
		return err
	}

	t := *horizon
	if t == 0 {
		t = experiment.DefaultMetricT(tr.Name)
	}
	// Whole-trace knowledge snapshot over the raw contact list, the
	// Sec. IV-B offline analysis convention.
	snap := knowledge.NewProvider(knowledge.Params{
		Nodes:   tr.Nodes,
		MetricT: t,
	}, tr.Contacts).At(tr.Duration)
	metricsVals := snap.Metrics()
	sorted := append([]float64(nil), metricsVals...)
	sort.Float64s(sorted)
	sum := mathx.Summarize(sorted)
	fmt.Printf("trace %s: %d nodes, T = %.0fs (knowledge snapshot v%d at t=%.0fs)\n",
		tr.Name, tr.Nodes, t, snap.Version(), snap.BuiltAt())
	fmt.Printf("C_i distribution: min %.4f, median %.4f, p90 %.4f, max %.4f (skew max/median %.1fx)\n",
		sum.Min, sum.Median, sum.P90, sum.Max, safeRatio(sum.Max, sum.Median))

	ncls := graph.SelectNCLs(metricsVals, *k)
	fmt.Printf("top-%d central nodes:\n", *k)
	for rank, n := range ncls {
		fmt.Printf("  %2d. node %3d  C = %.4f\n", rank+1, n, metricsVals[n])
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
