package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtncache/internal/trace"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPresetToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run([]string{"-preset", "Infocom05", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 41 {
		t.Errorf("nodes = %d", tr.Nodes)
	}
}

func TestRunCustomWithAnalysis(t *testing.T) {
	if err := run([]string{
		"-nodes", "10", "-days", "2", "-contacts", "2000", "-analyze",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                        // nothing requested
		{"-preset", "NotAPreset"}, // unknown preset
		{"-nodes", "1", "-days", "1", "-contacts", "10"}, // invalid config
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
