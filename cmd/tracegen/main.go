// Command tracegen generates synthetic DTN contact traces calibrated to
// the paper's Table I, writes them in the plain-text contact format, and
// prints their statistics.
//
// Usage:
//
//	tracegen -table1                     # print Table I for all presets
//	tracegen -preset Infocom06 -o t.txt  # write a trace file
//	tracegen -nodes 50 -days 10 -contacts 40000 -o custom.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dtncache/internal/experiment"
	"dtncache/internal/trace"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		table1   = fs.Bool("table1", false, "print the Table I statistics for all presets")
		preset   = fs.String("preset", "", "generate this preset (Infocom05, Infocom06, 'MIT Reality', UCSD)")
		nodes    = fs.Int("nodes", 0, "custom trace: node count")
		days     = fs.Float64("days", 0, "custom trace: duration in days")
		contacts = fs.Int("contacts", 0, "custom trace: target contact count")
		gran     = fs.Float64("granularity", 120, "custom trace: scan granularity seconds")
		alpha    = fs.Float64("alpha", 1.5, "custom trace: activity Pareto shape")
		amax     = fs.Float64("amax", 15, "custom trace: max activity ratio")
		comms    = fs.Int("communities", 0, "custom trace: community count (0 = none)")
		boost    = fs.Float64("boost", 8, "custom trace: intra-community rate boost")
		city     = fs.Bool("city", false, "city-scale generator: power-law districts + diurnal cycle; with -format chunked the trace streams to -o without being materialized")
		inter    = fs.Float64("inter", 0.05, "city: inter-community contact probability")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("o", "", "write the trace to this file ('-' for stdout)")
		format   = fs.String("format", "plain", "output format for -o: plain or chunked (binary columnar)")
		analyze  = fs.Bool("analyze", false, "print inter-contact time analysis (exponential-fit check)")
		rwp      = fs.Bool("rwp", false, "generate via random-waypoint mobility instead of Poisson contacts")
		arena    = fs.Float64("arena", 1000, "RWP: arena side in meters")
		rng      = fs.Float64("range", 50, "RWP: communication range in meters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table1 {
		t, err := experiment.Table1(experiment.FigureOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		return nil
	}

	if *city {
		if *nodes <= 0 || *days <= 0 || *contacts <= 0 {
			return fmt.Errorf("-city needs -nodes, -days and -contacts")
		}
		cfg := trace.CityDefaults(*nodes, *contacts)
		cfg.DurationSec = *days * 86400
		cfg.GranularitySec = *gran
		cfg.InterProb = *inter
		cfg.Seed = *seed
		if *out != "" && *format == "chunked" {
			// The O(nodes)-memory path: generator -> chunked writer,
			// no materialized contact slice at any point.
			return streamCityChunked(cfg, *out)
		}
		tr, err := trace.GenerateCity(cfg)
		if err != nil {
			return err
		}
		return emit(tr, *out, *format, *analyze)
	}

	var tr *trace.Trace
	var err error
	switch {
	case *preset != "":
		tr, err = trace.GeneratePreset(trace.Preset(*preset), *seed)
	case *rwp && *nodes > 0:
		tr, err = trace.GenerateRWP(trace.RWPConfig{
			Name: "rwp", Nodes: *nodes, DurationSec: *days * 86400,
			ArenaMeters: *arena, RangeMeters: *rng,
			SpeedMin: 0.5, SpeedMax: 2, PauseMaxSec: 120,
			ScanSec: *gran, Seed: *seed,
		})
	case *nodes > 0:
		tr, _, err = trace.Generate(trace.GenConfig{
			Name: "custom", Nodes: *nodes, DurationSec: *days * 86400,
			GranularitySec: *gran, TargetContacts: *contacts,
			ActivityAlpha: *alpha, ActivityMax: *amax,
			Communities: *comms, IntraBoost: *boost, Seed: *seed,
		})
	default:
		return fmt.Errorf("pass -table1, -preset, or -nodes/-days/-contacts")
	}
	if err != nil {
		return err
	}

	return emit(tr, *out, *format, *analyze)
}

// emit prints the trace statistics and writes the trace to out (if any)
// in the requested format.
func emit(tr *trace.Trace, out, format string, analyze bool) error {
	s := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %.1f days, %d contacts, %.3g contacts/pair/day, mean contact %.0fs\n",
		tr.Name, s.Nodes, s.DurationDays, s.Contacts, s.PairwiseFreqDay, s.MeanContactSec)

	if analyze {
		ic := tr.AnalyzeInterContacts()
		fmt.Printf("inter-contact analysis (%d gaps over %d pairs):\n", ic.Samples, ic.PairsObserved)
		fmt.Printf("  mean %.0fs, median %.0fs, CV %.2f (exponential: 1.0)\n",
			ic.MeanSec, ic.MedianSec, ic.CV)
		fmt.Printf("  KS distance to exponential (rate-normalized): %.4f\n", ic.KSDistance)
	}

	if out == "" {
		return nil
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "plain":
		return trace.Write(w, tr)
	case "chunked":
		return trace.WriteChunked(w, tr)
	default:
		return fmt.Errorf("unknown output format %q (plain, chunked)", format)
	}
}

// streamCityChunked pipes the city generator straight into the chunked
// writer: peak memory stays O(nodes) no matter how many contacts the
// trace holds.
func streamCityChunked(cfg trace.CityConfig, out string) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	sw, err := trace.NewStreamWriter(w, trace.StreamMeta{
		Name:        cfg.Name,
		Nodes:       cfg.Nodes,
		Duration:    cfg.DurationSec,
		Granularity: cfg.GranularitySec,
	})
	if err != nil {
		return err
	}
	count := 0
	if err := trace.StreamCity(cfg, func(c trace.Contact) error {
		count++
		return sw.Add(c)
	}); err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d nodes, %.1f days, %d contacts (streamed)\n",
		cfg.Name, cfg.Nodes, cfg.DurationSec/86400, count)
	return nil
}
