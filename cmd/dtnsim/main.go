// Command dtnsim runs one trace-driven simulation of a DTN data access
// scheme and prints the evaluation metrics.
//
// Usage:
//
//	dtnsim -trace Infocom06 -scheme Intentional -tl 3h -savg 100 -k 5
//	dtnsim -tracefile contacts.txt -scheme BundleCache
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dtncache/internal/cli"
	"dtncache/internal/engine"
	"dtncache/internal/experiment"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/prof"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnsim", flag.ContinueOnError)
	var (
		tf         = cli.AddTraceFlags(fs)
		schemeName = fs.String("scheme", experiment.SchemeIntentional, "scheme: "+strings.Join(append(experiment.SchemeNames(), experiment.ReplacementNames()[1:]...), ", "))
		ef         = cli.AddEngineFlags(fs)
		ff         = cli.AddFaultFlags(fs)
		of         = cli.AddObsFlags(fs)
		repeats    = fs.Int("repeats", 1, "number of repetitions to average")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of text")
		reportJSON = fs.Bool("report-json", false, "emit only the bare single-run report as JSON (the dtnserved /report encoding; forces a single un-averaged run)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf    = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}

	rec, ring, err := of.NewRecorder()
	if err != nil {
		return err
	}

	doneLoad := rec.Phase("trace-load")
	tr, err := tf.Load(*ef.Seed)
	doneLoad()
	if err != nil {
		return err
	}

	setup, err := ef.Config(tr, ff.Config(tr.Duration), rec)
	if err != nil {
		return err
	}
	setup.Stream = tf.Opener()
	manifest := obs.NewManifest(tr.Name, *schemeName, *ef.Seed, cli.Digestable(setup))
	if ring == nil {
		// Stream sink: the manifest is the first recorded line. With a
		// flight-recorder ring it is prepended at dump time instead, so
		// it cannot be overwritten.
		rec.Manifest(manifest)
	}
	start := time.Now()
	var rep metrics.Report
	if *ef.Invariants || *reportJSON {
		// The invariant checker lives on the environment and the bare
		// report must come from the one engine replay dtnserved executes,
		// so both modes run a single un-averaged engine they can inspect.
		setup.Scheme = *schemeName
		var eng *engine.Engine
		if eng, err = engine.New(setup); err == nil {
			rep, err = eng.Run()
			if err == nil {
				err = eng.ReplayErr()
			}
			if err == nil && *ef.Invariants {
				if v := eng.InvariantViolations(); len(v) > 0 {
					err = fmt.Errorf("%d invariant violation(s), first: %s", len(v), v[0])
				}
			}
		}
	} else {
		rep, err = experiment.RunAveraged(setup, *schemeName, *repeats)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		if ring != nil {
			cli.DumpRingErr(manifest, ring)
		}
		_ = rec.Close()
		return err
	}
	if ring != nil && *of.TraceOut != "" {
		w, werr := cli.OpenTraceOut(*of.TraceOut)
		if werr != nil {
			return werr
		}
		if werr = cli.DumpRing(w, manifest, ring); werr != nil {
			return werr
		}
	}
	if cerr := rec.Close(); cerr != nil {
		return cerr
	}
	if *of.Summary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	if *reportJSON {
		return cli.WriteReportJSON(os.Stdout, rep)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Trace    string
			Scheme   string
			Repeats  int
			Manifest obs.Manifest `json:"manifest"`
			Report   metrics.Report
		}{tr.Name, *schemeName, *repeats, manifest, rep})
	}
	fmt.Printf("trace:       %s (%d nodes, %.0f days, %d contacts)\n",
		tr.Name, tr.Nodes, tr.Duration/86400, len(tr.Contacts))
	fmt.Printf("scheme:      %s\n", *schemeName)
	fmt.Printf("queries:     %d issued, %d satisfied\n", rep.QueriesIssued, rep.QueriesSatisfied)
	fmt.Printf("success:     %.1f%%\n", 100*rep.SuccessRatio)
	fmt.Printf("delay:       mean %.1fh, median %.1fh\n", rep.MeanDelaySec/3600, rep.MedianDelaySec/3600)
	fmt.Printf("copies/item: %.2f (buffer use %.1f%%)\n", rep.MeanCopies, 100*rep.MeanBufferUse)
	fmt.Printf("replaced:    %d moves, %d redundant deliveries\n", rep.ReplacementMoves, rep.RedundantDeliveries)
	fmt.Printf("traffic:     %.1f Gb data, %.2f Gb control\n", rep.DataBits/1e9, rep.ControlBits/1e9)
	fmt.Printf("wall time:   %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
