// Command dtnsim runs one trace-driven simulation of a DTN data access
// scheme and prints the evaluation metrics.
//
// Usage:
//
//	dtnsim -trace Infocom06 -scheme Intentional -tl 3h -savg 100 -k 5
//	dtnsim -tracefile contacts.txt -scheme BundleCache
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dtncache/internal/experiment"
	"dtncache/internal/fault"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/prof"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnsim", flag.ContinueOnError)
	var (
		preset     = fs.String("trace", "MIT Reality", "trace preset (Infocom05, Infocom06, 'MIT Reality', UCSD)")
		traceFile  = fs.String("tracefile", "", "read the trace from this file instead of a preset")
		traceFmt   = fs.String("format", "plain", "trace file format: plain ('a b start end'), csv ('a,b,start,end') or one (ONE simulator CONN events)")
		schemeName = fs.String("scheme", experiment.SchemeIntentional, "scheme: "+strings.Join(append(experiment.SchemeNames(), experiment.ReplacementNames()[1:]...), ", "))
		tl         = fs.Duration("tl", 7*24*time.Hour, "average data lifetime T_L")
		savg       = fs.Float64("savg", 100, "average data size in Mb")
		zipf       = fs.Float64("zipf", 1, "Zipf query exponent s")
		k          = fs.Int("k", 8, "number of NCLs (K)")
		seed       = fs.Int64("seed", 1, "random seed")
		repeats    = fs.Int("repeats", 1, "number of repetitions to average")
		bufMin     = fs.Float64("bufmin", 200, "minimum node buffer in Mb")
		bufMax     = fs.Float64("bufmax", 600, "maximum node buffer in Mb")
		dropProb   = fs.Float64("drop", 0, "transfer failure-injection probability")
		respMode   = fs.String("response", "sigmoid", "response mode: global, sigmoid, always")
		faultChurn = fs.Float64("fault-churn", 0, "node churn: expected crashes per node per day (begins at the trace midpoint)")
		faultDown  = fs.Duration("fault-downtime", 4*time.Hour, "mean downtime per crash")
		faultWipe  = fs.Bool("fault-wipe", true, "wipe node buffers on crash")
		faultTrunc = fs.Float64("fault-truncate", 0, "probability a contact is truncated to a random fraction of its duration")
		blackoutK  = fs.Int("fault-blackout", 0, "number of top-ranked NCLs to black out for a window")
		blackoutS  = fs.Duration("fault-blackout-start", 0, "blackout window start (0 with -fault-blackout = trace midpoint)")
		blackoutE  = fs.Duration("fault-blackout-end", 0, "blackout window end (0 with -fault-blackout = 3/4 of the trace)")
		retryAfter = fs.Duration("retry", 0, "re-issue unsatisfied queries after this timeout with exponential backoff (0 = off)")
		retryMax   = fs.Int("retry-max", 0, "max query retry attempts (0 = default)")
		failover   = fs.Bool("ncl-failover", false, "redirect pushes/queries from crashed NCLs to the next-ranked live node")
		pushBudget = fs.Int("push-budget", 0, "abandon a pending push after this many attempts (0 = retry forever)")
		invariants = fs.Bool("invariants", false, "check runtime invariants every sweep and fail on violations (single run)")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of text")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf    = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
		traceOut   = fs.String("trace-out", "", "record the NDJSON run-trace to this `file` ('-' for stdout)")
		flightN    = fs.Int("flight-recorder", 0, "keep only the last `n` trace events in a ring (dumped to -trace-out at the end, or to stderr on error)")
		sampleN    = fs.Int("trace-sample", 1, "record one of every `n` trace events")
		obsSummary = fs.Bool("obs-summary", false, "print observability counters and phase timings to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}

	var (
		rec  *obs.Recorder
		ring *obs.RingSink
	)
	if *traceOut != "" || *flightN > 0 || *obsSummary {
		var sink obs.Sink
		switch {
		case *flightN > 0:
			ring = obs.NewRingSink(*flightN)
			sink = ring
		case *traceOut != "":
			w, werr := openTraceOut(*traceOut)
			if werr != nil {
				return werr
			}
			sink = obs.NewStreamSink(w)
		}
		if sink != nil && *sampleN > 1 {
			sink = obs.NewSampleSink(sink, *sampleN)
		}
		rec = obs.NewRecorder(sink, obs.WithPhases(obs.NewPhases(wallClock)))
	}

	doneLoad := rec.Phase("trace-load")
	var tr *trace.Trace
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		switch strings.ToLower(*traceFmt) {
		case "plain":
			tr, err = trace.Read(f)
		case "csv":
			tr, err = trace.ReadCSV(f)
		case "one":
			tr, err = trace.ReadONE(f)
		default:
			return fmt.Errorf("unknown trace format %q", *traceFmt)
		}
	} else {
		tr, err = trace.GeneratePreset(trace.Preset(*preset), *seed)
	}
	doneLoad()
	if err != nil {
		return err
	}

	mode, err := parseResponse(*respMode)
	if err != nil {
		return err
	}
	var fc fault.Config
	if *faultChurn > 0 {
		fc = experiment.FaultChurn(*faultChurn, faultDown.Seconds(), tr.Duration/2)
		fc.WipeOnCrash = *faultWipe
	}
	fc.TruncateProb = *faultTrunc
	if *blackoutK > 0 {
		fc.BlackoutNCLs = *blackoutK
		fc.BlackoutStartSec = blackoutS.Seconds()
		fc.BlackoutEndSec = blackoutE.Seconds()
		if fc.BlackoutEndSec == 0 {
			fc.BlackoutStartSec = tr.Duration / 2
			fc.BlackoutEndSec = 3 * tr.Duration / 4
		}
	}
	setup := experiment.Setup{
		Trace:           tr,
		AvgLifetime:     tl.Seconds(),
		AvgSizeBits:     *savg * 1e6,
		ZipfExponent:    *zipf,
		K:               *k,
		Seed:            *seed,
		BufferMinBits:   *bufMin * 1e6,
		BufferMaxBits:   *bufMax * 1e6,
		DropProb:        *dropProb,
		Fault:           fc,
		QueryRetrySec:   retryAfter.Seconds(),
		QueryRetryMax:   *retryMax,
		NCLFailover:     *failover,
		PushRetryBudget: *pushBudget,
		CheckInvariants: *invariants,
		Response:        mode,
		Obs:             rec,
	}
	manifest := obs.NewManifest(tr.Name, *schemeName, *seed, digestable(setup))
	if ring == nil {
		// Stream sink: the manifest is the first recorded line. With a
		// flight-recorder ring it is prepended at dump time instead, so
		// it cannot be overwritten.
		rec.Manifest(manifest)
	}
	start := time.Now()
	var rep metrics.Report
	if *invariants {
		// The checker lives on the environment, so -invariants runs a
		// single un-averaged simulation it can inspect afterwards.
		var env *scheme.Env
		if env, err = experiment.BuildEnv(setup, *schemeName); err == nil {
			rep = env.Run()
			if v := env.InvariantViolations(); len(v) > 0 {
				err = fmt.Errorf("%d invariant violation(s), first: %s", len(v), v[0])
			}
		}
	} else {
		rep, err = experiment.RunAveraged(setup, *schemeName, *repeats)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		if ring != nil {
			fmt.Fprintf(os.Stderr, "flight recorder: last %d of %d events\n",
				ring.Len(), ring.Len()+int(ring.Dropped()))
			os.Stderr.Write(append(manifest.AppendJSON(nil), '\n'))
			_ = ring.Dump(os.Stderr)
		}
		_ = rec.Close()
		return err
	}
	if ring != nil && *traceOut != "" {
		w, werr := openTraceOut(*traceOut)
		if werr != nil {
			return werr
		}
		if _, werr = w.Write(append(manifest.AppendJSON(nil), '\n')); werr != nil {
			return werr
		}
		if werr = ring.Dump(w); werr != nil {
			return werr
		}
		if c, ok := w.(io.Closer); ok {
			if werr = c.Close(); werr != nil {
				return werr
			}
		}
	}
	if cerr := rec.Close(); cerr != nil {
		return cerr
	}
	if *obsSummary {
		_ = manifest.WriteSummary(os.Stderr)
		_ = rec.WriteSummary(os.Stderr)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Trace    string
			Scheme   string
			Repeats  int
			Manifest obs.Manifest `json:"manifest"`
			Report   metrics.Report
		}{tr.Name, *schemeName, *repeats, manifest, rep})
	}
	fmt.Printf("trace:       %s (%d nodes, %.0f days, %d contacts)\n",
		tr.Name, tr.Nodes, tr.Duration/86400, len(tr.Contacts))
	fmt.Printf("scheme:      %s\n", *schemeName)
	fmt.Printf("queries:     %d issued, %d satisfied\n", rep.QueriesIssued, rep.QueriesSatisfied)
	fmt.Printf("success:     %.1f%%\n", 100*rep.SuccessRatio)
	fmt.Printf("delay:       mean %.1fh, median %.1fh\n", rep.MeanDelaySec/3600, rep.MedianDelaySec/3600)
	fmt.Printf("copies/item: %.2f (buffer use %.1f%%)\n", rep.MeanCopies, 100*rep.MeanBufferUse)
	fmt.Printf("replaced:    %d moves, %d redundant deliveries\n", rep.ReplacementMoves, rep.RedundantDeliveries)
	fmt.Printf("traffic:     %.1f Gb data, %.2f Gb control\n", rep.DataBits/1e9, rep.ControlBits/1e9)
	fmt.Printf("wall time:   %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// wallClock is the nanosecond clock injected into the phase timers
// (internal/obs itself is determinism-linted and never reads the wall
// clock).
func wallClock() int64 { return time.Now().UnixNano() }

// digestable strips the pointer fields off a Setup so its %+v rendering
// — and therefore the manifest's config digest — is stable across runs.
func digestable(s experiment.Setup) experiment.Setup {
	s.Trace = nil
	s.Knowledge = nil
	s.Obs = nil
	return s
}

// openTraceOut opens the run-trace destination; "-" selects stdout
// (left open for the report that follows).
func openTraceOut(path string) (io.Writer, error) {
	if path == "-" {
		return struct{ io.Writer }{os.Stdout}, nil
	}
	return os.Create(path)
}

func parseResponse(s string) (scheme.ResponseMode, error) {
	switch strings.ToLower(s) {
	case "global":
		return scheme.ResponseGlobal, nil
	case "sigmoid":
		return scheme.ResponseSigmoid, nil
	case "always":
		return scheme.ResponseAlways, nil
	default:
		return 0, fmt.Errorf("unknown response mode %q", s)
	}
}
