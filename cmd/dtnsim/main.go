// Command dtnsim runs one trace-driven simulation of a DTN data access
// scheme and prints the evaluation metrics.
//
// Usage:
//
//	dtnsim -trace Infocom06 -scheme Intentional -tl 3h -savg 100 -k 5
//	dtnsim -tracefile contacts.txt -scheme BundleCache
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dtncache/internal/experiment"
	"dtncache/internal/metrics"
	"dtncache/internal/prof"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

func main() {
	err := run(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed; --help is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtnsim", flag.ContinueOnError)
	var (
		preset     = fs.String("trace", "MIT Reality", "trace preset (Infocom05, Infocom06, 'MIT Reality', UCSD)")
		traceFile  = fs.String("tracefile", "", "read the trace from this file instead of a preset")
		traceFmt   = fs.String("format", "plain", "trace file format: plain ('a b start end') or one (ONE simulator CONN events)")
		schemeName = fs.String("scheme", experiment.SchemeIntentional, "scheme: "+strings.Join(append(experiment.SchemeNames(), experiment.ReplacementNames()[1:]...), ", "))
		tl         = fs.Duration("tl", 7*24*time.Hour, "average data lifetime T_L")
		savg       = fs.Float64("savg", 100, "average data size in Mb")
		zipf       = fs.Float64("zipf", 1, "Zipf query exponent s")
		k          = fs.Int("k", 8, "number of NCLs (K)")
		seed       = fs.Int64("seed", 1, "random seed")
		repeats    = fs.Int("repeats", 1, "number of repetitions to average")
		bufMin     = fs.Float64("bufmin", 200, "minimum node buffer in Mb")
		bufMax     = fs.Float64("bufmax", 600, "maximum node buffer in Mb")
		dropProb   = fs.Float64("drop", 0, "transfer failure-injection probability")
		respMode   = fs.String("response", "sigmoid", "response mode: global, sigmoid, always")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of text")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this `file`")
		memProf    = fs.String("memprofile", "", "write a heap profile to this `file` after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}

	var tr *trace.Trace
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		switch strings.ToLower(*traceFmt) {
		case "plain":
			tr, err = trace.Read(f)
		case "one":
			tr, err = trace.ReadONE(f)
		default:
			return fmt.Errorf("unknown trace format %q", *traceFmt)
		}
	} else {
		tr, err = trace.GeneratePreset(trace.Preset(*preset), *seed)
	}
	if err != nil {
		return err
	}

	mode, err := parseResponse(*respMode)
	if err != nil {
		return err
	}
	setup := experiment.Setup{
		Trace:         tr,
		AvgLifetime:   tl.Seconds(),
		AvgSizeBits:   *savg * 1e6,
		ZipfExponent:  *zipf,
		K:             *k,
		Seed:          *seed,
		BufferMinBits: *bufMin * 1e6,
		BufferMaxBits: *bufMax * 1e6,
		DropProb:      *dropProb,
		Response:      mode,
	}
	start := time.Now()
	rep, err := experiment.RunAveraged(setup, *schemeName, *repeats)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Trace   string
			Scheme  string
			Repeats int
			Report  metrics.Report
		}{tr.Name, *schemeName, *repeats, rep})
	}
	fmt.Printf("trace:       %s (%d nodes, %.0f days, %d contacts)\n",
		tr.Name, tr.Nodes, tr.Duration/86400, len(tr.Contacts))
	fmt.Printf("scheme:      %s\n", *schemeName)
	fmt.Printf("queries:     %d issued, %d satisfied\n", rep.QueriesIssued, rep.QueriesSatisfied)
	fmt.Printf("success:     %.1f%%\n", 100*rep.SuccessRatio)
	fmt.Printf("delay:       mean %.1fh, median %.1fh\n", rep.MeanDelaySec/3600, rep.MedianDelaySec/3600)
	fmt.Printf("copies/item: %.2f (buffer use %.1f%%)\n", rep.MeanCopies, 100*rep.MeanBufferUse)
	fmt.Printf("replaced:    %d moves, %d redundant deliveries\n", rep.ReplacementMoves, rep.RedundantDeliveries)
	fmt.Printf("traffic:     %.1f Gb data, %.2f Gb control\n", rep.DataBits/1e9, rep.ControlBits/1e9)
	fmt.Printf("wall time:   %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func parseResponse(s string) (scheme.ResponseMode, error) {
	switch strings.ToLower(s) {
	case "global":
		return scheme.ResponseGlobal, nil
	case "sigmoid":
		return scheme.ResponseSigmoid, nil
	case "always":
		return scheme.ResponseAlways, nil
	default:
		return 0, fmt.Errorf("unknown response mode %q", s)
	}
}
