package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtncache/internal/trace"
)

func TestRunPresetSmoke(t *testing.T) {
	if err := run([]string{
		"-trace", "Infocom05", "-scheme", "NoCache", "-tl", "3h", "-k", "3",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{
		"-trace", "Infocom05", "-scheme", "NoCache", "-tl", "3h", "-k", "3", "-json",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{
		"-tracefile", path, "-scheme", "NoCache", "-tl", "3h", "-k", "3",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-trace", "NotATrace"},
		{"-scheme", "NotAScheme", "-trace", "Infocom05"},
		{"-response", "bogus"},
		{"-tracefile", "/does/not/exist"},
		{"-tracefile", "/dev/null", "-format", "sideways"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
