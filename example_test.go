package dtncache_test

import (
	"fmt"
	"log"
	"strings"

	"dtncache"
)

// ExampleRun simulates the intentional NCL caching scheme on a small
// synthetic conference trace and prints whether any queries succeeded.
func ExampleRun() {
	tr, err := dtncache.GenerateTrace(dtncache.Infocom05, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dtncache.Run(dtncache.Setup{
		Trace:       tr,
		AvgLifetime: 3 * 3600, // 3-hour data lifetime
		K:           5,        // five network central locations
		Seed:        1,
	}, dtncache.SchemeIntentional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.QueriesIssued > 0 && rep.SuccessRatio > 0.3)
	// Output: true
}

// ExampleNCLMetrics ranks the nodes of a trace by the paper's NCL
// selection metric (Eq. 3).
func ExampleNCLMetrics() {
	tr, err := dtncache.GenerateTrace(dtncache.Infocom05, 1)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := dtncache.NCLMetrics(tr, dtncache.DefaultMetricT(tr.Name))
	if err != nil {
		log.Fatal(err)
	}
	best, bestVal := 0, 0.0
	for n, m := range ms {
		if m > bestVal {
			best, bestVal = n, m
		}
	}
	fmt.Println(len(ms) == tr.Nodes, best >= 0, bestVal > 0)
	// Output: true true true
}

// ExampleReadTrace parses a contact trace from its plain-text form.
func ExampleReadTrace() {
	const text = `# name: demo
# nodes: 3
# duration: 100
0 1 10 20
1 2 30 40
`
	tr, err := dtncache.ReadTrace(strings.NewReader(text))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Name, tr.Nodes, len(tr.Contacts))
	// Output: demo 3 2
}

// ExampleReadTraceONE parses ONE-simulator connection events.
func ExampleReadTraceONE() {
	const events = `0 CONN 0 1 up
15 CONN 0 1 down
`
	tr, err := dtncache.ReadTraceONE(strings.NewReader(events))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Nodes, len(tr.Contacts), tr.Contacts[0].Duration())
	// Output: 2 1 15
}

// ExampleEvaluateRouting compares epidemic flooding against direct
// delivery on a small trace.
func ExampleEvaluateRouting() {
	tr, err := dtncache.GenerateTrace(dtncache.Infocom05, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dtncache.RoutingConfig{Messages: 100, LifetimeSec: 4 * 3600, Seed: 1}
	epi, err := dtncache.EvaluateRouting(tr, dtncache.EpidemicRouting, cfg)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := dtncache.EvaluateRouting(tr, dtncache.DirectDelivery, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(epi.DeliveryRatio > direct.DeliveryRatio,
		epi.Transmissions > direct.Transmissions)
	// Output: true true
}
