package engine

import (
	"errors"
	"fmt"
	"sync"

	"dtncache/internal/fault"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Engine is one running simulation behind the imperative API. All
// methods serialize on an internal mutex, so concurrent drivers (HTTP
// handlers publishing and querying while a pacer advances the clock)
// interleave safely — the underlying simulator stays single-threaded
// and deterministic in the order the lock is acquired.
//
//dtn:shared one instance is driven by concurrent server goroutines
type Engine struct {
	mu     sync.Mutex
	cfg    Config
	env    *scheme.Env
	closed bool
}

// New builds a fully wired engine: scheme, workload (materialized in
// batch mode, empty in Live mode), knowledge provider, fault engine
// and obs recorder. The construction runs under the recorder's "build"
// phase span.
func New(cfg Config) (*Engine, error) {
	c, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	doneBuild := c.Obs.Phase("build")
	defer doneBuild()
	factory, err := factoryFor(c)
	if err != nil {
		return nil, err
	}
	var w *workload.Workload
	if c.Live {
		// Service mode: no pre-materialized schedule; Publish and Query
		// inject data/queries at the current virtual time. The config
		// still carries the workload parameters so injected items can
		// default their lifetimes and constraints from T_L.
		w = &workload.Workload{Config: workload.Config{
			Nodes:        c.Trace.Nodes,
			GenProb:      c.GenProb,
			AvgLifetime:  c.AvgLifetime,
			AvgSizeBits:  c.AvgSizeBits,
			ZipfExponent: c.ZipfExponent,
			Start:        c.Trace.Duration / 2,
			End:          c.Trace.Duration,
			Seed:         c.Seed,
		}}
	} else {
		w, err = workload.Generate(workload.Config{
			Nodes:            c.Trace.Nodes,
			GenProb:          c.GenProb,
			AvgLifetime:      c.AvgLifetime,
			AvgSizeBits:      c.AvgSizeBits,
			ZipfExponent:     c.ZipfExponent,
			PerNodeInterests: c.PerNodeInterests,
			Start:            c.Trace.Duration / 2,
			End:              c.Trace.Duration,
			Seed:             c.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	sc := scheme.DefaultConfig(c.Trace.Duration)
	sc.MetricT = c.MetricT
	sc.NCLCount = c.K
	sc.NCLSelection = c.NCLSelection
	sc.BufferMinBits = c.BufferMinBits
	sc.BufferMaxBits = c.BufferMaxBits
	sc.Response = c.Response
	sc.ProbabilisticSelection = !c.DisableProbabilisticSelection
	sc.PopularityFromFirst = c.PopularityFromFirst
	sc.DropProb = c.DropProb
	sc.Fault = c.Fault
	sc.QueryRetrySec = c.QueryRetrySec
	sc.QueryRetryMax = c.QueryRetryMax
	sc.NCLFailover = c.NCLFailover
	sc.PushRetryBudget = c.PushRetryBudget
	sc.CheckInvariants = c.CheckInvariants
	sc.Seed = c.Seed
	sc.Obs = c.Obs
	sc.SpanRetain = c.SpanRetain
	var env *scheme.Env
	if c.Stream != nil {
		env, err = scheme.NewEnvStream(c.Trace, w, sc, factory(), c.Knowledge, c.Stream)
	} else {
		env, err = scheme.NewEnvShared(c.Trace, w, sc, factory(), c.Knowledge)
	}
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: c, env: env}, nil
}

// ErrClosed reports an operation on a closed engine.
var ErrClosed = errors.New("engine: closed")

// Config returns the normalized configuration the engine was built with.
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// Env exposes the underlying simulation environment for diagnostics
// and benchmarks (e.g. the processed-event counter behind the
// events/sec metric). Callers must not drive the environment while
// other goroutines use the engine.
func (e *Engine) Env() *scheme.Env { return e.env }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.Sim.Now()
}

// Duration returns the trace duration in seconds (the batch replay
// horizon).
func (e *Engine) Duration() float64 { return e.cfg.Trace.Duration }

// Pending returns the number of queued simulation events.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.Sim.Pending()
}

// Processed returns the cumulative number of dispatched events.
func (e *Engine) Processed() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.Sim.Processed()
}

// Advance processes every event with timestamp <= to and moves the
// virtual clock there, returning the number of events dispatched. A
// target at or before the current time is a no-op. Advance never runs
// past `to`, so a pacing driver converts wall time to virtual time and
// calls Advance as often as it likes.
func (e *Engine) Advance(to float64) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	return e.env.Sim.RunUntil(to), nil
}

// SpanTree returns a copy of the retained provenance spans of the
// query (emission order) and whether the query is known to the tracer.
// It requires Config.SpanRetain > 0; without a tracer every lookup
// reports unknown.
func (e *Engine) SpanTree(id workload.QueryID) ([]obs.SpanEvent, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.Prov.SpanTree(id)
}

// Tick dispatches all events of the next pending virtual instant and
// returns that instant. With an empty queue it returns the current
// time and n = 0.
func (e *Engine) Tick() (at float64, n int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, 0, ErrClosed
	}
	if e.env.Sim.Pending() == 0 {
		return e.env.Sim.Now(), 0, nil
	}
	at = e.env.Sim.NextEventAt()
	return at, e.env.Sim.RunUntil(at), nil
}

// Run replays the remaining trace to its end and returns the final
// metric report — the single batch code path dtnsim and the experiment
// sweeps execute. The replay and the report computation run under obs
// phase spans.
func (e *Engine) Run() (metrics.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return metrics.Report{}, ErrClosed
	}
	return e.env.Run(), nil
}

// PublishSpec describes one live data publish.
type PublishSpec struct {
	// Source is the generating node.
	Source int
	// SizeBits is the item size (Config.AvgSizeBits when 0).
	SizeBits float64
	// LifetimeSec is the item lifetime (Config.AvgLifetime when 0).
	LifetimeSec float64
}

// Publish registers a new data item generated by spec.Source at the
// current virtual time and hands it to the scheme, exactly as a
// batch-workload generation event would. It returns the item with its
// assigned network-wide ID.
func (e *Engine) Publish(spec PublishSpec) (workload.DataItem, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return workload.DataItem{}, ErrClosed
	}
	if spec.SizeBits == 0 {
		spec.SizeBits = e.cfg.AvgSizeBits
	}
	if spec.LifetimeSec == 0 {
		spec.LifetimeSec = e.cfg.AvgLifetime
	}
	return e.env.InjectData(trace.NodeID(spec.Source), spec.SizeBits, spec.LifetimeSec)
}

// QuerySpec describes one live query.
type QuerySpec struct {
	// Requester is the querying node.
	Requester int
	// Data is the requested item's ID.
	Data workload.DataID
	// ConstraintSec is the query time constraint T_q
	// (Config.AvgLifetime/2, the paper's value, when 0).
	ConstraintSec float64
}

// QueryResult reports what happened to a live query.
type QueryResult struct {
	// Query is the registered query (ID assigned by the engine).
	Query workload.Query
	// Issued is false when the requester already held the data, in
	// which case the query never entered the network (and is not
	// counted in the query/issued metrics).
	Issued bool
}

// Query issues a live query from spec.Requester for spec.Data at the
// current virtual time, exactly as a batch-workload query event would:
// a requester that already holds the data does not query the network
// at all (Issued false), otherwise the query is counted, handed to the
// scheme, and entered into the retry chain when retries are
// configured.
func (e *Engine) Query(spec QuerySpec) (QueryResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return QueryResult{}, ErrClosed
	}
	if spec.ConstraintSec == 0 {
		spec.ConstraintSec = e.cfg.AvgLifetime / 2
	}
	q, issued, err := e.env.InjectQuery(trace.NodeID(spec.Requester), spec.Data, spec.ConstraintSec)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Query: q, Issued: issued}, nil
}

// IngestContacts feeds live contacts into the running replay at the
// current virtual time — the path a real (non-preset) contact stream
// enters a serving engine by. The batch is validated atomically (a
// rejected batch schedules nothing); accepted contacts already in
// progress are clamped to start now, fully elapsed ones are counted
// stale and skipped, and a contact whose pair is already connected when
// its begin event fires coalesces into the open session. Like every
// other mutating op, the result is a deterministic function of the
// applied op sequence.
func (e *Engine) IngestContacts(cs []trace.Contact) (scheme.IngestResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return scheme.IngestResult{}, ErrClosed
	}
	return e.env.IngestContacts(cs)
}

// Satisfied reports whether the query was answered before its deadline.
func (e *Engine) Satisfied(id workload.QueryID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.M.Satisfied(id)
}

// ReplayErr returns the sticky error, if any, the streaming contact
// feed or knowledge feed reported. Always nil for a materialized run.
// A streaming run observing a non-nil ReplayErr saw only a prefix of
// the trace and must be discarded.
func (e *Engine) ReplayErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.ReplayErr()
}

// Report computes the metric summary of everything replayed so far.
func (e *Engine) Report() metrics.Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.M.Report()
}

// CheckInvariants evaluates the runtime invariant checker against the
// current simulation state (the dtnserved /healthz gate) and returns
// any violations found now, plus every violation collected by the
// periodic sweeps when Config.CheckInvariants is on.
func (e *Engine) CheckInvariants() []fault.Violation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := fault.Check(e.env, e.env.Sim.Now())
	return append(out, e.env.InvariantViolations()...)
}

// InvariantViolations returns the breaches collected by the periodic
// sweep checker (nil when clean or when CheckInvariants is off).
func (e *Engine) InvariantViolations() []fault.Violation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env.InvariantViolations()
}

// Close marks the engine closed — subsequent Publish/Query/Advance
// calls fail with ErrClosed — and flushes the attached obs recorder's
// trace sink. Close is idempotent; the first call's flush error wins.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.cfg.Obs.Close()
}

// String identifies the engine in logs.
func (e *Engine) String() string {
	return fmt.Sprintf("engine(%s on %s)", e.cfg.Scheme, e.cfg.Trace.Name)
}
