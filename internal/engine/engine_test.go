package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dtncache/internal/engine"
	"dtncache/internal/experiment"
	"dtncache/internal/obs"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

func infocom(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func reality(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.GeneratePreset(trace.MITReality, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRequiresTrace(t *testing.T) {
	if _, err := engine.New(engine.Config{}); err == nil {
		t.Fatal("New without a trace must fail")
	}
	if _, err := engine.New(engine.Config{Trace: infocom(t), Scheme: "nope"}); err == nil {
		t.Fatal("New with an unknown scheme must fail")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	c, err := engine.Config{Trace: infocom(t)}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheme != engine.SchemeIntentional {
		t.Errorf("default scheme = %q", c.Scheme)
	}
	if c.AvgLifetime != 7*86400 || c.K != 8 || c.Seed != 1 {
		t.Errorf("paper defaults not applied: %+v", c)
	}
	if c.MetricT != engine.DefaultMetricT(string(trace.Infocom05)) {
		t.Errorf("MetricT = %v", c.MetricT)
	}
	// Idempotence: normalizing a normalized config changes nothing.
	// Config holds a func field (Stream) so it is not ==-comparable;
	// the %+v rendering is the same equality the manifest digest uses.
	c2, err := c.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", c2) != fmt.Sprintf("%+v", c) {
		t.Errorf("normalization not idempotent: %+v vs %+v", c2, c)
	}
}

// TestRunMatchesExperiment pins the refactor's core promise: the batch
// engine replay is the exact code path experiment.Run executes, so the
// integer-valued headline metrics agree exactly.
func TestRunMatchesExperiment(t *testing.T) {
	tr := reality(t)
	cfg := engine.Config{Trace: tr, Scheme: engine.SchemeIntentional}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiment.Run(engine.Config{Trace: tr}, experiment.SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Errorf("engine.Run != experiment.Run:\n%+v\n%+v", rep, got)
	}
	if rep.QueriesIssued == 0 {
		t.Error("expected a nonzero batch workload on MIT Reality")
	}
}

// TestBatchCountersMatchReport ties the obs counters the /metrics
// endpoint exposes to the report the /report endpoint computes.
func TestBatchCountersMatchReport(t *testing.T) {
	rec := obs.NewRecorder(nil)
	eng, err := engine.New(engine.Config{Trace: reality(t), Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("query", "issued").Value(); got != uint64(rep.QueriesIssued) {
		t.Errorf("query/issued counter = %d, report says %d", got, rep.QueriesIssued)
	}
	var sb strings.Builder
	if err := rec.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dtn_query_issued_total") {
		t.Error("prom output missing dtn_query_issued_total")
	}
}

func TestLivePublishQueryAdvance(t *testing.T) {
	eng, err := engine.New(engine.Config{Trace: infocom(t), Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep := eng.Report(); rep.QueriesIssued != 0 {
		t.Fatalf("live engine starts with %d queries issued", rep.QueriesIssued)
	}
	item, err := eng.Publish(engine.PublishSpec{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	if item.ID != 0 || item.SizeBits != 100e6 || item.Expires != 7*86400 {
		t.Errorf("publish defaults wrong: %+v", item)
	}
	item2, err := eng.Publish(engine.PublishSpec{Source: 5, SizeBits: 1e6, LifetimeSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if item2.ID != 1 {
		t.Errorf("data IDs not dense: %d", item2.ID)
	}
	if _, err := eng.Publish(engine.PublishSpec{Source: -1}); err == nil {
		t.Error("negative source must fail")
	}
	if _, err := eng.Query(engine.QuerySpec{Requester: 2, Data: 99}); err == nil {
		t.Error("unknown data ID must fail")
	}
	res, err := eng.Query(engine.QuerySpec{Requester: 2, Data: item.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Issued || res.Query.ID != 0 || res.Query.Deadline != 7*86400/2 {
		t.Errorf("query result wrong: %+v", res)
	}
	if eng.Satisfied(res.Query.ID) {
		t.Error("query satisfied before any contact")
	}
	if n, err := eng.Advance(3600); err != nil || eng.Now() != 3600 {
		t.Errorf("Advance: n=%d err=%v now=%v", n, err, eng.Now())
	}
	// Advance backwards is a no-op, never an error.
	if _, err := eng.Advance(10); err != nil || eng.Now() != 3600 {
		t.Errorf("backwards Advance moved the clock: now=%v err=%v", eng.Now(), err)
	}
	at, _, err := eng.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if at < 3600 {
		t.Errorf("Tick went backwards: %v", at)
	}
	if rep := eng.Report(); rep.QueriesIssued != 1 {
		t.Errorf("report QueriesIssued = %d, want 1", rep.QueriesIssued)
	}
	if v := eng.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations on a fresh live run: %v", v)
	}
}

// TestLiveDeterminism replays the same live request sequence twice and
// expects bit-identical reports: the engine contains no hidden
// nondeterminism even when driven through the service API.
func TestLiveDeterminism(t *testing.T) {
	run := func() (int, float64) {
		tr, err := trace.GeneratePreset(trace.Infocom05, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(engine.Config{Trace: tr, Live: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := eng.Publish(engine.PublishSpec{Source: i}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if _, err := eng.Query(engine.QuerySpec{Requester: i % 41, Data: workload.DataID(i % 5)}); err != nil {
				t.Fatal(err)
			}
			if i%10 == 9 {
				if _, err := eng.Advance(eng.Now() + 1800); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := eng.Advance(eng.Duration()); err != nil {
			t.Fatal(err)
		}
		rep := eng.Report()
		return rep.QueriesSatisfied, rep.MeanDelaySec
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("live replay not deterministic: (%d, %v) vs (%d, %v)", s1, d1, s2, d2)
	}
}

func TestCloseSemantics(t *testing.T) {
	eng, err := engine.New(engine.Config{Trace: infocom(t), Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := eng.Publish(engine.PublishSpec{Source: 0}); err != engine.ErrClosed {
		t.Errorf("Publish after Close: %v", err)
	}
	if _, err := eng.Query(engine.QuerySpec{Requester: 0, Data: 0}); err != engine.ErrClosed {
		t.Errorf("Query after Close: %v", err)
	}
	if _, err := eng.Advance(10); err != engine.ErrClosed {
		t.Errorf("Advance after Close: %v", err)
	}
	if _, _, err := eng.Tick(); err != engine.ErrClosed {
		t.Errorf("Tick after Close: %v", err)
	}
	if _, err := eng.Run(); err != engine.ErrClosed {
		t.Errorf("Run after Close: %v", err)
	}
}

// TestConcurrentDrivers hammers one engine from interleaved goroutines
// — the dtnserved situation: HTTP handlers publishing and querying
// while a pacer advances the clock. Run under -race this pins the
// mutex serialization of the whole API surface.
func TestConcurrentDrivers(t *testing.T) {
	tr := infocom(t)
	eng, err := engine.New(engine.Config{Trace: tr, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//dtn:workerpool hammer drivers, joined by the Wait below
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 6 {
				case 0:
					if _, err := eng.Publish(engine.PublishSpec{Source: (w*31 + i) % tr.Nodes}); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				case 1, 2:
					// Races with publishes, so the ID may not exist yet;
					// only the unknown-ID error is acceptable.
					if _, err := eng.Query(engine.QuerySpec{
						Requester: (w + i) % tr.Nodes,
						Data:      workload.DataID(i % 50),
					}); err != nil && !strings.Contains(err.Error(), "unknown data ID") {
						t.Errorf("query: %v", err)
						return
					}
				case 3:
					if _, err := eng.Advance(eng.Now() + 5); err != nil {
						t.Errorf("advance: %v", err)
						return
					}
				case 4:
					_ = eng.Report()
					_ = eng.Now()
					_ = eng.Pending()
				case 5:
					if v := eng.CheckInvariants(); len(v) != 0 {
						t.Errorf("violations under load: %v", v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rep := eng.Report()
	if rep.QueriesIssued == 0 {
		t.Error("hammer issued no queries")
	}
	if eng.Processed() == 0 {
		t.Error("hammer processed no events")
	}
}

// TestConcurrentCloseDuringOps races Close against in-flight Publish,
// Query, Advance and IngestContacts from many goroutines (the dtnserved
// SIGTERM-drain shape): every op must return either a real result, a
// deterministic validation error, or ErrClosed — never panic, deadlock
// or trip the race detector — and Close itself must stay idempotent
// under concurrent invocation.
func TestConcurrentCloseDuringOps(t *testing.T) {
	tr := infocom(t)
	eng, err := engine.New(engine.Config{Trace: tr, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const rounds = 200
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//dtn:workerpool op hammer racing Close, joined by the Wait below
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				var err error
				switch i % 4 {
				case 0:
					_, err = eng.Publish(engine.PublishSpec{Source: (w*17 + i) % tr.Nodes})
				case 1:
					_, err = eng.Query(engine.QuerySpec{Requester: (w + i) % tr.Nodes, Data: workload.DataID(i % 50)})
					if err != nil && strings.Contains(err.Error(), "unknown data ID") {
						err = nil // racing the publishes; deterministic rejection
					}
				case 2:
					_, err = eng.Advance(eng.Now() + 1)
				case 3:
					now := eng.Now()
					_, err = eng.IngestContacts([]trace.Contact{
						{A: 0, B: trace.NodeID(1 + (w+i)%(tr.Nodes-1)), Start: now + 1, End: now + 2},
					})
					if err != nil && strings.Contains(err.Error(), "after trace duration") {
						err = nil // clock already near the end; deterministic rejection
					}
				}
				if err != nil && err != engine.ErrClosed {
					t.Errorf("worker %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Two goroutines race Close against the op hammer and each other.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		//dtn:workerpool concurrent closers, joined by the Wait below
		go func() {
			defer wg.Done()
			<-start
			if err := eng.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Errorf("Close after the race: %v", err)
	}
	if _, err := eng.Advance(eng.Now() + 1); err != engine.ErrClosed {
		t.Errorf("Advance after close: %v", err)
	}
	if _, err := eng.IngestContacts([]trace.Contact{{A: 0, B: 1, Start: 1, End: 2}}); err != engine.ErrClosed {
		t.Errorf("IngestContacts after close: %v", err)
	}
}
