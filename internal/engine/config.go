// Package engine is the driver-agnostic simulation engine behind every
// way this repository replays the paper's protocol: the batch CLI
// (cmd/dtnsim), the figure/table sweeps (internal/experiment) and the
// long-running cache service (cmd/dtnserved) all build a Config, call
// New, and drive the returned Engine through the same small imperative
// API — Publish, Query, Advance/Tick, Report, Close. There is exactly
// one replay code path: the engine owns the pooled event heap
// (internal/sim), the scheme and core protocol state, the knowledge
// Provider with its incremental NCL recompute, the obs Recorder and
// the fault Engine; drivers differ only in where publishes, queries
// and clock advancement come from.
//
// The engine itself never reads the wall clock and never spawns
// goroutines: virtual time advances only through Advance/Tick/Run, so
// a batch driver can replay as fast as the hardware allows while a
// service driver paces the same event stream against real time. All
// methods serialize on one mutex, making an Engine safe for concurrent
// drivers (HTTP handlers, pacers) without giving up the simulator's
// single-threaded determinism.
//
//dtn:determinism
package engine

import (
	"errors"
	"fmt"

	"dtncache/internal/buffer"
	"dtncache/internal/core"
	"dtncache/internal/fault"
	"dtncache/internal/knowledge"
	"dtncache/internal/obs"
	"dtncache/internal/scheme"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
)

// Config describes one engine instance: a trace, the scheme under
// evaluation, workload parameters (Sec. VI-A) and protocol
// configuration. Zero values pick the paper's defaults.
type Config struct {
	// Trace is the contact trace to replay (required).
	Trace *trace.Trace
	// Scheme names the data access scheme (SchemeIntentional when
	// empty). internal/experiment sets it from its schemeName argument.
	Scheme string
	// Live disables the generated batch workload: data items and
	// queries enter the engine exclusively through Engine.Publish and
	// Engine.Query (the dtnserved service mode). Batch mode (default)
	// materializes the paper's workload up front.
	Live bool
	// MetricT is the path-weight horizon T; 0 picks the paper's value
	// for the trace name (1h Infocom, 1wk Reality, 3d UCSD, else 1 day).
	MetricT float64
	// AvgLifetime is T_L (default 1 week).
	AvgLifetime float64
	// AvgSizeBits is s_avg (default 100 Mb).
	AvgSizeBits float64
	// ZipfExponent is the query exponent s (default 1).
	ZipfExponent float64
	// GenProb is p_G (default 0.2).
	GenProb float64
	// K is the NCL count (default 8).
	K int
	// NCLSelection picks the central-node selection strategy (the
	// paper's Eq. 3 metric by default; degree/contact-count/random are
	// ablation baselines).
	NCLSelection scheme.NCLStrategy
	// BufferMinBits/BufferMaxBits bound node buffers (default 200-600 Mb).
	BufferMinBits, BufferMaxBits float64
	// Response is the probabilistic response mode (default sigmoid).
	Response scheme.ResponseMode
	// ProbabilisticSelection toggles Algorithm 1 (default on).
	// Set DisableProbabilisticSelection to turn it off.
	DisableProbabilisticSelection bool
	// PopularityFromFirst picks the literal Eq. (6) variant.
	PopularityFromFirst bool
	// DisableReplacement turns the contact-time cache replacement off
	// entirely (ablation; affects the Intentional scheme only).
	DisableReplacement bool
	// UtilityFloor overrides the fresh-data utility floor of the
	// Intentional scheme's replacement (0 keeps the default 0.1).
	UtilityFloor float64
	// QuerySprayCopies enables spray-and-wait query dissemination with
	// this copy budget per NCL target (0/1 = single-copy gradient).
	QuerySprayCopies int
	// PerNodeInterests gives each requester its own Zipf rank
	// permutation (extension; the paper's global popularity is default).
	PerNodeInterests bool
	// DropProb injects transfer failures.
	DropProb float64
	// Fault configures the deterministic fault-injection engine: node
	// churn, contact truncation, transfer kills, NCL blackouts. The zero
	// value installs no injector.
	Fault fault.Config
	// QueryRetrySec re-issues still-unsatisfied queries after this
	// timeout with capped exponential backoff (0 = no retries).
	QueryRetrySec float64
	// QueryRetryMax caps retry attempts per query (0 = scheme default).
	QueryRetryMax int
	// NCLFailover lets the intentional scheme redirect pushes and query
	// fan-out from crashed central nodes to the next-ranked live node.
	NCLFailover bool
	// PushRetryBudget abandons a pending push after this many attempts
	// (0 = retry forever, the pre-fault behavior).
	PushRetryBudget int
	// CheckInvariants runs the runtime invariant checker every
	// maintenance sweep (tests, dtnsim -invariants and the dtnserved
	// /healthz gate).
	CheckInvariants bool
	// Seed drives workload and protocol randomness (default 1).
	Seed int64
	// Knowledge optionally shares a prebuilt knowledge provider across
	// runs (see SharedKnowledge). It must have been built for this
	// trace's merged contacts with the same MetricT; nil gives each run
	// its own provider. Knowledge is independent of Seed, workload and
	// scheme, so one provider serves every cell of a sweep over the
	// same trace.
	Knowledge *knowledge.Provider
	// Stream optionally replays contacts from a streaming source instead
	// of Trace.Contacts, so city-scale traces never materialize in
	// memory. The opener must return a fresh source positioned at the
	// start on every call — the engine opens one stream for the contact
	// driver and one (plus one per rewind) for the knowledge feed. Trace
	// is still required and supplies the metadata (Name, Nodes,
	// Duration); its Contacts may be empty. Results are byte-identical
	// to a materialized run over the same contacts; callers should check
	// Engine.ReplayErr after the run.
	Stream func() (trace.ContactSource, error)
	// Obs is the observability recorder wired into the environment (nil
	// = off). Metric updates are atomic, so one recorder may be shared
	// across parallel cells (RunComparison, sweeps) — but only a
	// sink-free recorder: trace encoding reuses one buffer, so a
	// recorder with a trace sink must be confined to a single
	// sequential run (where it records byte-identical traces at a fixed
	// seed). cmd/experiments keeps sweep-cell trace events on a
	// separate mutex-guarded recorder for this reason.
	Obs *obs.Recorder

	// SpanRetain keeps the provenance span trees of up to this many
	// finished queries queryable through Engine.SpanTree (and
	// dtnserved's /v1/trace endpoint). 0, the default, retains nothing;
	// spans still stream into the run-trace whenever Obs has a sink.
	SpanRetain int
}

// Normalized returns the config with every zero-valued knob replaced
// by its paper default — the exact value set New builds from. Drivers
// that derive per-run state from the config (shared knowledge
// pipelines, manifests) normalize first so they see what will run.
// Normalization is idempotent.
func (c Config) Normalized() (Config, error) { return c.normalized() }

// normalized fills defaults.
func (c Config) normalized() (Config, error) {
	if c.Trace == nil {
		return c, errors.New("engine: Config.Trace is required")
	}
	if c.Scheme == "" {
		c.Scheme = SchemeIntentional
	}
	if c.MetricT == 0 {
		c.MetricT = DefaultMetricT(c.Trace.Name)
	}
	if c.AvgLifetime == 0 {
		c.AvgLifetime = 7 * 86400
	}
	if c.AvgSizeBits == 0 {
		c.AvgSizeBits = 100e6
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1
	}
	if c.GenProb == 0 {
		c.GenProb = 0.2
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.BufferMinBits == 0 {
		c.BufferMinBits = 200e6
	}
	if c.BufferMaxBits == 0 {
		c.BufferMaxBits = 600e6
	}
	if c.Response == 0 {
		c.Response = scheme.ResponseSigmoid
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// DefaultMetricT returns the path-weight horizon T for a trace,
// following Sec. IV-B's per-trace values and its adaptivity rule
// ("different values of T are used adaptively ... to ensure the
// differentiation of the NCL selection metric"): our synthetic Infocom06
// stand-in is denser than the real trace, so its horizon is 15 minutes
// rather than the paper's hour.
func DefaultMetricT(name string) float64 {
	switch trace.Preset(name) {
	case trace.Infocom05:
		return 3600
	case trace.Infocom06:
		return 900
	case trace.MITReality:
		return 7 * 86400
	case trace.UCSD:
		return 3 * 86400
	default:
		return 86400
	}
}

// Scheme names accepted by Factory.
const (
	SchemeIntentional     = "Intentional"
	SchemeNoCache         = "NoCache"
	SchemeRandomCache     = "RandomCache"
	SchemeCacheData       = "CacheData"
	SchemeBundleCache     = "BundleCache"
	SchemeEpidemic        = "Epidemic"
	SchemeIntentionalFIFO = "Intentional-FIFO"
	SchemeIntentionalLRU  = "Intentional-LRU"
	SchemeIntentionalGDS  = "Intentional-GDS"
)

// SchemeNames lists every runnable scheme, comparison order of Fig. 10.
func SchemeNames() []string {
	return []string{
		SchemeIntentional, SchemeBundleCache, SchemeCacheData,
		SchemeRandomCache, SchemeNoCache,
	}
}

// ReplacementNames lists the Fig. 12 replacement comparison.
func ReplacementNames() []string {
	return []string{
		SchemeIntentional, SchemeIntentionalFIFO,
		SchemeIntentionalLRU, SchemeIntentionalGDS,
	}
}

// factoryFor builds the scheme honoring Config's ablation knobs
// (they only apply to the Intentional scheme).
func factoryFor(c Config) (func() scheme.Scheme, error) {
	if c.Scheme == SchemeIntentional &&
		(c.DisableReplacement || c.UtilityFloor > 0 || c.QuerySprayCopies > 1) {
		var opts []core.Option
		if c.DisableReplacement {
			opts = append(opts, core.WithReplacement(false))
		}
		if c.UtilityFloor > 0 {
			opts = append(opts, core.WithUtilityFloor(c.UtilityFloor))
		}
		if c.QuerySprayCopies > 1 {
			opts = append(opts, core.WithQuerySpray(c.QuerySprayCopies))
		}
		return func() scheme.Scheme { return core.New(opts...) }, nil
	}
	return Factory(c.Scheme)
}

// Factory returns a constructor for the named scheme.
func Factory(name string) (func() scheme.Scheme, error) {
	switch name {
	case SchemeIntentional:
		return func() scheme.Scheme { return core.New() }, nil
	case SchemeEpidemic:
		return func() scheme.Scheme { return scheme.NewEpidemic() }, nil
	case SchemeNoCache:
		return func() scheme.Scheme { return scheme.NewNoCache() }, nil
	case SchemeRandomCache:
		return func() scheme.Scheme { return scheme.NewRandomCache() }, nil
	case SchemeCacheData:
		return func() scheme.Scheme { return scheme.NewCacheData() }, nil
	case SchemeBundleCache:
		return func() scheme.Scheme { return scheme.NewBundleCache() }, nil
	case SchemeIntentionalFIFO:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(buffer.FIFO{})) }, nil
	case SchemeIntentionalLRU:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(buffer.LRU{})) }, nil
	case SchemeIntentionalGDS:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(&buffer.GreedyDualSize{})) }, nil
	default:
		return nil, fmt.Errorf("engine: unknown scheme %q", name)
	}
}

// SharedKnowledge builds a knowledge provider for tr that concurrent
// engines share via Config.Knowledge: one contact-rate → paths →
// NCL-metric pipeline per trace instead of one per environment. The
// provider is exact (Epsilon 0), so shared results are bit-identical to
// isolated ones. metricT = 0 picks the trace's default horizon, the
// same rule Config normalization applies.
func SharedKnowledge(tr *trace.Trace, metricT float64) *knowledge.Provider {
	if metricT == 0 {
		metricT = DefaultMetricT(tr.Name)
	}
	return knowledge.NewProvider(knowledge.Params{
		Nodes:   tr.Nodes,
		MetricT: metricT,
	}, sim.MergeOverlaps(tr.Contacts))
}
