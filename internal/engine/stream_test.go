package engine_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dtncache/internal/engine"
	"dtncache/internal/trace"
)

// metaOnly strips the contact slice off a trace, leaving what a
// streaming run carries in Config.Trace.
func metaOnly(tr *trace.Trace) *trace.Trace {
	return &trace.Trace{Name: tr.Name, Nodes: tr.Nodes, Duration: tr.Duration, Granularity: tr.Granularity}
}

// TestStreamedRunMatchesMaterialized pins the streaming pipeline's core
// promise end to end: an engine fed a contact source (driver feed and
// knowledge feed both) produces a report bit-identical to the
// materialized engine over the same trace.
func TestStreamedRunMatchesMaterialized(t *testing.T) {
	tr := infocom(t)
	// T_L = 12h: the 7-day default generates no queries inside
	// Infocom05's 3-day horizon, and a zero-query comparison proves
	// little.
	const lifetime = 12 * 3600
	base, err := engine.New(engine.Config{Trace: tr, Scheme: engine.SchemeIntentional, AvgLifetime: lifetime})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := engine.New(engine.Config{
		Trace:       metaOnly(tr),
		Scheme:      engine.SchemeIntentional,
		AvgLifetime: lifetime,
		Stream: func() (trace.ContactSource, error) {
			return trace.NewSliceSource(tr.Contacts), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplayErr(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streamed run != materialized run:\n%+v\n%+v", got, want)
	}
	if want.QueriesIssued == 0 {
		t.Error("expected a nonzero batch workload on Infocom05")
	}
}

// TestStreamedRunFromChunkedFile replays the same comparison through
// the on-disk chunked format — the exact path dtnsim -stream takes.
func TestStreamedRunFromChunkedFile(t *testing.T) {
	tr := infocom(t)
	path := filepath.Join(t.TempDir(), "trace.dtnc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChunked(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const lifetime = 12 * 3600 // see TestStreamedRunMatchesMaterialized
	base, err := engine.New(engine.Config{Trace: tr, AvgLifetime: lifetime})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := engine.New(engine.Config{
		Trace:       metaOnly(tr),
		AvgLifetime: lifetime,
		Stream: func() (trace.ContactSource, error) {
			g, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			sr, err := trace.NewStreamReader(g)
			if err != nil {
				g.Close()
				return nil, err
			}
			return sr, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplayErr(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("chunked streamed run != materialized run:\n%+v\n%+v", got, want)
	}
}

// failTailSource errors after yielding a prefix of the contacts.
type failTailSource struct {
	contacts []trace.Contact
	i        int
	err      error
}

func (s *failTailSource) NextContact() (trace.Contact, error) {
	if s.i >= len(s.contacts) {
		return trace.Contact{}, s.err
	}
	c := s.contacts[s.i]
	s.i++
	return c, nil
}

// TestStreamedRunReportsFeedError: a source failing mid-replay must
// surface through Engine.ReplayErr so drivers can discard the run.
func TestStreamedRunReportsFeedError(t *testing.T) {
	tr := infocom(t)
	boom := errors.New("disk gone")
	eng, err := engine.New(engine.Config{
		Trace: metaOnly(tr),
		Stream: func() (trace.ContactSource, error) {
			return &failTailSource{contacts: tr.Contacts[:len(tr.Contacts)/2], err: boom}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplayErr(); !errors.Is(err, boom) {
		t.Fatalf("ReplayErr = %v, want %v", err, boom)
	}
}
