// Package knapsack implements the 0/1 knapsack machinery behind the
// paper's cache-replacement formulation (Eq. 7) and the probabilistic
// data-selection loop of Algorithm 1.
//
// Cache replacement between two caching nodes pools their cached items
// and lets the node with the higher NCL weight solve a knapsack over the
// pool (utilities as values, data sizes as weights, its buffer as
// capacity); the second node then solves the same problem over the
// remainder. Algorithm 1 wraps the solver with per-item Bernoulli
// acceptance so less-popular data keeps a non-negligible chance of
// staying cached somewhere.
//
//dtn:determinism
package knapsack

import (
	"errors"
	"sort"
)

// Item is one candidate data item.
type Item struct {
	// ID is the caller's identifier, echoed back in selections.
	ID int
	// Size is the item size in capacity units (>= 1). The paper solves
	// the DP over bytes; callers typically quantize to megabits to keep
	// the table small.
	Size int
	// Value is the caching utility (the popularity w_i of Eq. 6 for the
	// paper's scheme); must be >= 0.
	Value float64
}

// Errors returned by the solver.
var (
	ErrBadItem     = errors.New("knapsack: item needs Size >= 1 and Value >= 0")
	ErrBadCapacity = errors.New("knapsack: capacity must be >= 0")
)

// Solve returns the indices (into items) of a maximum-value subset whose
// total size is at most capacity, along with the achieved value. It runs
// the standard O(n*capacity) dynamic program; ties prefer
// lexicographically smaller index sets so results are deterministic.
func Solve(items []Item, capacity int) ([]int, float64, error) {
	if capacity < 0 {
		return nil, 0, ErrBadCapacity
	}
	for _, it := range items {
		if it.Size < 1 || it.Value < 0 {
			return nil, 0, ErrBadItem
		}
	}
	n := len(items)
	if n == 0 || capacity == 0 {
		return nil, 0, nil
	}
	// Textbook table-per-item DP with selection recovery; strict
	// improvement on the take-branch makes ties prefer not taking later
	// items, so the selected index set is deterministic.
	rows := make([][]float64, n+1)
	rows[0] = make([]float64, capacity+1)
	for i := 1; i <= n; i++ {
		rows[i] = make([]float64, capacity+1)
		it := items[i-1]
		prev := rows[i-1]
		cur := rows[i]
		for w := 0; w <= capacity; w++ {
			cur[w] = prev[w]
			if it.Size <= w {
				if cand := prev[w-it.Size] + it.Value; cand > cur[w] {
					cur[w] = cand
				}
			}
		}
	}
	var sel []int
	w := capacity
	for i := n; i >= 1; i-- {
		if rows[i][w] != rows[i-1][w] {
			sel = append(sel, i-1)
			w -= items[i-1].Size
		}
	}
	sort.Ints(sel)
	return sel, rows[n][capacity], nil
}

// Acceptor decides whether a DP-selected item is actually cached; the
// paper's Algorithm 1 uses a Bernoulli experiment with probability equal
// to the item's utility.
type Acceptor func(Item) bool

// maxRounds bounds Algorithm 1's outer loop. The paper iterates until the
// buffer is full or the pool is empty; with Bernoulli acceptance that
// terminates only in expectation, so after maxRounds*len(items)+1 empty
// rounds we stop (callers treat remaining capacity as intentionally
// unused).
const maxRounds = 4

// ProbabilisticSelect implements Algorithm 1. Each outer round it solves
// the knapsack over the remaining pool to obtain V_max — the total size
// the optimal packing would occupy — and then offers *every* remaining
// item in descending-utility order, accepting each via the Acceptor
// (Bernoulli with probability u_i in the paper) as long as it fits both
// the remaining capacity and the V_max budget. Rounds repeat so capacity
// freed by rejections can be refilled, until the pool is exhausted,
// nothing fits, or the bounded retry budget runs out.
//
// This keeps popular (high-utility) data prioritized while leaving
// less-popular data a non-negligible chance of being cached, which is the
// point of Sec. V-D.3.
//
// It returns indices into items of the accepted set.
func ProbabilisticSelect(items []Item, capacity int, accept Acceptor) ([]int, error) {
	if capacity < 0 {
		return nil, ErrBadCapacity
	}
	remaining := make([]int, len(items)) // indices into items still in pool
	for i := range remaining {
		remaining[i] = i
	}
	var chosen []int
	rounds := 0
	for len(remaining) > 0 && capacity >= minSize(items, remaining) {
		rounds++
		if rounds > maxRounds*len(items)+1 {
			break
		}
		pool := make([]Item, len(remaining))
		for i, idx := range remaining {
			pool[i] = items[idx]
			pool[i].ID = idx // track original index through the DP
		}
		sel, _, err := Solve(pool, capacity)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			break
		}
		budget := 0 // V_max: total size of the DP-optimal packing
		for _, pi := range sel {
			budget += pool[pi].Size
		}
		// Offer the whole pool in descending utility (ties: ascending
		// original index).
		order := make([]int, len(pool))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if pool[order[a]].Value != pool[order[b]].Value {
				return pool[order[a]].Value > pool[order[b]].Value
			}
			return pool[order[a]].ID < pool[order[b]].ID
		})
		accepted := make(map[int]bool)
		for _, pi := range order {
			it := pool[pi]
			if it.Size > capacity || it.Size > budget {
				continue
			}
			if accept(items[it.ID]) {
				chosen = append(chosen, it.ID)
				capacity -= it.Size
				budget -= it.Size
				accepted[it.ID] = true
			}
		}
		if len(accepted) == 0 {
			continue // all Bernoulli-rejected this round; retry
		}
		next := remaining[:0]
		for _, idx := range remaining {
			if !accepted[idx] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	sort.Ints(chosen)
	return chosen, nil
}

func minSize(items []Item, idx []int) int {
	m := int(^uint(0) >> 1)
	for _, i := range idx {
		if items[i].Size < m {
			m = items[i].Size
		}
	}
	return m
}
