package knapsack

import (
	"sort"
	"testing"

	"dtncache/internal/mathx"
)

// fuzzItems derives a reproducible random item set from the fuzz
// arguments, mirroring the seeded-stream discipline of the simulator.
func fuzzItems(seed int64, n uint8, maxSize uint8) []Item {
	rng := mathx.NewRand(seed)
	count := int(n % 24)
	span := 1 + int(maxSize)%40
	items := make([]Item, count)
	for i := range items {
		items[i] = Item{
			ID:    i,
			Size:  1 + rng.Intn(span),
			Value: float64(rng.Intn(1000)) / 8,
		}
	}
	return items
}

// greedyBound packs items by descending value density (ties: smaller
// index) and returns the achieved value — a feasible solution, so the
// DP optimum must never score below it.
func greedyBound(items []Item, capacity int) float64 {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := items[order[a]].Value / float64(items[order[a]].Size)
		db := items[order[b]].Value / float64(items[order[b]].Size)
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	var total float64
	left := capacity
	for _, i := range order {
		if items[i].Size <= left {
			left -= items[i].Size
			total += items[i].Value
		}
	}
	return total
}

// FuzzSolve checks the DP solver's invariants on random instances: the
// selection must fit the capacity, the reported value must equal the
// selection's value, and the optimum must dominate the greedy bound.
// It mirrors internal/trace/fuzz_test.go: properties, not goldens.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(10), uint16(20))
	f.Add(int64(2), uint8(0), uint8(1), uint16(0))
	f.Add(int64(3), uint8(23), uint8(39), uint16(511))
	f.Add(int64(-9), uint8(7), uint8(3), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n, maxSize uint8, cap16 uint16) {
		items := fuzzItems(seed, n, maxSize)
		capacity := int(cap16 % 512)
		sel, val, err := Solve(items, capacity)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}
		const eps = 1e-9
		used, sum := 0, 0.0
		seen := make(map[int]bool)
		for _, i := range sel {
			if i < 0 || i >= len(items) {
				t.Fatalf("selection index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d selected twice", i)
			}
			seen[i] = true
			used += items[i].Size
			sum += items[i].Value
		}
		if used > capacity {
			t.Fatalf("selection uses %d of capacity %d", used, capacity)
		}
		if diff := val - sum; diff > eps || diff < -eps {
			t.Fatalf("reported value %g != selection value %g", val, sum)
		}
		if bound := greedyBound(items, capacity); val+eps < bound {
			t.Fatalf("DP value %g below greedy bound %g", val, bound)
		}
		// The solver must be deterministic: same instance, same answer.
		sel2, val2, err2 := Solve(items, capacity)
		if err2 != nil || val2 != val || len(sel2) != len(sel) {
			t.Fatalf("re-solve diverged: %v %g vs %g", err2, val2, val)
		}
		for i := range sel {
			if sel[i] != sel2[i] {
				t.Fatalf("re-solve changed selection at %d", i)
			}
		}
	})
}

// FuzzProbabilisticSelect checks Algorithm 1's wrapper: with any
// deterministic acceptor the accepted set must fit the capacity and
// contain no duplicates.
func FuzzProbabilisticSelect(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(10), uint16(30), uint8(1))
	f.Add(int64(4), uint8(12), uint8(5), uint16(60), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n, maxSize uint8, cap16 uint16, mod uint8) {
		items := fuzzItems(seed, n, maxSize)
		capacity := int(cap16 % 512)
		m := 1 + int(mod)%4
		accept := func(it Item) bool { return it.ID%m != m-1 }
		sel, err := ProbabilisticSelect(items, capacity, accept)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}
		used := 0
		seen := make(map[int]bool)
		for _, i := range sel {
			if i < 0 || i >= len(items) {
				t.Fatalf("selection index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d selected twice", i)
			}
			seen[i] = true
			if !accept(items[i]) {
				t.Fatalf("rejected item %d was selected", i)
			}
			used += items[i].Size
		}
		if used > capacity {
			t.Fatalf("selection uses %d of capacity %d", used, capacity)
		}
	})
}
