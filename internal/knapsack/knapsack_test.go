package knapsack

import (
	"math"
	"testing"
	"testing/quick"

	"dtncache/internal/mathx"
)

func TestSolveValidation(t *testing.T) {
	if _, _, err := Solve([]Item{{Size: 0, Value: 1}}, 10); err != ErrBadItem {
		t.Errorf("zero size: got %v", err)
	}
	if _, _, err := Solve([]Item{{Size: 1, Value: -1}}, 10); err != ErrBadItem {
		t.Errorf("negative value: got %v", err)
	}
	if _, _, err := Solve(nil, -1); err != ErrBadCapacity {
		t.Errorf("negative capacity: got %v", err)
	}
}

func TestSolveTrivialCases(t *testing.T) {
	sel, v, err := Solve(nil, 10)
	if err != nil || sel != nil || v != 0 {
		t.Errorf("empty: %v %v %v", sel, v, err)
	}
	sel, v, err = Solve([]Item{{Size: 5, Value: 3}}, 0)
	if err != nil || sel != nil || v != 0 {
		t.Errorf("zero capacity: %v %v %v", sel, v, err)
	}
	sel, v, err = Solve([]Item{{Size: 5, Value: 3}}, 4)
	if err != nil || len(sel) != 0 || v != 0 {
		t.Errorf("too big: %v %v %v", sel, v, err)
	}
	sel, v, err = Solve([]Item{{Size: 5, Value: 3}}, 5)
	if err != nil || len(sel) != 1 || v != 3 {
		t.Errorf("exact fit: %v %v %v", sel, v, err)
	}
}

func TestSolveKnownInstance(t *testing.T) {
	// Classic instance: optimal is items 1 and 2 (values 100+120) at w=50.
	items := []Item{
		{ID: 0, Size: 10, Value: 60},
		{ID: 1, Size: 20, Value: 100},
		{ID: 2, Size: 30, Value: 120},
	}
	sel, v, err := Solve(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	if v != 220 || len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Errorf("sel=%v v=%v, want [1 2] 220", sel, v)
	}
}

func TestSolveDeterministicOnTies(t *testing.T) {
	items := []Item{
		{Size: 5, Value: 10},
		{Size: 5, Value: 10},
	}
	for i := 0; i < 10; i++ {
		sel, v, err := Solve(items, 5)
		if err != nil {
			t.Fatal(err)
		}
		if v != 10 || len(sel) != 1 || sel[0] != 0 {
			t.Fatalf("tie-broken selection changed: %v %v", sel, v)
		}
	}
}

// bruteForce enumerates all subsets; only usable for small n.
func bruteForce(items []Item, capacity int) float64 {
	n := len(items)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		size, val := 0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += items[i].Size
				val += items[i].Value
			}
		}
		if size <= capacity && val > best {
			best = val
		}
	}
	return best
}

func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(sizes [8]uint8, values [8]uint8, cap16 uint8) bool {
		items := make([]Item, 0, 8)
		for i := 0; i < 8; i++ {
			items = append(items, Item{
				ID:    i,
				Size:  int(sizes[i]%20) + 1,
				Value: float64(values[i] % 50),
			})
		}
		capacity := int(cap16 % 60)
		sel, v, err := Solve(items, capacity)
		if err != nil {
			return false
		}
		// Selection must be feasible and match its claimed value.
		size, val := 0, 0.0
		for _, i := range sel {
			size += items[i].Size
			val += items[i].Value
		}
		if size > capacity || math.Abs(val-v) > 1e-9 {
			return false
		}
		return math.Abs(v-bruteForce(items, capacity)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProbabilisticSelectAlwaysAcceptEqualsSolve(t *testing.T) {
	items := []Item{
		{ID: 0, Size: 10, Value: 60},
		{ID: 1, Size: 20, Value: 100},
		{ID: 2, Size: 30, Value: 120},
		{ID: 3, Size: 15, Value: 10},
	}
	got, err := ProbabilisticSelect(items, 50, func(Item) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Solve(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestProbabilisticSelectNeverAccept(t *testing.T) {
	items := []Item{{Size: 5, Value: 1}, {Size: 5, Value: 2}}
	got, err := ProbabilisticSelect(items, 10, func(Item) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestProbabilisticSelectRespectsCapacity(t *testing.T) {
	rng := mathx.NewRand(1)
	items := make([]Item, 12)
	for i := range items {
		items[i] = Item{ID: i, Size: 3 + i%5, Value: 0.2 + 0.05*float64(i)}
	}
	for trial := 0; trial < 50; trial++ {
		sel, err := ProbabilisticSelect(items, 20, func(it Item) bool {
			return rng.Bernoulli(it.Value)
		})
		if err != nil {
			t.Fatal(err)
		}
		size := 0
		seen := make(map[int]bool)
		for _, i := range sel {
			if seen[i] {
				t.Fatal("item selected twice")
			}
			seen[i] = true
			size += items[i].Size
		}
		if size > 20 {
			t.Fatalf("capacity exceeded: %d", size)
		}
	}
}

func TestProbabilisticSelectGivesUnpopularDataAChance(t *testing.T) {
	// A popular big item and an unpopular small one competing for space:
	// over many trials the unpopular one must be selected sometimes
	// (non-negligible chance, the point of Algorithm 1), but less often
	// than the popular one.
	rng := mathx.NewRand(2)
	items := []Item{
		{ID: 0, Size: 10, Value: 0.9},
		{ID: 1, Size: 10, Value: 0.2},
	}
	popCount, unpopCount := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		sel, err := ProbabilisticSelect(items, 10, func(it Item) bool {
			return rng.Bernoulli(it.Value)
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sel {
			if s == 0 {
				popCount++
			} else {
				unpopCount++
			}
		}
	}
	if unpopCount == 0 {
		t.Error("unpopular item never cached; Algorithm 1 should give it a chance")
	}
	if popCount <= unpopCount {
		t.Errorf("popular %d <= unpopular %d; prioritization broken", popCount, unpopCount)
	}
}

func TestProbabilisticSelectBadCapacity(t *testing.T) {
	if _, err := ProbabilisticSelect(nil, -1, func(Item) bool { return true }); err != ErrBadCapacity {
		t.Errorf("got %v", err)
	}
}

func BenchmarkSolve20Items600Cap(b *testing.B) {
	rng := mathx.NewRand(3)
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: i, Size: 20 + rng.Intn(280), Value: rng.Float64()}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(items, 600); err != nil {
			b.Fatal(err)
		}
	}
}
