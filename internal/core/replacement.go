package core

import (
	"math"
	"sort"

	"dtncache/internal/buffer"
	"dtncache/internal/knapsack"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// poolItem is one pooled data item during replacement, with the nodes
// currently holding it.
type poolItem struct {
	item     workload.DataItem
	utility  float64
	atA      bool
	atB      bool
	homeA    int // Home tag at A (valid if atA)
	homeB    int
	transitA bool // InTransit flag at A (valid if atA)
	transitB bool
}

// replace runs the paper's cache replacement (Sec. V-D) on a contact:
// pool the settled (non-transit) cached entries of both nodes, let the
// node nearer the NCLs pick the best subset by solving the knapsack of
// Eq. (7) — per Algorithm 1 with Bernoulli acceptance when probabilistic
// selection is on — then let the other node pick from the remainder.
// Items neither node selects are dropped; selections that require a copy
// to change nodes are moved over the contact (and survive at the old
// node if the contact ends first).
func (s *Intentional) replace(sess *sim.Session) {
	e := s.env
	now := e.Sim.Now()
	a, b := sess.A, sess.B
	// A is the node with the higher opportunistic weight toward the NCLs
	// (p_A > p_B in Fig. 8): it gets first pick, so popular data ends up
	// nearer the central nodes.
	if s.nclWeight(a) < s.nclWeight(b) {
		a, b = b, a
	}
	pool, pinnedA, pinnedB := s.buildPool(a, b, now)
	if len(pool) == 0 {
		return
	}

	quant := e.Cfg.QuantBits
	items := make([]knapsack.Item, len(pool))
	for i, p := range pool {
		items[i] = knapsack.Item{
			ID:    i,
			Size:  int(math.Ceil(p.item.SizeBits / quant)),
			Value: p.utility,
		}
	}
	capA, capB := s.replCapacity(a, pinnedA, quant), s.replCapacity(b, pinnedB, quant)
	selA := s.selectFor(items, capA)
	inA := make(map[int]bool, len(selA))
	for _, i := range selA {
		inA[i] = true
		capA -= items[i].Size
	}
	var rest []knapsack.Item
	for i := range items {
		if !inA[i] {
			rest = append(rest, items[i])
		}
	}
	selB := s.selectFor(rest, capB)
	inB := make(map[int]bool, len(selB))
	for _, ri := range selB {
		inB[rest[ri].ID] = true
		capB -= rest[ri].Size
	}
	// Bernoulli rejection (Algorithm 1) deprioritizes an item, it does
	// not discard it: data is dropped only when neither buffer has room
	// (the d6 case of Fig. 8). Greedily place leftovers, most useful
	// first, preferring the lower-priority node B.
	leftovers := make([]int, 0, len(items))
	for i := range items {
		if !inA[i] && !inB[i] {
			leftovers = append(leftovers, i)
		}
	}
	sort.Slice(leftovers, func(x, y int) bool {
		ix, iy := leftovers[x], leftovers[y]
		if items[ix].Value != items[iy].Value {
			return items[ix].Value > items[iy].Value
		}
		return ix < iy
	})
	for _, i := range leftovers {
		// Prefer keeping the copy where it already is (no transfer).
		preferA := pool[i].atA && !pool[i].atB
		switch {
		case preferA && items[i].Size <= capA:
			inA[i] = true
			capA -= items[i].Size
		case items[i].Size <= capB:
			inB[i] = true
			capB -= items[i].Size
		case items[i].Size <= capA:
			inA[i] = true
			capA -= items[i].Size
		}
	}

	s.applyPlan(sess, a, b, pool, inA, inB)
}

// nclWeight is node n's closeness to the NCLs: its best opportunistic
// weight toward any central node, read from the knowledge snapshot's
// precomputed weight matrix.
func (s *Intentional) nclWeight(n trace.NodeID) float64 {
	best := 0.0
	snap := s.env.Knowledge()
	for _, center := range s.env.NCLs() {
		if w := snap.MetricWeight(n, center); w > best {
			best = w
		}
	}
	return best
}

// buildPool collects the replacement candidates of both nodes, deduping
// items cached at both under the same NCL. Utilities follow Eq. (6)
// using the better of the two nodes' request histories, floored so
// unrequested data is not dropped outright (footnote 3). It also returns
// the buffer space at each node pinned by copies excluded from the pool
// (same item homed at different NCLs on both sides).
func (s *Intentional) buildPool(a, b trace.NodeID, now float64) (pool []poolItem, pinnedA, pinnedB float64) {
	e := s.env
	byID := make(map[workload.DataID]*poolItem)
	collect := func(n trace.NodeID, isA bool) {
		for _, en := range e.Buffers[n].Entries() {
			if en.Data.Expired(now) {
				continue
			}
			// Copies with an outstanding push/migration transfer keep
			// single-copy custody; leave them out of this exchange.
			if s.inflightPush[pushTransfer{holder: n, data: en.Data.ID, ncl: en.Home}] {
				continue
			}
			p, ok := byID[en.Data.ID]
			if !ok {
				p = &poolItem{item: en.Data, homeA: -1, homeB: -1}
				byID[en.Data.ID] = p
			}
			if isA {
				p.atA = true
				p.homeA = en.Home
				p.transitA = en.InTransit
			} else {
				p.atB = true
				p.homeB = en.Home
				p.transitB = en.InTransit
			}
		}
	}
	collect(a, true)
	collect(b, false)
	if len(byID) == 0 {
		return nil, 0, 0
	}
	// Iterate the pool in sorted data-ID order: pinnedA/pinnedB are
	// floating-point sums, and float addition in map-iteration order
	// would make the result run-dependent in the last ulps.
	ids := make([]workload.DataID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pool = make([]poolItem, 0, len(byID))
	for _, id := range ids {
		p := byID[id]
		if p.atA && p.atB && p.homeA != p.homeB {
			// Copies of the same item belonging to different NCLs are
			// intentional redundancy ("one copy of data is cached at
			// each NCL", Sec. V): leave both in place, but account for
			// the space they occupy.
			pinnedA += p.item.SizeBits
			pinnedB += p.item.SizeBits
			continue
		}
		sa := s.base.Stats(a, p.item.ID)
		sb := s.base.Stats(b, p.item.ID)
		u := math.Max(e.Popularity(&sa, p.item.Expires), e.Popularity(&sb, p.item.Expires))
		p.utility = math.Max(u, s.utilityFloor)
		pool = append(pool, *p)
	}
	// pool is already in ascending item-ID order because ids is sorted.
	return pool, pinnedA, pinnedB
}

// replCapacity is the knapsack capacity of node n in quanta: total
// buffer capacity minus space pinned by copies with outstanding
// transfers and by extraPinned (pool-excluded duplicates).
func (s *Intentional) replCapacity(n trace.NodeID, extraPinned, quant float64) int {
	buf := s.env.Buffers[n]
	pinned := extraPinned
	for _, en := range buf.Entries() {
		if s.inflightPush[pushTransfer{holder: n, data: en.Data.ID, ncl: en.Home}] {
			pinned += en.Data.SizeBits
		}
	}
	c := int(math.Floor((buf.Capacity() - pinned) / quant))
	if c < 0 {
		c = 0
	}
	return c
}

// selectFor picks items for one node: Algorithm 1 (Bernoulli acceptance
// with probability = utility) when probabilistic selection is enabled,
// the plain Eq. (7) knapsack otherwise. Returns indices into items.
func (s *Intentional) selectFor(items []knapsack.Item, capacity int) []int {
	if len(items) == 0 || capacity <= 0 {
		return nil
	}
	if s.env.Cfg.ProbabilisticSelection {
		sel, err := knapsack.ProbabilisticSelect(items, capacity, func(it knapsack.Item) bool {
			p := it.Value
			if p > 1 {
				p = 1
			}
			return s.env.Rng.Bernoulli(p)
		})
		if err != nil {
			return nil
		}
		return sel
	}
	sel, _, err := knapsack.Solve(items, capacity)
	if err != nil {
		return nil
	}
	return sel
}

// applyPlan reconciles both buffers with the selection: duplicates
// collapse to the selected node, unselected items are dropped, and items
// selected at the node not holding them migrate over the contact.
func (s *Intentional) applyPlan(sess *sim.Session, a, b trace.NodeID,
	pool []poolItem, inA, inB map[int]bool) {
	e := s.env
	now := e.Sim.Now()
	for i, p := range pool {
		switch {
		case inA[i]:
			if p.atA && p.atB {
				e.Buffers[b].Remove(p.item.ID) // collapse duplicate
				e.Obs.CacheEvict(now, int32(b), int64(p.item.ID), p.utility)
			}
			if !p.atA && p.atB {
				s.move(sess, b, a, p.item, p.homeB, p.transitB)
			}
		case inB[i]:
			if p.atA && p.atB {
				e.Buffers[a].Remove(p.item.ID)
				e.Obs.CacheEvict(now, int32(a), int64(p.item.ID), p.utility)
			}
			if !p.atB && p.atA {
				s.move(sess, a, b, p.item, p.homeA, p.transitA)
			}
		default:
			// Selected by neither: dropped from the network at these two
			// nodes (Sec. V-D.2, the d6 case of Fig. 8).
			if p.atA {
				e.Buffers[a].Remove(p.item.ID)
				s.cReplaceDrops.Inc()
				e.Obs.CacheEvict(now, int32(a), int64(p.item.ID), p.utility)
			}
			if p.atB {
				e.Buffers[b].Remove(p.item.ID)
				s.cReplaceDrops.Inc()
				e.Obs.CacheEvict(now, int32(b), int64(p.item.ID), p.utility)
			}
		}
	}
}

// move migrates one cached copy from src to dst over the live contact.
// The copy stays at src until the transfer completes, so an interrupted
// contact loses nothing; on arrival the copy keeps its NCL home tag,
// transit state and request history.
func (s *Intentional) move(sess *sim.Session, src, dst trace.NodeID,
	item workload.DataItem, home int, inTransit bool) {
	e := s.env
	tk := pushTransfer{holder: src, data: item.ID, ncl: home}
	if s.inflightPush[tk] {
		return
	}
	s.inflightPush[tk] = true
	sess.Enqueue(sim.Transfer{
		From: src, To: dst, Bits: item.SizeBits, Label: "replace",
		OnDelivered: func(at float64) {
			delete(s.inflightPush, tk)
			e.M.DataTransferred(item.SizeBits)
			if item.Expired(at) {
				e.Buffers[src].Remove(item.ID)
				return
			}
			en, err := e.Buffers[dst].Put(item, at)
			if err != nil {
				// Space changed under us (e.g. pushes landed first);
				// keep the copy where it was.
				return
			}
			// A migration toward the NCLs is also push progress: the
			// copy keeps advancing unless it has reached its center.
			en.Home = home
			en.InTransit = inTransit && dst != s.centerOf(home)
			stats := s.base.Stats(dst, item.ID)
			var merged buffer.RequestStats
			merged.Merge(stats)
			en.Requests = merged
			e.Buffers[src].Remove(item.ID)
			e.M.ReplacementMove(1)
			if e.Obs != nil {
				u := e.Popularity(&en.Requests, item.Expires)
				e.Obs.CacheEvict(at, int32(src), int64(item.ID), u)
				e.Obs.CacheInsert(at, int32(dst), int64(item.ID), u)
			}
		},
		OnDropped: func(float64) { delete(s.inflightPush, tk) },
	})
}

// centerOf returns the central node of NCL k, or -1 when k is not a
// valid NCL index.
func (s *Intentional) centerOf(k int) trace.NodeID {
	ncls := s.env.NCLs()
	if k < 0 || k >= len(ncls) {
		return -1
	}
	return ncls[k]
}
