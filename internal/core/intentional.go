// Package core implements the paper's contribution: intentional
// cooperative caching at Network Central Locations (Sec. V).
//
// Data sources push each new item toward the K central nodes; the nodes
// that end up holding a copy (the central node itself, or the relay
// where forwarding stopped because the next relay's buffer was full)
// form the NCL's caching subgraph. Requesters pull data by multicasting
// queries to the central nodes; central nodes answer directly or
// broadcast the query within their caching subgraph, where caching nodes
// answer probabilistically (Sec. V-C). Whenever two caching nodes meet,
// utility-based cache replacement (Sec. V-D, Eq. 7 + Algorithm 1)
// migrates popular data toward the central nodes.
//
//dtn:determinism
package core

import (
	"errors"

	"dtncache/internal/buffer"
	"dtncache/internal/obs"
	"dtncache/internal/provenance"
	"dtncache/internal/scheme"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Option customizes the intentional caching scheme.
type Option func(*Intentional)

// WithUtilityFloor sets the minimum utility assigned to data that has
// not been requested yet (footnote 3 of the paper notes fresh data has
// low utility; a floor keeps it from being dropped outright during
// replacement). Default 0.1.
func WithUtilityFloor(f float64) Option {
	return func(s *Intentional) { s.utilityFloor = f }
}

// WithReplacement toggles cache replacement entirely (ablation).
// Default on.
func WithReplacement(on bool) Option {
	return func(s *Intentional) { s.replacementOn = on }
}

// WithQuerySpray enables binary spray-and-wait dissemination for the
// query multicast with the given copy budget L per NCL target (the
// paper leaves the multicast scheme open, Sec. V-B; the default is
// single-copy gradient forwarding). L <= 1 keeps the default.
func WithQuerySpray(l int) Option {
	return func(s *Intentional) { s.sprayCopies = l }
}

// WithEvictionPolicy swaps the paper's knapsack replacement for a
// classic eviction policy (FIFO, LRU, Greedy-Dual-Size): arriving pushes
// evict per the policy instead of stopping at full buffers, and no
// contact-time exchange happens. This is the "traditional replacement
// strategies" configuration of Fig. 12.
func WithEvictionPolicy(p buffer.Policy) Option {
	return func(s *Intentional) {
		s.evictPolicy = p
		s.replacementOn = false
	}
}

// pushKey identifies one pending push copy at the data source.
type pushKey struct {
	Data workload.DataID
	NCL  int
}

// pendingPush is one pending push copy in a node's slice-backed store,
// kept sorted by (Data, NCL) so contact-time iteration needs no
// per-contact key sort and membership checks are binary searches.
type pendingPush struct {
	key  pushKey
	item workload.DataItem
	// tries counts push transfer attempts for this copy; with a
	// positive Config.PushRetryBudget the copy is abandoned once the
	// budget is exhausted, so a permanently unreachable NCL cannot
	// cause unbounded re-offers.
	tries int
}

// searchPending returns the insertion index of key k in ps.
func searchPending(ps []pendingPush, k pushKey) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].key.Data < k.Data || (ps[mid].key.Data == k.Data && ps[mid].key.NCL < k.NCL) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Intentional is the paper's NCL-based cooperative caching scheme.
type Intentional struct {
	base *scheme.Base
	env  *scheme.Env

	// pending[source] holds push copies that have not yet left the data
	// source (the source retains its own data, so these consume no
	// buffer there and simply retry at every contact), sorted by
	// (Data, NCL).
	pending [][]pendingPush

	utilityFloor  float64
	replacementOn bool
	evictPolicy   buffer.Policy
	sprayCopies   int

	// inflightPush guards single-copy custody of push copies across
	// overlapping contacts (key: holder node + data + NCL index).
	inflightPush map[pushTransfer]bool

	// reachedNCL and respondedAt record, per query, when its first copy
	// reached a central node and when the first responder created a
	// reply — the instrumentation behind the Sec. V-E delay
	// decomposition.
	reachedNCL  map[workload.QueryID]float64
	respondedAt map[workload.QueryID]float64

	stats PushStats

	// obs counters, nil when observability is off.
	cPushes       *obs.Counter
	cReplaceDrops *obs.Counter
}

// pushTransfer identifies one outstanding push transfer.
type pushTransfer struct {
	holder trace.NodeID
	data   workload.DataID
	ncl    int
}

// PushStats are diagnostic counters for the push path (Sec. V-A).
type PushStats struct {
	// SourceDepartures counts push copies leaving their data source.
	SourceDepartures int
	// RelayHops counts relay-to-relay push transfers.
	RelayHops int
	// CachedAtCenter counts copies that reached their central node.
	CachedAtCenter int
	// StoppedAtRelay counts copies whose forwarding stopped at a relay
	// because the next relay's buffer was full.
	StoppedAtRelay int
	// ExpiredPending counts pushes that expired before leaving the
	// source.
	ExpiredPending int
	// AbandonedPushes counts pending copies dropped after exhausting
	// the push retry budget.
	AbandonedPushes int
	// ReReplicated counts crash-lost cached copies re-queued for push
	// from their sources (NCL failover recovery).
	ReReplicated int
}

// Stats returns the push-path diagnostic counters.
func (s *Intentional) Stats() PushStats { return s.stats }

// New creates the scheme.
func New(opts ...Option) *Intentional {
	s := &Intentional{utilityFloor: 0.1, replacementOn: true}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements scheme.Scheme.
func (s *Intentional) Name() string {
	if s.evictPolicy != nil {
		return "Intentional-" + s.evictPolicy.Name()
	}
	return "Intentional"
}

// Init implements scheme.Scheme.
func (s *Intentional) Init(e *scheme.Env) error {
	if e.Cfg.NCLCount < 1 {
		return errors.New("core: intentional caching needs NCLCount >= 1")
	}
	s.env = e
	s.base = scheme.NewBase(e)
	s.pending = make([][]pendingPush, e.N)
	s.inflightPush = make(map[pushTransfer]bool)
	s.reachedNCL = make(map[workload.QueryID]float64)
	s.respondedAt = make(map[workload.QueryID]float64)
	s.cPushes = e.Obs.Counter("core", "pushes")
	s.cReplaceDrops = e.Obs.Counter("core", "replacement_drops")
	return nil
}

// markReached records the first arrival of a query at a central node.
func (s *Intentional) markReached(id workload.QueryID) {
	if _, ok := s.reachedNCL[id]; !ok {
		s.reachedNCL[id] = s.env.Sim.Now()
	}
}

// markResponded records the first reply creation for a query.
func (s *Intentional) markResponded(id workload.QueryID) {
	if _, ok := s.respondedAt[id]; !ok {
		s.respondedAt[id] = s.env.Sim.Now()
	}
}

// replyDelivered feeds the Sec. V-E decomposition when the first on-time
// copy reaches the requester: part (i) query to NCL, part (ii) NCL
// broadcast until a caching node responds, part (iii) data return.
func (s *Intentional) replyDelivered(rc *scheme.ReplyCarry, first bool) {
	if !first {
		return
	}
	at := s.env.Sim.Now()
	responded, ok := s.respondedAt[rc.Q.ID]
	if !ok {
		return
	}
	reached, ok := s.reachedNCL[rc.Q.ID]
	if !ok || reached > responded {
		// An en-route caching node answered before the query reached any
		// central node: no broadcast part.
		reached = responded
	}
	s.env.M.DelayPhases(reached-rc.Q.Issued, responded-reached, at-responded)
}

// OnData implements scheme.Scheme: the source prepares one push copy per
// NCL (Sec. V-A).
func (s *Intentional) OnData(item workload.DataItem) {
	ncls := s.env.NCLs()
	for k := range ncls {
		s.pendingSet(item.Source, pushKey{Data: item.ID, NCL: k}, item)
	}
}

// OnQuery implements scheme.Scheme: the requester multicasts the query
// to every central node (Sec. V-B).
func (s *Intentional) OnQuery(q workload.Query) {
	ncls := s.env.NCLs()
	for k := range ncls {
		// Target the node currently acting as this NCL's central: with
		// failover enabled a down center's stand-in, and on a retry the
		// re-issued copy aims at whatever is reachable now.
		center := s.env.EffectiveNCL(k)
		qc := &scheme.QueryCarry{Q: q, Target: center, NCL: k, Copies: s.sprayCopies}
		if q.Requester == center {
			// The requester is itself a central node: process arrival
			// immediately.
			s.queryAtCenter(q.Requester, qc)
			continue
		}
		s.base.CarryQuery(q.Requester, qc)
	}
}

// OnContactStart implements scheme.Scheme. Transfer priority within the
// contact: queries (small control messages) first, then replies, then
// data pushes, then replacement migrations.
func (s *Intentional) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		from := from
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *scheme.QueryCarry) {
			if at == qc.Target {
				s.queryAtCenter(at, qc)
				// A fresh reply may leave on this same contact.
				s.base.ForwardReplies(sess, at, s.replyDelivered, nil)
				return
			}
			// An en-route relay that happens to be a caching node for the
			// data answers probabilistically (it belongs to some NCL's
			// caching subgraph); the query still continues to the center.
			if s.env.Buffers[at].Get(qc.Q.Data) != nil && s.base.Respond(at, qc, false) {
				s.markResponded(qc.Q.ID)
				s.touch(at, qc.Q.Data)
				s.base.ForwardReplies(sess, at, s.replyDelivered, nil)
			}
		})
		s.broadcastQueries(sess, from)
		s.base.ForwardReplies(sess, from, s.replyDelivered, nil)
		s.pushFromSource(sess, from)
		s.pushFromRelay(sess, from)
	}
	if s.replacementOn {
		s.replace(sess)
	}
}

// queryAtCenter handles a query copy reaching its central node: answer
// directly when the data is held locally, otherwise switch the copy to
// broadcast mode so it floods the NCL's caching subgraph (Sec. V-B).
func (s *Intentional) queryAtCenter(center trace.NodeID, qc *scheme.QueryCarry) {
	s.base.Observe(center, qc.Q.Data, s.env.Sim.Now())
	s.markReached(qc.Q.ID)
	if s.env.HasData(center, qc.Q.Data) {
		if s.base.Respond(center, qc, true) {
			s.markResponded(qc.Q.ID)
			s.touch(center, qc.Q.Data)
		}
		return
	}
	qc.Broadcast = true
	s.env.Prov.NCLMiss(qc.Q.ID, qc.Target, center, s.env.Sim.Now(), qc.NCL)
	s.base.CarryQuery(center, qc)
}

// broadcastQueries spreads broadcast-mode query copies from `from` to
// the session peer when the peer belongs to the same NCL's caching
// subgraph. Unlike gradient forwarding, broadcast copies replicate.
func (s *Intentional) broadcastQueries(sess *sim.Session, from trace.NodeID) {
	to := sess.Peer(from)
	now := s.env.Sim.Now()
	s.base.ForEachQuery(from, func(qc *scheme.QueryCarry) {
		if !qc.Broadcast || qc.Q.Deadline <= now {
			return
		}
		if !s.isCachingNode(to, qc.NCL) {
			return
		}
		copyQC := &scheme.QueryCarry{Q: qc.Q, Target: qc.Target, NCL: qc.NCL, Broadcast: true}
		sess.Enqueue(sim.Transfer{
			From: from, To: to, Bits: s.env.Cfg.QueryBits, Label: "bcast-query",
			OnDelivered: func(at float64) {
				s.env.M.ControlTransferred(s.env.Cfg.QueryBits)
				if copyQC.Q.Deadline <= at {
					return
				}
				s.base.CarryQuery(to, copyQC)
				s.env.Prov.QueryHop(copyQC.Q.ID, copyQC.Target, from, to,
					now, at, s.env.XferSec(s.env.Cfg.QueryBits), provenance.OpQueryBcast, false)
				s.base.Observe(to, copyQC.Q.Data, at)
				// Caching nodes answer probabilistically (Sec. V-C).
				if s.base.Respond(to, copyQC, false) {
					s.markResponded(copyQC.Q.ID)
					s.touch(to, copyQC.Q.Data)
					s.base.ForwardReplies(sess, to, s.replyDelivered, nil)
				}
			},
		})
	})
}

// isCachingNode reports whether n belongs to NCL k's caching subgraph:
// it is the central node or holds a copy (cached or in transit) homed at
// k.
func (s *Intentional) isCachingNode(n trace.NodeID, k int) bool {
	ncls := s.env.NCLs()
	if k >= 0 && k < len(ncls) && (ncls[k] == n || s.env.EffectiveNCL(k) == n) {
		return true
	}
	for _, en := range s.env.Buffers[n].Entries() {
		if en.Home == k {
			return true
		}
	}
	return false
}

// pushFromSource advances pending push copies waiting at data sources.
func (s *Intentional) pushFromSource(sess *sim.Session, from trace.NodeID) {
	to := sess.Peer(from)
	now := s.env.Sim.Now()
	s.forEachPending(from, func(key pushKey, item workload.DataItem) {
		if item.Expired(now) {
			s.pendingDelete(from, key)
			s.stats.ExpiredPending++
			return
		}
		center := s.env.EffectiveNCL(key.NCL)
		if from == center {
			// The source is the central node; cache locally if possible.
			if s.tryCache(from, item, key.NCL, false) {
				s.pendingDelete(from, key)
			}
			return
		}
		if !s.betterToward(to, from, center) {
			return
		}
		if s.env.Buffers[to].Has(item.ID) || s.hasPending(to, item.ID) {
			// The peer already carries a copy of this item (for another
			// NCL, or as its own pending push): each of the K copies must
			// settle on a distinct node, so try a different relay later.
			return
		}
		if s.evictPolicy == nil && s.env.Buffers[to].Free() < item.SizeBits {
			// Next relay's buffer is full: the source keeps the copy
			// pending (it retains its own data regardless) and retries
			// later. (With a traditional eviction policy configured, the
			// relay admits the data by evicting instead.)
			return
		}
		tk := pushTransfer{holder: from, data: key.Data, ncl: key.NCL}
		if s.inflightPush[tk] {
			return
		}
		if budget := s.env.Cfg.PushRetryBudget; budget > 0 && !s.pendingTryConsume(from, key, budget) {
			s.pendingDelete(from, key)
			s.stats.AbandonedPushes++
			return
		}
		s.inflightPush[tk] = true
		s.cPushes.Inc()
		s.env.Obs.Push(now, int32(from), int32(to), int64(key.Data), int64(key.NCL))
		sess.Enqueue(sim.Transfer{
			From: from, To: to, Bits: item.SizeBits, Label: "push",
			OnDelivered: func(at float64) {
				delete(s.inflightPush, tk)
				s.env.M.DataTransferred(item.SizeBits)
				if item.Expired(at) {
					return
				}
				if !s.pendingHas(from, key) {
					return // another path already placed this copy
				}
				if s.tryCache(to, item, key.NCL, to != center) {
					s.pendingDelete(from, key)
					s.stats.SourceDepartures++
					if to == center {
						s.stats.CachedAtCenter++
					}
				}
			},
			OnDropped: func(float64) { delete(s.inflightPush, tk) },
		})
	})
}

// pushFromRelay advances in-transit copies held by relays toward their
// central node; when the next relay has no room, forwarding stops and
// the copy is cached at the current relay (Sec. V-A).
func (s *Intentional) pushFromRelay(sess *sim.Session, from trace.NodeID) {
	to := sess.Peer(from)
	now := s.env.Sim.Now()
	ncls := s.env.NCLs()
	for _, en := range s.env.Buffers[from].Entries() {
		en := en
		if !en.InTransit || en.Data.Expired(now) {
			continue
		}
		if en.Home < 0 || en.Home >= len(ncls) {
			en.InTransit = false
			continue
		}
		center := s.env.EffectiveNCL(en.Home)
		if from == center {
			en.InTransit = false
			continue
		}
		if !s.betterToward(to, from, center) {
			continue
		}
		if s.env.Buffers[to].Has(en.Data.ID) || s.hasPending(to, en.Data.ID) {
			// Peer already holds this item for another NCL; keep looking
			// for a distinct relay to preserve K separate copies.
			continue
		}
		if s.evictPolicy == nil && s.env.Buffers[to].Free() < en.Data.SizeBits {
			// Next selected relay is full: cache here.
			en.InTransit = false
			s.stats.StoppedAtRelay++
			continue
		}
		item := en.Data
		home := en.Home
		tk := pushTransfer{holder: from, data: item.ID, ncl: home}
		if s.inflightPush[tk] {
			continue
		}
		s.inflightPush[tk] = true
		s.cPushes.Inc()
		s.env.Obs.Push(now, int32(from), int32(to), int64(item.ID), int64(home))
		sess.Enqueue(sim.Transfer{
			From: from, To: to, Bits: item.SizeBits, Label: "push",
			OnDelivered: func(at float64) {
				delete(s.inflightPush, tk)
				s.env.M.DataTransferred(item.SizeBits)
				if item.Expired(at) {
					s.env.Buffers[from].Remove(item.ID)
					return
				}
				cur := s.env.Buffers[from].Get(item.ID)
				if cur == nil || !cur.InTransit {
					return // moved or settled meanwhile (e.g. replacement)
				}
				if s.tryCache(to, item, home, to != center) {
					// Relay deletes its own copy after forwarding.
					s.env.Buffers[from].Remove(item.ID)
					s.stats.RelayHops++
					if to == center {
						s.stats.CachedAtCenter++
					}
				} else {
					// Receiver could not cache after all: stop here.
					cur.InTransit = false
				}
			},
			OnDropped: func(float64) { delete(s.inflightPush, tk) },
		})
	}
}

// betterToward reports whether `to` has a strictly higher opportunistic
// path weight toward center than `from` (the relay selection metric of
// Sec. V-A), read from the knowledge snapshot's precomputed weight
// matrix, or is the center itself.
func (s *Intentional) betterToward(to, from, center trace.NodeID) bool {
	if to == center {
		return true
	}
	snap := s.env.Knowledge()
	return snap.MetricWeight(to, center) > snap.MetricWeight(from, center)
}

// tryCache inserts a pushed copy at node n homed at NCL k. With the
// paper's replacement, it fails when the buffer lacks space (no eviction
// on the push path; contact-time replacement is the only mechanism that
// removes live data). With a classic eviction policy configured
// (Fig. 12 comparison), the policy evicts to make room instead.
func (s *Intentional) tryCache(n trace.NodeID, item workload.DataItem, k int, inTransit bool) bool {
	buf := s.env.Buffers[n]
	now := s.env.Sim.Now()
	var en *buffer.Entry
	if s.evictPolicy == nil && buf.Has(item.ID) {
		// Raced with another copy landing here; keep single custody and
		// let the sender retry elsewhere.
		return false
	}
	if s.evictPolicy != nil {
		evicted, ok := buffer.PutEvict(buf, s.evictPolicy, item, now)
		s.env.M.ReplacementMove(len(evicted))
		if !ok {
			return false
		}
		en = buf.Get(item.ID)
	} else {
		var err error
		en, err = buf.Put(item, now)
		if err != nil {
			return false
		}
	}
	en.Home = k
	en.InTransit = inTransit
	en.Requests = s.base.Stats(n, item.ID)
	if s.env.Obs != nil {
		s.env.Obs.CacheInsert(now, int32(n), int64(item.ID),
			s.env.Popularity(&en.Requests, item.Expires))
	}
	return true
}

// touch lets the configured eviction policy observe a cache hit when a
// cached entry serves a query (LRU recency, GDS cost refresh).
func (s *Intentional) touch(n trace.NodeID, id workload.DataID) {
	if s.evictPolicy == nil {
		return
	}
	if en := s.env.Buffers[n].Get(id); en != nil {
		s.evictPolicy.OnHit(s.env.Buffers[n], en, s.env.Sim.Now())
	}
}

// pendingSet inserts (or refreshes) a pending push copy at node n.
// Refreshing resets the retry budget: the copy is a fresh placement
// attempt.
func (s *Intentional) pendingSet(n trace.NodeID, k pushKey, item workload.DataItem) {
	ps := s.pending[n]
	i := searchPending(ps, k)
	if i < len(ps) && ps[i].key == k {
		ps[i].item = item
		ps[i].tries = 0
		return
	}
	ps = append(ps, pendingPush{})
	copy(ps[i+1:], ps[i:])
	ps[i] = pendingPush{key: k, item: item}
	s.pending[n] = ps
}

// pendingTryConsume charges one push attempt against the copy's retry
// budget, reporting whether the attempt is still within budget.
func (s *Intentional) pendingTryConsume(n trace.NodeID, k pushKey, budget int) bool {
	ps := s.pending[n]
	i := searchPending(ps, k)
	if i >= len(ps) || ps[i].key != k {
		return true
	}
	ps[i].tries++
	return ps[i].tries <= budget
}

// pendingHas reports whether node n still holds this exact pending copy.
func (s *Intentional) pendingHas(n trace.NodeID, k pushKey) bool {
	ps := s.pending[n]
	i := searchPending(ps, k)
	return i < len(ps) && ps[i].key == k
}

// pendingDelete removes a pending push copy from node n.
func (s *Intentional) pendingDelete(n trace.NodeID, k pushKey) {
	ps := s.pending[n]
	i := searchPending(ps, k)
	if i >= len(ps) || ps[i].key != k {
		return
	}
	copy(ps[i:], ps[i+1:])
	s.pending[n] = ps[:len(ps)-1]
}

// forEachPending visits node n's pending copies in (Data, NCL) order
// without allocating. fn may delete the copy it is handed (and no
// other); additions happen only from OnData, never during a contact.
func (s *Intentional) forEachPending(n trace.NodeID, fn func(k pushKey, item workload.DataItem)) {
	for i := 0; i < len(s.pending[n]); {
		p := s.pending[n][i]
		fn(p.key, p.item)
		if i < len(s.pending[n]) && s.pending[n][i].key == p.key {
			i++
		}
	}
}

// hasPending reports whether node n has a pending source push for the
// item (only data sources do).
func (s *Intentional) hasPending(n trace.NodeID, id workload.DataID) bool {
	ps := s.pending[n]
	i := searchPending(ps, pushKey{Data: id, NCL: 0})
	// NCL indexes are non-negative, so (id, 0) sorts at or before any
	// pending copy of the item.
	return i < len(ps) && ps[i].key.Data == id
}

// sortedPending returns node n's pending push keys in deterministic
// (Data, NCL) order — the store's native order.
func (s *Intentional) sortedPending(n trace.NodeID) []pushKey {
	keys := make([]pushKey, 0, len(s.pending[n]))
	for _, p := range s.pending[n] {
		keys = append(keys, p.key)
	}
	return keys
}

// OnContactEnd implements scheme.Scheme.
func (s *Intentional) OnContactEnd(*sim.Session) {}

// OnSweep implements scheme.Scheme.
func (s *Intentional) OnSweep(now float64) {
	s.base.SweepExpired(now)
	for n := range s.pending {
		kept := s.pending[n][:0]
		for _, p := range s.pending[n] {
			if !p.item.Expired(now) {
				kept = append(kept, p)
			}
		}
		s.pending[n] = kept
	}
	for id := range s.reachedNCL {
		if s.env.W.Queries[id].Deadline <= now {
			delete(s.reachedNCL, id)
		}
	}
	for id := range s.respondedAt {
		if s.env.W.Queries[id].Deadline <= now {
			delete(s.respondedAt, id)
		}
	}
}

// OnNodeDown implements scheme.FaultAware: the crashed node's volatile
// protocol state (carried queries/replies, request history) is dropped;
// under NCLFailover, cached copies it lost are re-queued as pending
// pushes at their sources — the re-replication half of the failover
// rule. Sources qualify only while they still hold the item as own
// data (stable storage survives crashes).
func (s *Intentional) OnNodeDown(n trace.NodeID, at float64, wiped []*buffer.Entry) {
	s.base.DropNodeState(n)
	if !s.env.Cfg.NCLFailover {
		return
	}
	for _, en := range wiped {
		if en.Home < 0 || en.Data.Expired(at) {
			continue
		}
		src := en.Data.Source
		if src == n {
			continue
		}
		if _, ok := s.env.OwnData(src, en.Data.ID); !ok {
			continue
		}
		s.pendingSet(src, pushKey{Data: en.Data.ID, NCL: en.Home}, en.Data)
		s.stats.ReReplicated++
		s.env.Obs.Replicate(at, int32(src), int64(en.Data.ID), int64(en.Home))
	}
}

// OnNodeUp implements scheme.FaultAware. Recovery needs no immediate
// action: the node re-enters the protocol at its next contact, and
// re-replication was already queued at crash time.
func (s *Intentional) OnNodeUp(trace.NodeID, float64) {}

var _ scheme.Scheme = (*Intentional)(nil)
var _ scheme.FaultAware = (*Intentional)(nil)
