package core

import (
	"testing"

	"dtncache/internal/scheme"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// pairTrace builds a 2-node trace with long periodic contacts, plus a
// third node so NCL selection has a hub to pick: 0-1 meet often, 2 is
// the hub meeting both.
func pairTrace(duration float64) *trace.Trace {
	tr := &trace.Trace{Name: "pair", Nodes: 3, Duration: duration, Granularity: 60}
	for t := 500.0; t+2400 < duration; t += 2000 {
		tr.Contacts = append(tr.Contacts,
			trace.Contact{A: 0, B: 2, Start: t, End: t + 600},
			trace.Contact{A: 1, B: 2, Start: t + 700, End: t + 1300},
		)
	}
	// 0-1 meet rarely: node 2 is the clear hub.
	for t := 1500.0; t+600 < duration; t += 10000 {
		tr.Contacts = append(tr.Contacts,
			trace.Contact{A: 0, B: 1, Start: t + 63, End: t + 500})
	}
	tr.SortContacts()
	return tr
}

// replacementFixture builds an env with an Intentional scheme on the
// pair trace and a two-item workload, then runs only the warm-up so
// tests can stage buffer contents by hand.
func replacementFixture(t *testing.T, opts ...Option) (*scheme.Env, *Intentional, *workload.Workload) {
	t.Helper()
	tr := pairTrace(60000)
	w := &workload.Workload{
		Config: workload.Config{
			Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 20000,
			AvgSizeBits: 10e6, ZipfExponent: 1,
			Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
		},
		Data: []workload.DataItem{
			{ID: 0, Source: 0, SizeBits: 10e6, Created: 30100, Expires: 59000},
			{ID: 1, Source: 1, SizeBits: 10e6, Created: 30100, Expires: 59000},
		},
	}
	s := New(opts...)
	cfg := scheme.DefaultConfig(tr.Duration)
	cfg.MetricT = 3600
	cfg.NCLCount = 1
	cfg.QuantBits = 1e6
	env, err := scheme.NewEnv(tr, w, cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	env.Sim.RunUntil(30000) // past warm-up; NCLs selected
	return env, s, w
}

func TestNCLWeightOrdersNodes(t *testing.T) {
	env, s, _ := replacementFixture(t)
	if ncls := env.NCLs(); len(ncls) != 1 || ncls[0] != 2 {
		t.Fatalf("NCLs = %v, want hub [2]", env.NCLs())
	}
	// The hub itself has weight 1 to the NCL; others strictly less.
	if s.nclWeight(2) != 1 {
		t.Errorf("hub weight = %v", s.nclWeight(2))
	}
	if s.nclWeight(0) >= 1 || s.nclWeight(0) <= 0 {
		t.Errorf("leaf weight = %v", s.nclWeight(0))
	}
}

func TestBuildPoolExcludesTransitAndDifferentHomes(t *testing.T) {
	env, s, w := replacementFixture(t)
	now := env.Sim.Now()
	// Node 0: item 0 settled (home 0); node 1: item 1 in transit.
	en0, err := env.Buffers[0].Put(w.Data[0], now)
	if err != nil {
		t.Fatal(err)
	}
	en0.Home = 0
	en1, err := env.Buffers[1].Put(w.Data[1], now)
	if err != nil {
		t.Fatal(err)
	}
	en1.Home = 0
	en1.InTransit = true

	pool, pinnedA, pinnedB := s.buildPool(0, 1, now)
	// In-transit copies ARE pool members now (unless mid-transfer).
	if len(pool) != 2 {
		t.Fatalf("pool = %d items, want 2", len(pool))
	}
	if pinnedA != 0 || pinnedB != 0 {
		t.Errorf("pinned = %v/%v", pinnedA, pinnedB)
	}

	// Same item at both nodes with different homes is excluded and
	// pinned on both sides.
	en0b, err := env.Buffers[1].Put(w.Data[0], now)
	if err != nil {
		t.Fatal(err)
	}
	en0b.Home = 1 // different NCL than node 0's copy
	pool, pinnedA, pinnedB = s.buildPool(0, 1, now)
	for _, p := range pool {
		if p.item.ID == 0 {
			t.Error("different-home duplicate should be excluded from the pool")
		}
	}
	if pinnedA != w.Data[0].SizeBits || pinnedB != w.Data[0].SizeBits {
		t.Errorf("pinned = %v/%v, want item size both sides", pinnedA, pinnedB)
	}
}

func TestReplacementCollapsesSameHomeDuplicates(t *testing.T) {
	env, s, w := replacementFixture(t)
	now := env.Sim.Now()
	for _, n := range []trace.NodeID{0, 1} {
		en, err := env.Buffers[n].Put(w.Data[0], now)
		if err != nil {
			t.Fatal(err)
		}
		en.Home = 0
	}
	_ = s
	// Run across the next 0-1 contact; replacement must collapse the
	// same-home duplicate to a single copy.
	env.Sim.RunUntil(34000)
	copies := 0
	for _, n := range []trace.NodeID{0, 1, 2} {
		if env.Buffers[n].Has(0) {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("copies after replacement = %d, want 1", copies)
	}
}

func TestSelectForDeterministicWithoutBernoulli(t *testing.T) {
	env, s, w := replacementFixture(t)
	env.Cfg.ProbabilisticSelection = false
	now := env.Sim.Now()
	en, err := env.Buffers[0].Put(w.Data[0], now)
	if err != nil {
		t.Fatal(err)
	}
	en.Home = 0
	pool, _, _ := s.buildPool(0, 1, now)
	if len(pool) != 1 {
		t.Fatalf("pool = %d", len(pool))
	}
}
