package core

import (
	"testing"

	"dtncache/internal/buffer"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// lineTrace builds a 3-node line 0-1-2 with periodic contacts; node 1 is
// the hub and therefore the NCL for K=1.
func lineTrace(period, duration float64) *trace.Trace {
	tr := &trace.Trace{Name: "line", Nodes: 3, Duration: duration, Granularity: 60}
	for t := period; t+400 < duration; t += period {
		tr.Contacts = append(tr.Contacts,
			trace.Contact{A: 0, B: 1, Start: t, End: t + 300},
			trace.Contact{A: 1, B: 2, Start: t + period/2, End: t + period/2 + 300},
		)
	}
	tr.SortContacts()
	return tr
}

func manualWorkload(tr *trace.Trace) *workload.Workload {
	return &workload.Workload{
		Config: workload.Config{
			Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 18000,
			AvgSizeBits: 10e6, ZipfExponent: 1,
			Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
		},
		Data: []workload.DataItem{{
			ID: 0, Source: 0, SizeBits: 10e6, Created: 21000, Expires: 39000,
		}},
		Queries: []workload.Query{{
			ID: 0, Requester: 2, Data: 0, Issued: 25000, Deadline: 38000,
		}},
	}
}

func lineConfig(tr *trace.Trace) scheme.Config {
	cfg := scheme.DefaultConfig(tr.Duration)
	cfg.MetricT = 3600
	cfg.NCLCount = 1
	return cfg
}

func TestInitRequiresNCLs(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	cfg := lineConfig(tr)
	cfg.NCLCount = 0
	if _, err := scheme.NewEnv(tr, w, cfg, New()); err == nil {
		t.Error("NCLCount=0 accepted")
	}
}

func TestIntentionalEndToEnd(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	s := New()
	env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.QueriesSatisfied != 1 {
		t.Fatalf("query not satisfied: %+v", rep)
	}
	st := s.Stats()
	if st.SourceDepartures == 0 {
		t.Error("push never left the source")
	}
	if st.CachedAtCenter == 0 {
		t.Error("push never reached the central node")
	}
}

func TestPushLandsAtCenter(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	s := New()
	env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	// Stop mid-simulation, after the data had a chance to be pushed.
	env.Sim.RunUntil(24000)
	ncls := env.NCLs()
	if len(ncls) != 1 || ncls[0] != 1 {
		t.Fatalf("NCLs = %v, want the hub [1]", ncls)
	}
	en := env.Buffers[1].Get(0)
	if en == nil {
		t.Fatal("central node does not hold the pushed copy")
	}
	if en.InTransit {
		t.Error("copy at the center must not be in transit")
	}
	if en.Home != 0 {
		t.Errorf("home = %d, want 0", en.Home)
	}
}

func TestIntentionalName(t *testing.T) {
	if New().Name() != "Intentional" {
		t.Error("default name")
	}
	if New(WithEvictionPolicy(buffer.LRU{})).Name() != "Intentional-LRU" {
		t.Error("policy name")
	}
}

func TestIntentionalDeterministic(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 50e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() interface{} {
		cfg := scheme.DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 3
		env, err := scheme.NewEnv(tr, w, cfg, New())
		if err != nil {
			t.Fatal(err)
		}
		return env.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestIntentionalOnInfocom05BeatsNoCache(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 100e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runScheme := func(s scheme.Scheme) float64 {
		cfg := scheme.DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 5
		env, err := scheme.NewEnv(tr, w, cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		return env.Run().SuccessRatio
	}
	ours := runScheme(New())
	nocache := runScheme(scheme.NewNoCache())
	if ours <= nocache {
		t.Errorf("intentional %.3f does not beat NoCache %.3f", ours, nocache)
	}
}

func TestEvictionPolicyVariantRuns(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	for _, p := range []buffer.Policy{buffer.FIFO{}, buffer.LRU{}, &buffer.GreedyDualSize{}} {
		s := New(WithEvictionPolicy(p))
		env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
		if err != nil {
			t.Fatal(err)
		}
		rep := env.Run()
		if rep.QueriesSatisfied != 1 {
			t.Errorf("%s: query not satisfied", s.Name())
		}
	}
}

func TestReplacementDisabled(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	s := New(WithReplacement(false))
	env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.ReplacementMoves != 0 {
		t.Errorf("replacement ran despite being disabled: %d moves", rep.ReplacementMoves)
	}
	if rep.QueriesSatisfied != 1 {
		t.Error("query not satisfied without replacement")
	}
}

func TestUtilityFloorOption(t *testing.T) {
	s := New(WithUtilityFloor(0.5))
	if s.utilityFloor != 0.5 {
		t.Error("utility floor not applied")
	}
}

func TestPopularDataMigratesTowardCenter(t *testing.T) {
	// Two caching nodes contact each other repeatedly; the one nearer
	// the NCL (node 1, the hub itself) should end up holding the
	// popular data. We verify indirectly: with replacement on, cached
	// copies concentrate no further from the center than without it.
	tr, err := trace.GeneratePreset(trace.Infocom05, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 100e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(replacement bool) float64 {
		cfg := scheme.DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 5
		env, err := scheme.NewEnv(tr, w, cfg, New(WithReplacement(replacement)))
		if err != nil {
			t.Fatal(err)
		}
		return env.Run().SuccessRatio
	}
	with := run(true)
	without := run(false)
	// Replacement should not hurt, and usually helps.
	if with < without-0.05 {
		t.Errorf("replacement hurt success: with %.3f, without %.3f", with, without)
	}
}

func TestQuerySprayOption(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	s := New(WithQuerySpray(4))
	env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.QueriesSatisfied != 1 {
		t.Fatalf("spray variant failed the line scenario: %+v", rep)
	}
}

func TestQuerySprayOnPreset(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 50e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(spray int) float64 {
		cfg := scheme.DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 3
		var s *Intentional
		if spray > 1 {
			s = New(WithQuerySpray(spray))
		} else {
			s = New()
		}
		env, err := scheme.NewEnv(tr, w, cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		return env.Run().SuccessRatio
	}
	single := run(1)
	spray := run(4)
	// Spraying can only widen query reach; allow a tiny tolerance for
	// bandwidth contention side effects.
	if spray < single-0.05 {
		t.Errorf("spray success %.3f well below single-copy %.3f", spray, single)
	}
}

func TestCoreHelpers(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr)
	s := New()
	env, err := scheme.NewEnv(tr, w, lineConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	env.Sim.RunUntil(22000) // warm-up done, data generated

	// centerOf bounds.
	if s.centerOf(-1) != -1 || s.centerOf(99) != -1 {
		t.Error("centerOf out-of-range should be -1")
	}
	if s.centerOf(0) != 1 {
		t.Errorf("centerOf(0) = %v, want hub 1", s.centerOf(0))
	}

	// hasPending / sortedPending reflect outstanding pushes at the source.
	if len(s.sortedPending(0)) == 0 && !env.Buffers[1].Has(0) {
		t.Error("no pending push and no cached copy after data generation")
	}
	if s.hasPending(2, 0) {
		t.Error("non-source claims pending push")
	}

	// isCachingNode: the center is always in its own subgraph.
	if !s.isCachingNode(1, 0) {
		t.Error("center not a caching node of its NCL")
	}
	if s.isCachingNode(2, 0) && env.Buffers[2].Get(0) == nil {
		t.Error("requester claims caching-node status without a copy")
	}
}
