package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if want := math.Sqrt(2.5); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize must not reorder its input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestOnlineMatchesSummarize(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, v := range raw {
			xs[i] = float64(v)
			o.Add(xs[i])
		}
		s := Summarize(xs)
		return o.N() == s.N &&
			math.Abs(o.Mean()-s.Mean) < 1e-6*(1+math.Abs(s.Mean)) &&
			math.Abs(o.Std()-s.Std) < 1e-6*(1+s.Std) &&
			o.Min() == s.Min && o.Max() == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 {
		t.Error("zero-value Online must report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, x := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.2} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0.05 and clamped -0.2
		t.Errorf("bucket 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bucket 1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 0.95 and clamped 1.5
		t.Errorf("bucket 9 = %d, want 2", h.Counts[9])
	}
	if got := h.BucketMid(0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("BucketMid(0) = %v", got)
	}
	if got := h.Fraction(0); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(1, 1, 10)
}
