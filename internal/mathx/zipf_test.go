package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1): want error")
	}
	if _, err := NewZipf(-3, 1); err == nil {
		t.Error("NewZipf(-3, 1): want error")
	}
	if _, err := NewZipf(10, -0.5); err == nil {
		t.Error("NewZipf(10, -0.5): want error")
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.8, 1, 1.2, 2} {
		z, err := NewZipf(100, s)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for j := 1; j <= z.M(); j++ {
			sum += z.P(j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("s=%v: pmf sums to %v", s, sum)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 10; j++ {
		if math.Abs(z.P(j)-0.1) > 1e-12 {
			t.Errorf("P(%d) = %v, want 0.1", j, z.P(j))
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 2; j <= 50; j++ {
		if z.P(j) > z.P(j-1) {
			t.Errorf("P(%d)=%v > P(%d)=%v", j, z.P(j), j-1, z.P(j-1))
		}
	}
}

func TestZipfKnownRatio(t *testing.T) {
	// With s=1, P_1 / P_2 = 2 exactly.
	z, err := NewZipf(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.P(1) / z.P(2); math.Abs(got-2) > 1e-9 {
		t.Errorf("P1/P2 = %v, want 2", got)
	}
}

func TestZipfOutOfRange(t *testing.T) {
	z, err := NewZipf(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.P(0) != 0 || z.P(6) != 0 || z.P(-1) != 0 {
		t.Error("P outside [1,M] must be 0")
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z, err := NewZipf(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(7)
	const n = 200000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		j := z.Sample(r)
		if j < 1 || j > 20 {
			t.Fatalf("sample %d out of range", j)
		}
		counts[j]++
	}
	for j := 1; j <= 20; j++ {
		emp := float64(counts[j]) / n
		if math.Abs(emp-z.P(j)) > 0.005 {
			t.Errorf("rank %d: empirical %v vs pmf %v", j, emp, z.P(j))
		}
	}
}

func TestZipfSamplePropertyInRange(t *testing.T) {
	f := func(m uint8, seed int64) bool {
		mm := int(m%100) + 1
		z, err := NewZipf(mm, 1)
		if err != nil {
			return false
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			j := z.Sample(r)
			if j < 1 || j > mm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
