package mathx

import (
	"errors"
	"sort"
)

// Zipf is the query-popularity distribution of paper Eq. (8):
//
//	P_j = (1/j^s) / sum_{i=1..M} (1/i^s),   j in [1, M],
//
// used to decide which data item a node requests. s = 0 degenerates to the
// uniform distribution; larger s concentrates requests on low ranks.
//
// Unlike math/rand.Zipf this implementation exposes the pmf/cdf directly
// (needed to reproduce Fig. 9(b)) and supports per-decision probability
// queries ("request item j with probability P_j"), matching the paper's
// query-generation procedure.
type Zipf struct {
	s   float64
	pmf []float64
	cdf []float64
}

// NewZipf builds the distribution over ranks 1..m with exponent s >= 0.
func NewZipf(m int, s float64) (*Zipf, error) {
	if m <= 0 {
		return nil, errors.New("mathx: zipf requires m >= 1")
	}
	if s < 0 {
		return nil, errors.New("mathx: zipf requires s >= 0")
	}
	z := &Zipf{s: s, pmf: make([]float64, m), cdf: make([]float64, m)}
	var norm float64
	for j := 1; j <= m; j++ {
		z.pmf[j-1] = 1 / powf(float64(j), s)
		norm += z.pmf[j-1]
	}
	var acc float64
	for j := range z.pmf {
		z.pmf[j] /= norm
		acc += z.pmf[j]
		z.cdf[j] = acc
	}
	z.cdf[m-1] = 1 // guard against rounding drift
	return z, nil
}

// M returns the number of ranks.
func (z *Zipf) M() int { return len(z.pmf) }

// Exponent returns s.
func (z *Zipf) Exponent() float64 { return z.s }

// P returns P_j for rank j in [1, M]; 0 outside.
func (z *Zipf) P(j int) float64 {
	if j < 1 || j > len(z.pmf) {
		return 0
	}
	return z.pmf[j-1]
}

// Sample draws a rank in [1, M].
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// powf is a tiny wrapper so the hot loop avoids repeated interface checks;
// semantics are math.Pow.
func powf(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	if y == 1 {
		return x
	}
	return powImpl(x, y)
}
