package mathx

import (
	"errors"
	"math"
)

// ResponseSigmoid is the probabilistic-response function of paper Eq. (4):
//
//	p_R(t) = k1 / (1 + e^{-k2 t}),
//	k1 = 2 p_min,
//	k2 = (1/T_q) ln(p_max / (2 p_min - p_max)),
//
// where t is the remaining time T_q - t_0 a caching node has to return
// data to the requester, so p_R(0) = p_min and p_R(T_q) = p_max. It is
// used when nodes only maintain opportunistic paths to the central nodes
// and therefore cannot evaluate the true delivery probability p_CR.
type ResponseSigmoid struct {
	k1, k2 float64
	tq     float64
	pmin   float64
	pmax   float64
}

// ErrSigmoidParams reports parameters outside the domain required by
// Eq. (4): 0 < p_max <= 1, p_max/2 < p_min < p_max, T_q > 0.
var ErrSigmoidParams = errors.New("mathx: sigmoid requires 0 < pmax <= 1, pmax/2 < pmin < pmax, tq > 0")

// NewResponseSigmoid validates the parameters and builds the function.
func NewResponseSigmoid(pmin, pmax, tq float64) (*ResponseSigmoid, error) {
	if !(pmax > 0 && pmax <= 1) || !(pmin > pmax/2 && pmin < pmax) || tq <= 0 {
		return nil, ErrSigmoidParams
	}
	return &ResponseSigmoid{
		k1:   2 * pmin,
		k2:   math.Log(pmax/(2*pmin-pmax)) / tq,
		tq:   tq,
		pmin: pmin,
		pmax: pmax,
	}, nil
}

// Prob returns p_R at remaining time t, clamped to [0, p_max] outside the
// nominal domain [0, T_q].
func (s *ResponseSigmoid) Prob(t float64) float64 {
	if t <= 0 {
		return s.pmin
	}
	if t >= s.tq {
		return s.pmax
	}
	return s.k1 / (1 + math.Exp(-s.k2*t))
}

// TimeConstraint returns the T_q the sigmoid was built for.
func (s *ResponseSigmoid) TimeConstraint() float64 { return s.tq }

// Bounds returns (p_min, p_max).
func (s *ResponseSigmoid) Bounds() (pmin, pmax float64) { return s.pmin, s.pmax }
