package mathx

import (
	"errors"
	"math"
	"sort"
)

// Hypoexp is the hypoexponential distribution of a sum of independent
// exponential random variables with (possibly repeated) rates. In the
// paper it models the delay of an r-hop opportunistic path whose hop k has
// inter-contact rate lambda_k (Definition 1, Eqs. 1-2): the path weight
// p_AB(T) is exactly CDF(T).
//
// The closed form of Eq. (2),
//
//	p(T) = sum_k C_k (1 - e^{-lambda_k T}),  C_k = prod_{s!=k} lambda_s/(lambda_s-lambda_k),
//
// is numerically unstable when two rates are close (the coefficients
// diverge with alternating signs). Hypoexp therefore uses the closed form
// only when all rates are well separated and falls back to uniformization
// of the underlying absorbing Markov chain otherwise, which is stable for
// arbitrary (including equal) rates.
type Hypoexp struct {
	rates    []float64
	distinct bool
	coef     []float64 // C_k of Eq. (2); valid only when distinct
}

// ErrBadRate reports a non-positive rate passed to NewHypoexp.
var ErrBadRate = errors.New("mathx: hypoexponential rates must be positive")

// relative separation below which the closed form is considered unstable.
const hypoexpSeparation = 1e-6

// NewHypoexp builds the distribution of the sum of exponentials with the
// given rates. The slice is copied; it must be non-empty and positive.
func NewHypoexp(rates []float64) (*Hypoexp, error) {
	if len(rates) == 0 {
		return nil, errors.New("mathx: hypoexponential needs at least one rate")
	}
	h := &Hypoexp{rates: make([]float64, len(rates))}
	copy(h.rates, rates)
	for _, r := range h.rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, ErrBadRate
		}
	}
	h.distinct = ratesSeparated(h.rates)
	if h.distinct {
		h.coef = hypoexpCoefficients(h.rates)
	}
	return h, nil
}

// Rates returns a copy of the hop rates.
func (h *Hypoexp) Rates() []float64 {
	out := make([]float64, len(h.rates))
	copy(out, h.rates)
	return out
}

// Mean returns the expected total delay, sum of 1/lambda_k.
func (h *Hypoexp) Mean() float64 {
	var m float64
	for _, r := range h.rates {
		m += 1 / r
	}
	return m
}

// CDF returns P(total delay <= t). For a single hop this is the
// exponential CDF; for multiple hops it is Eq. (2) of the paper.
func (h *Hypoexp) CDF(t float64) float64 {
	switch {
	case t <= 0:
		return 0
	case len(h.rates) == 1:
		return -math.Expm1(-h.rates[0] * t)
	case h.distinct:
		return clamp01(h.cdfClosedForm(t))
	default:
		return clamp01(h.cdfUniformized(t))
	}
}

// PDF returns the density of the total delay at t (Eq. 1).
func (h *Hypoexp) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if len(h.rates) == 1 {
		return h.rates[0] * math.Exp(-h.rates[0]*t)
	}
	if h.distinct {
		var p float64
		for k, r := range h.rates {
			p += h.coef[k] * r * math.Exp(-r*t)
		}
		return math.Max(p, 0)
	}
	// Derivative via central difference on the uniformized CDF; adequate
	// for the rare repeated-rate case (the PDF is only used in tests and
	// diagnostics, never on the simulation hot path).
	const eps = 1e-6
	lo := math.Max(t-eps, 0)
	return math.Max((h.cdfUniformized(t+eps)-h.cdfUniformized(lo))/(t+eps-lo), 0)
}

func (h *Hypoexp) cdfClosedForm(t float64) float64 {
	var p float64
	for k, r := range h.rates {
		p += h.coef[k] * -math.Expm1(-r*t)
	}
	return p
}

// cdfUniformized evaluates the CDF by uniformizing the absorbing chain
// 1 -> 2 -> ... -> r -> absorbed. With q = max rate, the jump matrix moves
// phase k to k+1 with probability rates[k]/q and stays with 1-rates[k]/q.
// The absorption probability by time t is 1 - sum of phase occupancies.
func (h *Hypoexp) cdfUniformized(t float64) float64 {
	r := len(h.rates)
	q := 0.0
	for _, rate := range h.rates {
		if rate > q {
			q = rate
		}
	}
	qt := q * t
	// phase occupancy vector after n jumps of the uniformized chain
	occ := make([]float64, r)
	next := make([]float64, r)
	occ[0] = 1
	// Poisson(qt) weights accumulated until the tail is negligible.
	logw := -qt // log of e^{-qt} (qt)^0 / 0!
	sumAbsorbed := 0.0
	sumWeights := 0.0
	// absorbed mass after n jumps
	absorbed := 0.0
	for n := 0; ; n++ {
		if n > 0 {
			logw += math.Log(qt) - math.Log(float64(n))
			for i := range next {
				next[i] = 0
			}
			for k := 0; k < r; k++ {
				stay := 1 - h.rates[k]/q
				move := h.rates[k] / q
				next[k] += occ[k] * stay
				if k+1 < r {
					next[k+1] += occ[k] * move
				} else {
					absorbed += occ[k] * move
				}
			}
			copy(occ, next)
		}
		w := math.Exp(logw)
		sumAbsorbed += w * absorbed
		sumWeights += w
		if sumWeights > 1-1e-13 && n > int(qt) {
			break
		}
		if n > 100000 {
			break // safety net; qt is bounded in practice
		}
	}
	return sumAbsorbed
}

// hypoexpCoefficients computes C_k = prod_{s!=k} lambda_s / (lambda_s - lambda_k).
func hypoexpCoefficients(rates []float64) []float64 {
	coef := make([]float64, len(rates))
	for k, rk := range rates {
		c := 1.0
		for s, rs := range rates {
			if s == k {
				continue
			}
			c *= rs / (rs - rk)
		}
		coef[k] = c
	}
	return coef
}

// ratesSeparated reports whether all rates differ pairwise by more than a
// relative tolerance, i.e. whether the closed form is safe.
func ratesSeparated(rates []float64) bool {
	sorted := make([]float64, len(rates))
	copy(sorted, rates)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		gap := sorted[i] - sorted[i-1]
		if gap <= hypoexpSeparation*sorted[i] {
			return false
		}
	}
	return true
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// PathWeight is a convenience wrapper computing the opportunistic path
// weight p_AB(T) of Definition 1 for a path with the given hop rates.
// A zero-hop path (A==B) has weight 1 for any non-negative T.
func PathWeight(rates []float64, t float64) (float64, error) {
	if len(rates) == 0 {
		if t < 0 {
			return 0, nil
		}
		return 1, nil
	}
	h, err := NewHypoexp(rates)
	if err != nil {
		return 0, err
	}
	return h.CDF(t), nil
}
