package mathx

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(1), NewRand(1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRandDeriveIndependence(t *testing.T) {
	root := NewRand(1)
	a := root.Derive("workload")
	root2 := NewRand(1)
	b := root2.Derive("workload")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("derived streams with the same label and seed must match")
		}
	}
	root3 := NewRand(1)
	c := root3.Derive("trace")
	same := true
	d := NewRand(1).Derive("workload")
	for i := 0; i < 20; i++ {
		if c.Float64() != d.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different labels should produce different streams")
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(3)
	const n = 200000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestRandExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestRandBernoulli(t *testing.T) {
	r := NewRand(5)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) must be true")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestRandUniform(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(5, 15)
		if x < 5 || x >= 15 {
			t.Fatalf("Uniform(5,15) produced %v", x)
		}
	}
}

func TestRandParetoBoundsAndSkew(t *testing.T) {
	r := NewRand(13)
	const n = 50000
	var above float64
	for i := 0; i < n; i++ {
		x := r.Pareto(1.5, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("Pareto out of bounds: %v", x)
		}
		if x > 10 {
			above++
		}
	}
	// Bounded Pareto with alpha=1.5 on [1,100]: P(X>10) ~ (1-10^-1.5)/(1-100^-1.5)
	// complement ~ 0.0316... Most mass must be near the low end.
	if frac := above / n; frac > 0.1 {
		t.Errorf("Pareto too flat: P(X>10) = %v", frac)
	}
}

func TestRandParetoPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pareto with lo<=0 should panic")
		}
	}()
	NewRand(1).Pareto(1, 0, 10)
}

func TestRandPermAndIntn(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
