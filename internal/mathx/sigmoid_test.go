package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmoidPaperExample(t *testing.T) {
	// Fig. 7 parameters: p_min = 0.45, p_max = 0.8, T_q = 10 hours.
	tq := 10.0 * 3600
	s, err := NewResponseSigmoid(0.45, 0.8, tq)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Prob(0); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("p_R(0) = %v, want 0.45", got)
	}
	if got := s.Prob(tq); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("p_R(T_q) = %v, want 0.8", got)
	}
	// Interior point computed from Eq. (4) directly.
	k1 := 2 * 0.45
	k2 := math.Log(0.8/(2*0.45-0.8)) / tq
	mid := tq / 2
	want := k1 / (1 + math.Exp(-k2*mid))
	if got := s.Prob(mid); math.Abs(got-want) > 1e-12 {
		t.Errorf("p_R(T_q/2) = %v, want %v", got, want)
	}
}

func TestSigmoidRejectsBadParams(t *testing.T) {
	cases := []struct {
		pmin, pmax, tq float64
	}{
		{0.4, 0.8, 10},  // pmin == pmax/2 (k2 diverges)
		{0.3, 0.8, 10},  // pmin < pmax/2
		{0.9, 0.8, 10},  // pmin > pmax
		{0.8, 0.8, 10},  // pmin == pmax
		{0.45, 0.8, 0},  // tq == 0
		{0.45, 0.8, -1}, // tq < 0
		{0.45, 1.2, 10}, // pmax > 1 (and pmin<pmax/2 check bypassed)
		{0.7, 1.2, 10},  // pmax > 1
	}
	for _, c := range cases {
		if _, err := NewResponseSigmoid(c.pmin, c.pmax, c.tq); err == nil {
			t.Errorf("NewResponseSigmoid(%v, %v, %v): want error", c.pmin, c.pmax, c.tq)
		}
	}
}

func TestSigmoidMonotoneAndBounded(t *testing.T) {
	f := func(a, b uint8, t1, t2 uint16) bool {
		pmax := 0.2 + 0.8*float64(a)/255 // (0.2, 1]
		// pmin strictly inside (pmax/2, pmax)
		frac := 0.1 + 0.8*float64(b)/255
		pmin := pmax/2 + frac*(pmax-pmax/2)
		s, err := NewResponseSigmoid(pmin, pmax, 100)
		if err != nil {
			return true // parameters collapsed to an invalid corner; skip
		}
		ta := float64(t1 % 120)
		tb := float64(t2 % 120)
		if ta > tb {
			ta, tb = tb, ta
		}
		pa, pb := s.Prob(ta), s.Prob(tb)
		return pa >= pmin-1e-12 && pb <= pmax+1e-12 && pa <= pb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidAccessors(t *testing.T) {
	s, err := NewResponseSigmoid(0.45, 0.8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TimeConstraint(); got != 10 {
		t.Errorf("TimeConstraint = %v, want 10", got)
	}
	pmin, pmax := s.Bounds()
	if pmin != 0.45 || pmax != 0.8 {
		t.Errorf("Bounds = %v, %v; want 0.45, 0.8", pmin, pmax)
	}
}
