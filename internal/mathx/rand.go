package mathx

import (
	"math"
	"math/rand"
)

// Rand is a seeded random source with the distribution helpers the
// simulator needs. It wraps math/rand.Rand so that every stochastic
// component of a simulation can own an independent, reproducible stream.
type Rand struct {
	rng *rand.Rand
}

// NewRand returns a deterministic generator seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent generator whose seed is a function of
// this generator's seed and the given label. It is used to give each
// component (trace generation, workload, protocol coin flips, ...) its own
// stream so that changing one component's consumption pattern does not
// perturb the others.
func (r *Rand) Derive(label string) *Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRand(h ^ r.rng.Int63())
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Intn returns a uniform int in [0,n).
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.rng.Int63() }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Uniform returns a uniform value in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.rng.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0, which always indicates a
// programming error in the caller.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exp requires rate > 0")
	}
	return r.rng.ExpFloat64() / rate
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rng.Float64() < p
}

// Pareto returns a bounded Pareto sample in [lo,hi] with shape alpha.
// It is used to draw heterogeneous node activity levels: a small alpha
// yields the highly skewed popularity the paper observes in Fig. 4.
func (r *Rand) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("mathx: Pareto requires 0 < lo < hi and alpha > 0")
	}
	u := r.rng.Float64()
	la := math.Pow(lo, -alpha)
	ha := math.Pow(hi, -alpha)
	return math.Pow(la-u*(la-ha), -1/alpha)
}
