package mathx

import (
	"math"
	"sort"
)

func powImpl(x, y float64) float64 { return math.Pow(x, y) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes descriptive statistics; a nil/empty input yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	for _, x := range sorted {
		d := x - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Percentile(sorted, 0.5),
		P90:    Percentile(sorted, 0.9),
	}
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample using linear interpolation. An empty sample yields 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Online accumulates a running mean and variance (Welford) without storing
// the sample. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 if n < 2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if empty).
func (o *Online) Max() float64 { return o.max }

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values outside
// the range are clamped into the first/last bucket. It backs the
// NCL-metric distribution plots of Fig. 4.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("mathx: histogram requires n > 0 and hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// BucketMid returns the midpoint of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of samples in bucket i (0 if empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
