package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func mustHypoexp(t *testing.T, rates []float64) *Hypoexp {
	t.Helper()
	h, err := NewHypoexp(rates)
	if err != nil {
		t.Fatalf("NewHypoexp(%v): %v", rates, err)
	}
	return h
}

func TestNewHypoexpRejectsBadRates(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0},
		{-1},
		{1, 0},
		{1, math.NaN()},
		{math.Inf(1)},
	}
	for _, rates := range cases {
		if _, err := NewHypoexp(rates); err == nil {
			t.Errorf("NewHypoexp(%v): want error, got nil", rates)
		}
	}
}

func TestHypoexpSingleHopIsExponential(t *testing.T) {
	h := mustHypoexp(t, []float64{0.5})
	for _, tt := range []float64{0, 0.1, 1, 2, 10} {
		want := 1 - math.Exp(-0.5*tt)
		if got := h.CDF(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestHypoexpMean(t *testing.T) {
	h := mustHypoexp(t, []float64{1, 2, 4})
	want := 1.0 + 0.5 + 0.25
	if got := h.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHypoexpTwoHopClosedForm(t *testing.T) {
	// For rates a != b: CDF(t) = 1 - (b e^{-at} - a e^{-bt})/(b-a).
	a, b := 1.0, 3.0
	h := mustHypoexp(t, []float64{a, b})
	for _, tt := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - (b*math.Exp(-a*tt)-a*math.Exp(-b*tt))/(b-a)
		if got := h.CDF(tt); math.Abs(got-want) > 1e-10 {
			t.Errorf("CDF(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestHypoexpEqualRatesIsErlang(t *testing.T) {
	// Sum of r iid Exp(lambda) is Erlang(r, lambda):
	// CDF(t) = 1 - e^{-lt} sum_{n<r} (lt)^n / n!.
	lambda := 2.0
	for r := 2; r <= 5; r++ {
		rates := make([]float64, r)
		for i := range rates {
			rates[i] = lambda
		}
		h := mustHypoexp(t, rates)
		for _, tt := range []float64{0.1, 0.5, 1, 2} {
			lt := lambda * tt
			sum := 0.0
			term := 1.0
			for n := 0; n < r; n++ {
				if n > 0 {
					term *= lt / float64(n)
				}
				sum += term
			}
			want := 1 - math.Exp(-lt)*sum
			if got := h.CDF(tt); math.Abs(got-want) > 1e-9 {
				t.Errorf("r=%d CDF(%v) = %v, want %v", r, tt, got, want)
			}
		}
	}
}

func TestHypoexpClosedFormMatchesUniformization(t *testing.T) {
	h := mustHypoexp(t, []float64{0.3, 1.1, 2.7, 5.9})
	if !h.distinct {
		t.Fatal("expected distinct rates to use the closed form")
	}
	for _, tt := range []float64{0.05, 0.3, 1, 3, 10} {
		cf := h.cdfClosedForm(tt)
		un := h.cdfUniformized(tt)
		if math.Abs(cf-un) > 1e-8 {
			t.Errorf("t=%v: closed form %v vs uniformized %v", tt, cf, un)
		}
	}
}

func TestHypoexpNearEqualRatesStable(t *testing.T) {
	// Rates this close would make the closed-form coefficients ~1e9 with
	// alternating signs; the uniformization fallback must kick in and
	// produce values that match the exactly-equal-rate Erlang closely.
	h := mustHypoexp(t, []float64{1, 1 + 1e-9})
	erlang := mustHypoexp(t, []float64{1, 1})
	for _, tt := range []float64{0.1, 1, 3} {
		got, want := h.CDF(tt), erlang.CDF(tt)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("CDF(%v) = %v, want ~%v", tt, got, want)
		}
	}
}

func TestHypoexpCDFPropertyBounds(t *testing.T) {
	// Property: for arbitrary positive rates and times, CDF stays in [0,1]
	// and is monotone non-decreasing in t.
	f := func(r1, r2, r3 uint16, t1, t2 uint16) bool {
		rates := []float64{
			0.01 + float64(r1%1000)/100,
			0.01 + float64(r2%1000)/100,
			0.01 + float64(r3%1000)/100,
		}
		h, err := NewHypoexp(rates)
		if err != nil {
			return false
		}
		ta := float64(t1%500) / 10
		tb := float64(t2%500) / 10
		if ta > tb {
			ta, tb = tb, ta
		}
		ca, cb := h.CDF(ta), h.CDF(tb)
		return ca >= 0 && cb <= 1 && ca <= cb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHypoexpCDFLimits(t *testing.T) {
	h := mustHypoexp(t, []float64{0.7, 1.9, 4.2})
	if got := h.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := h.CDF(1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(inf) = %v, want 1", got)
	}
}

func TestHypoexpPDFIntegratesToCDF(t *testing.T) {
	h := mustHypoexp(t, []float64{0.8, 2.5, 1.4})
	// Trapezoidal integration of the PDF should recover the CDF.
	const dt = 1e-3
	acc := 0.0
	prev := h.PDF(0)
	for x := dt; x <= 3.0+dt/2; x += dt {
		cur := h.PDF(x)
		acc += (prev + cur) / 2 * dt
		prev = cur
	}
	if want := h.CDF(3.0); math.Abs(acc-want) > 1e-4 {
		t.Errorf("integral of PDF to 3 = %v, want CDF(3) = %v", acc, want)
	}
}

func TestHypoexpCDFAgainstMonteCarlo(t *testing.T) {
	rates := []float64{0.5, 1.5, 3.0}
	h := mustHypoexp(t, rates)
	r := NewRand(42)
	const n = 200000
	tt := 2.0
	hits := 0
	for i := 0; i < n; i++ {
		total := 0.0
		for _, rate := range rates {
			total += r.Exp(rate)
		}
		if total <= tt {
			hits++
		}
	}
	emp := float64(hits) / n
	if got := h.CDF(tt); math.Abs(got-emp) > 0.005 {
		t.Errorf("CDF(%v) = %v, Monte Carlo says %v", tt, got, emp)
	}
}

func TestPathWeight(t *testing.T) {
	if w, err := PathWeight(nil, 5); err != nil || w != 1 {
		t.Errorf("zero-hop path weight = %v, %v; want 1, nil", w, err)
	}
	if w, err := PathWeight(nil, -1); err != nil || w != 0 {
		t.Errorf("zero-hop negative-T weight = %v, %v; want 0, nil", w, err)
	}
	if _, err := PathWeight([]float64{-1}, 5); err == nil {
		t.Error("negative rate: want error")
	}
	w, err := PathWeight([]float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - math.Exp(-2.0); math.Abs(w-want) > 1e-12 {
		t.Errorf("PathWeight = %v, want %v", w, want)
	}
}

func TestHypoexpRatesReturnsCopy(t *testing.T) {
	h := mustHypoexp(t, []float64{1, 2})
	got := h.Rates()
	got[0] = 99
	if h.Rates()[0] != 1 {
		t.Error("Rates() must return a copy")
	}
}

func BenchmarkHypoexpCDFClosedForm(b *testing.B) {
	h, _ := NewHypoexp([]float64{0.3, 1.1, 2.7, 5.9})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.CDF(1.5)
	}
}

func BenchmarkHypoexpCDFUniformized(b *testing.B) {
	h, _ := NewHypoexp([]float64{1, 1, 1, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.CDF(1.5)
	}
}
