// Package mathx provides the mathematical primitives used throughout the
// dtncache reproduction: the hypoexponential distribution of opportunistic
// path delays (paper Eqs. 1-2), the sigmoid response probability (Eq. 4),
// Zipf query popularity (Eq. 8), seeded random-number helpers, and summary
// statistics.
//
// Everything in this package is deterministic given a seed and free of
// global state, so simulations are exactly reproducible.
package mathx
