package sim

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// randomContacts builds a sorted contact list with plenty of same-pair
// overlaps so merge behavior is actually exercised.
func randomContacts(n, nodes int, seed int64) []trace.Contact {
	rng := mathx.NewRand(seed)
	cs := make([]trace.Contact, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.Exp(1.0 / 40)
		a := trace.NodeID(rng.Intn(nodes))
		b := trace.NodeID(rng.Intn(nodes - 1))
		if b >= a {
			b++
		}
		cs = append(cs, trace.Contact{A: a, B: b, Start: t, End: t + 30 + rng.Exp(1.0/60)})
	}
	return cs
}

// TestMergeSourceMatchesMergeOverlaps is the cross-package pin: the
// online fold in trace.MergeSource must emit exactly the sequence the
// driver's offline MergeOverlaps produces, because LoadStream relies on
// the two being interchangeable.
func TestMergeSourceMatchesMergeOverlaps(t *testing.T) {
	raw := randomContacts(5000, 8, 99)
	want := MergeOverlaps(raw)

	src := trace.NewMergeSource(trace.NewSliceSource(raw))
	var got []trace.Contact
	for {
		c, err := src.NextContact()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d contacts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contact %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if mc := src.MergedCount(); mc != len(raw)-len(want) {
		t.Fatalf("MergedCount = %d, want %d", mc, len(raw)-len(want))
	}
}

// runReplay replays the contacts through a fresh simulator+driver with
// a transfer-generating handler and returns a behavior fingerprint.
func runReplay(t *testing.T, nodes int, duration float64, load func(*Driver) error) (starts []Session, delivered, dropped, merged int, events uint64) {
	t.Helper()
	s := New()
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: sess.A, To: sess.B, Bits: 120e3, Label: "q"})
		sess.Enqueue(Transfer{From: sess.B, To: sess.A, Bits: 500e6, Label: "big"}) // mostly won't fit
	}}
	d := NewDriver(s, rec)
	if err := load(d); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(duration)
	if err := d.FeedErr(); err != nil {
		t.Fatal(err)
	}
	delivered, dropped, merged = d.Stats()
	return rec.startCopies, delivered, dropped, merged, s.Processed()
}

// TestLoadStreamMatchesLoad: a streamed replay must be event-for-event
// identical to a materialized one — same contact sequence, same
// transfer outcomes, same event count.
func TestLoadStreamMatchesLoad(t *testing.T) {
	raw := randomContacts(4000, 10, 7)
	duration := raw[len(raw)-1].End + 100
	tr := &trace.Trace{Name: "t", Nodes: 10, Duration: duration, Contacts: raw}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	mStarts, mDel, mDrop, mMerged, mEvents := runReplay(t, 10, duration,
		func(d *Driver) error { return d.Load(tr) })
	sStarts, sDel, sDrop, sMerged, sEvents := runReplay(t, 10, duration,
		func(d *Driver) error { return d.LoadStream(trace.NewSliceSource(raw)) })

	if mDel != sDel || mDrop != sDrop || mMerged != sMerged || mEvents != sEvents {
		t.Fatalf("materialized (del=%d drop=%d merged=%d events=%d) != streamed (del=%d drop=%d merged=%d events=%d)",
			mDel, mDrop, mMerged, mEvents, sDel, sDrop, sMerged, sEvents)
	}
	if len(mStarts) != len(sStarts) {
		t.Fatalf("contact count %d != %d", len(mStarts), len(sStarts))
	}
	for i := range mStarts {
		m, s := mStarts[i], sStarts[i]
		if m.A != s.A || m.B != s.B || m.Start != s.Start || m.End != s.End {
			t.Fatalf("contact %d: materialized %v-%v [%g,%g] != streamed %v-%v [%g,%g]",
				i, m.A, m.B, m.Start, m.End, s.A, s.B, s.Start, s.End)
		}
	}
	if mDel == 0 || mMerged == 0 {
		t.Fatalf("degenerate fixture: delivered=%d merged=%d", mDel, mMerged)
	}
}

// TestSessionPoolReuse: sequential contacts must recycle one session
// object instead of allocating per contact.
func TestSessionPoolReuse(t *testing.T) {
	var cs []trace.Contact
	for i := 0; i < 50; i++ {
		start := float64(i * 100)
		cs = append(cs, trace.Contact{A: 0, B: 1, Start: start, End: start + 50})
	}
	tr := &trace.Trace{Name: "t", Nodes: 2, Duration: 6000, Contacts: cs}

	s := New()
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(tr.Duration)
	if len(rec.starts) != 50 || len(rec.ends) != 50 {
		t.Fatalf("starts=%d ends=%d, want 50/50", len(rec.starts), len(rec.ends))
	}
	for i, p := range rec.starts {
		if p != rec.starts[0] {
			t.Fatalf("contact %d used a different session object; pool did not recycle", i)
		}
	}
	if len(d.free) != 1 {
		t.Fatalf("free list holds %d sessions, want 1", len(d.free))
	}
}

// TestSessionPoolSurvivesCloseNode: a force-closed session must not be
// recycled until its originally scheduled end event has fired, and its
// ContactEnd must fire exactly once.
func TestSessionPoolSurvivesCloseNode(t *testing.T) {
	tr := &trace.Trace{Name: "t", Nodes: 3, Duration: 1000, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 200},
		{A: 0, B: 2, Start: 50, End: 90}, // begins while 0-1 is force-closed but its end event is pending
	}}
	s := New()
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	_ = s.Schedule(30, func() {
		if n := d.CloseNode(0); n != 1 {
			t.Errorf("CloseNode closed %d sessions, want 1", n)
		}
	})
	s.RunUntil(tr.Duration)
	if len(rec.starts) != 2 || len(rec.ends) != 2 {
		t.Fatalf("starts=%d ends=%d, want 2/2", len(rec.starts), len(rec.ends))
	}
	// The 0-2 contact began at t=50, before the 0-1 end event at t=200:
	// the force-closed session was still owed its end event, so the
	// driver must have allocated a fresh object for 0-2.
	if rec.starts[1] == rec.starts[0] {
		t.Fatal("session recycled while its end event was still pending")
	}
	if got := rec.startCopies[1]; got.A != 0 || got.B != 2 {
		t.Fatalf("second contact is %v-%v, want 0-2", got.A, got.B)
	}
	if len(d.free) != 2 {
		t.Fatalf("free list holds %d sessions, want 2", len(d.free))
	}
}

// failAfterSource yields n contacts, then a terminal error.
type failAfterSource struct {
	cs  []trace.Contact
	i   int
	err error
}

func (f *failAfterSource) NextContact() (trace.Contact, error) {
	if f.i >= len(f.cs) {
		return trace.Contact{}, f.err
	}
	c := f.cs[f.i]
	f.i++
	return c, nil
}

// TestLoadStreamFeedError: a source error mid-replay must stop the run
// and surface through FeedErr; contacts decoded before the error are
// still replayed.
func TestLoadStreamFeedError(t *testing.T) {
	raw := randomContacts(100, 4, 3)
	boom := fmt.Errorf("stream corrupted")
	src := &failAfterSource{cs: raw, err: boom}

	s := New()
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.LoadStream(src); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(raw[len(raw)-1].End + 1000)
	if !errors.Is(d.FeedErr(), boom) {
		t.Fatalf("FeedErr = %v, want %v", d.FeedErr(), boom)
	}
	if len(rec.starts) == 0 {
		t.Fatal("no contacts replayed before the error")
	}
}

// TestDriverLoadTwiceFails: a driver accepts exactly one contact feed.
func TestDriverLoadTwiceFails(t *testing.T) {
	tr := twoNodeTrace(10, 50)
	s := New()
	d := NewDriver(s, &recorder{})
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(tr); err == nil {
		t.Fatal("second Load should fail")
	}
	if err := d.LoadStream(trace.NewSliceSource(tr.Contacts)); err == nil {
		t.Fatal("LoadStream after Load should fail")
	}
}
