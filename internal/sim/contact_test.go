package sim

import (
	"testing"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// recorder is a Handler that records contact lifecycle events and
// optionally reacts to contact starts. Sessions may be recycled after
// ContactEnd, so post-run assertions on contact fields use the value
// copies in startCopies, not the pointers.
type recorder struct {
	starts, ends []*Session
	startCopies  []Session
	onStart      func(*Session)
}

func (r *recorder) ContactStart(s *Session) {
	r.starts = append(r.starts, s)
	r.startCopies = append(r.startCopies, *s)
	if r.onStart != nil {
		r.onStart(s)
	}
}

func (r *recorder) ContactEnd(s *Session) { r.ends = append(r.ends, s) }

func twoNodeTrace(start, end float64) *trace.Trace {
	return &trace.Trace{
		Name: "t", Nodes: 2, Duration: end + 100,
		Contacts: []trace.Contact{{A: 0, B: 1, Start: start, End: end}},
	}
}

func TestDriverContactLifecycle(t *testing.T) {
	s := New()
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(rec.starts) != 1 || len(rec.ends) != 1 {
		t.Fatalf("starts=%d ends=%d", len(rec.starts), len(rec.ends))
	}
	if rec.starts[0] != rec.ends[0] {
		t.Error("start and end should reference the same session")
	}
	if !rec.ends[0].Closed() {
		t.Error("session should be closed at ContactEnd")
	}
}

func TestDriverRejectsInvalidTrace(t *testing.T) {
	s := New()
	d := NewDriver(s, &recorder{})
	bad := &trace.Trace{Nodes: 0}
	if err := d.Load(bad); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestTransferDelivery(t *testing.T) {
	s := New()
	var deliveredAt Time
	rec := &recorder{onStart: func(sess *Session) {
		ok := sess.Enqueue(Transfer{
			From: 0, To: 1, Bits: 2.1e6, // exactly 1 second at default bandwidth
			OnDelivered: func(at Time) { deliveredAt = at },
		})
		if !ok {
			t.Error("enqueue failed")
		}
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if deliveredAt != 11 {
		t.Errorf("delivered at %v, want 11", deliveredAt)
	}
	del, drop, _ := d.Stats()
	if del != 1 || drop != 0 {
		t.Errorf("stats = %d delivered %d dropped", del, drop)
	}
}

func TestTransferSerialSharing(t *testing.T) {
	// Two 1-second transfers must complete at t=11 and t=12.
	s := New()
	var times []Time
	rec := &recorder{onStart: func(sess *Session) {
		for i := 0; i < 2; i++ {
			sess.Enqueue(Transfer{
				From: 0, To: 1, Bits: 2.1e6,
				OnDelivered: func(at Time) { times = append(times, at) },
			})
		}
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(times) != 2 || times[0] != 11 || times[1] != 12 {
		t.Errorf("delivery times = %v, want [11 12]", times)
	}
}

func TestTransferDroppedWhenContactTooShort(t *testing.T) {
	s := New()
	var dropped, delivered int
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{
			From: 0, To: 1, Bits: 100 * 2.1e6, // needs 100s, contact is 5s
			OnDelivered: func(Time) { delivered++ },
			OnDropped:   func(Time) { dropped++ },
		})
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 15)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered != 0 || dropped != 1 {
		t.Errorf("delivered=%d dropped=%d, want 0/1", delivered, dropped)
	}
}

func TestTransferChaining(t *testing.T) {
	// OnDelivered enqueues a follow-up transfer on the same session.
	s := New()
	var times []Time
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{
			From: 0, To: 1, Bits: 2.1e6,
			OnDelivered: func(at Time) {
				times = append(times, at)
				sess.Enqueue(Transfer{
					From: 1, To: 0, Bits: 2.1e6,
					OnDelivered: func(at2 Time) { times = append(times, at2) },
				})
			},
		})
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(times) != 2 || times[0] != 11 || times[1] != 12 {
		t.Errorf("times = %v, want [11 12]", times)
	}
}

func TestEnqueueValidation(t *testing.T) {
	s := New()
	var sess *Session
	rec := &recorder{onStart: func(ss *Session) { sess = ss }}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 20)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(15)
	if sess == nil {
		t.Fatal("no session")
	}
	if sess.Enqueue(Transfer{From: 0, To: 5, Bits: 1}) {
		t.Error("enqueue with foreign endpoint should fail")
	}
	if sess.Enqueue(Transfer{From: 0, To: 1, Bits: -1}) {
		t.Error("enqueue with negative size should fail")
	}
	s.Run()
	if sess.Enqueue(Transfer{From: 0, To: 1, Bits: 1}) {
		t.Error("enqueue on closed session should fail")
	}
}

func TestZeroSizeTransferCompletesImmediately(t *testing.T) {
	s := New()
	var at Time = -1
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 0,
			OnDelivered: func(a Time) { at = a }})
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 20)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 10 {
		t.Errorf("zero-size delivery at %v, want 10", at)
	}
}

func TestSessionAccessors(t *testing.T) {
	s := New()
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 2.1e6})
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 20)); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(12)
	sess := d.Session(1, 0) // order independent
	if sess == nil {
		t.Fatal("Session lookup failed")
	}
	if sess.Peer(0) != 1 || sess.Peer(1) != 0 || sess.Peer(9) != -1 {
		t.Error("Peer wrong")
	}
	if sess.SentBits() != 2.1e6 {
		t.Errorf("SentBits = %v", sess.SentBits())
	}
	peers := d.ActivePeers(0)
	if len(peers) != 1 || peers[0] != 1 {
		t.Errorf("ActivePeers = %v", peers)
	}
	s.Run()
	if d.Session(0, 1) != nil {
		t.Error("session should be removed after contact end")
	}
}

func TestOverlappingContactsMerged(t *testing.T) {
	tr := &trace.Trace{
		Name: "t", Nodes: 2, Duration: 200,
		Contacts: []trace.Contact{
			{A: 0, B: 1, Start: 10, End: 50},
			{A: 0, B: 1, Start: 40, End: 80}, // overlaps -> merged to [10,80]
			{A: 0, B: 1, Start: 100, End: 120},
		},
	}
	s := New()
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.Load(tr); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(rec.starts) != 2 {
		t.Fatalf("contacts after merge = %d, want 2", len(rec.starts))
	}
	if rec.startCopies[0].End != 80 {
		t.Errorf("merged end = %v, want 80", rec.startCopies[0].End)
	}
	_, _, merged := d.Stats()
	if merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
}

func TestFailureInjection(t *testing.T) {
	// With drop probability 1 every transfer must be dropped.
	s := New()
	var dropped int
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 1000,
			OnDropped: func(Time) { dropped++ }})
	}}
	d := NewDriver(s, rec, WithDropProb(1, mathx.NewRand(1)))
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	_, dropStat, _ := d.Stats()
	if dropStat != 1 {
		t.Errorf("dropped stat = %d, want 1", dropStat)
	}
}

func TestCustomBandwidth(t *testing.T) {
	s := New()
	var at Time
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 1000,
			OnDelivered: func(a Time) { at = a }})
	}}
	d := NewDriver(s, rec, WithBandwidth(100)) // 10 seconds for 1000 bits
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 20 {
		t.Errorf("delivered at %v, want 20", at)
	}
}

func TestMidContactEnqueueFromOutside(t *testing.T) {
	// A transfer enqueued by an external event while the contact is
	// active must be carried.
	s := New()
	var at Time
	rec := &recorder{}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(30, func() {
		sess := d.Session(0, 1)
		if sess == nil {
			t.Error("expected active session at t=30")
			return
		}
		sess.Enqueue(Transfer{From: 1, To: 0, Bits: 2.1e6,
			OnDelivered: func(a Time) { at = a }})
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 31 {
		t.Errorf("delivered at %v, want 31", at)
	}
}

func TestLabelStats(t *testing.T) {
	s := New()
	rec := &recorder{onStart: func(sess *Session) {
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 1000, Label: "push"})
		sess.Enqueue(Transfer{From: 0, To: 1, Bits: 500, Label: "push"})
		sess.Enqueue(Transfer{From: 1, To: 0, Bits: 80, Label: "query"})
	}}
	d := NewDriver(s, rec)
	if err := d.Load(twoNodeTrace(10, 50)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if n, bits := d.LabelStats("push"); n != 2 || bits != 1500 {
		t.Errorf("push stats = %d, %v", n, bits)
	}
	if n, bits := d.LabelStats("query"); n != 1 || bits != 80 {
		t.Errorf("query stats = %d, %v", n, bits)
	}
	if n, _ := d.LabelStats("nope"); n != 0 {
		t.Errorf("unknown label = %d", n)
	}
}
