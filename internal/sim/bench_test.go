package sim

import (
	"testing"

	"dtncache/internal/trace"
)

// BenchmarkReplayDispatch measures one steady-state Schedule+fire cycle:
// the event queue is warm, the callback is preallocated, and each
// iteration pushes one event and dispatches it. This is the path every
// simulated callback pays, so it must report 0 allocs/op.
func BenchmarkReplayDispatch(b *testing.B) {
	s := New()
	count := 0
	fn := func() { count++ }
	// Warm the heap's backing array so steady state starts at iteration 0.
	_ = s.After(1, fn)
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.After(1, fn)
		s.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	if count != b.N+1 {
		b.Fatalf("dispatched %d events, want %d", count, b.N+1)
	}
}

// BenchmarkReplayBacklog measures scheduling and draining a deep event
// backlog: b.N events at scattered timestamps pushed into one heap, then
// dispatched in order. It exercises sift-up/sift-down on a large queue,
// the regime of a dense contact trace.
func BenchmarkReplayBacklog(b *testing.B) {
	s := New()
	count := 0
	fn := func() { count++ }
	b.ReportAllocs()
	b.ResetTimer()
	now := s.Now()
	for i := 0; i < b.N; i++ {
		// Deterministic scatter: spreads events over [now, now+8191] so
		// pushes interleave instead of appending in sorted order.
		at := now + float64((i*2654435761)&8191)
		_ = s.Schedule(at, fn)
	}
	s.Run()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	if count != b.N {
		b.Fatalf("dispatched %d events, want %d", count, b.N)
	}
}

// benchHandler is a minimal protocol: on every contact each endpoint
// sends one small transfer, so the benchmark covers session setup,
// transfer completion events, and teardown.
type benchHandler struct {
	delivered int
}

func (h *benchHandler) ContactStart(s *Session) {
	s.Enqueue(Transfer{From: s.A, To: s.B, Bits: 80e3, Label: "q",
		OnDelivered: func(Time) { h.delivered++ }})
	s.Enqueue(Transfer{From: s.B, To: s.A, Bits: 80e3, Label: "q",
		OnDelivered: func(Time) { h.delivered++ }})
}

func (h *benchHandler) ContactEnd(*Session) {}

var benchTrace *trace.Trace

func replayTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if benchTrace == nil {
		tr, _, err := trace.Generate(trace.GenConfig{
			Name:           "bench-replay",
			Nodes:          60,
			DurationSec:    7 * 86400,
			GranularitySec: 30,
			TargetContacts: 40000,
			ActivityAlpha:  1.2,
			ActivityMax:    15,
			EdgeProb:       0.3,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchTrace = tr
	}
	return benchTrace
}

// BenchmarkReplayContacts replays a dense synthetic contact trace
// through the driver with a two-transfer-per-contact handler: the
// end-to-end cost of the engine (contact begin/end events, sessions,
// bandwidth-limited transfers) without any caching protocol on top.
func BenchmarkReplayContacts(b *testing.B) {
	tr := replayTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		s := New()
		h := &benchHandler{}
		d := NewDriver(s, h)
		if err := d.Load(tr); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(tr.Duration)
		if h.delivered == 0 {
			b.Fatal("no transfers delivered")
		}
		events += s.Processed()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
