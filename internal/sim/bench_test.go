package sim

import (
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"dtncache/internal/prof"
	"dtncache/internal/trace"
)

// City-scale fixture: 100k nodes, ~10.5M contacts (target padded above
// the 10M floor so the Poisson draw never lands under it).
const (
	cityBenchNodes    = 100_000
	cityBenchContacts = 10_500_000
	cityBenchFloor    = 10_000_000
)

// writeCityBenchTrace streams the city generator straight into a chunked
// file — the trace is never materialized, here or during the replay.
func writeCityBenchTrace(b *testing.B, path string) (contacts int64) {
	b.Helper()
	cfg := trace.CityDefaults(cityBenchNodes, cityBenchContacts)
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := trace.NewStreamWriter(f, trace.StreamMeta{
		Name:        cfg.Name,
		Nodes:       cfg.Nodes,
		Duration:    cfg.DurationSec,
		Granularity: cfg.GranularitySec,
	})
	if err != nil {
		b.Fatal(err)
	}
	err = trace.StreamCity(cfg, func(c trace.Contact) error {
		contacts++
		return sw.Add(c)
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	if contacts < cityBenchFloor {
		b.Fatalf("generated %d contacts, below the %d floor", contacts, cityBenchFloor)
	}
	return contacts
}

// BenchmarkCityScaleReplay replays a 100k-node, >=10M-contact city trace
// through the streaming reader and the driver's chunked feeder, with the
// same two-transfer handler as BenchmarkReplayContacts. It pins the
// tentpole promise with an in-bench gate: peak RSS must stay below the
// footprint of just materializing the contact slice (contacts x
// sizeof(Contact)), i.e. city-scale replay cannot cost city-scale
// memory. Reported metrics: events/sec, contacts/sec and
// peak-rss-bytes.
//
// VmHWM is process-wide and monotone, so this benchmark must run before
// any benchmark with a larger footprint — it is defined first in the
// file for that reason, and it fails loudly (rather than silently
// gating against another benchmark's memory) if the gauge is already
// polluted at entry.
func BenchmarkCityScaleReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "city.dtnc")
	contacts := writeCityBenchTrace(b, path)
	matBytes := contacts * int64(unsafe.Sizeof(trace.Contact{}))
	if before := prof.PeakRSS(); before >= matBytes {
		b.Fatalf("peak RSS already %d B >= %d B before the replay; run this benchmark first (or alone) so the gate measures the streaming path", before, matBytes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events, replayed uint64
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := trace.NewStreamReader(f)
		if err != nil {
			b.Fatal(err)
		}
		s := New()
		h := newBenchHandler()
		d := NewDriver(s, h)
		if err := d.LoadStream(sr); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(sr.Meta().Duration)
		if err := d.FeedErr(); err != nil {
			b.Fatal(err)
		}
		if h.delivered == 0 {
			b.Fatal("no transfers delivered")
		}
		events += s.Processed()
		replayed += uint64(sr.Records())
		f.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "contacts/sec")
	peak := prof.PeakRSS()
	b.ReportMetric(float64(peak), "peak-rss-bytes")
	if peak >= matBytes {
		b.Fatalf("peak RSS %d B >= materialized contact footprint %d B: streaming replay is not saving memory", peak, matBytes)
	}
}

// BenchmarkReplayDispatch measures one steady-state Schedule+fire cycle:
// the event queue is warm, the callback is preallocated, and each
// iteration pushes one event and dispatches it. This is the path every
// simulated callback pays, so it must report 0 allocs/op.
func BenchmarkReplayDispatch(b *testing.B) {
	s := New()
	count := 0
	fn := func() { count++ }
	// Warm the heap's backing array so steady state starts at iteration 0.
	_ = s.After(1, fn)
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.After(1, fn)
		s.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	if count != b.N+1 {
		b.Fatalf("dispatched %d events, want %d", count, b.N+1)
	}
}

// BenchmarkReplayBacklog measures scheduling and draining a deep event
// backlog: b.N events at scattered timestamps pushed into one heap, then
// dispatched in order. It exercises sift-up/sift-down on a large queue,
// the regime of a dense contact trace.
func BenchmarkReplayBacklog(b *testing.B) {
	s := New()
	count := 0
	fn := func() { count++ }
	b.ReportAllocs()
	b.ResetTimer()
	now := s.Now()
	for i := 0; i < b.N; i++ {
		// Deterministic scatter: spreads events over [now, now+8191] so
		// pushes interleave instead of appending in sorted order.
		at := now + float64((i*2654435761)&8191)
		_ = s.Schedule(at, fn)
	}
	s.Run()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	if count != b.N {
		b.Fatalf("dispatched %d events, want %d", count, b.N)
	}
}

// benchHandler is a minimal protocol: on every contact each endpoint
// sends one small transfer, so the benchmark covers session setup,
// transfer completion events, and teardown. The delivery callback is a
// method value created once, not a per-contact closure, so the handler
// adds no allocations of its own to the replay loop.
type benchHandler struct {
	delivered int
	onDeliver func(Time)
}

func newBenchHandler() *benchHandler {
	h := &benchHandler{}
	h.onDeliver = h.deliver
	return h
}

func (h *benchHandler) deliver(Time) { h.delivered++ }

func (h *benchHandler) ContactStart(s *Session) {
	s.Enqueue(Transfer{From: s.A, To: s.B, Bits: 80e3, Label: "q",
		OnDelivered: h.onDeliver})
	s.Enqueue(Transfer{From: s.B, To: s.A, Bits: 80e3, Label: "q",
		OnDelivered: h.onDeliver})
}

func (h *benchHandler) ContactEnd(*Session) {}

var benchTrace *trace.Trace

func replayTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if benchTrace == nil {
		tr, _, err := trace.Generate(trace.GenConfig{
			Name:           "bench-replay",
			Nodes:          60,
			DurationSec:    7 * 86400,
			GranularitySec: 30,
			TargetContacts: 40000,
			ActivityAlpha:  1.2,
			ActivityMax:    15,
			EdgeProb:       0.3,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchTrace = tr
	}
	return benchTrace
}

// BenchmarkReplayContacts replays a dense synthetic contact trace
// through the driver with a two-transfer-per-contact handler: the
// end-to-end cost of the engine (contact begin/end events, sessions,
// bandwidth-limited transfers) without any caching protocol on top.
func BenchmarkReplayContacts(b *testing.B) {
	tr := replayTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		s := New()
		h := newBenchHandler()
		d := NewDriver(s, h)
		if err := d.Load(tr); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(tr.Duration)
		if h.delivered == 0 {
			b.Fatal("no transfers delivered")
		}
		events += s.Processed()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
