// Package sim provides the discrete-event simulation engine the
// trace-driven evaluation runs on: an event queue with a virtual clock, a
// contact driver that replays a trace.Trace, and bandwidth-limited
// transfer sessions that model the 2.1 Mb/s Bluetooth links of the
// paper's experiment setup (Sec. VI-A).
//
// The engine is single-goroutine and fully deterministic: events firing
// at the same virtual time are processed in scheduling order.
//
//dtn:determinism
package sim

import (
	"errors"
	"fmt"

	"dtncache/internal/obs"
)

// Time is a virtual timestamp in seconds since the start of the trace.
type Time = float64

// event is one scheduled callback. Events live by value inside the
// heap's backing array — the array doubles as the event pool: a pop
// vacates a slot that the next push reuses, so steady-state
// Schedule/dispatch performs no allocation at all (see DESIGN.md
// "Replay performance").
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a typed binary min-heap of events ordered by (at, seq):
// earliest timestamp first, scheduling order among equal timestamps. It
// stores events by value: no per-event allocation (the former
// container/heap boxing and the later *event pointers were the hottest
// allocation site of the engine), and sift moves are plain struct
// copies within one cache-friendly array.
type eventHeap []event

//dtn:allocfree
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//dtn:allocfree steady state reuses the pooled backing array
func (h *eventHeap) push(e event) {
	//lint:allow allocfree amortized growth: the backing array is the event pool
	*h = append(*h, e)
	q := *h
	// Sift up.
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//dtn:allocfree
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	// Clear the vacated slot so the popped callback is not retained by
	// the pool's backing array.
	q[n] = event{}
	q = q[:n]
	*h = q
	// Sift down.
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		next := left
		if right := left + 1; right < n && q.less(right, left) {
			next = right
		}
		if !q.less(next, i) {
			break
		}
		q[i], q[next] = q[next], q[i]
		i = next
	}
	return top
}

// Simulator is the event loop. The zero value is not usable; call New.
type Simulator struct {
	now       Time
	queue     eventHeap
	seq       uint64
	stopped   bool
	processed uint64

	// Observability counters, cached at SetRecorder time. They stay nil
	// when no recorder is attached, and Counter methods are nil-safe,
	// so the dispatch loop pays one predictable branch per event and no
	// allocation either way (asserted by TestDispatchZeroAlloc).
	cEvents *obs.Counter
	cTicks  *obs.Counter
}

// New creates a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// SetRecorder attaches observability counters (sim/events_dispatched,
// sim/ticks) to the event loop. A nil recorder detaches them. The
// counters are registered once here so the per-event cost is a plain
// increment, never a lookup.
func (s *Simulator) SetRecorder(r *obs.Recorder) {
	if r == nil {
		s.cEvents, s.cTicks = nil, nil
		return
	}
	s.cEvents = r.Counter("sim", "events_dispatched")
	s.cTicks = r.Counter("sim", "ticks")
}

// Processed returns the cumulative number of events dispatched over the
// simulator's lifetime (the events/sec numerator of the replay
// benchmarks).
func (s *Simulator) Processed() uint64 { return s.processed }

// ErrPast reports an attempt to schedule an event before the current
// virtual time.
var ErrPast = errors.New("sim: cannot schedule event in the past")

// pastErr builds the ErrPast error for a rejected timestamp. Kept out
// of Schedule so the scheduling fast path stays allocation-free — the
// fmt.Errorf only runs (and allocates) on the failure path.
func (s *Simulator) pastErr(at Time) error {
	return fmt.Errorf("%w: at=%v now=%v", ErrPast, at, s.now)
}

// Schedule runs fn at virtual time at. Events at equal times run in
// scheduling order.
//
//dtn:allocfree the hot scheduling path; error construction is hoisted
func (s *Simulator) Schedule(at Time, fn func()) error {
	if at < s.now {
		return s.pastErr(at)
	}
	s.seq++
	s.queue.push(event{at: at, seq: s.seq, fn: fn})
	return nil
}

// ReservedSeqBase is the sequence floor the contact feeder reserves:
// lazily fed contact-begin events carry explicit sequence numbers below
// it, while every Schedule call after ReserveSeqs draws numbers above
// it. The (at, seq) dispatch order then matches a bulk preload exactly
// — contact begins first among equal timestamps, everything else in
// scheduling order — which keeps streamed replays byte-identical to
// materialized ones. 1<<40 leaves room for a trillion contacts.
const ReservedSeqBase uint64 = 1 << 40

// ScheduleSeq runs fn at virtual time at with an explicit sequence
// number instead of the auto-assigned one. It is the contact feeder's
// tool for lazy event injection: the i-th contact keeps sequence i no
// matter when it is actually pushed. Callers must have reserved the
// explicit range with ReserveSeqs; seq must be below the reserved base
// and unique per (at, seq) pair.
//
//dtn:allocfree the streaming feeder path; error construction is hoisted
func (s *Simulator) ScheduleSeq(at Time, seq uint64, fn func()) error {
	if at < s.now {
		return s.pastErr(at)
	}
	s.queue.push(event{at: at, seq: seq, fn: fn})
	return nil
}

// ReserveSeqs raises the auto sequence counter to at least base so
// every subsequent Schedule draws sequence numbers above it, leaving
// [1, base] to ScheduleSeq callers. Idempotent; raising the counter
// never reorders already-queued events.
func (s *Simulator) ReserveSeqs(base uint64) {
	if s.seq < base {
		s.seq = base
	}
}

// After runs fn d seconds from now; d must be non-negative.
//
//dtn:allocfree
func (s *Simulator) After(d float64, fn func()) error {
	return s.Schedule(s.now+d, fn)
}

// Every runs fn at start, start+interval, ... until the returned cancel
// function is called or the simulation ends. The repetition reuses a
// single tick closure: each reschedule pushes one by-value event, so a
// running ticker never allocates.
func (s *Simulator) Every(start Time, interval float64, fn func()) (cancel func(), err error) {
	if interval <= 0 {
		return nil, errors.New("sim: Every requires a positive interval")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		s.cTicks.Inc()
		fn()
		if stopped { // fn may cancel
			return
		}
		// Ignoring the error: now+interval is never in the past.
		_ = s.Schedule(s.now+interval, tick)
	}
	if err := s.Schedule(start, tick); err != nil {
		return nil, err
	}
	return func() { stopped = true }, nil
}

// Stop makes Run/RunUntil return after the current event. The request
// is sticky: a Stop issued while no run is active (e.g. from a callback
// during a previous bounded run, or between runs) makes the next
// Run/RunUntil return immediately. Exactly one run entry consumes each
// Stop; the run after that proceeds normally.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the queue is empty or Stop is called.
// It returns the number of events processed.
func (s *Simulator) Run() int {
	n, _ := s.run(-1, false)
	return n
}

// RunUntil processes every event with timestamp <= t, then advances the
// clock to t. It returns the number of events processed.
func (s *Simulator) RunUntil(t Time) int {
	n, stopped := s.run(t, true)
	if !stopped && t > s.now {
		s.now = t
	}
	return n
}

// run is the dispatch loop shared by Run and RunUntil. It does not
// reset the stopped flag on entry — a Stop requested before the run
// must not be lost — and consumes the flag on exit so one Stop stops
// exactly one run.
//
//dtn:allocfree the per-event dispatch loop (TestDispatchZeroAlloc)
func (s *Simulator) run(t Time, bounded bool) (n int, stopped bool) {
	for len(s.queue) > 0 && !s.stopped {
		if bounded && s.queue[0].at > t {
			break
		}
		e := s.queue.pop()
		s.now = e.at
		e.fn()
		n++
		s.processed++
		s.cEvents.Inc()
	}
	stopped = s.stopped
	s.stopped = false
	return n, stopped
}

// Pending returns the number of queued events (diagnostics only).
func (s *Simulator) Pending() int { return len(s.queue) }

// NextEventAt returns the timestamp of the earliest queued event, or
// the current time when the queue is empty (the engine's Tick target).
func (s *Simulator) NextEventAt() Time {
	if len(s.queue) == 0 {
		return s.now
	}
	return s.queue[0].at
}
