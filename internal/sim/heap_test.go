package sim

import (
	"sort"
	"testing"

	"dtncache/internal/mathx"
)

// runHeapTrial schedules the given timestamps in order and checks that
// dispatch replays them exactly as a stable sort by (at, scheduling
// order) would — the (at, seq) min-heap contract.
func runHeapTrial(t *testing.T, times []Time) {
	t.Helper()
	type rec struct {
		at  Time
		idx int
	}
	want := make([]rec, len(times))
	s := New()
	var got []rec
	for i, at := range times {
		i, at := i, at
		want[i] = rec{at: at, idx: i}
		if err := s.Schedule(at, func() { got = append(got, rec{at: s.Now(), idx: i}) }); err != nil {
			t.Fatal(err)
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	if n := s.Run(); n != len(times) {
		t.Fatalf("processed %d events, want %d", n, len(times))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch[%d] = %+v, want %+v (input %v)", i, got[i], want[i], times)
		}
	}
}

// TestEventHeapMatchesReferenceSort drives random (at, seq)
// interleavings — many duplicate timestamps to stress tie-breaking —
// against the reference stable sort.
func TestEventHeapMatchesReferenceSort(t *testing.T) {
	rng := mathx.NewRand(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		// Small timestamp universe forces collisions, so the seq
		// tie-break does real work.
		universe := 1 + rng.Intn(8)
		times := make([]Time, n)
		for i := range times {
			times[i] = Time(rng.Intn(universe))
		}
		runHeapTrial(t, times)
	}
}

// FuzzEventHeapOrdering fuzzes raw byte strings into timestamp
// sequences and checks the same reference-sort property.
func FuzzEventHeapOrdering(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 1, 0})
	f.Add([]byte{5, 4, 3, 2, 1, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 0, 255, 0, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 256 {
			t.Skip()
		}
		times := make([]Time, len(raw))
		for i, b := range raw {
			times[i] = Time(b % 16) // dense universe: exercise ties
		}
		runHeapTrial(t, times)
	})
}

// TestHeapPopClearsSlot checks the pool invariant: a popped slot in the
// backing array must not retain the event's callback.
func TestHeapPopClearsSlot(t *testing.T) {
	var h eventHeap
	h.push(event{at: 1, seq: 1, fn: func() {}})
	h.push(event{at: 2, seq: 2, fn: func() {}})
	h.pop()
	h.pop()
	backing := h[:cap(h)]
	for i := range backing {
		if backing[i].fn != nil {
			t.Fatalf("slot %d retains callback after pop", i)
		}
	}
}
