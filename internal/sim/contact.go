package sim

import (
	"errors"
	"io"
	"sort"

	"dtncache/internal/mathx"
	"dtncache/internal/obs"
	"dtncache/internal/trace"
)

// Transfer is one message movement over an active contact. Sizes are in
// bits so they divide naturally by the link bandwidth in bits/second.
type Transfer struct {
	// From and To are the endpoints; both must belong to the session.
	From, To trace.NodeID
	// Bits is the message size; zero-size transfers complete immediately.
	Bits float64
	// Label tags the transfer for diagnostics and metrics ("data", "query", ...).
	Label string
	// OnDelivered fires when the transfer completes. It may enqueue
	// further transfers on the same (or another active) session.
	OnDelivered func(at Time)
	// OnDropped fires if the contact ends (or failure injection strikes)
	// before the transfer completes. Optional.
	OnDropped func(at Time)
}

// Session is one active contact with a serially-shared link, mirroring a
// Bluetooth pairing: transfers are served FIFO at the configured
// bandwidth and anything unfinished when the contact ends is dropped.
type Session struct {
	A, B       trace.NodeID
	Start, End Time

	driver   *Driver
	queue    []Transfer
	head     int // first unserved queue index; the prefix is spent
	busy     bool
	closed   bool
	sentBits float64

	// At most one transfer is in flight per session (the link is serial),
	// so its completion state lives on the session and onDone — a method
	// value created once per session — replaces a per-transfer closure.
	cur        Transfer
	curDropped bool
	onDone     func()

	// Pooling state. A session returns to the driver's free list only
	// when all three hold: the contact closed, its originally scheduled
	// end event fired (endFired), and no transfer is in flight. Waiting
	// for endFired means a force-closed session is never recycled while
	// its end event still points at it, so no generation counter is
	// needed. onEnd is the scheduled end event, a method value created
	// once per session object like onDone.
	endFired bool
	pooled   bool
	onEnd    func()
}

// Peer returns the other endpoint, or -1 if n is not part of the session.
func (s *Session) Peer(n trace.NodeID) trace.NodeID {
	switch n {
	case s.A:
		return s.B
	case s.B:
		return s.A
	default:
		return -1
	}
}

// Closed reports whether the contact has ended.
func (s *Session) Closed() bool { return s.closed }

// SentBits returns the number of bits delivered so far on this contact.
func (s *Session) SentBits() float64 { return s.sentBits }

// Enqueue schedules a transfer on this contact. It returns false if the
// session has already closed or the endpoints do not match the contact.
//
//dtn:allocfree steady state reuses the queue's backing array
func (s *Session) Enqueue(t Transfer) bool {
	if s.closed {
		return false
	}
	if !(t.From == s.A && t.To == s.B) && !(t.From == s.B && t.To == s.A) {
		return false
	}
	if t.Bits < 0 {
		return false
	}
	//lint:allow allocfree amortized growth: the queue rewinds and reuses its array
	s.queue = append(s.queue, t)
	if !s.busy {
		s.startNext()
	}
	return true
}

// startNext begins the next queued transfer, scheduling its completion.
// The fit check happens in place — an unfitting head stays queued (it
// will be reported dropped when the contact closes, and everything
// behind it in the FIFO cannot fit either), so no re-prepend copy.
//
//dtn:allocfree part of the armed-idle fault probe path
func (s *Session) startNext() {
	if s.head >= len(s.queue) {
		return
	}
	d := s.driver
	t := &s.queue[s.head]
	dur := t.Bits / d.bandwidth
	done := d.sim.Now() + dur
	if done > s.End {
		return
	}
	s.cur = *t
	// Clear the spent slot so delivered callbacks are not retained.
	*t = Transfer{}
	s.head++
	if s.head == len(s.queue) {
		// Fully drained: rewind so later enqueues reuse the backing array.
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.curDropped = d.dropProb > 0 && d.rng.Bernoulli(d.dropProb)
	if d.faults != nil && d.faults.KillTransfer(s.cur.From, s.cur.To, s.cur.Bits, s.cur.Label) {
		s.curDropped = true
	}
	s.busy = true
	// Scheduling relative to now never fails.
	_ = d.sim.Schedule(done, s.onDone)
}

// finishTransfer completes the in-flight transfer; scheduled as the
// session's reusable onDone callback.
//
//dtn:allocfree per-transfer completion on the contact hot path
func (s *Session) finishTransfer() {
	d := s.driver
	s.busy = false
	t := s.cur
	s.cur = Transfer{}
	if s.closed {
		if t.OnDropped != nil {
			t.OnDropped(d.sim.Now())
		}
		d.releaseSession(s)
		return
	}
	if s.curDropped {
		d.droppedTransfers++
		d.cDropped.Inc()
		if t.OnDropped != nil {
			t.OnDropped(d.sim.Now())
		}
	} else {
		s.sentBits += t.Bits
		d.deliveredTransfers++
		d.cDelivered.Inc()
		d.deliveredByLabel[t.Label]++
		d.bitsByLabel[t.Label] += t.Bits
		if t.OnDelivered != nil {
			t.OnDelivered(d.sim.Now())
		}
	}
	if !s.closed && !s.busy {
		s.startNext()
	}
	if s.closed {
		d.releaseSession(s)
	}
}

// close ends the session, dropping all queued transfers. The queue's
// backing array is kept (slots cleared, length rewound) so a pooled
// session reuses it on its next contact.
func (s *Session) close(at Time) {
	if s.closed {
		return
	}
	s.closed = true
	for i := s.head; i < len(s.queue); i++ {
		if s.queue[i].OnDropped != nil {
			s.queue[i].OnDropped(at)
		}
	}
	for i := s.head; i < len(s.queue); i++ {
		s.queue[i] = Transfer{}
	}
	s.queue = s.queue[:0]
	s.head = 0
}

// endContact is the session's scheduled end event (the onEnd method
// value).
//
//dtn:allocfree per-contact teardown on the replay hot path
func (s *Session) endContact() { s.driver.sessionEnd(s) }

// Handler receives contact lifecycle callbacks. Implementations hold the
// protocol logic (caching scheme, routing). Sessions are pooled: a
// handler must not retain a *Session past its ContactEnd callback — the
// driver recycles the object for a later contact.
type Handler interface {
	// ContactStart fires when a contact begins. The handler reacts by
	// enqueueing transfers on the session.
	ContactStart(s *Session)
	// ContactEnd fires when the contact closes, after pending transfers
	// have been dropped.
	ContactEnd(s *Session)
}

// DriverOption configures a Driver.
type DriverOption func(*Driver)

// WithBandwidth sets the link bandwidth in bits/second. The default is
// 2.1 Mb/s (Bluetooth EDR, as in the paper's setup).
func WithBandwidth(bitsPerSec float64) DriverOption {
	return func(d *Driver) { d.bandwidth = bitsPerSec }
}

// Bandwidth returns the link bandwidth in bits/second. Provenance
// spans divide transfer sizes by this value — the exact float
// arithmetic the driver uses for link service time — so attributed
// transfer durations match the simulated ones bitwise.
func (d *Driver) Bandwidth() float64 { return d.bandwidth }

// WithDropProb enables failure injection: each transfer independently
// fails with probability p even if it fits in the contact. The driver
// takes ownership of the stream and draws from it on every transfer.
//
//dtn:rngboundary pass a freshly derived stream, never a shared alias
func WithDropProb(p float64, rng *mathx.Rand) DriverOption {
	return func(d *Driver) { d.dropProb = p; d.rng = rng }
}

// FaultProbe is the driver's view of a fault-injection engine
// (internal/fault). All methods are consulted on the contact hot path;
// a nil probe keeps every site at a single branch.
type FaultProbe interface {
	// NodeDown reports whether the node is currently crashed. Contacts
	// touching a down node are skipped entirely.
	NodeDown(n trace.NodeID) bool
	// TruncateContact may shorten a contact; it returns the effective
	// end time (>= c.Start). Returning c.End or later leaves the
	// contact untouched.
	TruncateContact(c trace.Contact) Time
	// KillTransfer reports whether an in-flight transfer should fail
	// mid-flight despite fitting in the contact.
	KillTransfer(from, to trace.NodeID, bits float64, label string) bool
}

// WithFaults installs a fault-injection probe on the driver. A nil
// probe is the default: no fault checks on the hot path.
func WithFaults(p FaultProbe) DriverOption {
	return func(d *Driver) { d.faults = p }
}

// WithRecorder attaches observability to the contact layer: contact
// begin/end trace events, delivered/dropped transfer counters and a
// contact-duration histogram. A nil recorder leaves every site on its
// branch-only disabled path.
func WithRecorder(r *obs.Recorder) DriverOption {
	return func(d *Driver) {
		d.rec = r
		d.cDelivered = r.Counter("contact", "transfers_delivered")
		d.cDropped = r.Counter("contact", "transfers_dropped")
		d.hDuration = r.Histogram("contact", "duration_seconds", ContactDurationBounds)
	}
}

// ContactDurationBounds buckets contact durations (seconds): sub-minute
// brushes through multi-hour pairings.
var ContactDurationBounds = []float64{30, 60, 120, 300, 600, 1800, 3600, 7200, 14400}

// DefaultBandwidth is 2.1 Mb/s in bits per second.
const DefaultBandwidth = 2.1e6

// Driver replays a contact trace into a Simulator, creating Sessions and
// invoking the Handler.
type Driver struct {
	sim       *Simulator
	handler   Handler
	bandwidth float64
	dropProb  float64
	rng       *mathx.Rand
	faults    FaultProbe

	active map[[2]trace.NodeID]*Session

	// Contact feeder. The driver keeps exactly one pending contact-begin
	// event in the heap at any time, pulled lazily from feed; the heap
	// stays O(active sessions) instead of O(trace) whether the source is
	// a materialized slice or a streaming reader. feedFn is a method
	// value created once; feedSeq is the 1-based emission index used as
	// the begin event's explicit sequence number (see ReservedSeqBase).
	feed     trace.ContactSource
	feedNext trace.Contact
	feedSeq  uint64
	feedFn   func()
	feedErr  error
	mergeSrc *trace.MergeSource

	// free is the session pool; see Session's pooling fields.
	free []*Session

	deliveredTransfers int
	droppedTransfers   int
	mergedContacts     int
	skippedContacts    int
	injectedContacts   int
	injectedCoalesced  int
	deliveredByLabel   map[string]int
	bitsByLabel        map[string]float64

	rec        *obs.Recorder
	cDelivered *obs.Counter
	cDropped   *obs.Counter
	hDuration  *obs.Histogram
}

// NewDriver creates a driver bound to the simulator and handler.
func NewDriver(s *Simulator, h Handler, opts ...DriverOption) *Driver {
	d := &Driver{
		sim:              s,
		handler:          h,
		bandwidth:        DefaultBandwidth,
		active:           make(map[[2]trace.NodeID]*Session),
		deliveredByLabel: make(map[string]int),
		bitsByLabel:      make(map[string]float64),
	}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Stats returns delivered/dropped transfer counts and the number of
// overlapping same-pair contacts merged. For a materialized Load the
// merge count is known up front; for a LoadStream it reflects the
// contacts folded so far (equal to the materialized count once the
// replay has consumed the source).
func (d *Driver) Stats() (delivered, dropped, merged int) {
	merged = d.mergedContacts
	if d.mergeSrc != nil {
		merged = d.mergeSrc.MergedCount()
	}
	return d.deliveredTransfers, d.droppedTransfers, merged
}

// FeedErr returns the sticky error, if any, the contact source reported
// mid-replay. A non-nil value means the run was stopped on a truncated
// or corrupt stream and its results must be discarded.
func (d *Driver) FeedErr() error { return d.feedErr }

// LabelStats returns the delivered transfer count and total bits for a
// transfer label ("push", "query", "reply", ...), letting experiments
// break traffic down by protocol function.
func (d *Driver) LabelStats(label string) (delivered int, bits float64) {
	return d.deliveredByLabel[label], d.bitsByLabel[label]
}

// Session returns the active session between a and b, or nil.
func (d *Driver) Session(a, b trace.NodeID) *Session {
	return d.active[pairKey(a, b)]
}

// ActivePeers returns the nodes currently in contact with n, in
// deterministic (ascending) order.
func (d *Driver) ActivePeers(n trace.NodeID) []trace.NodeID {
	var peers []trace.NodeID
	for k, s := range d.active {
		if s.closed {
			continue
		}
		if k[0] == n {
			peers = append(peers, k[1])
		} else if k[1] == n {
			peers = append(peers, k[0])
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// ErrBadTrace reports a trace that fails validation at load time.
var ErrBadTrace = errors.New("sim: invalid trace")

// Load replays the trace's contacts. Overlapping contacts of the same
// pair are merged into a single longer contact. Load (or LoadStream)
// may be called once per driver, before Run. Contact-begin events are
// fed into the simulator lazily, one pending at a time, under explicit
// sequence numbers that reproduce the dispatch order of a bulk preload
// exactly (see ReservedSeqBase).
func (d *Driver) Load(tr *trace.Trace) error {
	if err := tr.Validate(); err != nil {
		return errors.Join(ErrBadTrace, err)
	}
	merged := MergeOverlaps(tr.Contacts)
	d.mergedContacts = len(tr.Contacts) - len(merged)
	return d.startFeed(trace.NewSliceSource(merged))
}

// LoadStream replays contacts from a streaming source instead of a
// materialized trace, keeping memory O(active sessions). The source
// must yield valid contacts in nondecreasing start order (a
// trace.StreamReader enforces both); overlapping same-pair contacts are
// folded online into exactly the merged sequence Load produces. A
// source error mid-replay stops the simulation; check FeedErr after the
// run.
func (d *Driver) LoadStream(src trace.ContactSource) error {
	ms := trace.NewMergeSource(src)
	d.mergeSrc = ms
	return d.startFeed(ms)
}

// startFeed installs the merged contact source and primes the feeder
// with its first contact.
func (d *Driver) startFeed(src trace.ContactSource) error {
	if d.feed != nil {
		return errors.New("sim: driver already loaded")
	}
	d.feed = src
	d.feedFn = d.feedStep
	d.sim.ReserveSeqs(ReservedSeqBase)
	return d.scheduleNextContact()
}

// scheduleNextContact pulls the next merged contact and schedules its
// begin event under the next explicit sequence number.
//
//dtn:allocfree the steady-state feeder path; errors are terminal
func (d *Driver) scheduleNextContact() error {
	c, err := d.feed.NextContact()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		d.feedErr = err
		return err
	}
	d.feedSeq++
	if d.feedSeq >= ReservedSeqBase {
		d.feedErr = errors.New("sim: contact count exceeds the reserved sequence range")
		return d.feedErr
	}
	d.feedNext = c
	if err := d.sim.ScheduleSeq(c.Start, d.feedSeq, d.feedFn); err != nil {
		d.feedErr = err
		return err
	}
	return nil
}

// feedStep is the pending contact-begin event: it opens the session for
// the pulled contact and chains the next one into the heap. The chain
// is scheduled first so an equal-timestamp successor still dispatches
// after this one (its sequence number is larger).
//
//dtn:allocfree per-contact replay hot path
func (d *Driver) feedStep() {
	c := d.feedNext
	if err := d.scheduleNextContact(); err != nil {
		// A truncated or corrupt stream cannot be surfaced to a caller
		// mid-run; stop the simulation and leave the error in FeedErr.
		d.sim.Stop()
	}
	d.beginContact(c)
}

// InjectContact schedules a live contact outside the loaded feed: the
// begin event enters the heap at c.Start under an ordinary (non-
// reserved) sequence number, so it dispatches after any feed contact at
// the same instant. An injected contact whose pair already has an open
// session when its begin event fires is dropped and counted as
// coalesced — it does not extend the active session — which makes
// re-ingesting a duplicate of an in-progress contact harmless. c.Start
// must not be in the past (the scheduler rejects it).
func (d *Driver) InjectContact(c trace.Contact) error {
	if c.A > c.B {
		// Normalize like SortContacts so pair keys agree with the feed.
		c.A, c.B = c.B, c.A
	}
	return d.sim.Schedule(c.Start, func() { d.beginInjected(c) })
}

// beginInjected opens an injected contact's session unless its pair is
// already connected.
func (d *Driver) beginInjected(c trace.Contact) {
	if s := d.active[pairKey(c.A, c.B)]; s != nil && !s.closed {
		d.injectedCoalesced++
		return
	}
	d.injectedContacts++
	d.beginContact(c)
}

// InjectedStats returns the number of injected contacts that opened a
// session and the number coalesced into an already-active same-pair
// session.
func (d *Driver) InjectedStats() (opened, coalesced int) {
	return d.injectedContacts, d.injectedCoalesced
}

func (d *Driver) beginContact(c trace.Contact) {
	if d.faults != nil {
		if d.faults.NodeDown(c.A) || d.faults.NodeDown(c.B) {
			d.skippedContacts++
			return
		}
		if end := d.faults.TruncateContact(c); end < c.End {
			c.End = end
		}
	}
	key := pairKey(c.A, c.B)
	s := d.getSession(c)
	d.active[key] = s
	d.rec.ContactBegin(d.sim.Now(), int32(c.A), int32(c.B))
	d.hDuration.Observe(c.End - c.Start)
	// End event scheduled before the handler runs so an immediate Stop
	// inside the handler still cleans up.
	_ = d.sim.Schedule(c.End, s.onEnd)
	d.handler.ContactStart(s)
}

// getSession pops a recycled session from the pool or allocates one.
//
//dtn:allocfree steady state pops from the free list
func (d *Driver) getSession(c trace.Contact) *Session {
	if n := len(d.free); n > 0 {
		s := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		s.A, s.B, s.Start, s.End = c.A, c.B, c.Start, c.End
		s.busy, s.closed, s.sentBits = false, false, 0
		s.cur, s.curDropped = Transfer{}, false
		s.endFired, s.pooled = false, false
		return s
	}
	//lint:allow allocfree cold path: the pool grows to the peak concurrent contact count
	s := &Session{A: c.A, B: c.B, Start: c.Start, End: c.End, driver: d}
	//lint:allow allocfree cold path: method values bound once, reused for the session's pooled lifetime
	s.onDone, s.onEnd = s.finishTransfer, s.endContact
	return s
}

// releaseSession returns a session to the pool once it is fully quiet:
// closed, its scheduled end event consumed, and no transfer in flight.
//
//dtn:allocfree steady state reuses the free list's backing array
func (d *Driver) releaseSession(s *Session) {
	if !s.closed || !s.endFired || s.busy || s.pooled {
		return
	}
	s.pooled = true
	//lint:allow allocfree amortized growth: the free list is the session pool
	d.free = append(d.free, s)
}

// sessionEnd handles a session's scheduled end event. A session
// force-closed early by CloseNode has closed set, so the event fires no
// second ContactEnd — it only marks the session recyclable.
//
//dtn:allocfree per-contact teardown on the replay hot path
func (d *Driver) sessionEnd(s *Session) {
	s.endFired = true
	if s.closed {
		d.releaseSession(s)
		return
	}
	d.endSession(pairKey(s.A, s.B), s)
}

// endSession tears down a session at its scheduled (or forced) end. A
// session that already closed is left alone.
func (d *Driver) endSession(key [2]trace.NodeID, s *Session) {
	if s.closed {
		return
	}
	s.close(d.sim.Now())
	if d.active[key] == s {
		delete(d.active, key)
	}
	d.rec.ContactEnd(d.sim.Now(), int32(s.A), int32(s.B), s.sentBits)
	d.handler.ContactEnd(s)
	d.releaseSession(s)
}

// CloseNode force-closes every active session touching n (a node
// crash), firing the usual drop callbacks and ContactEnd handlers in
// deterministic pair order. It returns the number of sessions closed.
func (d *Driver) CloseNode(n trace.NodeID) int {
	var keys [][2]trace.NodeID
	for k, s := range d.active {
		if s.closed {
			continue
		}
		if k[0] == n || k[1] == n {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		d.endSession(k, d.active[k])
	}
	return len(keys)
}

// BusyPairs returns the endpoint pairs with a transfer currently in
// flight, in deterministic order (invariant-checker support).
func (d *Driver) BusyPairs() [][2]trace.NodeID {
	var pairs [][2]trace.NodeID
	for k, s := range d.active {
		if s.busy && !s.closed {
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// SkippedContacts returns the number of traced contacts never opened
// because an endpoint was down at contact start.
func (d *Driver) SkippedContacts() int { return d.skippedContacts }

func pairKey(a, b trace.NodeID) [2]trace.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]trace.NodeID{a, b}
}

// MergeOverlaps coalesces overlapping or touching contacts of the same
// pair, exactly as Load does before scheduling sessions. Input must be
// sorted by start time; output is too. It is exported so the knowledge
// layer can count the same merged contacts the driver delivers to
// Handler.ContactStart (one Est.Observe per merged contact).
func MergeOverlaps(contacts []trace.Contact) []trace.Contact {
	last := make(map[[2]trace.NodeID]int) // pair -> index in out
	out := make([]trace.Contact, 0, len(contacts))
	for _, c := range contacts {
		key := pairKey(c.A, c.B)
		if i, ok := last[key]; ok && c.Start <= out[i].End {
			if c.End > out[i].End {
				out[i].End = c.End
			}
			continue
		}
		out = append(out, c)
		last[key] = len(out) - 1
	}
	// Merging can only extend ends; starts remain sorted.
	return out
}
