package sim

import (
	"errors"
	"testing"
)

func TestSimulatorRunsEventsInOrder(t *testing.T) {
	s := New()
	var order []int
	mustSchedule(t, s, 30, func() { order = append(order, 3) })
	mustSchedule(t, s, 10, func() { order = append(order, 1) })
	mustSchedule(t, s, 20, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Errorf("processed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("clock = %v, want 30", s.Now())
	}
}

func TestSimulatorTiesFIFOByScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, s, 5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	s := New()
	mustSchedule(t, s, 10, func() {})
	s.Run()
	if err := s.Schedule(5, func() {}); !errors.Is(err, ErrPast) {
		t.Errorf("want ErrPast, got %v", err)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var fired []Time
	mustSchedule(t, s, 10, func() {
		_ = s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Errorf("fired = %v, want [15]", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var count int
	for _, at := range []Time{5, 10, 15, 20} {
		mustSchedule(t, s, at, func() { count++ })
	}
	if n := s.RunUntil(12); n != 2 {
		t.Errorf("RunUntil processed %d, want 2", n)
	}
	if s.Now() != 12 {
		t.Errorf("clock = %v, want 12", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
}

func TestStop(t *testing.T) {
	s := New()
	var count int
	mustSchedule(t, s, 1, func() { count++; s.Stop() })
	mustSchedule(t, s, 2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped)", count)
	}
	// Run again resumes.
	s.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 after resume", count)
	}
}

func TestStopBeforeRunIsSticky(t *testing.T) {
	s := New()
	var count int
	mustSchedule(t, s, 1, func() { count++ })
	// A Stop issued while no run is active must not be lost: the next
	// run consumes it and returns immediately.
	s.Stop()
	if n := s.Run(); n != 0 {
		t.Errorf("Run after sticky Stop processed %d events, want 0", n)
	}
	if count != 0 {
		t.Errorf("count = %d, want 0 (stopped before dispatch)", count)
	}
	// One Stop stops exactly one run; the next proceeds normally.
	if n := s.Run(); n != 1 {
		t.Errorf("second Run processed %d events, want 1", n)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 after resume", count)
	}
}

func TestStopBeforeRunUntilIsSticky(t *testing.T) {
	s := New()
	var count int
	mustSchedule(t, s, 5, func() { count++ })
	s.Stop()
	if n := s.RunUntil(10); n != 0 {
		t.Errorf("RunUntil after sticky Stop processed %d events, want 0", n)
	}
	// A stopped bounded run must not advance the clock past unprocessed
	// events.
	if s.Now() != 0 {
		t.Errorf("clock = %v, want 0 (stopped run must not advance)", s.Now())
	}
	if n := s.RunUntil(10); n != 1 {
		t.Errorf("second RunUntil processed %d events, want 1", n)
	}
	if count != 1 || s.Now() != 10 {
		t.Errorf("count = %d clock = %v, want 1 and 10", count, s.Now())
	}
}

func TestStopFromBoundedRunCallback(t *testing.T) {
	// The original regression: a callback in a bounded run requests a
	// stop near its end; the request must terminate that run (or, if the
	// run already drained, the next one) rather than being reset.
	s := New()
	var count int
	mustSchedule(t, s, 5, func() { count++; s.Stop() })
	mustSchedule(t, s, 15, func() { count++ })
	if n := s.RunUntil(10); n != 1 {
		t.Errorf("bounded run processed %d events, want 1", n)
	}
	// The Stop fired inside the bounded run and was consumed by it; the
	// follow-up run proceeds.
	s.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var at []Time
	cancel, err := s.Every(10, 5, func() { at = append(at, s.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	mustSchedule(t, s, 22, func() { cancel() })
	s.Run()
	want := []Time{10, 15, 20}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", at, want)
		}
	}
}

func TestEveryRejectsBadInterval(t *testing.T) {
	s := New()
	if _, err := s.Every(0, 0, func() {}); err == nil {
		t.Error("want error for zero interval")
	}
	if _, err := s.Every(0, -1, func() {}); err == nil {
		t.Error("want error for negative interval")
	}
}

func TestEveryCancelFromWithinFn(t *testing.T) {
	s := New()
	var cancel func()
	count := 0
	var err error
	cancel, err = s.Every(0, 1, func() {
		count++
		if count == 3 {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func mustSchedule(t *testing.T, s *Simulator, at Time, fn func()) {
	t.Helper()
	if err := s.Schedule(at, fn); err != nil {
		t.Fatal(err)
	}
}
