package sim

import (
	"testing"

	"dtncache/internal/obs"
)

// TestDispatchZeroAlloc pins the zero-cost-when-off contract of the
// observability layer: with no recorder attached (the default), one
// steady-state Schedule+fire cycle must not allocate — the nil-counter
// path is a single branch. This is the regression assertion behind
// BenchmarkReplayDispatch's 0 allocs/op.
//
//dtn:allocfree the measured closures may not allocate
func TestDispatchZeroAlloc(t *testing.T) {
	s := New()
	count := 0
	fn := func() { count++ }
	// Warm the heap's backing array so steady state starts immediately.
	_ = s.After(1, fn)
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		_ = s.After(1, fn)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("dispatch with recorder disabled: %.1f allocs/op, want 0", allocs)
	}
}

// TestDispatchZeroAllocWithRecorder asserts the enabled path stays
// allocation-free too: counters are cached at SetRecorder time, so the
// per-event cost is an atomic add, never a lookup or boxing.
//
//dtn:allocfree the measured closures may not allocate
func TestDispatchZeroAllocWithRecorder(t *testing.T) {
	s := New()
	rec := obs.NewRecorder(nil)
	s.SetRecorder(rec)
	count := 0
	fn := func() { count++ }
	_ = s.After(1, fn)
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		_ = s.After(1, fn)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("dispatch with metrics recorder: %.1f allocs/op, want 0", allocs)
	}
	if c := rec.Counter("sim", "events_dispatched").Value(); c == 0 {
		t.Error("events_dispatched counter did not advance")
	}
}

// TestEveryTickZeroAlloc guards the ticker against resurrecting its
// historical per-tick closure allocation: a running Every reuses one
// tick closure, with or without the tick counter attached, so advancing
// through ticks allocates nothing. (RunUntil, not Run: the ticker
// reschedules itself forever.)
//
//dtn:allocfree the measured closures may not allocate
func TestEveryTickZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  *obs.Recorder
	}{
		{"recorder-off", nil},
		{"recorder-on", obs.NewRecorder(nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			s.SetRecorder(tc.rec)
			ticks := 0
			cancel, err := s.Every(0, 1, func() { ticks++ })
			if err != nil {
				t.Fatal(err)
			}
			defer cancel()
			s.RunUntil(10) // warm: heap grown, ticker in steady state
			next := 10.0
			allocs := testing.AllocsPerRun(100, func() {
				next += 10
				s.RunUntil(next)
			})
			if allocs != 0 {
				t.Errorf("Every tick: %.1f allocs/op, want 0", allocs)
			}
			if ticks == 0 {
				t.Fatal("ticker never fired")
			}
		})
	}
}
