// Package graph implements the network contact graph of Sec. III-B and
// the NCL machinery of Sec. IV: online estimation of pairwise contact
// rates, shortest opportunistic paths (Definition 1), hypoexponential
// path weights (Eq. 2), and the probabilistic NCL selection metric C_i
// (Eq. 3) with top-K central-node selection.
//
//dtn:determinism
package graph

import (
	"errors"
	"sort"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// DefaultMaxHops caps the length of opportunistic paths. The paper's
// "shortest opportunistic path" minimizes delivery delay; minimizing the
// expected delay with a small hop cap is the standard decomposable proxy
// (the hypoexponential weight itself is not additive along paths).
const DefaultMaxHops = 5

// RateEstimator accumulates pairwise contact counts and converts them to
// time-averaged Poisson contact rates, exactly as Sec. III-B prescribes
// ("calculated at real-time from the cumulative contacts ... in a
// time-average manner").
type RateEstimator struct {
	n      int
	counts []int // n*n, symmetric
	start  float64
}

// NewRateEstimator creates an estimator for n nodes, with the observation
// window starting at virtual time start.
func NewRateEstimator(n int, start float64) *RateEstimator {
	return &RateEstimator{n: n, counts: make([]int, n*n), start: start}
}

// Nodes returns the node count.
func (e *RateEstimator) Nodes() int { return e.n }

// Observe records one contact between a and b.
func (e *RateEstimator) Observe(a, b trace.NodeID) {
	if a == b || int(a) >= e.n || int(b) >= e.n || a < 0 || b < 0 {
		return
	}
	e.counts[int(a)*e.n+int(b)]++
	e.counts[int(b)*e.n+int(a)]++
}

// Count returns the cumulative contact count of the pair.
func (e *RateEstimator) Count(a, b trace.NodeID) int {
	return e.counts[int(a)*e.n+int(b)]
}

// Rate returns the estimated contact rate of the pair at time now, in
// contacts per second: cumulative contacts divided by elapsed time.
func (e *RateEstimator) Rate(a, b trace.NodeID, now float64) float64 {
	elapsed := now - e.start
	if elapsed <= 0 {
		return 0
	}
	return float64(e.Count(a, b)) / elapsed
}

// NodeContacts returns the total number of contacts node n has
// participated in (the degree-of-activity statistic used by simple
// centrality baselines).
func (e *RateEstimator) NodeContacts(n trace.NodeID) int {
	if n < 0 || int(n) >= e.n {
		return 0
	}
	total := 0
	row := e.counts[int(n)*e.n : int(n)*e.n+e.n]
	for _, c := range row {
		total += c
	}
	return total
}

// Snapshot builds the contact graph implied by the estimates at time now.
func (e *RateEstimator) Snapshot(now float64) *Graph {
	g := NewGraph(e.n)
	elapsed := now - e.start
	if elapsed <= 0 {
		return g
	}
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			if c := e.counts[i*e.n+j]; c > 0 {
				g.SetRate(trace.NodeID(i), trace.NodeID(j), float64(c)/elapsed)
			}
		}
	}
	return g
}

// Graph is the undirected network contact graph with Poisson contact
// rates on its edges. A zero rate means the pair never meets.
type Graph struct {
	n     int
	rates []float64 // n*n symmetric
}

// NewGraph creates an empty graph over n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, rates: make([]float64, n*n)}
}

// FromMatrix builds a graph from a symmetric rate matrix.
func FromMatrix(rates [][]float64) (*Graph, error) {
	n := len(rates)
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		if len(rates[i]) != n {
			return nil, errors.New("graph: rate matrix not square")
		}
		for j := 0; j < n; j++ {
			if rates[i][j] != rates[j][i] {
				return nil, errors.New("graph: rate matrix not symmetric")
			}
			if i != j && rates[i][j] > 0 {
				g.rates[i*n+j] = rates[i][j]
			}
		}
	}
	return g, nil
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// Rate returns the contact rate of the pair (0 if never in contact).
func (g *Graph) Rate(a, b trace.NodeID) float64 {
	if a == b || a < 0 || b < 0 || int(a) >= g.n || int(b) >= g.n {
		return 0
	}
	return g.rates[int(a)*g.n+int(b)]
}

// SetRate sets the symmetric contact rate of a pair; non-positive rates
// remove the edge.
func (g *Graph) SetRate(a, b trace.NodeID, rate float64) {
	if a == b || a < 0 || b < 0 || int(a) >= g.n || int(b) >= g.n {
		return
	}
	if rate < 0 {
		rate = 0
	}
	g.rates[int(a)*g.n+int(b)] = rate
	g.rates[int(b)*g.n+int(a)] = rate
}

// Neighbors returns the nodes with a positive contact rate to v, in
// ascending order.
func (g *Graph) Neighbors(v trace.NodeID) []trace.NodeID {
	var out []trace.NodeID
	row := g.rates[int(v)*g.n : int(v)*g.n+g.n]
	for j, r := range row {
		if r > 0 {
			out = append(out, trace.NodeID(j))
		}
	}
	return out
}

// Paths holds the shortest opportunistic paths from one source to every
// other node: hop-capped minimum-expected-delay paths whose weights
// (delivery probability within T) follow Eqs. (1)-(2).
//
// Per-destination data is stored compactly for reachable destinations
// only: idx maps a destination to its reachable index (-1 otherwise),
// hop rates live concatenated in one slab sliced by ratesOff, and the
// hypoexponential cache is indexed by the same compact index. On sparse
// graphs (a city district reaches only its own community) this keeps a
// Paths proportional to what the source can actually reach instead of
// paying three full-width arrays per source.
type Paths struct {
	src       trace.NodeID
	delay     []float64 // min expected delay per node; +Inf if unreachable
	idx       []int32   // node -> compact reachable index, or -1
	ratesOff  []int32   // reach+1 offsets into ratesSlab, in hop order
	ratesSlab []float64 // concatenated hop rates of every reachable path
	dists     []*mathx.Hypoexp
}

// PathScratch holds the layered-DP working arrays of Paths so repeated
// path computations (the knowledge builder runs one per dirty source
// per snapshot) reuse them instead of reallocating. A scratch is not
// safe for concurrent use; pool one per worker. The zero value is
// ready.
type PathScratch struct {
	dist   [][]float64
	choice [][]trace.NodeID
}

// layers resizes the scratch to hold maxHops+1 layers of width n and
// returns them. Contents are not cleared; PathsInto re-initializes
// every cell it reads.
func (ps *PathScratch) layers(maxHops, n int) ([][]float64, [][]trace.NodeID) {
	h := maxHops + 1
	if cap(ps.dist) < h {
		ps.dist = make([][]float64, h)
		ps.choice = make([][]trace.NodeID, h)
	}
	ps.dist = ps.dist[:h]
	ps.choice = ps.choice[:h]
	for i := 0; i < h; i++ {
		if cap(ps.dist[i]) < n {
			ps.dist[i] = make([]float64, n)
			ps.choice[i] = make([]trace.NodeID, n)
		}
		ps.dist[i] = ps.dist[i][:n]
		ps.choice[i] = ps.choice[i][:n]
	}
	return ps.dist, ps.choice
}

// Paths computes shortest opportunistic paths from src with at most
// maxHops hops (DefaultMaxHops if maxHops <= 0) using layered relaxation
// (Bellman-Ford over hop counts), which is exact for hop-capped minimum
// expected delay.
func (g *Graph) Paths(src trace.NodeID, maxHops int) *Paths {
	return g.PathsInto(src, maxHops, nil)
}

// PathsInto is Paths with caller-provided working memory: scratch (nil
// for one-shot use) supplies the DP layers, so a pooled scratch makes
// repeated calls allocate only the returned Paths. The result never
// aliases the scratch and scratch identity never affects the result.
func (g *Graph) PathsInto(src trace.NodeID, maxHops int, scratch *PathScratch) *Paths {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	if scratch == nil {
		scratch = &PathScratch{}
	}
	n := g.n
	const inf = 1e300
	// Layered DP: dist[h][v] is the minimum expected delay from src to v
	// using at most h hops; choice[h][v] is the last hop's upstream node,
	// or -1 when the h-hop value is carried over from h-1 hops.
	dist, choice := scratch.layers(maxHops, n)
	for h := range dist {
		for v := range dist[h] {
			dist[h][v] = inf
			choice[h][v] = -1
		}
	}
	dist[0][src] = 0
	for h := 1; h <= maxHops; h++ {
		copy(dist[h], dist[h-1])
		improved := false
		for u := 0; u < n; u++ {
			du := dist[h-1][u]
			if du >= inf {
				continue
			}
			row := g.rates[u*n : u*n+n]
			for v := 0; v < n; v++ {
				r := row[v]
				if r <= 0 {
					continue
				}
				if nd := du + 1/r; nd < dist[h][v] {
					dist[h][v] = nd
					choice[h][v] = trace.NodeID(u)
					improved = true
				}
			}
		}
		if !improved {
			// No layer beyond h can improve either; collapse.
			for hh := h + 1; hh <= maxHops; hh++ {
				copy(dist[hh], dist[h])
			}
			break
		}
	}
	// Copy the final layer out of the scratch: the Paths must own its
	// delay slice so the scratch can be reused for the next source.
	final := make([]float64, n)
	copy(final, dist[maxHops])
	p := &Paths{
		src:   src,
		delay: final,
		idx:   make([]int32, n),
	}
	reach := 0
	for v := 0; v < n; v++ {
		p.idx[v] = -1
		if v != int(src) && final[v] < inf {
			reach++
		}
	}
	p.ratesOff = make([]int32, 1, reach+1)
	p.ratesSlab = make([]float64, 0, reach*maxHops)
	buf := make([]float64, 0, maxHops)
	for v := 0; v < n; v++ {
		if v == int(src) || final[v] >= inf {
			continue
		}
		// Recover the path by walking the DP layers downward.
		buf = buf[:0]
		cursor := trace.NodeID(v)
		for h := maxHops; h > 0 && cursor != src; h-- {
			u := choice[h][cursor]
			if u < 0 {
				continue // value carried from layer h-1
			}
			buf = append(buf, g.Rate(u, cursor))
			cursor = u
		}
		if cursor != src {
			p.delay[v] = inf
			continue
		}
		// Reverse into src->v hop order (the hypoexponential weight does
		// not depend on order, but diagnostics read better).
		for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
		p.idx[v] = int32(len(p.ratesOff) - 1)
		p.ratesSlab = append(p.ratesSlab, buf...)
		p.ratesOff = append(p.ratesOff, int32(len(p.ratesSlab)))
	}
	p.dists = make([]*mathx.Hypoexp, len(p.ratesOff)-1)
	return p
}

// hopRates returns the slab range of dst's path, or nil if dst is
// unreachable or the source itself.
func (p *Paths) hopRates(dst trace.NodeID) []float64 {
	k := p.idx[dst]
	if k < 0 {
		return nil
	}
	return p.ratesSlab[p.ratesOff[k]:p.ratesOff[k+1]]
}

// Source returns the path-tree root.
func (p *Paths) Source() trace.NodeID { return p.src }

// Reachable reports whether dst has an opportunistic path from the source.
func (p *Paths) Reachable(dst trace.NodeID) bool {
	if int(dst) >= len(p.delay) || dst < 0 {
		return false
	}
	return dst == p.src || p.idx[dst] >= 0
}

// ExpectedDelay returns the expected delay of the shortest opportunistic
// path to dst (0 for the source itself, +Inf-like 1e300 if unreachable).
func (p *Paths) ExpectedDelay(dst trace.NodeID) float64 { return p.delay[dst] }

// HopRates returns the contact rates along the path to dst (empty if
// unreachable or dst == src).
func (p *Paths) HopRates(dst trace.NodeID) []float64 {
	rates := p.hopRates(dst)
	out := make([]float64, len(rates))
	copy(out, rates)
	return out
}

// Hops returns the number of hops to dst (0 for the source, -1 if
// unreachable).
func (p *Paths) Hops(dst trace.NodeID) int {
	if dst == p.src {
		return 0
	}
	k := p.idx[dst]
	if k < 0 {
		return -1
	}
	return int(p.ratesOff[k+1] - p.ratesOff[k])
}

// Weight returns the opportunistic path weight p_{src,dst}(T): the
// probability that data is transmitted along the shortest opportunistic
// path within time T (Eq. 2). The weight to the source itself is 1, and 0
// for unreachable destinations.
func (p *Paths) Weight(dst trace.NodeID, t float64) float64 {
	if dst < 0 || int(dst) >= len(p.delay) {
		return 0
	}
	if dst == p.src {
		if t < 0 {
			return 0
		}
		return 1
	}
	k := p.idx[dst]
	if k < 0 {
		return 0
	}
	h := p.dists[k]
	if h == nil {
		var err error
		h, err = mathx.NewHypoexp(p.ratesSlab[p.ratesOff[k]:p.ratesOff[k+1]])
		if err != nil {
			return 0
		}
		p.dists[k] = h
	}
	return h.CDF(t)
}

// Materialize eagerly constructs the hypoexponential distribution of
// every reachable destination. Weight normally builds them lazily,
// mutating the receiver on first use per destination; after Materialize
// every Weight call is read-only, so a materialized Paths is safe for
// concurrent use (the contract knowledge snapshots rely on).
func (p *Paths) Materialize() {
	for k := range p.dists {
		if p.dists[k] != nil {
			continue
		}
		if h, err := mathx.NewHypoexp(p.ratesSlab[p.ratesOff[k]:p.ratesOff[k+1]]); err == nil {
			p.dists[k] = h
		}
	}
}

// AllPaths computes Paths from every node. The graph is undirected, so
// result[i].Weight(j, T) == result[j].Weight(i, T) up to tie-breaking.
func (g *Graph) AllPaths(maxHops int) []*Paths {
	out := make([]*Paths, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.Paths(trace.NodeID(i), maxHops)
	}
	return out
}

// Metric computes the NCL selection metric C_i of Eq. (3): the average
// probability that data can be transmitted from a random node to node i
// within time T.
func (g *Graph) Metric(i trace.NodeID, t float64, maxHops int) float64 {
	if g.n <= 1 {
		return 0
	}
	p := g.Paths(i, maxHops)
	var sum float64
	for j := 0; j < g.n; j++ {
		if trace.NodeID(j) == i {
			continue
		}
		sum += p.Weight(trace.NodeID(j), t)
	}
	return sum / float64(g.n-1)
}

// Metrics computes C_i for every node.
func (g *Graph) Metrics(t float64, maxHops int) []float64 {
	out := make([]float64, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.Metric(trace.NodeID(i), t, maxHops)
	}
	return out
}

// SelectNCLs returns the K nodes with the highest metric values (ties
// broken by ascending node ID), the paper's central-node selection rule.
func SelectNCLs(metrics []float64, k int) []trace.NodeID {
	if k <= 0 {
		return nil
	}
	idx := make([]trace.NodeID, len(metrics))
	for i := range idx {
		idx[i] = trace.NodeID(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := metrics[idx[a]], metrics[idx[b]]
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]trace.NodeID, k)
	copy(out, idx[:k])
	return out
}
