package graph

import (
	"math"
	"testing"

	"dtncache/internal/trace"
)

func TestRateEstimator(t *testing.T) {
	e := NewRateEstimator(3, 100)
	if e.Nodes() != 3 {
		t.Errorf("Nodes = %d", e.Nodes())
	}
	e.Observe(0, 1)
	e.Observe(0, 1)
	e.Observe(1, 2)
	// Invalid observations are ignored.
	e.Observe(0, 0)
	e.Observe(-1, 2)
	e.Observe(0, 9)
	if e.Count(0, 1) != 2 || e.Count(1, 0) != 2 {
		t.Errorf("Count(0,1) = %d, want symmetric 2", e.Count(0, 1))
	}
	if got := e.Rate(0, 1, 300); math.Abs(got-2.0/200) > 1e-12 {
		t.Errorf("Rate = %v, want 0.01", got)
	}
	if e.Rate(0, 1, 100) != 0 || e.Rate(0, 1, 50) != 0 {
		t.Error("rate before window start must be 0")
	}
	g := e.Snapshot(300)
	if math.Abs(g.Rate(0, 1)-0.01) > 1e-12 {
		t.Errorf("snapshot rate = %v", g.Rate(0, 1))
	}
	if g.Rate(0, 2) != 0 {
		t.Error("unobserved pair should have zero rate")
	}
}

func TestFromMatrixValidation(t *testing.T) {
	if _, err := FromMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{0, 1}}); err == nil {
		t.Error("non-square matrix accepted")
	}
	g, err := FromMatrix([][]float64{{0, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate(0, 1) != 2 {
		t.Errorf("rate = %v", g.Rate(0, 1))
	}
}

func TestGraphSetRate(t *testing.T) {
	g := NewGraph(3)
	g.SetRate(0, 1, 5)
	if g.Rate(1, 0) != 5 {
		t.Error("SetRate must be symmetric")
	}
	g.SetRate(0, 1, -1)
	if g.Rate(0, 1) != 0 {
		t.Error("negative rate should clear the edge")
	}
	g.SetRate(0, 0, 3) // ignored
	if g.Rate(0, 0) != 0 {
		t.Error("self rate must stay 0")
	}
	g.SetRate(0, 9, 3) // ignored, out of range
}

func TestNeighbors(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(1, 3, 1)
	g.SetRate(1, 0, 2)
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 3 {
		t.Errorf("Neighbors = %v", nb)
	}
	if g.Neighbors(2) != nil {
		t.Error("isolated node should have no neighbors")
	}
}

// lineGraph builds 0-1-2-...-n-1 with the given per-edge rates.
func lineGraph(rates ...float64) *Graph {
	g := NewGraph(len(rates) + 1)
	for i, r := range rates {
		g.SetRate(trace.NodeID(i), trace.NodeID(i+1), r)
	}
	return g
}

func TestPathsOnLine(t *testing.T) {
	g := lineGraph(1, 2, 4)
	p := g.Paths(0, 0)
	if p.Source() != 0 {
		t.Errorf("Source = %v", p.Source())
	}
	if !p.Reachable(3) || p.Hops(3) != 3 {
		t.Errorf("hops = %d, want 3", p.Hops(3))
	}
	if want := 1.0 + 0.5 + 0.25; math.Abs(p.ExpectedDelay(3)-want) > 1e-12 {
		t.Errorf("delay = %v, want %v", p.ExpectedDelay(3), want)
	}
	rates := p.HopRates(3)
	if len(rates) != 3 || rates[0] != 1 || rates[1] != 2 || rates[2] != 4 {
		t.Errorf("hop rates = %v", rates)
	}
	if p.Hops(0) != 0 || p.Weight(0, 5) != 1 {
		t.Error("source path should be trivial")
	}
}

func TestPathsPicksLowerDelayRoute(t *testing.T) {
	// 0-1 direct at rate 0.1 (delay 10); 0-2-1 via rates 1,1 (delay 2).
	g := NewGraph(3)
	g.SetRate(0, 1, 0.1)
	g.SetRate(0, 2, 1)
	g.SetRate(2, 1, 1)
	p := g.Paths(0, 0)
	if p.Hops(1) != 2 {
		t.Errorf("hops = %d, want 2 (relay route)", p.Hops(1))
	}
	if math.Abs(p.ExpectedDelay(1)-2) > 1e-12 {
		t.Errorf("delay = %v, want 2", p.ExpectedDelay(1))
	}
}

func TestPathsHopCap(t *testing.T) {
	// Same topology, but a 1-hop cap must force the direct edge.
	g := NewGraph(3)
	g.SetRate(0, 1, 0.1)
	g.SetRate(0, 2, 1)
	g.SetRate(2, 1, 1)
	p := g.Paths(0, 1)
	if p.Hops(1) != 1 {
		t.Errorf("hops = %d, want 1 under hop cap", p.Hops(1))
	}
	if math.Abs(p.ExpectedDelay(1)-10) > 1e-12 {
		t.Errorf("delay = %v, want 10", p.ExpectedDelay(1))
	}
}

func TestPathsUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(0, 1, 1)
	// nodes 2,3 isolated from 0
	g.SetRate(2, 3, 1)
	p := g.Paths(0, 0)
	if p.Reachable(2) || p.Reachable(3) {
		t.Error("disconnected nodes must be unreachable")
	}
	if p.Weight(2, 100) != 0 {
		t.Error("weight to unreachable node must be 0")
	}
	if p.Hops(2) != -1 {
		t.Errorf("hops = %d, want -1", p.Hops(2))
	}
}

func TestPathWeightMatchesHypoexp(t *testing.T) {
	g := lineGraph(1, 3)
	p := g.Paths(0, 0)
	// Two-hop weight: 1 - (b e^{-at} - a e^{-bt})/(b-a) with a=1,b=3.
	for _, tt := range []float64{0.5, 1, 2} {
		want := 1 - (3*math.Exp(-tt)-math.Exp(-3*tt))/2
		if got := p.Weight(2, tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("Weight(2,%v) = %v, want %v", tt, got, want)
		}
	}
	// Cached second call must agree.
	if a, b := p.Weight(2, 1), p.Weight(2, 1); a != b {
		t.Error("cached weight differs")
	}
}

func TestPathsSymmetry(t *testing.T) {
	g := NewGraph(5)
	g.SetRate(0, 1, 0.5)
	g.SetRate(1, 2, 1.5)
	g.SetRate(2, 3, 0.7)
	g.SetRate(0, 4, 0.2)
	g.SetRate(4, 3, 2.0)
	pa := g.Paths(0, 0)
	pb := g.Paths(3, 0)
	if math.Abs(pa.Weight(3, 5)-pb.Weight(0, 5)) > 1e-12 {
		t.Errorf("asymmetric weights: %v vs %v", pa.Weight(3, 5), pb.Weight(0, 5))
	}
}

func TestMetricStarTopology(t *testing.T) {
	// Star: hub 0 connected to 1..4 at rate 1; leaves only via hub.
	g := NewGraph(5)
	for i := 1; i < 5; i++ {
		g.SetRate(0, trace.NodeID(i), 1)
	}
	metrics := g.Metrics(2, 0)
	// Hub must dominate every leaf.
	for i := 1; i < 5; i++ {
		if metrics[0] <= metrics[i] {
			t.Errorf("hub metric %v not above leaf %d metric %v", metrics[0], i, metrics[i])
		}
	}
	// Hub metric: average of 4 one-hop weights 1-e^{-2}.
	want := 1 - math.Exp(-2)
	if math.Abs(metrics[0]-want) > 1e-9 {
		t.Errorf("hub metric = %v, want %v", metrics[0], want)
	}
	// All leaves identical by symmetry.
	for i := 2; i < 5; i++ {
		if math.Abs(metrics[i]-metrics[1]) > 1e-12 {
			t.Errorf("leaf metrics differ: %v vs %v", metrics[i], metrics[1])
		}
	}
}

func TestMetricSingleNode(t *testing.T) {
	g := NewGraph(1)
	if g.Metric(0, 10, 0) != 0 {
		t.Error("single-node metric must be 0")
	}
}

func TestSelectNCLs(t *testing.T) {
	metrics := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := SelectNCLs(metrics, 3)
	// Ties (1 and 3 at 0.9) break by ascending ID.
	want := []trace.NodeID{1, 3, 2}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SelectNCLs = %v, want %v", got, want)
		}
	}
	if SelectNCLs(metrics, 0) != nil {
		t.Error("k=0 should select nothing")
	}
	if len(SelectNCLs(metrics, 10)) != 5 {
		t.Error("k beyond n should clamp")
	}
}

func TestAllPaths(t *testing.T) {
	g := lineGraph(1, 1)
	all := g.AllPaths(0)
	if len(all) != 3 {
		t.Fatalf("AllPaths len = %d", len(all))
	}
	if math.Abs(all[0].Weight(2, 3)-all[2].Weight(0, 3)) > 1e-12 {
		t.Error("all-pairs weights not symmetric")
	}
}

func TestEstimatedRatesRecoverTruth(t *testing.T) {
	// Feed synthetic contacts into the estimator and check the snapshot
	// graph approaches the generator's ground-truth rates.
	cfg := trace.GenConfig{
		Nodes: 8, DurationSec: 40 * 86400, GranularitySec: 60,
		TargetContacts: 30000, ActivityAlpha: 1.5, ActivityMax: 5, Seed: 9,
	}
	tr, truth, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewRateEstimator(tr.Nodes, 0)
	for _, c := range tr.Contacts {
		e.Observe(c.A, c.B)
	}
	g := e.Snapshot(tr.Duration)
	for i := 0; i < tr.Nodes; i++ {
		for j := i + 1; j < tr.Nodes; j++ {
			want := truth[i][j]
			if want*cfg.DurationSec < 200 {
				continue
			}
			got := g.Rate(trace.NodeID(i), trace.NodeID(j))
			if math.Abs(got-want)/want > 0.15 {
				t.Errorf("pair %d-%d: rate %v, truth %v", i, j, got, want)
			}
		}
	}
}

func BenchmarkPaths100Nodes(b *testing.B) {
	cfg := trace.GenConfig{
		Nodes: 100, DurationSec: 86400, GranularitySec: 60,
		TargetContacts: 50000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 1,
	}
	_, truth, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromMatrix(truth)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Paths(trace.NodeID(i%100), 0)
	}
}

func TestNodeContacts(t *testing.T) {
	e := NewRateEstimator(3, 0)
	e.Observe(0, 1)
	e.Observe(0, 1)
	e.Observe(0, 2)
	if got := e.NodeContacts(0); got != 3 {
		t.Errorf("NodeContacts(0) = %d, want 3", got)
	}
	if got := e.NodeContacts(1); got != 2 {
		t.Errorf("NodeContacts(1) = %d, want 2", got)
	}
	if e.NodeContacts(-1) != 0 || e.NodeContacts(9) != 0 {
		t.Error("out-of-range NodeContacts should be 0")
	}
}
