package graph

import (
	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// ExactWeight computes the maximum opportunistic path weight p_ab(T)
// over *all* simple paths with at most maxHops hops, by exhaustive
// depth-first search. Appending a hop adds an independent positive delay
// term, so a path's weight can only decrease as it grows — which makes
// "current prefix weight <= best complete path found" a valid pruning
// bound.
//
// The search is exponential in the worst case and exists as a test
// oracle for the polynomial minimum-expected-delay heuristic used by
// Paths; production code never calls it.
func (g *Graph) ExactWeight(a, b trace.NodeID, t float64, maxHops int) float64 {
	if a == b {
		if t < 0 {
			return 0
		}
		return 1
	}
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	s := &exactSearch{
		g:       g,
		dst:     b,
		t:       t,
		maxHops: maxHops,
		visited: make([]bool, g.n),
		rates:   make([]float64, 0, maxHops),
	}
	s.visited[a] = true
	s.dfs(a)
	return s.best
}

type exactSearch struct {
	g       *Graph
	dst     trace.NodeID
	t       float64
	maxHops int
	visited []bool
	rates   []float64
	best    float64
}

func (s *exactSearch) dfs(cur trace.NodeID) {
	if len(s.rates) >= s.maxHops {
		return
	}
	for _, next := range s.g.Neighbors(cur) {
		if s.visited[next] {
			continue
		}
		rate := s.g.Rate(cur, next)
		s.rates = append(s.rates, rate)
		w := s.pathWeight()
		if w > s.best {
			if next == s.dst {
				s.best = w
			}
			// Extensions of this prefix can only have weight <= w, so
			// recursing is worthwhile only while w beats the incumbent.
			if next != s.dst {
				s.visited[next] = true
				s.dfs(next)
				s.visited[next] = false
			}
		}
		s.rates = s.rates[:len(s.rates)-1]
	}
}

func (s *exactSearch) pathWeight() float64 {
	w, err := mathx.PathWeight(s.rates, s.t)
	if err != nil {
		return 0
	}
	return w
}
