package graph

import (
	"testing"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// TestPathsIntoMatchesPaths: a reused scratch must never change any
// result — delays, hop rates, or weights — for any source.
func TestPathsIntoMatchesPaths(t *testing.T) {
	const n = 40
	rng := mathx.NewRand(5)
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Bernoulli(0.15) {
				g.SetRate(trace.NodeID(i), trace.NodeID(j), rng.Exp(2000))
			}
		}
	}
	scratch := &PathScratch{}
	for src := 0; src < n; src++ {
		want := g.Paths(trace.NodeID(src), 4)
		got := g.PathsInto(trace.NodeID(src), 4, scratch)
		for v := 0; v < n; v++ {
			if want.ExpectedDelay(trace.NodeID(v)) != got.ExpectedDelay(trace.NodeID(v)) {
				t.Fatalf("src %d dst %d: delay %g != %g", src, v,
					got.ExpectedDelay(trace.NodeID(v)), want.ExpectedDelay(trace.NodeID(v)))
			}
			if ww, gw := want.Weight(trace.NodeID(v), 3600), got.Weight(trace.NodeID(v), 3600); ww != gw {
				t.Fatalf("src %d dst %d: weight %g != %g", src, v, gw, ww)
			}
		}
	}
}

// TestPathsIntoResultOwnsDelay: mutating the scratch after PathsInto
// must not corrupt an earlier result (the slice must be copied out).
func TestPathsIntoResultOwnsDelay(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(0, 1, 0.01)
	g.SetRate(1, 2, 0.02)
	scratch := &PathScratch{}
	p0 := g.PathsInto(0, 3, scratch)
	d01 := p0.ExpectedDelay(1)
	_ = g.PathsInto(3, 3, scratch) // node 3 is isolated; overwrites the layers
	if p0.ExpectedDelay(1) != d01 {
		t.Fatalf("delay changed after scratch reuse: %g != %g", p0.ExpectedDelay(1), d01)
	}
}
