package graph

import (
	"math"
	"testing"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

func TestExactWeightTrivialCases(t *testing.T) {
	g := lineGraph(1, 2)
	if got := g.ExactWeight(0, 0, 5, 0); got != 1 {
		t.Errorf("self weight = %v", got)
	}
	if got := g.ExactWeight(0, 0, -1, 0); got != 0 {
		t.Errorf("self weight negative T = %v", got)
	}
	// Single edge: exponential CDF.
	want := 1 - math.Exp(-1.0*2)
	if got := g.ExactWeight(0, 1, 2, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("one-hop = %v, want %v", got, want)
	}
	// Unreachable.
	g2 := NewGraph(3)
	g2.SetRate(0, 1, 1)
	if got := g2.ExactWeight(0, 2, 10, 3); got != 0 {
		t.Errorf("unreachable = %v", got)
	}
}

func TestExactWeightPrefersBetterDetour(t *testing.T) {
	// Direct weak edge vs strong 2-hop detour: exact must find the
	// detour when T is generous.
	g := NewGraph(3)
	g.SetRate(0, 1, 0.01)
	g.SetRate(0, 2, 2)
	g.SetRate(2, 1, 2)
	direct, _ := mathx.PathWeight([]float64{0.01}, 5)
	detour, _ := mathx.PathWeight([]float64{2, 2}, 5)
	if detour <= direct {
		t.Fatal("test setup wrong")
	}
	got := g.ExactWeight(0, 1, 5, 3)
	if math.Abs(got-detour) > 1e-12 {
		t.Errorf("exact = %v, want detour %v", got, detour)
	}
}

func TestExactWeightRespectsHopCap(t *testing.T) {
	g := NewGraph(3)
	g.SetRate(0, 1, 0.01)
	g.SetRate(0, 2, 2)
	g.SetRate(2, 1, 2)
	direct, _ := mathx.PathWeight([]float64{0.01}, 5)
	got := g.ExactWeight(0, 1, 5, 1)
	if math.Abs(got-direct) > 1e-12 {
		t.Errorf("hop-capped exact = %v, want direct %v", got, direct)
	}
}

// TestHeuristicPathsAgainstExactOracle quantifies how close the
// polynomial minimum-expected-delay heuristic gets to the true optimum
// on random small graphs. The heuristic can never exceed the optimum;
// it should stay reasonably close on average.
func TestHeuristicPathsAgainstExactOracle(t *testing.T) {
	rng := mathx.NewRand(12)
	const n = 8
	const trials = 25
	var ratioSum float64
	var count int
	for trial := 0; trial < trials; trial++ {
		g := NewGraph(n)
		// Random sparse graph with heterogeneous rates.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Bernoulli(0.4) {
					g.SetRate(trace.NodeID(i), trace.NodeID(j), rng.Uniform(0.05, 2))
				}
			}
		}
		horizon := rng.Uniform(0.5, 4)
		paths := g.Paths(0, 4)
		for v := 1; v < n; v++ {
			exact := g.ExactWeight(0, trace.NodeID(v), horizon, 4)
			heur := paths.Weight(trace.NodeID(v), horizon)
			if heur > exact+1e-9 {
				t.Fatalf("heuristic %v exceeds exact optimum %v (trial %d, v %d)",
					heur, exact, trial, v)
			}
			if exact > 1e-6 {
				ratioSum += heur / exact
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("no reachable pairs sampled")
	}
	mean := ratioSum / float64(count)
	t.Logf("heuristic/exact mean ratio = %.4f over %d pairs", mean, count)
	if mean < 0.85 {
		t.Errorf("heuristic mean quality %.3f below 0.85 of optimal", mean)
	}
}
