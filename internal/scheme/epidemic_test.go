package scheme

import (
	"testing"

	"dtncache/internal/metrics"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

func TestEpidemicEndToEnd(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	env, err := NewEnv(tr, w, testConfig(tr), NewEpidemic())
	if err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.QueriesSatisfied != 1 {
		t.Fatalf("epidemic failed the line scenario: %+v", rep)
	}
}

func TestEpidemicBeatsNoCacheDelay(t *testing.T) {
	// Flooding is a delay lower bound (given bandwidth): on a small
	// trace it must be at least as successful as NoCache.
	tr, err := trace.GeneratePreset(trace.Infocom05, 5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 20e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Scheme) metrics.Report {
		cfg := DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 3
		env, err := NewEnv(tr, w, cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		return env.Run()
	}
	epi := run(NewEpidemic())
	noc := run(NewNoCache())
	if epi.SuccessRatio < noc.SuccessRatio {
		t.Errorf("epidemic %.3f below NoCache %.3f", epi.SuccessRatio, noc.SuccessRatio)
	}
	// Flooding must move far more data.
	if epi.DataBits <= noc.DataBits {
		t.Errorf("epidemic moved %v bits <= NoCache %v", epi.DataBits, noc.DataBits)
	}
}
