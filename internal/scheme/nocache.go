package scheme

import (
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// NoCache is the first comparison scheme of Sec. VI: no caching is used
// at all; every query is routed to the data source and only the source
// returns the data.
type NoCache struct {
	base *Base
}

// NewNoCache creates the scheme.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements Scheme.
func (s *NoCache) Name() string { return "NoCache" }

// Init implements Scheme.
func (s *NoCache) Init(e *Env) error {
	s.base = NewBase(e)
	return nil
}

// OnData implements Scheme. Sources retain their own data; nothing else
// happens.
func (s *NoCache) OnData(workload.DataItem) {}

// OnQuery implements Scheme: route a single query copy toward the
// source.
func (s *NoCache) OnQuery(q workload.Query) {
	item, ok := s.base.E.W.Item(q.Data)
	if !ok {
		return
	}
	qc := &QueryCarry{Q: q, Target: item.Source, NCL: -1}
	if q.Requester == item.Source {
		return
	}
	s.base.CarryQuery(q.Requester, qc)
}

// OnContactStart implements Scheme.
func (s *NoCache) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		from := from
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *QueryCarry) {
			if at == qc.Target && s.base.Respond(at, qc, true) {
				s.base.DropQuery(at, qc)
				// Try to send the fresh reply onward immediately.
				s.base.ForwardReplies(sess, at, nil, nil)
			}
		})
		s.base.ForwardReplies(sess, from, nil, nil)
	}
}

// OnContactEnd implements Scheme.
func (s *NoCache) OnContactEnd(*sim.Session) {}

// OnSweep implements Scheme.
func (s *NoCache) OnSweep(now float64) { s.base.SweepExpired(now) }

var _ Scheme = (*NoCache)(nil)
