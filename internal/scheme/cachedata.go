package scheme

import (
	"sort"

	"dtncache/internal/buffer"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// CacheData adapts the cooperative-caching scheme of Yin & Cao [29]
// (designed for connected wireless ad-hoc networks) to DTN contacts, as
// the paper does for its evaluation: relays on the query path cache
// pass-by data according to the data's popularity observed from the
// queries they forwarded, and relays holding a cached copy answer
// queries directly.
type CacheData struct {
	base *Base
}

// NewCacheData creates the scheme.
func NewCacheData() *CacheData { return &CacheData{} }

// Name implements Scheme.
func (s *CacheData) Name() string { return "CacheData" }

// Init implements Scheme.
func (s *CacheData) Init(e *Env) error {
	s.base = NewBase(e)
	return nil
}

// OnData implements Scheme.
func (s *CacheData) OnData(workload.DataItem) {}

// OnQuery implements Scheme.
func (s *CacheData) OnQuery(q workload.Query) {
	item, ok := s.base.E.W.Item(q.Data)
	if !ok || q.Requester == item.Source {
		return
	}
	s.base.Observe(q.Requester, q.Data, q.Issued)
	s.base.CarryQuery(q.Requester, &QueryCarry{Q: q, Target: item.Source, NCL: -1})
}

// OnContactStart implements Scheme.
func (s *CacheData) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		from := from
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *QueryCarry) {
			// Relays collect query history as queries pass through them;
			// this is what drives the popularity-based caching decision.
			s.base.Observe(at, qc.Q.Data, s.base.E.Sim.Now())
			if s.base.E.HasData(at, qc.Q.Data) && s.base.Respond(at, qc, true) {
				s.base.DropQuery(at, qc)
				s.base.ForwardReplies(sess, at, nil, s.relayCache)
			}
		})
		s.base.ForwardReplies(sess, from, nil, s.relayCache)
	}
}

// relayCache is the CacheData rule: an intermediate relay caches pass-by
// data when its locally observed popularity beats the least popular
// cached entries, evicting those.
func (s *CacheData) relayCache(at trace.NodeID, rc *ReplyCarry) {
	s.CachePassBy(s.base, at, rc.Item, func(id workload.DataID, expires float64) float64 {
		rs := s.base.Stats(at, id)
		return s.base.E.Popularity(&rs, expires)
	})
}

// CachePassBy inserts item into node n's buffer if its utility (per the
// supplied utility function) exceeds that of the entries that would need
// to be evicted; lower-utility entries are evicted first and only while
// the incoming item stays strictly more useful. Shared by CacheData and
// BundleCache, which differ only in the utility function.
func (*CacheData) CachePassBy(b *Base, n trace.NodeID, item workload.DataItem,
	utility func(id workload.DataID, expires float64) float64) {
	e := b.E
	now := e.Sim.Now()
	if item.Expired(now) || item.SizeBits > e.Buffers[n].Capacity() || e.Buffers[n].Has(item.ID) {
		return
	}
	buf := e.Buffers[n]
	incoming := utility(item.ID, item.Expires)
	// Evict strictly-less-useful entries until the item fits; give up
	// (and undo nothing — eviction order is least useful first, so what
	// was evicted was the least valuable anyway) if it cannot fit.
	// Entries() is the buffer's internal ID-sorted store; copy before
	// reordering by utility.
	entries := append([]*buffer.Entry(nil), buf.Entries()...)
	sort.Slice(entries, func(i, j int) bool {
		ui := utility(entries[i].Data.ID, entries[i].Data.Expires)
		uj := utility(entries[j].Data.ID, entries[j].Data.Expires)
		if ui != uj {
			return ui < uj
		}
		return entries[i].Data.ID < entries[j].Data.ID
	})
	idx := 0
	for item.SizeBits > buf.Free() && idx < len(entries) {
		victim := entries[idx]
		idx++
		if utility(victim.Data.ID, victim.Data.Expires) >= incoming {
			return // remaining entries are all at least as useful
		}
		buf.Remove(victim.Data.ID)
	}
	if item.SizeBits <= buf.Free() {
		if _, err := buf.Put(item, now); err == nil {
			if en := buf.Get(item.ID); en != nil {
				rs := b.Stats(n, item.ID)
				en.Requests = rs
			}
		}
	}
}

// OnContactEnd implements Scheme.
func (s *CacheData) OnContactEnd(*sim.Session) {}

// OnSweep implements Scheme.
func (s *CacheData) OnSweep(now float64) { s.base.SweepExpired(now) }

var _ Scheme = (*CacheData)(nil)
