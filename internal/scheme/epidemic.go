package scheme

import (
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Epidemic is a flooding reference scheme (Vahdat & Becker's Epidemic
// routing, the origin of DTN forwarding per Sec. II): queries replicate
// to every contacted node, any node holding the data replies, and
// replies replicate likewise. Subject to link bandwidth it approaches
// the minimum achievable access delay, at maximal transmission overhead
// — a useful upper-bound reference that the paper's related work builds
// from, though it is not one of the Fig. 10 comparison schemes.
type Epidemic struct {
	base *Base
}

// NewEpidemic creates the scheme.
func NewEpidemic() *Epidemic { return &Epidemic{} }

// Name implements Scheme.
func (s *Epidemic) Name() string { return "Epidemic" }

// Init implements Scheme.
func (s *Epidemic) Init(e *Env) error {
	s.base = NewBase(e)
	return nil
}

// OnData implements Scheme.
func (s *Epidemic) OnData(workload.DataItem) {}

// OnQuery implements Scheme.
func (s *Epidemic) OnQuery(q workload.Query) {
	item, ok := s.base.E.W.Item(q.Data)
	if !ok || q.Requester == item.Source {
		return
	}
	// Flooded copies carry no specific target; Target records the source
	// only so distinct queries for the same data stay distinguishable.
	s.base.CarryQuery(q.Requester, &QueryCarry{Q: q, Target: item.Source, NCL: -1})
}

// OnContactStart implements Scheme: replicate queries and replies in
// both directions; holders respond.
func (s *Epidemic) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		s.floodQueries(sess, from)
		s.floodReplies(sess, from)
	}
}

func (s *Epidemic) floodQueries(sess *sim.Session, from trace.NodeID) {
	e := s.base.E
	to := sess.Peer(from)
	now := e.Sim.Now()
	s.base.ForEachQuery(from, func(qc *QueryCarry) {
		if qc.Q.Deadline <= now {
			s.base.DropQuery(from, qc)
			return
		}
		if s.base.CarriesQueryID(to, qc.Q.ID) {
			return
		}
		copyQC := &QueryCarry{Q: qc.Q, Target: qc.Target, NCL: -1}
		sess.Enqueue(sim.Transfer{
			From: from, To: to, Bits: e.Cfg.QueryBits, Label: "epidemic-query",
			OnDelivered: func(at float64) {
				e.M.ControlTransferred(e.Cfg.QueryBits)
				if copyQC.Q.Deadline <= at {
					return
				}
				s.base.CarryQuery(to, copyQC)
				if e.HasData(to, copyQC.Q.Data) && s.base.Respond(to, copyQC, true) {
					s.floodReplies(sess, to)
				}
			},
		})
	})
}

func (s *Epidemic) floodReplies(sess *sim.Session, from trace.NodeID) {
	e := s.base.E
	to := sess.Peer(from)
	now := e.Sim.Now()
	s.base.ForEachReply(from, func(rc *ReplyCarry) {
		if rc.Q.Deadline <= now {
			s.base.DropReply(from, rc.Q.ID)
			return
		}
		if s.base.CarriesReply(to, rc.Q.ID) {
			return
		}
		sess.Enqueue(sim.Transfer{
			From: from, To: to, Bits: rc.Item.SizeBits, Label: "epidemic-reply",
			OnDelivered: func(at float64) {
				e.M.DataTransferred(rc.Item.SizeBits)
				if to == rc.Q.Requester {
					if e.M.QueryDelivered(rc.Q.ID, at) {
						e.cQAnswered.Inc()
						e.hQueryDelay.Observe(at - rc.Q.Issued)
						e.Obs.QueryAnswered(at, int32(to), int64(rc.Q.ID), at-rc.Q.Issued)
					}
					return
				}
				s.base.CarryReply(to, rc)
			},
		})
	})
}

// OnContactEnd implements Scheme.
func (s *Epidemic) OnContactEnd(*sim.Session) {}

// OnSweep implements Scheme.
func (s *Epidemic) OnSweep(now float64) { s.base.SweepExpired(now) }

var _ Scheme = (*Epidemic)(nil)
