package scheme

import (
	"dtncache/internal/buffer"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// RandomCache is the second comparison scheme of Sec. VI: every
// requester caches the data it receives (LRU replacement) to facilitate
// its own and others' future access. Queries are routed toward the data
// source, and any en-route node holding a cached copy replies.
type RandomCache struct {
	base   *Base
	policy buffer.LRU
}

// NewRandomCache creates the scheme.
func NewRandomCache() *RandomCache { return &RandomCache{} }

// Name implements Scheme.
func (s *RandomCache) Name() string { return "RandomCache" }

// Init implements Scheme.
func (s *RandomCache) Init(e *Env) error {
	s.base = NewBase(e)
	return nil
}

// OnData implements Scheme.
func (s *RandomCache) OnData(workload.DataItem) {}

// OnQuery implements Scheme.
func (s *RandomCache) OnQuery(q workload.Query) {
	item, ok := s.base.E.W.Item(q.Data)
	if !ok || q.Requester == item.Source {
		return
	}
	s.base.CarryQuery(q.Requester, &QueryCarry{Q: q, Target: item.Source, NCL: -1})
}

// OnContactStart implements Scheme.
func (s *RandomCache) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		from := from
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *QueryCarry) {
			// Any node holding the data replies and consumes the query.
			if s.base.E.HasData(at, qc.Q.Data) && s.base.Respond(at, qc, true) {
				s.base.DropQuery(at, qc)
				s.base.ForwardReplies(sess, at, s.deliver, nil)
			}
		})
		s.base.ForwardReplies(sess, from, s.deliver, nil)
	}
}

// deliver caches received data at the requester (the defining behavior
// of RandomCache), evicting via LRU as needed.
func (s *RandomCache) deliver(rc *ReplyCarry, _ bool) {
	e := s.base.E
	if rc.Item.Expired(e.Sim.Now()) {
		return
	}
	buffer.PutEvict(e.Buffers[rc.Q.Requester], s.policy, rc.Item, e.Sim.Now())
}

// OnContactEnd implements Scheme.
func (s *RandomCache) OnContactEnd(*sim.Session) {}

// OnSweep implements Scheme.
func (s *RandomCache) OnSweep(now float64) { s.base.SweepExpired(now) }

var _ Scheme = (*RandomCache)(nil)
