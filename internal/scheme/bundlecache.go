package scheme

import (
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// BundleCache adapts the DTN bundle-caching scheme of [23] as described
// in Sec. VI: pass-by data is cached by relays that weigh the data's
// popularity *and* the relay's own contact pattern, aiming to minimize
// the average data access delay. Well-connected relays therefore attract
// more cached bundles than in CacheData, but caching locations remain
// incidental (wherever replies happen to travel) rather than
// intentional.
type BundleCache struct {
	base *Base
	cd   CacheData // reuse the pass-by insertion machinery

	// reach[n] is node n's contact capability: its NCL-style metric
	// normalized to [0,1] against the best node in the network, refreshed
	// on sweeps.
	reach []float64
}

// NewBundleCache creates the scheme.
func NewBundleCache() *BundleCache { return &BundleCache{} }

// Name implements Scheme.
func (s *BundleCache) Name() string { return "BundleCache" }

// Init implements Scheme.
func (s *BundleCache) Init(e *Env) error {
	s.base = NewBase(e)
	s.reach = make([]float64, e.N)
	return nil
}

// OnData implements Scheme.
func (s *BundleCache) OnData(workload.DataItem) {}

// OnQuery implements Scheme.
func (s *BundleCache) OnQuery(q workload.Query) {
	item, ok := s.base.E.W.Item(q.Data)
	if !ok || q.Requester == item.Source {
		return
	}
	s.base.Observe(q.Requester, q.Data, q.Issued)
	s.base.CarryQuery(q.Requester, &QueryCarry{Q: q, Target: item.Source, NCL: -1})
}

// OnContactStart implements Scheme.
func (s *BundleCache) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		from := from
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *QueryCarry) {
			s.base.Observe(at, qc.Q.Data, s.base.E.Sim.Now())
			if s.base.E.HasData(at, qc.Q.Data) && s.base.Respond(at, qc, true) {
				s.base.DropQuery(at, qc)
				s.base.ForwardReplies(sess, at, nil, s.relayCache)
			}
		})
		s.base.ForwardReplies(sess, from, nil, s.relayCache)
	}
}

// relayCache decides whether this relay caches the pass-by bundle: the
// probability is the relay's contact capability relative to the
// best-connected node, so bundles concentrate at nodes that can serve
// the network quickly (minimizing expected access delay, the objective
// of [23]). Eviction within the buffer is by popularity, as in
// CacheData.
func (s *BundleCache) relayCache(at trace.NodeID, rc *ReplyCarry) {
	if !s.base.E.Rng.Bernoulli(s.capability(at)) {
		return
	}
	s.cd.CachePassBy(s.base, at, rc.Item, func(id workload.DataID, expires float64) float64 {
		rs := s.base.Stats(at, id)
		return s.base.E.Popularity(&rs, expires)
	})
}

// capability lazily computes node n's contact metric normalized by the
// best node's, clamped to [0.02, 1]. The metric values come precomputed
// on the knowledge snapshot instead of a fresh all-pairs recompute.
func (s *BundleCache) capability(n trace.NodeID) float64 {
	if s.reach[n] > 0 {
		return s.reach[n]
	}
	e := s.base.E
	best := 0.0
	var all []float64
	all = e.Knowledge().Metrics()
	for _, m := range all {
		if m > best {
			best = m
		}
	}
	for i, m := range all {
		c := 0.02
		if best > 0 {
			c = m / best
		}
		if c < 0.02 {
			c = 0.02
		}
		s.reach[i] = c
	}
	return s.reach[n]
}

// OnContactEnd implements Scheme.
func (s *BundleCache) OnContactEnd(*sim.Session) {}

// OnSweep implements Scheme: refresh capability estimates occasionally
// and expire carried messages.
func (s *BundleCache) OnSweep(now float64) {
	for i := range s.reach {
		s.reach[i] = 0 // recompute lazily against fresh knowledge
	}
	s.base.SweepExpired(now)
}

var _ Scheme = (*BundleCache)(nil)
