// Package scheme hosts the protocol environment shared by every data
// access scheme in the evaluation (Sec. VI) and the four comparison
// baselines: NoCache, RandomCache, CacheData [29] and BundleCache [23].
// The paper's intentional NCL caching scheme itself lives in
// internal/core and plugs into the same environment.
//
// The environment owns everything a DTN data-access protocol needs:
// per-node buffers, the online contact-rate estimator, periodically
// refreshed opportunistic-path knowledge, the workload schedule, and
// metric collection. Schemes only implement reactions to data
// generation, queries and contacts.
//
//dtn:determinism
package scheme

import (
	"errors"
	"fmt"

	"dtncache/internal/buffer"
	"dtncache/internal/fault"
	"dtncache/internal/graph"
	"dtncache/internal/knowledge"
	"dtncache/internal/mathx"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/provenance"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// NCLStrategy selects how the K central nodes are chosen at the end of
// warm-up. The paper uses the probabilistic metric of Eq. (3); the other
// strategies are ablation baselines quantifying what the metric buys.
type NCLStrategy int

// NCL selection strategies.
const (
	// NCLByMetric selects the top-K nodes by the Eq. (3) metric (the
	// paper's scheme; default).
	NCLByMetric NCLStrategy = iota
	// NCLByDegree selects the K nodes with the most distinct contact
	// peers.
	NCLByDegree
	// NCLByContacts selects the K nodes with the most total contacts.
	NCLByContacts
	// NCLRandom selects K nodes uniformly at random.
	NCLRandom
)

// ResponseMode selects how a caching node decides whether to return data
// to a requester (Sec. V-C).
type ResponseMode int

// Response modes.
const (
	// ResponseGlobal uses the true delivery probability p_CR(T_q - t0)
	// from full opportunistic-path knowledge.
	ResponseGlobal ResponseMode = iota + 1
	// ResponseSigmoid uses Eq. (4), which only needs the remaining time.
	ResponseSigmoid
	// ResponseAlways replies unconditionally (ablation baseline).
	ResponseAlways
)

// Config carries every tunable of a simulation run.
type Config struct {
	// MetricT is the time horizon T for path weights and the NCL metric
	// (Sec. IV-B uses 1h for Infocom, 1 week for Reality, 3 days for
	// UCSD).
	MetricT float64
	// MaxHops caps opportunistic path length (graph.DefaultMaxHops if 0).
	MaxHops int
	// RefreshSec is the knowledge-refresh period: contact rates are
	// re-snapshotted and all-pairs paths recomputed.
	RefreshSec float64
	// SweepSec is the housekeeping period: expired data and queries are
	// dropped and caching-overhead samples taken.
	SweepSec float64
	// QueryBits is the size of a query/control message (default 80 kb).
	QueryBits float64
	// Response selects the probabilistic response mode; PMin/PMax
	// parameterize the sigmoid (defaults 0.45/0.8 as in Fig. 7).
	Response   ResponseMode
	PMin, PMax float64
	// NCLCount is K, the number of central nodes (intentional scheme).
	NCLCount int
	// NCLSelection picks the central-node selection strategy
	// (NCLByMetric, the paper's, by default).
	NCLSelection NCLStrategy
	// QuantBits is the knapsack size quantum (default 5 Mb).
	QuantBits float64
	// BufferMinBits/BufferMaxBits bound the uniform per-node buffer
	// capacity (paper: 200-600 Mb).
	BufferMinBits, BufferMaxBits float64
	// WarmupEnd is when NCL selection happens and data/queries begin
	// (paper: half the trace).
	WarmupEnd float64
	// ProbabilisticSelection toggles Algorithm 1 during cache
	// replacement; off means the pure knapsack of Eq. (7) (ablation).
	ProbabilisticSelection bool
	// PopularityFromFirst selects the literal (t_e - t_1) variant of
	// Eq. (6) instead of the remaining-lifetime reading (ablation).
	PopularityFromFirst bool
	// Bandwidth is the contact link bandwidth (sim.DefaultBandwidth if 0).
	Bandwidth float64
	// DropProb injects random transfer failures (0 = off). It is the
	// legacy spelling of Fault.KillProb and routes through the same
	// fault engine; setting both is a configuration error.
	DropProb float64
	// Fault configures the deterministic fault-injection engine
	// (internal/fault). The zero value installs no engine at all,
	// keeping the replay hot path on its fault-free fast path.
	Fault fault.Config
	// QueryRetrySec > 0 re-issues unsatisfied queries after this
	// timeout with capped exponential backoff: attempt i+1 waits
	// QueryRetryFactor times longer than attempt i (factor 2 when 0),
	// capped at QueryRetryCapSec (uncapped when 0), for up to
	// QueryRetryMax attempts (3 when 0). Retries never outlive the
	// query deadline.
	QueryRetrySec    float64
	QueryRetryMax    int
	QueryRetryFactor float64
	QueryRetryCapSec float64
	// NCLFailover re-targets the intentional scheme's push/pull traffic
	// of a down central node to the next-ranked live node under current
	// knowledge, and re-replicates crash-lost cached items.
	NCLFailover bool
	// PushRetryBudget bounds how many times one holder may re-offer the
	// same pending (data, NCL) push; 0 means unlimited (the pre-fault
	// behavior).
	PushRetryBudget int
	// CheckInvariants runs the internal/fault runtime invariant checker
	// every SweepSec, collecting violations on the Env.
	CheckInvariants bool
	// KnowledgeEpsilon is the relative rate-change threshold of the
	// incremental knowledge builder (knowledge.Params.Epsilon). The
	// default 0 is exact mode: every snapshot is bit-identical to a
	// full recompute. Positive values trade accuracy for refresh speed.
	KnowledgeEpsilon float64
	// Seed drives all run randomness (coin flips, buffer sizes).
	Seed int64
	// Obs is the observability recorder wired through every layer of the
	// environment (nil = instrumentation off, the default). It is
	// read-only with respect to simulation behavior: attaching a
	// recorder never changes results. Excluded from config digests —
	// callers must zero it before hashing (see obs.ConfigDigest).
	Obs *obs.Recorder
	// SpanRetain keeps the provenance span trees of up to this many
	// finished queries in memory for live lookup (Env.Prov.SpanTree).
	// 0 (the default) retains nothing; spans still stream into the
	// run-trace whenever Obs has a sink. Like Obs, purely
	// observational: it never changes simulation results.
	SpanRetain int
}

// DefaultConfig returns the paper's default parameters for a trace of
// the given duration: warm-up for half the trace, 200-600 Mb buffers,
// sigmoid response with p_min 0.45 / p_max 0.8, K = 8 NCLs, Algorithm 1
// enabled.
func DefaultConfig(traceDuration float64) Config {
	return Config{
		MetricT:                7 * 86400,
		MaxHops:                graph.DefaultMaxHops,
		RefreshSec:             traceDuration / 100,
		SweepSec:               traceDuration / 200,
		QueryBits:              80e3,
		Response:               ResponseSigmoid,
		PMin:                   0.45,
		PMax:                   0.8,
		NCLCount:               8,
		QuantBits:              5e6,
		BufferMinBits:          200e6,
		BufferMaxBits:          600e6,
		WarmupEnd:              traceDuration / 2,
		ProbabilisticSelection: true,
		Seed:                   1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.MetricT <= 0:
		return errors.New("scheme: MetricT must be positive")
	case c.RefreshSec <= 0 || c.SweepSec <= 0:
		return errors.New("scheme: refresh and sweep periods must be positive")
	case c.QueryBits < 0:
		return errors.New("scheme: QueryBits must be >= 0")
	case c.Response < ResponseGlobal || c.Response > ResponseAlways:
		return errors.New("scheme: unknown response mode")
	case c.NCLCount < 0:
		return errors.New("scheme: NCLCount must be >= 0")
	case c.QuantBits <= 0:
		return errors.New("scheme: QuantBits must be positive")
	case c.BufferMinBits <= 0 || c.BufferMaxBits < c.BufferMinBits:
		return errors.New("scheme: buffer bounds must satisfy 0 < min <= max")
	case c.MaxHops < 0:
		return errors.New("scheme: MaxHops must be >= 0 (0 selects the default)")
	case c.WarmupEnd < 0:
		return errors.New("scheme: WarmupEnd must be >= 0")
	case c.KnowledgeEpsilon < 0:
		return errors.New("scheme: KnowledgeEpsilon must be >= 0")
	case c.DropProb < 0 || c.DropProb > 1:
		return errors.New("scheme: DropProb must be in [0,1]")
	case c.DropProb > 0 && c.Fault.KillProb > 0:
		return errors.New("scheme: DropProb and Fault.KillProb are the same knob; set only one")
	case c.QueryRetrySec < 0:
		return errors.New("scheme: QueryRetrySec must be >= 0")
	case c.QueryRetryMax < 0:
		return errors.New("scheme: QueryRetryMax must be >= 0")
	case c.QueryRetryFactor != 0 && c.QueryRetryFactor < 1:
		return errors.New("scheme: QueryRetryFactor must be >= 1 (0 selects the default)")
	case c.QueryRetryCapSec < 0:
		return errors.New("scheme: QueryRetryCapSec must be >= 0")
	case c.PushRetryBudget < 0:
		return errors.New("scheme: PushRetryBudget must be >= 0")
	case c.SpanRetain < 0:
		return errors.New("scheme: SpanRetain must be >= 0")
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.Response == ResponseSigmoid {
		if !(c.PMax > 0 && c.PMax <= 1) || !(c.PMin > c.PMax/2 && c.PMin < c.PMax) {
			return errors.New("scheme: sigmoid needs 0 < pmax <= 1 and pmax/2 < pmin < pmax")
		}
	}
	return nil
}

// Scheme is one data access protocol under evaluation.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Init is called once, after the Env is fully constructed and before
	// the simulation starts.
	Init(e *Env) error
	// OnData fires when a node generates a new data item (the item is
	// already registered as the source's own data).
	OnData(item workload.DataItem)
	// OnQuery fires when a node issues a query (already counted).
	OnQuery(q workload.Query)
	// OnContactStart fires for every contact; schemes enqueue transfers.
	OnContactStart(s *sim.Session)
	// OnContactEnd fires when a contact closes.
	OnContactEnd(s *sim.Session)
	// OnSweep fires every Config.SweepSec for housekeeping.
	OnSweep(now float64)
}

// Env is the shared simulation environment.
type Env struct {
	Cfg     Config
	Sim     *sim.Simulator
	Driver  *sim.Driver
	Trace   *trace.Trace
	W       *workload.Workload
	N       int
	Buffers []*buffer.Buffer
	Est     *graph.RateEstimator
	M       *metrics.Collector
	Rng     *mathx.Rand
	// Obs is the run's recorder (nil when observability is off); all
	// obs methods are nil-safe, so schemes use it unconditionally.
	Obs *obs.Recorder
	// Prov is the provenance span tracer, nil unless the recorder has a
	// trace sink or Config.SpanRetain > 0; all its methods are nil-safe,
	// so instrumentation sites call it unconditionally.
	Prov *provenance.Tracer

	scheme Scheme
	sig    *mathx.ResponseSigmoid

	// Cached obs metrics (nil when Obs is nil) and the per-query
	// expiry-reported marks of the sweep scan.
	cQIssued    *obs.Counter
	cQAnswered  *obs.Counter
	cQExpired   *obs.Counter
	cQRetries   *obs.Counter
	cCIngested  *obs.Counter
	cCClamped   *obs.Counter
	cCStale     *obs.Counter
	hQueryDelay *obs.Histogram
	expiredSeen []bool

	// faults is the installed fault engine (nil on the fault-free fast
	// path); effNCLs caches the failover-adjusted NCL targets, keyed by
	// engine version and knowledge snapshot.
	faults     *fault.Engine
	effNCLs    []trace.NodeID
	effVersion uint64
	effSnap    *knowledge.Snapshot

	// Invariant-checker state (CheckInvariants only).
	respSeen     map[uint64]bool
	dupResponses int
	violations   []fault.Violation

	// knowledge: a provider (owned, or shared across schemes via
	// NewEnvShared) and the immutable snapshot of the latest refresh.
	kb   *knowledge.Provider
	snap *knowledge.Snapshot
	ncls []trace.NodeID

	// copyScratch is the per-sweep copy-count scratch of sampleCaching,
	// indexed by DataID and reused across sweeps.
	copyScratch []int

	// ownData[n] holds items generated by node n (sources always retain
	// their own live data, outside the caching buffer).
	ownData []map[workload.DataID]workload.DataItem
}

// NewEnv wires a full simulation: trace replay, workload schedule,
// knowledge refresh, housekeeping, and the scheme's hooks. The
// environment owns a private knowledge provider; use NewEnvShared to
// share one across schemes.
func NewEnv(tr *trace.Trace, w *workload.Workload, cfg Config, s Scheme) (*Env, error) {
	return NewEnvShared(tr, w, cfg, s, nil)
}

// KnowledgeParams returns the knowledge pipeline configuration an Env
// with this Config over nodes nodes requires. A shared provider must
// have exactly these Params.
func (c Config) KnowledgeParams(nodes int) knowledge.Params {
	return knowledge.Params{
		Nodes:   nodes,
		MetricT: c.MetricT,
		MaxHops: c.MaxHops,
		Epsilon: c.KnowledgeEpsilon,
	}
}

// NewEnvShared is NewEnv with an externally owned knowledge provider,
// letting every scheme of a comparison share one contact-rate → paths →
// metric pipeline instead of rebuilding it per environment. kb may be
// nil (a private provider is created); otherwise its Params must match
// the config, and the caller must have built it over
// sim.MergeOverlaps(tr.Contacts) so its counts equal what this Env's
// rate estimator observes.
func NewEnvShared(tr *trace.Trace, w *workload.Workload, cfg Config, s Scheme, kb *knowledge.Provider) (*Env, error) {
	return newEnv(tr, w, cfg, s, kb, nil)
}

// NewEnvStream wires a streaming replay: contacts come from the opener
// instead of tr.Contacts, which may be empty — tr then only carries the
// metadata (Name, Nodes, Duration). The opener is called once for the
// driver's replay feed and once for the knowledge provider's counting
// feed (plus once more per out-of-order knowledge rewind), and must
// return a fresh source positioned at the start each call. Results are
// byte-identical to a materialized run over the same contacts; after
// Run, check ReplayErr before trusting them.
func NewEnvStream(tr *trace.Trace, w *workload.Workload, cfg Config, s Scheme, kb *knowledge.Provider, open func() (trace.ContactSource, error)) (*Env, error) {
	if open == nil {
		return nil, errors.New("scheme: NewEnvStream requires a contact source opener")
	}
	return newEnv(tr, w, cfg, s, kb, open)
}

func newEnv(tr *trace.Trace, w *workload.Workload, cfg Config, s Scheme, kb *knowledge.Provider, open func() (trace.ContactSource, error)) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if w.Config.Nodes != tr.Nodes {
		return nil, errors.New("scheme: workload and trace node counts differ")
	}
	e := &Env{
		Cfg:     cfg,
		Sim:     sim.New(),
		Trace:   tr,
		W:       w,
		N:       tr.Nodes,
		Est:     graph.NewRateEstimator(tr.Nodes, 0),
		M:       metrics.NewCollector(),
		Rng:     mathx.NewRand(cfg.Seed),
		Obs:     cfg.Obs,
		scheme:  s,
		ownData: make([]map[workload.DataID]workload.DataItem, tr.Nodes),
	}
	e.Sim.SetRecorder(cfg.Obs)
	if cfg.Obs.TraceEnabled() || cfg.SpanRetain > 0 {
		e.Prov = provenance.NewTracer(cfg.Obs, cfg.Seed, cfg.SpanRetain)
	}
	e.cQIssued = cfg.Obs.Counter("query", "issued")
	e.cQAnswered = cfg.Obs.Counter("query", "answered")
	e.cQExpired = cfg.Obs.Counter("query", "expired")
	e.cQRetries = cfg.Obs.Counter("query", "retries")
	e.cCIngested = cfg.Obs.Counter("contact", "ingested")
	e.cCClamped = cfg.Obs.Counter("contact", "ingest_clamped")
	e.cCStale = cfg.Obs.Counter("contact", "ingest_stale")
	e.hQueryDelay = cfg.Obs.Histogram("query", "delay_seconds", QueryDelayBounds)
	bufRng := e.Rng.Derive("buffers")
	e.Buffers = make([]*buffer.Buffer, e.N)
	for i := range e.Buffers {
		e.Buffers[i] = buffer.New(bufRng.Uniform(cfg.BufferMinBits, cfg.BufferMaxBits))
		e.Buffers[i].SetRecorder(cfg.Obs)
		e.ownData[i] = make(map[workload.DataID]workload.DataItem)
	}
	opts := []sim.DriverOption{}
	if cfg.Bandwidth > 0 {
		opts = append(opts, sim.WithBandwidth(cfg.Bandwidth))
	}
	fc := cfg.Fault
	if cfg.DropProb > 0 {
		// Legacy knob: route the scheme-level drop probability through
		// the fault engine as its degenerate transfer-kill injector. The
		// engine derives the same "faults" RNG stream at the same point
		// the old sim.WithDropProb wiring did, so seeded results are
		// unchanged.
		fc.KillProb = cfg.DropProb
	}
	if !fc.Zero() {
		eng, err := fault.NewEngine(e.Sim, e.N, fc, e.Rng.Derive)
		if err != nil {
			return nil, err
		}
		e.faults = eng
		opts = append(opts, sim.WithFaults(eng))
	}
	if cfg.Obs != nil {
		opts = append(opts, sim.WithRecorder(cfg.Obs))
	}
	e.Driver = sim.NewDriver(e.Sim, e, opts...)
	if e.faults != nil {
		e.faults.Bind(e.Driver, cfg.Obs)
		e.faults.OnDown = e.nodeDown
		e.faults.OnUp = e.nodeUp
		e.faults.RankedNodes = e.rankedNodes
	}
	if open != nil {
		src, err := open()
		if err != nil {
			return nil, err
		}
		if err := e.Driver.LoadStream(src); err != nil {
			return nil, err
		}
	} else if err := e.Driver.Load(tr); err != nil {
		return nil, err
	}
	if kb == nil {
		if open != nil {
			kb = knowledge.NewStreamProvider(cfg.KnowledgeParams(e.N), open)
		} else {
			kb = knowledge.NewProvider(cfg.KnowledgeParams(e.N), sim.MergeOverlaps(tr.Contacts))
		}
		// The provider is private to this Env, so its metrics belong to
		// this run; shared providers stay recorder-free (see
		// Provider.SetRecorder).
		kb.SetRecorder(cfg.Obs)
	} else if kb.Params() != cfg.KnowledgeParams(e.N).Normalized() {
		return nil, fmt.Errorf("scheme: shared knowledge provider params %+v do not match config %+v",
			kb.Params(), cfg.KnowledgeParams(e.N).Normalized())
	}
	e.kb = kb
	// Empty knowledge until the first refresh.
	e.snap = e.kb.Empty()

	if cfg.Response == ResponseSigmoid {
		tq := w.Config.AvgLifetime / 2
		sig, err := mathx.NewResponseSigmoid(cfg.PMin, cfg.PMax, tq)
		if err != nil {
			return nil, err
		}
		e.sig = sig
	}
	// Maintenance first: the knowledge refresh (and NCL selection) at
	// WarmupEnd must fire before workload events scheduled at the same
	// instant.
	if err := e.scheduleMaintenance(); err != nil {
		return nil, err
	}
	if err := e.scheduleWorkload(); err != nil {
		return nil, err
	}
	if err := s.Init(e); err != nil {
		return nil, fmt.Errorf("scheme %s init: %w", s.Name(), err)
	}
	return e, nil
}

// QueryDelayBounds buckets query access delays (seconds), spanning the
// minutes-to-days range DTN deliveries land in.
var QueryDelayBounds = []float64{60, 300, 900, 3600, 4 * 3600, 12 * 3600, 86400, 3 * 86400}

// ReplayErr returns the sticky streaming error, if any: a truncated or
// corrupt contact source seen by the replay feed or the knowledge feed.
// Always nil for a materialized run. A run with a non-nil ReplayErr
// replayed only a prefix of the trace; discard its results.
func (e *Env) ReplayErr() error {
	if err := e.Driver.FeedErr(); err != nil {
		return err
	}
	return e.kb.StreamErr()
}

// Run executes the simulation to the end of the trace and returns the
// metric report. The replay and the report computation run under obs
// phase spans.
func (e *Env) Run() metrics.Report {
	doneReplay := e.Obs.Phase("replay")
	e.Sim.RunUntil(e.Trace.Duration)
	doneReplay()
	doneReport := e.Obs.Phase("report")
	rep := e.M.Report()
	doneReport()
	return rep
}

// --- sim.Handler ---

// ContactStart implements sim.Handler.
func (e *Env) ContactStart(s *sim.Session) {
	e.Est.Observe(s.A, s.B)
	e.scheme.OnContactStart(s)
}

// ContactEnd implements sim.Handler.
func (e *Env) ContactEnd(s *sim.Session) { e.scheme.OnContactEnd(s) }

// --- workload & maintenance scheduling ---

func (e *Env) scheduleWorkload() error {
	for _, item := range e.W.Data {
		item := item
		if err := e.Sim.Schedule(item.Created, func() { e.deliverData(item) }); err != nil {
			return err
		}
	}
	for _, q := range e.W.Queries {
		q := q
		if err := e.Sim.Schedule(q.Issued, func() { e.issueQuery(q) }); err != nil {
			return err
		}
	}
	return nil
}

// deliverData registers a generated item as the source's own data and
// hands it to the scheme — the body of every data-generation event,
// batch-scheduled or live-injected.
func (e *Env) deliverData(item workload.DataItem) {
	e.ownData[item.Source][item.ID] = item
	e.scheme.OnData(item)
}

// issueQuery runs one query event and reports whether the query
// actually entered the network: a requester that already holds the
// data would not query the network at all.
func (e *Env) issueQuery(q workload.Query) bool {
	if e.Buffers[q.Requester].Has(q.Data) {
		return false
	}
	e.M.QueryIssued(q)
	e.cQIssued.Inc()
	e.Obs.QueryIssued(e.Sim.Now(), int32(q.Requester), int64(q.ID), int64(q.Data))
	e.Prov.QueryIssued(q)
	e.scheme.OnQuery(q)
	if e.Cfg.QueryRetrySec > 0 {
		e.scheduleQueryRetry(q, 1, e.Cfg.QueryRetrySec)
	}
	return true
}

// InjectData appends a live-published data item to the workload at the
// current virtual time and runs the same generation event the batch
// schedule would have: the item becomes the source's own data and the
// scheme reacts to it. IDs stay dense in creation order.
func (e *Env) InjectData(source trace.NodeID, sizeBits, lifetimeSec float64) (workload.DataItem, error) {
	if source < 0 || int(source) >= e.N {
		return workload.DataItem{}, fmt.Errorf("scheme: source node %d outside [0,%d)", source, e.N)
	}
	if sizeBits <= 0 {
		return workload.DataItem{}, errors.New("scheme: data size must be positive")
	}
	if lifetimeSec <= 0 {
		return workload.DataItem{}, errors.New("scheme: data lifetime must be positive")
	}
	now := e.Sim.Now()
	item := workload.DataItem{
		ID:       workload.DataID(len(e.W.Data)),
		Source:   source,
		SizeBits: sizeBits,
		Created:  now,
		Expires:  now + lifetimeSec,
	}
	e.W.Data = append(e.W.Data, item)
	e.deliverData(item)
	return item, nil
}

// InjectQuery appends a live query to the workload at the current
// virtual time and runs the same query event the batch schedule would
// have. issued is false when the requester already held the data (the
// query never entered the network and is not counted).
func (e *Env) InjectQuery(requester trace.NodeID, id workload.DataID, constraintSec float64) (q workload.Query, issued bool, err error) {
	if requester < 0 || int(requester) >= e.N {
		return q, false, fmt.Errorf("scheme: requester node %d outside [0,%d)", requester, e.N)
	}
	if id < 0 || int(id) >= len(e.W.Data) {
		return q, false, fmt.Errorf("scheme: unknown data ID %d", id)
	}
	if constraintSec <= 0 {
		return q, false, errors.New("scheme: query time constraint must be positive")
	}
	now := e.Sim.Now()
	q = workload.Query{
		ID:        workload.QueryID(len(e.W.Queries)),
		Requester: requester,
		Data:      id,
		Issued:    now,
		Deadline:  now + constraintSec,
	}
	e.W.Queries = append(e.W.Queries, q)
	return q, e.issueQuery(q), nil
}

// IngestResult summarizes one live contact-ingest batch: Scheduled
// contacts entered the event heap, Clamped ones had a start in the past
// moved up to the current virtual time, Stale ones had already ended
// and were skipped.
type IngestResult struct {
	Scheduled int
	Clamped   int
	Stale     int
}

// IngestContacts feeds live contacts into the replay at the current
// virtual time — the path a real (non-preset) contact stream enters the
// engine by. The whole batch is validated first against the shared
// trace.CheckContact rules plus the trace window (end must not pass the
// trace duration), so a rejected batch schedules nothing. Accepted
// contacts whose start is already in the past are clamped to now;
// contacts that have entirely ended are counted stale and skipped. The
// outcome is a deterministic function of the applied op sequence, which
// is what lets a write-ahead log replay ingests bit-identically.
func (e *Env) IngestContacts(cs []trace.Contact) (IngestResult, error) {
	for i, c := range cs {
		if err := trace.CheckContact(e.N, c); err != nil {
			return IngestResult{}, fmt.Errorf("scheme: ingest contact %d: %w", i, err)
		}
		if c.End > e.Trace.Duration {
			return IngestResult{}, fmt.Errorf("scheme: ingest contact %d: contact end %g after trace duration %g", i, c.End, e.Trace.Duration)
		}
	}
	var res IngestResult
	now := e.Sim.Now()
	for _, c := range cs {
		if c.End <= now {
			res.Stale++
			continue
		}
		if c.Start < now {
			c.Start = now
			res.Clamped++
		}
		if err := e.Driver.InjectContact(c); err != nil {
			return res, err
		}
		res.Scheduled++
	}
	e.cCIngested.Add(uint64(res.Scheduled))
	e.cCClamped.Add(uint64(res.Clamped))
	e.cCStale.Add(uint64(res.Stale))
	return res, nil
}

func (e *Env) scheduleMaintenance() error {
	// Knowledge refreshes start at the end of warm-up (NCL selection
	// happens then) and repeat every RefreshSec.
	if _, err := e.Sim.Every(e.Cfg.WarmupEnd, e.Cfg.RefreshSec, e.refreshKnowledge); err != nil {
		return err
	}
	if _, err := e.Sim.Every(e.Cfg.WarmupEnd+e.Cfg.SweepSec, e.Cfg.SweepSec, e.sweep); err != nil {
		return err
	}
	if e.Cfg.CheckInvariants {
		if _, err := e.Sim.Every(e.Cfg.SweepSec, e.Cfg.SweepSec, e.checkInvariants); err != nil {
			return err
		}
	}
	return nil
}

func (e *Env) refreshKnowledge() {
	now := e.Sim.Now()
	e.snap = e.kb.At(now)
	e.Obs.Knowledge(now, int64(e.snap.Version()), float64(e.snap.ReusedSources()))
	if e.ncls == nil && e.Cfg.NCLCount > 0 {
		// One-time NCL selection at the end of warm-up; the paper keeps
		// the selected NCLs fixed during data access (Sec. IV-A).
		e.ncls = e.selectNCLs()
	}
}

func (e *Env) sweep() {
	now := e.Sim.Now()
	for n := range e.Buffers {
		e.Buffers[n].DropExpired(now)
		for id, item := range e.ownData[n] {
			if item.Expired(now) {
				delete(e.ownData[n], id)
			}
		}
	}
	e.scheme.OnSweep(now)
	e.sampleCaching(now)
	e.scanExpiredQueries(now)
	e.Prov.Sweep(now)
}

// scanExpiredQueries emits a query-expired event for every registered,
// unsatisfied query whose deadline has passed, once each. Purely
// observational (and skipped entirely without a recorder): it reads the
// collector, never writes it.
func (e *Env) scanExpiredQueries(now float64) {
	if e.Obs == nil {
		return
	}
	if len(e.expiredSeen) < len(e.W.Queries) {
		// Sized to the workload, regrown when live injections extend it
		// after the first sweep.
		grown := make([]bool, len(e.W.Queries))
		copy(grown, e.expiredSeen)
		e.expiredSeen = grown
	}
	for i := range e.W.Queries {
		q := &e.W.Queries[i]
		if e.expiredSeen[i] || q.Deadline > now {
			continue
		}
		if e.M.Satisfied(q.ID) {
			e.expiredSeen[i] = true
			continue
		}
		if !e.M.Registered(q.ID) {
			// Never issued (requester already held the data); nothing to
			// expire, but mark it so later sweeps skip the slot.
			e.expiredSeen[i] = true
			continue
		}
		e.expiredSeen[i] = true
		e.cQExpired.Inc()
		e.Obs.QueryExpired(now, int32(q.Requester), int64(q.ID))
	}
}

// sampleCaching records the caching overhead: average number of cached
// copies per live data item, plus buffer occupancy.
func (e *Env) sampleCaching(now float64) {
	if len(e.copyScratch) < len(e.W.Data) {
		e.copyScratch = make([]int, len(e.W.Data))
	}
	copies := e.copyScratch
	for i := range copies {
		copies[i] = 0
	}
	var used, capacity float64
	for _, b := range e.Buffers {
		used += b.Used()
		capacity += b.Capacity()
		for _, en := range b.Entries() {
			if !en.Data.Expired(now) && int(en.Data.ID) < len(copies) {
				copies[en.Data.ID]++
			}
		}
	}
	live := 0
	total := 0
	for _, d := range e.W.Data {
		if d.Live(now) {
			live++
			total += copies[d.ID]
		}
	}
	if live > 0 {
		e.M.SampleCopies(float64(total) / float64(live))
	}
	if capacity > 0 {
		e.M.SampleBufferUse(used / capacity)
	}
}

// --- knowledge & helpers for schemes ---

// selectNCLs ranks nodes per the configured strategy and returns the
// top K.
func (e *Env) selectNCLs() []trace.NodeID {
	scores := make([]float64, e.N)
	switch e.Cfg.NCLSelection {
	case NCLByDegree:
		for n := 0; n < e.N; n++ {
			scores[n] = float64(len(e.snap.Graph().Neighbors(trace.NodeID(n))))
		}
	case NCLByContacts:
		for n := 0; n < e.N; n++ {
			scores[n] = float64(e.Est.NodeContacts(trace.NodeID(n)))
		}
	case NCLRandom:
		rng := e.Rng.Derive("ncl-random")
		for n, p := range rng.Perm(e.N) {
			scores[n] = float64(p)
		}
	default: // NCLByMetric, the paper's Eq. (3)
		scores = e.snap.Metrics()
	}
	return graph.SelectNCLs(scores, e.Cfg.NCLCount)
}

// Graph returns the latest contact-rate graph. It may be shared with
// other schemes: treat it as read-only.
func (e *Env) Graph() *graph.Graph { return e.snap.Graph() }

// Knowledge returns the immutable knowledge snapshot of the latest
// refresh (the version-0 empty snapshot before warm-up ends). Schemes
// must never mutate it: in a comparison the same value is shared.
func (e *Env) Knowledge() *knowledge.Snapshot { return e.snap }

// NCLs returns the selected central nodes (nil before warm-up ends or
// when NCLCount is 0), ordered by descending metric.
func (e *Env) NCLs() []trace.NodeID { return e.ncls }

// Weight returns the opportunistic-path weight p_ab(t) under current
// knowledge.
func (e *Env) Weight(a, b trace.NodeID, t float64) float64 {
	return e.snap.Weight(a, b, t)
}

// MetricWeight is Weight evaluated at the configured horizon T; it is
// the relay-selection metric for gradient forwarding, answered from the
// snapshot's precomputed weight matrix.
func (e *Env) MetricWeight(a, b trace.NodeID) float64 {
	return e.snap.MetricWeight(a, b)
}

// OwnData returns the item if node n generated it and it is still live.
func (e *Env) OwnData(n trace.NodeID, id workload.DataID) (workload.DataItem, bool) {
	item, ok := e.ownData[n][id]
	if !ok || item.Expired(e.Sim.Now()) {
		return workload.DataItem{}, false
	}
	return item, true
}

// HasData reports whether node n can serve data id right now, either
// from its caching buffer or as the original source.
func (e *Env) HasData(n trace.NodeID, id workload.DataID) bool {
	if en := e.Buffers[n].Get(id); en != nil && !en.Data.Expired(e.Sim.Now()) {
		return true
	}
	_, ok := e.OwnData(n, id)
	return ok
}

// ResponseProb returns the probability with which caching node c should
// return data for query q right now (Sec. V-C). Central nodes reply
// deterministically; this is for ordinary caching nodes.
func (e *Env) ResponseProb(c, requester trace.NodeID, q workload.Query) float64 {
	remaining := q.Deadline - e.Sim.Now()
	if remaining <= 0 {
		return 0
	}
	switch e.Cfg.Response {
	case ResponseGlobal:
		return e.Weight(c, requester, remaining)
	case ResponseSigmoid:
		return e.sig.Prob(remaining)
	default:
		return 1
	}
}

// Popularity evaluates Eq. (6) for stats rs of an item expiring at
// expires, honoring the configured Eq. (6) variant.
func (e *Env) Popularity(rs *buffer.RequestStats, expires float64) float64 {
	return rs.Popularity(e.Sim.Now(), expires, e.Cfg.PopularityFromFirst)
}

// XferSec returns the link service time of a transfer of the given
// size: the exact bits/bandwidth division the contact driver performs,
// so provenance spans attribute transfer time bitwise consistently
// with the simulated timeline.
func (e *Env) XferSec(bits float64) float64 {
	return bits / e.Driver.Bandwidth()
}
