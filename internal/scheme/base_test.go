package scheme

import (
	"testing"

	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// testBase builds a Base over a small env without running the sim.
func testBase(t *testing.T) (*Base, *Env, *workload.Workload) {
	t.Helper()
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	env, err := NewEnv(tr, w, testConfig(tr), NewNoCache())
	if err != nil {
		t.Fatal(err)
	}
	return NewBase(env), env, w
}

func TestBaseCarryQueryDedup(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	q := w.Queries[0]
	qc1 := &QueryCarry{Q: q, Target: 0, NCL: -1}
	qc2 := &QueryCarry{Q: q, Target: 0, NCL: -1}
	b.CarryQuery(2, qc1)
	b.CarryQuery(2, qc2) // same key -> ignored
	if got := b.Queries(2); len(got) != 1 {
		t.Fatalf("queries = %d, want 1", len(got))
	}
	// Different target is a distinct copy.
	b.CarryQuery(2, &QueryCarry{Q: q, Target: 1, NCL: -1})
	if got := b.Queries(2); len(got) != 2 {
		t.Fatalf("queries = %d, want 2", len(got))
	}
	b.DropQuery(2, qc1)
	if got := b.Queries(2); len(got) != 1 || got[0].Target != 1 {
		t.Fatalf("after drop: %v", got)
	}
}

func TestBaseCarryQueryRejectsExpired(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(39000) // past the deadline
	q := w.Queries[0]
	b.CarryQuery(2, &QueryCarry{Q: q, Target: 0})
	if len(b.Queries(2)) != 0 {
		t.Error("expired query carried")
	}
}

func TestBaseCarryReplyDedup(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	rc := &ReplyCarry{Q: w.Queries[0], Item: w.Data[0]}
	b.CarryReply(1, rc)
	b.CarryReply(1, rc)
	if len(b.Replies(1)) != 1 {
		t.Error("duplicate reply carried")
	}
	b.DropReply(1, rc.Q.ID)
	if len(b.Replies(1)) != 0 {
		t.Error("reply not dropped")
	}
}

func TestBaseObserveAndStats(t *testing.T) {
	b, _, _ := testBase(t)
	if s := b.Stats(0, 5); s.Count != 0 {
		t.Error("unknown item has stats")
	}
	b.Observe(0, 5, 100)
	b.Observe(0, 5, 200)
	s := b.Stats(0, 5)
	if s.Count != 2 || s.First != 100 || s.Last != 200 {
		t.Errorf("stats = %+v", s)
	}
	// Stats returns a copy; mutating it must not affect the original.
	s.Count = 99
	if b.Stats(0, 5).Count != 2 {
		t.Error("Stats leaked internal pointer")
	}
}

func TestBaseMarkResponded(t *testing.T) {
	b, _, _ := testBase(t)
	if !b.MarkResponded(1, 7) {
		t.Error("first decision rejected")
	}
	if b.MarkResponded(1, 7) {
		t.Error("second decision allowed")
	}
	if !b.MarkResponded(2, 7) {
		t.Error("per-node independence broken")
	}
}

// TestBaseMarkRespondedBitsetScale drives the responded bitset across
// word boundaries and at preset-scale query IDs: each bit is
// independent, sparse growth pads with zero words, and neighbors stay
// untouched.
func TestBaseMarkRespondedBitsetScale(t *testing.T) {
	b, _, _ := testBase(t)
	// Word boundaries (64-bit words) plus a preset-scale ID; marking in
	// descending-then-ascending order exercises grow-then-fill.
	ids := []workload.QueryID{100000, 63, 64, 127, 128, 0, 65535, 65536}
	for _, id := range ids {
		if !b.MarkResponded(1, id) {
			t.Errorf("first decision for id %d rejected", id)
		}
	}
	for _, id := range ids {
		if b.MarkResponded(1, id) {
			t.Errorf("second decision for id %d allowed", id)
		}
	}
	// Bits adjacent to every marked ID are still free.
	for _, id := range []workload.QueryID{62, 66, 126, 129, 1, 99999, 100001} {
		if !b.MarkResponded(1, id) {
			t.Errorf("unmarked neighbor id %d reads as decided", id)
		}
	}
	// Other nodes share no state.
	if !b.MarkResponded(2, 100000) {
		t.Error("per-node independence broken at scale")
	}
}

// TestBaseSweepExpiredClearsOnlyExpiredBits pins the sweep's bit
// clearing: bits of expired workload queries are released for reuse,
// bits of live queries and of IDs outside the workload stay set.
func TestBaseSweepExpiredClearsOnlyExpiredBits(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	expired := w.Queries[0] // deadline 38000 in testBase's manual workload
	b.MarkResponded(1, expired.ID)
	outside := workload.QueryID(len(w.Queries) + 70) // not in the workload
	b.MarkResponded(1, outside)
	b.SweepExpired(expired.Deadline + 1)
	if !b.MarkResponded(1, expired.ID) {
		t.Error("expired query's bit not cleared")
	}
	if b.MarkResponded(1, outside) {
		t.Error("out-of-workload bit cleared by sweep")
	}
}

func TestBaseSweepExpired(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	q := w.Queries[0]
	b.CarryQuery(2, &QueryCarry{Q: q, Target: 0})
	b.CarryReply(1, &ReplyCarry{Q: q, Item: w.Data[0]})
	b.MarkResponded(1, q.ID)
	b.SweepExpired(q.Deadline + 1)
	if len(b.Queries(2)) != 0 || len(b.Replies(1)) != 0 {
		t.Error("expired carries not swept")
	}
	if !b.MarkResponded(1, q.ID) {
		t.Error("responded flag not cleared with the query")
	}
}

func TestBaseRespond(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	q := w.Queries[0]
	qc := &QueryCarry{Q: q, Target: 0}
	// Node 1 has no data: no response.
	if b.Respond(1, qc, true) {
		t.Error("responded without data")
	}
	// Node 0 is the source: forced response creates a reply.
	if !b.Respond(0, qc, true) {
		t.Error("source did not respond")
	}
	if len(b.Replies(0)) != 1 {
		t.Error("reply not carried")
	}
	// One-shot: a second respond for the same query is refused.
	if b.Respond(0, qc, true) {
		t.Error("double response allowed")
	}
}

func TestBaseRespondAfterDeadline(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(39500)
	q := w.Queries[0] // deadline 38000
	if b.Respond(0, &QueryCarry{Q: q, Target: 0}, true) {
		t.Error("responded after deadline")
	}
}

func TestBaseQueriesDeterministicOrder(t *testing.T) {
	b, env, w := testBase(t)
	env.Sim.RunUntil(22000)
	q := w.Queries[0]
	for _, target := range []trace.NodeID{1, 0} {
		b.CarryQuery(2, &QueryCarry{Q: q, Target: target})
	}
	got := b.Queries(2)
	if got[0].Target != 0 || got[1].Target != 1 {
		t.Errorf("order = %v, %v", got[0].Target, got[1].Target)
	}
}

// sprayScheme is a minimal scheme that disseminates a single query with
// a spray budget, to exercise Base's spray-and-wait branch directly.
type sprayScheme struct {
	base    *Base
	arrived map[trace.NodeID]bool
}

func (s *sprayScheme) Name() string { return "spray-test" }
func (s *sprayScheme) Init(e *Env) error {
	s.base = NewBase(e)
	s.arrived = make(map[trace.NodeID]bool)
	return nil
}
func (s *sprayScheme) OnData(workload.DataItem) {}
func (s *sprayScheme) OnQuery(q workload.Query) {
	s.base.CarryQuery(q.Requester, &QueryCarry{Q: q, Target: 0, NCL: -1, Copies: 4})
}
func (s *sprayScheme) OnContactStart(sess *sim.Session) {
	for _, from := range []trace.NodeID{sess.A, sess.B} {
		s.base.ForwardQueries(sess, from, func(at trace.NodeID, qc *QueryCarry) {
			s.arrived[at] = true
		})
	}
}
func (s *sprayScheme) OnContactEnd(*sim.Session) {}
func (s *sprayScheme) OnSweep(now float64)       { s.base.SweepExpired(now) }

func TestSprayQueryReplication(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	s := &sprayScheme{}
	env, err := NewEnv(tr, w, testConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	// Right after the first 1-2 contact (t=22500) the spray must have
	// replicated: both the requester (2) and the relay (1) hold copies.
	env.Sim.RunUntil(22800)
	if !s.arrived[1] {
		t.Fatal("sprayed query never replicated to the relay")
	}
	// Replication (not custody transfer): copies coexist at several
	// nodes while the query is live.
	carriers := 0
	for n := trace.NodeID(0); n < 3; n++ {
		if len(s.base.Queries(n)) > 0 {
			carriers++
		}
	}
	if carriers < 2 {
		t.Errorf("replicated copies at %d nodes, want >= 2", carriers)
	}
	// And the copy budget was split, not duplicated.
	if qs := s.base.Queries(2); len(qs) == 1 && qs[0].Copies >= 4 {
		t.Errorf("requester kept the full budget: %d", qs[0].Copies)
	}
	// By the end, the target must have received the query.
	env.Run()
	if !s.arrived[0] {
		t.Error("sprayed query never reached the target")
	}
}
