package scheme

import (
	"dtncache/internal/buffer"
	"dtncache/internal/fault"
	"dtncache/internal/graph"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Defaults of the query-retry backoff chain (selected by zero config
// values).
const (
	DefaultQueryRetryMax    = 3
	DefaultQueryRetryFactor = 2.0
)

// FaultAware is implemented by schemes that react to fault-injection
// node state transitions (the intentional scheme's recovery logic).
type FaultAware interface {
	// OnNodeDown fires after a node crashed: its contacts are already
	// force-closed and, with Fault.WipeOnCrash, its buffer wiped
	// (wiped holds the lost entries in ascending ID order).
	OnNodeDown(n trace.NodeID, at float64, wiped []*buffer.Entry)
	// OnNodeUp fires when a crashed node recovers.
	OnNodeUp(n trace.NodeID, at float64)
}

// Faults returns the installed fault engine, nil without one.
func (e *Env) Faults() *fault.Engine { return e.faults }

// nodeDown is the fault engine's OnDown hook: the crash loses the
// node's cached copies (when configured) and the scheme drops its
// volatile protocol state. The node's own generated data survives on
// stable storage (ownData is untouched).
func (e *Env) nodeDown(n trace.NodeID, at float64) {
	var wiped []*buffer.Entry
	if e.Cfg.Fault.WipeOnCrash {
		wiped = e.Buffers[n].Wipe()
	}
	if fa, ok := e.scheme.(FaultAware); ok {
		fa.OnNodeDown(n, at, wiped)
	}
}

// nodeUp is the fault engine's OnUp hook.
func (e *Env) nodeUp(n trace.NodeID, at float64) {
	if fa, ok := e.scheme.(FaultAware); ok {
		fa.OnNodeUp(n, at)
	}
}

// rankedNodes supplies blackout victim selection. The configured NCLs
// are exactly the top-k metric ranking once warm-up ended; before that
// the (empty) snapshot yields the lowest node IDs, so blackout windows
// should be configured past warm-up.
func (e *Env) rankedNodes(k int) []trace.NodeID {
	if len(e.ncls) >= k {
		return e.ncls[:k]
	}
	return graph.SelectNCLs(e.snap.Metrics(), k)
}

// scheduleQueryRetry arms attempt number attempt of q's retry chain,
// delay seconds from now. The chain stops at the configured attempt
// cap, at the query deadline, or as soon as the query is satisfied.
func (e *Env) scheduleQueryRetry(q workload.Query, attempt int, delay float64) {
	maxAttempts := e.Cfg.QueryRetryMax
	if maxAttempts == 0 {
		maxAttempts = DefaultQueryRetryMax
	}
	if attempt > maxAttempts || e.Sim.Now()+delay >= q.Deadline {
		return
	}
	// Scheduling relative to now never fails.
	_ = e.Sim.After(delay, func() {
		if e.M.Satisfied(q.ID) || e.Buffers[q.Requester].Has(q.Data) {
			return
		}
		e.cQRetries.Inc()
		e.Obs.QueryRetry(e.Sim.Now(), int32(q.Requester), int64(q.ID), int64(attempt))
		e.Prov.QueryRetry(q, e.Sim.Now(), attempt)
		e.scheme.OnQuery(q)
		factor := e.Cfg.QueryRetryFactor
		if factor == 0 {
			factor = DefaultQueryRetryFactor
		}
		next := delay * factor
		if e.Cfg.QueryRetryCapSec > 0 && next > e.Cfg.QueryRetryCapSec {
			next = e.Cfg.QueryRetryCapSec
		}
		e.scheduleQueryRetry(q, attempt+1, next)
	})
}

// EffectiveNCL returns the node currently acting as central for NCL k:
// the configured center normally, or — under NCLFailover with the
// center down — the best-ranked live stand-in under current knowledge.
// Without a fault engine or failover this is a branch and an index.
func (e *Env) EffectiveNCL(k int) trace.NodeID {
	if e.faults == nil || !e.Cfg.NCLFailover {
		return e.ncls[k]
	}
	if len(e.effNCLs) != len(e.ncls) || e.effVersion != e.faults.Version() || e.effSnap != e.snap {
		e.recomputeEffNCLs()
	}
	return e.effNCLs[k]
}

func containsNode(ns []trace.NodeID, n trace.NodeID) bool {
	for _, m := range ns {
		if m == n {
			return true
		}
	}
	return false
}

// recomputeEffNCLs rebuilds the failover assignment: each down center
// is replaced by the highest-metric node that is up, is not itself a
// configured center, and is not already standing in for another slot.
// A slot with no viable stand-in keeps its down center (pushes toward
// it are then bounded by PushRetryBudget). The result is cached per
// (engine version, knowledge snapshot), so the rebuild runs per fault
// transition or refresh, not per access.
func (e *Env) recomputeEffNCLs() {
	prev := e.effNCLs
	eff := make([]trace.NodeID, len(e.ncls))
	var ranking []trace.NodeID
	for k, center := range e.ncls {
		eff[k] = center
		if !e.faults.NodeDown(center) {
			continue
		}
		if ranking == nil {
			ranking = graph.SelectNCLs(e.snap.Metrics(), e.N)
		}
		for _, cand := range ranking {
			if e.faults.NodeDown(cand) || containsNode(e.ncls, cand) || containsNode(eff[:k], cand) {
				continue
			}
			eff[k] = cand
			break
		}
	}
	for k := range eff {
		if prev != nil && k < len(prev) && prev[k] == eff[k] {
			continue
		}
		if eff[k] != e.ncls[k] {
			e.Obs.Failover(e.Sim.Now(), int32(e.ncls[k]), int32(eff[k]), int64(k))
		}
	}
	e.effNCLs = eff
	e.effVersion = e.faults.Version()
	e.effSnap = e.snap
}

// noteResponse feeds the no-duplicate-response invariant: it records
// every reply actually created and counts repeats per (node, query).
// A single branch when the checker is off.
func (e *Env) noteResponse(n trace.NodeID, id workload.QueryID) {
	if !e.Cfg.CheckInvariants {
		return
	}
	if e.respSeen == nil {
		e.respSeen = make(map[uint64]bool)
	}
	key := uint64(n)<<32 | uint64(uint32(id))
	if e.respSeen[key] {
		e.dupResponses++
		return
	}
	e.respSeen[key] = true
}

// maxViolations caps how many invariant breaches one run collects.
const maxViolations = 100

func (e *Env) checkInvariants() {
	if len(e.violations) >= maxViolations {
		return
	}
	e.violations = append(e.violations, fault.Check(e, e.Sim.Now())...)
}

// InvariantViolations returns the breaches collected so far (nil when
// clean or when CheckInvariants is off).
func (e *Env) InvariantViolations() []fault.Violation { return e.violations }

// --- fault.World (the invariant checker's view of the run) ---

// NumNodes implements fault.World.
func (e *Env) NumNodes() int { return e.N }

// NodeDown reports whether fault injection currently has n crashed
// (always false without an engine).
func (e *Env) NodeDown(n trace.NodeID) bool {
	return e.faults != nil && e.faults.NodeDown(n)
}

// BufferUsage implements fault.World.
func (e *Env) BufferUsage(n trace.NodeID) (used, capacity float64) {
	return e.Buffers[n].Used(), e.Buffers[n].Capacity()
}

// BusyTransfers implements fault.World.
func (e *Env) BusyTransfers() [][2]trace.NodeID { return e.Driver.BusyPairs() }

// DuplicateResponses implements fault.World.
func (e *Env) DuplicateResponses() int { return e.dupResponses }
