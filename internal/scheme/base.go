package scheme

import (
	"math/bits"

	"dtncache/internal/buffer"
	"dtncache/internal/provenance"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// QueryCarry is a query copy carried by a node toward a target (a
// central node for the intentional scheme, the data source for the
// baselines). Gradient forwarding keeps a single copy per target: the
// relay deletes its copy after handing it to a better-positioned node.
type QueryCarry struct {
	Q workload.Query
	// Target is the destination node of this copy.
	Target trace.NodeID
	// NCL is the index (into Env.NCLs) of the targeted central node, or
	// -1 for baselines targeting the source.
	NCL int
	// Broadcast marks the copy as being flooded within an NCL's caching
	// subgraph after reaching the central node (Sec. V-B).
	Broadcast bool
	// Copies is the remaining logical copy budget for spray-and-wait
	// dissemination (0 or 1 means single-copy gradient forwarding).
	Copies int
}

// key distinguishes copies of the same query aimed at different targets.
func (qc *QueryCarry) key() queryKey {
	return queryKey{ID: qc.Q.ID, Target: qc.Target}
}

type queryKey struct {
	ID     workload.QueryID
	Target trace.NodeID
}

// ReplyCarry is a data copy traveling back to a requester.
type ReplyCarry struct {
	Q    workload.Query
	Item workload.DataItem
}

// Base bundles the per-node protocol state and forwarding machinery
// every scheme shares: carried query copies, carried replies, per-node
// request histories, and single-shot response bookkeeping.
//
// All per-node stores are slice-backed (QueryID/DataID are dense small
// integers, see workload): carried copies live in slices sorted by
// (query ID, target) so per-contact iteration needs no map walk, no
// re-sort, and no allocation; request histories are dense arrays
// indexed by DataID; responded flags are bitsets indexed by QueryID.
// This is the difference between the map-backed seed (a sort per
// ForwardQueries call) and the zero-allocation replay loop — see
// DESIGN.md "Replay performance".
type Base struct {
	E *Env
	// queries[n] holds the query copies node n is carrying, sorted by
	// (Q.ID, Target).
	queries [][]*QueryCarry
	// replies[n] holds the reply copies node n is carrying, sorted by
	// Q.ID.
	replies [][]*ReplyCarry
	// history[n] is node n's locally observed request history, indexed
	// by DataID (grown on demand).
	history [][]buffer.RequestStats
	// responded[n] marks queries node n has already decided about, one
	// bit per QueryID.
	responded [][]uint64
	// inflightQ/inflightR guard single-copy custody: a copy with an
	// outstanding transfer on one contact must not be offered on a
	// concurrent contact.
	inflightQ map[inflight]bool
	inflightR map[inflight]bool
}

// inflight identifies an outstanding transfer of a carried message.
type inflight struct {
	node   trace.NodeID
	query  workload.QueryID
	target trace.NodeID
}

// NewBase allocates the per-node state for the environment.
func NewBase(e *Env) *Base {
	return &Base{
		E:         e,
		queries:   make([][]*QueryCarry, e.N),
		replies:   make([][]*ReplyCarry, e.N),
		history:   make([][]buffer.RequestStats, e.N),
		responded: make([][]uint64, e.N),
		inflightQ: make(map[inflight]bool),
		inflightR: make(map[inflight]bool),
	}
}

// Observe records a request occurrence for item id in node n's history.
func (b *Base) Observe(n trace.NodeID, id workload.DataID, at float64) {
	h := b.history[n]
	if int(id) >= len(h) {
		h = append(h, make([]buffer.RequestStats, int(id)+1-len(h))...)
		b.history[n] = h
	}
	h[id].Observe(at)
}

// Stats returns node n's request history for item id (zero stats if
// none).
func (b *Base) Stats(n trace.NodeID, id workload.DataID) buffer.RequestStats {
	if h := b.history[n]; int(id) < len(h) {
		return h[id]
	}
	return buffer.RequestStats{}
}

// searchQueryKey returns the insertion index of key k in qs.
//
//dtn:allocfree hand-rolled binary search, no sort.Search closure
func searchQueryKey(qs []*QueryCarry, k queryKey) int {
	lo, hi := 0, len(qs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qs[mid].Q.ID < k.ID || (qs[mid].Q.ID == k.ID && qs[mid].Target < k.Target) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchQueryID returns the index of the first copy with Q.ID >= id.
//
//dtn:allocfree
func searchQueryID(qs []*QueryCarry, id workload.QueryID) int {
	lo, hi := 0, len(qs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qs[mid].Q.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchReply returns the insertion index of query id in rs.
//
//dtn:allocfree
func searchReply(rs []*ReplyCarry, id workload.QueryID) int {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid].Q.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CarryQuery adds a query copy to node n (ignored if already carried or
// expired).
func (b *Base) CarryQuery(n trace.NodeID, qc *QueryCarry) {
	if qc.Q.Deadline <= b.E.Sim.Now() {
		return
	}
	qs := b.queries[n]
	i := searchQueryKey(qs, qc.key())
	if i < len(qs) && qs[i].key() == qc.key() {
		return
	}
	qs = append(qs, nil)
	copy(qs[i+1:], qs[i:])
	qs[i] = qc
	b.queries[n] = qs
}

// DropQuery removes a query copy from node n.
func (b *Base) DropQuery(n trace.NodeID, qc *QueryCarry) {
	qs := b.queries[n]
	i := searchQueryKey(qs, qc.key())
	if i >= len(qs) || qs[i].key() != qc.key() {
		return
	}
	last := len(qs) - 1
	copy(qs[i:], qs[i+1:])
	qs[last] = nil
	b.queries[n] = qs[:last]
}

// CarriesQueryKey reports whether node n carries this exact copy
// (same query, same target).
//
//dtn:allocfree
func (b *Base) CarriesQueryKey(n trace.NodeID, qc *QueryCarry) bool {
	qs := b.queries[n]
	i := searchQueryKey(qs, qc.key())
	return i < len(qs) && qs[i].key() == qc.key()
}

// CarriesQueryID reports whether node n carries any copy of the query,
// regardless of target.
//
//dtn:allocfree
func (b *Base) CarriesQueryID(n trace.NodeID, id workload.QueryID) bool {
	qs := b.queries[n]
	i := searchQueryID(qs, id)
	return i < len(qs) && qs[i].Q.ID == id
}

// Queries returns a copy of the query copies node n carries, in
// deterministic order (by query ID then target). Hot paths use
// ForEachQuery instead; this accessor allocates.
func (b *Base) Queries(n trace.NodeID) []*QueryCarry {
	return append([]*QueryCarry(nil), b.queries[n]...)
}

// ForEachQuery visits node n's query copies in (query ID, target)
// order without allocating. fn may drop the copy it is handed (and no
// other) from n's store; additions to n must be deferred.
//
//dtn:allocfree
func (b *Base) ForEachQuery(n trace.NodeID, fn func(qc *QueryCarry)) {
	for i := 0; i < len(b.queries[n]); {
		qc := b.queries[n][i]
		fn(qc)
		if i < len(b.queries[n]) && b.queries[n][i] == qc {
			i++
		}
	}
}

// CarryReply adds a reply copy to node n (ignored if one for the same
// query is already carried or the query expired).
func (b *Base) CarryReply(n trace.NodeID, rc *ReplyCarry) {
	if rc.Q.Deadline <= b.E.Sim.Now() {
		return
	}
	rs := b.replies[n]
	i := searchReply(rs, rc.Q.ID)
	if i < len(rs) && rs[i].Q.ID == rc.Q.ID {
		return
	}
	rs = append(rs, nil)
	copy(rs[i+1:], rs[i:])
	rs[i] = rc
	b.replies[n] = rs
}

// DropReply removes a reply copy from node n.
func (b *Base) DropReply(n trace.NodeID, id workload.QueryID) {
	rs := b.replies[n]
	i := searchReply(rs, id)
	if i >= len(rs) || rs[i].Q.ID != id {
		return
	}
	last := len(rs) - 1
	copy(rs[i:], rs[i+1:])
	rs[last] = nil
	b.replies[n] = rs[:last]
}

// CarriesReply reports whether node n carries a reply for the query.
//
//dtn:allocfree
func (b *Base) CarriesReply(n trace.NodeID, id workload.QueryID) bool {
	rs := b.replies[n]
	i := searchReply(rs, id)
	return i < len(rs) && rs[i].Q.ID == id
}

// Replies returns a copy of the reply copies node n carries, ordered by
// query ID. Hot paths use ForEachReply instead; this accessor
// allocates.
func (b *Base) Replies(n trace.NodeID) []*ReplyCarry {
	return append([]*ReplyCarry(nil), b.replies[n]...)
}

// ForEachReply visits node n's reply copies in query-ID order without
// allocating, under the same contract as ForEachQuery.
//
//dtn:allocfree
func (b *Base) ForEachReply(n trace.NodeID, fn func(rc *ReplyCarry)) {
	for i := 0; i < len(b.replies[n]); {
		rc := b.replies[n][i]
		fn(rc)
		if i < len(b.replies[n]) && b.replies[n][i] == rc {
			i++
		}
	}
}

// MarkResponded records that node n has made its one-shot response
// decision for the query; it returns false if already decided.
//
//dtn:allocfree the bitset grows once per 64 query IDs, then stays flat
func (b *Base) MarkResponded(n trace.NodeID, id workload.QueryID) bool {
	w, bit := int(id)>>6, uint(id)&63
	r := b.responded[n]
	if w >= len(r) {
		//lint:allow allocfree one-time bitset growth, amortized over 64 IDs
		r = append(r, make([]uint64, w+1-len(r))...)
		b.responded[n] = r
	}
	if r[w]&(1<<bit) != 0 {
		return false
	}
	r[w] |= 1 << bit
	return true
}

// SweepExpired drops expired query and reply copies everywhere, along
// with the one-shot response decisions of expired queries. Schemes call
// it from OnSweep.
func (b *Base) SweepExpired(now float64) {
	for n := 0; n < b.E.N; n++ {
		qs := b.queries[n]
		kept := qs[:0]
		for _, qc := range qs {
			if qc.Q.Deadline > now {
				kept = append(kept, qc)
			}
		}
		for i := len(kept); i < len(qs); i++ {
			qs[i] = nil
		}
		b.queries[n] = kept

		rs := b.replies[n]
		keptR := rs[:0]
		for _, rc := range rs {
			if rc.Q.Deadline > now {
				keptR = append(keptR, rc)
			}
		}
		for i := len(keptR); i < len(rs); i++ {
			rs[i] = nil
		}
		b.replies[n] = keptR

		for w, word := range b.responded[n] {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				word &^= 1 << uint(bit)
				id := w<<6 + bit
				if id < len(b.E.W.Queries) && b.E.W.Queries[id].Deadline <= now {
					b.responded[n][w] &^= 1 << uint(bit)
				}
			}
		}
	}
}

// QueryArrival is the scheme-specific handler invoked when a query copy
// reaches a node (its gradient target or any node during broadcast).
type QueryArrival func(at trace.NodeID, qc *QueryCarry)

// ForwardQueries enqueues query transfers from node `from` to its
// session peer.
//
// A copy in the single-copy regime (Copies <= 1) is handed over when
// the peer is the copy's target or has a strictly higher metric weight
// toward the target; custody moves with it. A copy still in the spray
// regime (Copies > 1, binary spray-and-wait) instead *replicates*: any
// peer that has not seen the query receives half the copy budget, so
// the query fans out quickly before focusing on the target. onArrive
// runs at the receiver; copies in Broadcast mode are handled by the
// intentional scheme separately.
func (b *Base) ForwardQueries(s *sim.Session, from trace.NodeID, onArrive QueryArrival) {
	to := s.Peer(from)
	now := b.E.Sim.Now()
	b.ForEachQuery(from, func(qc *QueryCarry) {
		if qc.Broadcast {
			return
		}
		if qc.Q.Deadline <= now {
			b.DropQuery(from, qc)
			return
		}
		if qc.Copies > 1 && to != qc.Target {
			b.sprayQuery(s, from, to, qc, onArrive)
			return
		}
		better := to == qc.Target ||
			b.E.MetricWeight(to, qc.Target) > b.E.MetricWeight(from, qc.Target)
		if !better {
			return
		}
		key := inflight{node: from, query: qc.Q.ID, target: qc.Target}
		if b.inflightQ[key] {
			return
		}
		b.inflightQ[key] = true
		s.Enqueue(sim.Transfer{
			From: from, To: to, Bits: b.E.Cfg.QueryBits, Label: "query",
			OnDelivered: func(at float64) {
				delete(b.inflightQ, key)
				b.E.M.ControlTransferred(b.E.Cfg.QueryBits)
				// Custody moves to the receiver.
				b.DropQuery(from, qc)
				if qc.Q.Deadline <= at {
					return
				}
				b.CarryQuery(to, qc)
				b.E.Prov.QueryHop(qc.Q.ID, qc.Target, from, to,
					now, at, b.E.XferSec(b.E.Cfg.QueryBits), provenance.OpQuerySeg, true)
				if onArrive != nil {
					onArrive(to, qc)
				}
			},
			OnDropped: func(float64) { delete(b.inflightQ, key) },
		})
	})
}

// sprayQuery hands half of a spray-mode copy's budget to a peer that
// has not seen the query yet (binary spray-and-wait).
func (b *Base) sprayQuery(s *sim.Session, from, to trace.NodeID, qc *QueryCarry, onArrive QueryArrival) {
	if b.CarriesQueryKey(to, qc) {
		return
	}
	now := b.E.Sim.Now()
	key := inflight{node: from, query: qc.Q.ID, target: qc.Target}
	if b.inflightQ[key] {
		return
	}
	b.inflightQ[key] = true
	s.Enqueue(sim.Transfer{
		From: from, To: to, Bits: b.E.Cfg.QueryBits, Label: "query-spray",
		OnDelivered: func(at float64) {
			delete(b.inflightQ, key)
			b.E.M.ControlTransferred(b.E.Cfg.QueryBits)
			if qc.Q.Deadline <= at {
				return
			}
			half := qc.Copies / 2
			qc.Copies -= half
			copyQC := &QueryCarry{
				Q: qc.Q, Target: qc.Target, NCL: qc.NCL, Copies: half,
			}
			b.CarryQuery(to, copyQC)
			b.E.Prov.QueryHop(qc.Q.ID, qc.Target, from, to,
				now, at, b.E.XferSec(b.E.Cfg.QueryBits), provenance.OpQuerySpray, false)
			if onArrive != nil {
				onArrive(to, copyQC)
			}
		},
		OnDropped: func(float64) { delete(b.inflightQ, key) },
	})
}

// ReplyDelivered is invoked when a reply reaches its requester;
// firstOnTime reports whether it satisfied the query.
type ReplyDelivered func(rc *ReplyCarry, firstOnTime bool)

// ReplyRelay is invoked when a reply copy lands on an intermediate relay
// (pass-by data); incidental-caching baselines hook their caching
// decision here.
type ReplyRelay func(at trace.NodeID, rc *ReplyCarry)

// ForwardReplies enqueues reply (data) transfers from `from` to its
// session peer, moving each copy when the peer is the requester or has a
// strictly higher weight toward the requester within the remaining time.
func (b *Base) ForwardReplies(s *sim.Session, from trace.NodeID, onDelivered ReplyDelivered, onRelay ReplyRelay) {
	to := s.Peer(from)
	now := b.E.Sim.Now()
	b.ForEachReply(from, func(rc *ReplyCarry) {
		if rc.Q.Deadline <= now {
			b.DropReply(from, rc.Q.ID)
			return
		}
		req := rc.Q.Requester
		remaining := rc.Q.Deadline - now
		better := to == req ||
			b.E.Weight(to, req, remaining) > b.E.Weight(from, req, remaining)
		if !better {
			return
		}
		key := inflight{node: from, query: rc.Q.ID}
		if b.inflightR[key] {
			return
		}
		b.inflightR[key] = true
		s.Enqueue(sim.Transfer{
			From: from, To: to, Bits: rc.Item.SizeBits, Label: "reply",
			OnDelivered: func(at float64) {
				delete(b.inflightR, key)
				b.E.M.DataTransferred(rc.Item.SizeBits)
				b.DropReply(from, rc.Q.ID)
				if to == req {
					first := b.E.M.QueryDelivered(rc.Q.ID, at)
					if first {
						b.E.cQAnswered.Inc()
						b.E.hQueryDelay.Observe(at - rc.Q.Issued)
						b.E.Obs.QueryAnswered(at, int32(req), int64(rc.Q.ID), at-rc.Q.Issued)
					}
					b.E.Prov.ReplyHop(rc.Q.ID, from, to,
						now, at, b.E.XferSec(rc.Item.SizeBits), true, first)
					if onDelivered != nil {
						onDelivered(rc, first)
					}
					return
				}
				b.CarryReply(to, rc)
				b.E.Prov.ReplyHop(rc.Q.ID, from, to,
					now, at, b.E.XferSec(rc.Item.SizeBits), false, false)
				if onRelay != nil {
					onRelay(to, rc)
				}
			},
			OnDropped: func(float64) { delete(b.inflightR, key) },
		})
	})
}

// Respond creates a reply at node n for query qc if n can serve the data
// and has not decided before. Central or source nodes pass force=true to
// bypass the probabilistic decision. It returns true if a reply was
// created.
func (b *Base) Respond(n trace.NodeID, qc *QueryCarry, force bool) bool {
	e := b.E
	now := e.Sim.Now()
	if qc.Q.Deadline <= now || !e.HasData(n, qc.Q.Data) {
		return false
	}
	if !b.MarkResponded(n, qc.Q.ID) {
		return false
	}
	if !force {
		p := e.ResponseProb(n, qc.Q.Requester, qc.Q)
		if !e.Rng.Bernoulli(p) {
			return false
		}
	}
	item, ok := e.OwnData(n, qc.Q.Data)
	utility := 0.0 // source-owned data serves without an Eq. 6 value
	if !ok {
		en := e.Buffers[n].Get(qc.Q.Data)
		if en == nil {
			return false
		}
		item = en.Data
		if e.Prov != nil {
			utility = e.Popularity(&en.Requests, item.Expires)
		}
	}
	b.CarryReply(n, &ReplyCarry{Q: qc.Q, Item: item})
	e.noteResponse(n, qc.Q.ID)
	e.Obs.Pull(now, int32(n), int32(qc.Q.Requester), int64(qc.Q.ID))
	e.Prov.Pull(qc.Q.ID, qc.Target, n, now, int64(qc.Q.Data), utility)
	return true
}

// DropNodeState clears node n's volatile protocol state — carried
// query and reply copies and the local request history — as a crash
// would. The one-shot response bitset survives: whether a node has
// decided about a query is an identity property, and keeping it is
// what upholds the no-duplicate-response invariant across a reboot.
func (b *Base) DropNodeState(n trace.NodeID) {
	qs := b.queries[n]
	for i := range qs {
		qs[i] = nil
	}
	b.queries[n] = qs[:0]
	rs := b.replies[n]
	for i := range rs {
		rs[i] = nil
	}
	b.replies[n] = rs[:0]
	h := b.history[n]
	for i := range h {
		h[i] = buffer.RequestStats{}
	}
}
