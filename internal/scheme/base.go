package scheme

import (
	"sort"

	"dtncache/internal/buffer"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// QueryCarry is a query copy carried by a node toward a target (a
// central node for the intentional scheme, the data source for the
// baselines). Gradient forwarding keeps a single copy per target: the
// relay deletes its copy after handing it to a better-positioned node.
type QueryCarry struct {
	Q workload.Query
	// Target is the destination node of this copy.
	Target trace.NodeID
	// NCL is the index (into Env.NCLs) of the targeted central node, or
	// -1 for baselines targeting the source.
	NCL int
	// Broadcast marks the copy as being flooded within an NCL's caching
	// subgraph after reaching the central node (Sec. V-B).
	Broadcast bool
	// Copies is the remaining logical copy budget for spray-and-wait
	// dissemination (0 or 1 means single-copy gradient forwarding).
	Copies int
}

// key distinguishes copies of the same query aimed at different targets.
func (qc *QueryCarry) key() queryKey {
	return queryKey{ID: qc.Q.ID, Target: qc.Target}
}

type queryKey struct {
	ID     workload.QueryID
	Target trace.NodeID
}

// ReplyCarry is a data copy traveling back to a requester.
type ReplyCarry struct {
	Q    workload.Query
	Item workload.DataItem
}

// Base bundles the per-node protocol state and forwarding machinery
// every scheme shares: carried query copies, carried replies, per-node
// request histories, and single-shot response bookkeeping.
type Base struct {
	E *Env
	// queries[n] holds the query copies node n is carrying.
	queries []map[queryKey]*QueryCarry
	// replies[n] holds the reply copies node n is carrying.
	replies []map[workload.QueryID]*ReplyCarry
	// History[n] is node n's locally observed request history per item.
	History []map[workload.DataID]*buffer.RequestStats
	// responded[n] marks queries node n has already decided about.
	responded []map[workload.QueryID]bool
	// inflightQ/inflightR guard single-copy custody: a copy with an
	// outstanding transfer on one contact must not be offered on a
	// concurrent contact.
	inflightQ map[inflight]bool
	inflightR map[inflight]bool
}

// inflight identifies an outstanding transfer of a carried message.
type inflight struct {
	node   trace.NodeID
	query  workload.QueryID
	target trace.NodeID
}

// NewBase allocates the per-node state for the environment.
func NewBase(e *Env) *Base {
	b := &Base{
		E:         e,
		queries:   make([]map[queryKey]*QueryCarry, e.N),
		replies:   make([]map[workload.QueryID]*ReplyCarry, e.N),
		History:   make([]map[workload.DataID]*buffer.RequestStats, e.N),
		responded: make([]map[workload.QueryID]bool, e.N),
		inflightQ: make(map[inflight]bool),
		inflightR: make(map[inflight]bool),
	}
	for i := 0; i < e.N; i++ {
		b.queries[i] = make(map[queryKey]*QueryCarry)
		b.replies[i] = make(map[workload.QueryID]*ReplyCarry)
		b.History[i] = make(map[workload.DataID]*buffer.RequestStats)
		b.responded[i] = make(map[workload.QueryID]bool)
	}
	return b
}

// Observe records a request occurrence for item id in node n's history.
func (b *Base) Observe(n trace.NodeID, id workload.DataID, at float64) {
	rs, ok := b.History[n][id]
	if !ok {
		rs = &buffer.RequestStats{}
		b.History[n][id] = rs
	}
	rs.Observe(at)
}

// Stats returns node n's request history for item id (zero stats if
// none).
func (b *Base) Stats(n trace.NodeID, id workload.DataID) buffer.RequestStats {
	if rs, ok := b.History[n][id]; ok {
		return *rs
	}
	return buffer.RequestStats{}
}

// CarryQuery adds a query copy to node n (ignored if already carried or
// expired).
func (b *Base) CarryQuery(n trace.NodeID, qc *QueryCarry) {
	if qc.Q.Deadline <= b.E.Sim.Now() {
		return
	}
	k := qc.key()
	if _, ok := b.queries[n][k]; ok {
		return
	}
	b.queries[n][k] = qc
}

// DropQuery removes a query copy from node n.
func (b *Base) DropQuery(n trace.NodeID, qc *QueryCarry) {
	delete(b.queries[n], qc.key())
}

// Queries returns the query copies node n carries, in deterministic
// order (by query ID then target).
func (b *Base) Queries(n trace.NodeID) []*QueryCarry {
	out := make([]*QueryCarry, 0, len(b.queries[n]))
	for _, qc := range b.queries[n] {
		out = append(out, qc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q.ID != out[j].Q.ID {
			return out[i].Q.ID < out[j].Q.ID
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// CarryReply adds a reply copy to node n (ignored if one for the same
// query is already carried or the query expired).
func (b *Base) CarryReply(n trace.NodeID, rc *ReplyCarry) {
	if rc.Q.Deadline <= b.E.Sim.Now() {
		return
	}
	if _, ok := b.replies[n][rc.Q.ID]; ok {
		return
	}
	b.replies[n][rc.Q.ID] = rc
}

// DropReply removes a reply copy from node n.
func (b *Base) DropReply(n trace.NodeID, id workload.QueryID) {
	delete(b.replies[n], id)
}

// Replies returns the reply copies node n carries, ordered by query ID.
func (b *Base) Replies(n trace.NodeID) []*ReplyCarry {
	out := make([]*ReplyCarry, 0, len(b.replies[n]))
	for _, rc := range b.replies[n] {
		out = append(out, rc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Q.ID < out[j].Q.ID })
	return out
}

// MarkResponded records that node n has made its one-shot response
// decision for the query; it returns false if already decided.
func (b *Base) MarkResponded(n trace.NodeID, id workload.QueryID) bool {
	if b.responded[n][id] {
		return false
	}
	b.responded[n][id] = true
	return true
}

// SweepExpired drops expired query and reply copies everywhere, along
// with the one-shot response decisions of expired queries. Schemes call
// it from OnSweep.
func (b *Base) SweepExpired(now float64) {
	for n := 0; n < b.E.N; n++ {
		for k, qc := range b.queries[n] {
			if qc.Q.Deadline <= now {
				delete(b.queries[n], k)
			}
		}
		for id, rc := range b.replies[n] {
			if rc.Q.Deadline <= now {
				delete(b.replies[n], id)
			}
		}
		for id := range b.responded[n] {
			if int(id) < len(b.E.W.Queries) && b.E.W.Queries[id].Deadline <= now {
				delete(b.responded[n], id)
			}
		}
	}
}

// QueryArrival is the scheme-specific handler invoked when a query copy
// reaches a node (its gradient target or any node during broadcast).
type QueryArrival func(at trace.NodeID, qc *QueryCarry)

// ForwardQueries enqueues query transfers from node `from` to its
// session peer.
//
// A copy in the single-copy regime (Copies <= 1) is handed over when
// the peer is the copy's target or has a strictly higher metric weight
// toward the target; custody moves with it. A copy still in the spray
// regime (Copies > 1, binary spray-and-wait) instead *replicates*: any
// peer that has not seen the query receives half the copy budget, so
// the query fans out quickly before focusing on the target. onArrive
// runs at the receiver; copies in Broadcast mode are handled by the
// intentional scheme separately.
func (b *Base) ForwardQueries(s *sim.Session, from trace.NodeID, onArrive QueryArrival) {
	to := s.Peer(from)
	now := b.E.Sim.Now()
	for _, qc := range b.Queries(from) {
		qc := qc
		if qc.Broadcast {
			continue
		}
		if qc.Q.Deadline <= now {
			b.DropQuery(from, qc)
			continue
		}
		if qc.Copies > 1 && to != qc.Target {
			b.sprayQuery(s, from, to, qc, onArrive)
			continue
		}
		better := to == qc.Target ||
			b.E.MetricWeight(to, qc.Target) > b.E.MetricWeight(from, qc.Target)
		if !better {
			continue
		}
		key := inflight{node: from, query: qc.Q.ID, target: qc.Target}
		if b.inflightQ[key] {
			continue
		}
		b.inflightQ[key] = true
		s.Enqueue(sim.Transfer{
			From: from, To: to, Bits: b.E.Cfg.QueryBits, Label: "query",
			OnDelivered: func(at float64) {
				delete(b.inflightQ, key)
				b.E.M.ControlTransferred(b.E.Cfg.QueryBits)
				// Custody moves to the receiver.
				b.DropQuery(from, qc)
				if qc.Q.Deadline <= at {
					return
				}
				b.CarryQuery(to, qc)
				if onArrive != nil {
					onArrive(to, qc)
				}
			},
			OnDropped: func(float64) { delete(b.inflightQ, key) },
		})
	}
}

// sprayQuery hands half of a spray-mode copy's budget to a peer that
// has not seen the query yet (binary spray-and-wait).
func (b *Base) sprayQuery(s *sim.Session, from, to trace.NodeID, qc *QueryCarry, onArrive QueryArrival) {
	if _, seen := b.queries[to][qc.key()]; seen {
		return
	}
	key := inflight{node: from, query: qc.Q.ID, target: qc.Target}
	if b.inflightQ[key] {
		return
	}
	b.inflightQ[key] = true
	s.Enqueue(sim.Transfer{
		From: from, To: to, Bits: b.E.Cfg.QueryBits, Label: "query-spray",
		OnDelivered: func(at float64) {
			delete(b.inflightQ, key)
			b.E.M.ControlTransferred(b.E.Cfg.QueryBits)
			if qc.Q.Deadline <= at {
				return
			}
			half := qc.Copies / 2
			qc.Copies -= half
			copyQC := &QueryCarry{
				Q: qc.Q, Target: qc.Target, NCL: qc.NCL, Copies: half,
			}
			b.CarryQuery(to, copyQC)
			if onArrive != nil {
				onArrive(to, copyQC)
			}
		},
		OnDropped: func(float64) { delete(b.inflightQ, key) },
	})
}

// ReplyDelivered is invoked when a reply reaches its requester;
// firstOnTime reports whether it satisfied the query.
type ReplyDelivered func(rc *ReplyCarry, firstOnTime bool)

// ReplyRelay is invoked when a reply copy lands on an intermediate relay
// (pass-by data); incidental-caching baselines hook their caching
// decision here.
type ReplyRelay func(at trace.NodeID, rc *ReplyCarry)

// ForwardReplies enqueues reply (data) transfers from `from` to its
// session peer, moving each copy when the peer is the requester or has a
// strictly higher weight toward the requester within the remaining time.
func (b *Base) ForwardReplies(s *sim.Session, from trace.NodeID, onDelivered ReplyDelivered, onRelay ReplyRelay) {
	to := s.Peer(from)
	now := b.E.Sim.Now()
	for _, rc := range b.Replies(from) {
		rc := rc
		if rc.Q.Deadline <= now {
			b.DropReply(from, rc.Q.ID)
			continue
		}
		req := rc.Q.Requester
		remaining := rc.Q.Deadline - now
		better := to == req ||
			b.E.Weight(to, req, remaining) > b.E.Weight(from, req, remaining)
		if !better {
			continue
		}
		key := inflight{node: from, query: rc.Q.ID}
		if b.inflightR[key] {
			continue
		}
		b.inflightR[key] = true
		s.Enqueue(sim.Transfer{
			From: from, To: to, Bits: rc.Item.SizeBits, Label: "reply",
			OnDelivered: func(at float64) {
				delete(b.inflightR, key)
				b.E.M.DataTransferred(rc.Item.SizeBits)
				b.DropReply(from, rc.Q.ID)
				if to == req {
					first := b.E.M.QueryDelivered(rc.Q.ID, at)
					if onDelivered != nil {
						onDelivered(rc, first)
					}
					return
				}
				b.CarryReply(to, rc)
				if onRelay != nil {
					onRelay(to, rc)
				}
			},
			OnDropped: func(float64) { delete(b.inflightR, key) },
		})
	}
}

// Respond creates a reply at node n for query qc if n can serve the data
// and has not decided before. Central or source nodes pass force=true to
// bypass the probabilistic decision. It returns true if a reply was
// created.
func (b *Base) Respond(n trace.NodeID, qc *QueryCarry, force bool) bool {
	e := b.E
	now := e.Sim.Now()
	if qc.Q.Deadline <= now || !e.HasData(n, qc.Q.Data) {
		return false
	}
	if !b.MarkResponded(n, qc.Q.ID) {
		return false
	}
	if !force {
		p := e.ResponseProb(n, qc.Q.Requester, qc.Q)
		if !e.Rng.Bernoulli(p) {
			return false
		}
	}
	item, ok := e.OwnData(n, qc.Q.Data)
	if !ok {
		en := e.Buffers[n].Get(qc.Q.Data)
		if en == nil {
			return false
		}
		item = en.Data
	}
	b.CarryReply(n, &ReplyCarry{Q: qc.Q, Item: item})
	return true
}
