package scheme

import (
	"strings"
	"testing"

	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// lineTrace builds a 3-node line topology 0-1-2 with periodic contacts:
// 0-1 meet at k*period, 1-2 meet at k*period + period/2, for the whole
// duration. Node 1 is the natural hub.
func lineTrace(period, duration float64) *trace.Trace {
	tr := &trace.Trace{Name: "line", Nodes: 3, Duration: duration, Granularity: 60}
	for t := period; t+400 < duration; t += period {
		tr.Contacts = append(tr.Contacts,
			trace.Contact{A: 0, B: 1, Start: t, End: t + 300},
			trace.Contact{A: 1, B: 2, Start: t + period/2, End: t + period/2 + 300},
		)
	}
	tr.SortContacts()
	return tr
}

// manualWorkload builds a workload with one data item at node 0 and one
// query from node 2.
func manualWorkload(tr *trace.Trace, created, expires, issued, deadline float64) *workload.Workload {
	return &workload.Workload{
		Config: workload.Config{
			Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: expires - created,
			AvgSizeBits: 10e6, ZipfExponent: 1,
			Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
		},
		Data: []workload.DataItem{{
			ID: 0, Source: 0, SizeBits: 10e6, Created: created, Expires: expires,
		}},
		Queries: []workload.Query{{
			ID: 0, Requester: 2, Data: 0, Issued: issued, Deadline: deadline,
		}},
	}
}

func testConfig(tr *trace.Trace) Config {
	cfg := DefaultConfig(tr.Duration)
	cfg.MetricT = 3600
	cfg.NCLCount = 1
	cfg.WarmupEnd = tr.Duration / 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(86400)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MetricT = 0 },
		func(c *Config) { c.RefreshSec = 0 },
		func(c *Config) { c.SweepSec = 0 },
		func(c *Config) { c.QueryBits = -1 },
		func(c *Config) { c.Response = 0 },
		func(c *Config) { c.Response = 99 },
		func(c *Config) { c.NCLCount = -1 },
		func(c *Config) { c.QuantBits = 0 },
		func(c *Config) { c.BufferMinBits = 0 },
		func(c *Config) { c.BufferMaxBits = c.BufferMinBits - 1 },
		func(c *Config) { c.WarmupEnd = -1 },
		func(c *Config) { c.DropProb = 1.5 },
		func(c *Config) { c.PMin = 0.1 }, // below pmax/2 for sigmoid
		func(c *Config) { c.PMin = 0.9 }, // above pmax
		func(c *Config) { c.MaxHops = -1 },
		func(c *Config) { c.KnowledgeEpsilon = -0.1 },
		// Fault/recovery knobs.
		func(c *Config) { c.DropProb = 0.1; c.Fault.KillProb = 0.1 }, // same knob twice
		func(c *Config) { c.QueryRetrySec = -1 },
		func(c *Config) { c.QueryRetryMax = -1 },
		func(c *Config) { c.QueryRetryFactor = 0.5 }, // backoff must not shrink
		func(c *Config) { c.QueryRetryCapSec = -1 },
		func(c *Config) { c.PushRetryBudget = -1 },
		// Malformed fault params surface through Config.Validate.
		func(c *Config) { c.Fault.KillProb = 2 },
		func(c *Config) { c.Fault.TruncateProb = -0.5 },
		func(c *Config) { c.Fault.ChurnMeanUpSec = 100 }, // churn without downtime
		func(c *Config) { c.Fault.ChurnMeanUpSec = 100; c.Fault.ChurnMeanDownSec = -1 },
		func(c *Config) { c.Fault.BlackoutNCLs = 2 }, // blackout without a window
		func(c *Config) { c.Fault.BlackoutNCLs = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(86400)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewEnvRejectsMismatchedNodes(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 30000)
	w.Config.Nodes = 99
	if _, err := NewEnv(tr, w, testConfig(tr), NewNoCache()); err == nil {
		t.Error("mismatched node counts accepted")
	}
}

func TestNewEnvRejectsInvalidTrace(t *testing.T) {
	tr := &trace.Trace{Nodes: 0}
	w := &workload.Workload{Config: workload.Config{Nodes: 0}}
	if _, err := NewEnv(tr, w, DefaultConfig(100), NewNoCache()); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestNoCacheEndToEnd(t *testing.T) {
	tr := lineTrace(1000, 40000)
	// Data at node 0 from t=21000; query from node 2 at 22000 with a
	// generous deadline. The query must travel 2->1->0 and the reply
	// 0->1->2 over the periodic contacts.
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	env, err := NewEnv(tr, w, testConfig(tr), NewNoCache())
	if err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.QueriesIssued != 1 {
		t.Fatalf("issued = %d, want 1", rep.QueriesIssued)
	}
	if rep.QueriesSatisfied != 1 {
		t.Fatalf("query not satisfied: %+v", rep)
	}
	if rep.MeanDelaySec <= 0 || rep.MeanDelaySec > 16000 {
		t.Errorf("delay = %v", rep.MeanDelaySec)
	}
	// NoCache never caches.
	if rep.MeanCopies != 0 {
		t.Errorf("NoCache cached %v copies", rep.MeanCopies)
	}
}

func TestQuerySuppressedWhenLocallyCached(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	s := NewRandomCache()
	env, err := NewEnv(tr, w, testConfig(tr), s)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-cache the item at the requester: the query must never be
	// issued.
	if err := env.Sim.Schedule(21500, func() {
		if _, perr := env.Buffers[2].Put(w.Data[0], 21500); perr != nil {
			t.Errorf("pre-cache failed: %v", perr)
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := env.Run()
	if rep.QueriesIssued != 0 {
		t.Errorf("query issued despite local copy: %+v", rep)
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 50e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() interface{} {
		cfg := DefaultConfig(tr.Duration)
		cfg.MetricT = 3600
		cfg.NCLCount = 3
		env, err := NewEnv(tr, w, cfg, NewCacheData())
		if err != nil {
			t.Fatal(err)
		}
		return env.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
}

func TestAllBaselinesProduceSaneReports(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: 3 * 3600,
		AvgSizeBits: 50e6, ZipfExponent: 1,
		Start: tr.Duration / 2, End: tr.Duration, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{NewNoCache(), NewRandomCache(), NewCacheData(), NewBundleCache()}
	for _, s := range schemes {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cfg := DefaultConfig(tr.Duration)
			cfg.MetricT = 3600
			cfg.NCLCount = 3
			env, err := NewEnv(tr, w, cfg, s)
			if err != nil {
				t.Fatal(err)
			}
			rep := env.Run()
			if rep.QueriesIssued == 0 {
				t.Fatal("no queries issued")
			}
			if rep.SuccessRatio <= 0 || rep.SuccessRatio > 1 {
				t.Errorf("success ratio = %v", rep.SuccessRatio)
			}
			maxDelay := w.Config.AvgLifetime / 2
			if rep.MeanDelaySec < 0 || rep.MeanDelaySec > maxDelay {
				t.Errorf("mean delay %v outside [0, %v]", rep.MeanDelaySec, maxDelay)
			}
			if rep.MeanBufferUse < 0 || rep.MeanBufferUse > 1 {
				t.Errorf("buffer use = %v", rep.MeanBufferUse)
			}
		})
	}
}

func TestResponseProbModes(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	for _, mode := range []ResponseMode{ResponseGlobal, ResponseSigmoid, ResponseAlways} {
		cfg := testConfig(tr)
		cfg.Response = mode
		env, err := NewEnv(tr, w, cfg, NewNoCache())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		env.Sim.RunUntil(25000)
		q := w.Queries[0]
		p := env.ResponseProb(1, q.Requester, q)
		if p < 0 || p > 1 {
			t.Errorf("mode %v: prob = %v", mode, p)
		}
		if mode == ResponseAlways && p != 1 {
			t.Errorf("always mode: prob = %v, want 1", p)
		}
		// After the deadline the probability must be 0.
		expired := q
		expired.Deadline = 100
		if got := env.ResponseProb(1, q.Requester, expired); got != 0 {
			t.Errorf("expired query prob = %v", got)
		}
	}
}

func TestEnvHelpers(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	env, err := NewEnv(tr, w, testConfig(tr), NewNoCache())
	if err != nil {
		t.Fatal(err)
	}
	env.Sim.RunUntil(22000) // past warm-up; data created
	if env.Weight(0, 0, 10) != 1 {
		t.Error("self weight must be 1")
	}
	if w01 := env.Weight(0, 1, 3600); w01 <= 0 || w01 > 1 {
		t.Errorf("weight(0,1) = %v", w01)
	}
	if _, ok := env.OwnData(0, 0); !ok {
		t.Error("source should hold its own live data")
	}
	if _, ok := env.OwnData(1, 0); ok {
		t.Error("non-source claims own data")
	}
	if !env.HasData(0, 0) {
		t.Error("HasData(source) = false")
	}
	if env.HasData(2, 0) {
		t.Error("HasData(requester) = true before delivery")
	}
	if got := env.NCLs(); len(got) != 1 {
		t.Errorf("NCLs = %v, want exactly one", got)
	}
}

func TestNCLSelectionPicksHub(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	env, err := NewEnv(tr, w, testConfig(tr), NewNoCache())
	if err != nil {
		t.Fatal(err)
	}
	env.Sim.RunUntil(21000)
	ncls := env.NCLs()
	if len(ncls) != 1 || ncls[0] != 1 {
		t.Errorf("NCLs = %v, want [1] (the hub)", ncls)
	}
}

func TestSchemeNameStrings(t *testing.T) {
	for _, s := range []Scheme{NewNoCache(), NewRandomCache(), NewCacheData(), NewBundleCache()} {
		if strings.TrimSpace(s.Name()) == "" {
			t.Error("empty scheme name")
		}
	}
}

// failingScheme reports an Init error to exercise the error path.
type failingScheme struct{ NoCache }

func (f *failingScheme) Init(*Env) error { return errInit }

var errInit = &initError{}

type initError struct{}

func (*initError) Error() string { return "boom" }

func TestNewEnvPropagatesInitError(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	if _, err := NewEnv(tr, w, testConfig(tr), &failingScheme{}); err == nil {
		t.Error("init error not propagated")
	}
}

var _ sim.Handler = (*Env)(nil)

func TestNCLSelectionStrategies(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	for _, strat := range []NCLStrategy{NCLByMetric, NCLByDegree, NCLByContacts, NCLRandom} {
		cfg := testConfig(tr)
		cfg.NCLSelection = strat
		env, err := NewEnv(tr, w, cfg, NewNoCache())
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		env.Sim.RunUntil(21000)
		ncls := env.NCLs()
		if len(ncls) != 1 {
			t.Fatalf("strategy %v: NCLs = %v", strat, ncls)
		}
		// On the line topology the hub (node 1) dominates every
		// deterministic strategy.
		if strat != NCLRandom && ncls[0] != 1 {
			t.Errorf("strategy %v picked %v, want hub 1", strat, ncls[0])
		}
	}
}

func TestCachePassByEvictionRules(t *testing.T) {
	tr := lineTrace(1000, 40000)
	w := manualWorkload(tr, 21000, 39000, 22000, 38000)
	cd := NewCacheData()
	env, err := NewEnv(tr, w, testConfig(tr), cd)
	if err != nil {
		t.Fatal(err)
	}
	env.Sim.RunUntil(22000)
	b := cd.base
	node := trace.NodeID(1)
	// Shrink the buffer view by filling it: capacity is random in
	// [200,600]Mb; insert items sized to leave room for exactly one more.
	capBits := env.Buffers[node].Capacity()
	half := capBits / 2
	mk := func(id int, size float64) workload.DataItem {
		return workload.DataItem{
			ID: workload.DataID(id), Source: 0, SizeBits: size,
			Created: 21000, Expires: 39000,
		}
	}
	occupied := mk(10, half+1) // more than half: a second one cannot fit
	if _, err := env.Buffers[node].Put(occupied, 22000); err != nil {
		t.Fatal(err)
	}
	// Give the cached item some popularity (requests observed locally).
	b.Observe(node, 10, 21500)
	b.Observe(node, 10, 21800)

	utility := func(id workload.DataID, expires float64) float64 {
		rs := b.Stats(node, id)
		return env.Popularity(&rs, expires)
	}
	// A never-requested incoming item must NOT evict the popular one.
	cd.CachePassBy(b, node, mk(11, half+1), utility)
	if !env.Buffers[node].Has(10) || env.Buffers[node].Has(11) {
		t.Error("unpopular pass-by data evicted a popular entry")
	}
	// Flip the roles: a node holding never-requested data must yield it
	// to a requested incoming item.
	env.Buffers[node].Remove(10)
	if _, err := env.Buffers[node].Put(mk(11, half+1), 22100); err != nil {
		t.Fatal(err)
	}
	b.Observe(node, 12, 21200)
	b.Observe(node, 12, 21900)
	cd.CachePassBy(b, node, mk(12, half+1), utility)
	if env.Buffers[node].Has(11) || !env.Buffers[node].Has(12) {
		t.Error("popular pass-by data failed to displace a never-requested entry")
	}
	// Oversize and duplicate items are rejected without disturbance.
	cd.CachePassBy(b, node, mk(13, capBits*2), utility)
	if env.Buffers[node].Has(13) {
		t.Error("oversize item cached")
	}
	cd.CachePassBy(b, node, mk(12, half+1), utility)
	if env.Buffers[node].Len() != 1 {
		t.Errorf("buffer disturbed: %d entries", env.Buffers[node].Len())
	}
}
