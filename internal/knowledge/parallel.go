package knowledge

import (
	"runtime"
	"sync"
)

// forEachSource runs fn(i) for every i in [0, n) concurrently on up to
// GOMAXPROCS workers — the per-source fan-out of a snapshot build,
// mirroring internal/experiment's forEachCell dispatcher. Determinism:
// each fn(i) is a pure function of the (already final) rate graph and
// writes only slots indexed by i, so worker scheduling cannot change
// the built snapshot. Builds cannot fail, so unlike forEachCell there
// is no error plumbing.
//
//dtn:workerpool WaitGroup-joined snapshot-build fan-out
func forEachSource(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
