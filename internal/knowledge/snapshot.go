package knowledge

import (
	"sync"
	"sync/atomic"

	"dtncache/internal/graph"
	"dtncache/internal/trace"
)

// memoLimit bounds the per-snapshot cache of off-horizon Weight calls.
// Beyond it, Weight still answers correctly from the paths; it just
// stops adding entries (remaining-time horizons are unbounded in
// principle, and an unbounded map would leak across a long run).
const memoLimit = 1 << 16

// Snapshot is one immutable, versioned view of the network knowledge at
// a build time: the contact-rate graph, shortest opportunistic paths
// from every source, the path-weight matrix at the metric horizon T in
// compressed-sparse-row form, and the Eq. (3) NCL selection metric of
// every node.
//
// The weight matrix stores only non-zero off-diagonal entries: row i's
// columns live in cols[rowPtr[i]:rowPtr[i+1]] in ascending order, with
// the weights in the parallel vals range. The three slabs are allocated
// once per build, arena-style, and every row is a subslice into them —
// no per-row allocation, and a snapshot's whole matrix is freed as one
// unit when the Provider evicts it. On sparse contact graphs (city
// traces: isolated districts) this replaces the dense n×n matrix whose
// zeros dominated the build footprint.
//
// All methods are safe for concurrent use. Consumers must treat the
// snapshot as read-only; in a comparison the same value is shared by
// every scheme.
//
//dtn:immutable built once by Builder.Build, then shared read-only
type Snapshot struct {
	params  Params
	version int
	builtAt float64
	reused  int

	g       *graph.Graph
	paths   []*graph.Paths
	rowPtr  []int32   // n+1 row offsets into cols/vals
	cols    []int32   // ascending column indices of non-zero weights
	vals    []float64 // weights at MetricT, parallel to cols
	metrics []float64 // C_i of Eq. (3) per node

	memo     sync.Map // weightKey -> float64, off-horizon Weight cache
	memoSize atomic.Int64
}

// weightKey identifies one memoized off-horizon weight evaluation.
type weightKey struct {
	src, dst trace.NodeID
	t        float64
}

// Params returns the pipeline configuration the snapshot was built for
// (normalized: MaxHops filled in).
func (s *Snapshot) Params() Params { return s.params }

// Version is the snapshot's sequence number within its Provider,
// starting at 1 (0 is the empty pre-warm-up snapshot).
func (s *Snapshot) Version() int { return s.version }

// BuiltAt is the virtual time of the contact prefix the snapshot was
// built from.
func (s *Snapshot) BuiltAt() float64 { return s.builtAt }

// ReusedSources reports how many sources were carried over unchanged
// from the incremental base (0 for a full build).
func (s *Snapshot) ReusedSources() int { return s.reused }

// Graph returns the contact-rate graph. The graph is shared, not
// copied: callers must not SetRate on it.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Paths returns the shortest opportunistic paths from src. The value is
// materialized and shared: read-only.
func (s *Snapshot) Paths(src trace.NodeID) *graph.Paths { return s.paths[src] }

// Metrics returns a copy of the NCL selection metric C_i (Eq. 3) for
// every node.
func (s *Snapshot) Metrics() []float64 {
	out := make([]float64, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// MetricWeight returns the opportunistic path weight p_ab(T) at the
// metric horizon, from the precomputed sparse matrix. The diagonal is 1
// by definition and not stored.
//
//dtn:allocfree pure CSR lookup on the scheme hot path
func (s *Snapshot) MetricWeight(a, b trace.NodeID) float64 {
	n := s.params.Nodes
	if a < 0 || b < 0 || int(a) >= n || int(b) >= n {
		return 0
	}
	if a == b {
		return 1
	}
	return s.csrLookup(a, b)
}

// csrLookup binary-searches row a for column b. The search is
// hand-rolled: sort.Search takes a closure and would allocate on a path
// that must stay allocation-free.
//
//dtn:allocfree
func (s *Snapshot) csrLookup(a, b trace.NodeID) float64 {
	lo, hi := s.rowPtr[a], s.rowPtr[a+1]
	col := int32(b)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.cols[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.rowPtr[a+1] && s.cols[lo] == col {
		return s.vals[lo]
	}
	return 0
}

// WeightNNZ returns the number of stored (non-zero, off-diagonal)
// entries of the metric-horizon weight matrix — the footprint the CSR
// layout actually pays for, versus n² for the dense form.
func (s *Snapshot) WeightNNZ() int { return len(s.cols) }

// Weight returns the opportunistic path weight p_ab(t): 1 for a == b, a
// sparse-matrix lookup at the metric horizon, and a memoized Paths
// evaluation for any other horizon.
func (s *Snapshot) Weight(a, b trace.NodeID, t float64) float64 {
	if a == b {
		return 1
	}
	n := s.params.Nodes
	if a < 0 || b < 0 || int(a) >= n || int(b) >= n {
		return 0
	}
	if t == s.params.MetricT {
		return s.csrLookup(a, b)
	}
	k := weightKey{src: a, dst: b, t: t}
	if v, ok := s.memo.Load(k); ok {
		return v.(float64)
	}
	w := s.paths[a].Weight(b, t)
	if s.memoSize.Load() < memoLimit {
		s.memoSize.Add(1)
		s.memo.Store(k, w)
	}
	return w
}
