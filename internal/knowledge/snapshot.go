package knowledge

import (
	"sync"
	"sync/atomic"

	"dtncache/internal/graph"
	"dtncache/internal/trace"
)

// memoLimit bounds the per-snapshot cache of off-horizon Weight calls.
// Beyond it, Weight still answers correctly from the paths; it just
// stops adding entries (remaining-time horizons are unbounded in
// principle, and an unbounded map would leak across a long run).
const memoLimit = 1 << 16

// Snapshot is one immutable, versioned view of the network knowledge at
// a build time: the contact-rate graph, shortest opportunistic paths
// from every source, the dense path-weight matrix at the metric horizon
// T, and the Eq. (3) NCL selection metric of every node.
//
// All methods are safe for concurrent use. Consumers must treat the
// snapshot as read-only; in a comparison the same value is shared by
// every scheme.
//
//dtn:immutable built once by Builder.Build, then shared read-only
type Snapshot struct {
	params  Params
	version int
	builtAt float64
	reused  int

	g       *graph.Graph
	paths   []*graph.Paths
	metricW []float64 // n×n row-major weights at MetricT; diagonal 1
	metrics []float64 // C_i of Eq. (3) per node

	memo     sync.Map // weightKey -> float64, off-horizon Weight cache
	memoSize atomic.Int64
}

// weightKey identifies one memoized off-horizon weight evaluation.
type weightKey struct {
	src, dst trace.NodeID
	t        float64
}

// Params returns the pipeline configuration the snapshot was built for
// (normalized: MaxHops filled in).
func (s *Snapshot) Params() Params { return s.params }

// Version is the snapshot's sequence number within its Provider,
// starting at 1 (0 is the empty pre-warm-up snapshot).
func (s *Snapshot) Version() int { return s.version }

// BuiltAt is the virtual time of the contact prefix the snapshot was
// built from.
func (s *Snapshot) BuiltAt() float64 { return s.builtAt }

// ReusedSources reports how many sources were carried over unchanged
// from the incremental base (0 for a full build).
func (s *Snapshot) ReusedSources() int { return s.reused }

// Graph returns the contact-rate graph. The graph is shared, not
// copied: callers must not SetRate on it.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Paths returns the shortest opportunistic paths from src. The value is
// materialized and shared: read-only.
func (s *Snapshot) Paths(src trace.NodeID) *graph.Paths { return s.paths[src] }

// Metrics returns a copy of the NCL selection metric C_i (Eq. 3) for
// every node.
func (s *Snapshot) Metrics() []float64 {
	out := make([]float64, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// MetricWeight returns the opportunistic path weight p_ab(T) at the
// metric horizon, from the precomputed matrix.
//
//dtn:allocfree pure dense-matrix lookup on the scheme hot path
func (s *Snapshot) MetricWeight(a, b trace.NodeID) float64 {
	n := s.params.Nodes
	if a < 0 || b < 0 || int(a) >= n || int(b) >= n {
		return 0
	}
	return s.metricW[int(a)*n+int(b)]
}

// Weight returns the opportunistic path weight p_ab(t): 1 for a == b, a
// matrix lookup at the metric horizon, and a memoized Paths evaluation
// for any other horizon.
func (s *Snapshot) Weight(a, b trace.NodeID, t float64) float64 {
	if a == b {
		return 1
	}
	n := s.params.Nodes
	if a < 0 || b < 0 || int(a) >= n || int(b) >= n {
		return 0
	}
	if t == s.params.MetricT {
		return s.metricW[int(a)*n+int(b)]
	}
	k := weightKey{src: a, dst: b, t: t}
	if v, ok := s.memo.Load(k); ok {
		return v.(float64)
	}
	w := s.paths[a].Weight(b, t)
	if s.memoSize.Load() < memoLimit {
		s.memoSize.Add(1)
		s.memo.Store(k, w)
	}
	return w
}
