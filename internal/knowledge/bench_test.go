package knowledge_test

import (
	"sync"
	"testing"

	"dtncache/internal/experiment"
	"dtncache/internal/knowledge"
	"dtncache/internal/trace"
)

// The refresh benchmarks replay a fine-grained knowledge-refresh grid —
// a 3-hour RefreshSec over the last three days of the MIT Reality trace
// (the scheme's RefreshSec is a free parameter; duration/100 is only
// its default) — and compare rebuilding every snapshot from scratch
// against incremental builds chained through their predecessor.
const benchSteps = 24

var (
	benchOnce   sync.Once
	benchTrace  *trace.Trace
	benchParams knowledge.Params
)

func benchSetup(b *testing.B) (*trace.Trace, knowledge.Params) {
	b.Helper()
	benchOnce.Do(func() {
		tr, err := trace.GeneratePreset(trace.MITReality, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchTrace = tr
		benchParams = knowledge.Params{
			Nodes:   tr.Nodes,
			MetricT: experiment.DefaultMetricT(tr.Name),
		}
	})
	return benchTrace, benchParams
}

func benchGrid(tr *trace.Trace) []float64 {
	grid := make([]float64, benchSteps)
	step := 3 * 3600.0
	start := tr.Duration - float64(benchSteps-1)*step
	for i := range grid {
		grid[i] = start + float64(i)*step
	}
	return grid
}

// BenchmarkAllPathsFull is the seed behavior: every refresh recomputes
// rates, paths, the weight matrix and the metrics from scratch.
func BenchmarkAllPathsFull(b *testing.B) {
	tr, params := benchSetup(b)
	grid := benchGrid(tr)
	builder := knowledge.NewBuilder(params, tr.Contacts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v, t := range grid {
			builder.Build(t, nil, v+1)
		}
	}
}

// BenchmarkSnapshotIncremental chains each refresh off the previous
// snapshot with the relative rate tolerance Epsilon = 0.05, so
// components whose rates barely moved keep their paths and weight rows.
func BenchmarkSnapshotIncremental(b *testing.B) {
	tr, params := benchSetup(b)
	grid := benchGrid(tr)
	params.Epsilon = 0.05
	builder := knowledge.NewBuilder(params, tr.Contacts)
	b.ResetTimer()
	reusedTotal := 0
	for i := 0; i < b.N; i++ {
		var base *knowledge.Snapshot
		for v, t := range grid {
			s := builder.Build(t, base, v+1)
			reusedTotal += s.ReusedSources()
			base = s
		}
	}
	b.ReportMetric(float64(reusedTotal)/float64(b.N*benchSteps*tr.Nodes), "reused-frac")
}

// BenchmarkSnapshotIncrementalExact is the Epsilon = 0 contract mode:
// on a connected trace elapsed-time rescaling dirties every component,
// so this bounds the incremental bookkeeping overhead rather than
// showing reuse.
func BenchmarkSnapshotIncrementalExact(b *testing.B) {
	tr, params := benchSetup(b)
	grid := benchGrid(tr)
	builder := knowledge.NewBuilder(params, tr.Contacts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var base *knowledge.Snapshot
		for v, t := range grid {
			base = builder.Build(t, base, v+1)
		}
	}
}

// BenchmarkAllPathsCity measures the snapshot pipeline on the
// city-scale preset shape: 400 nodes in isolated power-law districts
// (InterProb = 0), where almost every source-destination pair is
// unreachable and a dense weight matrix is nearly all zeros. The
// bytes/op of this benchmark is the headline number for the CSR
// snapshot layout.
func BenchmarkAllPathsCity(b *testing.B) {
	cfg := trace.CityDefaults(400, 60000)
	cfg.DurationSec = 2 * 86400
	cfg.InterProb = 0
	tr, err := trace.GenerateCity(cfg)
	if err != nil {
		b.Fatal(err)
	}
	params := knowledge.Params{Nodes: tr.Nodes, MetricT: 86400}
	builder := knowledge.NewBuilder(params, tr.Contacts)
	grid := make([]float64, 6)
	for i := range grid {
		grid[i] = tr.Duration/2 + float64(i)*tr.Duration/12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v, t := range grid {
			builder.Build(t, nil, v+1)
		}
	}
}
