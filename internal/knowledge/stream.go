package knowledge

import (
	"io"

	"dtncache/internal/trace"
)

// contactFeed folds a streaming contact source into the same pairwise
// prefix counts Builder.counts computes from a materialized merged
// contact list, without holding more than one contact in memory.
//
// The materialized pipeline counts merged contacts: one per
// overlap-window, identified by the window's start (the first raw
// contact's start). The feed reproduces that online — a raw contact is
// counted only when it opens a new window for its pair (its start lies
// beyond the pair's current window end); later raw contacts that fall
// inside the window only extend its end. Window membership of a contact
// depends only on earlier contacts, so the online fold at time t equals
// the offline count over the merged prefix exactly.
type contactFeed struct {
	open    func() (trace.ContactSource, error)
	nodes   int
	src     trace.ContactSource
	counts  []int
	winEnd  map[[2]trace.NodeID]float64
	pend    trace.Contact
	pendOK  bool
	srcDone bool
	t       float64
}

func feedKey(a, b trace.NodeID) [2]trace.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]trace.NodeID{a, b}
}

// countsAt advances the feed to time t and returns the pairwise counts
// of the merged-contact prefix with start <= t. Asking for an earlier
// time than a previous call rewinds by reopening the source. The
// returned slice is reused across calls; callers must consume it before
// the next countsAt.
func (f *contactFeed) countsAt(t float64) ([]int, error) {
	n := f.nodes
	if f.src == nil || t < f.t {
		src, err := f.open()
		if err != nil {
			return nil, err
		}
		f.src = src
		if f.counts == nil {
			f.counts = make([]int, n*n)
		} else {
			for i := range f.counts {
				f.counts[i] = 0
			}
		}
		f.winEnd = make(map[[2]trace.NodeID]float64)
		f.pendOK, f.srcDone = false, false
	}
	f.t = t
	for {
		if !f.pendOK {
			if f.srcDone {
				break
			}
			c, err := f.src.NextContact()
			if err == io.EOF {
				f.srcDone = true
				break
			}
			if err != nil {
				return nil, err
			}
			f.pend, f.pendOK = c, true
		}
		c := f.pend
		if c.Start > t {
			break
		}
		f.pendOK = false
		// Same guard as Builder.counts; validated traces have no such
		// records, so skipping them before the fold changes nothing.
		if c.A == c.B || c.A < 0 || c.B < 0 || int(c.A) >= n || int(c.B) >= n {
			continue
		}
		key := feedKey(c.A, c.B)
		if e, ok := f.winEnd[key]; ok && c.Start <= e {
			if c.End > e {
				f.winEnd[key] = c.End
			}
			continue
		}
		f.winEnd[key] = c.End
		f.counts[int(c.A)*n+int(c.B)]++
		f.counts[int(c.B)*n+int(c.A)]++
	}
	return f.counts, nil
}

// NewStreamProvider creates a provider that derives contact counts from
// a streaming source instead of a materialized list, so knowledge
// builds never require the whole trace in memory. open must return a
// fresh source positioned at the start each call — the provider reopens
// to rewind when snapshots are requested out of time order. Snapshots
// are bit-identical to a materialized NewProvider over the same merged
// contacts (Builder.rates are a pure function of the counts).
//
// A source error makes the affected snapshot see only the prefix read
// so far and is reported by StreamErr; runs observing a non-nil
// StreamErr must be discarded.
func NewStreamProvider(p Params, open func() (trace.ContactSource, error)) *Provider {
	pr := &Provider{
		builder: NewBuilder(p, nil),
		byTime:  make(map[float64]*Snapshot),
	}
	pr.feed = &contactFeed{open: open, nodes: pr.builder.Params().Nodes}
	return pr
}
