package knowledge_test

import (
	"testing"

	"dtncache/internal/knowledge"
	"dtncache/internal/trace"
)

// TestCSRMatchesDirectWeights pins the sparse weight matrix to its
// definition on every Table I preset: each stored entry must equal the
// path weight p.Weight(j, T) evaluated directly on the snapshot's own
// materialized paths, the diagonal must be 1, and each metric must be
// the exact mean of its off-diagonal row — the values the dense matrix
// held before the CSR conversion.
func TestCSRMatchesDirectWeights(t *testing.T) {
	for _, preset := range trace.Presets() {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			tr, err := trace.GeneratePreset(preset, 1)
			if err != nil {
				t.Fatal(err)
			}
			params := knowledge.Params{Nodes: tr.Nodes, MetricT: 86400}
			b := knowledge.NewBuilder(params, tr.Contacts)
			s := b.Build(tr.Duration/2, nil, 1)

			n := tr.Nodes
			metrics := s.Metrics()
			nnz := 0
			for i := 0; i < n; i++ {
				p := s.Paths(trace.NodeID(i))
				var sum float64
				for j := 0; j < n; j++ {
					a, bb := trace.NodeID(i), trace.NodeID(j)
					want := 1.0
					if i != j {
						want = p.Weight(bb, params.MetricT)
						sum += want
						if want != 0 {
							nnz++
						}
					}
					if got := s.MetricWeight(a, bb); got != want {
						t.Fatalf("MetricWeight(%d,%d) = %g, want %g", i, j, got, want)
					}
					if got := s.Weight(a, bb, params.MetricT); got != want {
						t.Fatalf("Weight(%d,%d,T) = %g, want %g", i, j, got, want)
					}
				}
				if want := sum / float64(n-1); metrics[i] != want {
					t.Fatalf("metric %d = %g, want %g", i, metrics[i], want)
				}
			}
			if s.WeightNNZ() != nnz {
				t.Fatalf("WeightNNZ = %d, want %d", s.WeightNNZ(), nnz)
			}
			if nnz == 0 {
				t.Fatal("degenerate preset: no non-zero weights")
			}
		})
	}
}

// TestCSRIncrementalMatchesFull: an incremental build (clean rows
// copied between CSR slabs) must be bit-identical to a from-scratch
// build at the same time, entry for entry.
func TestCSRIncrementalMatchesFull(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := knowledge.Params{Nodes: tr.Nodes, MetricT: 86400}
	b := knowledge.NewBuilder(params, tr.Contacts)

	base := b.Build(tr.Duration/3, nil, 1)
	incr := b.Build(tr.Duration/2, base, 2)
	full := b.Build(tr.Duration/2, nil, 2)

	n := tr.Nodes
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gi := incr.MetricWeight(trace.NodeID(i), trace.NodeID(j))
			gf := full.MetricWeight(trace.NodeID(i), trace.NodeID(j))
			if gi != gf {
				t.Fatalf("MetricWeight(%d,%d): incremental %g != full %g", i, j, gi, gf)
			}
		}
	}
	im, fm := incr.Metrics(), full.Metrics()
	for i := range im {
		if im[i] != fm[i] {
			t.Fatalf("metric %d: incremental %g != full %g", i, im[i], fm[i])
		}
	}
	if incr.WeightNNZ() != full.WeightNNZ() {
		t.Fatalf("WeightNNZ: incremental %d != full %d", incr.WeightNNZ(), full.WeightNNZ())
	}
}
