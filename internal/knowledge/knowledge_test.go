package knowledge_test

import (
	"math"
	"sync"
	"testing"

	"dtncache/internal/experiment"
	"dtncache/internal/graph"
	"dtncache/internal/knowledge"
	"dtncache/internal/trace"
)

// seedPipeline recomputes the knowledge artifacts exactly the way the
// pre-refactor code did: a RateEstimator fed the contact prefix, then
// AllPaths and Metrics straight off the rate graph. The snapshot
// equivalence tests compare against this as ground truth.
func seedPipeline(tr *trace.Trace, t, metricT float64, maxHops int) ([]*graph.Paths, []float64) {
	est := graph.NewRateEstimator(tr.Nodes, 0)
	for _, c := range tr.Contacts {
		if c.Start > t {
			break // contacts are sorted by start time
		}
		est.Observe(c.A, c.B)
	}
	g := est.Snapshot(t)
	return g.AllPaths(maxHops), g.Metrics(metricT, maxHops)
}

// TestSnapshotMatchesSeedPipeline is the bit-identity contract: for
// every Table I preset, full builds and incremental epsilon = 0 builds
// (the default Params) must reproduce the seed pipeline exactly —
// metrics, horizon weights and off-horizon weights alike.
func TestSnapshotMatchesSeedPipeline(t *testing.T) {
	for _, p := range trace.Presets() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			tr, err := trace.GeneratePreset(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			metricT := experiment.DefaultMetricT(tr.Name)
			params := knowledge.Params{Nodes: tr.Nodes, MetricT: metricT}
			builder := knowledge.NewBuilder(params, tr.Contacts)
			provider := knowledge.NewProvider(params, tr.Contacts)
			grid := []float64{0.4 * tr.Duration, 0.7 * tr.Duration, tr.Duration}
			for gi, bt := range grid {
				paths, metrics := seedPipeline(tr, bt, metricT, graph.DefaultMaxHops)
				full := builder.Build(bt, nil, gi+1)
				incr := provider.At(bt) // chained off the previous grid time
				if incr.ReusedSources() > 0 && gi > 0 {
					t.Logf("t=%.0f: %d sources reused incrementally", bt, incr.ReusedSources())
				}
				for _, snap := range []*knowledge.Snapshot{full, incr} {
					gotM := snap.Metrics()
					for i, want := range metrics {
						if gotM[i] != want {
							t.Fatalf("t=%.0f v%d: metric[%d] = %v, seed pipeline %v",
								bt, snap.Version(), i, gotM[i], want)
						}
					}
					for i := 0; i < tr.Nodes; i++ {
						for j := 0; j < tr.Nodes; j++ {
							a, b := trace.NodeID(i), trace.NodeID(j)
							want := paths[i].Weight(b, metricT)
							if i == j {
								want = 1 // Env.Weight's self-delivery convention
							}
							if got := snap.MetricWeight(a, b); got != want && i != j {
								t.Fatalf("t=%.0f: MetricWeight(%d,%d) = %v, seed %v", bt, i, j, got, want)
							}
							if got := snap.Weight(a, b, metricT); got != want {
								t.Fatalf("t=%.0f: Weight(%d,%d,T) = %v, seed %v", bt, i, j, got, want)
							}
						}
					}
					// Off-horizon weights go through the memo path; spot-check
					// a diagonal stride both cold and warm.
					other := 0.37 * metricT
					for i := 0; i < tr.Nodes; i++ {
						j := (i + 7) % tr.Nodes
						a, b := trace.NodeID(i), trace.NodeID(j)
						want := paths[i].Weight(b, other)
						if i == j {
							want = 1
						}
						if got := snap.Weight(a, b, other); got != want {
							t.Fatalf("t=%.0f: Weight(%d,%d,%.0f) = %v, seed %v", bt, i, j, other, got, want)
						}
						if got := snap.Weight(a, b, other); got != want {
							t.Fatalf("t=%.0f: memoized Weight(%d,%d,%.0f) = %v, seed %v", bt, i, j, other, got, want)
						}
					}
				}
			}
		})
	}
}

// pairContacts builds a tiny hand-written contact list over 6 nodes:
// a triangle component {0,1,2}, a pair component {3,4} and the isolated
// node 5. Contacts are sorted by start time as trace.Validate requires.
func pairContacts() []trace.Contact {
	return []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 12},
		{A: 1, B: 2, Start: 20, End: 22},
		{A: 0, B: 2, Start: 30, End: 33},
		{A: 3, B: 4, Start: 40, End: 45},
		{A: 3, B: 4, Start: 50.5, End: 52},
	}
}

// TestIncrementalExactReuse checks epsilon = 0 dirtiness propagation:
// advancing the build time rescales every existing edge rate (count /
// elapsed), so both connected components are dirty; only the edgeless
// node can be reused, and the result must still equal a full rebuild
// bit-for-bit.
func TestIncrementalExactReuse(t *testing.T) {
	params := knowledge.Params{Nodes: 6, MetricT: 100}
	b := knowledge.NewBuilder(params, pairContacts())
	s1 := b.Build(50, nil, 1)
	if s1.ReusedSources() != 0 {
		t.Fatalf("full build reused %d sources", s1.ReusedSources())
	}
	s2 := b.Build(60, s1, 2)
	if s2.ReusedSources() != 1 { // only the isolated node 5
		t.Fatalf("exact incremental reused %d sources, want 1", s2.ReusedSources())
	}
	full := b.Build(60, nil, 2)
	wantM, gotM := full.Metrics(), s2.Metrics()
	for i := range wantM {
		if gotM[i] != wantM[i] {
			t.Fatalf("metric[%d]: incremental %v, full %v", i, gotM[i], wantM[i])
		}
	}
	for i := 0; i < params.Nodes; i++ {
		for j := 0; j < params.Nodes; j++ {
			a, bb := trace.NodeID(i), trace.NodeID(j)
			if s2.MetricWeight(a, bb) != full.MetricWeight(a, bb) {
				t.Fatalf("MetricWeight(%d,%d) diverged from full rebuild", i, j)
			}
		}
	}
}

// TestIncrementalEpsilonReuse checks the approximate mode: with a 5%
// tolerance, a small elapsed-time rescale leaves the triangle component
// stale (reused), while the {3,4} component — which gained a contact,
// roughly doubling its rate — is recomputed.
func TestIncrementalEpsilonReuse(t *testing.T) {
	params := knowledge.Params{Nodes: 6, MetricT: 100, Epsilon: 0.05}
	b := knowledge.NewBuilder(params, pairContacts())
	s1 := b.Build(50, nil, 1)
	s2 := b.Build(51, s1, 2)
	// Nodes 0,1,2 (rates moved ~2% < 5%) and 5 are reused; 3,4 are dirty.
	if s2.ReusedSources() != 4 {
		t.Fatalf("epsilon incremental reused %d sources, want 4", s2.ReusedSources())
	}
	// The stale component keeps the base's artifacts verbatim.
	m1, m2 := s1.Metrics(), s2.Metrics()
	for _, i := range []int{0, 1, 2, 5} {
		if m2[i] != m1[i] {
			t.Errorf("metric[%d] changed on a reused source: %v -> %v", i, m1[i], m2[i])
		}
	}
	// The dirty component really was recomputed against the new rates.
	fullM := b.Build(51, nil, 2).Metrics()
	for _, i := range []int{3, 4} {
		if m2[i] != fullM[i] {
			t.Errorf("metric[%d]: dirty source %v, full rebuild %v", i, m2[i], fullM[i])
		}
	}
}

// TestProviderCachesAndVersions pins the Provider contract: a version-0
// empty snapshot, cache hits returning the identical value, and
// monotonically increasing versions.
func TestProviderCachesAndVersions(t *testing.T) {
	pr := knowledge.NewProvider(knowledge.Params{Nodes: 6, MetricT: 100}, pairContacts())
	e := pr.Empty()
	if e.Version() != 0 || e.BuiltAt() != 0 {
		t.Fatalf("empty snapshot: version %d at %v", e.Version(), e.BuiltAt())
	}
	if w := e.Weight(0, 0, 100); w != 1 {
		t.Errorf("empty self weight = %v, want 1", w)
	}
	if w := e.Weight(0, 1, 100); w != 0 {
		t.Errorf("empty cross weight = %v, want 0", w)
	}
	s1 := pr.At(50)
	if s1.Version() != 1 {
		t.Fatalf("first snapshot version %d, want 1", s1.Version())
	}
	if again := pr.At(50); again != s1 {
		t.Fatal("cache miss on a repeated At(t)")
	}
	s2 := pr.At(60)
	if s2.Version() != 2 {
		t.Fatalf("second snapshot version %d, want 2", s2.Version())
	}
	if s2.ReusedSources() == 0 {
		t.Error("At(60) should have built incrementally against At(50)")
	}
	// Out-of-range lookups are defined, not panics.
	if w := s2.Weight(-1, 0, 100); w != 0 {
		t.Errorf("out-of-range Weight = %v, want 0", w)
	}
	if w := s2.MetricWeight(0, trace.NodeID(99)); w != 0 {
		t.Errorf("out-of-range MetricWeight = %v, want 0", w)
	}
}

// TestSnapshotSharingConcurrent hammers one shared Provider from many
// goroutines walking the same refresh grid — the cross-scheme sharing
// pattern of experiment.RunComparison — and checks every consumer
// observes identical knowledge. Run under -race (scripts/check.sh) this
// also proves the parallel build fan-out and the Weight memo are
// data-race free.
func TestSnapshotSharingConcurrent(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	metricT := experiment.DefaultMetricT(tr.Name)
	pr := knowledge.NewProvider(knowledge.Params{Nodes: tr.Nodes, MetricT: metricT}, tr.Contacts)
	grid := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	const consumers = 8
	sums := make([]uint64, consumers)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var sum float64
			for _, f := range grid {
				snap := pr.At(f * tr.Duration)
				for i := 0; i < tr.Nodes; i++ {
					j := (i + c + 1) % tr.Nodes
					a, b := trace.NodeID(i), trace.NodeID(j)
					sum += snap.MetricWeight(a, b)
					sum += snap.Weight(a, b, 0.41*metricT) // memo path
					sum += snap.Metrics()[i]
				}
			}
			sums[c] = math.Float64bits(sum)
		}(c)
	}
	wg.Wait()
	// Re-run consumer 0's walk serially and require bitwise agreement —
	// concurrency must not change what any consumer reads.
	var want float64
	for _, f := range grid {
		snap := pr.At(f * tr.Duration)
		for i := 0; i < tr.Nodes; i++ {
			j := (i + 1) % tr.Nodes
			a, b := trace.NodeID(i), trace.NodeID(j)
			want += snap.MetricWeight(a, b)
			want += snap.Weight(a, b, 0.41*metricT)
			want += snap.Metrics()[i]
		}
	}
	if sums[0] != math.Float64bits(want) {
		t.Errorf("concurrent consumer read %x, serial replay %x", sums[0], math.Float64bits(want))
	}
}

// TestParamsNormalized pins the Params sharing key: defaults are filled
// so equivalent configurations compare equal with ==.
func TestParamsNormalized(t *testing.T) {
	n := knowledge.Params{Nodes: 5, MetricT: 10}.Normalized()
	if n.MaxHops != graph.DefaultMaxHops {
		t.Errorf("MaxHops default = %d, want %d", n.MaxHops, graph.DefaultMaxHops)
	}
	explicit := knowledge.Params{Nodes: 5, MetricT: 10, MaxHops: graph.DefaultMaxHops}.Normalized()
	if n != explicit {
		t.Error("default and explicit MaxHops params should normalize equal")
	}
	if neg := (knowledge.Params{Nodes: 5, MetricT: 10, Epsilon: -1}).Normalized(); neg.Epsilon != 0 {
		t.Errorf("negative Epsilon normalized to %v, want 0", neg.Epsilon)
	}
}
