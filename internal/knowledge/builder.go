package knowledge

import (
	"sort"
	"sync"

	"dtncache/internal/graph"
	"dtncache/internal/trace"
)

// Builder turns contact-trace prefixes into Snapshots. It holds no
// mutable state of its own — Build is a pure function of (contacts,
// build time, base snapshot) — so one Builder may serve concurrent
// Build calls for different times.
//
// The contact list must be sorted by start time (trace.Validate
// guarantees this for raw traces; sim.MergeOverlaps preserves it).
// Whether the list is raw or merged is the caller's choice: scheme.Env
// counts merged contacts (one Handler.ContactStart per merged session),
// while the offline Fig. 4 analysis counts raw contacts, exactly as the
// seed code did.
//
//dtn:shared one Builder serves every scheme and sweep cell
type Builder struct {
	params   Params
	contacts []trace.Contact
}

// NewBuilder creates a builder over the given contact list.
func NewBuilder(p Params, contacts []trace.Contact) *Builder {
	return &Builder{params: p.Normalized(), contacts: contacts}
}

// Params returns the normalized pipeline configuration.
func (b *Builder) Params() Params { return b.params }

// counts accumulates the symmetric pairwise contact counts of every
// contact with Start <= t — the same prefix graph.RateEstimator has
// observed by the refresh event at time t (contact-start events at
// equal virtual time carry lower sequence numbers than maintenance
// ticks, so they fire first).
func (b *Builder) counts(t float64) []int {
	n := b.params.Nodes
	counts := make([]int, n*n)
	// Contacts are sorted by start, so the observed prefix is contiguous.
	end := sort.Search(len(b.contacts), func(i int) bool {
		return b.contacts[i].Start > t
	})
	for _, c := range b.contacts[:end] {
		if c.A == c.B || c.A < 0 || c.B < 0 || int(c.A) >= n || int(c.B) >= n {
			continue
		}
		counts[int(c.A)*n+int(c.B)]++
		counts[int(c.B)*n+int(c.A)]++
	}
	return counts
}

// Build produces the snapshot at time t. With base == nil every source
// is computed from scratch; with a base, sources whose connected
// component is unchanged within Epsilon reuse the base's paths, weight
// row and metric (see dirtySources). version is recorded on the
// snapshot; the Provider passes its own monotone counter.
func (b *Builder) Build(t float64, base *Snapshot, version int) *Snapshot {
	var counts []int
	if t > 0 {
		counts = b.counts(t)
	}
	return b.buildFromCounts(counts, t, base, version)
}

// scratchPool recycles the layered-DP working arrays across path
// computations. Scratch identity never affects results (PathsInto's
// contract), so pooling is invisible to determinism.
var scratchPool = sync.Pool{New: func() any { return new(graph.PathScratch) }}

// buildFromCounts is Build with the contact counting already done —
// the streaming Provider supplies counts from its online fold instead
// of a materialized contact list. counts may be nil when t <= 0.
//
// The weight matrix is built in two passes so its CSR slabs can be
// sized exactly: pass 1 computes each dirty source's paths, its Eq. (3)
// metric (summing every off-diagonal weight, zeros included, in the
// same order as the dense build — bit-identical by construction), and
// its non-zero count; after a prefix sum sizes the slabs, pass 2 fills
// each row's index-owned range. The second weight evaluation per entry
// is a pure read of the materialized hypoexponentials.
func (b *Builder) buildFromCounts(counts []int, t float64, base *Snapshot, version int) *Snapshot {
	n := b.params.Nodes
	s := &Snapshot{
		params:  b.params,
		version: version,
		builtAt: t,
		paths:   make([]*graph.Paths, n),
		metrics: make([]float64, n),
	}
	// The rate arithmetic must match RateEstimator.Snapshot bit-for-bit:
	// count/elapsed with the observation window starting at 0.
	s.g = graph.NewGraph(n)
	if t > 0 && counts != nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if c := counts[i*n+j]; c > 0 {
					s.g.SetRate(trace.NodeID(i), trace.NodeID(j), float64(c)/t)
				}
			}
		}
	}

	var dirty []int
	if base != nil && base.params == b.params && len(base.paths) == n {
		dirty = b.dirtySources(base.g, s.g)
	} else {
		dirty = make([]int, n)
		for i := range dirty {
			dirty[i] = i
		}
	}
	isDirty := make([]bool, n)
	for _, i := range dirty {
		isDirty[i] = true
	}

	rowLen := make([]int32, n)

	// Clean sources: carry the base's artifacts over unchanged (the CSR
	// row contents follow in pass 2, once the slabs exist).
	if len(dirty) < n {
		for i := 0; i < n; i++ {
			if isDirty[i] {
				continue
			}
			s.paths[i] = base.paths[i]
			s.metrics[i] = base.metrics[i]
			rowLen[i] = base.rowPtr[i+1] - base.rowPtr[i]
			s.reused++
		}
	}

	// Pass 1 — dirty sources: recompute paths, the Eq. (3) metric, and
	// the row's non-zero count, in parallel across index-owned slots.
	// Evaluating the full weight row also materializes every reachable
	// hypoexponential, so the published snapshot is never mutated again.
	forEachSource(len(dirty), func(k int) {
		i := dirty[k]
		scratch := scratchPool.Get().(*graph.PathScratch)
		p := s.g.PathsInto(trace.NodeID(i), b.params.MaxHops, scratch)
		scratchPool.Put(scratch)
		p.Materialize()
		s.paths[i] = p
		var sum float64
		var nnz int32
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			w := p.Weight(trace.NodeID(j), b.params.MetricT)
			sum += w
			if w != 0 {
				nnz++
			}
		}
		rowLen[i] = nnz
		if n > 1 {
			s.metrics[i] = sum / float64(n-1)
		}
	})

	// Size and fill the CSR slabs.
	s.rowPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		s.rowPtr[i+1] = s.rowPtr[i] + rowLen[i]
	}
	nnz := s.rowPtr[n]
	s.cols = make([]int32, nnz)
	s.vals = make([]float64, nnz)

	// Pass 2 — every row fills its own slab range: dirty rows from the
	// materialized paths, clean rows copied from the base's slabs.
	forEachSource(n, func(i int) {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		if lo == hi {
			return
		}
		if !isDirty[i] {
			blo := base.rowPtr[i]
			copy(s.cols[lo:hi], base.cols[blo:blo+hi-lo])
			copy(s.vals[lo:hi], base.vals[blo:blo+hi-lo])
			return
		}
		p := s.paths[i]
		k := lo
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if w := p.Weight(trace.NodeID(j), b.params.MetricT); w != 0 {
				s.cols[k] = int32(j)
				s.vals[k] = w
				k++
			}
		}
	})
	return s
}

// dirtySources decides which sources must be recomputed when moving
// from the rates of old to the rates of new. A single changed edge
// anywhere in a source's connected component can reroute its shortest
// opportunistic paths, so dirtiness propagates over components of the
// union graph (edges present in either old or new — covering nodes that
// joined or left a component). Per-source paths, weights and metrics
// depend only on the source's own component (the layered DP never
// relaxes an edge out of it, and weights to other components are 0), so
// a component whose rates are unchanged within Epsilon is reused whole.
// With Epsilon = 0 "unchanged" means bitwise equal, which makes reuse
// bit-identical to recomputation.
func (b *Builder) dirtySources(prevG, nextG *graph.Graph) []int {
	n := b.params.Nodes
	comp := newDSU(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			or := prevG.Rate(trace.NodeID(i), trace.NodeID(j))
			nr := nextG.Rate(trace.NodeID(i), trace.NodeID(j))
			if or > 0 || nr > 0 {
				comp.union(i, j)
			}
		}
	}
	changed := make([]bool, n) // indexed by component root
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			or := prevG.Rate(trace.NodeID(i), trace.NodeID(j))
			nr := nextG.Rate(trace.NodeID(i), trace.NodeID(j))
			if (or > 0 || nr > 0) && !b.closeEnough(or, nr) {
				changed[comp.find(i)] = true
			}
		}
	}
	var dirty []int
	for i := 0; i < n; i++ {
		if changed[comp.find(i)] {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// closeEnough reports whether an edge rate moving prev -> next counts
// as unchanged under the configured Epsilon.
func (b *Builder) closeEnough(prev, next float64) bool {
	if b.params.Epsilon == 0 {
		return prev == next
	}
	diff := next - prev
	if diff < 0 {
		diff = -diff
	}
	ref := prev
	if next > ref {
		ref = next
	}
	return diff <= b.params.Epsilon*ref
}

// dsu is a union-find over node indices with path halving.
type dsu []int

func newDSU(n int) dsu {
	d := make(dsu, n)
	for i := range d {
		d[i] = i
	}
	return d
}

func (d dsu) find(x int) int {
	for d[x] != x {
		d[x] = d[d[x]]
		x = d[x]
	}
	return x
}

func (d dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d[ra] = rb
	}
}
