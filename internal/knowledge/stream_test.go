package knowledge_test

import (
	"errors"
	"io"
	"testing"

	"dtncache/internal/knowledge"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
)

// compareSnapshots asserts bitwise equality of everything schemes read.
func compareSnapshots(t *testing.T, want, got *knowledge.Snapshot, n int, label string) {
	t.Helper()
	wm, gm := want.Metrics(), got.Metrics()
	for i := range wm {
		if wm[i] != gm[i] {
			t.Fatalf("%s: metric %d = %g, want %g", label, i, gm[i], wm[i])
		}
	}
	if want.WeightNNZ() != got.WeightNNZ() {
		t.Fatalf("%s: nnz %d, want %d", label, got.WeightNNZ(), want.WeightNNZ())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w := want.MetricWeight(trace.NodeID(i), trace.NodeID(j))
			g := got.MetricWeight(trace.NodeID(i), trace.NodeID(j))
			if w != g {
				t.Fatalf("%s: MetricWeight(%d,%d) = %g, want %g", label, i, j, g, w)
			}
		}
	}
}

// TestStreamProviderMatchesMaterialized: a streaming provider fed the
// raw contact source must produce snapshots bit-identical to a
// materialized provider over the merged contact list, including when a
// rewind forces the source to reopen.
func TestStreamProviderMatchesMaterialized(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := knowledge.Params{Nodes: tr.Nodes, MetricT: 86400}

	mat := knowledge.NewProvider(params, sim.MergeOverlaps(tr.Contacts))
	str := knowledge.NewStreamProvider(params, func() (trace.ContactSource, error) {
		return trace.NewSliceSource(tr.Contacts), nil
	})

	// Forward walk, then a rewind to an earlier (uncached on the stream
	// side only via reopen) time, then forward again.
	times := []float64{tr.Duration / 4, tr.Duration / 2, tr.Duration / 3, tr.Duration * 0.9}
	for _, at := range times {
		compareSnapshots(t, mat.At(at), str.At(at), tr.Nodes, "at")
	}
	compareSnapshots(t, mat.Empty(), str.Empty(), tr.Nodes, "empty")
	if err := str.StreamErr(); err != nil {
		t.Fatal(err)
	}
}

// failingSource yields nothing but an error.
type failingSource struct{ err error }

func (f *failingSource) NextContact() (trace.Contact, error) { return trace.Contact{}, f.err }

// TestStreamProviderStickyError: a source error must surface through
// StreamErr and stay sticky.
func TestStreamProviderStickyError(t *testing.T) {
	boom := errors.New("bad stream")
	pr := knowledge.NewStreamProvider(knowledge.Params{Nodes: 4, MetricT: 100},
		func() (trace.ContactSource, error) { return &failingSource{err: boom}, nil })
	_ = pr.At(10)
	if !errors.Is(pr.StreamErr(), boom) {
		t.Fatalf("StreamErr = %v, want %v", pr.StreamErr(), boom)
	}
	_ = pr.At(20)
	if !errors.Is(pr.StreamErr(), boom) {
		t.Fatal("StreamErr not sticky")
	}
}

// TestStreamProviderOpenError: a failing opener is also sticky.
func TestStreamProviderOpenError(t *testing.T) {
	boom := errors.New("cannot open")
	pr := knowledge.NewStreamProvider(knowledge.Params{Nodes: 4, MetricT: 100},
		func() (trace.ContactSource, error) { return nil, boom })
	_ = pr.At(10)
	if !errors.Is(pr.StreamErr(), boom) {
		t.Fatalf("StreamErr = %v, want %v", pr.StreamErr(), boom)
	}
}

// eofSource is an empty source.
type eofSource struct{}

func (eofSource) NextContact() (trace.Contact, error) { return trace.Contact{}, io.EOF }

// TestStreamProviderEmptySource: an empty stream is a valid (edgeless)
// knowledge pipeline, not an error.
func TestStreamProviderEmptySource(t *testing.T) {
	pr := knowledge.NewStreamProvider(knowledge.Params{Nodes: 4, MetricT: 100},
		func() (trace.ContactSource, error) { return eofSource{}, nil })
	s := pr.At(10)
	if err := pr.StreamErr(); err != nil {
		t.Fatal(err)
	}
	if s.WeightNNZ() != 0 {
		t.Fatalf("nnz = %d, want 0", s.WeightNNZ())
	}
}
