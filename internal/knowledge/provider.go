package knowledge

import (
	"sort"
	"sync"

	"dtncache/internal/obs"
	"dtncache/internal/trace"
)

// maxCached bounds how many snapshots a Provider retains. It must
// cover a whole default refresh grid (duration/100 from the mid-trace
// warmup, ~51 points): consumers of a comparison walk the same grid but
// not in lockstep — on few cores they run one after another — so a
// bound smaller than the grid makes each later consumer miss every
// time (a sequential scan over an undersized cache evicts entries just
// before their reuse). Evicting the oldest beyond the bound merely
// costs a rebuild if a very late consumer asks again; with Epsilon = 0
// a rebuild is bit-identical, so eviction never changes results.
const maxCached = 128

// Provider builds and caches snapshots for one (contact list, Params)
// pipeline. It is safe for concurrent use: schemes in a comparison
// share a provider, and whichever requests a refresh time first builds
// it (incrementally, against the newest earlier snapshot) while the
// rest reuse the cached value.
//
// With Epsilon = 0 every snapshot is bit-identical to a full recompute,
// so results never depend on which consumer built what or on eviction
// timing. With Epsilon > 0 a snapshot depends on its incremental base;
// that approximate mode is deterministic only for a single consumer
// requesting monotonically increasing times.
//
//dtn:shared the mutex-guarded snapshot cache crosses sweep cells
type Provider struct {
	builder *Builder

	mu      sync.Mutex
	byTime  map[float64]*Snapshot
	times   []float64 // sorted build times of cached snapshots
	version int
	empty   *Snapshot

	// Streaming mode (NewStreamProvider): counts come from an online
	// fold over a contact source instead of a materialized list. A
	// source failure is sticky in streamErr.
	feed      *contactFeed
	streamErr error

	rec      *obs.Recorder
	cBuilds  *obs.Counter
	cHits    *obs.Counter
	gaCached *obs.Gauge
}

// NewProvider creates a provider over the given sorted contact list
// (see Builder for the raw-vs-merged contract).
func NewProvider(p Params, contacts []trace.Contact) *Provider {
	return &Provider{
		builder: NewBuilder(p, contacts),
		byTime:  make(map[float64]*Snapshot),
	}
}

// Params returns the normalized pipeline configuration, for
// compatibility checks when a provider is shared.
func (pr *Provider) Params() Params { return pr.builder.Params() }

// StreamErr returns the sticky error, if any, a streaming provider's
// contact source reported. Always nil for a materialized provider.
func (pr *Provider) StreamErr() error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.streamErr
}

// SetRecorder attaches observability: knowledge/builds and
// knowledge/cache_hits counters, a knowledge/cached_snapshots gauge and
// a "knowledge-build" phase span per build. Only attach to a privately
// owned provider — a provider shared across parallel sweep cells must
// stay recorder-free so one cell's metrics do not absorb another's
// builds.
func (pr *Provider) SetRecorder(r *obs.Recorder) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.rec = r
	if r == nil {
		pr.cBuilds, pr.cHits, pr.gaCached = nil, nil, nil
		return
	}
	pr.cBuilds = r.Counter("knowledge", "builds")
	pr.cHits = r.Counter("knowledge", "cache_hits")
	pr.gaCached = r.Gauge("knowledge", "cached_snapshots")
}

// Empty returns the version-0 snapshot of an empty graph: the knowledge
// an Env holds before its first refresh.
func (pr *Provider) Empty() *Snapshot {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.empty == nil {
		pr.empty = pr.builder.Build(0, nil, 0)
	}
	return pr.empty
}

// At returns the snapshot of the contact prefix up to time t, building
// it on first request. The build is incremental against the newest
// cached snapshot older than t when one exists.
func (pr *Provider) At(t float64) *Snapshot {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if s, ok := pr.byTime[t]; ok {
		pr.cHits.Inc()
		return s
	}
	var base *Snapshot
	// The newest cached time strictly before t, if any.
	if i := sort.SearchFloat64s(pr.times, t); i > 0 {
		base = pr.byTime[pr.times[i-1]]
	}
	pr.version++
	done := pr.rec.Phase("knowledge-build")
	var s *Snapshot
	if pr.feed != nil {
		counts, err := pr.feed.countsAt(t)
		if err != nil && pr.streamErr == nil {
			pr.streamErr = err
		}
		s = pr.builder.buildFromCounts(counts, t, base, pr.version)
	} else {
		s = pr.builder.Build(t, base, pr.version)
	}
	done()
	pr.cBuilds.Inc()
	pr.byTime[t] = s
	i := sort.SearchFloat64s(pr.times, t)
	pr.times = append(pr.times, 0)
	copy(pr.times[i+1:], pr.times[i:])
	pr.times[i] = t
	if len(pr.times) > maxCached {
		delete(pr.byTime, pr.times[0])
		pr.times = pr.times[1:]
	}
	pr.gaCached.Set(int64(len(pr.times)))
	return s
}
