// Package knowledge owns the contact-rate → opportunistic-path →
// NCL-metric pipeline of Secs. III-B and IV-B as versioned, immutable
// Snapshot values.
//
// The seed architecture recomputed this pipeline from scratch inside
// every scheme.Env at every knowledge refresh — once per scheme in a
// comparison, once per sweep cell — and re-evaluated the
// hypoexponential path weight (Eq. 2) on every MetricWeight call. This
// package centralizes the artifact:
//
//   - A Builder turns a prefix of the contact trace (all contacts with
//     Start <= t) into a Snapshot: the rate graph, per-source shortest
//     opportunistic paths, the dense n×n weight matrix at the metric
//     horizon T, and the Eq. (3) NCL metric per node. The arithmetic
//     reproduces graph.RateEstimator.Snapshot + Graph.AllPaths +
//     Graph.Metrics bit-for-bit.
//   - Builds are incremental: given a base snapshot, only sources whose
//     connected component (in the union of the old and new edge sets)
//     has a rate change beyond the relative Epsilon are recomputed;
//     clean sources reuse the base's Paths, weight row and metric.
//     Epsilon = 0 means bitwise comparison, so reuse happens only when
//     the recomputation would be bit-identical anyway.
//   - Dirty sources fan out across GOMAXPROCS workers writing
//     index-owned slots, so parallelism cannot reorder results.
//   - A Provider caches snapshots by build time behind a mutex so
//     concurrently running schemes of one comparison share each refresh
//     instead of rebuilding it per scheme.
//
// Snapshots are immutable after Build returns: every Paths is
// materialized (graph.Paths.Materialize), so all reads — Weight,
// MetricWeight, Metrics — are safe for concurrent use and consumers
// must never mutate a shared snapshot (see DESIGN.md "Knowledge
// layer").
//
//dtn:determinism
package knowledge

import (
	"dtncache/internal/graph"
)

// Params identifies the knowledge pipeline configuration. Two consumers
// may share a Provider exactly when their Params are equal.
type Params struct {
	// Nodes is the trace's node count.
	Nodes int
	// MetricT is the path-weight horizon T of Sec. IV-B; the n×n weight
	// matrix is precomputed at this horizon.
	MetricT float64
	// MaxHops caps opportunistic path length (graph.DefaultMaxHops if
	// <= 0, mirroring graph.Paths).
	MaxHops int
	// Epsilon is the relative rate-change threshold for incremental
	// builds. 0 (the default) is exact mode: a source is reused only
	// when its whole component's rates are bitwise unchanged, so every
	// snapshot is bit-identical to a full recompute. Epsilon > 0 is an
	// explicit approximation: components whose rates all moved by less
	// than Epsilon (relative to the larger magnitude) keep their stale
	// paths and weights.
	Epsilon float64
}

// Normalized fills defaults (MaxHops, clamped Epsilon) so equivalent
// pipeline configurations compare equal with ==.
func (p Params) Normalized() Params {
	if p.MaxHops <= 0 {
		p.MaxHops = graph.DefaultMaxHops
	}
	if p.Epsilon < 0 {
		p.Epsilon = 0
	}
	return p
}
