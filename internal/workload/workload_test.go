package workload

import (
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		Nodes:        20,
		GenProb:      0.2,
		AvgLifetime:  7 * 86400,
		AvgSizeBits:  100e6,
		ZipfExponent: 1,
		Start:        0,
		End:          100 * 86400,
		Seed:         1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.GenProb = -0.1 },
		func(c *Config) { c.GenProb = 1.1 },
		func(c *Config) { c.AvgLifetime = 0 },
		func(c *Config) { c.AvgSizeBits = 0 },
		func(c *Config) { c.ZipfExponent = -1 },
		func(c *Config) { c.End = c.Start },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	w, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SortedCheck(); err != nil {
		t.Fatal(err)
	}
	if len(w.Data) == 0 {
		t.Fatal("no data generated")
	}
	if len(w.Queries) == 0 {
		t.Fatal("no queries generated")
	}
	cfg := w.Config
	for _, d := range w.Data {
		if d.Created < cfg.Start || d.Created >= cfg.End {
			t.Errorf("data created outside window: %+v", d)
		}
		life := d.Lifetime()
		if life < 0.5*cfg.AvgLifetime-1e-9 || life > 1.5*cfg.AvgLifetime+1e-9 {
			t.Errorf("lifetime %v outside [0.5,1.5]*T_L", life)
		}
		if d.SizeBits < 0.5*cfg.AvgSizeBits-1e-9 || d.SizeBits > 1.5*cfg.AvgSizeBits+1e-9 {
			t.Errorf("size %v outside [0.5,1.5]*s_avg", d.SizeBits)
		}
	}
	for _, q := range w.Queries {
		if got := q.Constraint(); math.Abs(got-cfg.AvgLifetime/2) > 1e-9 {
			t.Errorf("constraint = %v, want T_L/2", got)
		}
		item, ok := w.Item(q.Data)
		if !ok {
			t.Fatalf("query for unknown data %d", q.Data)
		}
		if q.Requester == item.Source {
			t.Error("source queried its own data")
		}
		if !item.Live(q.Issued) {
			t.Errorf("query %d issued for non-live data", q.ID)
		}
	}
}

func TestGenerateAtMostOneLiveItemPerNode(t *testing.T) {
	w, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At every data creation instant, the source must not have another
	// live item.
	for _, d := range w.Data {
		for _, other := range w.Data {
			if other.ID == d.ID || other.Source != d.Source {
				continue
			}
			if other.Created < d.Created && other.Expires > d.Created {
				t.Fatalf("node %d generated %d while %d still live",
					d.Source, d.ID, other.ID)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != len(b.Data) || len(a.Queries) != len(b.Queries) {
		t.Fatal("same seed produced different workloads")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("data differs")
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("queries differ")
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := baseConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	if len(a.Data) == len(b.Data) {
		same := true
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestZipfQuerySkew(t *testing.T) {
	// With s=1, low-ID (early) live items should collect more queries
	// than high-ID ones on average. Compare first and last third.
	cfg := baseConfig()
	cfg.Nodes = 40
	cfg.End = 200 * 86400
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := w.QueriesPerData()
	if len(counts) == 0 {
		t.Fatal("no queries")
	}
	// Per query epoch the rank-1 item is the live item with the smallest
	// ID. Aggregate: items should, on average, receive more queries while
	// they are the oldest live item. A blunt but robust check: total
	// queries follow the zipf head — the single most-queried item should
	// be well above the median.
	var max, sum int
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(w.Data))
	if float64(max) < 2*mean {
		t.Errorf("query pattern too flat: max=%d mean=%v", max, mean)
	}
}

func TestLifetimeControlsDataVolume(t *testing.T) {
	// Fig. 9(a): with p_G fixed, the cumulative number of generated items
	// over a fixed window decreases as T_L grows.
	cfg := baseConfig()
	cfg.AvgLifetime = 12 * 3600
	short, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	cfg.AvgLifetime = 30 * 86400
	long, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Data) <= len(long.Data) {
		t.Errorf("short T_L generated %d items, long T_L %d; want short > long",
			len(short.Data), len(long.Data))
	}
}

func TestItemLookup(t *testing.T) {
	w, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Item(-1); ok {
		t.Error("negative ID found")
	}
	if _, ok := w.Item(DataID(len(w.Data))); ok {
		t.Error("out-of-range ID found")
	}
	item, ok := w.Item(0)
	if !ok || item.ID != 0 {
		t.Error("item 0 lookup failed")
	}
}

func TestMeanLiveItems(t *testing.T) {
	w, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := w.MeanLiveItems(200)
	if mean <= 0 {
		t.Errorf("mean live items = %v", mean)
	}
	if mean > float64(w.Config.Nodes) {
		t.Errorf("mean live items %v exceeds node count (max one live item per node)", mean)
	}
}

func TestPerNodeInterests(t *testing.T) {
	cfg := baseConfig()
	cfg.Nodes = 40
	global, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PerNodeInterests = true
	personal, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := personal.SortedCheck(); err != nil {
		t.Fatal(err)
	}
	// Total query volume stays in the same ballpark (the pmf is merely
	// permuted per node).
	g, p := float64(len(global.Queries)), float64(len(personal.Queries))
	if p < 0.5*g || p > 2*g {
		t.Errorf("query volume changed drastically: %v vs %v", p, g)
	}
	// Demand concentration per item flattens: the single most-queried
	// item should hold a smaller share under personal interests.
	share := func(w *Workload) float64 {
		counts := w.QueriesPerData()
		max, sum := 0, 0
		for _, c := range counts {
			if c > max {
				max = c
			}
			sum += c
		}
		if sum == 0 {
			return 0
		}
		return float64(max) / float64(sum)
	}
	if share(personal) >= share(global) {
		t.Errorf("personal interests did not flatten demand: %v vs %v",
			share(personal), share(global))
	}
}
