// Package workload generates the data and query workload of the paper's
// experiment setup (Sec. VI-A):
//
//   - Every period T_L each node that has no live self-generated data
//     creates a new item with probability p_G = 0.2; the item's lifetime
//     is uniform in [0.5, 1.5]·T_L and its size uniform in
//     [0.5, 1.5]·s_avg.
//   - Every T_L/2 each node decides, independently per live data item j,
//     whether to request it with the Zipf probability P_j of Eq. (8);
//     each query carries the finite time constraint T_L/2.
//
// Because generation is independent of the protocols under test, the
// whole workload is materialized up front, which makes runs over
// different caching schemes use byte-identical inputs.
//
//dtn:determinism
package workload

import (
	"errors"
	"fmt"
	"sort"

	"dtncache/internal/mathx"
	"dtncache/internal/trace"
)

// DataID identifies a data item network-wide ("globally unique
// identifier" in Sec. III-C). IDs are dense in creation order.
type DataID int

// DataItem is one generated data item.
type DataItem struct {
	ID       DataID
	Source   trace.NodeID
	SizeBits float64
	Created  float64
	Expires  float64
}

// Lifetime returns the item's total lifetime in seconds.
func (d DataItem) Lifetime() float64 { return d.Expires - d.Created }

// Expired reports whether the item is expired at time now.
func (d DataItem) Expired(now float64) bool { return now >= d.Expires }

// Live reports whether the item exists and is unexpired at time now.
func (d DataItem) Live(now float64) bool { return now >= d.Created && now < d.Expires }

// QueryID identifies a query.
type QueryID int

// Query is one data request with a finite time constraint.
type Query struct {
	ID        QueryID
	Requester trace.NodeID
	Data      DataID
	Issued    float64
	Deadline  float64
}

// Constraint returns the query's time constraint T_q.
func (q Query) Constraint() float64 { return q.Deadline - q.Issued }

// Config parameterizes workload generation.
type Config struct {
	// Nodes is the network size.
	Nodes int
	// GenProb is p_G, the per-period generation probability (paper: 0.2).
	GenProb float64
	// AvgLifetime is T_L in seconds.
	AvgLifetime float64
	// AvgSizeBits is s_avg in bits (paper: 100 Mb default).
	AvgSizeBits float64
	// ZipfExponent is the query-pattern exponent s (paper: 1).
	ZipfExponent float64
	// PerNodeInterests gives every requester its own stable permutation
	// of the Zipf ranks instead of the paper's global popularity order:
	// total demand stays Zipf-shaped but nodes disagree about which data
	// is hot (an extension knob; the paper's model is the default).
	PerNodeInterests bool
	// Start and End bound the generation window (paper: the second half
	// of the trace; the first half is warm-up).
	Start, End float64
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errors.New("workload: need at least one node")
	case c.GenProb < 0 || c.GenProb > 1:
		return errors.New("workload: generation probability must be in [0,1]")
	case c.AvgLifetime <= 0:
		return errors.New("workload: average lifetime must be positive")
	case c.AvgSizeBits <= 0:
		return errors.New("workload: average data size must be positive")
	case c.ZipfExponent < 0:
		return errors.New("workload: zipf exponent must be >= 0")
	case c.End <= c.Start:
		return errors.New("workload: empty generation window")
	}
	return nil
}

// Workload is a fully materialized data and query schedule.
type Workload struct {
	Config  Config
	Data    []DataItem // sorted by Created, ID dense in this order
	Queries []Query    // sorted by Issued, ID dense in this order
}

// Generate materializes the workload for the given configuration.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRand(cfg.Seed)
	genRng := rng.Derive("datagen")
	queryRng := rng.Derive("query")

	w := &Workload{Config: cfg}

	// Data generation: per node, epochs at Start + k*T_L. A node
	// generates only when its previous item (if any) has expired.
	expiresAt := make([]float64, cfg.Nodes) // 0 = never generated
	for t := cfg.Start; t < cfg.End; t += cfg.AvgLifetime {
		for n := 0; n < cfg.Nodes; n++ {
			if expiresAt[n] > t {
				continue // previous item still live
			}
			if !genRng.Bernoulli(cfg.GenProb) {
				continue
			}
			life := genRng.Uniform(0.5*cfg.AvgLifetime, 1.5*cfg.AvgLifetime)
			size := genRng.Uniform(0.5*cfg.AvgSizeBits, 1.5*cfg.AvgSizeBits)
			item := DataItem{
				ID:       DataID(len(w.Data)),
				Source:   trace.NodeID(n),
				SizeBits: size,
				Created:  t,
				Expires:  t + life,
			}
			w.Data = append(w.Data, item)
			expiresAt[n] = item.Expires
		}
	}

	// Queries: epochs every T_L/2. At each epoch, every node considers
	// each live item (ranked by ascending ID, i.e. creation order) and
	// requests it with the Zipf probability for its rank — or for its
	// node-specific permutation of the rank when PerNodeInterests is on.
	interval := cfg.AvgLifetime / 2
	for t := cfg.Start + interval; t < cfg.End; t += interval {
		live := w.liveAt(t)
		if len(live) == 0 {
			continue
		}
		zipf, err := mathx.NewZipf(len(live), cfg.ZipfExponent)
		if err != nil {
			return nil, err
		}
		for n := 0; n < cfg.Nodes; n++ {
			var perm []int
			if cfg.PerNodeInterests {
				// Derived per node with a stable label, so a node's taste
				// stays consistent across epochs of equal size.
				perm = mathx.NewRand(cfg.Seed).Derive(fmt.Sprintf("interest-%d", n)).Perm(len(live))
			}
			for rank, item := range live {
				if item.Source == trace.NodeID(n) {
					continue // the source trivially has its own data
				}
				effective := rank
				if perm != nil {
					effective = perm[rank]
				}
				if !queryRng.Bernoulli(zipf.P(effective + 1)) {
					continue
				}
				w.Queries = append(w.Queries, Query{
					ID:        QueryID(len(w.Queries)),
					Requester: trace.NodeID(n),
					Data:      item.ID,
					Issued:    t,
					Deadline:  t + interval,
				})
			}
		}
	}
	return w, nil
}

// liveAt returns the items live at time t, in ascending ID order.
func (w *Workload) liveAt(t float64) []DataItem {
	var out []DataItem
	for _, d := range w.Data {
		if d.Live(t) {
			out = append(out, d)
		}
	}
	return out
}

// LiveAt returns the number of live items at time t.
func (w *Workload) LiveAt(t float64) int { return len(w.liveAt(t)) }

// Item returns the data item with the given ID.
func (w *Workload) Item(id DataID) (DataItem, bool) {
	if id < 0 || int(id) >= len(w.Data) {
		return DataItem{}, false
	}
	return w.Data[id], true
}

// MeanLiveItems estimates the time-averaged number of live data items by
// sampling the window at the given number of points.
func (w *Workload) MeanLiveItems(samples int) float64 {
	if samples <= 0 {
		samples = 100
	}
	var sum float64
	span := w.Config.End - w.Config.Start
	for i := 0; i < samples; i++ {
		t := w.Config.Start + span*float64(i)/float64(samples)
		sum += float64(w.LiveAt(t))
	}
	return sum / float64(samples)
}

// QueriesPerData returns how many queries target each data item.
func (w *Workload) QueriesPerData() map[DataID]int {
	out := make(map[DataID]int, len(w.Data))
	for _, q := range w.Queries {
		out[q.Data]++
	}
	return out
}

// SortedCheck verifies the invariants tests rely on: data sorted by
// Created with dense IDs, queries sorted by Issued with dense IDs and
// deadlines after issue times.
func (w *Workload) SortedCheck() error {
	if !sort.SliceIsSorted(w.Data, func(i, j int) bool {
		return w.Data[i].Created < w.Data[j].Created
	}) {
		return errors.New("workload: data not sorted by creation time")
	}
	for i, d := range w.Data {
		if d.ID != DataID(i) {
			return errors.New("workload: data IDs not dense")
		}
		if d.Expires <= d.Created {
			return errors.New("workload: non-positive lifetime")
		}
	}
	if !sort.SliceIsSorted(w.Queries, func(i, j int) bool {
		return w.Queries[i].Issued < w.Queries[j].Issued
	}) {
		return errors.New("workload: queries not sorted by issue time")
	}
	for i, q := range w.Queries {
		if q.ID != QueryID(i) {
			return errors.New("workload: query IDs not dense")
		}
		if q.Deadline <= q.Issued {
			return errors.New("workload: non-positive query constraint")
		}
		if q.Data < 0 || int(q.Data) >= len(w.Data) {
			return errors.New("workload: query references unknown data")
		}
	}
	return nil
}
