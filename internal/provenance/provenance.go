// Package provenance builds causal span trees for queries: every
// query gets a trace ID derived from (seed, query ID), and its journey
// — issue, per-hop custody segments of the query and the reply, the
// NCL lookup, the cache pull with its Eq. 6 utility, delivery — is
// recorded as spans with virtual-time extents and cause edges to their
// parents. Spans are emitted through the obs run-trace (one "span"
// NDJSON line each) and optionally retained in memory so a live
// service can answer "why was query Q slow?" after the fact.
//
// Causality model: custody of a query copy (and later of its reply) is
// a chain of segments. A segment starts when the copy arrives at a
// node (or when the query is issued, for the requester's original),
// and ends when a contact delivers it to the next node; the enqueue
// instant of that transfer is embedded in the segment, splitting it
// into wait-for-contact [start, enq] and everything after. The
// segment's parent is the segment (or pull) that put the copy on this
// node, so walking parent edges from the delivery span back to the
// root reproduces the query's critical path, and virtual-time
// arithmetic over it attributes the end-to-end delay exactly (see
// Tree.Attribute).
//
// Everything is driven by the deterministic event loop, so the span
// stream is byte-identical across runs at a fixed seed. All Tracer
// methods are nil-receiver-safe: simulations that neither trace nor
// retain never construct a Tracer, keeping the replay hot path at
// 0 allocs/op (pinned by TestSpanZeroAlloc).
//
//dtn:determinism
package provenance

import (
	"sort"

	"dtncache/internal/obs"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Span op names. Static strings: they are embedded in trace lines and
// must never be built dynamically.
const (
	// OpIssue is the root span of every satisfied query: the full
	// [issued, answered] extent (a = requester, x = data ID). It is
	// emitted at answer time, so unsatisfied queries have no root.
	OpIssue = "issue"
	// OpQuerySeg is a gradient custody move of the query toward its
	// target: the sender's custody segment [arrival, delivered]
	// (a = sender, b = receiver, x = target node, v = link seconds).
	OpQuerySeg = "q-seg"
	// OpQuerySpray is a binary-spray replication hop: like q-seg, but
	// the sender keeps its copy, so sibling segments overlap.
	OpQuerySpray = "q-spray"
	// OpQueryBcast is a post-NCL broadcast replication hop.
	OpQueryBcast = "q-bcast"
	// OpNCLMiss marks the query reaching a caching center that does
	// not hold the data (a = center, x = NCL index): the moment the
	// scheme falls back to broadcast.
	OpNCLMiss = "ncl-miss"
	// OpPull is the responder's decision to return data (a = responder,
	// x = data ID, v = the Eq. 6 popularity utility of the cached copy
	// serving the query; 0 when the source serves its own data).
	OpPull = "pull"
	// OpReplySeg is a reply custody move back toward the requester
	// (a = sender, b = receiver, v = link seconds).
	OpReplySeg = "r-seg"
	// OpDeliver is the terminal point span at the requester
	// (a = requester, v = end-to-end delay); only the first on-time
	// delivery emits it.
	OpDeliver = "deliver"
	// OpRetry is a fault-layer re-issue of the query (x = attempt).
	OpRetry = "retry"
)

// rootSpanID is the reserved span ID of the per-query root; child
// spans start at 1.
const rootSpanID = 0

// TraceID derives a query's stable 64-bit trace ID from the run seed
// and the query ID (FNV-1a over both, little-endian), so a trace ID
// names one query of one seeded run across re-executions.
func TraceID(seed int64, id workload.QueryID) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(seed))
	mix(uint64(int64(id)))
	return h
}

// custody is one copy's pending segment: when it arrived on its node
// and which span put it there.
type custody struct {
	arrival float64
	parent  int64
}

// copyKey identifies one query copy: replication fans the query out
// per (target node, carrier), mirroring the scheme's carriage dedup.
type copyKey struct {
	target trace.NodeID
	node   trace.NodeID
}

// queryTrace is the per-query tracer state.
type queryTrace struct {
	traceID   uint64
	issued    float64
	deadline  float64
	requester trace.NodeID
	data      int64
	next      int64 // next span ID; root 0 is reserved for OpIssue
	qcop      map[copyKey]custody
	lastQ     map[copyKey]custody
	rcop      map[trace.NodeID]custody
	spans     []obs.SpanEvent // retained emissions (retain > 0 only)
	done      bool            // first on-time delivery seen
	closed    bool            // past deadline and swept
}

// queryCustody resolves the pending segment of the copy a node
// carries: the first arrival, mirroring the scheme's carriage dedup
// (re-arrivals of an already-carried copy are discarded). A missing
// entry means the copy has been on this node since issue with the root
// as its cause: the requester's original, a retry re-issue, or the
// requester doubling as its own caching center.
func (qt *queryTrace) queryCustody(k copyKey) custody {
	if c, ok := qt.qcop[k]; ok {
		return c
	}
	return custody{arrival: qt.issued, parent: rootSpanID}
}

// arrivalCustody resolves the most recent arrival of the copy at a
// node. Cache decisions (pull, ncl-miss) run inside arrival callbacks,
// so their cause is the hop that just delivered — which, when a node
// re-receives a copy it already carried (a center re-reached by its
// own broadcast after a push filled its cache), is later than the
// carried copy's first arrival.
func (qt *queryTrace) arrivalCustody(k copyKey) custody {
	if c, ok := qt.lastQ[k]; ok {
		return c
	}
	return qt.queryCustody(k)
}

// Tracer accumulates span trees for in-flight queries and emits their
// spans into the obs run-trace. It is single-goroutine like the rest
// of the event loop (the engine facade serializes access); all methods
// are nil-receiver-safe.
type Tracer struct {
	rec    *obs.Recorder
	seed   int64
	retain int
	qt     map[workload.QueryID]*queryTrace
	// doneOrder is the FIFO of finished/expired queries whose spans are
	// retained for SpanTree; the oldest is evicted past retain.
	doneOrder []workload.QueryID
}

// NewTracer creates a tracer emitting through rec (spans only reach
// the trace when rec has a sink) and retaining the span trees of up to
// retain finished queries for SpanTree lookups.
func NewTracer(rec *obs.Recorder, seed int64, retain int) *Tracer {
	return &Tracer{rec: rec, seed: seed, retain: retain,
		qt: make(map[workload.QueryID]*queryTrace)}
}

// emit stamps the trace ID, writes the span line, and retains it when
// retention is on.
func (t *Tracer) emit(qt *queryTrace, ev obs.SpanEvent) {
	ev.Trace = qt.traceID
	t.rec.Span(ev)
	if t.retain > 0 {
		qt.spans = append(qt.spans, ev)
	}
}

// QueryIssued opens the span tree of a freshly issued query.
func (t *Tracer) QueryIssued(q workload.Query) {
	if t == nil {
		return
	}
	if _, ok := t.qt[q.ID]; ok {
		return // duplicate issue (should not happen; IDs are unique)
	}
	t.qt[q.ID] = &queryTrace{
		traceID:   TraceID(t.seed, q.ID),
		issued:    q.Issued,
		deadline:  q.Deadline,
		requester: q.Requester,
		data:      int64(q.Data),
		next:      rootSpanID + 1,
		qcop:      make(map[copyKey]custody),
		lastQ:     make(map[copyKey]custody),
		rcop:      make(map[trace.NodeID]custody),
	}
}

// QueryRetry records a fault-layer re-issue as a point span caused by
// the root.
func (t *Tracer) QueryRetry(q workload.Query, at float64, attempt int) {
	if t == nil {
		return
	}
	qt := t.qt[q.ID]
	if qt == nil || qt.closed {
		return
	}
	sp := qt.next
	qt.next++
	t.emit(qt, obs.SpanEvent{ID: sp, Parent: rootSpanID, Op: OpRetry,
		Start: at, End: at, Enq: at,
		A: int32(q.Requester), B: -1, Query: int64(q.ID), Aux: int64(attempt)})
}

// QueryHop closes the sender's custody segment for the copy headed at
// target: it waited on the sender from its arrival until enq, then
// spent xferSec on the link, landing on the receiver at delivered.
// moved says whether the sender gave custody up (gradient forwarding)
// or kept its copy (spray/broadcast replication). The receiver's new
// segment starts at delivered with this span as its cause; if the
// receiver already carries the copy the scheme deduplicated the
// arrival, and so do we (first custody wins).
func (t *Tracer) QueryHop(id workload.QueryID, target, from, to trace.NodeID,
	enq, delivered, xferSec float64, op string, moved bool) {
	if t == nil {
		return
	}
	qt := t.qt[id]
	if qt == nil || qt.closed {
		return
	}
	st := qt.queryCustody(copyKey{target, from})
	sp := qt.next
	qt.next++
	t.emit(qt, obs.SpanEvent{ID: sp, Parent: st.parent, Op: op,
		Start: st.arrival, End: delivered, Enq: enq,
		A: int32(from), B: int32(to), Query: int64(id),
		Aux: int64(target), V: xferSec})
	if moved {
		delete(qt.qcop, copyKey{target, from})
	}
	dst := copyKey{target, to}
	if _, ok := qt.qcop[dst]; !ok {
		qt.qcop[dst] = custody{arrival: delivered, parent: sp}
	}
	qt.lastQ[dst] = custody{arrival: delivered, parent: sp}
}

// NCLMiss records the query reaching caching center without finding
// its data — the cache-miss decision point before broadcast.
func (t *Tracer) NCLMiss(id workload.QueryID, target, center trace.NodeID,
	at float64, ncl int) {
	if t == nil {
		return
	}
	qt := t.qt[id]
	if qt == nil || qt.closed {
		return
	}
	st := qt.arrivalCustody(copyKey{target, center})
	sp := qt.next
	qt.next++
	t.emit(qt, obs.SpanEvent{ID: sp, Parent: st.parent, Op: OpNCLMiss,
		Start: at, End: at, Enq: at,
		A: int32(center), B: -1, Query: int64(id), Aux: int64(ncl)})
}

// Pull records the responder deciding to return data: a point span
// caused by the query segment that reached the responder, and the
// cause of the reply's first custody segment. utility is the Eq. 6
// popularity value of the cached copy (0 for source-owned data).
func (t *Tracer) Pull(id workload.QueryID, target, responder trace.NodeID,
	at float64, dataID int64, utility float64) {
	if t == nil {
		return
	}
	qt := t.qt[id]
	if qt == nil || qt.closed {
		return
	}
	st := qt.arrivalCustody(copyKey{target, responder})
	sp := qt.next
	qt.next++
	t.emit(qt, obs.SpanEvent{ID: sp, Parent: st.parent, Op: OpPull,
		Start: at, End: at, Enq: at,
		A: int32(responder), B: -1, Query: int64(id), Aux: dataID, V: utility})
	if _, ok := qt.rcop[responder]; !ok {
		qt.rcop[responder] = custody{arrival: at, parent: sp}
	}
}

// ReplyHop closes the sender's reply custody segment. When the hop
// reaches the requester (toRequester) and is the first on-time
// delivery (first), it also emits the terminal deliver span and the
// root issue span, completing the tree.
func (t *Tracer) ReplyHop(id workload.QueryID, from, to trace.NodeID,
	enq, delivered, xferSec float64, toRequester, first bool) {
	if t == nil {
		return
	}
	qt := t.qt[id]
	if qt == nil || qt.closed {
		return
	}
	st, ok := qt.rcop[from]
	if !ok {
		st = custody{arrival: enq, parent: rootSpanID}
	}
	sp := qt.next
	qt.next++
	t.emit(qt, obs.SpanEvent{ID: sp, Parent: st.parent, Op: OpReplySeg,
		Start: st.arrival, End: delivered, Enq: enq,
		A: int32(from), B: int32(to), Query: int64(id), V: xferSec})
	delete(qt.rcop, from)
	if toRequester {
		if first && !qt.done {
			qt.done = true
			d := qt.next
			qt.next++
			t.emit(qt, obs.SpanEvent{ID: d, Parent: sp, Op: OpDeliver,
				Start: delivered, End: delivered, Enq: delivered,
				A: int32(to), B: -1, Query: int64(id),
				V: delivered - qt.issued})
			t.emit(qt, obs.SpanEvent{ID: rootSpanID, Parent: -1, Op: OpIssue,
				Start: qt.issued, End: delivered, Enq: qt.issued,
				A: int32(qt.requester), B: -1, Query: int64(id), Aux: qt.data})
		}
		return
	}
	if _, ok := qt.rcop[to]; !ok {
		qt.rcop[to] = custody{arrival: delivered, parent: sp}
	}
}

// Sweep retires queries whose deadline has passed: their custody maps
// are dropped, and their span trees either enter the bounded retention
// FIFO or are forgotten. Expired IDs are processed in sorted order so
// eviction is deterministic.
func (t *Tracer) Sweep(now float64) {
	if t == nil || len(t.qt) == 0 {
		return
	}
	var expired []workload.QueryID
	for id, qt := range t.qt {
		if !qt.closed && qt.deadline <= now {
			expired = append(expired, id)
		}
	}
	if len(expired) == 0 {
		return
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		if t.retain > 0 {
			qt := t.qt[id]
			qt.closed = true
			qt.qcop, qt.lastQ, qt.rcop = nil, nil, nil
			t.doneOrder = append(t.doneOrder, id)
		} else {
			delete(t.qt, id)
		}
	}
	for len(t.doneOrder) > t.retain {
		delete(t.qt, t.doneOrder[0])
		t.doneOrder = t.doneOrder[1:]
	}
}

// SpanTree returns a copy of the retained spans of the query, in
// emission order, and whether the query is known. Retention must be on
// (NewTracer retain > 0) for spans to be present.
func (t *Tracer) SpanTree(id workload.QueryID) ([]obs.SpanEvent, bool) {
	if t == nil {
		return nil, false
	}
	qt := t.qt[id]
	if qt == nil {
		return nil, false
	}
	return append([]obs.SpanEvent(nil), qt.spans...), true
}
