package provenance

import (
	"bytes"
	"strings"
	"testing"

	"dtncache/internal/obs"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// closeBuffer is a bytes.Buffer that satisfies io.Closer for the
// stream sink.
type closeBuffer struct{ bytes.Buffer }

func (c *closeBuffer) Close() error { return nil }

func q(id int, req int, data int, issued, deadline float64) workload.Query {
	return workload.Query{ID: workload.QueryID(id), Requester: trace.NodeID(req),
		Data: workload.DataID(data), Issued: issued, Deadline: deadline}
}

// walk a happy-path query through the tracer: issue at 10, gradient
// hop 2->5 (enq 40, delivered 50), hop 5->9 (the center, enq 70,
// delivered 75), miss at the center, broadcast 9->4 (enq 80, delivered
// 82), pull at 4, reply 4->2 (enq 90, delivered 100).
func happyPath(t *testing.T, tr *Tracer) {
	t.Helper()
	query := q(0, 2, 7, 10, 500)
	tr.QueryIssued(query)
	tr.QueryHop(0, 9, 2, 5, 40, 50, 1.0, OpQuerySeg, true)
	tr.QueryHop(0, 9, 5, 9, 70, 75, 1.0, OpQuerySeg, true)
	tr.NCLMiss(0, 9, 9, 75, 3)
	tr.QueryHop(0, 9, 9, 4, 80, 82, 1.0, OpQueryBcast, false)
	tr.Pull(0, 9, 4, 82, 7, 0.25)
	tr.ReplyHop(0, 4, 2, 90, 100, 2.5, true, true)
}

func TestTracerHappyPath(t *testing.T) {
	tr := NewTracer(nil, 1, 8)
	happyPath(t, tr)

	spans, ok := tr.SpanTree(0)
	if !ok {
		t.Fatal("query 0 unknown to the tracer")
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	root, del := tree.Root(), tree.Deliver()
	if root == nil || del == nil {
		t.Fatal("satisfied query must have root and deliver spans")
	}
	if root.Start != 10 || root.End != 100 {
		t.Errorf("root extent [%v,%v], want [10,100]", root.Start, root.End)
	}
	if tid := TraceID(1, 0); root.Trace != tid {
		t.Errorf("trace ID %x, want %x", root.Trace, tid)
	}

	path := tree.CriticalPath()
	ops := make([]string, len(path))
	for i, sp := range path {
		ops[i] = sp.Op
	}
	want := []string{OpIssue, OpQuerySeg, OpQuerySeg, OpQueryBcast, OpPull, OpReplySeg, OpDeliver}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("critical path %v, want %v", ops, want)
	}
	// Exact-float chain contiguity: each path span starts where its
	// parent's extent reached (the root's own start for its first
	// child) — the virtual-time arithmetic the attribution relies on.
	for i := 1; i < len(path); i++ {
		prev := path[i-1].End
		if i == 1 {
			prev = path[0].Start
		}
		if path[i].Start != prev {
			t.Errorf("path[%d] %s starts at %v, want %v", i, path[i].Op, path[i].Start, prev)
		}
	}

	attr, ok := tree.Attribute()
	if !ok {
		t.Fatal("attribution failed on a complete tree")
	}
	if attr.Total != 90 {
		t.Errorf("total %v, want 90", attr.Total)
	}
	// Wait: (40-10) + (70-50) + (80-75) + (90-82); transfer: 1+1+1+2.5.
	if attr.Wait != 63 || attr.Transfer != 5.5 || attr.Hops != 4 {
		t.Errorf("wait/transfer/hops = %v/%v/%d, want 63/5.5/4", attr.Wait, attr.Transfer, attr.Hops)
	}
	if attr.Queued != attr.Total-attr.Wait-attr.Transfer {
		t.Errorf("queued %v is not the residual", attr.Queued)
	}
	if attr.Wait+attr.Queued+attr.Transfer != attr.Total {
		t.Errorf("components %v+%v+%v do not reassemble total %v",
			attr.Wait, attr.Queued, attr.Transfer, attr.Total)
	}
}

func TestTracerEmitsSpanLines(t *testing.T) {
	var cb closeBuffer
	rec := obs.NewRecorder(obs.NewStreamSink(&cb))
	tr := NewTracer(rec, 1, 0) // no retention: lines still stream
	happyPath(t, tr)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(lines) != 8 { // 4 hops + miss + pull + deliver + root
		t.Fatalf("emitted %d span lines, want 8: %v", len(lines), lines)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"k":"span",`) {
			t.Errorf("not a span line: %s", l)
		}
	}
	if _, ok := tr.SpanTree(0); !ok {
		t.Error("query must stay known while in flight")
	}
	if spans, _ := tr.SpanTree(0); len(spans) != 0 {
		t.Error("retention off must keep no spans in memory")
	}
}

func TestTracerSecondDeliveryIgnored(t *testing.T) {
	tr := NewTracer(nil, 1, 8)
	happyPath(t, tr)
	// A duplicate reply reaching the requester later must not emit a
	// second deliver/root pair.
	tr.Pull(0, 9, 6, 110, 7, 0.5)
	tr.ReplyHop(0, 6, 2, 120, 130, 2.5, true, false)
	spans, _ := tr.SpanTree(0)
	deliver, issue := 0, 0
	for _, sp := range spans {
		switch sp.Op {
		case OpDeliver:
			deliver++
		case OpIssue:
			issue++
		}
	}
	if deliver != 1 || issue != 1 {
		t.Errorf("deliver/issue spans = %d/%d, want 1/1", deliver, issue)
	}
}

func TestTracerSweepRetention(t *testing.T) {
	tr := NewTracer(nil, 1, 2)
	for i := 0; i < 4; i++ {
		tr.QueryIssued(q(i, 2, 7, 10, 100))
	}
	tr.Sweep(50) // nothing expired yet
	for i := 0; i < 4; i++ {
		if _, ok := tr.SpanTree(workload.QueryID(i)); !ok {
			t.Fatalf("query %d evicted before its deadline", i)
		}
	}
	tr.Sweep(100) // all four expire; FIFO keeps the newest two
	for i, want := range []bool{false, false, true, true} {
		if _, ok := tr.SpanTree(workload.QueryID(i)); ok != want {
			t.Errorf("query %d retained = %v, want %v", i, ok, want)
		}
	}
	// A late event on a swept query must not resurrect it.
	tr.QueryHop(2, 9, 2, 5, 40, 50, 1, OpQuerySeg, true)
	if spans, _ := tr.SpanTree(2); len(spans) != 0 {
		t.Error("closed query accepted a late span")
	}
}

func TestTracerZeroRetentionSweepDrops(t *testing.T) {
	tr := NewTracer(nil, 1, 0)
	tr.QueryIssued(q(0, 2, 7, 10, 100))
	tr.Sweep(100)
	if _, ok := tr.SpanTree(0); ok {
		t.Error("retention 0 must forget expired queries entirely")
	}
}

func TestTraceIDStableAndSeedSensitive(t *testing.T) {
	a, b := TraceID(1, 7), TraceID(1, 7)
	if a != b {
		t.Error("trace ID not stable")
	}
	if TraceID(2, 7) == a || TraceID(1, 8) == a {
		t.Error("trace ID insensitive to seed or query ID")
	}
}

func TestBuildTreesGroupsAndSorts(t *testing.T) {
	spans := []obs.SpanEvent{
		{Trace: 9, ID: 2, Parent: 0, Op: OpQuerySeg, Query: 5},
		{Trace: 3, ID: 0, Parent: -1, Op: OpIssue, Query: 1},
		{Trace: 9, ID: 0, Parent: -1, Op: OpIssue, Query: 5},
		{Trace: 9, ID: 1, Parent: 0, Op: OpRetry, Query: 5},
	}
	trees := BuildTrees(spans)
	if len(trees) != 2 || trees[0].Query != 1 || trees[1].Query != 5 {
		t.Fatalf("trees = %+v", trees)
	}
	got := trees[1]
	for i, sp := range got.Spans {
		if sp.ID != int64(i) {
			t.Errorf("span %d has ID %d, want sorted", i, sp.ID)
		}
	}
	if got.Span(2) == nil || got.Span(7) != nil {
		t.Error("Span lookup wrong")
	}
	if kids := got.Children(0); len(kids) != 2 {
		t.Errorf("root has %d children, want 2", len(kids))
	}
}

func TestCriticalPathBrokenChain(t *testing.T) {
	// A deliver span whose parent is missing (truncated trace) must
	// yield no path rather than a partial or looping one.
	tree := &Tree{Query: 0, Spans: []obs.SpanEvent{
		{ID: 0, Parent: -1, Op: OpIssue},
		{ID: 5, Parent: 4, Op: OpDeliver},
	}}
	if tree.CriticalPath() != nil {
		t.Error("broken chain produced a path")
	}
	if _, ok := tree.Attribute(); ok {
		t.Error("broken chain produced an attribution")
	}
}

// TestSpanZeroAlloc pins the recorder-off provenance path at zero
// allocations: simulations without tracing construct no Tracer, and
// every instrumentation site must stay a nil-receiver branch.
func TestSpanZeroAlloc(t *testing.T) {
	var tr *Tracer
	var rec *obs.Recorder
	query := q(0, 2, 7, 10, 500)
	allocs := testing.AllocsPerRun(200, func() {
		tr.QueryIssued(query)
		tr.QueryRetry(query, 20, 1)
		tr.QueryHop(0, 9, 2, 5, 40, 50, 1.0, OpQuerySeg, true)
		tr.NCLMiss(0, 9, 9, 75, 3)
		tr.Pull(0, 9, 4, 82, 7, 0.25)
		tr.ReplyHop(0, 4, 2, 90, 100, 2.5, true, true)
		tr.Sweep(1000)
		if _, ok := tr.SpanTree(0); ok {
			t.Fatal("nil tracer knows a query")
		}
		rec.Span(obs.SpanEvent{})
	})
	if allocs != 0 {
		t.Errorf("recorder-off span path allocates %v/op, want 0", allocs)
	}
}
