package provenance

import (
	"sort"

	"dtncache/internal/obs"
)

// Tree is one query's reconstructed span tree.
type Tree struct {
	Query   int64
	TraceID uint64
	// Spans sorted by span ID (the root, when present, first).
	Spans []obs.SpanEvent
}

// Attribution decomposes a satisfied query's end-to-end delay over its
// critical path. Total is the root extent — bitwise equal to the delay
// the metrics layer recorded. Wait sums the waiting-for-contact parts
// of the path's custody segments ([start, enq]) and Transfer their
// link service times; Queued is defined as the residual
// Total - Wait - Transfer, so the three components reassemble to Total
// exactly by construction. Queued covers time spent enqueued behind
// other traffic on a live contact (the push budget's share of the
// link) plus the decision points between segments.
type Attribution struct {
	Total    float64
	Wait     float64
	Transfer float64
	Queued   float64
	Hops     int
}

// BuildTrees groups spans by query and returns the trees sorted by
// query ID, spans inside each sorted by span ID. Emission order within
// a query is not ID order (the root is emitted last), so this is the
// canonical view consumers should work from.
func BuildTrees(spans []obs.SpanEvent) []*Tree {
	byQuery := make(map[int64]*Tree)
	var order []int64
	for _, sp := range spans {
		tr, ok := byQuery[sp.Query]
		if !ok {
			tr = &Tree{Query: sp.Query, TraceID: sp.Trace}
			byQuery[sp.Query] = tr
			order = append(order, sp.Query)
		}
		tr.Spans = append(tr.Spans, sp)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	trees := make([]*Tree, 0, len(order))
	for _, q := range order {
		tr := byQuery[q]
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].ID < tr.Spans[j].ID })
		trees = append(trees, tr)
	}
	return trees
}

// Span returns the span with the given ID, nil when absent.
func (t *Tree) Span(id int64) *obs.SpanEvent {
	i := sort.Search(len(t.Spans), func(i int) bool { return t.Spans[i].ID >= id })
	if i < len(t.Spans) && t.Spans[i].ID == id {
		return &t.Spans[i]
	}
	return nil
}

// Root returns the issue span (present only for satisfied queries).
func (t *Tree) Root() *obs.SpanEvent {
	if sp := t.Span(rootSpanID); sp != nil && sp.Op == OpIssue {
		return sp
	}
	return nil
}

// Deliver returns the terminal delivery span, nil when the query was
// never satisfied.
func (t *Tree) Deliver() *obs.SpanEvent {
	for i := range t.Spans {
		if t.Spans[i].Op == OpDeliver {
			return &t.Spans[i]
		}
	}
	return nil
}

// Children returns the spans whose parent is id, in span-ID order.
func (t *Tree) Children(id int64) []*obs.SpanEvent {
	var out []*obs.SpanEvent
	for i := range t.Spans {
		if t.Spans[i].Parent == id && t.Spans[i].ID != rootSpanID {
			out = append(out, &t.Spans[i])
		}
	}
	return out
}

// CriticalPath walks cause edges from the delivery span back to the
// root and returns the chain root-first. Nil when the query was not
// satisfied or the chain is broken (e.g. a trace truncated mid-query).
func (t *Tree) CriticalPath() []*obs.SpanEvent {
	del := t.Deliver()
	if del == nil || t.Root() == nil {
		return nil
	}
	var rev []*obs.SpanEvent
	for sp := del; ; {
		rev = append(rev, sp)
		if sp.ID == rootSpanID {
			break
		}
		next := t.Span(sp.Parent)
		if next == nil || len(rev) > len(t.Spans) {
			return nil // broken or cyclic chain
		}
		sp = next
	}
	path := make([]*obs.SpanEvent, len(rev))
	for i, sp := range rev {
		path[len(rev)-1-i] = sp
	}
	return path
}

// Attribute computes the critical-path delay attribution of a
// satisfied query; ok is false when there is no complete path.
func (t *Tree) Attribute() (Attribution, bool) {
	path := t.CriticalPath()
	if path == nil {
		return Attribution{}, false
	}
	root := path[0]
	a := Attribution{Total: root.End - root.Start}
	for _, sp := range path {
		switch sp.Op {
		case OpQuerySeg, OpQuerySpray, OpQueryBcast, OpReplySeg:
			a.Wait += sp.Enq - sp.Start
			a.Transfer += sp.V
			a.Hops++
		}
	}
	a.Queued = a.Total - a.Wait - a.Transfer
	return a, true
}
