package provenance_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"testing"

	"dtncache/internal/engine"
	"dtncache/internal/obs"
	"dtncache/internal/provenance"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

func workloadQID(id int64) workload.QueryID { return workload.QueryID(id) }

// traceLine is the decoded NDJSON shape of span and query lines.
type traceLine struct {
	K  string   `json:"k"`
	T  float64  `json:"t"`
	E  float64  `json:"e"`
	Nq *float64 `json:"nq"`
	Tr string   `json:"tr"`
	Sp int64    `json:"sp"`
	Pa *int64   `json:"pa"`
	Op string   `json:"op"`
	A  int32    `json:"a"`
	B  *int32   `json:"b"`
	ID int64    `json:"id"`
	X  int64    `json:"x"`
	V  float64  `json:"v"`
}

func decodeSpan(l traceLine) obs.SpanEvent {
	tr, _ := strconv.ParseUint(l.Tr, 16, 64)
	ev := obs.SpanEvent{Trace: tr, ID: l.Sp, Parent: -1, Op: l.Op,
		Start: l.T, End: l.E, Enq: l.T, A: l.A, B: -1,
		Query: l.ID, Aux: l.X, V: l.V}
	if l.Pa != nil {
		ev.Parent = *l.Pa
	}
	if l.Nq != nil {
		ev.Enq = *l.Nq
	}
	if l.B != nil {
		ev.B = *l.B
	}
	return ev
}

// TestAttributionExactOnInfocom05 runs the paper's Infocom05 preset
// under the intentional scheme with span tracing on and pins the
// tentpole's core promise: every satisfied query reconstructs to a
// complete span tree whose critical-path attribution reproduces the
// recorded end-to-end delay with exact virtual-time arithmetic — the
// root extent equals the query-answered delay bitwise, adjacent path
// spans touch exactly, and wait/queued/transfer reassemble to the
// total exactly (queued is the closing residual by construction).
func TestAttributionExactOnInfocom05(t *testing.T) {
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	rec := obs.NewRecorder(obs.NewStreamSink(&cb))
	// T_L = 12h: at Infocom05's 3-day horizon the default 1-week data
	// lifetime issues no queries at all (same choice as check.sh).
	eng, err := engine.New(engine.Config{Trace: tr, Obs: rec,
		AvgLifetime: 12 * 3600, SpanRetain: 16})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.QueriesSatisfied == 0 {
		t.Fatal("preset run satisfied no queries; the pin needs at least one")
	}

	answered := map[int64]float64{} // query ID -> recorded delay
	var spans []obs.SpanEvent
	sc := bufio.NewScanner(bytes.NewReader(cb.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		switch l.K {
		case "span":
			spans = append(spans, decodeSpan(l))
		case "query-answered":
			answered[l.ID] = l.V
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(answered) != rep.QueriesSatisfied {
		t.Fatalf("trace has %d query-answered events, report says %d",
			len(answered), rep.QueriesSatisfied)
	}
	if len(spans) == 0 {
		t.Fatal("no span events in the trace")
	}

	trees := map[int64]*provenance.Tree{}
	for _, tree := range provenance.BuildTrees(spans) {
		trees[tree.Query] = tree
	}
	seed := eng.Config().Seed
	for qid, delay := range answered {
		tree := trees[qid]
		if tree == nil {
			t.Errorf("satisfied query %d has no span tree", qid)
			continue
		}
		if want := provenance.TraceID(seed, workloadQID(qid)); tree.TraceID != want {
			t.Errorf("query %d trace ID %x, want %x", qid, tree.TraceID, want)
		}
		path := tree.CriticalPath()
		if path == nil {
			t.Errorf("satisfied query %d has no critical path", qid)
			continue
		}
		// Exact chain contiguity: each span starts exactly where its
		// parent's extent reached (the root's start for its first child).
		for i := 1; i < len(path); i++ {
			prev := path[i-1].End
			if i == 1 {
				prev = path[0].Start
			}
			if path[i].Start != prev {
				t.Errorf("query %d path[%d] %s starts at %v, parent chain reached %v",
					qid, i, path[i].Op, path[i].Start, prev)
			}
		}
		attr, ok := tree.Attribute()
		if !ok {
			t.Errorf("query %d attribution failed", qid)
			continue
		}
		if attr.Total != delay { // bitwise: both are at - issued
			t.Errorf("query %d attributed total %v != recorded delay %v", qid, attr.Total, delay)
		}
		// Queued is defined as the residual, so the decomposition
		// reassembles to the recorded delay exactly by construction.
		if attr.Queued != attr.Total-attr.Wait-attr.Transfer {
			t.Errorf("query %d queued %v is not the residual of %v-%v-%v",
				qid, attr.Queued, attr.Total, attr.Wait, attr.Transfer)
		}
		if attr.Wait < 0 || attr.Transfer < 0 || attr.Hops == 0 {
			t.Errorf("query %d implausible attribution %+v", qid, attr)
		}
	}

	// The live side: retained trees must answer SpanTree for recent
	// queries with the same spans the trace recorded.
	checked := 0
	for qid := range answered {
		got, ok := eng.SpanTree(workloadQID(qid))
		if !ok || len(got) == 0 {
			continue // evicted by the retention FIFO
		}
		want := trees[qid]
		if len(got) != len(want.Spans) {
			t.Errorf("query %d retained %d spans, trace has %d", qid, len(got), len(want.Spans))
		}
		checked++
	}
	if checked == 0 {
		t.Error("no satisfied query remained in the retention window")
	}
}
