package trace

// Preset identifies one of the four realistic traces summarized in the
// paper's Table I. The synthetic generator is calibrated to the published
// aggregate statistics of each.
type Preset string

// The four traces used by the paper.
const (
	Infocom05  Preset = "Infocom05"
	Infocom06  Preset = "Infocom06"
	MITReality Preset = "MIT Reality"
	UCSD       Preset = "UCSD"
)

// City is the synthetic city-scale preset (power-law communities,
// diurnal intensity; see CityConfig). It is deliberately NOT part of
// Presets(): Table I sweeps stay the four published traces.
const City Preset = "City"

// Presets lists all presets in Table I order.
func Presets() []Preset {
	return []Preset{Infocom05, Infocom06, MITReality, UCSD}
}

// CityPresetConfig returns the default city configuration used by
// GeneratePreset(City, seed): a walkable small-city slice that the
// Table I pipeline can still materialize (the full city-scale path
// streams a CityConfig of its own instead).
func CityPresetConfig(seed int64) CityConfig {
	cfg := CityDefaults(500, 200000)
	cfg.Seed = seed
	return cfg
}

const day = 86400.0

// PresetConfig returns the generator configuration matching the Table I
// row for p. The returned config already carries the seed; callers may
// override it for repeated runs.
//
// Node counts, durations, granularities and total contact counts are
// exactly the Table I values. ActivityAlpha/ActivityMax are chosen so the
// NCL-metric distribution skew matches Fig. 4 (top nodes up to ~10x the
// typical node). Conference traces (Infocom) are homogeneous crowds with
// mild structure; campus traces (Reality, UCSD) get community structure
// to reflect their much lower pair coverage.
func PresetConfig(p Preset, seed int64) (GenConfig, bool) {
	switch p {
	case Infocom05:
		return GenConfig{
			Name: string(Infocom05), Nodes: 41, DurationSec: 3 * day,
			GranularitySec: 120, TargetContacts: 22459,
			ActivityAlpha: 1.2, ActivityMax: 30, EdgeProb: 0.4,
			PairSkewAlpha: 0.7, PairSkewMax: 500, Seed: seed,
		}, true
	case Infocom06:
		return GenConfig{
			Name: string(Infocom06), Nodes: 78, DurationSec: 4 * day,
			GranularitySec: 120, TargetContacts: 182951,
			ActivityAlpha: 1.2, ActivityMax: 30, EdgeProb: 0.4,
			PairSkewAlpha: 0.7, PairSkewMax: 500, Seed: seed,
		}, true
	case MITReality:
		return GenConfig{
			Name: string(MITReality), Nodes: 97, DurationSec: 246 * day,
			GranularitySec: 300, TargetContacts: 114046,
			ActivityAlpha: 1.3, ActivityMax: 25, EdgeProb: 0.1,
			PairSkewAlpha: 0.6, PairSkewMax: 1000,
			Communities: 6, IntraBoost: 8, Seed: seed,
		}, true
	case UCSD:
		return GenConfig{
			Name: string(UCSD), Nodes: 275, DurationSec: 77 * day,
			GranularitySec: 20, TargetContacts: 123225,
			ActivityAlpha: 1.3, ActivityMax: 25, EdgeProb: 0.05,
			PairSkewAlpha: 0.6, PairSkewMax: 1000,
			Communities: 12, IntraBoost: 8, Seed: seed,
		}, true
	default:
		return GenConfig{}, false
	}
}

// GeneratePreset generates a synthetic trace calibrated to the given
// Table I row.
func GeneratePreset(p Preset, seed int64) (*Trace, error) {
	if p == City {
		return GenerateCity(CityPresetConfig(seed))
	}
	cfg, ok := PresetConfig(p, seed)
	if !ok {
		return nil, &UnknownPresetError{Preset: p}
	}
	tr, _, err := Generate(cfg)
	return tr, err
}

// UnknownPresetError reports a preset name that is not in Table I.
type UnknownPresetError struct {
	Preset Preset
}

func (e *UnknownPresetError) Error() string {
	return "trace: unknown preset " + string(e.Preset)
}
