package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadONE parses connection events in the format of the ONE simulator's
// StandardEventsReader — the de-facto exchange format for DTN contact
// traces:
//
//	<time> CONN <nodeA> <nodeB> up
//	<time> CONN <nodeA> <nodeB> down
//
// Non-CONN lines are ignored. An "up" without a matching "down" is
// closed at the last event time seen. Node count and duration are
// inferred; Granularity is left 0 (unknown).
func ReadONE(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	t := &Trace{Name: "one-trace"}
	open := make(map[[2]NodeID]float64)
	maxNode := -1
	var lastTime float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.EqualFold(fields[1], "CONN") {
			continue
		}
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: ONE line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: ONE line %d: time: %w", lineNo, err)
		}
		a, err := parseONENode(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: ONE line %d: %w", lineNo, err)
		}
		b, err := parseONENode(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: ONE line %d: %w", lineNo, err)
		}
		if a == b {
			return nil, fmt.Errorf("trace: ONE line %d: self connection", lineNo)
		}
		if at > lastTime {
			lastTime = at
		}
		if int(a) > maxNode {
			maxNode = int(a)
		}
		if int(b) > maxNode {
			maxNode = int(b)
		}
		key := pairKeyONE(a, b)
		switch strings.ToLower(fields[4]) {
		case "up":
			if _, ok := open[key]; !ok {
				open[key] = at
			}
		case "down":
			start, ok := open[key]
			if !ok {
				continue // down without up: ignore (truncated trace head)
			}
			delete(open, key)
			if at > start {
				t.Contacts = append(t.Contacts, Contact{A: key[0], B: key[1], Start: start, End: at})
			}
		default:
			return nil, fmt.Errorf("trace: ONE line %d: unknown state %q", lineNo, fields[4])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read ONE: %w", err)
	}
	// Close dangling connections at the last observed event time.
	for key, start := range open {
		if lastTime > start {
			t.Contacts = append(t.Contacts, Contact{A: key[0], B: key[1], Start: start, End: lastTime})
		}
	}
	t.Nodes = maxNode + 1
	t.Duration = lastTime
	t.SortContacts()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseONENode accepts plain integers and the common "pNN"/"nNN" styles
// of ONE scenario node names.
func parseONENode(s string) (NodeID, error) {
	trimmed := strings.TrimLeftFunc(s, func(r rune) bool {
		return r < '0' || r > '9'
	})
	n, err := strconv.Atoi(trimmed)
	if err != nil {
		return 0, fmt.Errorf("node %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("node %q: negative id", s)
	}
	return NodeID(n), nil
}

func pairKeyONE(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}
