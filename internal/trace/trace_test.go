package trace

import (
	"errors"
	"math"
	"testing"
)

func validTrace() *Trace {
	return &Trace{
		Name:        "test",
		Nodes:       3,
		Duration:    1000,
		Granularity: 10,
		Contacts: []Contact{
			{A: 0, B: 1, Start: 10, End: 20},
			{A: 1, B: 2, Start: 15, End: 40},
			{A: 0, B: 2, Start: 100, End: 130},
		},
	}
}

func TestContactHelpers(t *testing.T) {
	c := Contact{A: 2, B: 5, Start: 10, End: 25}
	if c.Duration() != 15 {
		t.Errorf("Duration = %v", c.Duration())
	}
	if !c.Involves(2) || !c.Involves(5) || c.Involves(3) {
		t.Error("Involves wrong")
	}
	if c.Peer(2) != 5 || c.Peer(5) != 2 || c.Peer(7) != -1 {
		t.Error("Peer wrong")
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   error
	}{
		{"no nodes", func(tr *Trace) { tr.Nodes = 0 }, ErrNoNodes},                                          //lint:allow immutable corrupt the node count to exercise Validate
		{"self contact", func(tr *Trace) { tr.Contacts[0].B = 0 }, ErrSelfContact},                          //lint:allow immutable forge a self contact to exercise Validate
		{"unknown node", func(tr *Trace) { tr.Contacts[0].B = 9 }, ErrUnknownNode},                          //lint:allow immutable point at a missing node to exercise Validate
		{"negative node", func(tr *Trace) { tr.Contacts[0].A = -1 }, ErrUnknownNode},                        //lint:allow immutable negative endpoint to exercise Validate
		{"negative time", func(tr *Trace) { tr.Contacts[0].Start = -5 }, ErrNegativeTime},                   //lint:allow immutable rewind before zero to exercise Validate
		{"bad interval", func(tr *Trace) { tr.Contacts[0].End = tr.Contacts[0].Start }, ErrBadInterval},     //lint:allow immutable collapse the interval to exercise Validate
		{"out of bounds", func(tr *Trace) { tr.Contacts[2].End = 5000 }, ErrOutOfBounds},                    //lint:allow immutable overrun the duration to exercise Validate
		{"unsorted", func(tr *Trace) { tr.Contacts[0].Start = 500; tr.Contacts[0].End = 600 }, ErrUnsorted}, //lint:allow immutable break the sort order to exercise Validate
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := validTrace()
			c.mutate(tr)
			if err := tr.Validate(); !errors.Is(err, c.want) {
				t.Errorf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestSortContactsNormalizes(t *testing.T) {
	tr := &Trace{
		Nodes:    4,
		Duration: 100,
		Contacts: []Contact{
			{A: 3, B: 1, Start: 50, End: 60},
			{A: 2, B: 0, Start: 10, End: 20},
		},
	}
	tr.SortContacts()
	if tr.Contacts[0].Start != 10 {
		t.Error("not sorted by start")
	}
	for _, c := range tr.Contacts {
		if c.A > c.B {
			t.Errorf("contact not normalized: %+v", c)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSlice(t *testing.T) {
	tr := validTrace()
	half := tr.Slice(0, 50)
	if len(half.Contacts) != 2 {
		t.Errorf("first-half contacts = %d, want 2", len(half.Contacts))
	}
	rest := tr.Slice(50, tr.Duration)
	if len(rest.Contacts) != 1 {
		t.Errorf("second-half contacts = %d, want 1", len(rest.Contacts))
	}
	if half.Duration != tr.Duration || half.Nodes != tr.Nodes {
		t.Error("slice must preserve metadata")
	}
}

func TestComputeStats(t *testing.T) {
	tr := validTrace()
	s := tr.ComputeStats()
	if s.Contacts != 3 || s.Nodes != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.DistinctPairs != 3 || s.PairCoverage != 1 {
		t.Errorf("pairs = %d coverage = %v", s.DistinctPairs, s.PairCoverage)
	}
	wantMeanDur := (10.0 + 25 + 30) / 3
	if math.Abs(s.MeanContactSec-wantMeanDur) > 1e-9 {
		t.Errorf("mean contact dur = %v, want %v", s.MeanContactSec, wantMeanDur)
	}
	// Each node appears in exactly 2 contacts.
	for n, c := range s.ContactsPerNode {
		if c != 2 {
			t.Errorf("node %d contacts = %d, want 2", n, c)
		}
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	tr := &Trace{Nodes: 2, Duration: 100}
	s := tr.ComputeStats()
	if s.Contacts != 0 || s.MeanContactSec != 0 || s.PairwiseFreqDay != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
