package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Nodes != orig.Nodes ||
		got.Duration != orig.Duration || got.Granularity != orig.Granularity {
		t.Errorf("metadata mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Contacts) != len(orig.Contacts) {
		t.Fatalf("contact count %d vs %d", len(got.Contacts), len(orig.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != orig.Contacts[i] {
			t.Errorf("contact %d: %+v vs %+v", i, got.Contacts[i], orig.Contacts[i])
		}
	}
}

func TestReadWithoutHeaderInfersMetadata(t *testing.T) {
	in := "0 1 10 20\n2 1 15 40\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 3 {
		t.Errorf("inferred nodes = %d, want 3", tr.Nodes)
	}
	if tr.Duration != 40 {
		t.Errorf("inferred duration = %v, want 40", tr.Duration)
	}
	// 2 1 must have been normalized to 1 2.
	if tr.Contacts[1].A != 1 || tr.Contacts[1].B != 2 {
		t.Errorf("contact not normalized: %+v", tr.Contacts[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n   \n0 1 10 20\n# another\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 {
		t.Errorf("contacts = %d, want 1", len(tr.Contacts))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"too few fields", "0 1 10\n"},
		{"too many fields", "0 1 10 20 30\n"},
		{"bad node", "x 1 10 20\n"},
		{"bad node b", "0 x 10 20\n"},
		{"bad start", "0 1 x 20\n"},
		{"bad end", "0 1 10 x\n"},
		{"self contact", "0 0 10 20\n"},
		{"bad interval", "0 1 20 10\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestRoundTripGeneratedTrace(t *testing.T) {
	cfg := GenConfig{
		Nodes: 12, DurationSec: day, GranularitySec: 60,
		TargetContacts: 2000, ActivityAlpha: 1.5, ActivityMax: 8, Seed: 2,
	}
	orig, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contacts) != len(orig.Contacts) {
		t.Fatalf("contact count %d vs %d", len(got.Contacts), len(orig.Contacts))
	}
	s1, s2 := orig.ComputeStats(), got.ComputeStats()
	if s1.DistinctPairs != s2.DistinctPairs || s1.Contacts != s2.Contacts {
		t.Error("stats differ after round trip")
	}
}
