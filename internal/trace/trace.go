// Package trace models DTN contact traces: sequences of opportunistic
// pairwise contacts between mobile nodes. It provides the in-memory trace
// representation, a plain-text reader/writer compatible with
// CRAWDAD-style contact lists, synthetic generators whose aggregate
// statistics match the four traces of the paper's Table I, and the
// statistics used to reproduce that table.
//
// The paper's evaluation is trace-driven; everything downstream (contact
// graph, simulator, caching schemes) consumes only the Contact events
// defined here, so a real trace file and a synthetic trace are fully
// interchangeable.
//
//dtn:determinism
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a mobile node within a trace. IDs are dense in
// [0, Trace.Nodes).
type NodeID int

// Contact is one opportunistic contact: nodes A and B are within range
// (or associated to the same access point) from Start to End, measured in
// seconds since the beginning of the trace. Contacts are symmetric; by
// convention A < B.
type Contact struct {
	A, B       NodeID
	Start, End float64
}

// Duration returns the contact duration in seconds.
func (c Contact) Duration() float64 { return c.End - c.Start }

// Involves reports whether node n takes part in the contact.
func (c Contact) Involves(n NodeID) bool { return c.A == n || c.B == n }

// Peer returns the other endpoint of the contact, or -1 if n is not an
// endpoint.
func (c Contact) Peer(n NodeID) NodeID {
	switch n {
	case c.A:
		return c.B
	case c.B:
		return c.A
	default:
		return -1
	}
}

// Trace is a complete contact trace. Once a reader or generator has
// returned it, the contact set is frozen: the replay engine, the
// knowledge pipeline, and every scheme share one Trace value across
// sweep cells, so post-construction mutation would corrupt a whole
// sweep.
//
//dtn:immutable built by the readers/generators, then shared read-only
type Trace struct {
	// Name labels the trace in reports ("Infocom06", "MIT Reality", ...).
	Name string
	// Nodes is the number of devices; node IDs are 0..Nodes-1.
	Nodes int
	// Duration is the trace length in seconds.
	Duration float64
	// Granularity is the device scanning period in seconds (Table I);
	// purely descriptive.
	Granularity float64
	// Contacts is the contact list sorted by Start time.
	Contacts []Contact
}

// Errors returned by Validate.
var (
	ErrNoNodes      = errors.New("trace: node count must be positive")
	ErrBadContact   = errors.New("trace: malformed contact")
	ErrUnsorted     = errors.New("trace: contacts not sorted by start time")
	ErrOutOfBounds  = errors.New("trace: contact outside trace duration")
	ErrUnknownNode  = errors.New("trace: contact references unknown node")
	ErrSelfContact  = errors.New("trace: node in contact with itself")
	ErrBadInterval  = errors.New("trace: contact end not after start")
	ErrNegativeTime = errors.New("trace: negative contact start time")
	ErrNonFinite    = errors.New("trace: non-finite time")
)

// Validate checks structural invariants: positive node count, sorted
// contacts, endpoints in range, A != B, Start < End, contacts within
// [0, Duration].
func (t *Trace) Validate() error {
	if t.Nodes <= 0 {
		return ErrNoNodes
	}
	if math.IsNaN(t.Duration) || math.IsInf(t.Duration, 0) {
		return ErrNonFinite
	}
	prev := -1.0
	for i, c := range t.Contacts {
		// Explicit, because NaN slips through every ordering comparison
		// below.
		if math.IsNaN(c.Start) || math.IsInf(c.Start, 0) || math.IsNaN(c.End) || math.IsInf(c.End, 0) {
			return fmt.Errorf("contact %d: %w", i, ErrNonFinite)
		}
		if c.A == c.B {
			return fmt.Errorf("contact %d: %w", i, ErrSelfContact)
		}
		if c.A < 0 || c.B < 0 || int(c.A) >= t.Nodes || int(c.B) >= t.Nodes {
			return fmt.Errorf("contact %d: %w", i, ErrUnknownNode)
		}
		if c.Start < 0 {
			return fmt.Errorf("contact %d: %w", i, ErrNegativeTime)
		}
		if c.End <= c.Start {
			return fmt.Errorf("contact %d: %w", i, ErrBadInterval)
		}
		if c.End > t.Duration {
			return fmt.Errorf("contact %d: %w", i, ErrOutOfBounds)
		}
		if c.Start < prev {
			return fmt.Errorf("contact %d: %w", i, ErrUnsorted)
		}
		prev = c.Start
	}
	return nil
}

// SortContacts sorts the contact list by start time (stable on ties by
// end time, then endpoints) and normalizes each contact to A < B.
func (t *Trace) SortContacts() {
	for i := range t.Contacts {
		if t.Contacts[i].A > t.Contacts[i].B {
			//lint:allow immutable SortContacts is the normalization tail of every constructor
			t.Contacts[i].A, t.Contacts[i].B = t.Contacts[i].B, t.Contacts[i].A
		}
	}
	sort.Slice(t.Contacts, func(i, j int) bool {
		a, b := t.Contacts[i], t.Contacts[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// Slice returns a copy of the trace restricted to contacts that start in
// [from, to), with Duration unchanged. It is used to split a trace into
// the warm-up half and the evaluation half as in Sec. VI-A.
func (t *Trace) Slice(from, to float64) *Trace {
	out := &Trace{
		Name:        t.Name,
		Nodes:       t.Nodes,
		Duration:    t.Duration,
		Granularity: t.Granularity,
	}
	for _, c := range t.Contacts {
		if c.Start >= from && c.Start < to {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}

// Stats are the aggregate statistics reported in Table I plus a few used
// for calibration checks.
type Stats struct {
	Nodes            int
	DurationDays     float64
	Contacts         int
	GranularitySec   float64
	PairwiseFreqDay  float64 // contacts / (pairs * days)
	MeanContactSec   float64
	DistinctPairs    int     // pairs that ever met
	PairCoverage     float64 // DistinctPairs / all pairs
	ContactsPerNode  []int   // indexed by NodeID
	MaxContactsNode  NodeID
	MeanContactsNode float64
}

// ComputeStats derives the Table I statistics from the trace.
func (t *Trace) ComputeStats() Stats {
	days := t.Duration / 86400
	s := Stats{
		Nodes:           t.Nodes,
		DurationDays:    days,
		Contacts:        len(t.Contacts),
		GranularitySec:  t.Granularity,
		ContactsPerNode: make([]int, t.Nodes),
	}
	pairs := make(map[[2]NodeID]struct{})
	var durSum float64
	for _, c := range t.Contacts {
		s.ContactsPerNode[c.A]++
		s.ContactsPerNode[c.B]++
		durSum += c.Duration()
		key := [2]NodeID{c.A, c.B}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		pairs[key] = struct{}{}
	}
	s.DistinctPairs = len(pairs)
	allPairs := t.Nodes * (t.Nodes - 1) / 2
	if allPairs > 0 {
		s.PairCoverage = float64(s.DistinctPairs) / float64(allPairs)
		if days > 0 {
			s.PairwiseFreqDay = float64(len(t.Contacts)) / (float64(allPairs) * days)
		}
	}
	if len(t.Contacts) > 0 {
		s.MeanContactSec = durSum / float64(len(t.Contacts))
	}
	var sum int
	for n, c := range s.ContactsPerNode {
		sum += c
		if c > s.ContactsPerNode[s.MaxContactsNode] {
			s.MaxContactsNode = NodeID(n)
		}
	}
	if t.Nodes > 0 {
		s.MeanContactsNode = float64(sum) / float64(t.Nodes)
	}
	return s
}
