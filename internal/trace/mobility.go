package trace

import (
	"errors"
	"math"

	"dtncache/internal/mathx"
)

// RWPConfig parameterizes the random-waypoint mobility generator: nodes
// move in a square arena between uniformly chosen waypoints and a
// contact is recorded whenever two nodes stay within communication
// range across a scan interval. Unlike the Poisson generator (Generate),
// contacts here emerge from geometry, so inter-contact times are bursty
// and spatially correlated — a structurally different substrate for
// stress-testing the protocols beyond the paper's Poisson model.
type RWPConfig struct {
	// Name labels the trace.
	Name string
	// Nodes is the number of devices (>= 2).
	Nodes int
	// DurationSec is the trace length.
	DurationSec float64
	// ArenaMeters is the side of the square arena.
	ArenaMeters float64
	// RangeMeters is the communication range.
	RangeMeters float64
	// SpeedMin/SpeedMax bound the uniform waypoint speed (m/s).
	SpeedMin, SpeedMax float64
	// PauseMaxSec is the maximum uniform pause at each waypoint.
	PauseMaxSec float64
	// ScanSec is the position-sampling period (also the contact
	// granularity; default 60 s).
	ScanSec float64
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration.
func (c RWPConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return errors.New("trace: RWP needs >= 2 nodes")
	case c.DurationSec <= 0:
		return errors.New("trace: RWP duration must be positive")
	case c.ArenaMeters <= 0:
		return errors.New("trace: RWP arena must be positive")
	case c.RangeMeters <= 0 || c.RangeMeters >= c.ArenaMeters:
		return errors.New("trace: RWP range must be in (0, arena)")
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return errors.New("trace: RWP speeds must satisfy 0 < min <= max")
	case c.PauseMaxSec < 0:
		return errors.New("trace: RWP pause must be >= 0")
	}
	return nil
}

// rwpNode is one node's mobility state.
type rwpNode struct {
	x, y       float64 // current position
	tx, ty     float64 // waypoint target
	speed      float64
	pauseUntil float64
}

// GenerateRWP simulates random-waypoint mobility and extracts the
// contact trace.
func GenerateRWP(cfg RWPConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scan := cfg.ScanSec
	if scan <= 0 {
		scan = 60
	}
	rng := mathx.NewRand(cfg.Seed).Derive("rwp")
	nodes := make([]rwpNode, cfg.Nodes)
	for i := range nodes {
		nodes[i].x = rng.Uniform(0, cfg.ArenaMeters)
		nodes[i].y = rng.Uniform(0, cfg.ArenaMeters)
		retarget(&nodes[i], cfg, rng)
	}

	tr := &Trace{
		Name: cfg.Name, Nodes: cfg.Nodes,
		Duration: cfg.DurationSec, Granularity: scan,
	}
	// open[i*n+j] holds the start time of an ongoing contact, or -1.
	n := cfg.Nodes
	open := make([]float64, n*n)
	for i := range open {
		open[i] = -1
	}
	rangeSq := cfg.RangeMeters * cfg.RangeMeters

	for t := 0.0; t < cfg.DurationSec; t += scan {
		for i := range nodes {
			step(&nodes[i], cfg, rng, t, scan)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := nodes[i].x - nodes[j].x
				dy := nodes[i].y - nodes[j].y
				within := dx*dx+dy*dy <= rangeSq
				k := i*n + j
				switch {
				case within && open[k] < 0:
					open[k] = t
				case !within && open[k] >= 0:
					if t > open[k] {
						tr.Contacts = append(tr.Contacts, Contact{
							A: NodeID(i), B: NodeID(j), Start: open[k], End: t,
						})
					}
					open[k] = -1
				}
			}
		}
	}
	// Close contacts still open at the end.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s := open[i*n+j]; s >= 0 && cfg.DurationSec > s {
				tr.Contacts = append(tr.Contacts, Contact{
					A: NodeID(i), B: NodeID(j), Start: s, End: cfg.DurationSec,
				})
			}
		}
	}
	tr.SortContacts()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// retarget picks a new waypoint, speed and pause for the node.
func retarget(nd *rwpNode, cfg RWPConfig, rng *mathx.Rand) {
	nd.tx = rng.Uniform(0, cfg.ArenaMeters)
	nd.ty = rng.Uniform(0, cfg.ArenaMeters)
	nd.speed = rng.Uniform(cfg.SpeedMin, cfg.SpeedMax)
	if cfg.PauseMaxSec > 0 {
		nd.pauseUntil = rng.Uniform(0, cfg.PauseMaxSec)
	} else {
		nd.pauseUntil = 0
	}
}

// step advances the node by dt seconds of mobility.
func step(nd *rwpNode, cfg RWPConfig, rng *mathx.Rand, now, dt float64) {
	remaining := dt
	for remaining > 0 {
		if nd.pauseUntil > 0 {
			if nd.pauseUntil >= remaining {
				nd.pauseUntil -= remaining
				return
			}
			remaining -= nd.pauseUntil
			nd.pauseUntil = 0
		}
		dx := nd.tx - nd.x
		dy := nd.ty - nd.y
		dist := math.Hypot(dx, dy)
		travel := nd.speed * remaining
		if travel >= dist {
			// Reach the waypoint; consume the needed time, then retarget.
			nd.x, nd.y = nd.tx, nd.ty
			if nd.speed > 0 {
				remaining -= dist / nd.speed
			} else {
				remaining = 0
			}
			retarget(nd, cfg, rng)
			continue
		}
		nd.x += dx / dist * travel
		nd.y += dy / dist * travel
		return
	}
}
