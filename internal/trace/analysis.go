package trace

import (
	"math"
	"sort"
)

// InterContactStats summarizes the pairwise inter-contact time process
// of a trace: the quantity the paper models as exponentially distributed
// (Sec. III-B, "we consider the pairwise node inter-contact time as
// exponentially distributed"). It is used to validate that assumption on
// a given trace — synthetic or real — before trusting the
// hypoexponential path weights built on it.
type InterContactStats struct {
	// Samples is the number of inter-contact gaps observed (across all
	// pairs with at least two contacts).
	Samples int
	// MeanSec and MedianSec summarize the gap distribution.
	MeanSec   float64
	MedianSec float64
	// CV is the coefficient of variation (std/mean); an exponential
	// distribution has CV = 1.
	CV float64
	// KSDistance is the Kolmogorov-Smirnov distance between the
	// *normalized* per-pair gaps (each gap divided by its pair's mean
	// gap) and the unit exponential. Small values support the Poisson
	// contact-process model.
	KSDistance float64
	// PairsObserved counts pairs contributing at least one gap.
	PairsObserved int
}

// AnalyzeInterContacts computes InterContactStats. Gaps are measured
// start-to-start per pair, then normalized by the pair's own mean so
// that rate heterogeneity across pairs does not masquerade as
// non-exponentiality.
func (t *Trace) AnalyzeInterContacts() InterContactStats {
	// Collect per-pair contact start times.
	starts := make(map[[2]NodeID][]float64)
	for _, c := range t.Contacts {
		key := [2]NodeID{c.A, c.B}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		starts[key] = append(starts[key], c.Start)
	}
	// Iterate pairs in sorted key order so raw and normalized collect
	// in a run-independent order (normalized feeds the KS statistic).
	keys := make([][2]NodeID, 0, len(starts))
	for k := range starts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var raw []float64        // raw gaps, for mean/median/CV
	var normalized []float64 // per-pair normalized gaps, for KS
	pairs := 0
	for _, k := range keys {
		ss := starts[k]
		if len(ss) < 2 {
			continue
		}
		sort.Float64s(ss)
		var gaps []float64
		for i := 1; i < len(ss); i++ {
			gaps = append(gaps, ss[i]-ss[i-1])
		}
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		if mean <= 0 {
			continue
		}
		pairs++
		for _, g := range gaps {
			raw = append(raw, g)
			normalized = append(normalized, g/mean)
		}
	}
	st := InterContactStats{Samples: len(raw), PairsObserved: pairs}
	if len(raw) == 0 {
		return st
	}
	sort.Float64s(raw)
	var sum, sq float64
	for _, g := range raw {
		sum += g
	}
	st.MeanSec = sum / float64(len(raw))
	for _, g := range raw {
		d := g - st.MeanSec
		sq += d * d
	}
	if len(raw) > 1 && st.MeanSec > 0 {
		st.CV = math.Sqrt(sq/float64(len(raw)-1)) / st.MeanSec
	}
	st.MedianSec = raw[len(raw)/2]
	st.KSDistance = ksExponential(normalized)
	return st
}

// ksExponential returns the KS distance between the sample and the unit
// exponential distribution.
func ksExponential(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		cdf := 1 - math.Exp(-x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(cdf - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(cdf - hi); diff > d {
			d = diff
		}
	}
	return d
}
