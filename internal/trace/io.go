package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The plain-text trace format is one contact per line:
//
//	<nodeA> <nodeB> <start-seconds> <end-seconds>
//
// with '#' comment lines and an optional header comment block written by
// Write carrying name/nodes/duration/granularity metadata:
//
//	# name: Infocom06
//	# nodes: 78
//	# duration: 345600
//	# granularity: 120
//
// This is the shape CRAWDAD contact lists are normally massaged into, so
// a real trace can be fed to the simulator without code changes.

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name: %s\n", t.Name)
	fmt.Fprintf(bw, "# nodes: %d\n", t.Nodes)
	fmt.Fprintf(bw, "# duration: %g\n", t.Duration)
	fmt.Fprintf(bw, "# granularity: %g\n", t.Granularity)
	for _, c := range t.Contacts {
		fmt.Fprintf(bw, "%d %d %g %g\n", c.A, c.B, c.Start, c.End)
	}
	return bw.Flush()
}

// Read parses a trace. Missing metadata is inferred: Nodes from the
// largest node ID, Duration from the latest contact end.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	maxNode := -1
	var maxEnd float64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t = parseHeader(t, line)
			continue
		}
		c, err := parseContact(t.Nodes, lineNo, strings.Fields(line))
		if err != nil {
			return nil, err
		}
		t.Contacts = append(t.Contacts, c)
		if int(c.A) > maxNode {
			maxNode = int(c.A)
		}
		if int(c.B) > maxNode {
			maxNode = int(c.B)
		}
		if c.End > maxEnd {
			maxEnd = c.End
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return finishTrace(t, maxNode, maxEnd)
}

// parseContact parses one contact record's four fields, rejecting
// malformed values — non-finite or negative timestamps, end-before-
// begin intervals, negative/self/out-of-range node IDs — with
// line-numbered errors instead of letting garbage events through to a
// later, contact-indexed Validate failure (or, for NaN, through
// entirely: every Validate comparison on NaN is false). nodes is the
// declared node count, 0 when not (yet) known.
func parseContact(nodes, lineNo int, fields []string) (Contact, error) {
	if len(fields) != 4 {
		return Contact{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
	}
	a, err := strconv.Atoi(fields[0])
	if err != nil {
		return Contact{}, fmt.Errorf("trace: line %d: node A: %w", lineNo, err)
	}
	b, err := strconv.Atoi(fields[1])
	if err != nil {
		return Contact{}, fmt.Errorf("trace: line %d: node B: %w", lineNo, err)
	}
	start, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Contact{}, fmt.Errorf("trace: line %d: start: %w", lineNo, err)
	}
	end, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Contact{}, fmt.Errorf("trace: line %d: end: %w", lineNo, err)
	}
	c := Contact{A: NodeID(a), B: NodeID(b), Start: start, End: end}
	if err := CheckContact(nodes, c); err != nil {
		return Contact{}, fmt.Errorf("trace: line %d: %w", lineNo, err)
	}
	return c, nil
}

// CheckContact validates one contact's semantic invariants — non-finite
// or negative timestamps, end-before-begin intervals, negative/self/
// out-of-range node IDs. nodes is the declared node count, 0 when not
// (yet) known. It is the shared rule set of every contact entry path:
// the text parser, the chunked stream codec and live API ingestion all
// reject the same garbage with the same wording.
func CheckContact(nodes int, c Contact) error {
	switch {
	case math.IsNaN(c.Start) || math.IsInf(c.Start, 0) || math.IsNaN(c.End) || math.IsInf(c.End, 0):
		return fmt.Errorf("non-finite contact time")
	case c.Start < 0:
		return fmt.Errorf("negative start time %g", c.Start)
	case c.End <= c.Start:
		return fmt.Errorf("contact end %g not after start %g", c.End, c.Start)
	case c.A < 0 || c.B < 0:
		return fmt.Errorf("negative node ID")
	case c.A == c.B:
		return fmt.Errorf("node %d in contact with itself", c.A)
	case nodes > 0 && (int(c.A) >= nodes || int(c.B) >= nodes):
		return fmt.Errorf("node ID outside declared range 0..%d", nodes-1)
	}
	return nil
}

// finishTrace applies the shared reader tail: infer missing metadata,
// normalize ordering, validate.
func finishTrace(t *Trace, maxNode int, maxEnd float64) (*Trace, error) {
	if t.Nodes == 0 {
		t.Nodes = maxNode + 1
	}
	if t.Duration == 0 {
		t.Duration = maxEnd
	}
	t.SortContacts()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseHeader folds one "# key: value" metadata comment into the trace
// under construction and returns it — part of the reader constructors,
// so it builds-and-returns the value like they do.
func parseHeader(t *Trace, line string) *Trace {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return t
	}
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	switch key {
	case "name":
		t.Name = val
	case "nodes":
		if n, err := strconv.Atoi(val); err == nil {
			t.Nodes = n
		}
	case "duration":
		if d, err := strconv.ParseFloat(val, 64); err == nil {
			t.Duration = d
		}
	case "granularity":
		if g, err := strconv.ParseFloat(val, 64); err == nil {
			t.Granularity = g
		}
	}
	return t
}
