package trace

import (
	"strings"
	"testing"
)

func TestReadONEBasic(t *testing.T) {
	in := `
0 CONN 0 1 up
10 CONN 0 1 down
5 CONN 1 2 up
25 CONN 1 2 down
30 CONN 0 2 up
`
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 3 {
		t.Errorf("nodes = %d, want 3", tr.Nodes)
	}
	// Dangling 0-2 "up" at t=30 closes at lastTime=30 => zero length,
	// dropped; two real contacts remain.
	if len(tr.Contacts) != 2 {
		t.Fatalf("contacts = %d, want 2", len(tr.Contacts))
	}
	if tr.Contacts[0].A != 0 || tr.Contacts[0].B != 1 || tr.Contacts[0].End != 10 {
		t.Errorf("first contact = %+v", tr.Contacts[0])
	}
	if tr.Duration != 30 {
		t.Errorf("duration = %v", tr.Duration)
	}
}

func TestReadONEDanglingUpClosedAtEnd(t *testing.T) {
	in := `
0 CONN 0 1 up
50 CONN 1 2 up
60 CONN 1 2 down
`
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 0-1 up at 0 never goes down: closed at 60.
	found := false
	for _, c := range tr.Contacts {
		if c.A == 0 && c.B == 1 {
			found = true
			if c.End != 60 {
				t.Errorf("dangling contact end = %v, want 60", c.End)
			}
		}
	}
	if !found {
		t.Error("dangling contact missing")
	}
}

func TestReadONENodePrefixes(t *testing.T) {
	in := "0 CONN p3 n7 up\n9 CONN p3 n7 down\n"
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 8 {
		t.Errorf("nodes = %d, want 8", tr.Nodes)
	}
	if tr.Contacts[0].A != 3 || tr.Contacts[0].B != 7 {
		t.Errorf("contact = %+v", tr.Contacts[0])
	}
}

func TestReadONEIgnoresOtherEvents(t *testing.T) {
	in := `
# scenario header
0 CONN 0 1 up
5 MSG M1 0 1 created
10 CONN 0 1 down
`
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 {
		t.Errorf("contacts = %d", len(tr.Contacts))
	}
}

func TestReadONEErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad time", "x CONN 0 1 up\n"},
		{"bad node", "0 CONN zz 1 up\n"},
		{"self conn", "0 CONN 1 1 up\n"},
		{"bad state", "0 CONN 0 1 sideways\n"},
		{"wrong arity", "0 CONN 0 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadONE(strings.NewReader(c.in)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestReadONEDuplicateUpIgnored(t *testing.T) {
	in := `
0 CONN 0 1 up
2 CONN 0 1 up
10 CONN 0 1 down
12 CONN 0 1 down
`
	tr, err := ReadONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contacts) != 1 || tr.Contacts[0].Start != 0 || tr.Contacts[0].End != 10 {
		t.Errorf("contacts = %+v", tr.Contacts)
	}
}
