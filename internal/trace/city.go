package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"dtncache/internal/mathx"
)

// CityConfig parameterizes the city-scale generator.
//
// Generate (gen.go) walks every node pair, which is fine for the
// hundred-node Table I presets but O(n²) — hopeless at 100k nodes. The
// city generator samples the *aggregate* contact process instead: one
// nonhomogeneous Poisson stream of contact events at the calibrated
// total rate, each event assigned to a node pair by weighted sampling
// over a power-law community structure. Cost is O(nodes + contacts),
// and events are produced in nondecreasing start order, so the
// generator can stream straight into a chunked writer without ever
// materializing the trace.
type CityConfig struct {
	// Name labels the resulting trace.
	Name string
	// Nodes is the number of devices (must be >= 2).
	Nodes int
	// DurationSec is the trace length in seconds.
	DurationSec float64
	// GranularitySec is the scan period; contact durations are drawn as
	// Granularity + Exp(mean 2*Granularity), like gen.go.
	GranularitySec float64
	// TargetContacts is the expected total contact count.
	TargetContacts int
	// CommunityAlpha is the bounded-Pareto shape for community sizes;
	// smaller values produce a few huge districts among many small
	// ones. Typical: 1.0-2.0.
	CommunityAlpha float64
	// CommunityMin/CommunityMax bound the community size draw.
	CommunityMin, CommunityMax int
	// InterProb is the probability that a contact bridges two
	// communities instead of staying inside one. 0 isolates the
	// communities completely (useful for sparse-knowledge tests).
	InterProb float64
	// ActivityAlpha/ActivityMax shape the per-node bounded-Pareto
	// activity skew, as in GenConfig.
	ActivityAlpha, ActivityMax float64
	// DiurnalAmplitude in [0,1] concentrates contacts in daytime
	// (08:00-20:00), sharing gen.go's intensity profile; the total
	// stays calibrated to TargetContacts.
	DiurnalAmplitude float64
	// Seed drives all randomness; equal configs yield identical traces.
	Seed int64
}

// CityDefaults returns the city preset sized to nodes/contacts: many
// power-law districts, tenfold activity skew, strong diurnal cycle over
// a simulated week.
func CityDefaults(nodes, contacts int) CityConfig {
	return CityConfig{
		Name:             "City",
		Nodes:            nodes,
		DurationSec:      7 * 86400,
		GranularitySec:   120,
		TargetContacts:   contacts,
		CommunityAlpha:   1.2,
		CommunityMin:     8,
		CommunityMax:     nodes/10 + 8,
		InterProb:        0.05,
		ActivityAlpha:    1.5,
		ActivityMax:      10,
		DiurnalAmplitude: 0.8,
		Seed:             1,
	}
}

// Validate checks the configuration.
func (c CityConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return errors.New("trace: city: needs >= 2 nodes")
	case c.DurationSec <= 0:
		return errors.New("trace: city: duration must be positive")
	case c.GranularitySec <= 0:
		return errors.New("trace: city: granularity must be positive")
	case c.TargetContacts <= 0:
		return errors.New("trace: city: target contact count must be positive")
	case c.CommunityAlpha <= 0:
		return errors.New("trace: city: community alpha must be positive")
	case c.CommunityMin < 2:
		return errors.New("trace: city: community min must be >= 2")
	case c.CommunityMax < c.CommunityMin:
		return errors.New("trace: city: community max below min")
	case c.InterProb < 0 || c.InterProb > 1:
		return errors.New("trace: city: inter-community probability must be in [0,1]")
	case c.ActivityAlpha <= 0:
		return errors.New("trace: city: activity alpha must be positive")
	case c.ActivityMax <= 1:
		return errors.New("trace: city: activity max must exceed 1")
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return errors.New("trace: city: diurnal amplitude must be in [0,1]")
	}
	return nil
}

// cityWorld is the sampled static structure: community layout and
// per-node activity weights, with cumulative arrays for O(log n)
// weighted node draws.
type cityWorld struct {
	cfg      CityConfig
	commOff  []int     // community -> first node ID (len communities+1)
	nodeCum  []float64 // per-node cumulative activity within community order
	commCum  []float64 // community -> cumulative pair-mass weight
	eventRng *mathx.Rand
}

// buildCityWorld draws community sizes from a bounded Pareto until the
// node budget is spent (the last community takes the remainder) and
// assigns contiguous ID ranges, then draws activities and builds the
// sampling tables.
func buildCityWorld(cfg CityConfig) *cityWorld {
	rng := mathx.NewRand(cfg.Seed)
	commRng := rng.Derive("city-communities")
	actRng := rng.Derive("city-activity")

	w := &cityWorld{cfg: cfg, eventRng: rng.Derive("city-events")}
	w.commOff = append(w.commOff, 0)
	for off := 0; off < cfg.Nodes; {
		max := cfg.CommunityMax
		if max > cfg.Nodes-off {
			max = cfg.Nodes - off
		}
		size := max
		if max > cfg.CommunityMin {
			size = int(commRng.Pareto(cfg.CommunityAlpha, float64(cfg.CommunityMin), float64(max)))
		}
		if size < 2 {
			size = 2
		}
		if size > cfg.Nodes-off {
			size = cfg.Nodes - off
		}
		off += size
		w.commOff = append(w.commOff, off)
	}
	// A trailing remainder of one node cannot host intra-community
	// contacts; fold it into the previous community.
	if last := len(w.commOff) - 1; last >= 2 && w.commOff[last]-w.commOff[last-1] < 2 {
		w.commOff = append(w.commOff[:last-1], w.commOff[last])
	}

	w.nodeCum = make([]float64, cfg.Nodes)
	w.commCum = make([]float64, len(w.commOff)-1)
	var commTotal float64
	for c := 0; c+1 < len(w.commOff); c++ {
		lo, hi := w.commOff[c], w.commOff[c+1]
		var sum float64
		for i := lo; i < hi; i++ {
			sum += actRng.Pareto(cfg.ActivityAlpha, 1, cfg.ActivityMax)
			w.nodeCum[i] = sum
		}
		// Pair mass grows with the square of the community's total
		// activity (product-form rates), so big districts dominate.
		commTotal += sum * sum
		w.commCum[c] = commTotal
	}
	return w
}

// communities returns the number of communities drawn.
func (w *cityWorld) communities() int { return len(w.commOff) - 1 }

// drawCommunity picks a community with probability proportional to its
// squared activity mass.
func (w *cityWorld) drawCommunity(rng *mathx.Rand) int {
	total := w.commCum[len(w.commCum)-1]
	x := rng.Float64() * total
	return sort.SearchFloat64s(w.commCum, x)
}

// drawNode picks a node inside community c, weighted by activity.
func (w *cityWorld) drawNode(rng *mathx.Rand, c int) NodeID {
	lo, hi := w.commOff[c], w.commOff[c+1]
	base := 0.0
	if lo > 0 {
		base = w.nodeCum[lo-1]
	}
	x := base + rng.Float64()*(w.nodeCum[hi-1]-base)
	i := lo + sort.SearchFloat64s(w.nodeCum[lo:hi], x)
	if i >= hi {
		i = hi - 1
	}
	return NodeID(i)
}

// drawPair samples one contact's endpoints: intra-community by default,
// bridging two communities with probability InterProb.
func (w *cityWorld) drawPair(rng *mathx.Rand) (NodeID, NodeID) {
	for {
		var a, b NodeID
		if w.communities() > 1 && rng.Bernoulli(w.cfg.InterProb) {
			ca := w.drawCommunity(rng)
			cb := w.drawCommunity(rng)
			a, b = w.drawNode(rng, ca), w.drawNode(rng, cb)
		} else {
			c := w.drawCommunity(rng)
			a, b = w.drawNode(rng, c), w.drawNode(rng, c)
		}
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		return a, b
	}
}

// StreamCity runs the city generator, calling emit for every contact in
// nondecreasing start order. It never materializes the trace: memory is
// O(nodes) regardless of contact count.
func StreamCity(cfg CityConfig, emit func(Contact) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	w := buildCityWorld(cfg)
	rng := w.eventRng

	// Aggregate thinned Poisson process, exactly the shape of
	// appendPairContacts but over the whole city at once: candidates at
	// the peak total rate, accepted with the time-of-day intensity.
	meanF := 1 - cfg.DiurnalAmplitude/2
	peak := float64(cfg.TargetContacts) / (cfg.DurationSec * meanF)
	for t := rng.Exp(peak); t < cfg.DurationSec; t += rng.Exp(peak) {
		if cfg.DiurnalAmplitude > 0 &&
			rng.Float64() >= diurnalIntensity(cfg.DiurnalAmplitude, t) {
			continue
		}
		a, b := w.drawPair(rng)
		end := t + cfg.GranularitySec + rng.Exp(1/(2*cfg.GranularitySec))
		if end > cfg.DurationSec {
			end = cfg.DurationSec
		}
		if end <= t {
			continue
		}
		if err := emit(Contact{A: a, B: b, Start: t, End: end}); err != nil {
			return err
		}
	}
	return nil
}

// GenerateCity materializes a city trace — the small-scale convenience
// path (tests, presets); city-scale callers stream instead.
func GenerateCity(cfg CityConfig) (*Trace, error) {
	tr := &Trace{
		Name:        cfg.Name,
		Nodes:       cfg.Nodes,
		Duration:    cfg.DurationSec,
		Granularity: cfg.GranularitySec,
	}
	tr.Contacts = make([]Contact, 0, cfg.TargetContacts+cfg.TargetContacts/8)
	err := StreamCity(cfg, func(c Contact) error {
		tr.Contacts = append(tr.Contacts, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tr.SortContacts()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: city: generated invalid trace: %w", err)
	}
	return tr, nil
}

// citySource adapts StreamCity to ContactSource without a goroutine:
// the generator's event loop is inverted into a pull iterator.
type citySource struct {
	w    *cityWorld
	cfg  CityConfig
	t    float64
	done bool
}

// NewCitySource returns a pull-based source over the city generator's
// contact stream — handy for feeding the simulator or a chunked writer
// without a callback inversion.
func NewCitySource(cfg CityConfig) (ContactSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := buildCityWorld(cfg)
	return &citySource{w: w, cfg: cfg, t: w.eventRng.Exp(cityPeak(cfg))}, nil
}

func cityPeak(cfg CityConfig) float64 {
	return float64(cfg.TargetContacts) / (cfg.DurationSec * (1 - cfg.DiurnalAmplitude/2))
}

// NextContact implements ContactSource with the same draw sequence as
// StreamCity, so both paths generate bit-identical traces.
func (s *citySource) NextContact() (Contact, error) {
	rng := s.w.eventRng
	peak := cityPeak(s.cfg)
	for !s.done && s.t < s.cfg.DurationSec {
		t := s.t
		accept := true
		if s.cfg.DiurnalAmplitude > 0 &&
			rng.Float64() >= diurnalIntensity(s.cfg.DiurnalAmplitude, t) {
			accept = false
		}
		var c Contact
		if accept {
			a, b := s.w.drawPair(rng)
			end := t + s.cfg.GranularitySec + rng.Exp(1/(2*s.cfg.GranularitySec))
			if end > s.cfg.DurationSec {
				end = s.cfg.DurationSec
			}
			if end > t {
				c = Contact{A: a, B: b, Start: t, End: end}
			} else {
				accept = false
			}
		}
		s.t += rng.Exp(peak)
		if accept {
			return c, nil
		}
	}
	s.done = true
	return Contact{}, io.EOF
}
