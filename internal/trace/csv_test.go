package trace

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "# name: x\n# nodes: 3\na,b,start,end\n0, 1, 10, 20\n1,2,15,40\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.Name != "x" || tr.Nodes != 3 || len(tr.Contacts) != 2 {
		t.Fatalf("got name=%q nodes=%d contacts=%d", tr.Name, tr.Nodes, len(tr.Contacts))
	}
	if tr.Contacts[0] != (Contact{A: 0, B: 1, Start: 10, End: 20}) {
		t.Fatalf("first contact = %+v", tr.Contacts[0])
	}
	if tr.Duration != 40 {
		t.Fatalf("inferred duration = %g, want 40", tr.Duration)
	}
}

func TestReadCSVInfersMetadata(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("0,5,1,2\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.Nodes != 6 || tr.Duration != 2 {
		t.Fatalf("inferred nodes=%d duration=%g, want 6, 2", tr.Nodes, tr.Duration)
	}
}

// Malformed records must be rejected with line-numbered errors rather
// than slipping into the trace (NaN in particular used to pass every
// Validate comparison).
func TestReadersRejectMalformed(t *testing.T) {
	cases := []struct {
		name, csv string
		wantIn    string // substring of the error
	}{
		{"nan start", "0,1,NaN,20\n", "line 1: non-finite"},
		{"inf end", "0,1,10,+Inf\n", "line 1: non-finite"},
		{"negative start", "0,1,-5,20\n", "line 1: negative start"},
		{"end before begin", "0,1,20,10\n", "line 1: contact end"},
		{"end equals begin", "0,1,10,10\n", "line 1: contact end"},
		{"negative node", "-1,1,10,20\n", "line 1: negative node ID"},
		{"self contact", "2,2,10,20\n", "line 1: node 2 in contact with itself"},
		{"unknown node", "# nodes: 2\n0,5,10,20\n", "line 2: node ID outside declared range 0..1"},
		{"field count", "0,1,10\n", "line 1: want 4 fields"},
		{"garbage time", "0,1,ten,20\n", "line 1: start"},
	}
	for _, tc := range cases {
		t.Run("csv/"+tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.csv))
			if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("ReadCSV error = %v, want containing %q", err, tc.wantIn)
			}
		})
		// The plain-text reader shares parseContact; same rejections.
		plain := strings.ReplaceAll(tc.csv, ",", " ")
		t.Run("plain/"+tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(plain))
			if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("Read error = %v, want containing %q", err, tc.wantIn)
			}
		})
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	nan := 0.0
	nan = nan / nan // quiet NaN without importing math in the test
	tr := &Trace{Nodes: 2, Duration: 100, Contacts: []Contact{{A: 0, B: 1, Start: nan, End: 20}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted NaN contact start")
	}
	tr = &Trace{Nodes: 2, Duration: nan}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted NaN duration")
	}
}
