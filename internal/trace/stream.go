package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The chunked binary trace format streams city-scale contact lists
// without materializing them. Layout (all integers little-endian):
//
//	magic       [6]byte  "DTNCHK"
//	version     uint16   currently 1
//	nameLen     uint16
//	name        [nameLen]byte
//	nodes       uint32   > 0
//	duration    float64  finite, > 0
//	granularity float64  finite, >= 0
//	chunk*                length-prefixed columnar chunks
//	trailer              a chunk with count == 0
//
// Each chunk is:
//
//	count      uint32   records in this chunk; 0 marks the trailer
//	payloadLen uint32   must equal count * 24
//	a          [count]uint32
//	b          [count]uint32
//	start      [count]float64
//	end        [count]float64
//
// The columnar payload keeps same-typed fields adjacent so a chunk
// decodes with four tight loops, and the explicit payload length lets a
// reader detect truncation mid-chunk instead of mis-parsing the tail.
// The trailer distinguishes a cleanly terminated stream from a file cut
// off at a chunk boundary. Records must be sorted by start time across
// the whole stream (the order Trace.Validate requires), which is what
// lets the simulator replay a stream without buffering it.

const (
	streamMagic   = "DTNCHK"
	streamVersion = 1

	// recordBytes is the per-record payload cost: u32 a + u32 b +
	// f64 start + f64 end.
	recordBytes = 24

	// maxChunkRecords bounds a single chunk so a corrupt count field
	// cannot make the reader allocate gigabytes. 1<<20 records is a
	// 24 MiB payload.
	maxChunkRecords = 1 << 20

	// defaultChunkRecords is the writer's flush threshold: 8192
	// records is a 192 KiB payload, comfortably above the bufio block
	// size and far below any memory concern.
	defaultChunkRecords = 8192
)

// StreamMeta is the chunked stream header: the Trace metadata without
// the contact slice. Duration is mandatory (a streaming reader cannot
// infer it from the last contact without reading everything first).
type StreamMeta struct {
	Name        string
	Nodes       int
	Duration    float64
	Granularity float64
}

// validate rejects headers the reader could not replay against.
func (m StreamMeta) validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("trace: stream: %w", ErrNoNodes)
	case m.Nodes > math.MaxUint32:
		return fmt.Errorf("trace: stream: %d nodes exceed the uint32 header field", m.Nodes)
	case len(m.Name) > math.MaxUint16:
		return fmt.Errorf("trace: stream: name longer than %d bytes", math.MaxUint16)
	case math.IsNaN(m.Duration) || math.IsInf(m.Duration, 0) ||
		math.IsNaN(m.Granularity) || math.IsInf(m.Granularity, 0):
		return fmt.Errorf("trace: stream: %w", ErrNonFinite)
	case m.Duration <= 0:
		return fmt.Errorf("trace: stream: duration %g not positive", m.Duration)
	case m.Granularity < 0:
		return fmt.Errorf("trace: stream: negative granularity %g", m.Granularity)
	}
	return nil
}

// StreamWriter encodes a contact stream chunk by chunk. Contacts must
// be Added in nondecreasing start order; Close writes the trailer.
type StreamWriter struct {
	w         *bufio.Writer
	meta      StreamMeta
	buf       []Contact // pending records for the current chunk
	scratch   []byte    // encoded-chunk reuse buffer
	prevStart float64
	count     int64 // records written, for error context
	closed    bool
}

// NewStreamWriter writes the header and returns a writer for the
// contact stream described by meta.
func NewStreamWriter(w io.Writer, meta StreamMeta) (*StreamWriter, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, fmt.Errorf("trace: stream: write header: %w", err)
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], streamVersion)
	bw.Write(u16[:])
	binary.LittleEndian.PutUint16(u16[:], uint16(len(meta.Name)))
	bw.Write(u16[:])
	bw.WriteString(meta.Name)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(meta.Nodes))
	bw.Write(u32[:])
	var f64 [8]byte
	binary.LittleEndian.PutUint64(f64[:], math.Float64bits(meta.Duration))
	bw.Write(f64[:])
	binary.LittleEndian.PutUint64(f64[:], math.Float64bits(meta.Granularity))
	if _, err := bw.Write(f64[:]); err != nil {
		return nil, fmt.Errorf("trace: stream: write header: %w", err)
	}
	return &StreamWriter{
		w:         bw,
		meta:      meta,
		buf:       make([]Contact, 0, defaultChunkRecords),
		prevStart: math.Inf(-1),
	}, nil
}

// Add appends one contact to the stream, enforcing the same record
// invariants the reader checks so only replayable files are produced.
func (sw *StreamWriter) Add(c Contact) error {
	if sw.closed {
		return fmt.Errorf("trace: stream: write after Close")
	}
	if err := checkStreamRecord(sw.meta, c, sw.prevStart); err != nil {
		return fmt.Errorf("trace: stream: record %d: %w", sw.count, err)
	}
	sw.prevStart = c.Start
	sw.count++
	sw.buf = append(sw.buf, c)
	if len(sw.buf) >= defaultChunkRecords {
		return sw.flushChunk()
	}
	return nil
}

// Close flushes the final chunk and writes the trailer. The underlying
// io.Writer is not closed.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.flushChunk(); err != nil {
		return err
	}
	var hdr [8]byte // count == 0, payloadLen == 0
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: stream: write trailer: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("trace: stream: flush: %w", err)
	}
	return nil
}

func (sw *StreamWriter) flushChunk() error {
	n := len(sw.buf)
	if n == 0 {
		return nil
	}
	need := 8 + n*recordBytes
	if cap(sw.scratch) < need {
		sw.scratch = make([]byte, need)
	}
	buf := sw.scratch[:need]
	binary.LittleEndian.PutUint32(buf[0:], uint32(n))
	binary.LittleEndian.PutUint32(buf[4:], uint32(n*recordBytes))
	aOff, bOff := 8, 8+4*n
	sOff, eOff := 8+8*n, 8+8*n+8*n
	for i, c := range sw.buf {
		binary.LittleEndian.PutUint32(buf[aOff+4*i:], uint32(c.A))
		binary.LittleEndian.PutUint32(buf[bOff+4*i:], uint32(c.B))
		binary.LittleEndian.PutUint64(buf[sOff+8*i:], math.Float64bits(c.Start))
		binary.LittleEndian.PutUint64(buf[eOff+8*i:], math.Float64bits(c.End))
	}
	sw.buf = sw.buf[:0]
	if _, err := sw.w.Write(buf); err != nil {
		return fmt.Errorf("trace: stream: write chunk: %w", err)
	}
	return nil
}

// checkStreamRecord applies CheckContact's shared hardening to binary
// records plus the stream-only invariants the header makes checkable:
// duration overruns and unsorted starts.
func checkStreamRecord(meta StreamMeta, c Contact, prevStart float64) error {
	if err := CheckContact(meta.Nodes, c); err != nil {
		return err
	}
	switch {
	case c.End > meta.Duration:
		return fmt.Errorf("contact end %g after trace duration %g", c.End, meta.Duration)
	case c.Start < prevStart:
		return fmt.Errorf("start %g before previous start %g", c.Start, prevStart)
	}
	return nil
}

// StreamReader decodes a chunked trace one contact at a time. It holds
// a single chunk in memory, so replaying a hundred-million-contact file
// costs a fixed few hundred kilobytes. The decoded chunk buffers are
// reused, and NextContact returns by value, so the steady state is
// allocation-free. The reader is a single-owner cursor, not a shared
// value: every NextContact advances its chunk state.
type StreamReader struct {
	r    *bufio.Reader
	meta StreamMeta

	// current decoded chunk, columnar; reused between chunks
	a, b       []NodeID
	start, end []float64
	payload    []byte // raw chunk payload, reused
	idx        int    // next record within the chunk

	chunk     int64 // 1-based chunk number, for error context
	record    int64 // records delivered so far
	prevStart float64
	done      bool
	err       error // sticky
}

// NewStreamReader parses the stream header. The reader does not take
// ownership of r; callers close the underlying file themselves.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [len(streamMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: stream: read magic: %w", err)
	}
	if string(magic[:]) != streamMagic {
		return nil, fmt.Errorf("trace: stream: bad magic %q (want %q)", magic[:], streamMagic)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("trace: stream: read version: %w", err)
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != streamVersion {
		return nil, fmt.Errorf("trace: stream: unsupported version %d (want %d)", v, streamVersion)
	}
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("trace: stream: read header: %w", err)
	}
	nameLen := int(binary.LittleEndian.Uint16(u16[:]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: stream: read name: %w", err)
	}
	var rest [4 + 8 + 8]byte
	if _, err := io.ReadFull(br, rest[:]); err != nil {
		return nil, fmt.Errorf("trace: stream: read header: %w", err)
	}
	meta := StreamMeta{
		Name:        string(name),
		Nodes:       int(binary.LittleEndian.Uint32(rest[0:])),
		Duration:    math.Float64frombits(binary.LittleEndian.Uint64(rest[4:])),
		Granularity: math.Float64frombits(binary.LittleEndian.Uint64(rest[12:])),
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	return &StreamReader{r: br, meta: meta, prevStart: math.Inf(-1)}, nil
}

// Meta returns the stream header.
func (sr *StreamReader) Meta() StreamMeta { return sr.meta }

// Records returns the number of contacts delivered so far.
func (sr *StreamReader) Records() int64 { return sr.record }

// NextContact returns the next contact in start order, io.EOF after the
// trailer, or a decoding/validation error carrying the chunk and record
// position. Errors (including io.EOF) are sticky.
func (sr *StreamReader) NextContact() (Contact, error) {
	if sr.err != nil {
		return Contact{}, sr.err
	}
	for sr.idx >= len(sr.a) {
		if sr.done {
			sr.err = io.EOF
			return Contact{}, sr.err
		}
		if err := sr.readChunk(); err != nil {
			sr.err = err
			return Contact{}, err
		}
	}
	i := sr.idx
	sr.idx++
	c := Contact{A: sr.a[i], B: sr.b[i], Start: sr.start[i], End: sr.end[i]}
	if c.A > c.B {
		// Normalize like SortContacts so downstream pair keys agree.
		c.A, c.B = c.B, c.A
	}
	if err := checkStreamRecord(sr.meta, c, sr.prevStart); err != nil {
		sr.err = fmt.Errorf("trace: stream: chunk %d record %d: %w", sr.chunk, i, err)
		return Contact{}, sr.err
	}
	sr.prevStart = c.Start
	sr.record++
	return c, nil
}

// readChunk decodes the next chunk into the columnar buffers, or sets
// done when it is the trailer.
func (sr *StreamReader) readChunk() error {
	sr.chunk++
	var hdr [8]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: stream: chunk %d: truncated before trailer", sr.chunk)
		}
		return fmt.Errorf("trace: stream: chunk %d: %w", sr.chunk, err)
	}
	count := int(binary.LittleEndian.Uint32(hdr[0:]))
	payloadLen := int(binary.LittleEndian.Uint32(hdr[4:]))
	if count == 0 {
		if payloadLen != 0 {
			return fmt.Errorf("trace: stream: chunk %d: trailer with payload length %d", sr.chunk, payloadLen)
		}
		// A clean stream ends exactly at the trailer.
		if _, err := sr.r.ReadByte(); err != io.EOF {
			return fmt.Errorf("trace: stream: chunk %d: data after trailer", sr.chunk)
		}
		sr.done = true
		sr.a, sr.b, sr.start, sr.end = sr.a[:0], sr.b[:0], sr.start[:0], sr.end[:0]
		sr.idx = 0
		return nil
	}
	if count > maxChunkRecords {
		return fmt.Errorf("trace: stream: chunk %d: record count %d exceeds limit %d", sr.chunk, count, maxChunkRecords)
	}
	if payloadLen != count*recordBytes {
		return fmt.Errorf("trace: stream: chunk %d: payload length %d does not match %d records", sr.chunk, payloadLen, count)
	}
	buf := sr.payloadBuf(payloadLen)
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		return fmt.Errorf("trace: stream: chunk %d: truncated payload (%d records): %w", sr.chunk, count, err)
	}
	sr.a = grow(sr.a, count)
	sr.b = grow(sr.b, count)
	sr.start = grow(sr.start, count)
	sr.end = grow(sr.end, count)
	aOff, bOff := 0, 4*count
	sOff, eOff := 8*count, 16*count
	for i := 0; i < count; i++ {
		sr.a[i] = NodeID(binary.LittleEndian.Uint32(buf[aOff+4*i:]))
		sr.b[i] = NodeID(binary.LittleEndian.Uint32(buf[bOff+4*i:]))
		sr.start[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[sOff+8*i:]))
		sr.end[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[eOff+8*i:]))
	}
	sr.idx = 0
	return nil
}

// payloadBuf returns a reusable byte buffer of exactly n bytes.
func (sr *StreamReader) payloadBuf(n int) []byte {
	if cap(sr.payload) < n {
		sr.payload = make([]byte, n)
	}
	return sr.payload[:n]
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// WriteChunked serializes a materialized trace into the chunked binary
// format (the converter from the plain/CSV paths).
func WriteChunked(w io.Writer, t *Trace) error {
	sw, err := NewStreamWriter(w, StreamMeta{
		Name: t.Name, Nodes: t.Nodes, Duration: t.Duration, Granularity: t.Granularity,
	})
	if err != nil {
		return err
	}
	for _, c := range t.Contacts {
		if err := sw.Add(c); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadChunked materializes a chunked stream into a Trace (the converter
// back to the in-memory path the plain/CSV readers produce).
func ReadChunked(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	meta := sr.Meta()
	t := &Trace{
		Name:        meta.Name,
		Nodes:       meta.Nodes,
		Duration:    meta.Duration,
		Granularity: meta.Granularity,
	}
	for {
		c, err := sr.NextContact()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Contacts = append(t.Contacts, c)
	}
	t.SortContacts()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
