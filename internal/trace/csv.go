package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a comma-separated contact list: one
//
//	nodeA,nodeB,start-seconds,end-seconds
//
// record per line. '#' comment lines carry the same optional metadata
// keys as the plain format (name/nodes/duration/granularity), and a
// leading column-name header record ("a,b,start,end") is skipped when
// its first field is not a number. Missing metadata is inferred as in
// Read. Malformed records — non-finite, negative or end-before-begin
// timestamps, unknown node IDs — are rejected with line-numbered
// errors.
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	maxNode := -1
	var maxEnd float64
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t = parseHeader(t, line)
			continue
		}
		fields := strings.Split(line, ",")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		if first {
			first = false
			if _, err := strconv.Atoi(fields[0]); err != nil {
				continue // column-name header record
			}
		}
		c, err := parseContact(t.Nodes, lineNo, fields)
		if err != nil {
			return nil, err
		}
		t.Contacts = append(t.Contacts, c)
		if int(c.A) > maxNode {
			maxNode = int(c.A)
		}
		if int(c.B) > maxNode {
			maxNode = int(c.B)
		}
		if c.End > maxEnd {
			maxEnd = c.End
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return finishTrace(t, maxNode, maxEnd)
}
