package trace

import (
	"sort"
	"testing"
)

func smallCityConfig() CityConfig {
	cfg := CityDefaults(400, 20000)
	cfg.DurationSec = 2 * 86400
	return cfg
}

func TestGenerateCityValid(t *testing.T) {
	tr, err := GenerateCity(smallCityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 400 {
		t.Fatalf("nodes = %d", tr.Nodes)
	}
	n := len(tr.Contacts)
	if n < 20000/2 || n > 20000*2 {
		t.Fatalf("contact count %d far from target 20000", n)
	}
	// Every node pair must be valid and sorted — Validate checked inside
	// GenerateCity, so just confirm the stream order was already sorted
	// (SortContacts had nothing to reorder across starts).
	for i := 1; i < n; i++ {
		if tr.Contacts[i].Start < tr.Contacts[i-1].Start {
			t.Fatalf("contact %d out of order", i)
		}
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	a, err := GenerateCity(smallCityConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(smallCityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("counts differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs: %+v vs %+v", i, a.Contacts[i], b.Contacts[i])
		}
	}
	c := smallCityConfig()
	c.Seed = 2
	d, err := GenerateCity(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Contacts) == len(a.Contacts) && d.Contacts[0] == a.Contacts[0] {
		t.Fatal("different seed produced the same first contact and count")
	}
}

// TestCitySourceMatchesStream pins the pull iterator to the callback
// generator draw for draw: both must produce bit-identical streams.
func TestCitySourceMatchesStream(t *testing.T) {
	cfg := smallCityConfig()
	var want []Contact
	if err := StreamCity(cfg, func(c Contact) error {
		want = append(want, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	src, err := NewCitySource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := drainSource(t, src)
	if len(got) != len(want) {
		t.Fatalf("counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("contact %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestCityIsolatedCommunities checks InterProb=0 never bridges
// communities, the property the sparse-knowledge benchmarks rely on.
func TestCityIsolatedCommunities(t *testing.T) {
	cfg := smallCityConfig()
	cfg.InterProb = 0
	w := buildCityWorld(cfg)
	if w.communities() < 2 {
		t.Fatalf("only %d communities", w.communities())
	}
	comm := func(n NodeID) int {
		return sort.SearchInts(w.commOff, int(n)+1) - 1
	}
	tr, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Contacts {
		if comm(c.A) != comm(c.B) {
			t.Fatalf("contact %+v bridges communities %d and %d", c, comm(c.A), comm(c.B))
		}
	}
}

func TestCityDiurnalSkew(t *testing.T) {
	tr, err := GenerateCity(smallCityConfig())
	if err != nil {
		t.Fatal(err)
	}
	day, night := 0, 0
	for _, c := range tr.Contacts {
		h := int(c.Start) % 86400 / 3600
		if h >= 8 && h < 20 {
			day++
		} else {
			night++
		}
	}
	// Amplitude 0.8 means night intensity is 20% of day; day and night
	// spans are both 12h, so day should carry roughly 5x the contacts.
	if day < 3*night {
		t.Fatalf("diurnal skew too weak: day=%d night=%d", day, night)
	}
}

func TestCityConfigValidate(t *testing.T) {
	base := smallCityConfig()
	mutate := []func(*CityConfig){
		func(c *CityConfig) { c.Nodes = 1 },
		func(c *CityConfig) { c.DurationSec = 0 },
		func(c *CityConfig) { c.GranularitySec = -1 },
		func(c *CityConfig) { c.TargetContacts = 0 },
		func(c *CityConfig) { c.CommunityAlpha = 0 },
		func(c *CityConfig) { c.CommunityMin = 1 },
		func(c *CityConfig) { c.CommunityMax = c.CommunityMin - 1 },
		func(c *CityConfig) { c.InterProb = 1.5 },
		func(c *CityConfig) { c.ActivityAlpha = -1 },
		func(c *CityConfig) { c.ActivityMax = 1 },
		func(c *CityConfig) { c.DiurnalAmplitude = 2 },
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for i, m := range mutate {
		c := base
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
