package trace

import (
	"errors"
	"math"
	"testing"
)

func TestGenConfigValidate(t *testing.T) {
	good := GenConfig{
		Nodes: 10, DurationSec: 86400, GranularitySec: 120,
		TargetContacts: 1000, ActivityAlpha: 1.5, ActivityMax: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Nodes = 1 },
		func(c *GenConfig) { c.DurationSec = 0 },
		func(c *GenConfig) { c.GranularitySec = 0 },
		func(c *GenConfig) { c.TargetContacts = 0 },
		func(c *GenConfig) { c.ActivityAlpha = 0 },
		func(c *GenConfig) { c.ActivityMax = 1 },
		func(c *GenConfig) { c.Communities = -1 },
		func(c *GenConfig) { c.Communities = 2; c.IntraBoost = 0.5 },
		func(c *GenConfig) { c.Communities = 11 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateProducesValidCalibratedTrace(t *testing.T) {
	cfg := GenConfig{
		Name: "synthetic", Nodes: 30, DurationSec: 2 * day,
		GranularitySec: 120, TargetContacts: 20000,
		ActivityAlpha: 1.5, ActivityMax: 10, Seed: 1,
	}
	tr, rates, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.Name != "synthetic" || tr.Nodes != 30 {
		t.Errorf("metadata wrong: %+v", tr)
	}
	// Total contacts within 15% of target (Poisson fluctuation is ~0.7%;
	// the non-overlap adjustment shaves a little more).
	got := float64(len(tr.Contacts))
	if math.Abs(got-20000) > 0.15*20000 {
		t.Errorf("contacts = %v, want ~20000", got)
	}
	// Rate matrix symmetric with zero diagonal.
	for i := 0; i < cfg.Nodes; i++ {
		if rates[i][i] != 0 {
			t.Errorf("diagonal rate %d nonzero", i)
		}
		for j := 0; j < cfg.Nodes; j++ {
			if rates[i][j] != rates[j][i] {
				t.Errorf("rates not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Nodes: 15, DurationSec: day, GranularitySec: 60,
		TargetContacts: 3000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 7,
	}
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := GenConfig{
		Nodes: 15, DurationSec: day, GranularitySec: 60,
		TargetContacts: 3000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 7,
	}
	a, _, _ := Generate(cfg)
	cfg.Seed = 8
	b, _, _ := Generate(cfg)
	if len(a.Contacts) == len(b.Contacts) {
		same := true
		for i := range a.Contacts {
			if a.Contacts[i] != b.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateEmpiricalRatesMatchGroundTruth(t *testing.T) {
	cfg := GenConfig{
		Nodes: 10, DurationSec: 30 * day, GranularitySec: 60,
		TargetContacts: 40000, ActivityAlpha: 1.5, ActivityMax: 5, Seed: 3,
	}
	tr, rates, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]int, cfg.Nodes)
	for i := range counts {
		counts[i] = make([]int, cfg.Nodes)
	}
	for _, c := range tr.Contacts {
		counts[c.A][c.B]++
		counts[c.B][c.A]++
	}
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			want := rates[i][j] * cfg.DurationSec
			if want < 100 {
				continue // too few expected contacts for a tight check
			}
			got := float64(counts[i][j])
			// Non-overlap shifting depresses counts slightly at high
			// rates; allow 5 sigma + 5%.
			tol := 5*math.Sqrt(want) + 0.05*want
			if math.Abs(got-want) > tol {
				t.Errorf("pair %d-%d: %v contacts, want ~%v", i, j, got, want)
			}
		}
	}
}

func TestGenerateCommunityBoost(t *testing.T) {
	cfg := GenConfig{
		Nodes: 20, DurationSec: 10 * day, GranularitySec: 60,
		TargetContacts: 20000, ActivityAlpha: 1.5, ActivityMax: 5,
		Communities: 4, IntraBoost: 10, Seed: 5,
	}
	_, rates, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node i is in community i%4; same-community pairs should have a much
	// higher average rate.
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			if i%4 == j%4 {
				intra += rates[i][j]
				nIntra++
			} else {
				inter += rates[i][j]
				nInter++
			}
		}
	}
	intraMean := intra / float64(nIntra)
	interMean := inter / float64(nInter)
	if intraMean < 3*interMean {
		t.Errorf("intra mean %v not clearly above inter mean %v", intraMean, interMean)
	}
}

func TestGeneratePresetsMatchTable1(t *testing.T) {
	// Table I ground truth: nodes, duration (days), granularity, contacts.
	want := map[Preset]struct {
		nodes    int
		days     float64
		gran     float64
		contacts int
	}{
		Infocom05:  {41, 3, 120, 22459},
		Infocom06:  {78, 4, 120, 182951},
		MITReality: {97, 246, 300, 114046},
		UCSD:       {275, 77, 20, 123225},
	}
	for _, p := range Presets() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			tr, err := GeneratePreset(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			w := want[p]
			s := tr.ComputeStats()
			if s.Nodes != w.nodes {
				t.Errorf("nodes = %d, want %d", s.Nodes, w.nodes)
			}
			if math.Abs(s.DurationDays-w.days) > 1e-9 {
				t.Errorf("days = %v, want %v", s.DurationDays, w.days)
			}
			if s.GranularitySec != w.gran {
				t.Errorf("granularity = %v, want %v", s.GranularitySec, w.gran)
			}
			if math.Abs(float64(s.Contacts-w.contacts)) > 0.15*float64(w.contacts) {
				t.Errorf("contacts = %d, want ~%d", s.Contacts, w.contacts)
			}
		})
	}
}

func TestPresetConfigUnknown(t *testing.T) {
	if _, ok := PresetConfig("nope", 1); ok {
		t.Error("unknown preset accepted")
	}
	if _, err := GeneratePreset("nope", 1); err == nil {
		t.Error("GeneratePreset with unknown preset: want error")
	} else {
		var upe *UnknownPresetError
		if !errors.As(err, &upe) {
			t.Errorf("want UnknownPresetError, got %T", err)
		}
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	base := GenConfig{
		Nodes: 20, DurationSec: 10 * day, GranularitySec: 60,
		TargetContacts: 20000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 6,
	}
	nightShare := func(tr *Trace) float64 {
		night := 0
		for _, c := range tr.Contacts {
			h := c.Start / 3600
			h -= float64(int(h/24)) * 24
			if h < 8 || h >= 20 {
				night++
			}
		}
		return float64(night) / float64(len(tr.Contacts))
	}

	flat, _, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.DiurnalAmplitude = 1
	day1, _, err := Generate(full)
	if err != nil {
		t.Fatal(err)
	}
	if got := nightShare(day1); got != 0 {
		t.Errorf("amplitude 1: night share = %v, want 0", got)
	}
	if got := nightShare(flat); got < 0.4 || got > 0.6 {
		t.Errorf("amplitude 0: night share = %v, want ~0.5", got)
	}
	// Calibration holds under thinning.
	if n := float64(len(day1.Contacts)); math.Abs(n-20000) > 0.15*20000 {
		t.Errorf("diurnal contacts = %v, want ~20000", n)
	}

	partial := base
	partial.DiurnalAmplitude = 0.8
	mid, _, err := Generate(partial)
	if err != nil {
		t.Fatal(err)
	}
	if got := nightShare(mid); got >= nightShare(flat) {
		t.Errorf("amplitude 0.8 night share %v not below flat %v", got, nightShare(flat))
	}
}

func TestGenerateRejectsBadDiurnal(t *testing.T) {
	cfg := GenConfig{
		Nodes: 5, DurationSec: day, GranularitySec: 60,
		TargetContacts: 100, ActivityAlpha: 1.5, ActivityMax: 10,
		DiurnalAmplitude: 1.2,
	}
	if _, _, err := Generate(cfg); err == nil {
		t.Error("amplitude > 1 accepted")
	}
}
