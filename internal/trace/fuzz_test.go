package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the plain-text trace parser with arbitrary input:
// it must never panic, and anything it accepts must be a valid trace
// that survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("0 1 10 20\n")
	f.Add("# name: x\n# nodes: 3\n0 1 10 20\n1 2 15 40\n")
	f.Add("")
	f.Add("# only comments\n")
	f.Add("0 1 10\n")
	f.Add("a b c d\n")
	f.Add("0 1 1e300 1e301\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, tr); werr != nil {
			t.Fatalf("write of accepted trace failed: %v", werr)
		}
		again, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(again.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip changed contact count: %d vs %d",
				len(again.Contacts), len(tr.Contacts))
		}
	})
}

// FuzzReadCSV exercises the CSV contact parser: no panics, accepted
// traces validate and survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,1,10,20\n")
	f.Add("a,b,start,end\n0,1,10,20\n1,2,15,40\n")
	f.Add("# nodes: 3\n0, 1, 10, 20\n")
	f.Add("")
	f.Add("0,1,10\n")
	f.Add("0,1,NaN,20\n")
	f.Add("0,1,-5,20\n")
	f.Add("0,1,20,10\n")
	f.Add("0,0,10,20\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, tr); werr != nil {
			t.Fatalf("write of accepted trace failed: %v", werr)
		}
		again, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(again.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip changed contact count: %d vs %d",
				len(again.Contacts), len(tr.Contacts))
		}
	})
}

// FuzzReadONE exercises the ONE event parser: no panics, and accepted
// traces validate.
func FuzzReadONE(f *testing.F) {
	f.Add("0 CONN 0 1 up\n10 CONN 0 1 down\n")
	f.Add("5 CONN p1 n2 up\n")
	f.Add("x CONN 0 1 up\n")
	f.Add("0 MSG M1 created\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadONE(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted invalid ONE trace: %v", verr)
		}
	})
}
