package trace

import (
	"fmt"
	"io"
)

// ContactSource yields contacts one at a time in nondecreasing Start
// order, returning io.EOF after the last one. It is the streaming
// counterpart of Trace.Contacts: the simulator driver and the knowledge
// builder both replay a source without materializing it.
type ContactSource interface {
	NextContact() (Contact, error)
}

// SliceSource adapts a materialized contact slice to ContactSource.
type SliceSource struct {
	contacts []Contact
	idx      int
}

// NewSliceSource returns a source over contacts, which must already be
// sorted by start time (as Trace.Contacts is).
func NewSliceSource(contacts []Contact) *SliceSource {
	return &SliceSource{contacts: contacts}
}

// NextContact implements ContactSource.
func (s *SliceSource) NextContact() (Contact, error) {
	if s.idx >= len(s.contacts) {
		return Contact{}, io.EOF
	}
	c := s.contacts[s.idx]
	s.idx++
	return c, nil
}

// MergeSource coalesces overlapping or touching same-pair contacts
// online, emitting exactly the sequence sim.MergeOverlaps produces for
// the materialized slice (same order, same merged intervals) while
// holding only the open merge window in memory.
//
// A merged contact is final once the raw read position's start time has
// passed its end: raw contacts arrive sorted by start, so no later raw
// contact can begin inside it and extend it. Finalized contacts are
// emitted in creation order, which is first-contact start order — the
// order MergeOverlaps preserves.
type MergeSource struct {
	src       ContactSource
	q         []Contact           // open window, creation order; q[0] is abs index base
	base      int64               // absolute index of q[0]
	head      int                 // next emit position within q
	last      map[[2]NodeID]int64 // pair -> absolute index of last merged contact
	rawStart  float64             // latest raw start read
	exhausted bool
	merged    int // raw contacts folded into an earlier one
	err       error
}

// NewMergeSource wraps src with online overlap merging.
func NewMergeSource(src ContactSource) *MergeSource {
	return &MergeSource{src: src, last: make(map[[2]NodeID]int64)}
}

// MergedCount returns how many raw contacts have been folded into an
// earlier overlapping contact so far — the streaming equivalent of
// len(raw) - len(MergeOverlaps(raw)).
func (m *MergeSource) MergedCount() int { return m.merged }

// NextContact implements ContactSource, emitting merged contacts.
func (m *MergeSource) NextContact() (Contact, error) {
	if m.err != nil {
		return Contact{}, m.err
	}
	// Pull raw contacts until the head of the window is final.
	for {
		if m.head < len(m.q) && (m.exhausted || m.q[m.head].End < m.rawStart) {
			break
		}
		if m.exhausted {
			m.err = io.EOF
			return Contact{}, m.err
		}
		c, err := m.src.NextContact()
		if err == io.EOF {
			m.exhausted = true
			continue
		}
		if err != nil {
			m.err = err
			return Contact{}, err
		}
		if c.Start < m.rawStart {
			m.err = fmt.Errorf("trace: merge: start %g before previous start %g", c.Start, m.rawStart)
			return Contact{}, m.err
		}
		m.rawStart = c.Start
		m.fold(c)
	}
	c := m.q[m.head]
	if abs, ok := m.last[mergeKey(c.A, c.B)]; ok && abs == m.base+int64(m.head) {
		delete(m.last, mergeKey(c.A, c.B))
	}
	m.head++
	if m.head == len(m.q) {
		m.q = m.q[:0]
		m.base += int64(m.head)
		m.head = 0
	} else if m.head >= 1024 && m.head*2 >= len(m.q) {
		n := copy(m.q, m.q[m.head:])
		m.q = m.q[:n]
		m.base += int64(m.head)
		m.head = 0
	}
	return c, nil
}

// fold merges one raw contact into the open window, mirroring
// MergeOverlaps: extend the pair's last merged contact when the new one
// starts at or before its end, append otherwise.
func (m *MergeSource) fold(c Contact) {
	key := mergeKey(c.A, c.B)
	if abs, ok := m.last[key]; ok {
		if i := int(abs - m.base); i >= m.head && c.Start <= m.q[i].End {
			if c.End > m.q[i].End {
				m.q[i].End = c.End
			}
			m.merged++
			return
		}
	}
	m.q = append(m.q, c)
	m.last[key] = m.base + int64(len(m.q)-1)
}

func mergeKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// AsyncSource prefetches batches from an inner source on a background
// goroutine so decode/merge work overlaps replay. Order is preserved
// exactly (single producer, single buffered channel consumer); the
// inner source's error, if any, is delivered after every contact that
// preceded it. Close joins the goroutine.
type AsyncSource struct {
	batches chan asyncBatch
	stop    chan struct{}
	done    chan struct{}

	cur  asyncBatch
	idx  int
	fin  error // sticky terminal error (io.EOF or the source's error)
	once bool  // Close called
}

type asyncBatch struct {
	contacts []Contact
	err      error // terminal: set only on the final batch
}

const asyncBatchSize = 4096

// NewAsyncSource starts the prefetch goroutine over src.
//
//dtn:workerpool prefetcher exits on stop and is joined by Close
func NewAsyncSource(src ContactSource) *AsyncSource {
	a := &AsyncSource{
		batches: make(chan asyncBatch, 4),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		batch := make([]Contact, 0, asyncBatchSize)
		for {
			c, err := src.NextContact()
			if err != nil {
				final := asyncBatch{contacts: batch, err: err}
				select {
				case a.batches <- final:
				case <-a.stop:
				}
				return
			}
			batch = append(batch, c)
			if len(batch) == asyncBatchSize {
				select {
				case a.batches <- asyncBatch{contacts: batch}:
				case <-a.stop:
					return
				}
				batch = make([]Contact, 0, asyncBatchSize)
			}
		}
	}()
	return a
}

// NextContact implements ContactSource.
func (a *AsyncSource) NextContact() (Contact, error) {
	for {
		if a.idx < len(a.cur.contacts) {
			c := a.cur.contacts[a.idx]
			a.idx++
			return c, nil
		}
		if a.fin != nil {
			return Contact{}, a.fin
		}
		if a.cur.err != nil {
			a.fin = a.cur.err
			return Contact{}, a.fin
		}
		b, ok := <-a.batches
		if !ok {
			a.fin = io.EOF
			return Contact{}, a.fin
		}
		a.cur, a.idx = b, 0
	}
}

// Close stops and joins the prefetch goroutine. Safe to call more than
// once; NextContact must not be called after Close.
func (a *AsyncSource) Close() {
	if a.once {
		return
	}
	a.once = true
	close(a.stop)
	<-a.done
}
