package trace

import (
	"errors"
	"fmt"

	"dtncache/internal/mathx"
)

// GenConfig parameterizes the synthetic trace generator.
//
// The generator substitutes for the proprietary CRAWDAD traces: each node
// draws an activity level from a bounded Pareto distribution (producing
// the strongly heterogeneous node popularity the paper validates in
// Fig. 4), pairwise contacts form Poisson processes with rate
// proportional to the product of the endpoint activities (optionally
// boosted within communities), and the base rate is calibrated so the
// expected total number of contacts matches TargetContacts, the quantity
// reported as "No. of internal contacts" in Table I.
type GenConfig struct {
	// Name labels the resulting trace.
	Name string
	// Nodes is the number of devices (must be >= 2).
	Nodes int
	// DurationSec is the trace length in seconds.
	DurationSec float64
	// GranularitySec is the device scan period; contact durations are
	// drawn as Granularity + Exp(mean 2*Granularity).
	GranularitySec float64
	// TargetContacts is the expected total contact count to calibrate to.
	TargetContacts int
	// ActivityAlpha is the bounded-Pareto shape for node activity; smaller
	// values produce stronger hubs. Typical: 1.2-2.0.
	ActivityAlpha float64
	// ActivityMax bounds the activity ratio between the most and least
	// active node. Typical: 10-30 (Fig. 4 shows up to tenfold skew).
	ActivityMax float64
	// EdgeProb is the probability that a node pair ever meets at all
	// (the contact-graph edge density). Real traces are far from
	// complete graphs: campus traces especially have low pair coverage.
	// 0 or 1 keeps the graph complete.
	EdgeProb float64
	// PairSkewAlpha/PairSkewMax add a heavy-tailed per-pair rate factor
	// (bounded Pareto on [1, PairSkewMax] with shape PairSkewAlpha):
	// real traces concentrate most contacts in a few recurring partner
	// pairs, leaving the typical edge weak. 0 disables the factor.
	PairSkewAlpha float64
	PairSkewMax   float64
	// DiurnalAmplitude in [0,1] concentrates contacts in daytime
	// (08:00-20:00 of each simulated day): 0 keeps the process
	// time-homogeneous, 1 silences the night completely. The total
	// contact count stays calibrated to TargetContacts.
	DiurnalAmplitude float64
	// Communities optionally partitions nodes into this many equal-size
	// communities; 0 disables community structure.
	Communities int
	// IntraBoost multiplies the contact rate of same-community pairs
	// (ignored when Communities == 0). Must be >= 1.
	IntraBoost float64
	// Seed drives all randomness; equal configs yield identical traces.
	Seed int64
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return errors.New("trace: generator needs >= 2 nodes")
	case c.DurationSec <= 0:
		return errors.New("trace: duration must be positive")
	case c.GranularitySec <= 0:
		return errors.New("trace: granularity must be positive")
	case c.TargetContacts <= 0:
		return errors.New("trace: target contact count must be positive")
	case c.ActivityAlpha <= 0:
		return errors.New("trace: activity alpha must be positive")
	case c.ActivityMax <= 1:
		return errors.New("trace: activity max must exceed 1")
	case c.EdgeProb < 0 || c.EdgeProb > 1:
		return errors.New("trace: edge probability must be in [0,1]")
	case c.PairSkewAlpha < 0 || (c.PairSkewAlpha > 0 && c.PairSkewMax <= 1):
		return errors.New("trace: pair skew needs alpha > 0 and max > 1")
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return errors.New("trace: diurnal amplitude must be in [0,1]")
	case c.Communities < 0:
		return errors.New("trace: communities must be >= 0")
	case c.Communities > 0 && c.IntraBoost < 1:
		return errors.New("trace: intra-community boost must be >= 1")
	case c.Communities > c.Nodes:
		return errors.New("trace: more communities than nodes")
	}
	return nil
}

// Generate produces a synthetic contact trace. It also returns the
// pairwise rate matrix used (ground truth), which tests use to check the
// online rate estimator against.
func Generate(cfg GenConfig) (*Trace, [][]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := mathx.NewRand(cfg.Seed)
	actRng := rng.Derive("activity")
	edgeRng := rng.Derive("edges")
	contactRng := rng.Derive("contacts")

	activity := make([]float64, cfg.Nodes)
	for i := range activity {
		activity[i] = actRng.Pareto(cfg.ActivityAlpha, 1, cfg.ActivityMax)
	}
	community := make([]int, cfg.Nodes)
	if cfg.Communities > 0 {
		for i := range community {
			community[i] = i % cfg.Communities
		}
	}
	edges := sampleEdges(cfg, edgeRng, activity)
	skew := sampleEdgeSkew(cfg, edgeRng.Derive("skew"), edges)

	// Calibrate the base rate so sum over pairs of min(base*w, cap) * D
	// equals the target contact count. The cap reflects a physical
	// limit: a pair in near-permanent contact cannot register more than
	// one contact every few scan periods, so heavy-tailed pair weights
	// would otherwise make the realized total undershoot the target.
	// Raising base monotonically raises the capped sum, so a few
	// multiplicative water-filling corrections converge.
	lambdaCap := 1.0 / (4 * cfg.GranularitySec)
	weights := make([]float64, 0, cfg.Nodes*(cfg.Nodes-1)/2)
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			if edges[i][j] {
				weights = append(weights, pairWeight(cfg, activity, community, i, j)*skew[i][j])
			}
		}
	}
	var weightSum float64
	for _, w := range weights {
		weightSum += w
	}
	if weightSum == 0 {
		return nil, nil, errors.New("trace: degenerate activity weights")
	}
	target := float64(cfg.TargetContacts)
	base := target / (weightSum * cfg.DurationSec)
	for iter := 0; iter < 20; iter++ {
		var got float64
		for _, w := range weights {
			l := base * w
			if l > lambdaCap {
				l = lambdaCap
			}
			got += l * cfg.DurationSec
		}
		if got >= 0.999*target || got == 0 {
			break
		}
		base *= target / got
	}

	rates := make([][]float64, cfg.Nodes)
	for i := range rates {
		rates[i] = make([]float64, cfg.Nodes)
	}
	tr := &Trace{
		Name:        cfg.Name,
		Nodes:       cfg.Nodes,
		Duration:    cfg.DurationSec,
		Granularity: cfg.GranularitySec,
	}
	tr.Contacts = make([]Contact, 0, cfg.TargetContacts+cfg.TargetContacts/8)
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			if !edges[i][j] {
				continue
			}
			lambda := base * pairWeight(cfg, activity, community, i, j) * skew[i][j]
			if lambda > lambdaCap {
				lambda = lambdaCap
			}
			rates[i][j], rates[j][i] = lambda, lambda
			if lambda <= 0 {
				continue
			}
			tr.Contacts = appendPairContacts(tr.Contacts, cfg, contactRng, NodeID(i), NodeID(j), lambda)
		}
	}
	tr.SortContacts()
	if err := tr.Validate(); err != nil {
		return nil, nil, fmt.Errorf("trace: generated invalid trace: %w", err)
	}
	return tr, rates, nil
}

// sampleEdges draws the contact-graph topology: each pair meets at all
// with probability EdgeProb, biased so active nodes keep more edges, and
// every node is guaranteed at least one edge (to the most active node)
// so no device is entirely unobservable.
func sampleEdges(cfg GenConfig, rng *mathx.Rand, activity []float64) [][]bool {
	n := cfg.Nodes
	edges := make([][]bool, n)
	for i := range edges {
		edges[i] = make([]bool, n)
	}
	p := cfg.EdgeProb
	if p == 0 {
		p = 1
	}
	// Normalize activities to [0,1] for the bias term.
	maxAct := 1.0
	for _, a := range activity {
		if a > maxAct {
			maxAct = a
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Hubs meet nearly everyone; peripheral pairs rarely meet.
			bias := (activity[i]/maxAct + activity[j]/maxAct) / 2
			keep := p * (0.5 + bias)
			if keep > 1 {
				keep = 1
			}
			if rng.Bernoulli(keep) {
				edges[i][j], edges[j][i] = true, true
			}
		}
	}
	// Guarantee a minimum degree of one.
	hub := 0
	for i, a := range activity {
		if a > activity[hub] {
			hub = i
		}
	}
	for i := 0; i < n; i++ {
		deg := 0
		for j := 0; j < n; j++ {
			if edges[i][j] {
				deg++
			}
		}
		if deg == 0 {
			other := hub
			if other == i {
				other = (i + 1) % n
			}
			edges[i][other], edges[other][i] = true, true
		}
	}
	return edges
}

// sampleEdgeSkew draws the per-pair heavy-tailed rate factors (1 when
// disabled).
func sampleEdgeSkew(cfg GenConfig, rng *mathx.Rand, edges [][]bool) [][]float64 {
	n := cfg.Nodes
	skew := make([][]float64, n)
	for i := range skew {
		skew[i] = make([]float64, n)
		for j := range skew[i] {
			skew[i][j] = 1
		}
	}
	if cfg.PairSkewAlpha == 0 {
		return skew
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !edges[i][j] {
				continue
			}
			f := rng.Pareto(cfg.PairSkewAlpha, 1, cfg.PairSkewMax)
			skew[i][j], skew[j][i] = f, f
		}
	}
	return skew
}

func pairWeight(cfg GenConfig, activity []float64, community []int, i, j int) float64 {
	w := activity[i] * activity[j]
	if cfg.Communities > 0 && community[i] == community[j] {
		w *= cfg.IntraBoost
	}
	return w
}

// appendPairContacts simulates the (possibly diurnally modulated)
// Poisson contact process of one pair via thinning and appends the
// resulting contacts, returning the grown slice like the append
// builtin. Contact durations are Granularity + Exp(mean
// 2*Granularity), truncated at the trace end; a following contact
// never overlaps the previous one.
func appendPairContacts(contacts []Contact, cfg GenConfig, rng *mathx.Rand, a, b NodeID, lambda float64) []Contact {
	// Thinning: draw candidates at the peak rate and accept with the
	// time-of-day intensity; scaling by the mean intensity keeps the
	// expected total calibrated.
	meanF := 1 - cfg.DiurnalAmplitude/2 // daytime is half of each day
	peak := lambda / meanF
	t := rng.Exp(peak)
	for t < cfg.DurationSec {
		// Short-circuit keeps the amplitude-0 path free of thinning draws
		// (and bit-identical to the homogeneous process).
		if cfg.DiurnalAmplitude > 0 &&
			rng.Float64() >= diurnalIntensity(cfg.DiurnalAmplitude, t) {
			t += rng.Exp(peak)
			continue
		}
		dur := cfg.GranularitySec + rng.Exp(1/(2*cfg.GranularitySec))
		end := t + dur
		if end > cfg.DurationSec {
			end = cfg.DurationSec
		}
		if end > t {
			contacts = append(contacts, Contact{A: a, B: b, Start: t, End: end})
		}
		next := t + rng.Exp(peak)
		if next <= end {
			next = end + 1e-6
		}
		t = next
	}
	return contacts
}

// diurnalIntensity is the acceptance probability of a candidate contact
// at time t: 1 during the day (08:00-20:00), 1-amplitude at night.
func diurnalIntensity(amplitude, t float64) float64 {
	if amplitude == 0 {
		return 1
	}
	hourOfDay := t / 3600
	hourOfDay -= float64(int(hourOfDay/24)) * 24
	if hourOfDay >= 8 && hourOfDay < 20 {
		return 1
	}
	return 1 - amplitude
}
