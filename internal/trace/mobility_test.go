package trace

import (
	"testing"
)

func rwpConfig() RWPConfig {
	return RWPConfig{
		Name: "rwp", Nodes: 20, DurationSec: 6 * 3600,
		ArenaMeters: 1000, RangeMeters: 50,
		SpeedMin: 0.5, SpeedMax: 2, PauseMaxSec: 120,
		ScanSec: 30, Seed: 1,
	}
}

func TestRWPValidate(t *testing.T) {
	if err := rwpConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*RWPConfig){
		func(c *RWPConfig) { c.Nodes = 1 },
		func(c *RWPConfig) { c.DurationSec = 0 },
		func(c *RWPConfig) { c.ArenaMeters = 0 },
		func(c *RWPConfig) { c.RangeMeters = 0 },
		func(c *RWPConfig) { c.RangeMeters = c.ArenaMeters },
		func(c *RWPConfig) { c.SpeedMin = 0 },
		func(c *RWPConfig) { c.SpeedMax = c.SpeedMin / 2 },
		func(c *RWPConfig) { c.PauseMaxSec = -1 },
	}
	for i, mutate := range bad {
		c := rwpConfig()
		mutate(&c)
		if _, err := GenerateRWP(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRWPGeneratesValidTrace(t *testing.T) {
	tr, err := GenerateRWP(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("no contacts generated")
	}
	// Contact durations are multiples of the scan period by construction.
	for _, c := range tr.Contacts[:10] {
		if c.Duration() < 30-1e-9 {
			t.Errorf("contact shorter than a scan: %+v", c)
		}
	}
}

func TestRWPDeterministic(t *testing.T) {
	a, err := GenerateRWP(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRWP(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("contacts differ")
		}
	}
}

func TestRWPRangeControlsDensity(t *testing.T) {
	small := rwpConfig()
	small.RangeMeters = 30
	big := rwpConfig()
	big.RangeMeters = 150
	a, err := GenerateRWP(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRWP(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Contacts) <= len(a.Contacts) {
		t.Errorf("larger range produced fewer contacts: %d vs %d",
			len(b.Contacts), len(a.Contacts))
	}
}

func TestRWPInterContactsNearExponential(t *testing.T) {
	// A classic empirical result (and the justification behind the
	// paper's Poisson contact model, Sec. III-B): random-waypoint
	// inter-contact times are close to exponential once normalized per
	// pair. The KS distance should be small — the geometric generator
	// independently corroborates the modeling assumption.
	cfg := rwpConfig()
	cfg.DurationSec = 24 * 3600
	tr, err := GenerateRWP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.AnalyzeInterContacts()
	if st.Samples < 100 {
		t.Fatalf("too few gaps: %d", st.Samples)
	}
	if st.KSDistance > 0.15 {
		t.Errorf("RWP gaps far from exponential: KS = %v", st.KSDistance)
	}
	if st.MeanSec <= 0 || st.CV <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

func TestRWPTraceDrivesSimulation(t *testing.T) {
	// The geometric trace must plug into the full pipeline.
	cfg := rwpConfig()
	cfg.Nodes = 15
	cfg.DurationSec = 12 * 3600
	cfg.RangeMeters = 80
	tr, err := GenerateRWP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	if s.Contacts != len(tr.Contacts) || s.Nodes != 15 {
		t.Errorf("stats = %+v", s)
	}
}
