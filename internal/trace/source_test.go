package trace

import (
	"errors"
	"io"
	"strings"
	"testing"

	"dtncache/internal/mathx"
)

// referenceMergeOverlaps is the materialized merge the simulator driver
// applies (sim.MergeOverlaps): fold a contact into the pair's last
// merged contact when it starts at or before its end, preserving
// first-appearance order. Duplicated here because trace cannot import
// sim; the cross-package equivalence pin lives in internal/sim.
func referenceMergeOverlaps(contacts []Contact) []Contact {
	out := make([]Contact, 0, len(contacts))
	last := make(map[[2]NodeID]int)
	for _, c := range contacts {
		key := mergeKey(c.A, c.B)
		if i, ok := last[key]; ok && c.Start <= out[i].End {
			if c.End > out[i].End {
				out[i].End = c.End
			}
			continue
		}
		out = append(out, c)
		last[key] = len(out) - 1
	}
	return out
}

func drainSource(t *testing.T, src ContactSource) []Contact {
	t.Helper()
	var out []Contact
	for {
		c, err := src.NextContact()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

func TestSliceSource(t *testing.T) {
	cs := []Contact{{A: 0, B: 1, Start: 1, End: 2}, {A: 1, B: 2, Start: 3, End: 4}}
	got := drainSource(t, NewSliceSource(cs))
	if len(got) != 2 || got[0] != cs[0] || got[1] != cs[1] {
		t.Fatalf("got %+v", got)
	}
	s := NewSliceSource(nil)
	if _, err := s.NextContact(); err != io.EOF {
		t.Fatalf("empty source: %v", err)
	}
}

func TestMergeSourceMatchesReference(t *testing.T) {
	// Random same-pair-heavy traffic so overlaps, touches, and chains of
	// extensions all occur.
	rng := mathx.NewRand(42)
	var raw []Contact
	start := 0.0
	for i := 0; i < 20000; i++ {
		start += rng.Float64() * 2
		a := NodeID(rng.Intn(6))
		b := NodeID(rng.Intn(6))
		if a == b {
			continue
		}
		raw = append(raw, Contact{A: a, B: b, Start: start, End: start + 1 + rng.Float64()*5})
	}
	want := referenceMergeOverlaps(raw)
	ms := NewMergeSource(NewSliceSource(raw))
	got := drainSource(t, ms)
	if len(got) != len(want) {
		t.Fatalf("merged count %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("merged contact %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if ms.MergedCount() != len(raw)-len(want) {
		t.Fatalf("MergedCount() = %d, want %d", ms.MergedCount(), len(raw)-len(want))
	}
}

// TestMergeSourceCompaction forces the shift-compaction path (head
// large and past half the window) and checks emission is unaffected.
func TestMergeSourceCompaction(t *testing.T) {
	// One pair keeps a long-lived open window while thousands of other
	// pairs pass through, so the window grows and the head advances far
	// behind the tail.
	var raw []Contact
	raw = append(raw, Contact{A: 0, B: 1, Start: 0, End: 1e6})
	for i := 0; i < 5000; i++ {
		s := 1 + float64(i)
		raw = append(raw, Contact{A: 2, B: NodeID(3 + i%7), Start: s, End: s + 0.5})
	}
	raw = append(raw, Contact{A: 0, B: 1, Start: 6000, End: 2e6}) // extends the open window
	want := referenceMergeOverlaps(raw)
	got := drainSource(t, NewMergeSource(NewSliceSource(raw)))
	if len(got) != len(want) {
		t.Fatalf("merged count %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("merged contact %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMergeSourceRejectsUnsorted(t *testing.T) {
	raw := []Contact{{A: 0, B: 1, Start: 5, End: 6}, {A: 0, B: 2, Start: 1, End: 2}}
	ms := NewMergeSource(NewSliceSource(raw))
	if _, err := ms.NextContact(); err == nil ||
		!strings.Contains(err.Error(), "start 1 before previous start 5") {
		t.Fatalf("unsorted accepted: %v", err)
	}
	if _, err := ms.NextContact(); err == nil {
		t.Fatal("error not sticky")
	}
}

type failSource struct {
	n   int
	err error
}

func (f *failSource) NextContact() (Contact, error) {
	if f.n == 0 {
		return Contact{}, f.err
	}
	f.n--
	return Contact{A: 0, B: 1, Start: float64(10 - f.n), End: float64(20 - f.n) + 10}, nil
}

func TestMergeSourcePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	ms := NewMergeSource(&failSource{n: 1, err: boom})
	if _, err := ms.NextContact(); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestAsyncSourcePreservesOrder(t *testing.T) {
	tr, err := GeneratePreset(Infocom05, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsyncSource(NewSliceSource(tr.Contacts))
	defer a.Close()
	got := drainSource(t, a)
	if len(got) != len(tr.Contacts) {
		t.Fatalf("count %d vs %d", len(got), len(tr.Contacts))
	}
	for i := range got {
		if got[i] != tr.Contacts[i] {
			t.Fatalf("contact %d: %+v vs %+v", i, got[i], tr.Contacts[i])
		}
	}
	if _, err := a.NextContact(); err != io.EOF {
		t.Fatalf("after drain: %v", err)
	}
}

func TestAsyncSourceDeliversErrorAfterContacts(t *testing.T) {
	boom := errors.New("boom")
	a := NewAsyncSource(&failSource{n: 3, err: boom})
	defer a.Close()
	for i := 0; i < 3; i++ {
		if _, err := a.NextContact(); err != nil {
			t.Fatalf("contact %d: %v", i, err)
		}
	}
	if _, err := a.NextContact(); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if _, err := a.NextContact(); !errors.Is(err, boom) {
		t.Fatal("error not sticky")
	}
}

func TestAsyncSourceCloseEarly(t *testing.T) {
	tr, err := GeneratePreset(Infocom05, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsyncSource(NewSliceSource(tr.Contacts))
	if _, err := a.NextContact(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // idempotent
}
