package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

// --- raw encoding helpers: build stream bytes without writer validation ---

func append16(b []byte, v uint16) []byte {
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], v)
	return append(b, s[:]...)
}

func append32(b []byte, v uint32) []byte {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	return append(b, s[:]...)
}

func appendF64(b []byte, v float64) []byte {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], math.Float64bits(v))
	return append(b, s[:]...)
}

func rawHeader(name string, nodes uint32, dur, gran float64) []byte {
	b := []byte(streamMagic)
	b = append16(b, streamVersion)
	b = append16(b, uint16(len(name)))
	b = append(b, name...)
	b = append32(b, nodes)
	b = appendF64(b, dur)
	b = appendF64(b, gran)
	return b
}

func rawChunk(b []byte, cs []Contact) []byte {
	n := len(cs)
	b = append32(b, uint32(n))
	b = append32(b, uint32(n*recordBytes))
	for _, c := range cs {
		b = append32(b, uint32(c.A))
	}
	for _, c := range cs {
		b = append32(b, uint32(c.B))
	}
	for _, c := range cs {
		b = appendF64(b, c.Start)
	}
	for _, c := range cs {
		b = appendF64(b, c.End)
	}
	return b
}

func rawTrailer(b []byte) []byte { return append32(append32(b, 0), 0) }

func rawStream(name string, nodes uint32, dur, gran float64, chunks ...[]Contact) []byte {
	b := rawHeader(name, nodes, dur, gran)
	for _, cs := range chunks {
		b = rawChunk(b, cs)
	}
	return rawTrailer(b)
}

func drainStream(t *testing.T, data []byte) []Contact {
	t.Helper()
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Contact
	for {
		c, err := sr.NextContact()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := WriteChunked(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChunked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Nodes != orig.Nodes ||
		got.Duration != orig.Duration || got.Granularity != orig.Granularity {
		t.Errorf("metadata mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Contacts) != len(orig.Contacts) {
		t.Fatalf("contact count %d vs %d", len(got.Contacts), len(orig.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != orig.Contacts[i] {
			t.Errorf("contact %d: %+v vs %+v", i, got.Contacts[i], orig.Contacts[i])
		}
	}
}

func TestChunkedRoundTripPreset(t *testing.T) {
	orig, err := GeneratePreset(MITReality, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChunked(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChunked(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contacts) != len(orig.Contacts) {
		t.Fatalf("contact count %d vs %d", len(got.Contacts), len(orig.Contacts))
	}
	for i := range got.Contacts {
		if got.Contacts[i] != orig.Contacts[i] {
			t.Fatalf("contact %d: %+v vs %+v", i, got.Contacts[i], orig.Contacts[i])
		}
	}
}

// TestStreamReaderMatchesSlice replays a multi-chunk stream record by
// record and checks it yields exactly the materialized slice, proving
// the iterator path and the converter path agree.
func TestStreamReaderMatchesSlice(t *testing.T) {
	cfg := GenConfig{
		Name: "stream", Nodes: 30, DurationSec: 4 * 86400, GranularitySec: 120,
		TargetContacts: 20000, ActivityAlpha: 1.5, ActivityMax: 10, Seed: 11,
	}
	orig, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Contacts) <= defaultChunkRecords {
		t.Fatalf("want > %d contacts to cover multiple chunks, got %d",
			defaultChunkRecords, len(orig.Contacts))
	}
	var buf bytes.Buffer
	if err := WriteChunked(&buf, orig); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m := sr.Meta(); m.Nodes != orig.Nodes || m.Duration != orig.Duration {
		t.Fatalf("meta = %+v", m)
	}
	for i, want := range orig.Contacts {
		got, err := sr.NextContact()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v vs %+v", i, got, want)
		}
	}
	if _, err := sr.NextContact(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
	if _, err := sr.NextContact(); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
	if sr.Records() != int64(len(orig.Contacts)) {
		t.Fatalf("Records() = %d, want %d", sr.Records(), len(orig.Contacts))
	}
}

// TestStreamReaderNormalizesPairs checks A>B records are swapped like
// SortContacts normalizes materialized traces.
func TestStreamReaderNormalizesPairs(t *testing.T) {
	data := rawStream("t", 4, 100, 0, []Contact{{A: 3, B: 1, Start: 0, End: 5}})
	got := drainStream(t, data)
	if len(got) != 1 || got[0] != (Contact{A: 1, B: 3, Start: 0, End: 5}) {
		t.Fatalf("got %+v", got)
	}
}

// TestStreamGoldenErrors pins one-line error messages, with chunk and
// record context, for every corruption class the reader must reject.
func TestStreamGoldenErrors(t *testing.T) {
	ok := []Contact{{A: 0, B: 1, Start: 1, End: 2}}
	valid := rawStream("t", 4, 100, 0, ok)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", append([]byte("BOGUS!"), valid[6:]...),
			`bad magic "BOGUS!"`},
		{"version skew", func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[6:], 99)
			return b
		}(), "unsupported version 99 (want 1)"},
		{"truncated header", valid[:10], "read name"},
		{"empty input", nil, "read magic"},
		{"zero nodes", rawStream("t", 0, 100, 0), "node count must be positive"},
		{"bad duration", rawStream("t", 4, -1, 0), "duration -1 not positive"},
		{"nan duration", rawStream("t", 4, math.NaN(), 0), "non-finite"},
		{"truncated before trailer", valid[:len(valid)-8],
			"chunk 2: truncated before trailer"},
		{"truncated payload", valid[:len(valid)-20],
			"chunk 1: truncated payload (1 records)"},
		{"trailer with payload", func() []byte {
			b := rawHeader("t", 4, 100, 0)
			b = append32(b, 0)
			b = append32(b, 7)
			return b
		}(), "chunk 1: trailer with payload length 7"},
		{"data after trailer", append(valid, 0xFF),
			"chunk 2: data after trailer"},
		{"oversized count", func() []byte {
			b := rawHeader("t", 4, 100, 0)
			b = append32(b, maxChunkRecords+1)
			b = append32(b, (maxChunkRecords+1)*recordBytes)
			return b
		}(), "exceeds limit"},
		{"payload length mismatch", func() []byte {
			b := rawHeader("t", 4, 100, 0)
			b = append32(b, 1)
			b = append32(b, 23)
			return b
		}(), "chunk 1: payload length 23 does not match 1 records"},
		{"nan start", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 1, Start: math.NaN(), End: 2}}),
			"chunk 1 record 0: non-finite contact time"},
		{"negative start", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 1, Start: -5, End: 2}}),
			"chunk 1 record 0: negative start time -5"},
		{"reversed interval", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 1, Start: 9, End: 3}}),
			"chunk 1 record 0: contact end 3 not after start 9"},
		{"self contact", rawStream("t", 4, 100, 0,
			[]Contact{{A: 2, B: 2, Start: 1, End: 2}}),
			"chunk 1 record 0: node 2 in contact with itself"},
		{"out of range", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 9, Start: 1, End: 2}}),
			"chunk 1 record 0: node ID outside declared range 0..3"},
		{"end after duration", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 1, Start: 1, End: 101}}),
			"chunk 1 record 0: contact end 101 after trace duration 100"},
		{"unsorted", rawStream("t", 4, 100, 0,
			[]Contact{{A: 0, B: 1, Start: 9, End: 12}, {A: 0, B: 2, Start: 3, End: 5}}),
			"chunk 1 record 1: start 3 before previous start 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadChunked(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error not one line: %q", err)
			}
		})
	}
}

// TestStreamReaderErrorSticky checks a record error poisons subsequent
// reads rather than resyncing mid-chunk.
func TestStreamReaderErrorSticky(t *testing.T) {
	data := rawStream("t", 4, 100, 0, []Contact{
		{A: 0, B: 1, Start: 1, End: 2},
		{A: 2, B: 2, Start: 3, End: 4}, // self contact
		{A: 0, B: 3, Start: 5, End: 6},
	})
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.NextContact(); err != nil {
		t.Fatal(err)
	}
	_, err1 := sr.NextContact()
	if err1 == nil {
		t.Fatal("self contact accepted")
	}
	_, err2 := sr.NextContact()
	if err2 != err1 {
		t.Fatalf("error not sticky: %v then %v", err1, err2)
	}
}

// TestStreamWriterRejects checks the writer enforces the reader's record
// invariants up front, with the running record number in the error.
func TestStreamWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, StreamMeta{Name: "t", Nodes: 4, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(Contact{A: 0, B: 1, Start: 5, End: 8}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		c    Contact
		want string
	}{
		{Contact{A: 0, B: 0, Start: 6, End: 8}, "record 1: node 0 in contact with itself"},
		{Contact{A: 0, B: 1, Start: 2, End: 8}, "record 1: start 2 before previous start 5"},
		{Contact{A: 0, B: 1, Start: 6, End: 200}, "after trace duration"},
		{Contact{A: 0, B: 7, Start: 6, End: 8}, "outside declared range"},
	}
	for _, tc := range cases {
		err := sw.Add(tc.c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Add(%+v) = %v, want %q", tc.c, err, tc.want)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(Contact{A: 0, B: 1, Start: 6, End: 8}); err == nil ||
		!strings.Contains(err.Error(), "write after Close") {
		t.Fatalf("Add after Close = %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestStreamWriterRejectsBadMeta(t *testing.T) {
	cases := []StreamMeta{
		{Name: "t", Nodes: 0, Duration: 100},
		{Name: "t", Nodes: math.MaxUint32 + 1, Duration: 100},
		{Name: "t", Nodes: 4, Duration: 0},
		{Name: "t", Nodes: 4, Duration: math.Inf(1)},
		{Name: "t", Nodes: 4, Duration: 100, Granularity: -1},
		{Name: strings.Repeat("x", math.MaxUint16+1), Nodes: 4, Duration: 100},
	}
	for _, m := range cases {
		if _, err := NewStreamWriter(io.Discard, m); err == nil {
			t.Errorf("meta %+v accepted", m)
		}
	}
}

func FuzzReadChunked(f *testing.F) {
	small := &Trace{Name: "f", Nodes: 4, Duration: 100, Granularity: 1,
		Contacts: []Contact{{A: 0, B: 1, Start: 1, End: 5}, {A: 1, B: 2, Start: 2, End: 9}}}
	var buf bytes.Buffer
	if err := WriteChunked(&buf, small); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(rawStream("t", 4, 100, 0, []Contact{{A: 3, B: 1, Start: 0, End: 5}}))
	f.Add(rawStream("", 0, -1, math.NaN()))
	f.Add([]byte(streamMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadChunked(bytes.NewReader(data))
		if err != nil {
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error not one line: %q", err)
			}
			return
		}
		// Anything accepted must be a fully valid trace that survives a
		// write/read round trip byte-identically.
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var rt bytes.Buffer
		if err := WriteChunked(&rt, tr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		tr2, err := ReadChunked(bytes.NewReader(rt.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(tr2.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip dropped contacts: %d vs %d", len(tr2.Contacts), len(tr.Contacts))
		}
	})
}
