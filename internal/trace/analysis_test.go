package trace

import (
	"math"
	"testing"

	"dtncache/internal/mathx"
)

func TestAnalyzeInterContactsEmpty(t *testing.T) {
	tr := &Trace{Nodes: 2, Duration: 100}
	st := tr.AnalyzeInterContacts()
	if st.Samples != 0 || st.PairsObserved != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestAnalyzeInterContactsKnownGaps(t *testing.T) {
	tr := &Trace{
		Nodes: 2, Duration: 1000,
		Contacts: []Contact{
			{A: 0, B: 1, Start: 0, End: 10},
			{A: 0, B: 1, Start: 100, End: 110},
			{A: 0, B: 1, Start: 300, End: 310},
		},
	}
	st := tr.AnalyzeInterContacts()
	if st.Samples != 2 || st.PairsObserved != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MeanSec-150) > 1e-9 { // gaps 100 and 200
		t.Errorf("mean = %v, want 150", st.MeanSec)
	}
}

func TestGeneratedTraceLooksExponential(t *testing.T) {
	// The synthetic generator produces homogeneous Poisson pair
	// processes (with mild distortion from the non-overlap rule), so the
	// normalized gaps must be close to unit-exponential: KS distance
	// small and CV of normalized-ish raw gaps in a plausible band.
	cfg := GenConfig{
		Nodes: 15, DurationSec: 60 * day, GranularitySec: 60,
		TargetContacts: 30000, ActivityAlpha: 1.5, ActivityMax: 5, Seed: 8,
	}
	tr, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.AnalyzeInterContacts()
	if st.Samples < 10000 {
		t.Fatalf("too few samples: %d", st.Samples)
	}
	if st.KSDistance > 0.05 {
		t.Errorf("KS distance %v too large for a Poisson process", st.KSDistance)
	}
}

func TestKSExponentialDetectsNonExponential(t *testing.T) {
	// A constant sample is maximally non-exponential.
	constant := make([]float64, 1000)
	for i := range constant {
		constant[i] = 1
	}
	if d := ksExponential(constant); d < 0.3 {
		t.Errorf("constant sample KS = %v, want large", d)
	}
	// An actual exponential sample passes.
	rng := mathx.NewRand(1)
	exp := make([]float64, 5000)
	for i := range exp {
		exp[i] = rng.Exp(1)
	}
	if d := ksExponential(exp); d > 0.03 {
		t.Errorf("exponential sample KS = %v, want small", d)
	}
	if ksExponential(nil) != 0 {
		t.Error("empty sample KS should be 0")
	}
}
