package experiment

import (
	"fmt"
	"testing"

	"dtncache/internal/metrics"
	"dtncache/internal/trace"
)

// tinyTrace builds a small synthetic trace so the double-run checks
// stay fast.
func tinyTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, _, err := trace.Generate(trace.GenConfig{
		Name:           "tiny",
		Nodes:          12,
		DurationSec:    2 * 86400,
		GranularitySec: 120,
		TargetContacts: 800,
		ActivityAlpha:  1.5,
		ActivityMax:    10,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// reportString renders every field of a report; %#v prints floats with
// round-trip precision, so equal strings mean bit-identical reports.
func reportString(rep metrics.Report) string {
	return fmt.Sprintf("%#v", rep)
}

// TestRunIsDeterministic is the determinism regression test: the same
// Setup with the same seed must produce byte-identical metrics output,
// which is the invariant the dtnlint analyzers guard statically.
func TestRunIsDeterministic(t *testing.T) {
	tr := tinyTrace(t)
	setup := Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		K:           2,
		Seed:        3,
	}
	for _, name := range []string{SchemeIntentional, SchemeCacheData} {
		first, err := Run(setup, name)
		if err != nil {
			t.Fatalf("%s run 1: %v", name, err)
		}
		second, err := Run(setup, name)
		if err != nil {
			t.Fatalf("%s run 2: %v", name, err)
		}
		if a, b := reportString(first), reportString(second); a != b {
			t.Errorf("%s: two runs with the same seed diverged:\n%s\n%s", name, a, b)
		}
	}
}

// TestParallelSweepIsDeterministic runs the same small sweep through
// the parallel dispatcher twice and requires byte-identical results:
// cell results must depend only on the cell index, never on worker
// scheduling. Running under -race (scripts/check.sh) additionally
// checks the dispatcher itself.
func TestParallelSweepIsDeterministic(t *testing.T) {
	tr := tinyTrace(t)
	cells := []struct {
		name string
		seed int64
	}{
		{SchemeIntentional, 3},
		{SchemeNoCache, 3},
		{SchemeIntentional, 4},
		{SchemeNoCache, 4},
	}
	sweep := func() (string, error) {
		out := make([]string, len(cells))
		err := forEachCell(len(cells), func(i int) error {
			rep, err := Run(Setup{
				Trace:       tr,
				AvgLifetime: 6 * 3600,
				K:           2,
				Seed:        cells[i].seed,
			}, cells[i].name)
			if err != nil {
				return err
			}
			out[i] = reportString(rep)
			return nil
		})
		if err != nil {
			return "", err
		}
		all := ""
		for i, s := range out {
			all += fmt.Sprintf("cell %d (%s seed %d): %s\n", i, cells[i].name, cells[i].seed, s)
		}
		return all, nil
	}
	first, err := sweep()
	if err != nil {
		t.Fatal(err)
	}
	second, err := sweep()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("parallel sweep diverged between runs:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
}
