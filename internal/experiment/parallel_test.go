package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCellRunsEveryCellOnce(t *testing.T) {
	const n = 200
	var calls [n]int32
	err := forEachCell(n, func(i int) error {
		atomic.AddInt32(&calls[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

func TestForEachCellPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachCell(64, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("cell %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestForEachCellSingleCell(t *testing.T) {
	boom := errors.New("boom")
	if err := forEachCell(1, func(int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("sequential path lost the error: %v", err)
	}
}

// TestForEachCellFastFail checks that after the first error the
// dispatcher stops handing out cells: with every cell failing
// instantly, the number of executed cells must stay near the worker
// count instead of approaching n.
func TestForEachCellFastFail(t *testing.T) {
	const n = 100000
	var calls int32
	boom := errors.New("boom")
	err := forEachCell(n, func(i int) error {
		atomic.AddInt32(&calls, 1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Each worker can execute at most a handful of cells before the
	// done channel wins the dispatch select; allow generous slack but
	// far below n.
	limit := int32(8 * runtime.GOMAXPROCS(0))
	if got := atomic.LoadInt32(&calls); got > limit {
		t.Fatalf("fast-fail dispatched %d cells (limit %d of %d)", got, limit, n)
	}
}

// TestForEachCellWorkerShutdown checks that forEachCell returns only
// after every worker has finished: no fn invocation may still be
// running (or start) once the call returns.
func TestForEachCellWorkerShutdown(t *testing.T) {
	var active, peak int32
	var mu sync.Mutex
	boom := errors.New("boom")
	err := forEachCell(1000, func(i int) error {
		cur := atomic.AddInt32(&active, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		defer atomic.AddInt32(&active, -1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := atomic.LoadInt32(&active); got != 0 {
		t.Fatalf("%d workers still active after return", got)
	}
	if peak > int32(runtime.GOMAXPROCS(0)) {
		t.Fatalf("concurrency exceeded worker cap: peak %d", peak)
	}
}
