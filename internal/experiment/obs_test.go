package experiment

import (
	"bytes"
	"strings"
	"testing"

	"dtncache/internal/obs"
)

// recordedTrace runs one Intentional simulation with a stream-recording
// observer attached and returns the raw NDJSON bytes.
func recordedTrace(t *testing.T, setup Setup) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewRecorder(obs.NewStreamSink(&buf))
	setup.Obs = rec
	if _, err := Run(setup, SchemeIntentional); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdentity pins the determinism contract of the run-trace:
// two runs at the same seed record byte-identical NDJSON (the scripts/
// check.sh gate asserts the same end-to-end through cmd/dtnsim).
func TestTraceByteIdentity(t *testing.T) {
	a := recordedTrace(t, smallSetup(t))
	b := recordedTrace(t, smallSetup(t))
	if len(a) == 0 {
		t.Fatal("recorded trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("traces differ across identical runs: %d vs %d bytes", len(a), len(b))
	}
	// A different seed must actually change the recorded stream.
	setup := smallSetup(t)
	setup.Seed = 2
	if bytes.Equal(a, recordedTrace(t, setup)) {
		t.Error("different seeds recorded identical traces")
	}
}

// TestObsDoesNotPerturbReport pins the read-only contract of the
// instrumentation: attaching a recorder (sink, metrics and phases all
// active) must not change a single report field.
func TestObsDoesNotPerturbReport(t *testing.T) {
	off, err := Run(smallSetup(t), SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	setup := smallSetup(t)
	var buf bytes.Buffer
	rec := obs.NewRecorder(obs.NewStreamSink(&buf), obs.WithPhases(obs.NewPhases(nil)))
	setup.Obs = rec
	on, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if off != on {
		t.Errorf("instrumentation perturbed the report:\noff %+v\non  %+v", off, on)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("instrumented run recorded nothing")
	}
}

// TestObsCountersMatchReport cross-checks the observability counters
// against the report the simulation computed independently.
func TestObsCountersMatchReport(t *testing.T) {
	setup := smallSetup(t)
	rec := obs.NewRecorder(nil)
	setup.Obs = rec
	rep, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	issued := rec.Counter("query", "issued").Value()
	answered := rec.Counter("query", "answered").Value()
	if int(issued) != rep.QueriesIssued {
		t.Errorf("query/issued = %d, report says %d", issued, rep.QueriesIssued)
	}
	if int(answered) != rep.QueriesSatisfied {
		t.Errorf("query/answered = %d, report says %d", answered, rep.QueriesSatisfied)
	}
	if rec.Counter("sim", "events_dispatched").Value() == 0 {
		t.Error("sim/events_dispatched never advanced")
	}
	if rec.Counter("contact", "transfers_delivered").Value() == 0 {
		t.Error("contact/transfers_delivered never advanced")
	}
	h := rec.Histogram("query", "delay_seconds", nil)
	if h.Total() != answered {
		t.Errorf("delay histogram has %d samples, want %d (one per answered query)",
			h.Total(), answered)
	}
	var sb strings.Builder
	if err := rec.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "query/issued") {
		t.Errorf("summary missing query/issued:\n%s", sb.String())
	}
}

// TestCellHookFires pins the -progress satellite's contract: every
// completed Run reports its scheme and a positive wall time to the
// registered hook, and clearing the hook stops the reports.
func TestCellHookFires(t *testing.T) {
	type cell struct {
		scheme string
		wallNs int64
	}
	var cells []cell
	SetCellHook(func(schemeName string, wallNs int64) {
		cells = append(cells, cell{schemeName, wallNs})
	})
	defer SetCellHook(nil)
	if _, err := Run(smallSetup(t), SchemeIntentional); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(cells))
	}
	if cells[0].scheme != SchemeIntentional || cells[0].wallNs <= 0 {
		t.Errorf("hook got %+v", cells[0])
	}
	SetCellHook(nil)
	if _, err := Run(smallSetup(t), SchemeNoCache); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Error("cleared hook still fired")
	}
}
