package experiment

import (
	"strconv"
	"strings"
	"testing"

	"dtncache/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.GeneratePreset(trace.Infocom05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallSetup(t *testing.T) Setup {
	return Setup{
		Trace:       smallTrace(t),
		AvgLifetime: 3 * hour,
		AvgSizeBits: 100e6,
		K:           3,
		Seed:        1,
	}
}

func TestFactoryKnownSchemes(t *testing.T) {
	names := append(append([]string{}, SchemeNames()...), ReplacementNames()...)
	for _, name := range names {
		f, err := Factory(name)
		if err != nil {
			t.Errorf("Factory(%q): %v", name, err)
			continue
		}
		s := f()
		want := name
		if s.Name() != want {
			t.Errorf("scheme %q reports name %q", name, s.Name())
		}
	}
}

func TestFactoryUnknownScheme(t *testing.T) {
	if _, err := Factory("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunRequiresTrace(t *testing.T) {
	if _, err := Run(Setup{}, SchemeNoCache); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if _, err := Run(smallSetup(t), "nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunEveryScheme(t *testing.T) {
	setup := smallSetup(t)
	names := append(append([]string{}, SchemeNames()...), ReplacementNames()[1:]...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := Run(setup, name)
			if err != nil {
				t.Fatal(err)
			}
			if rep.QueriesIssued == 0 {
				t.Error("no queries issued")
			}
			if rep.SuccessRatio < 0 || rep.SuccessRatio > 1 {
				t.Errorf("success = %v", rep.SuccessRatio)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	setup := smallSetup(t)
	a, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic runs: %+v vs %+v", a, b)
	}
}

func TestRunAveraged(t *testing.T) {
	setup := smallSetup(t)
	rep, err := RunAveraged(setup, SchemeNoCache, 2)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(setup, SchemeNoCache)
	if err != nil {
		t.Fatal(err)
	}
	// Two repeats accumulate counts; issued must exceed a single run's.
	if rep.QueriesIssued <= one.QueriesIssued {
		t.Errorf("averaged issued %d, single %d", rep.QueriesIssued, one.QueriesIssued)
	}
	if rep.SuccessRatio <= 0 || rep.SuccessRatio > 1 {
		t.Errorf("averaged ratio = %v", rep.SuccessRatio)
	}
}

func TestDefaultMetricT(t *testing.T) {
	cases := map[string]float64{
		string(trace.Infocom05):  3600,
		string(trace.Infocom06):  900,
		string(trace.MITReality): 7 * 86400,
		string(trace.UCSD):       3 * 86400,
		"custom":                 86400,
	}
	for name, want := range cases {
		if got := DefaultMetricT(name); got != want {
			t.Errorf("DefaultMetricT(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestIntentionalWinsOnSmallTrace(t *testing.T) {
	// The headline claim, checked at test scale: the intentional scheme
	// beats every baseline on success ratio.
	setup := smallSetup(t)
	setup.K = 5
	ours, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames()[1:] {
		rep, err := Run(setup, name)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SuccessRatio >= ours.SuccessRatio {
			t.Errorf("%s success %.3f >= intentional %.3f", name,
				rep.SuccessRatio, ours.SuccessRatio)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:      "Fig. X",
		Title:   "demo",
		Headers: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("x", 0.5)
	tbl.AddRow(12345.0, 42)
	out := tbl.Format()
	for _, want := range []string{"Fig. X", "demo", "a", "bee", "0.500", "12345", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Table(t *testing.T) {
	tbl, err := Fig7(FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Errorf("rows = %d, want 11", len(tbl.Rows))
	}
	// First row is p_min, last p_max.
	if tbl.Rows[0][1] != "0.450" || tbl.Rows[10][1] != "0.800" {
		t.Errorf("endpoints = %v, %v", tbl.Rows[0][1], tbl.Rows[10][1])
	}
}

func TestFig9Tables(t *testing.T) {
	a, b, err := Fig9(FigureOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Errorf("fig 9a rows = %d", len(a.Rows))
	}
	if len(b.Rows) != 10 {
		t.Errorf("fig 9b rows = %d", len(b.Rows))
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "Infocom05" || tbl.Rows[2][2] != "97" {
		t.Errorf("unexpected cells: %v", tbl.Rows)
	}
}

func TestFig4Skewed(t *testing.T) {
	tbl, err := Fig4(FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}

func TestNCLMetricsRange(t *testing.T) {
	tr := smallTrace(t)
	ms, err := NCLMetrics(tr, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != tr.Nodes {
		t.Fatalf("metrics len = %d", len(ms))
	}
	for i, m := range ms {
		if m < 0 || m > 1 {
			t.Errorf("metric[%d] = %v", i, m)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{
		ID:      "X",
		Title:   "demo",
		Headers: []string{"a", "b"},
		Notes:   []string{"caveat"},
	}
	tbl.AddRow("x", 1.5)
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1.500\n# caveat\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestAblationsQuick(t *testing.T) {
	tbl, err := Ablations(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 || v > 1 {
			t.Errorf("success cell %q", row[1])
		}
	}
}

func TestRobustnessQuick(t *testing.T) {
	tbl, err := Robustness(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Success under 25% drops must not exceed the lossless run for the
	// same scheme.
	intact, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	lossy, _ := strconv.ParseFloat(tbl.Rows[2][2], 64)
	if lossy > intact+0.02 {
		t.Errorf("drops improved success: %v -> %v", intact, lossy)
	}
}

func TestSetupAblationKnobs(t *testing.T) {
	setup := smallSetup(t)
	setup.DisableReplacement = true
	rep, err := Run(setup, SchemeIntentional)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplacementMoves != 0 {
		t.Errorf("replacement ran despite DisableReplacement: %d", rep.ReplacementMoves)
	}
	setup2 := smallSetup(t)
	setup2.UtilityFloor = 0.9
	if _, err := Run(setup2, SchemeIntentional); err != nil {
		t.Fatal(err)
	}
}

func TestEpidemicSchemeRegistered(t *testing.T) {
	rep, err := Run(smallSetup(t), SchemeEpidemic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueriesIssued == 0 {
		t.Error("epidemic issued no queries")
	}
}

func TestForEachCellOrderAndErrors(t *testing.T) {
	out := make([]int, 50)
	if err := forEachCell(50, func(i int) error {
		out[i] = i * 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	wantErr := errStop
	if err := forEachCell(10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); err != wantErr {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	if err := forEachCell(0, func(int) error { return nil }); err != nil {
		t.Errorf("empty: %v", err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestDelayBreakdownQuick(t *testing.T) {
	tbl, err := DelayBreakdown(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// With more NCLs the query-to-NCL part must shrink (Sec. V-E).
	k1, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	k5, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if !(k5 < k1) {
		t.Errorf("query->NCL part did not shrink with K: %v -> %v", k1, k5)
	}
}

func TestRoutingComparisonQuick(t *testing.T) {
	tbl, err := RoutingComparison(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Epidemic (row 2) must beat DirectDelivery (row 0) on delivery.
	direct, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	epi, _ := strconv.ParseFloat(tbl.Rows[2][1], 64)
	if epi <= direct {
		t.Errorf("epidemic %.3f <= direct %.3f", epi, direct)
	}
}

func TestCrossTraceQuick(t *testing.T) {
	tbl, err := CrossTrace(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // 2 traces x 2 schemes
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// On each trace the intentional scheme (even rows) must beat NoCache
	// (odd rows).
	for i := 0; i < len(tbl.Rows); i += 2 {
		ours, _ := strconv.ParseFloat(tbl.Rows[i][3], 64)
		noc, _ := strconv.ParseFloat(tbl.Rows[i+1][3], 64)
		if ours <= noc {
			t.Errorf("row %d: intentional %.3f <= NoCache %.3f", i, ours, noc)
		}
	}
}

func TestRWPComparisonQuick(t *testing.T) {
	tbl, err := RWPComparison(FigureOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	ours, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	noc, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if ours <= noc {
		t.Errorf("intentional %.3f <= NoCache %.3f under RWP mobility", ours, noc)
	}
}
