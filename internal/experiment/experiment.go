// Package experiment wires traces, workloads, schemes and metric
// collection into runnable experiments, and regenerates every table and
// figure of the paper's evaluation (Sec. VI). See DESIGN.md for the
// experiment index E1-E8.
//
// Since the engine extraction, this package is a batch driver over
// internal/engine: every cell of every sweep builds an engine.Config
// and replays it through the one shared engine code path. What remains
// here is driver logic — sweep orchestration, cell parallelism, result
// tables and the cell hook.
package experiment

import (
	"fmt"
	"sync/atomic"
	"time"

	"dtncache/internal/engine"
	"dtncache/internal/knowledge"
	"dtncache/internal/metrics"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

// Setup describes one simulation run: a trace, workload parameters
// (Sec. VI-A) and protocol configuration. It is the engine
// configuration under its historical name — the figure/table sweeps
// and the public dtncache API build Setups and hand them to Run.
type Setup = engine.Config

// DefaultMetricT returns the path-weight horizon T for a trace,
// following Sec. IV-B's per-trace values and its adaptivity rule.
func DefaultMetricT(name string) float64 { return engine.DefaultMetricT(name) }

// cellHookFn observes one completed simulation cell (see SetCellHook).
type cellHookFn func(schemeName string, wallNs int64)

var cellHook atomic.Value // cellHookFn

// SetCellHook registers fn to be called after every completed Run cell
// with the scheme name and the cell's wall-clock duration — the machinery
// behind cmd/experiments' -progress output. Pass nil to unregister. fn
// must be safe for concurrent calls: sweep cells run in parallel.
func SetCellHook(fn func(schemeName string, wallNs int64)) {
	cellHook.Store(cellHookFn(fn))
}

// Run executes one simulation of the named scheme through the engine
// and returns its metric report.
func Run(s Setup, schemeName string) (metrics.Report, error) {
	s.Scheme = schemeName
	eng, err := engine.New(s)
	if err != nil {
		return metrics.Report{}, err
	}
	hook, _ := cellHook.Load().(cellHookFn)
	start := time.Now()
	rep, err := eng.Run()
	if err != nil {
		return metrics.Report{}, err
	}
	// A streamed replay that lost its source mid-run saw only a prefix
	// of the trace; its report is not comparable to anything.
	if rerr := eng.ReplayErr(); rerr != nil {
		return metrics.Report{}, fmt.Errorf("streamed replay incomplete: %w", rerr)
	}
	if hook != nil {
		hook(schemeName, time.Since(start).Nanoseconds())
	}
	return rep, nil
}

// BuildEnv constructs the fully wired simulation environment Run
// executes, without running it. It exists so benchmarks and diagnostics
// can reach the underlying simulator (e.g. the processed-event counter
// behind the events/sec metric) while sharing the exact Setup
// normalization and workload generation of Run.
func BuildEnv(s Setup, schemeName string) (*scheme.Env, error) {
	s.Scheme = schemeName
	eng, err := engine.New(s)
	if err != nil {
		return nil, err
	}
	return eng.Env(), nil
}

// SharedKnowledge builds a knowledge provider for tr that concurrent
// Run cells share via Setup.Knowledge: one contact-rate → paths →
// NCL-metric pipeline per trace instead of one per environment. The
// provider is exact (Epsilon 0), so shared results are bit-identical to
// isolated ones. metricT = 0 picks the trace's default horizon, the
// same rule Setup normalization applies.
func SharedKnowledge(tr *trace.Trace, metricT float64) *knowledge.Provider {
	return engine.SharedKnowledge(tr, metricT)
}

// RunComparison runs every named scheme on the same setup concurrently,
// sharing one knowledge provider across all of them (built on demand
// when s.Knowledge is nil), and returns the reports in name order. The
// shared pipeline is exact, so each report is bit-identical to what an
// isolated Run of that scheme produces.
func RunComparison(s Setup, names []string) ([]metrics.Report, error) {
	s, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	if s.Knowledge == nil {
		s.Knowledge = SharedKnowledge(s.Trace, s.MetricT)
	}
	reports := make([]metrics.Report, len(names))
	if err := forEachCell(len(names), func(i int) error {
		rep, err := Run(s, names[i])
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	return reports, nil
}

// RunAveraged repeats Run with seeds seed, seed+1, ... and averages the
// headline metrics (the paper repeats each simulation "multiple times
// ... for statistical convergence").
func RunAveraged(s Setup, schemeName string, repeats int) (metrics.Report, error) {
	if repeats < 1 {
		repeats = 1
	}
	var agg metrics.Report
	base := s.Seed
	if base == 0 {
		base = 1
	}
	for i := 0; i < repeats; i++ {
		s.Seed = base + int64(i)
		rep, err := Run(s, schemeName)
		if err != nil {
			return metrics.Report{}, err
		}
		agg.QueriesIssued += rep.QueriesIssued
		agg.QueriesSatisfied += rep.QueriesSatisfied
		agg.SuccessRatio += rep.SuccessRatio
		agg.MeanDelaySec += rep.MeanDelaySec
		agg.MedianDelaySec += rep.MedianDelaySec
		agg.P90DelaySec += rep.P90DelaySec
		agg.MeanCopies += rep.MeanCopies
		agg.MeanBufferUse += rep.MeanBufferUse
		agg.RedundantDeliveries += rep.RedundantDeliveries
		agg.ReplacementMoves += rep.ReplacementMoves
		agg.DataBits += rep.DataBits
		agg.ControlBits += rep.ControlBits
		for p := range agg.MeanPhaseSec {
			agg.MeanPhaseSec[p] += rep.MeanPhaseSec[p] * float64(rep.PhaseSamples)
		}
		agg.PhaseSamples += rep.PhaseSamples
	}
	n := float64(repeats)
	agg.SuccessRatio /= n
	agg.MeanDelaySec /= n
	agg.MedianDelaySec /= n
	agg.P90DelaySec /= n
	agg.MeanCopies /= n
	agg.MeanBufferUse /= n
	if agg.PhaseSamples > 0 {
		for p := range agg.MeanPhaseSec {
			agg.MeanPhaseSec[p] /= float64(agg.PhaseSamples)
		}
	}
	return agg, nil
}

// Scheme names accepted by Factory (canonical definitions live in the
// engine; the historical spellings stay importable from here).
const (
	SchemeIntentional     = engine.SchemeIntentional
	SchemeNoCache         = engine.SchemeNoCache
	SchemeRandomCache     = engine.SchemeRandomCache
	SchemeCacheData       = engine.SchemeCacheData
	SchemeBundleCache     = engine.SchemeBundleCache
	SchemeEpidemic        = engine.SchemeEpidemic
	SchemeIntentionalFIFO = engine.SchemeIntentionalFIFO
	SchemeIntentionalLRU  = engine.SchemeIntentionalLRU
	SchemeIntentionalGDS  = engine.SchemeIntentionalGDS
)

// SchemeNames lists every runnable scheme, comparison order of Fig. 10.
func SchemeNames() []string { return engine.SchemeNames() }

// ReplacementNames lists the Fig. 12 replacement comparison.
func ReplacementNames() []string { return engine.ReplacementNames() }

// Factory returns a constructor for the named scheme.
func Factory(name string) (func() scheme.Scheme, error) { return engine.Factory(name) }
