// Package experiment wires traces, workloads, schemes and metric
// collection into runnable experiments, and regenerates every table and
// figure of the paper's evaluation (Sec. VI). See DESIGN.md for the
// experiment index E1-E8.
package experiment

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dtncache/internal/buffer"
	"dtncache/internal/core"
	"dtncache/internal/fault"
	"dtncache/internal/knowledge"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/scheme"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// Setup describes one simulation run: a trace, workload parameters
// (Sec. VI-A) and protocol configuration.
type Setup struct {
	// Trace is the contact trace to replay (required).
	Trace *trace.Trace
	// MetricT is the path-weight horizon T; 0 picks the paper's value
	// for the trace name (1h Infocom, 1wk Reality, 3d UCSD, else 1 day).
	MetricT float64
	// AvgLifetime is T_L (default 1 week).
	AvgLifetime float64
	// AvgSizeBits is s_avg (default 100 Mb).
	AvgSizeBits float64
	// ZipfExponent is the query exponent s (default 1).
	ZipfExponent float64
	// GenProb is p_G (default 0.2).
	GenProb float64
	// K is the NCL count (default 8).
	K int
	// NCLSelection picks the central-node selection strategy (the
	// paper's Eq. 3 metric by default; degree/contact-count/random are
	// ablation baselines).
	NCLSelection scheme.NCLStrategy
	// BufferMinBits/BufferMaxBits bound node buffers (default 200-600 Mb).
	BufferMinBits, BufferMaxBits float64
	// Response is the probabilistic response mode (default sigmoid).
	Response scheme.ResponseMode
	// ProbabilisticSelection toggles Algorithm 1 (default on).
	// Set DisableProbabilisticSelection to turn it off.
	DisableProbabilisticSelection bool
	// PopularityFromFirst picks the literal Eq. (6) variant.
	PopularityFromFirst bool
	// DisableReplacement turns the contact-time cache replacement off
	// entirely (ablation; affects the Intentional scheme only).
	DisableReplacement bool
	// UtilityFloor overrides the fresh-data utility floor of the
	// Intentional scheme's replacement (0 keeps the default 0.1).
	UtilityFloor float64
	// QuerySprayCopies enables spray-and-wait query dissemination with
	// this copy budget per NCL target (0/1 = single-copy gradient).
	QuerySprayCopies int
	// PerNodeInterests gives each requester its own Zipf rank
	// permutation (extension; the paper's global popularity is default).
	PerNodeInterests bool
	// DropProb injects transfer failures.
	DropProb float64
	// Fault configures the deterministic fault-injection engine: node
	// churn, contact truncation, transfer kills, NCL blackouts. The zero
	// value installs no injector.
	Fault fault.Config
	// QueryRetrySec re-issues still-unsatisfied queries after this
	// timeout with capped exponential backoff (0 = no retries).
	QueryRetrySec float64
	// QueryRetryMax caps retry attempts per query (0 = scheme default).
	QueryRetryMax int
	// NCLFailover lets the intentional scheme redirect pushes and query
	// fan-out from crashed central nodes to the next-ranked live node.
	NCLFailover bool
	// PushRetryBudget abandons a pending push after this many attempts
	// (0 = retry forever, the pre-fault behavior).
	PushRetryBudget int
	// CheckInvariants runs the runtime invariant checker every
	// maintenance sweep (tests and dtnsim -invariants).
	CheckInvariants bool
	// Seed drives workload and protocol randomness (default 1).
	Seed int64
	// Knowledge optionally shares a prebuilt knowledge provider across
	// runs (see SharedKnowledge). It must have been built for this
	// trace's merged contacts with the same MetricT; nil gives each run
	// its own provider. Knowledge is independent of Seed, workload and
	// scheme, so one provider serves every cell of a sweep over the
	// same trace.
	Knowledge *knowledge.Provider
	// Obs is the observability recorder wired into the environment (nil
	// = off). Metric updates are atomic, so one recorder may be shared
	// across parallel cells (RunComparison, sweeps) — but only a
	// sink-free recorder: trace encoding reuses one buffer, so a
	// recorder with a trace sink must be confined to a single
	// sequential run (where it records byte-identical traces at a fixed
	// seed). cmd/experiments keeps sweep-cell trace events on a
	// separate mutex-guarded recorder for this reason.
	Obs *obs.Recorder
}

// normalized fills defaults.
func (s Setup) normalized() (Setup, error) {
	if s.Trace == nil {
		return s, errors.New("experiment: Setup.Trace is required")
	}
	if s.MetricT == 0 {
		s.MetricT = DefaultMetricT(s.Trace.Name)
	}
	if s.AvgLifetime == 0 {
		s.AvgLifetime = 7 * 86400
	}
	if s.AvgSizeBits == 0 {
		s.AvgSizeBits = 100e6
	}
	if s.ZipfExponent == 0 {
		s.ZipfExponent = 1
	}
	if s.GenProb == 0 {
		s.GenProb = 0.2
	}
	if s.K == 0 {
		s.K = 8
	}
	if s.BufferMinBits == 0 {
		s.BufferMinBits = 200e6
	}
	if s.BufferMaxBits == 0 {
		s.BufferMaxBits = 600e6
	}
	if s.Response == 0 {
		s.Response = scheme.ResponseSigmoid
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// DefaultMetricT returns the path-weight horizon T for a trace,
// following Sec. IV-B's per-trace values and its adaptivity rule
// ("different values of T are used adaptively ... to ensure the
// differentiation of the NCL selection metric"): our synthetic Infocom06
// stand-in is denser than the real trace, so its horizon is 15 minutes
// rather than the paper's hour.
func DefaultMetricT(name string) float64 {
	switch trace.Preset(name) {
	case trace.Infocom05:
		return 3600
	case trace.Infocom06:
		return 900
	case trace.MITReality:
		return 7 * 86400
	case trace.UCSD:
		return 3 * 86400
	default:
		return 86400
	}
}

// cellHookFn observes one completed simulation cell (see SetCellHook).
type cellHookFn func(schemeName string, wallNs int64)

var cellHook atomic.Value // cellHookFn

// SetCellHook registers fn to be called after every completed Run cell
// with the scheme name and the cell's wall-clock duration — the machinery
// behind cmd/experiments' -progress output. Pass nil to unregister. fn
// must be safe for concurrent calls: sweep cells run in parallel.
func SetCellHook(fn func(schemeName string, wallNs int64)) {
	cellHook.Store(cellHookFn(fn))
}

// Run executes one simulation of the named scheme and returns its
// metric report.
func Run(s Setup, schemeName string) (metrics.Report, error) {
	env, err := BuildEnv(s, schemeName)
	if err != nil {
		return metrics.Report{}, err
	}
	hook, _ := cellHook.Load().(cellHookFn)
	if hook == nil {
		return env.Run(), nil
	}
	start := time.Now()
	rep := env.Run()
	hook(schemeName, time.Since(start).Nanoseconds())
	return rep, nil
}

// BuildEnv constructs the fully wired simulation environment Run
// executes, without running it. It exists so benchmarks and diagnostics
// can reach the underlying simulator (e.g. the processed-event counter
// behind the events/sec metric) while sharing the exact Setup
// normalization and workload generation of Run.
func BuildEnv(s Setup, schemeName string) (*scheme.Env, error) {
	s, err := s.normalized()
	if err != nil {
		return nil, err
	}
	doneBuild := s.Obs.Phase("build")
	defer doneBuild()
	factory, err := factoryForSetup(s, schemeName)
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(workload.Config{
		Nodes:            s.Trace.Nodes,
		GenProb:          s.GenProb,
		AvgLifetime:      s.AvgLifetime,
		AvgSizeBits:      s.AvgSizeBits,
		ZipfExponent:     s.ZipfExponent,
		PerNodeInterests: s.PerNodeInterests,
		Start:            s.Trace.Duration / 2,
		End:              s.Trace.Duration,
		Seed:             s.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := scheme.DefaultConfig(s.Trace.Duration)
	cfg.MetricT = s.MetricT
	cfg.NCLCount = s.K
	cfg.NCLSelection = s.NCLSelection
	cfg.BufferMinBits = s.BufferMinBits
	cfg.BufferMaxBits = s.BufferMaxBits
	cfg.Response = s.Response
	cfg.ProbabilisticSelection = !s.DisableProbabilisticSelection
	cfg.PopularityFromFirst = s.PopularityFromFirst
	cfg.DropProb = s.DropProb
	cfg.Fault = s.Fault
	cfg.QueryRetrySec = s.QueryRetrySec
	cfg.QueryRetryMax = s.QueryRetryMax
	cfg.NCLFailover = s.NCLFailover
	cfg.PushRetryBudget = s.PushRetryBudget
	cfg.CheckInvariants = s.CheckInvariants
	cfg.Seed = s.Seed
	cfg.Obs = s.Obs
	return scheme.NewEnvShared(s.Trace, w, cfg, factory(), s.Knowledge)
}

// SharedKnowledge builds a knowledge provider for tr that concurrent
// Run cells share via Setup.Knowledge: one contact-rate → paths →
// NCL-metric pipeline per trace instead of one per environment. The
// provider is exact (Epsilon 0), so shared results are bit-identical to
// isolated ones. metricT = 0 picks the trace's default horizon, the
// same rule Setup.normalized applies.
func SharedKnowledge(tr *trace.Trace, metricT float64) *knowledge.Provider {
	if metricT == 0 {
		metricT = DefaultMetricT(tr.Name)
	}
	return knowledge.NewProvider(knowledge.Params{
		Nodes:   tr.Nodes,
		MetricT: metricT,
	}, sim.MergeOverlaps(tr.Contacts))
}

// RunComparison runs every named scheme on the same setup concurrently,
// sharing one knowledge provider across all of them (built on demand
// when s.Knowledge is nil), and returns the reports in name order. The
// shared pipeline is exact, so each report is bit-identical to what an
// isolated Run of that scheme produces.
func RunComparison(s Setup, names []string) ([]metrics.Report, error) {
	s, err := s.normalized()
	if err != nil {
		return nil, err
	}
	if s.Knowledge == nil {
		s.Knowledge = SharedKnowledge(s.Trace, s.MetricT)
	}
	reports := make([]metrics.Report, len(names))
	if err := forEachCell(len(names), func(i int) error {
		rep, err := Run(s, names[i])
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	return reports, nil
}

// RunAveraged repeats Run with seeds seed, seed+1, ... and averages the
// headline metrics (the paper repeats each simulation "multiple times
// ... for statistical convergence").
func RunAveraged(s Setup, schemeName string, repeats int) (metrics.Report, error) {
	if repeats < 1 {
		repeats = 1
	}
	var agg metrics.Report
	base := s.Seed
	if base == 0 {
		base = 1
	}
	for i := 0; i < repeats; i++ {
		s.Seed = base + int64(i)
		rep, err := Run(s, schemeName)
		if err != nil {
			return metrics.Report{}, err
		}
		agg.QueriesIssued += rep.QueriesIssued
		agg.QueriesSatisfied += rep.QueriesSatisfied
		agg.SuccessRatio += rep.SuccessRatio
		agg.MeanDelaySec += rep.MeanDelaySec
		agg.MedianDelaySec += rep.MedianDelaySec
		agg.P90DelaySec += rep.P90DelaySec
		agg.MeanCopies += rep.MeanCopies
		agg.MeanBufferUse += rep.MeanBufferUse
		agg.RedundantDeliveries += rep.RedundantDeliveries
		agg.ReplacementMoves += rep.ReplacementMoves
		agg.DataBits += rep.DataBits
		agg.ControlBits += rep.ControlBits
		for p := range agg.MeanPhaseSec {
			agg.MeanPhaseSec[p] += rep.MeanPhaseSec[p] * float64(rep.PhaseSamples)
		}
		agg.PhaseSamples += rep.PhaseSamples
	}
	n := float64(repeats)
	agg.SuccessRatio /= n
	agg.MeanDelaySec /= n
	agg.MedianDelaySec /= n
	agg.P90DelaySec /= n
	agg.MeanCopies /= n
	agg.MeanBufferUse /= n
	if agg.PhaseSamples > 0 {
		for p := range agg.MeanPhaseSec {
			agg.MeanPhaseSec[p] /= float64(agg.PhaseSamples)
		}
	}
	return agg, nil
}

// Scheme names accepted by Factory.
const (
	SchemeIntentional     = "Intentional"
	SchemeNoCache         = "NoCache"
	SchemeRandomCache     = "RandomCache"
	SchemeCacheData       = "CacheData"
	SchemeBundleCache     = "BundleCache"
	SchemeEpidemic        = "Epidemic"
	SchemeIntentionalFIFO = "Intentional-FIFO"
	SchemeIntentionalLRU  = "Intentional-LRU"
	SchemeIntentionalGDS  = "Intentional-GDS"
)

// SchemeNames lists every runnable scheme, comparison order of Fig. 10.
func SchemeNames() []string {
	return []string{
		SchemeIntentional, SchemeBundleCache, SchemeCacheData,
		SchemeRandomCache, SchemeNoCache,
	}
}

// ReplacementNames lists the Fig. 12 replacement comparison.
func ReplacementNames() []string {
	return []string{
		SchemeIntentional, SchemeIntentionalFIFO,
		SchemeIntentionalLRU, SchemeIntentionalGDS,
	}
}

// factoryForSetup builds the scheme honoring Setup's ablation knobs
// (they only apply to the Intentional scheme).
func factoryForSetup(s Setup, name string) (func() scheme.Scheme, error) {
	if name == SchemeIntentional &&
		(s.DisableReplacement || s.UtilityFloor > 0 || s.QuerySprayCopies > 1) {
		var opts []core.Option
		if s.DisableReplacement {
			opts = append(opts, core.WithReplacement(false))
		}
		if s.UtilityFloor > 0 {
			opts = append(opts, core.WithUtilityFloor(s.UtilityFloor))
		}
		if s.QuerySprayCopies > 1 {
			opts = append(opts, core.WithQuerySpray(s.QuerySprayCopies))
		}
		return func() scheme.Scheme { return core.New(opts...) }, nil
	}
	return Factory(name)
}

// Factory returns a constructor for the named scheme.
func Factory(name string) (func() scheme.Scheme, error) {
	switch name {
	case SchemeIntentional:
		return func() scheme.Scheme { return core.New() }, nil
	case SchemeEpidemic:
		return func() scheme.Scheme { return scheme.NewEpidemic() }, nil
	case SchemeNoCache:
		return func() scheme.Scheme { return scheme.NewNoCache() }, nil
	case SchemeRandomCache:
		return func() scheme.Scheme { return scheme.NewRandomCache() }, nil
	case SchemeCacheData:
		return func() scheme.Scheme { return scheme.NewCacheData() }, nil
	case SchemeBundleCache:
		return func() scheme.Scheme { return scheme.NewBundleCache() }, nil
	case SchemeIntentionalFIFO:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(buffer.FIFO{})) }, nil
	case SchemeIntentionalLRU:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(buffer.LRU{})) }, nil
	case SchemeIntentionalGDS:
		return func() scheme.Scheme { return core.New(core.WithEvictionPolicy(&buffer.GreedyDualSize{})) }, nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", name)
	}
}
