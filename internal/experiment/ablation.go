package experiment

import (
	"dtncache/internal/knowledge"
	"dtncache/internal/metrics"
	"dtncache/internal/routing"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

// ablationVariant is one row of the Ablations table.
type ablationVariant struct {
	label  string
	scheme string
	mutate func(*Setup)
}

// Ablations quantifies the contribution of each design choice of the
// intentional caching scheme that DESIGN.md calls out, on the MIT
// Reality trace with the paper's default parameters:
//
//   - probabilistic response mode (Sec. V-C): global p_CR vs the sigmoid
//     of Eq. (4) vs always replying;
//   - Algorithm 1's Bernoulli selection vs the plain Eq. (7) knapsack;
//   - the Eq. (6) popularity window (remaining lifetime vs the literal
//     t_e - t_1 reading);
//   - cache replacement disabled entirely;
//   - the Epidemic flooding reference.
func Ablations(o FigureOptions) (*Table, error) {
	o = o.normalized()
	preset := trace.MITReality
	tl := 7 * day
	if o.Quick {
		preset = trace.Infocom05
		tl = 3 * hour
	}
	tr, err := trace.GeneratePreset(preset, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Ablations",
		Title: "Design-choice ablations (" + string(preset) + ", paper defaults)",
		Headers: []string{"variant", "success ratio", "delay (h)",
			"copies/item", "redundant", "data (Gb)"},
		Notes: []string{
			"'baseline' = sigmoid response, Algorithm 1 on, remaining-lifetime popularity, replacement on",
		},
	}
	variants := []ablationVariant{
		{"baseline", SchemeIntentional, func(*Setup) {}},
		{"response: global p_CR", SchemeIntentional, func(s *Setup) { s.Response = scheme.ResponseGlobal }},
		{"response: always", SchemeIntentional, func(s *Setup) { s.Response = scheme.ResponseAlways }},
		{"Algorithm 1 off (pure knapsack)", SchemeIntentional, func(s *Setup) { s.DisableProbabilisticSelection = true }},
		{"Eq.6 literal (t_e - t_1)", SchemeIntentional, func(s *Setup) { s.PopularityFromFirst = true }},
		{"replacement off", SchemeIntentional, func(s *Setup) { s.DisableReplacement = true }},
		{"utility floor 0.5", SchemeIntentional, func(s *Setup) { s.UtilityFloor = 0.5 }},
		{"NCLs by degree", SchemeIntentional, func(s *Setup) { s.NCLSelection = scheme.NCLByDegree }},
		{"NCLs by contact count", SchemeIntentional, func(s *Setup) { s.NCLSelection = scheme.NCLByContacts }},
		{"NCLs random", SchemeIntentional, func(s *Setup) { s.NCLSelection = scheme.NCLRandom }},
		{"query spray L=4", SchemeIntentional, func(s *Setup) { s.QuerySprayCopies = 4 }},
		{"per-node interests", SchemeIntentional, func(s *Setup) { s.PerNodeInterests = true }},
		{"Epidemic flooding reference", SchemeEpidemic, func(*Setup) {}},
	}
	if o.Quick {
		variants = variants[:3]
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(variants))
	if err := forEachCell(len(variants), func(i int) error {
		setup := Setup{Trace: tr, AvgLifetime: tl, K: 8, Seed: o.Seed, Knowledge: kb}
		variants[i].mutate(&setup)
		rep, err := RunAveraged(setup, variants[i].scheme, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, v := range variants {
		t.AddRow(v.label, reports[i].SuccessRatio, reports[i].MeanDelaySec/hour,
			reports[i].MeanCopies, reports[i].RedundantDeliveries, reports[i].DataBits/1e9)
	}
	return t, nil
}

// Robustness sweeps transfer failure injection: every transfer
// independently fails with the given probability even when the contact
// is long enough, exercising the protocol's tolerance to lossy links.
func Robustness(o FigureOptions) (*Table, error) {
	o = o.normalized()
	preset := trace.MITReality
	tl := 7 * day
	if o.Quick {
		preset = trace.Infocom05
		tl = 3 * hour
	}
	tr, err := trace.GeneratePreset(preset, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Robustness",
		Title: "Failure injection: per-transfer drop probability (" + string(preset) + ")",
		Headers: []string{"drop prob", "scheme", "success ratio",
			"delay (h)"},
	}
	probs := []float64{0, 0.1, 0.25, 0.5}
	if o.Quick {
		probs = []float64{0, 0.25}
	}
	schemes := []string{SchemeIntentional, SchemeNoCache}
	type cell struct {
		p    float64
		name string
	}
	var cells []cell
	for _, p := range probs {
		for _, name := range schemes {
			cells = append(cells, cell{p, name})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgLifetime: tl, K: 8, Seed: o.Seed, DropProb: cells[i].p,
			Knowledge: kb,
		}, cells[i].name, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(c.p, c.name, reports[i].SuccessRatio, reports[i].MeanDelaySec/hour)
	}
	return t, nil
}

// DelayBreakdown regenerates the qualitative analysis of Sec. V-E: the
// access delay of the intentional scheme decomposes into (i) the time
// for the query to reach a central node, (ii) the time for the central
// node's broadcast to reach a caching node that responds, and (iii) the
// time for the data to return. The paper predicts that growing K
// shortens parts (i) and (iii) (NCLs are nearer to everyone) while
// shortening the broadcast part only until caching disperses.
func DelayBreakdown(o FigureOptions) (*Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.Infocom06, o.Seed)
	if err != nil {
		return nil, err
	}
	ks := []int{1, 2, 3, 5, 8}
	if o.Quick {
		ks = []int{1, 5}
	}
	t := &Table{
		ID:    "Delay breakdown",
		Title: "Sec. V-E access-delay decomposition vs K (Infocom06, T_L=3h)",
		Headers: []string{"K", "query->NCL (h)", "broadcast (h)",
			"reply (h)", "total (h)", "queries"},
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(ks))
	if err := forEachCell(len(ks), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgLifetime: 3 * hour, K: ks[i], Seed: o.Seed,
			Knowledge: kb,
		}, SchemeIntentional, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, k := range ks {
		p := reports[i].MeanPhaseSec
		t.AddRow(k, p[0]/hour, p[1]/hour, p[2]/hour,
			(p[0]+p[1]+p[2])/hour, reports[i].PhaseSamples)
	}
	return t, nil
}

// RoutingComparison evaluates the classic DTN unicast forwarding
// strategies on a preset trace — the substrate the caching paper builds
// on (Sec. II): delivery ratio, delay, and transmissions per delivered
// message. The gradient strategy uses the paper's opportunistic-path
// weight (Sec. V-A) as its relay score.
func RoutingComparison(o FigureOptions) (*Table, error) {
	o = o.normalized()
	preset := trace.Infocom05
	lifetime := 8 * hour
	if o.Quick {
		lifetime = 4 * hour
	}
	tr, err := trace.GeneratePreset(preset, o.Seed)
	if err != nil {
		return nil, err
	}
	// Whole-trace path knowledge from raw contacts, as in Sec. IV-B; the
	// gradient relay score reads the snapshot's precomputed weight
	// matrix (safe under the parallel strategy evaluation below).
	metricT := DefaultMetricT(string(preset))
	snap := knowledge.NewProvider(knowledge.Params{
		Nodes:   tr.Nodes,
		MetricT: metricT,
	}, tr.Contacts).At(tr.Duration)
	strategies := []routing.Strategy{
		routing.DirectDelivery{},
		routing.FirstContact{},
		routing.Epidemic{},
		routing.SprayAndWait{},
		routing.NewPRoPHET(tr.Nodes),
		&routing.Gradient{Score: snap.MetricWeight},
	}
	if o.Quick {
		strategies = strategies[:3]
	}
	t := &Table{
		ID:    "Routing",
		Title: "DTN unicast forwarding strategies (" + string(preset) + ")",
		Headers: []string{"strategy", "delivery ratio", "delay (h)",
			"tx/delivery"},
		Notes: []string{
			"gradient = the paper's opportunistic-path-weight relay metric (Sec. V-A)",
		},
	}
	results := make([]routing.Result, len(strategies))
	if err := forEachCell(len(strategies), func(i int) error {
		res, err := routing.Evaluate(tr, strategies[i], routing.EvalConfig{
			Messages: 400, LifetimeSec: lifetime, Seed: o.Seed,
		})
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(res.Strategy, res.DeliveryRatio, res.MeanDelaySec/hour,
			res.TransmissionsPerDelivery)
	}
	return t, nil
}

// CrossTrace runs the five comparison schemes on all four trace presets
// (the paper evaluates only Infocom06 and MIT Reality), checking that
// the intentional scheme's advantage generalizes across contact
// environments. Lifetimes are scaled to each trace's tempo.
func CrossTrace(o FigureOptions) (*Table, error) {
	o = o.normalized()
	type env struct {
		preset trace.Preset
		tl     float64
	}
	envs := []env{
		{trace.Infocom05, 3 * hour},
		{trace.Infocom06, 3 * hour},
		{trace.MITReality, 7 * day},
		{trace.UCSD, 7 * day},
	}
	names := SchemeNames()
	if o.Quick {
		envs = envs[:2]
		names = []string{SchemeIntentional, SchemeNoCache}
	}
	t := &Table{
		ID:    "Cross-trace",
		Title: "Scheme comparison across all four trace presets",
		Headers: []string{"trace", "T_L", "scheme", "success ratio",
			"delay (h)", "copies/item"},
	}
	type cell struct {
		env  env
		name string
	}
	var cells []cell
	traces := make(map[trace.Preset]*trace.Trace, len(envs))
	shared := make(map[trace.Preset]*knowledge.Provider, len(envs))
	for _, e := range envs {
		tr, err := trace.GeneratePreset(e.preset, o.Seed)
		if err != nil {
			return nil, err
		}
		traces[e.preset] = tr
		shared[e.preset] = SharedKnowledge(tr, 0)
		for _, name := range names {
			cells = append(cells, cell{e, name})
		}
	}
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		c := cells[i]
		rep, err := RunAveraged(Setup{
			Trace: traces[c.env.preset], AvgLifetime: c.env.tl, K: 8,
			Seed: o.Seed, Knowledge: shared[c.env.preset],
		}, c.name, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(string(c.env.preset), fmtDuration(c.env.tl), c.name,
			reports[i].SuccessRatio, reports[i].MeanDelaySec/hour,
			reports[i].MeanCopies)
	}
	return t, nil
}

// RWPComparison runs the scheme comparison on a random-waypoint
// mobility trace: contacts emerge from geometry instead of the Poisson
// model the paper (and our Table I stand-ins) assume, checking that the
// intentional scheme's advantage is not an artifact of the contact
// model.
func RWPComparison(o FigureOptions) (*Table, error) {
	o = o.normalized()
	cfg := trace.RWPConfig{
		Name: "rwp-city", Nodes: 60, DurationSec: 4 * day,
		ArenaMeters: 2500, RangeMeters: 60,
		SpeedMin: 0.5, SpeedMax: 2.5, PauseMaxSec: 300,
		ScanSec: 60, Seed: o.Seed,
	}
	if o.Quick {
		cfg.Nodes = 25
		cfg.DurationSec = 2 * day
		cfg.ArenaMeters = 1200
	}
	tr, err := trace.GenerateRWP(cfg)
	if err != nil {
		return nil, err
	}
	names := SchemeNames()
	if o.Quick {
		names = []string{SchemeIntentional, SchemeNoCache}
	}
	t := &Table{
		ID:    "RWP",
		Title: "Scheme comparison under random-waypoint mobility",
		Headers: []string{"scheme", "success ratio", "delay (h)",
			"copies/item"},
		Notes: []string{
			"geometric contacts (no Poisson assumption); T_L = 6h, K = 6, s_avg = 20Mb",
		},
	}
	kb := SharedKnowledge(tr, 1800)
	reports := make([]metrics.Report, len(names))
	if err := forEachCell(len(names), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, MetricT: 1800, AvgLifetime: 6 * hour,
			AvgSizeBits: 20e6, K: 6, Seed: o.Seed,
			BufferMinBits: 50e6, BufferMaxBits: 150e6, Knowledge: kb,
		}, names[i], o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour, reports[i].MeanCopies)
	}
	return t, nil
}
