package experiment

import (
	"sync"
	"testing"

	"dtncache/internal/trace"
)

var (
	comparisonOnce  sync.Once
	comparisonTrace *trace.Trace
)

func comparisonSetup(b *testing.B) Setup {
	b.Helper()
	comparisonOnce.Do(func() {
		// A knowledge-bound cell: a large sparse population (vehicular /
		// rural DTN regime) where the contact-rate → paths → metric
		// pipeline, not event replay, dominates a run. The Table I
		// conference traces are the opposite regime (small n, dense
		// contacts), so they mostly measure the simulator.
		tr, _, err := trace.Generate(trace.GenConfig{
			Name:           "bench-sparse",
			Nodes:          200,
			DurationSec:    30 * 86400,
			GranularitySec: 60,
			TargetContacts: 10000,
			ActivityAlpha:  1.3,
			ActivityMax:    25,
			EdgeProb:       0.05,
			PairSkewAlpha:  0.6,
			PairSkewMax:    500,
			Communities:    8,
			IntraBoost:     8,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		comparisonTrace = tr
	})
	return Setup{Trace: comparisonTrace, Seed: 1, MetricT: 3 * 86400}
}

var (
	replayOnce      sync.Once
	replayTrace     *trace.Trace
	replaySetup     Setup
	replayBenchErr  error
	replayPrewarmed bool
)

// replayBoundSetup builds a replay-bound cell: a dense conference-style
// trace (small n, many contacts — the Table I regime) with the
// knowledge provider prebuilt and shared, so per-iteration cost is the
// trace replay itself: the event loop, per-node message stores, and
// buffers.
func replayBoundSetup(b *testing.B) Setup {
	b.Helper()
	replayOnce.Do(func() {
		tr, _, err := trace.Generate(trace.GenConfig{
			Name:           "bench-dense",
			Nodes:          60,
			DurationSec:    14 * 86400,
			GranularitySec: 30,
			TargetContacts: 60000,
			ActivityAlpha:  1.2,
			ActivityMax:    15,
			EdgeProb:       0.3,
			Communities:    4,
			IntraBoost:     4,
			Seed:           1,
		})
		if err != nil {
			replayBenchErr = err
			return
		}
		replayTrace = tr
		replaySetup = Setup{
			Trace:       tr,
			Seed:        1,
			MetricT:     86400,
			AvgLifetime: 2 * 86400,
			Knowledge:   SharedKnowledge(tr, 86400),
		}
	})
	if replayBenchErr != nil {
		b.Fatal(replayBenchErr)
	}
	if !replayPrewarmed {
		// One untimed run fills the shared provider's snapshot cache, so
		// measured iterations never pay for knowledge building.
		if _, err := Run(replaySetup, SchemeIntentional); err != nil {
			b.Fatal(err)
		}
		replayPrewarmed = true
	}
	return replaySetup
}

// BenchmarkReplaySingleScheme is the headline replay benchmark: one
// Intentional-scheme run over a dense trace with all knowledge
// prebuilt. Its speedup against BENCH_pr3_baseline.json is the
// PR 3 acceptance number; events/sec is the engine throughput.
func BenchmarkReplaySingleScheme(b *testing.B) {
	setup := replayBoundSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		env, err := BuildEnv(setup, SchemeIntentional)
		if err != nil {
			b.Fatal(err)
		}
		rep := env.Run()
		if rep.QueriesIssued == 0 {
			b.Fatal("replay produced no queries")
		}
		events += env.Sim.Processed()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkRunComparison measures a full multi-scheme comparison cell —
// all five Fig. 10 schemes on MIT Reality — with the knowledge pipeline
// built once and shared across schemes via the Provider.
func BenchmarkRunComparison(b *testing.B) {
	setup := comparisonSetup(b)
	names := SchemeNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunComparison(setup, names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunComparisonIsolated is the seed behavior for the same
// cell: identical concurrency (forEachCell), but every scheme builds
// its own knowledge pipeline, so the only difference from
// BenchmarkRunComparison is the sharing.
func BenchmarkRunComparisonIsolated(b *testing.B) {
	setup := comparisonSetup(b)
	names := SchemeNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := forEachCell(len(names), func(j int) error {
			_, err := Run(setup, names[j])
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}
