package experiment

import (
	"sync"
	"testing"

	"dtncache/internal/trace"
)

var (
	comparisonOnce  sync.Once
	comparisonTrace *trace.Trace
)

func comparisonSetup(b *testing.B) Setup {
	b.Helper()
	comparisonOnce.Do(func() {
		// A knowledge-bound cell: a large sparse population (vehicular /
		// rural DTN regime) where the contact-rate → paths → metric
		// pipeline, not event replay, dominates a run. The Table I
		// conference traces are the opposite regime (small n, dense
		// contacts), so they mostly measure the simulator.
		tr, _, err := trace.Generate(trace.GenConfig{
			Name:           "bench-sparse",
			Nodes:          200,
			DurationSec:    30 * 86400,
			GranularitySec: 60,
			TargetContacts: 10000,
			ActivityAlpha:  1.3,
			ActivityMax:    25,
			EdgeProb:       0.05,
			PairSkewAlpha:  0.6,
			PairSkewMax:    500,
			Communities:    8,
			IntraBoost:     8,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		comparisonTrace = tr
	})
	return Setup{Trace: comparisonTrace, Seed: 1, MetricT: 3 * 86400}
}

// BenchmarkRunComparison measures a full multi-scheme comparison cell —
// all five Fig. 10 schemes on MIT Reality — with the knowledge pipeline
// built once and shared across schemes via the Provider.
func BenchmarkRunComparison(b *testing.B) {
	setup := comparisonSetup(b)
	names := SchemeNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunComparison(setup, names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunComparisonIsolated is the seed behavior for the same
// cell: identical concurrency (forEachCell), but every scheme builds
// its own knowledge pipeline, so the only difference from
// BenchmarkRunComparison is the sharing.
func BenchmarkRunComparisonIsolated(b *testing.B) {
	setup := comparisonSetup(b)
	names := SchemeNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := forEachCell(len(names), func(j int) error {
			_, err := Run(setup, names[j])
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}
