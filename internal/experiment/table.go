package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a formatted result table for one reproduced figure or table.
type Table struct {
	// ID is the experiment identifier ("Table I", "Fig. 10a", ...).
	ID string
	// Title describes what the table shows.
	Title string
	// Headers name the columns.
	Headers []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes carry caveats (substitutions, scaled runs, ...).
	Notes []string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV (headers first; notes become trailing
// comment lines) for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
