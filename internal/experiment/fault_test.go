package experiment

import (
	"bytes"
	"strconv"
	"testing"

	"dtncache/internal/fault"
)

// faultedSetup is smallSetup with the full chaos stack armed: churn
// with buffer wipe from the trace midpoint, plus the recovery protocol
// (NCL failover, query retry, bounded push budget) so the failure and
// recovery paths both land in the recorded trace.
func faultedSetup(t *testing.T) Setup {
	setup := smallSetup(t)
	setup.Fault = FaultChurn(2, 2*hour, setup.Trace.Duration/2)
	setup.NCLFailover = true
	setup.QueryRetrySec = setup.AvgLifetime / 8
	setup.PushRetryBudget = 6
	return setup
}

// TestFaultedTraceByteIdentity extends the determinism contract to
// faulted runs: churn, wipes, failover and retries are all drawn from
// the seeded RNG tree, so two invocations at the same seed must record
// byte-identical NDJSON.
func TestFaultedTraceByteIdentity(t *testing.T) {
	a := recordedTrace(t, faultedSetup(t))
	b := recordedTrace(t, faultedSetup(t))
	if len(a) == 0 {
		t.Fatal("faulted run recorded nothing")
	}
	if !bytes.Contains(a, []byte(`"node-down"`)) {
		t.Fatal("faulted trace contains no node-down events; churn never fired")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("faulted traces differ across identical runs: %d vs %d bytes",
			len(a), len(b))
	}
	setup := faultedSetup(t)
	setup.Seed = 2
	if bytes.Equal(a, recordedTrace(t, setup)) {
		t.Error("different seeds recorded identical faulted traces")
	}
}

// TestZeroIntensityFaultMatchesNoInjector pins the "zero config, zero
// cost" contract end to end: a Fault config whose models are all
// disabled must not install an engine, consume RNG draws, or perturb a
// single recorded byte relative to a run with no Fault field at all.
func TestZeroIntensityFaultMatchesNoInjector(t *testing.T) {
	base := recordedTrace(t, smallSetup(t))
	zeroed := smallSetup(t)
	// WipeOnCrash and a start time arm nothing on their own.
	zeroed.Fault = fault.Config{WipeOnCrash: true, ChurnStartSec: 10}
	if !zeroed.Fault.Zero() {
		t.Fatal("test config unexpectedly arms a fault model")
	}
	if got := recordedTrace(t, zeroed); !bytes.Equal(base, got) {
		t.Errorf("zero-intensity fault config perturbed the trace: %d vs %d bytes",
			len(base), len(got))
	}
	if !FaultChurn(0, 2*hour, 100).Zero() {
		t.Error("FaultChurn with rate 0 must return the zero Config")
	}
}

// TestDegradationFailoverWins asserts the headline property of the
// chaos sweep: the recovery protocol must pay for itself, with
// Intentional+failover beating plain Intentional on success ratio at
// every nonzero fault intensity, across the full quick grid
// (>= 3 schemes x >= 4 intensities).
func TestDegradationFailoverWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-mode degradation sweep")
	}
	tbl, err := Degradation(FigureOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// rows: [crashes/node/day, scheme, success ratio, delay (h)]
	success := map[float64]map[string]float64{}
	schemes := map[string]bool{}
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			t.Fatalf("unparseable rate %q: %v", row[0], err)
		}
		sr, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparseable success ratio %q: %v", row[2], err)
		}
		if success[rate] == nil {
			success[rate] = map[string]float64{}
		}
		success[rate][row[1]] = sr
		schemes[row[1]] = true
	}
	if len(schemes) < 3 {
		t.Errorf("sweep covers %d schemes, want >= 3", len(schemes))
	}
	if len(success) < 4 {
		t.Errorf("sweep covers %d intensities, want >= 4", len(success))
	}
	for rate, byScheme := range success {
		plain, okP := byScheme["Intentional"]
		failover, okF := byScheme["Intentional+failover"]
		if !okP || !okF {
			t.Fatalf("rate %g missing a variant: %v", rate, byScheme)
		}
		if rate == 0 {
			continue
		}
		if failover <= plain {
			t.Errorf("rate %g: failover success %.3f does not beat plain %.3f",
				rate, failover, plain)
		}
	}
}
