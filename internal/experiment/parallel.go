package experiment

import (
	"runtime"
	"sync"
)

// forEachCell runs fn(i) for every i in [0, n) concurrently on up to
// GOMAXPROCS workers and returns the first error. Simulation runs are
// fully independent (each builds its own environment and RNG streams),
// so sweep cells parallelize without affecting determinism — results
// are written into caller-owned slots indexed by i.
func forEachCell(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
