package experiment

import (
	"runtime"
	"sync"
)

// forEachCell runs fn(i) for every i in [0, n) concurrently on up to
// GOMAXPROCS workers and returns the first error. Simulation runs are
// fully independent (each builds its own environment and RNG streams),
// so sweep cells parallelize without affecting determinism — results
// are written into caller-owned slots indexed by i.
//
// The dispatch fails fast: after the first error no new cells are
// handed out, in-flight cells finish, and the already-recorded first
// error is returned. Workers that error stop immediately.
//
//dtn:workerpool WaitGroup-joined sweep-cell fan-out with fail-fast done channel
func forEachCell(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	done := make(chan struct{}) // closed once, with firstErr set
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			close(done)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}
