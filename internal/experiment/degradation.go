package experiment

import (
	"fmt"

	"dtncache/internal/fault"
	"dtncache/internal/metrics"
	"dtncache/internal/trace"
)

// degradationVariant is one scheme column of the Degradation table.
type degradationVariant struct {
	label  string
	scheme string
	mutate func(*Setup)
}

// Degradation sweeps fault intensity — expected node crashes per node
// per day under the two-state churn model, with buffers wiped on every
// crash — and reports how each scheme's data access degrades. Churn
// starts at the trace midpoint, so the whole evaluation half (where the
// workload lives) runs under faults. The "Intentional+failover" variant
// enables the full recovery stack: NCL failover to the next-ranked live
// node, query re-issue with exponential backoff, and a bounded push
// retry budget; comparing it to the plain Intentional column isolates
// the value of the recovery protocol at every intensity.
//
// FigureOptions.FaultChurnPerDay collapses the intensity axis to
// {0, that value}; FaultDowntimeSec overrides the mean downtime per
// crash (default 4h, 2h in quick mode).
func Degradation(o FigureOptions) (*Table, error) {
	o = o.normalized()
	preset := trace.MITReality
	tl := 7 * day
	downtime := 4 * hour
	intensities := []float64{0, 0.5, 1, 2, 4}
	if o.Quick {
		preset = trace.Infocom05
		tl = 3 * hour
		downtime = 2 * hour
		intensities = []float64{0, 1, 2, 4}
	}
	if o.FaultDowntimeSec > 0 {
		downtime = o.FaultDowntimeSec
	}
	if o.FaultChurnPerDay > 0 {
		intensities = []float64{0, o.FaultChurnPerDay}
	}
	tr, err := trace.GeneratePreset(preset, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Degradation",
		Title: fmt.Sprintf("Chaos degradation: node churn with buffer wipe (%s, downtime %s)",
			preset, fmtDuration(downtime)),
		Headers: []string{"crashes/node/day", "scheme", "success ratio",
			"delay (h)"},
		Notes: []string{
			"churn starts at the trace midpoint; '+failover' = NCL failover + query retry/backoff + bounded push budget",
		},
	}
	retryAfter := tl / 8
	variants := []degradationVariant{
		{"Intentional", SchemeIntentional, func(*Setup) {}},
		{"Intentional+failover", SchemeIntentional, func(s *Setup) {
			s.NCLFailover = true
			s.QueryRetrySec = retryAfter
			s.PushRetryBudget = 6
		}},
		{"NoCache", SchemeNoCache, func(*Setup) {}},
	}
	type cell struct {
		rate float64
		v    degradationVariant
	}
	var cells []cell
	for _, rate := range intensities {
		for _, v := range variants {
			cells = append(cells, cell{rate, v})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		c := cells[i]
		setup := Setup{
			Trace: tr, AvgLifetime: tl, K: 8, Seed: o.Seed, Knowledge: kb,
			Fault: FaultChurn(c.rate, downtime, tr.Duration/2),
		}
		c.v.mutate(&setup)
		rep, err := RunAveraged(setup, c.v.scheme, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(c.rate, c.v.label, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour)
	}
	return t, nil
}

// FaultChurn translates an operator-level fault intensity — expected
// crashes per node per day and mean downtime per crash — into the churn
// engine's mean up/down times, with buffers wiped on every crash.
// rate 0 returns the zero Config (no injector at all).
func FaultChurn(ratePerDay, downtimeSec, startSec float64) fault.Config {
	if ratePerDay <= 0 {
		return fault.Config{}
	}
	return fault.Config{
		ChurnMeanUpSec:   day / ratePerDay,
		ChurnMeanDownSec: downtimeSec,
		ChurnStartSec:    startSec,
		WipeOnCrash:      true,
	}
}
