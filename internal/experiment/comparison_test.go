package experiment

import (
	"testing"

	"dtncache/internal/trace"
)

// TestRunComparisonMatchesRun is the sharing contract of the knowledge
// layer: running every scheme concurrently against one shared Provider
// must produce reports bit-identical to isolated Runs that each build
// their own knowledge.
func TestRunComparisonMatchesRun(t *testing.T) {
	tr := tinyTrace(t)
	setup := Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		K:           2,
		Seed:        3,
	}
	names := SchemeNames()
	shared, err := RunComparison(setup, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		isolated, err := Run(setup, name)
		if err != nil {
			t.Fatalf("%s isolated run: %v", name, err)
		}
		if a, b := reportString(shared[i]), reportString(isolated); a != b {
			t.Errorf("%s: shared-knowledge report diverged from isolated run:\n%s\n%s", name, a, b)
		}
	}
}

// TestTableIPresetComparisonIdentical pins the pooled core's behavior
// on the calibrated Table I preset traces: for every preset, running
// the scheme comparison against one shared knowledge provider must
// produce reports byte-identical to isolated runs. This is the
// cross-preset equivalence check behind the zero-allocation refactor —
// the pooled event loop and slice-backed node stores must not perturb
// any preset's results. scripts/check.sh runs this under -race, which
// additionally exercises the pooled per-node state across the
// comparison's concurrent scheme workers.
func TestTableIPresetComparisonIdentical(t *testing.T) {
	names := []string{SchemeIntentional, SchemeCacheData}
	for _, p := range trace.Presets() {
		t.Run(string(p), func(t *testing.T) {
			tr, err := trace.GeneratePreset(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Cap the path-weight horizon: the long-trace defaults (1wk
			// MIT Reality, 3d UCSD) put almost all of the wall time into
			// hypoexponential path weights inside the knowledge build,
			// which is orthogonal to the store-equivalence property under
			// test here.
			metricT := DefaultMetricT(string(p))
			if metricT > 6*3600 {
				metricT = 6 * 3600
			}
			setup := Setup{
				Trace:       tr,
				MetricT:     metricT,
				AvgLifetime: 24 * 3600,
				K:           2,
				Seed:        5,
			}
			shared, err := RunComparison(setup, names)
			if err != nil {
				t.Fatal(err)
			}
			for i, name := range names {
				isolated, err := Run(setup, name)
				if err != nil {
					t.Fatalf("%s isolated run: %v", name, err)
				}
				if a, b := reportString(shared[i]), reportString(isolated); a != b {
					t.Errorf("%s on %s: shared-knowledge report diverged from isolated run:\n%s\n%s",
						name, p, a, b)
				}
			}
		})
	}
}

// TestRunComparisonReusesExplicitProvider checks that a caller-supplied
// provider is honored (the sweep-cell sharing pattern) and still
// matches isolated runs.
func TestRunComparisonReusesExplicitProvider(t *testing.T) {
	tr := tinyTrace(t)
	setup := Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		K:           2,
		Seed:        3,
		Knowledge:   SharedKnowledge(tr, 0),
	}
	names := []string{SchemeIntentional, SchemeBundleCache}
	shared, err := RunComparison(setup, names)
	if err != nil {
		t.Fatal(err)
	}
	isolated := setup
	isolated.Knowledge = nil
	for i, name := range names {
		rep, err := Run(isolated, name)
		if err != nil {
			t.Fatalf("%s isolated run: %v", name, err)
		}
		if a, b := reportString(shared[i]), reportString(rep); a != b {
			t.Errorf("%s: explicit-provider report diverged from isolated run:\n%s\n%s", name, a, b)
		}
	}
}
