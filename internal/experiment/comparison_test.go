package experiment

import "testing"

// TestRunComparisonMatchesRun is the sharing contract of the knowledge
// layer: running every scheme concurrently against one shared Provider
// must produce reports bit-identical to isolated Runs that each build
// their own knowledge.
func TestRunComparisonMatchesRun(t *testing.T) {
	tr := tinyTrace(t)
	setup := Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		K:           2,
		Seed:        3,
	}
	names := SchemeNames()
	shared, err := RunComparison(setup, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		isolated, err := Run(setup, name)
		if err != nil {
			t.Fatalf("%s isolated run: %v", name, err)
		}
		if a, b := reportString(shared[i]), reportString(isolated); a != b {
			t.Errorf("%s: shared-knowledge report diverged from isolated run:\n%s\n%s", name, a, b)
		}
	}
}

// TestRunComparisonReusesExplicitProvider checks that a caller-supplied
// provider is honored (the sweep-cell sharing pattern) and still
// matches isolated runs.
func TestRunComparisonReusesExplicitProvider(t *testing.T) {
	tr := tinyTrace(t)
	setup := Setup{
		Trace:       tr,
		AvgLifetime: 6 * 3600,
		K:           2,
		Seed:        3,
		Knowledge:   SharedKnowledge(tr, 0),
	}
	names := []string{SchemeIntentional, SchemeBundleCache}
	shared, err := RunComparison(setup, names)
	if err != nil {
		t.Fatal(err)
	}
	isolated := setup
	isolated.Knowledge = nil
	for i, name := range names {
		rep, err := Run(isolated, name)
		if err != nil {
			t.Fatalf("%s isolated run: %v", name, err)
		}
		if a, b := reportString(shared[i]), reportString(rep); a != b {
			t.Errorf("%s: explicit-provider report diverged from isolated run:\n%s\n%s", name, a, b)
		}
	}
}
