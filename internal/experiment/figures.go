package experiment

import (
	"fmt"
	"sort"

	"dtncache/internal/knowledge"
	"dtncache/internal/mathx"
	"dtncache/internal/metrics"
	"dtncache/internal/trace"
	"dtncache/internal/workload"
)

// FigureOptions tune how much work the figure regenerators do. The zero
// value reproduces the paper's full parameter ranges; Scale trades
// sweep-point density and repetitions for runtime (used by the
// benchmarks).
type FigureOptions struct {
	// Seed drives trace generation and simulation randomness.
	Seed int64
	// Repeats averages each cell over this many seeds (default 1).
	Repeats int
	// Quick reduces sweeps to three points per axis and two schemes
	// where applicable (benchmark mode).
	Quick bool
	// FaultChurnPerDay collapses the Degradation sweep's fault-intensity
	// axis to {0, this value}: expected crashes per node per day
	// (0 keeps the full sweep).
	FaultChurnPerDay float64
	// FaultDowntimeSec overrides the Degradation sweep's mean downtime
	// per crash (0 keeps the default).
	FaultDowntimeSec float64
}

func (o FigureOptions) normalized() FigureOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repeats < 1 {
		o.Repeats = 1
	}
	return o
}

const (
	hour = 3600.0
	day  = 86400.0
)

// Table1 regenerates Table I: the summary statistics of the four traces
// (here: of their calibrated synthetic stand-ins).
func Table1(o FigureOptions) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID:    "Table I",
		Title: "Trace summary (synthetic stand-ins calibrated to the paper's Table I)",
		Headers: []string{"Trace", "Network type", "Devices", "Contacts",
			"Duration (days)", "Granularity (s)", "Pairwise freq (/day)"},
		Notes: []string{
			"contacts are calibrated to the published totals; pairwise frequency is derived as contacts/(pairs*days)",
		},
	}
	types := map[trace.Preset]string{
		trace.Infocom05: "Bluetooth", trace.Infocom06: "Bluetooth",
		trace.MITReality: "Bluetooth", trace.UCSD: "WiFi",
	}
	for _, p := range trace.Presets() {
		tr, err := trace.GeneratePreset(p, o.Seed)
		if err != nil {
			return nil, err
		}
		s := tr.ComputeStats()
		t.AddRow(string(p), types[p], s.Nodes, s.Contacts, s.DurationDays,
			s.GranularitySec, fmt.Sprintf("%.3g", s.PairwiseFreqDay))
	}
	return t, nil
}

// Fig4 regenerates Fig. 4: the distribution of NCL selection metric
// values per trace, demonstrating the skew that makes NCL selection
// meaningful. For each trace it reports decile values of the metric and
// the top-node/median ratio.
func Fig4(o FigureOptions) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID:    "Fig. 4",
		Title: "NCL selection metric distribution (deciles of C_i, plus skew)",
		Headers: []string{"Trace", "T", "min", "p25", "median", "p75",
			"p90", "max", "max/median"},
	}
	for _, p := range trace.Presets() {
		tr, err := trace.GeneratePreset(p, o.Seed)
		if err != nil {
			return nil, err
		}
		metricsVals, err := NCLMetrics(tr, DefaultMetricT(string(p)))
		if err != nil {
			return nil, err
		}
		sorted := append([]float64(nil), metricsVals...)
		sort.Float64s(sorted)
		med := mathx.Percentile(sorted, 0.5)
		skew := 0.0
		if med > 0 {
			skew = sorted[len(sorted)-1] / med
		}
		t.AddRow(string(p), fmtDuration(DefaultMetricT(string(p))),
			sorted[0], mathx.Percentile(sorted, 0.25), med,
			mathx.Percentile(sorted, 0.75), mathx.Percentile(sorted, 0.9),
			sorted[len(sorted)-1], skew)
	}
	return t, nil
}

// NCLMetrics computes the NCL selection metric C_i (Eq. 3) for every
// node of the trace, using the whole trace for rate estimation as in
// Sec. IV-B. The raw (unmerged) contact list feeds the knowledge
// builder, matching the offline analysis convention (the in-simulation
// estimator counts merged contacts instead).
func NCLMetrics(tr *trace.Trace, metricT float64) ([]float64, error) {
	pr := knowledge.NewProvider(knowledge.Params{
		Nodes:   tr.Nodes,
		MetricT: metricT,
	}, tr.Contacts)
	return pr.At(tr.Duration).Metrics(), nil
}

// Fig7 regenerates Fig. 7: the sigmoid response probability of Eq. (4)
// with p_min = 0.45, p_max = 0.8 and T_q = 10 hours.
func Fig7(FigureOptions) (*Table, error) {
	sig, err := mathx.NewResponseSigmoid(0.45, 0.8, 10*hour)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig. 7",
		Title:   "Probability for deciding data response (Eq. 4, pmin=0.45 pmax=0.8 Tq=10h)",
		Headers: []string{"remaining time (h)", "p_R"},
	}
	for h := 0.0; h <= 10.0001; h += 1 {
		t.AddRow(h, sig.Prob(h*hour))
	}
	return t, nil
}

// Fig9 regenerates Fig. 9: (a) how the average data lifetime T_L
// controls the amount of data in the network, and (b) the Zipf query
// pmf for several exponents.
func Fig9(o FigureOptions) (*Table, *Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.MITReality, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	a := &Table{
		ID:      "Fig. 9a",
		Title:   "Data volume vs average lifetime T_L (MIT Reality, p_G = 0.2)",
		Headers: []string{"T_L", "items generated", "mean live items"},
	}
	lifetimes := []float64{12 * hour, 3 * day, 7 * day, 30 * day, 90 * day}
	if o.Quick {
		lifetimes = []float64{12 * hour, 7 * day, 90 * day}
	}
	for _, tl := range lifetimes {
		w, err := workload.Generate(workload.Config{
			Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: tl,
			AvgSizeBits: 100e6, ZipfExponent: 1,
			Start: tr.Duration / 2, End: tr.Duration, Seed: o.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		a.AddRow(fmtDuration(tl), len(w.Data), w.MeanLiveItems(200))
	}
	b := &Table{
		ID:      "Fig. 9b",
		Title:   "Zipf query distribution P_j (Eq. 8, M = 20)",
		Headers: []string{"rank j", "s=0.5", "s=0.8", "s=1.0", "s=1.2"},
	}
	exps := []float64{0.5, 0.8, 1.0, 1.2}
	zipfs := make([]*mathx.Zipf, len(exps))
	for i, s := range exps {
		z, err := mathx.NewZipf(20, s)
		if err != nil {
			return nil, nil, err
		}
		zipfs[i] = z
	}
	for j := 1; j <= 10; j++ {
		b.AddRow(j, zipfs[0].P(j), zipfs[1].P(j), zipfs[2].P(j), zipfs[3].P(j))
	}
	return a, b, nil
}

// schemeSet picks the scheme list for comparison figures.
func schemeSet(quick bool) []string {
	if quick {
		return []string{SchemeIntentional, SchemeNoCache}
	}
	return SchemeNames()
}

// Fig10 regenerates Fig. 10: data access performance vs average data
// lifetime T_L on the MIT Reality trace (K = 8, s = 1, s_avg = 100 Mb).
// Columns (a) successful ratio, (b) mean access delay, (c) caching
// overhead, one row per (T_L, scheme).
func Fig10(o FigureOptions) (*Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.MITReality, o.Seed)
	if err != nil {
		return nil, err
	}
	lifetimes := []float64{12 * hour, 3 * day, 7 * day, 30 * day, 90 * day}
	if o.Quick {
		lifetimes = []float64{12 * hour, 7 * day, 90 * day}
	}
	t := &Table{
		ID:    "Fig. 10",
		Title: "Performance vs data lifetime T_L (MIT Reality, K=8, s_avg=100Mb)",
		Headers: []string{"T_L", "scheme", "success ratio", "delay (h)",
			"copies/item"},
	}
	names := schemeSet(o.Quick)
	type cell struct {
		tl   float64
		name string
	}
	var cells []cell
	for _, tl := range lifetimes {
		for _, name := range names {
			cells = append(cells, cell{tl, name})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgLifetime: cells[i].tl, K: 8, Seed: o.Seed,
			Knowledge: kb,
		}, cells[i].name, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(fmtDuration(c.tl), c.name, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour, reports[i].MeanCopies)
	}
	return t, nil
}

// Fig11 regenerates Fig. 11: data access performance vs average data
// size s_avg on the MIT Reality trace (K = 8, T_L = 1 week).
func Fig11(o FigureOptions) (*Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.MITReality, o.Seed)
	if err != nil {
		return nil, err
	}
	sizes := []float64{20e6, 50e6, 100e6, 150e6, 200e6}
	if o.Quick {
		sizes = []float64{20e6, 100e6, 200e6}
	}
	t := &Table{
		ID:    "Fig. 11",
		Title: "Performance vs data size s_avg (MIT Reality, K=8, T_L=1wk)",
		Headers: []string{"s_avg (Mb)", "scheme", "success ratio",
			"delay (h)", "copies/item"},
	}
	names := schemeSet(o.Quick)
	type cell struct {
		sz   float64
		name string
	}
	var cells []cell
	for _, sz := range sizes {
		for _, name := range names {
			cells = append(cells, cell{sz, name})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgSizeBits: cells[i].sz, K: 8, Seed: o.Seed,
			Knowledge: kb,
		}, cells[i].name, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(c.sz/1e6, c.name, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour, reports[i].MeanCopies)
	}
	return t, nil
}

// Fig12 regenerates Fig. 12: the cache-replacement comparison (ours vs
// FIFO, LRU, Greedy-Dual-Size) vs data size on MIT Reality, including
// the replacement overhead of Fig. 12(c), reported per generated data
// item.
func Fig12(o FigureOptions) (*Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.MITReality, o.Seed)
	if err != nil {
		return nil, err
	}
	sizes := []float64{20e6, 50e6, 100e6, 150e6, 200e6}
	names := ReplacementNames()
	if o.Quick {
		sizes = []float64{50e6, 200e6}
		names = []string{SchemeIntentional, SchemeIntentionalLRU}
	}
	t := &Table{
		ID:    "Fig. 12",
		Title: "Cache replacement strategies vs data size (MIT Reality, T_L=1wk)",
		Headers: []string{"s_avg (Mb)", "replacement", "success ratio",
			"delay (h)", "moves/item"},
	}
	type cell struct {
		sz   float64
		name string
	}
	var cells []cell
	for _, sz := range sizes {
		for _, name := range names {
			cells = append(cells, cell{sz, name})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgSizeBits: cells[i].sz, K: 8, Seed: o.Seed,
			Knowledge: kb,
		}, cells[i].name, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		// Normalize replacement overhead by the number of data items the
		// workload generated.
		items, err := workloadSize(tr, 7*day, c.sz, o.Seed)
		if err != nil {
			return nil, err
		}
		moves := 0.0
		if items > 0 {
			moves = float64(reports[i].ReplacementMoves) / float64(items) / float64(o.Repeats)
		}
		t.AddRow(c.sz/1e6, c.name, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour, moves)
	}
	return t, nil
}

func workloadSize(tr *trace.Trace, tl, sz float64, seed int64) (int, error) {
	w, err := workload.Generate(workload.Config{
		Nodes: tr.Nodes, GenProb: 0.2, AvgLifetime: tl, AvgSizeBits: sz,
		ZipfExponent: 1, Start: tr.Duration / 2, End: tr.Duration, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	return len(w.Data), nil
}

// Fig13 regenerates Fig. 13: the impact of the number of NCLs K on the
// Infocom06 trace (T_L = 3 hours) under three buffer conditions.
func Fig13(o FigureOptions) (*Table, error) {
	o = o.normalized()
	tr, err := trace.GeneratePreset(trace.Infocom06, o.Seed)
	if err != nil {
		return nil, err
	}
	ks := []int{1, 2, 3, 4, 5, 6, 8, 10}
	buffers := []struct {
		label    string
		min, max float64
	}{
		{"tight (100-300Mb)", 100e6, 300e6},
		{"default (200-600Mb)", 200e6, 600e6},
		{"loose (400-1200Mb)", 400e6, 1200e6},
	}
	if o.Quick {
		ks = []int{1, 3, 5, 10}
		buffers = buffers[1:2]
	}
	t := &Table{
		ID:    "Fig. 13",
		Title: "Impact of NCL count K (Infocom06, T_L=3h)",
		Headers: []string{"buffers", "K", "success ratio", "delay (h)",
			"copies/item"},
	}
	type cell struct {
		label    string
		min, max float64
		k        int
	}
	var cells []cell
	for _, b := range buffers {
		for _, k := range ks {
			cells = append(cells, cell{b.label, b.min, b.max, k})
		}
	}
	kb := SharedKnowledge(tr, 0)
	reports := make([]metrics.Report, len(cells))
	if err := forEachCell(len(cells), func(i int) error {
		rep, err := RunAveraged(Setup{
			Trace: tr, AvgLifetime: 3 * hour, K: cells[i].k, Seed: o.Seed,
			BufferMinBits: cells[i].min, BufferMaxBits: cells[i].max,
			Knowledge: kb,
		}, SchemeIntentional, o.Repeats)
		reports[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(c.label, c.k, reports[i].SuccessRatio,
			reports[i].MeanDelaySec/hour, reports[i].MeanCopies)
	}
	return t, nil
}

func fmtDuration(sec float64) string {
	switch {
	case sec >= day:
		return fmt.Sprintf("%gd", sec/day)
	case sec >= hour:
		return fmt.Sprintf("%gh", sec/hour)
	default:
		return fmt.Sprintf("%gs", sec)
	}
}
