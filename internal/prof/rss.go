package prof

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
)

// PeakRSS returns the process's peak resident set size in bytes — the
// high-water mark of physical memory, which is what the city-scale
// streaming benchmarks pin: a streaming replay must keep it below the
// footprint of materializing the trace. On Linux it reads VmHWM from
// /proc/self/status; elsewhere (or if the read fails) it falls back to
// the Go runtime's view of memory obtained from the OS, which
// understates the true RSS but is still monotone over a run.
//
// The gauge is process-wide and monotone: it never decreases, so
// callers comparing phases should record the delta around the phase of
// interest or run the phase in a fresh process.
func PeakRSS() int64 {
	if v, ok := procPeakRSS(); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// procPeakRSS parses VmHWM ("VmHWM:    123456 kB") out of
// /proc/self/status.
func procPeakRSS() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		f := bytes.Fields(line[len("VmHWM:"):])
		if len(f) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseInt(string(f[0]), 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
