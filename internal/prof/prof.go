// Package prof wires the standard runtime/pprof file profiles into the
// repo's CLIs (`-cpuprofile` / `-memprofile` on dtnsim and
// experiments), the entry point of the replay-performance workflow
// described in DESIGN.md: profile, optimize, then gate with
// `make bench-compare`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile written to cpuPath (empty string disables
// it) and returns a stop function that ends the CPU profile and writes
// a heap profile to memPath (empty string disables that). Call stop
// exactly once, after the measured workload finished.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			// Up-to-date allocation statistics need a completed GC cycle.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
