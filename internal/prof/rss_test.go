package prof

import (
	"runtime"
	"testing"
)

func TestPeakRSSPositive(t *testing.T) {
	if got := PeakRSS(); got <= 0 {
		t.Fatalf("PeakRSS() = %d, want > 0", got)
	}
}

func TestPeakRSSMonotone(t *testing.T) {
	before := PeakRSS()
	// Touch a chunk of memory so the high-water mark cannot shrink and
	// plausibly grows; either way the gauge must not go backwards.
	buf := make([]byte, 16<<20)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	after := PeakRSS()
	runtime.KeepAlive(buf)
	if after < before {
		t.Fatalf("PeakRSS went backwards: %d then %d", before, after)
	}
}

func TestProcPeakRSSOnLinux(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM is Linux-only")
	}
	v, ok := procPeakRSS()
	if !ok || v <= 0 {
		t.Fatalf("procPeakRSS() = %d, %v", v, ok)
	}
}
