// Package cli holds the flag-group and setup helpers shared by this
// repository's binaries: trace loading (preset or file), fault-injection
// flags, workload/protocol flags that build an engine.Config, and the
// observability sink wiring (run-trace stream, flight-recorder ring,
// sampling). cmd/dtnsim, cmd/experiments, cmd/dtnserved and cmd/dtnload
// register the groups they need on their own FlagSets so every binary
// spells the same knob the same way and builds configs through one code
// path.
//
// The package is driver-level: unlike the engine underneath it may read
// the wall clock (WallClock feeds the obs phase timers) and touch the
// filesystem.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dtncache/internal/engine"
	"dtncache/internal/fault"
	"dtncache/internal/metrics"
	"dtncache/internal/obs"
	"dtncache/internal/scheme"
	"dtncache/internal/trace"
)

// WallClock is the nanosecond clock binaries inject into obs phase
// timers (internal/obs itself is determinism-linted and never reads the
// wall clock).
func WallClock() int64 { return time.Now().UnixNano() }

// TraceFlags selects the contact trace: a built-in preset or a file in
// one of the supported formats, optionally replayed as a stream.
type TraceFlags struct {
	Preset *string
	File   *string
	Format *string
	Stream *bool
}

// AddTraceFlags registers -trace, -tracefile, -format and -stream on fs.
func AddTraceFlags(fs *flag.FlagSet) *TraceFlags {
	return &TraceFlags{
		Preset: fs.String("trace", "MIT Reality", "trace preset (Infocom05, Infocom06, 'MIT Reality', UCSD)"),
		File:   fs.String("tracefile", "", "read the trace from this file instead of a preset"),
		Format: fs.String("format", "plain", "trace file format: plain ('a b start end'), csv ('a,b,start,end'), one (ONE simulator CONN events) or chunked (binary stream, see tracegen -emit chunked)"),
		Stream: fs.Bool("stream", false, "replay the tracefile without materializing contacts in memory (requires -format chunked)"),
	}
}

// Load reads or generates the selected trace; seed drives preset
// generation. With -stream set it reads only the chunked header and
// returns a metadata-only trace (empty Contacts) — Opener supplies the
// contact stream.
func (t *TraceFlags) Load(seed int64) (*trace.Trace, error) {
	if *t.Stream {
		if *t.File == "" || strings.ToLower(*t.Format) != "chunked" {
			return nil, fmt.Errorf("-stream requires -tracefile with -format chunked")
		}
		f, err := os.Open(*t.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sr, err := trace.NewStreamReader(f)
		if err != nil {
			return nil, err
		}
		m := sr.Meta()
		return &trace.Trace{Name: m.Name, Nodes: m.Nodes, Duration: m.Duration, Granularity: m.Granularity}, nil
	}
	if *t.File == "" {
		return trace.GeneratePreset(trace.Preset(*t.Preset), seed)
	}
	f, err := os.Open(*t.File)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(*t.Format) {
	case "plain":
		return trace.Read(f)
	case "csv":
		return trace.ReadCSV(f)
	case "one":
		return trace.ReadONE(f)
	case "chunked":
		return trace.ReadChunked(f)
	default:
		return nil, fmt.Errorf("unknown trace format %q", *t.Format)
	}
}

// Opener returns the engine.Config.Stream opener when -stream is set,
// nil otherwise. Each call opens the tracefile afresh, as the streaming
// contracts require; the underlying file closes itself when the source
// is drained or errors.
func (t *TraceFlags) Opener() func() (trace.ContactSource, error) {
	if !*t.Stream {
		return nil
	}
	file := *t.File
	return func() (trace.ContactSource, error) {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		sr, err := trace.NewStreamReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &fileSource{f: f, sr: sr}, nil
	}
}

// fileSource streams contacts from an open tracefile and closes it at
// EOF or on the first read error. A source abandoned mid-stream (a
// knowledge-feed rewind) holds its descriptor until process exit —
// fine for one-shot CLI runs, which is all this type serves.
type fileSource struct {
	f  *os.File
	sr *trace.StreamReader
}

func (s *fileSource) NextContact() (trace.Contact, error) {
	c, err := s.sr.NextContact()
	if err != nil && s.f != nil {
		s.f.Close()
		s.f = nil
	}
	return c, err
}

// FaultFlags configures the deterministic fault-injection engine.
type FaultFlags struct {
	Churn         *float64
	Downtime      *time.Duration
	Wipe          *bool
	Truncate      *float64
	BlackoutK     *int
	BlackoutStart *time.Duration
	BlackoutEnd   *time.Duration
}

// AddFaultFlags registers the -fault-* flags on fs.
func AddFaultFlags(fs *flag.FlagSet) *FaultFlags {
	return &FaultFlags{
		Churn:         fs.Float64("fault-churn", 0, "node churn: expected crashes per node per day (begins at the trace midpoint)"),
		Downtime:      fs.Duration("fault-downtime", 4*time.Hour, "mean downtime per crash"),
		Wipe:          fs.Bool("fault-wipe", true, "wipe node buffers on crash"),
		Truncate:      fs.Float64("fault-truncate", 0, "probability a contact is truncated to a random fraction of its duration"),
		BlackoutK:     fs.Int("fault-blackout", 0, "number of top-ranked NCLs to black out for a window"),
		BlackoutStart: fs.Duration("fault-blackout-start", 0, "blackout window start (0 with -fault-blackout = trace midpoint)"),
		BlackoutEnd:   fs.Duration("fault-blackout-end", 0, "blackout window end (0 with -fault-blackout = 3/4 of the trace)"),
	}
}

// Config translates the flags into a fault.Config for a trace of the
// given duration: churn starts at the trace midpoint, and an unbounded
// blackout window defaults to the [1/2, 3/4] span of the trace.
func (f *FaultFlags) Config(traceDurationSec float64) fault.Config {
	var fc fault.Config
	if *f.Churn > 0 {
		fc = fault.Config{
			ChurnMeanUpSec:   86400 / *f.Churn,
			ChurnMeanDownSec: f.Downtime.Seconds(),
			ChurnStartSec:    traceDurationSec / 2,
			WipeOnCrash:      *f.Wipe,
		}
	}
	fc.TruncateProb = *f.Truncate
	if *f.BlackoutK > 0 {
		fc.BlackoutNCLs = *f.BlackoutK
		fc.BlackoutStartSec = f.BlackoutStart.Seconds()
		fc.BlackoutEndSec = f.BlackoutEnd.Seconds()
		if fc.BlackoutEndSec == 0 {
			fc.BlackoutStartSec = traceDurationSec / 2
			fc.BlackoutEndSec = 3 * traceDurationSec / 4
		}
	}
	return fc
}

// EngineFlags are the workload and protocol knobs an engine.Config is
// built from.
type EngineFlags struct {
	TL         *time.Duration
	Savg       *float64
	Zipf       *float64
	K          *int
	Seed       *int64
	BufMin     *float64
	BufMax     *float64
	Drop       *float64
	Response   *string
	Retry      *time.Duration
	RetryMax   *int
	Failover   *bool
	PushBudget *int
	Invariants *bool
}

// AddEngineFlags registers the workload/protocol flags on fs.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	return &EngineFlags{
		TL:         fs.Duration("tl", 7*24*time.Hour, "average data lifetime T_L"),
		Savg:       fs.Float64("savg", 100, "average data size in Mb"),
		Zipf:       fs.Float64("zipf", 1, "Zipf query exponent s"),
		K:          fs.Int("k", 8, "number of NCLs (K)"),
		Seed:       fs.Int64("seed", 1, "random seed"),
		BufMin:     fs.Float64("bufmin", 200, "minimum node buffer in Mb"),
		BufMax:     fs.Float64("bufmax", 600, "maximum node buffer in Mb"),
		Drop:       fs.Float64("drop", 0, "transfer failure-injection probability"),
		Response:   fs.String("response", "sigmoid", "response mode: global, sigmoid, always"),
		Retry:      fs.Duration("retry", 0, "re-issue unsatisfied queries after this timeout with exponential backoff (0 = off)"),
		RetryMax:   fs.Int("retry-max", 0, "max query retry attempts (0 = default)"),
		Failover:   fs.Bool("ncl-failover", false, "redirect pushes/queries from crashed NCLs to the next-ranked live node"),
		PushBudget: fs.Int("push-budget", 0, "abandon a pending push after this many attempts (0 = retry forever)"),
		Invariants: fs.Bool("invariants", false, "check runtime invariants every sweep and fail on violations (single run)"),
	}
}

// Config assembles the engine configuration from the parsed flags.
func (e *EngineFlags) Config(tr *trace.Trace, fc fault.Config, rec *obs.Recorder) (engine.Config, error) {
	mode, err := ParseResponse(*e.Response)
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Trace:           tr,
		AvgLifetime:     e.TL.Seconds(),
		AvgSizeBits:     *e.Savg * 1e6,
		ZipfExponent:    *e.Zipf,
		K:               *e.K,
		Seed:            *e.Seed,
		BufferMinBits:   *e.BufMin * 1e6,
		BufferMaxBits:   *e.BufMax * 1e6,
		DropProb:        *e.Drop,
		Fault:           fc,
		QueryRetrySec:   e.Retry.Seconds(),
		QueryRetryMax:   *e.RetryMax,
		NCLFailover:     *e.Failover,
		PushRetryBudget: *e.PushBudget,
		CheckInvariants: *e.Invariants,
		Response:        mode,
		Obs:             rec,
	}, nil
}

// ParseResponse maps a -response flag value to its scheme mode.
func ParseResponse(s string) (scheme.ResponseMode, error) {
	switch strings.ToLower(s) {
	case "global":
		return scheme.ResponseGlobal, nil
	case "sigmoid":
		return scheme.ResponseSigmoid, nil
	case "always":
		return scheme.ResponseAlways, nil
	default:
		return 0, fmt.Errorf("unknown response mode %q", s)
	}
}

// Digestable strips the pointer fields off a config so its %+v
// rendering — and therefore the manifest's config digest — is stable
// across runs.
func Digestable(c engine.Config) engine.Config {
	c.Trace = nil
	c.Knowledge = nil
	c.Stream = nil
	c.Obs = nil
	return c
}

// ObsFlags wire the observability layer: run-trace destination,
// flight-recorder ring, sampling and the end-of-run summary.
type ObsFlags struct {
	TraceOut *string
	FlightN  *int
	SampleN  *int
	Summary  *bool
}

// AddObsFlags registers -trace-out, -flight-recorder, -trace-sample and
// -obs-summary on fs.
func AddObsFlags(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		TraceOut: fs.String("trace-out", "", "record the NDJSON run-trace to this `file` ('-' for stdout)"),
		FlightN:  fs.Int("flight-recorder", 0, "keep only the last `n` trace events in a ring (dumped to -trace-out at the end, or to stderr on error)"),
		SampleN:  fs.Int("trace-sample", 1, "record one of every `n` trace events"),
		Summary:  fs.Bool("obs-summary", false, "print observability counters and phase timings to stderr"),
	}
}

// WALFlags configures the dtnserved write-ahead log: where live ops
// are journaled, how eagerly the file is fsynced, and how often a
// checkpoint record pins the replay state.
type WALFlags struct {
	Path            *string
	Sync            *string
	CheckpointEvery *int
}

// AddWALFlags registers -wal, -wal-sync and -wal-checkpoint on fs.
func AddWALFlags(fs *flag.FlagSet) *WALFlags {
	return &WALFlags{
		Path: fs.String("wal", "", "journal live ops to this write-ahead log `file`; on restart the engine is restored by replaying it"),
		Sync: fs.String("wal-sync", "checkpoint", "WAL fsync policy: none, checkpoint or always"),
		CheckpointEvery: fs.Int("wal-checkpoint", 1024,
			"ops between WAL checkpoint records (0 = checkpoint only on clean shutdown)"),
	}
}

// Enabled reports whether any observability output was requested.
func (o *ObsFlags) Enabled() bool {
	return *o.TraceOut != "" || *o.FlightN > 0 || *o.Summary
}

// NewRecorder builds the recorder the flags describe: a flight-recorder
// ring when -flight-recorder is set, else a stream sink on -trace-out,
// optionally sampled, with phase timers on the injected wall clock. It
// returns nil (with no error) when Enabled is false. With a ring sink
// the caller dumps the ring itself (see DumpRing); with a stream sink
// the caller should record the manifest as the first line.
func (o *ObsFlags) NewRecorder() (rec *obs.Recorder, ring *obs.RingSink, err error) {
	if !o.Enabled() {
		return nil, nil, nil
	}
	var sink obs.Sink
	switch {
	case *o.FlightN > 0:
		ring = obs.NewRingSink(*o.FlightN)
		sink = ring
	case *o.TraceOut != "":
		w, werr := OpenTraceOut(*o.TraceOut)
		if werr != nil {
			return nil, nil, werr
		}
		sink = obs.NewStreamSink(w)
	}
	if sink != nil && *o.SampleN > 1 {
		sink = obs.NewSampleSink(sink, *o.SampleN)
	}
	return obs.NewRecorder(sink, obs.WithPhases(obs.NewPhases(WallClock))), ring, nil
}

// OpenTraceOut opens the run-trace destination; "-" selects stdout
// (left open for any report that follows).
func OpenTraceOut(path string) (io.Writer, error) {
	if path == "-" {
		return struct{ io.Writer }{os.Stdout}, nil
	}
	return os.Create(path)
}

// DumpRing writes the manifest line followed by the ring's retained
// events to w, closing w if it is a Closer.
func DumpRing(w io.Writer, m obs.Manifest, ring *obs.RingSink) error {
	if _, err := w.Write(append(m.AppendJSON(nil), '\n')); err != nil {
		return err
	}
	if err := ring.Dump(w); err != nil {
		return err
	}
	if c, ok := w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// DumpRingErr prints the flight-recorder contents to stderr on the
// failure path: a context line, the manifest and the retained events.
func DumpRingErr(m obs.Manifest, ring *obs.RingSink) {
	fmt.Fprintf(os.Stderr, "flight recorder: last %d of %d events\n",
		ring.Len(), ring.Len()+int(ring.Dropped()))
	os.Stderr.Write(append(m.AppendJSON(nil), '\n'))
	_ = ring.Dump(os.Stderr)
}

// WriteReportJSON renders a bare metric report as indented JSON — the
// one encoding shared by dtnsim -report-json, the dtnserved /report
// endpoint and dtnload -report-out, so the serve-smoke gate can
// byte-compare them.
func WriteReportJSON(w io.Writer, rep metrics.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
