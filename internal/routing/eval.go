package routing

import (
	"errors"
	"sort"

	"dtncache/internal/mathx"
	"dtncache/internal/sim"
	"dtncache/internal/trace"
)

// EvalConfig parameterizes a routing evaluation run.
type EvalConfig struct {
	// Messages is the number of unicast messages to generate (random
	// source/destination pairs, uniformly spread over the second half of
	// the trace).
	Messages int
	// LifetimeSec is each message's lifetime (deadline - creation).
	LifetimeSec float64
	// SizeBits is the payload size (default 100 kb).
	SizeBits float64
	// SprayCopies is the initial copy budget for spray strategies
	// (default 8; ignored by others).
	SprayCopies int
	// Bandwidth overrides the link bandwidth (0 = sim default).
	Bandwidth float64
	// Seed drives message generation.
	Seed int64
}

func (c EvalConfig) normalized() EvalConfig {
	if c.SizeBits == 0 {
		c.SizeBits = 100e3
	}
	if c.SprayCopies == 0 {
		c.SprayCopies = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result summarizes one strategy's performance.
type Result struct {
	Strategy      string
	Messages      int
	Delivered     int
	DeliveryRatio float64
	MeanDelaySec  float64
	// Transmissions counts completed message transfers (the classic
	// overhead metric; DirectDelivery achieves exactly one per delivered
	// message).
	Transmissions int
	// TransmissionsPerDelivery is Transmissions / Delivered (0 if none).
	TransmissionsPerDelivery float64
}

// Evaluate replays the trace and routes randomly generated unicast
// messages with the strategy, reporting delivery ratio, delay and
// transmission overhead.
//
// Evaluation simplification (standard in DTN routing studies): once a
// message has been delivered, remaining replicas stop propagating (an
// instantaneous acknowledgment oracle), so epidemic overhead reflects
// spreading *until* delivery.
func Evaluate(tr *trace.Trace, strat Strategy, cfg EvalConfig) (Result, error) {
	cfg = cfg.normalized()
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Messages <= 0 || cfg.LifetimeSec <= 0 {
		return Result{}, errors.New("routing: need Messages > 0 and LifetimeSec > 0")
	}
	if tr.Nodes < 2 {
		return Result{}, errors.New("routing: need at least two nodes")
	}

	e := &evaluator{
		strat:   strat,
		cfg:     cfg,
		sim:     sim.New(),
		carried: make([]map[int]*Message, tr.Nodes),
	}
	for i := range e.carried {
		e.carried[i] = make(map[int]*Message)
	}
	var opts []sim.DriverOption
	if cfg.Bandwidth > 0 {
		opts = append(opts, sim.WithBandwidth(cfg.Bandwidth))
	}
	e.driver = sim.NewDriver(e.sim, e, opts...)
	if err := e.driver.Load(tr); err != nil {
		return Result{}, err
	}

	// Generate messages over the second half of the trace.
	rng := mathx.NewRand(cfg.Seed)
	start := tr.Duration / 2
	e.messages = make([]*Message, cfg.Messages)
	e.deliveredAt = make([]float64, cfg.Messages)
	for i := 0; i < cfg.Messages; i++ {
		src := trace.NodeID(rng.Intn(tr.Nodes))
		dst := trace.NodeID(rng.Intn(tr.Nodes))
		for dst == src {
			dst = trace.NodeID(rng.Intn(tr.Nodes))
		}
		created := rng.Uniform(start, tr.Duration)
		m := &Message{
			ID: i, Src: src, Dst: dst,
			Created: created, Deadline: created + cfg.LifetimeSec,
			SizeBits: cfg.SizeBits, Copies: cfg.SprayCopies,
		}
		e.messages[i] = m
		e.deliveredAt[i] = -1
		if err := e.sim.Schedule(created, func() {
			e.carried[m.Src][m.ID] = m
		}); err != nil {
			return Result{}, err
		}
	}
	e.sim.RunUntil(tr.Duration)

	res := Result{Strategy: strat.Name(), Messages: cfg.Messages}
	var delaySum float64
	for i, m := range e.messages {
		if at := e.deliveredAt[i]; at >= 0 && at <= m.Deadline {
			res.Delivered++
			delaySum += at - m.Created
		}
	}
	res.Transmissions = e.transmissions
	if res.Delivered > 0 {
		res.DeliveryRatio = float64(res.Delivered) / float64(res.Messages)
		res.MeanDelaySec = delaySum / float64(res.Delivered)
		res.TransmissionsPerDelivery = float64(res.Transmissions) / float64(res.Delivered)
	}
	return res, nil
}

// evaluator is the sim.Handler carrying the per-node message state.
type evaluator struct {
	strat   Strategy
	cfg     EvalConfig
	sim     *sim.Simulator
	driver  *sim.Driver
	carried []map[int]*Message

	messages      []*Message
	deliveredAt   []float64
	transmissions int

	inflight map[[2]int]bool // {carrier, msg}
}

// ContactStart implements sim.Handler.
func (e *evaluator) ContactStart(s *sim.Session) {
	now := e.sim.Now()
	e.strat.OnContact(s.A, s.B, now)
	if e.inflight == nil {
		e.inflight = make(map[[2]int]bool)
	}
	e.offer(s, s.A)
	e.offer(s, s.B)
}

// offer lets `from` act on each carried message per the strategy.
func (e *evaluator) offer(s *sim.Session, from trace.NodeID) {
	to := s.Peer(from)
	now := e.sim.Now()
	ids := make([]int, 0, len(e.carried[from]))
	for id := range e.carried[from] {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := e.carried[from][id]
		if m.Expired(now) {
			delete(e.carried[from], id)
			continue
		}
		if e.deliveredAt[m.ID] >= 0 {
			// Oracle acknowledgment: stop spreading delivered messages.
			delete(e.carried[from], id)
			continue
		}
		if _, has := e.carried[to][id]; has && to != m.Dst {
			continue
		}
		action := e.strat.Decide(m, from, to, now)
		if action == Keep {
			continue
		}
		key := [2]int{int(from), id}
		if e.inflight[key] {
			continue
		}
		e.inflight[key] = true
		msg, act := m, action
		s.Enqueue(sim.Transfer{
			From: from, To: to, Bits: msg.SizeBits, Label: "routing",
			OnDelivered: func(at float64) {
				delete(e.inflight, key)
				e.transmissions++
				if to == msg.Dst {
					if e.deliveredAt[msg.ID] < 0 && at <= msg.Deadline {
						e.deliveredAt[msg.ID] = at
					}
					if act == Forward {
						delete(e.carried[from], msg.ID)
					}
					return
				}
				switch act {
				case Forward:
					delete(e.carried[from], msg.ID)
					e.carried[to][msg.ID] = msg
				case Replicate:
					if msg.Copies > 1 {
						half := msg.Copies / 2
						msg.Copies -= half
						cp := *msg
						cp.Copies = half
						e.carried[to][msg.ID] = &cp
					} else {
						cp := *msg
						e.carried[to][msg.ID] = &cp
					}
				}
			},
			OnDropped: func(float64) { delete(e.inflight, key) },
		})
	}
}

// ContactEnd implements sim.Handler.
func (e *evaluator) ContactEnd(*sim.Session) {}

var _ sim.Handler = (*evaluator)(nil)
