package routing

import (
	"math"

	"dtncache/internal/trace"
)

// PRoPHET is the Probabilistic Routing Protocol using History of
// Encounters and Transitivity (Lindgren, Doria, Schelén). Each node a
// maintains a delivery predictability P(a,b) for every destination b:
//
//   - encounter:    P(a,b) = P(a,b) + (1 - P(a,b)) * PInit
//   - aging:        P(a,b) = P(a,b) * gamma^(Δt / AgingUnit)
//   - transitivity: P(a,c) = max(P(a,c), P(a,b) * P(b,c) * Beta)
//
// A carrier replicates a message to a peer whose predictability for the
// destination is strictly higher than its own.
type PRoPHET struct {
	// PInit is the encounter increment (default 0.75).
	PInit float64
	// Gamma is the per-aging-unit decay (default 0.98).
	Gamma float64
	// Beta scales transitive predictability (default 0.25).
	Beta float64
	// AgingUnit is the aging time quantum in seconds (default 3600).
	AgingUnit float64

	n         int
	p         []float64 // n*n: p[a*n+b] = P(a,b)
	lastAging []float64 // per node, time of last aging
}

// NewPRoPHET creates the strategy for n nodes with the standard
// parameters.
func NewPRoPHET(n int) *PRoPHET {
	return &PRoPHET{
		PInit:     0.75,
		Gamma:     0.98,
		Beta:      0.25,
		AgingUnit: 3600,
		n:         n,
		p:         make([]float64, n*n),
		lastAging: make([]float64, n),
	}
}

// Name implements Strategy.
func (p *PRoPHET) Name() string { return "PRoPHET" }

// P returns the current delivery predictability P(a,b).
func (p *PRoPHET) P(a, b trace.NodeID) float64 {
	if a == b {
		return 1
	}
	if a < 0 || b < 0 || int(a) >= p.n || int(b) >= p.n {
		return 0
	}
	return p.p[int(a)*p.n+int(b)]
}

// OnContact implements Strategy: ages both nodes' tables, applies the
// encounter update symmetrically, then the transitivity rule.
func (p *PRoPHET) OnContact(a, b trace.NodeID, at float64) {
	if a == b || a < 0 || b < 0 || int(a) >= p.n || int(b) >= p.n {
		return
	}
	p.age(a, at)
	p.age(b, at)
	p.bump(a, b)
	p.bump(b, a)
	p.transit(a, b)
	p.transit(b, a)
}

func (p *PRoPHET) age(node trace.NodeID, at float64) {
	dt := at - p.lastAging[node]
	if dt <= 0 {
		return
	}
	p.lastAging[node] = at
	factor := math.Pow(p.Gamma, dt/p.AgingUnit)
	row := p.p[int(node)*p.n : int(node)*p.n+p.n]
	for i := range row {
		row[i] *= factor
	}
}

func (p *PRoPHET) bump(a, b trace.NodeID) {
	i := int(a)*p.n + int(b)
	p.p[i] += (1 - p.p[i]) * p.PInit
}

// transit applies P(a,c) = max(P(a,c), P(a,b)*P(b,c)*Beta) for all c.
func (p *PRoPHET) transit(a, b trace.NodeID) {
	pab := p.P(a, b)
	rowA := p.p[int(a)*p.n : int(a)*p.n+p.n]
	rowB := p.p[int(b)*p.n : int(b)*p.n+p.n]
	for c := range rowA {
		if trace.NodeID(c) == a || trace.NodeID(c) == b {
			continue
		}
		if v := pab * rowB[c] * p.Beta; v > rowA[c] {
			rowA[c] = v
		}
	}
}

// Decide implements Strategy.
func (p *PRoPHET) Decide(m *Message, carrier, peer trace.NodeID, _ float64) Action {
	if peer == m.Dst {
		return Forward
	}
	if p.P(peer, m.Dst) > p.P(carrier, m.Dst) {
		return Replicate
	}
	return Keep
}

var _ Strategy = (*PRoPHET)(nil)
