// Package routing implements the canonical DTN unicast forwarding
// strategies that the paper's ecosystem builds on (Sec. II surveys
// them): direct delivery, first contact, epidemic flooding, binary
// spray-and-wait, PRoPHET, and gradient forwarding over
// opportunistic-path weights. The caching schemes embed their own
// forwarding logic; this package provides the strategies in isolation,
// with an evaluation harness, both as a reusable substrate and as a
// reference point for the delivery-ratio/overhead tradeoffs the caching
// evaluation sits on.
//
//dtn:determinism
package routing

import (
	"dtncache/internal/trace"
)

// Message is one unicast message traveling from Src to Dst.
type Message struct {
	// ID is unique per evaluation.
	ID int
	// Src and Dst are the endpoints.
	Src, Dst trace.NodeID
	// Created and Deadline bound the message lifetime.
	Created, Deadline float64
	// SizeBits is the payload size.
	SizeBits float64
	// Copies is the remaining logical copy budget (spray strategies).
	Copies int
}

// Expired reports whether the message is past its deadline at time now.
func (m *Message) Expired(now float64) bool { return now >= m.Deadline }

// Action is a strategy's decision for a carried message at a contact.
type Action int

// Possible decisions.
const (
	// Keep retains the message at the carrier.
	Keep Action = iota
	// Forward hands the message to the peer; custody moves.
	Forward
	// Replicate copies the message to the peer; both keep it.
	Replicate
)

// Strategy is a DTN unicast forwarding strategy. Implementations may
// keep internal state (e.g. PRoPHET's delivery predictabilities),
// updated through OnContact.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// OnContact observes a contact between two nodes (both directions).
	OnContact(a, b trace.NodeID, at float64)
	// Decide returns what the carrier should do with m on a contact with
	// peer.
	Decide(m *Message, carrier, peer trace.NodeID, at float64) Action
}

// DirectDelivery hands the message only to its destination. It is the
// minimum-overhead (single transmission) and maximum-delay strategy.
type DirectDelivery struct{}

// Name implements Strategy.
func (DirectDelivery) Name() string { return "DirectDelivery" }

// OnContact implements Strategy.
func (DirectDelivery) OnContact(trace.NodeID, trace.NodeID, float64) {}

// Decide implements Strategy.
func (DirectDelivery) Decide(m *Message, _, peer trace.NodeID, _ float64) Action {
	if peer == m.Dst {
		return Forward
	}
	return Keep
}

// FirstContact hands the message to the first peer encountered (and to
// every subsequent one), performing a random walk with single custody.
type FirstContact struct{}

// Name implements Strategy.
func (FirstContact) Name() string { return "FirstContact" }

// OnContact implements Strategy.
func (FirstContact) OnContact(trace.NodeID, trace.NodeID, float64) {}

// Decide implements Strategy.
func (FirstContact) Decide(*Message, trace.NodeID, trace.NodeID, float64) Action {
	return Forward
}

// Epidemic replicates the message to every encountered node that lacks
// it: minimum delay, maximum transmissions (Vahdat & Becker).
type Epidemic struct{}

// Name implements Strategy.
func (Epidemic) Name() string { return "Epidemic" }

// OnContact implements Strategy.
func (Epidemic) OnContact(trace.NodeID, trace.NodeID, float64) {}

// Decide implements Strategy.
func (Epidemic) Decide(*Message, trace.NodeID, trace.NodeID, float64) Action {
	return Replicate
}

// SprayAndWait is binary spray-and-wait (Spyropoulos et al.): a message
// starts with L logical copies; a carrier with more than one copy hands
// half to any new peer, and a carrier with a single copy waits for the
// destination.
type SprayAndWait struct{}

// Name implements Strategy.
func (SprayAndWait) Name() string { return "SprayAndWait" }

// OnContact implements Strategy.
func (SprayAndWait) OnContact(trace.NodeID, trace.NodeID, float64) {}

// Decide implements Strategy.
func (SprayAndWait) Decide(m *Message, _, peer trace.NodeID, _ float64) Action {
	if peer == m.Dst {
		return Forward
	}
	if m.Copies > 1 {
		return Replicate // evaluator halves the budget
	}
	return Keep
}

// GradientFunc scores how good a node is as a relay toward dst; larger
// is better. The caching schemes use opportunistic-path weights here.
type GradientFunc func(node, dst trace.NodeID) float64

// Gradient forwards along strictly increasing relay scores (single
// custody), exactly like the paper's relay selection (Sec. V-A).
type Gradient struct {
	// Score ranks candidate relays (required).
	Score GradientFunc
}

// Name implements Strategy.
func (*Gradient) Name() string { return "Gradient" }

// OnContact implements Strategy.
func (*Gradient) OnContact(trace.NodeID, trace.NodeID, float64) {}

// Decide implements Strategy.
func (g *Gradient) Decide(m *Message, carrier, peer trace.NodeID, _ float64) Action {
	if peer == m.Dst {
		return Forward
	}
	if g.Score(peer, m.Dst) > g.Score(carrier, m.Dst) {
		return Forward
	}
	return Keep
}
