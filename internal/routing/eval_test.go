package routing

import (
	"testing"

	"dtncache/internal/graph"
	"dtncache/internal/trace"
)

func evalTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, _, err := trace.Generate(trace.GenConfig{
		Name: "routing-test", Nodes: 25, DurationSec: 4 * 86400,
		GranularitySec: 60, TargetContacts: 20000,
		ActivityAlpha: 1.4, ActivityMax: 10, EdgeProb: 0.5,
		PairSkewAlpha: 0.9, PairSkewMax: 50, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func evalCfg() EvalConfig {
	return EvalConfig{Messages: 150, LifetimeSec: 8 * 3600, Seed: 2}
}

func TestEvaluateValidation(t *testing.T) {
	tr := evalTrace(t)
	if _, err := Evaluate(tr, Epidemic{}, EvalConfig{}); err == nil {
		t.Error("zero messages accepted")
	}
	if _, err := Evaluate(tr, Epidemic{}, EvalConfig{Messages: 5}); err == nil {
		t.Error("zero lifetime accepted")
	}
	bad := &trace.Trace{Nodes: 0}
	if _, err := Evaluate(bad, Epidemic{}, evalCfg()); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestEvaluateStrategyOrdering(t *testing.T) {
	tr := evalTrace(t)
	cfg := evalCfg()

	results := map[string]Result{}
	est := graph.NewRateEstimator(tr.Nodes, 0)
	for _, c := range tr.Contacts {
		est.Observe(c.A, c.B)
	}
	g := est.Snapshot(tr.Duration)
	paths := g.AllPaths(0)
	gradient := &Gradient{Score: func(node, dst trace.NodeID) float64 {
		return paths[node].Weight(dst, 3600)
	}}
	for _, s := range []Strategy{
		DirectDelivery{}, FirstContact{}, Epidemic{}, SprayAndWait{},
		NewPRoPHET(tr.Nodes), gradient,
	} {
		res, err := Evaluate(tr, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Messages != cfg.Messages {
			t.Errorf("%s: messages = %d", s.Name(), res.Messages)
		}
		results[s.Name()] = res
		t.Logf("%-14s delivery %.2f delay %.1fh tx/delivery %.1f",
			s.Name(), res.DeliveryRatio, res.MeanDelaySec/3600,
			res.TransmissionsPerDelivery)
	}

	epi := results["Epidemic"]
	direct := results["DirectDelivery"]
	spray := results["SprayAndWait"]

	// Epidemic dominates delivery ratio (small messages, ample bandwidth).
	for name, r := range results {
		if r.DeliveryRatio > epi.DeliveryRatio+1e-9 {
			t.Errorf("%s delivery %.3f exceeds epidemic %.3f", name,
				r.DeliveryRatio, epi.DeliveryRatio)
		}
	}
	// Direct delivery has exactly one transmission per delivered message.
	if direct.Delivered > 0 && direct.Transmissions != direct.Delivered {
		t.Errorf("direct transmissions %d != delivered %d",
			direct.Transmissions, direct.Delivered)
	}
	// Spray-and-wait sits between direct and epidemic on both axes.
	if spray.DeliveryRatio < direct.DeliveryRatio-0.05 {
		t.Errorf("spray %.3f below direct %.3f", spray.DeliveryRatio, direct.DeliveryRatio)
	}
	if epi.Delivered > 0 && spray.Delivered > 0 &&
		spray.TransmissionsPerDelivery > epi.TransmissionsPerDelivery {
		t.Errorf("spray overhead %.1f above epidemic %.1f",
			spray.TransmissionsPerDelivery, epi.TransmissionsPerDelivery)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	tr := evalTrace(t)
	a, err := Evaluate(tr, SprayAndWait{}, evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(tr, SprayAndWait{}, evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}
