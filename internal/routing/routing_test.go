package routing

import (
	"math"
	"testing"

	"dtncache/internal/trace"
)

func msg(src, dst trace.NodeID) *Message {
	return &Message{ID: 0, Src: src, Dst: dst, Created: 0, Deadline: 100, Copies: 8}
}

func TestDirectDelivery(t *testing.T) {
	var s DirectDelivery
	if s.Decide(msg(0, 2), 0, 1, 10) != Keep {
		t.Error("handed to non-destination")
	}
	if s.Decide(msg(0, 2), 0, 2, 10) != Forward {
		t.Error("did not deliver to destination")
	}
}

func TestFirstContact(t *testing.T) {
	var s FirstContact
	if s.Decide(msg(0, 2), 0, 1, 10) != Forward {
		t.Error("first contact must hand over")
	}
}

func TestEpidemicStrategy(t *testing.T) {
	var s Epidemic
	if s.Decide(msg(0, 2), 0, 1, 10) != Replicate {
		t.Error("epidemic must replicate")
	}
}

func TestSprayAndWaitPhases(t *testing.T) {
	var s SprayAndWait
	m := msg(0, 2)
	m.Copies = 4
	if s.Decide(m, 0, 1, 10) != Replicate {
		t.Error("spray phase must replicate")
	}
	m.Copies = 1
	if s.Decide(m, 0, 1, 10) != Keep {
		t.Error("wait phase must keep")
	}
	if s.Decide(m, 0, 2, 10) != Forward {
		t.Error("wait phase must deliver to destination")
	}
}

func TestGradientStrategy(t *testing.T) {
	score := func(node, dst trace.NodeID) float64 {
		// Node IDs closer to dst score higher.
		return -math.Abs(float64(node - dst))
	}
	g := &Gradient{Score: score}
	if g.Decide(msg(0, 5), 1, 3, 10) != Forward {
		t.Error("should climb the gradient")
	}
	if g.Decide(msg(0, 5), 3, 1, 10) != Keep {
		t.Error("should not descend the gradient")
	}
	if g.Decide(msg(0, 5), 1, 5, 10) != Forward {
		t.Error("should deliver to destination")
	}
}

func TestPRoPHETEncounterAndAging(t *testing.T) {
	p := NewPRoPHET(3)
	if p.P(0, 1) != 0 {
		t.Error("initial predictability must be 0")
	}
	if p.P(0, 0) != 1 {
		t.Error("self predictability must be 1")
	}
	p.OnContact(0, 1, 0)
	if got := p.P(0, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("after encounter: %v, want 0.75", got)
	}
	if got := p.P(1, 0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("symmetric update missing: %v", got)
	}
	// Second encounter compounds (one second of aging first, hence the
	// loose tolerance).
	p.OnContact(0, 1, 1)
	if got := p.P(0, 1); math.Abs(got-(0.75+0.25*0.75)) > 1e-4 {
		t.Errorf("after 2nd encounter: %v", got)
	}
	// Aging decays predictability over a long gap.
	before := p.P(0, 1)
	p.OnContact(0, 2, 1+10*3600) // ten aging units later
	after := p.P(0, 1)
	want := before * math.Pow(0.98, 10)
	if math.Abs(after-want) > 1e-9 {
		t.Errorf("aged P = %v, want %v", after, want)
	}
}

func TestPRoPHETTransitivity(t *testing.T) {
	p := NewPRoPHET(3)
	p.OnContact(1, 2, 0) // P(1,2) = 0.75
	p.OnContact(0, 1, 0) // P(0,1) = 0.75; transitivity: P(0,2) >= 0.75*0.75*0.25
	if got, want := p.P(0, 2), 0.75*0.75*0.25; got < want-1e-9 {
		t.Errorf("transitive P(0,2) = %v, want >= %v", got, want)
	}
}

func TestPRoPHETDecide(t *testing.T) {
	p := NewPRoPHET(3)
	p.OnContact(1, 2, 0) // node 1 knows node 2
	m := msg(0, 2)
	if p.Decide(m, 0, 1, 1) != Replicate {
		t.Error("should replicate to a better-predicting peer")
	}
	if p.Decide(m, 1, 0, 1) != Keep {
		t.Error("should keep against a worse-predicting peer")
	}
	if p.Decide(m, 1, 2, 1) != Forward {
		t.Error("should deliver to destination")
	}
}

func TestPRoPHETBoundsIgnored(t *testing.T) {
	p := NewPRoPHET(2)
	p.OnContact(0, 0, 5)  // self: ignored
	p.OnContact(0, 9, 5)  // out of range: ignored
	p.OnContact(-1, 0, 5) // negative: ignored
	if p.P(0, 9) != 0 || p.P(0, 1) != 0 {
		t.Error("invalid contacts mutated state")
	}
}
