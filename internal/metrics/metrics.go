// Package metrics collects the three evaluation metrics of Sec. VI —
// successful ratio of queries, data access delay, and caching overhead
// (average number of cached copies per data item) — plus the cache
// replacement overhead used in Fig. 12(c) and transmission accounting.
//
//dtn:determinism
package metrics

import (
	"dtncache/internal/mathx"
	"dtncache/internal/workload"
)

// queryRecord tracks one query's lifecycle.
type queryRecord struct {
	issued     float64
	deadline   float64
	registered bool
	satisfied  bool
	delay      float64
	copies     int // data copies that reached the requester
}

// Collector accumulates metrics during one simulation run. It is not
// safe for concurrent use; the simulator is single-threaded.
type Collector struct {
	// queries is indexed by QueryID (dense, assigned in issue order by
	// the workload generator) and grown on demand; registered
	// distinguishes real records from padding.
	queries []queryRecord

	copySamples  mathx.Online // avg cached copies per live item, per sample
	usedBufFrac  mathx.Online // fraction of total buffer capacity in use
	replaceMoves int          // data items moved by cache replacement
	dataBits     float64      // payload bits delivered (data transfers)
	controlBits  float64      // query/metadata bits delivered

	// phases[i] accumulates part i of the access delay decomposition of
	// Sec. V-E (0: query to NCL, 1: NCL broadcast to the responding
	// caching node, 2: data return to the requester).
	phases [3]mathx.Online
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// QueryIssued registers a query the moment a requester sends it.
func (c *Collector) QueryIssued(q workload.Query) {
	if int(q.ID) >= len(c.queries) {
		c.queries = append(c.queries, make([]queryRecord, int(q.ID)+1-len(c.queries))...)
	}
	r := &c.queries[q.ID]
	if r.registered {
		return
	}
	*r = queryRecord{issued: q.Issued, deadline: q.Deadline, registered: true}
}

// QueryDelivered records a data copy arriving at the requester at time
// at. It returns true if this is the first on-time copy (the query
// transitions to satisfied); later or late copies only count as
// redundant deliveries.
func (c *Collector) QueryDelivered(id workload.QueryID, at float64) bool {
	if int(id) >= len(c.queries) || !c.queries[id].registered {
		return false
	}
	r := &c.queries[id]
	r.copies++
	if r.satisfied || at > r.deadline {
		return false
	}
	r.satisfied = true
	r.delay = at - r.issued
	return true
}

// Registered reports whether a query with this ID was issued (false
// for padding slots and out-of-range IDs).
func (c *Collector) Registered(id workload.QueryID) bool {
	return int(id) < len(c.queries) && int(id) >= 0 && c.queries[id].registered
}

// Satisfied reports whether the query was answered before its deadline
// (false for unknown IDs).
func (c *Collector) Satisfied(id workload.QueryID) bool {
	return c.Registered(id) && c.queries[id].satisfied
}

// DelayPhases records the Sec. V-E decomposition of one satisfied
// query's access delay: queryToNCL is the time for the query to reach a
// central node, broadcast the further time until a caching node decided
// to respond (0 when the central node answered directly), and reply the
// time for the data to travel back to the requester.
func (c *Collector) DelayPhases(queryToNCL, broadcast, reply float64) {
	c.phases[0].Add(queryToNCL)
	c.phases[1].Add(broadcast)
	c.phases[2].Add(reply)
}

// SampleCopies records one periodic observation of the average number of
// cached copies per live data item.
func (c *Collector) SampleCopies(avgCopiesPerItem float64) {
	c.copySamples.Add(avgCopiesPerItem)
}

// SampleBufferUse records one periodic observation of the fraction of
// total buffer capacity occupied.
func (c *Collector) SampleBufferUse(frac float64) {
	c.usedBufFrac.Add(frac)
}

// ReplacementMove counts n data items exchanged/moved during a cache
// replacement operation.
func (c *Collector) ReplacementMove(n int) { c.replaceMoves += n }

// DataTransferred accounts bits of data payload delivered between nodes.
func (c *Collector) DataTransferred(bits float64) { c.dataBits += bits }

// ControlTransferred accounts bits of control traffic (queries,
// metadata) delivered between nodes.
func (c *Collector) ControlTransferred(bits float64) { c.controlBits += bits }

// Report is the final summary of one run.
type Report struct {
	// QueriesIssued is the number of queries sent into the network.
	QueriesIssued int
	// QueriesSatisfied is the number answered before their deadline.
	QueriesSatisfied int
	// SuccessRatio is satisfied/issued (0 when no queries).
	SuccessRatio float64
	// MeanDelaySec is the mean access delay over satisfied queries.
	MeanDelaySec float64
	// MedianDelaySec is the median access delay over satisfied queries.
	MedianDelaySec float64
	// P90DelaySec is the 90th-percentile access delay over satisfied
	// queries.
	P90DelaySec float64
	// MeanCopies is the time-averaged number of cached copies per live
	// data item (caching overhead, Figs. 10c/11c/13c).
	MeanCopies float64
	// MeanBufferUse is the time-averaged fraction of buffer in use.
	MeanBufferUse float64
	// RedundantDeliveries counts data copies that reached requesters
	// after the query was already satisfied (transmission waste).
	RedundantDeliveries int
	// ReplacementMoves counts data items exchanged by cache replacement
	// (Fig. 12c reports this normalized per data item).
	ReplacementMoves int
	// DataBits and ControlBits account delivered traffic.
	DataBits    float64
	ControlBits float64
	// MeanPhaseSec is the Sec. V-E delay decomposition over satisfied
	// queries with known phases: [query->NCL, NCL broadcast, reply].
	MeanPhaseSec [3]float64
	// PhaseSamples is the number of queries contributing to MeanPhaseSec.
	PhaseSamples int
}

// Report computes the summary.
func (c *Collector) Report() Report {
	rep := Report{
		ReplacementMoves: c.replaceMoves,
		DataBits:         c.dataBits,
		ControlBits:      c.controlBits,
		MeanCopies:       c.copySamples.Mean(),
		MeanBufferUse:    c.usedBufFrac.Mean(),
		MeanPhaseSec: [3]float64{
			c.phases[0].Mean(), c.phases[1].Mean(), c.phases[2].Mean(),
		},
		PhaseSamples: c.phases[0].N(),
	}
	// The dense store's natural order is ascending query ID — the same
	// run-independent order the map-backed collector sorted into.
	var delays []float64
	for id := range c.queries {
		r := &c.queries[id]
		if !r.registered {
			continue
		}
		rep.QueriesIssued++
		if r.satisfied {
			rep.QueriesSatisfied++
			delays = append(delays, r.delay)
			if r.copies > 1 {
				rep.RedundantDeliveries += r.copies - 1
			}
		} else if r.copies > 0 {
			rep.RedundantDeliveries += r.copies
		}
	}
	if rep.QueriesIssued > 0 {
		rep.SuccessRatio = float64(rep.QueriesSatisfied) / float64(rep.QueriesIssued)
	}
	s := mathx.Summarize(delays)
	rep.MeanDelaySec = s.Mean
	rep.MedianDelaySec = s.Median
	rep.P90DelaySec = s.P90
	return rep
}
