package metrics

import (
	"math"
	"testing"

	"dtncache/internal/workload"
)

func q(id int, issued, deadline float64) workload.Query {
	return workload.Query{ID: workload.QueryID(id), Issued: issued, Deadline: deadline}
}

func TestQueryLifecycle(t *testing.T) {
	c := NewCollector()
	c.QueryIssued(q(1, 10, 100))
	c.QueryIssued(q(2, 10, 100))
	c.QueryIssued(q(2, 10, 100)) // duplicate issue ignored

	if !c.QueryDelivered(1, 50) {
		t.Error("first on-time delivery must satisfy")
	}
	if c.QueryDelivered(1, 60) {
		t.Error("second delivery must not re-satisfy")
	}
	if c.QueryDelivered(2, 200) {
		t.Error("late delivery must not satisfy")
	}
	if c.QueryDelivered(99, 50) {
		t.Error("unknown query must not satisfy")
	}

	rep := c.Report()
	if rep.QueriesIssued != 2 || rep.QueriesSatisfied != 1 {
		t.Errorf("issued=%d satisfied=%d", rep.QueriesIssued, rep.QueriesSatisfied)
	}
	if math.Abs(rep.SuccessRatio-0.5) > 1e-12 {
		t.Errorf("ratio = %v", rep.SuccessRatio)
	}
	if rep.MeanDelaySec != 40 {
		t.Errorf("mean delay = %v, want 40", rep.MeanDelaySec)
	}
	// one redundant for q1 (second copy), one for q2 (late copy).
	if rep.RedundantDeliveries != 2 {
		t.Errorf("redundant = %d, want 2", rep.RedundantDeliveries)
	}
}

// TestDenseRecordsPresetScale exercises the dense query store at
// preset-scale ID ranges with sparse, duplicate and out-of-order IDs —
// the shapes a real workload generator produces across a multi-day
// trace.
func TestDenseRecordsPresetScale(t *testing.T) {
	c := NewCollector()
	// Out-of-order and sparse: a high ID first grows the store with
	// padding, lower IDs then land in pre-grown slots.
	ids := []int{5000, 3, 4999, 0, 1287, 3} // 3 twice: duplicate issue
	for _, id := range ids {
		c.QueryIssued(q(id, float64(id), float64(id)+3600))
	}
	rep := c.Report()
	if rep.QueriesIssued != 5 {
		t.Fatalf("issued = %d, want 5 (duplicate must not double-count)", rep.QueriesIssued)
	}
	// Padding slots between real records are not registered.
	for _, id := range []int{1, 2, 4, 4998, 2500} {
		if c.Registered(workload.QueryID(id)) {
			t.Errorf("padding slot %d reads as registered", id)
		}
		if c.QueryDelivered(workload.QueryID(id), 1) {
			t.Errorf("delivery to padding slot %d satisfied a query", id)
		}
	}
	// Out-of-range and negative IDs are rejected, not grown or panicked.
	if c.Registered(999999) || c.Satisfied(999999) || c.Registered(-1) || c.Satisfied(-1) {
		t.Error("out-of-range ID reads as registered/satisfied")
	}
	if c.QueryDelivered(999999, 1) {
		t.Error("delivery to unknown high ID satisfied a query")
	}

	if !c.QueryDelivered(4999, 4999+600) {
		t.Error("on-time delivery to sparse high ID not satisfied")
	}
	if !c.Satisfied(4999) {
		t.Error("Satisfied(4999) = false after on-time delivery")
	}
	if c.Satisfied(5000) {
		t.Error("Satisfied(5000) = true without any delivery")
	}
	if !c.Registered(5000) || !c.Registered(0) || !c.Registered(3) {
		t.Error("issued IDs must read as registered")
	}
	rep = c.Report()
	if rep.QueriesIssued != 5 || rep.QueriesSatisfied != 1 {
		t.Errorf("issued=%d satisfied=%d, want 5/1", rep.QueriesIssued, rep.QueriesSatisfied)
	}
	if rep.MeanDelaySec != 600 {
		t.Errorf("mean delay = %v, want 600", rep.MeanDelaySec)
	}
}

// TestDuplicateIssueKeepsFirstRecord pins the duplicate-issue rule: the
// first registration's timing wins, and a satisfy in between survives a
// re-issue.
func TestDuplicateIssueKeepsFirstRecord(t *testing.T) {
	c := NewCollector()
	c.QueryIssued(q(7, 100, 1000))
	if !c.QueryDelivered(7, 400) {
		t.Fatal("delivery not satisfied")
	}
	c.QueryIssued(q(7, 500, 2000)) // duplicate with different timing
	if !c.Satisfied(7) {
		t.Error("re-issue cleared the satisfied record")
	}
	rep := c.Report()
	if rep.QueriesIssued != 1 || rep.MeanDelaySec != 300 {
		t.Errorf("issued=%d delay=%v, want 1/300 (first registration wins)",
			rep.QueriesIssued, rep.MeanDelaySec)
	}
}

func TestSamplesAndCounters(t *testing.T) {
	c := NewCollector()
	c.SampleCopies(2)
	c.SampleCopies(4)
	c.SampleBufferUse(0.5)
	c.ReplacementMove(3)
	c.ReplacementMove(2)
	c.DataTransferred(100)
	c.ControlTransferred(10)
	rep := c.Report()
	if rep.MeanCopies != 3 {
		t.Errorf("mean copies = %v", rep.MeanCopies)
	}
	if rep.MeanBufferUse != 0.5 {
		t.Errorf("buffer use = %v", rep.MeanBufferUse)
	}
	if rep.ReplacementMoves != 5 {
		t.Errorf("moves = %d", rep.ReplacementMoves)
	}
	if rep.DataBits != 100 || rep.ControlBits != 10 {
		t.Errorf("bits = %v/%v", rep.DataBits, rep.ControlBits)
	}
}

func TestEmptyReport(t *testing.T) {
	rep := NewCollector().Report()
	if rep.SuccessRatio != 0 || rep.QueriesIssued != 0 || rep.MeanDelaySec != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestMedianDelay(t *testing.T) {
	c := NewCollector()
	for i, d := range []float64{10, 20, 90} {
		c.QueryIssued(q(i, 0, 1000))
		c.QueryDelivered(workload.QueryID(i), d)
	}
	rep := c.Report()
	if rep.MedianDelaySec != 20 {
		t.Errorf("median = %v, want 20", rep.MedianDelaySec)
	}
	if rep.P90DelaySec < 20 || rep.P90DelaySec > 90 {
		t.Errorf("p90 = %v", rep.P90DelaySec)
	}
}

func TestDelayPhases(t *testing.T) {
	c := NewCollector()
	c.DelayPhases(10, 5, 20)
	c.DelayPhases(20, 15, 40)
	rep := c.Report()
	if rep.PhaseSamples != 2 {
		t.Fatalf("samples = %d", rep.PhaseSamples)
	}
	want := [3]float64{15, 10, 30}
	if rep.MeanPhaseSec != want {
		t.Errorf("phases = %v, want %v", rep.MeanPhaseSec, want)
	}
}
