package obs

import (
	"bufio"
	"io"
	"sync"
)

// Sink receives encoded NDJSON trace lines. WriteLine is handed the
// line without a trailing newline and must not retain the slice — the
// recorder reuses its encode buffer.
type Sink interface {
	WriteLine(line []byte)
	// Close flushes buffered output and releases resources.
	Close() error
}

// StreamSink writes every line straight through a buffered writer: the
// full-stream trace of a run.
type StreamSink struct {
	bw *bufio.Writer
	c  io.Closer // underlying closer when the writer is also a Closer
}

// NewStreamSink wraps w. If w is also an io.Closer it is closed by
// Close (after the flush).
func NewStreamSink(w io.Writer) *StreamSink {
	s := &StreamSink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// WriteLine implements Sink.
func (s *StreamSink) WriteLine(line []byte) {
	_, _ = s.bw.Write(line)
	_ = s.bw.WriteByte('\n')
}

// Close implements Sink.
func (s *StreamSink) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RingSink is the flight recorder: a bounded ring keeping the last N
// lines. Slots reuse their backing arrays, so a saturated ring stops
// allocating. Dump writes the retained tail in arrival order —
// typically on error or at Stop.
type RingSink struct {
	lines [][]byte
	next  int
	full  bool
	seen  uint64 // total lines offered, including overwritten ones
}

// NewRingSink creates a ring holding the last n lines (n < 1 is
// clamped to 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{lines: make([][]byte, n)}
}

// WriteLine implements Sink.
func (r *RingSink) WriteLine(line []byte) {
	r.lines[r.next] = append(r.lines[r.next][:0], line...)
	r.next++
	r.seen++
	if r.next == len(r.lines) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of retained lines.
func (r *RingSink) Len() int {
	if r.full {
		return len(r.lines)
	}
	return r.next
}

// Dropped returns how many lines were overwritten (total seen minus
// retained).
func (r *RingSink) Dropped() uint64 {
	return r.seen - uint64(r.Len())
}

// Dump writes the retained lines, oldest first, each terminated by a
// newline.
func (r *RingSink) Dump(w io.Writer) error {
	start := 0
	if r.full {
		start = r.next
	}
	for i := 0; i < r.Len(); i++ {
		line := r.lines[(start+i)%len(r.lines)]
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink (the ring holds no external resources).
func (r *RingSink) Close() error { return nil }

// SampleSink forwards every Nth line to the inner sink, a cheap way to
// trace a long run at reduced volume. The first line (the manifest) is
// always forwarded.
type SampleSink struct {
	inner Sink
	every uint64
	n     uint64
}

// NewSampleSink keeps one of every `every` lines (every < 1 clamps to
// 1, i.e. pass-through).
func NewSampleSink(inner Sink, every int) *SampleSink {
	if every < 1 {
		every = 1
	}
	return &SampleSink{inner: inner, every: uint64(every)}
}

// WriteLine implements Sink.
func (s *SampleSink) WriteLine(line []byte) {
	keep := s.n%s.every == 0
	s.n++
	if keep {
		s.inner.WriteLine(line)
	}
}

// Close implements Sink.
func (s *SampleSink) Close() error { return s.inner.Close() }

// SyncSink serializes concurrent writers onto one inner sink
// (cmd/experiments records cell completions from parallel sweep
// workers). Per-line atomicity only: interleaving across goroutines
// still depends on scheduling.
type SyncSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewSyncSink wraps inner with a mutex.
func NewSyncSink(inner Sink) *SyncSink {
	return &SyncSink{inner: inner}
}

// WriteLine implements Sink.
func (s *SyncSink) WriteLine(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.WriteLine(line)
}

// Close implements Sink.
func (s *SyncSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Close()
}
